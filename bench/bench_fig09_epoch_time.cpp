// Figure 9: per-epoch training time of ResNet50 / ImageNet-1K on the
// ABCI profile as the worker count grows, for global, local and
// partial-0.1 shuffling. The paper's shape: global is ~5x slower than
// local at 128 workers and the gap grows with scale; partial-0.1 tracks
// local up to 512 workers and degrades at 1,024-2,048 (fewer iterations to
// overlap with + all-to-all congestion).
//
// Phase timings flow through the span tracer: each modeled epoch is
// emitted as epoch.io / epoch.exchange / epoch.fwbw / epoch.gewu spans
// over a virtual clock advanced by the analytic model, and the printed
// table is aggregated back from the tracer snapshot — so a --trace-out
// artifact always matches the table exactly.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <map>
#include <string>

#include "bench_common.hpp"
#include "obs/clock.hpp"
#include "obs/trace.hpp"
#include "perf/perf_model.hpp"
#include "util/table.hpp"

namespace {

using namespace dshuf;

std::string span_attr(const obs::SpanEvent& e, const std::string& key) {
  for (const auto& [k, v] : e.attrs) {
    if (k == key) return v;
  }
  return "";
}

void emit_epoch_spans(obs::VirtualClock& clock, const std::string& scale,
                      const std::string& label,
                      const perf::EpochBreakdown& b) {
  const auto phase = [&](const char* name, double seconds) {
    obs::SpanGuard span(name, {{"scale", scale}, {"strategy", label}});
    clock.advance_us(
        static_cast<std::uint64_t>(std::llround(seconds * 1e6)));
  };
  phase("epoch.io", b.io_s);
  phase("epoch.exchange", b.exchange_s);
  phase("epoch.fwbw", b.fwbw_s);
  phase("epoch.gewu", b.gewu_s);
}

}  // namespace

int main(int argc, char** argv) {
  using shuffle::Strategy;
  bench::ObsSession session(argc, argv);

  std::cout << "\n==================================================\n"
            << "Fig. 9 — epoch time vs workers (ResNet50 / ImageNet-1K,\n"
            << "ABCI profile, b = 32)\n"
            << "==================================================\n";

  obs::VirtualClock clock;
  obs::set_obs_clock(&clock);
  auto& tracer = obs::Tracer::instance();
  tracer.set_enabled(true);  // the table below is built FROM the trace

  const perf::EpochModel model(io::abci_profile(),
                               perf::resnet50_profile());

  const std::vector<std::pair<Strategy, double>> arms = {
      {Strategy::kGlobal, 0.0},
      {Strategy::kLocal, 0.0},
      {Strategy::kPartial, 0.1},
  };
  const std::vector<std::string> arm_labels = {"global", "local",
                                               "partial-0.1"};
  const std::vector<std::size_t> worker_counts = {64,  128,  256,
                                                  512, 1024, 2048};

  for (std::size_t m : worker_counts) {
    const perf::WorkloadShape shape{.dataset_samples = 1'200'000,
                                    .workers = m,
                                    .local_batch = 32};
    for (std::size_t a = 0; a < arms.size(); ++a) {
      emit_epoch_spans(clock, std::to_string(m), arm_labels[a],
                       model.epoch(shape, arms[a].first, arms[a].second));
    }
  }

  // Aggregate (scale, strategy) -> total seconds from the recorded spans.
  std::map<std::pair<std::string, std::string>, double> totals;
  for (const auto& e : tracer.snapshot()) {
    totals[{span_attr(e, "scale"), span_attr(e, "strategy")}] +=
        static_cast<double>(e.dur_us) / 1e6;
  }

  TextTable t("Fig. 9 epoch time (seconds, from span tracer)");
  t.header({"workers", "global", "local", "partial-0.1", "GS/LS ratio",
            "partial/LS ratio"});
  for (std::size_t m : worker_counts) {
    const std::string scale = std::to_string(m);
    const double gs = totals[{scale, "global"}];
    const double ls = totals[{scale, "local"}];
    const double pls = totals[{scale, "partial-0.1"}];
    t.row({scale, fmt_double(gs, 1), fmt_double(ls, 1), fmt_double(pls, 1),
           fmt_double(gs / ls, 2), fmt_double(pls / ls, 2)});
  }
  t.print(std::cout);
  std::cout << "Paper: GS ~5x slower than LS at 128 workers; partial-0.1\n"
               "~= LS up to 512, visibly degrading at 1,024-2,048.\n";

  obs::set_obs_clock(nullptr);
  return 0;
}
