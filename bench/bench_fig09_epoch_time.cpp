// Figure 9: per-epoch training time of ResNet50 / ImageNet-1K on the
// ABCI profile as the worker count grows, for global, local and
// partial-0.1 shuffling. The paper's shape: global is ~5x slower than
// local at 128 workers and the gap grows with scale; partial-0.1 tracks
// local up to 512 workers and degrades at 1,024-2,048 (fewer iterations to
// overlap with + all-to-all congestion).
#include <iostream>

#include "perf/perf_model.hpp"
#include "util/table.hpp"

int main() {
  using namespace dshuf;
  using shuffle::Strategy;

  std::cout << "\n==================================================\n"
            << "Fig. 9 — epoch time vs workers (ResNet50 / ImageNet-1K,\n"
            << "ABCI profile, b = 32)\n"
            << "==================================================\n";

  const perf::EpochModel model(io::abci_profile(),
                               perf::resnet50_profile());

  TextTable t("Fig. 9 epoch time (seconds)");
  t.header({"workers", "global", "local", "partial-0.1", "GS/LS ratio",
            "partial/LS ratio"});
  for (std::size_t m : {64U, 128U, 256U, 512U, 1024U, 2048U}) {
    const perf::WorkloadShape shape{.dataset_samples = 1'200'000,
                                    .workers = m,
                                    .local_batch = 32};
    const double gs = model.epoch(shape, Strategy::kGlobal, 0).total();
    const double ls = model.epoch(shape, Strategy::kLocal, 0).total();
    const double pls = model.epoch(shape, Strategy::kPartial, 0.1).total();
    t.row({std::to_string(m), fmt_double(gs, 1), fmt_double(ls, 1),
           fmt_double(pls, 1), fmt_double(gs / ls, 2),
           fmt_double(pls / ls, 2)});
  }
  t.print(std::cout);
  std::cout << "Paper: GS ~5x slower than LS at 128 workers; partial-0.1\n"
               "~= LS up to 512, visibly degrading at 1,024-2,048.\n";
  return 0;
}
