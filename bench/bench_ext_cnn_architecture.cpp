// Extension ablation: Fig. 5(c) vs 5(f) with genuinely different
// ARCHITECTURES instead of MLP width proxies. On the same CIFAR-100-like
// data and the same class-sorted shards, a wide-shallow CNN (the
// WideResNet analogue) tolerates local shuffling better than a
// narrow-deep, BatchNorm-heavy CNN (the Inception analogue) — the paper's
// "some DNN models are more sensitive to samples diversity than others".
#include <iostream>

#include "bench_common.hpp"
#include "nn/conv.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  const dshuf::bench::ObsSession obs_session(argc, argv);
  using namespace dshuf;
  using namespace dshuf::bench;

  print_header("Extension", "architecture sensitivity with real CNNs",
               "wide-shallow tolerates local shuffling; narrow-deep "
               "BN-heavy degrades (Fig. 5(c) vs 5(f) mechanism)");

  data::ClassClusterSpec dspec{.num_classes = 32,
                               .samples_per_class = 64,
                               .feature_dim = 32,
                               .cluster_separation = 2.8,
                               .within_class_spread = 1.0,
                               .manifold_warp = 0.5,
                               .label_noise = 0.02,
                               .seed = 77};
  const auto split = data::make_class_clusters_split(dspec);

  struct Arch {
    std::string name;
    nn::CnnSpec spec;
  };
  const std::vector<Arch> archs = {
      {"wide-shallow CNN (WRN-like)",
       nn::CnnSpec{.input_length = 32,
                   .channels = {24},
                   .kernel = 3,
                   .pool = 2,
                   .num_classes = 32,
                   .norm = nn::NormKind::kBatchNorm}},
      {"narrow-deep CNN (Inception-like)",
       nn::CnnSpec{.input_length = 32,
                   .channels = {6, 6, 6},
                   .kernel = 3,
                   .pool = 2,
                   .num_classes = 32,
                   .norm = nn::NormKind::kBatchNorm}},
  };

  data::TrainRegime regime{.epochs = 20,
                           .base_lr = 0.1F,
                           .reference_batch = 128,
                           .milestones = {12, 17},
                           .warmup_epochs = 1.0,
                           .momentum = 0.9F,
                           .weight_decay = 5e-4F};

  TextTable t("top-1 @ M = 16, Dirichlet(0.4) shards");
  t.header({"architecture", "global", "local", "gap", "partial-0.3",
            "wall s"});
  for (const auto& arch : archs) {
    double results[3] = {0, 0, 0};
    Stopwatch sw;
    int idx = 0;
    for (const auto& [strategy, q] :
         std::vector<std::pair<shuffle::Strategy, double>>{
             {shuffle::Strategy::kGlobal, 0.0},
             {shuffle::Strategy::kLocal, 0.0},
             {shuffle::Strategy::kPartial, 0.3}}) {
      sim::SimConfig cfg;
      cfg.workers = 16;
      cfg.local_batch = 8;
      cfg.strategy = strategy;
      cfg.q = q;
      // Mild Dirichlet skew: the regime where architectures separate —
      // fully class-sorted shards collapse both.
      cfg.dirichlet_alpha = 0.4;
      cfg.seed = 123;
      Rng mrng = Rng(cfg.seed).fork(0x91);
      nn::Model model = nn::make_cnn(arch.spec, mrng);
      const auto res = sim::train_model(
          model, split.train, split.val, regime, cfg,
          shuffle::strategy_label(strategy, q));
      results[idx++] = res.best_top1;
    }
    t.row({arch.name, fmt_percent(results[0]), fmt_percent(results[1]),
           fmt_percent(results[0] - results[1]), fmt_percent(results[2]),
           fmt_double(sw.seconds(), 1)});
  }
  t.print(std::cout);
  std::cout << "Reading: the local-shuffling gap should be visibly larger\n"
               "for the narrow-deep architecture (more BatchNorms over\n"
               "fewer channels => more batch-composition sensitivity), and\n"
               "partial-0.3 should close it for both.\n";
  return 0;
}
