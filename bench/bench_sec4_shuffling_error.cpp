// Section IV-B: the shuffling-error analysis. Reports epsilon(A, h, N) =
// 1 - sigma/N! (Equation 11) across worker counts and exchange fractions
// for ImageNet-scale N, the non-domination threshold sqrt(bM/N), and the
// three terms of the convergence bound (Equation 6) — reproducing the
// paper's conclusion that the error is ~1 and dominates the bound for all
// practical settings (hence the need for the empirical study).
#include <iostream>

#include "shuffle/shuffling_error.hpp"
#include "util/table.hpp"

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const dshuf::bench::ObsSession obs_session(argc, argv);
  using namespace dshuf;
  using namespace dshuf::shuffle;

  std::cout << "\n==================================================\n"
            << "Sec. IV-B — shuffling error vs convergence bound\n"
            << "Paper claim: for ImageNet-scale N and practical M, b the\n"
            << "error ~= 1 and dominates the convergence-rate bound.\n"
            << "==================================================\n";

  const double n = 1.2e6;
  const double b = 32;

  TextTable t("epsilon(A,h,N) for |N| = 1.2e6, b = 32");
  t.header({"workers", "Q", "epsilon", "threshold sqrt(bM/N)",
            "dominates?"});
  for (double m : {4.0, 64.0, 512.0, 2048.0, 4096.0, 100000.0}) {
    for (double q : {0.1, 0.5}) {
      const double eps = shuffling_error(n, m, q);
      const double thr = domination_threshold(n, m, b);
      const bool loose = sigma_overcounts(n, m, q);
      t.row({fmt_double(m, 0), fmt_double(q, 1),
             loose ? "(Eq.9 overcounts)" : fmt_double(eps, 6),
             fmt_double(thr, 4),
             loose ? "n/a" : (eps > thr ? "yes" : "no")});
    }
  }
  t.print(std::cout);
  std::cout << "Note: Equation 9 is a loose count; where sigma > N! (very\n"
               "small M, or large Q) the formula cannot bound the error and\n"
               "rows are marked. Wherever it is meaningful the paper's\n"
               "epsilon ~= 1 conclusion holds.\n";

  TextTable bt("Equation 6 bound terms (S = 90 epochs)");
  bt.header({"workers", "sqrt(1/(S|N|))", "log|N|/|N|",
             "|N| eps^2 / (b|M|)"});
  for (double m : {64.0, 512.0, 4096.0}) {
    const auto terms = bound_terms({.n = n, .m = m, .q = 0.1, .b = b}, 90);
    bt.row({fmt_double(m, 0), fmt_double(terms.statistical, 8),
            fmt_double(terms.optimization, 8),
            fmt_double(terms.shuffling, 2)});
  }
  bt.print(std::cout);
  std::cout << "The shuffling term dwarfs the statistical/optimization\n"
               "terms => the bound cannot explain PLS's empirical success;\n"
               "convergence must be studied empirically (Section V).\n";
  return 0;
}
