#include "bench_common.hpp"

#include <iostream>

#include "util/stopwatch.hpp"

namespace dshuf::bench {

void print_header(const std::string& figure, const std::string& title,
                  const std::string& paper_claim) {
  std::cout << "\n==================================================\n"
            << figure << " — " << title << '\n'
            << "Paper claim: " << paper_claim << '\n'
            << "==================================================\n";
}

std::vector<ArmResult> run_panel(const PanelSpec& spec) {
  print_header(spec.figure, spec.title, spec.paper_claim);
  std::cout << "Workload proxy: " << spec.workload.name << " ("
            << spec.workload.paper_model << " / "
            << spec.workload.paper_dataset << "), partition="
            << data::to_string(spec.partition) << "\n";

  std::vector<ArmResult> out;
  TextTable summary(spec.figure + " summary");
  summary.header({"scale", "workers", "strategy", "best top-1",
                  "final top-1", "exchanged/epoch", "storage ratio",
                  "wall s"});

  for (const auto& scale : spec.scales) {
    TextTable curves(spec.figure + " accuracy curves @ " +
                     scale.paper_scale + " (M=" +
                     std::to_string(scale.workers) + ")");
    std::vector<std::string> header{"epoch"};
    std::vector<std::vector<std::string>> cols;

    for (const auto& arm : spec.arms) {
      sim::SimConfig cfg;
      cfg.workers = scale.workers;
      cfg.local_batch = scale.local_batch;
      cfg.strategy = arm.strategy;
      cfg.q = arm.q;
      cfg.partition = spec.partition;
      cfg.seed = spec.seed;
      cfg.epochs = spec.epochs;

      Stopwatch sw;
      auto result = sim::run_workload_experiment(spec.workload, cfg);
      const double wall = sw.seconds();

      header.push_back(result.label);
      std::vector<std::string> col;
      for (const auto& e : result.epochs) {
        col.push_back(e.val_top1 >= 0 ? fmt_percent(e.val_top1) : "-");
      }
      cols.push_back(std::move(col));

      const auto& first = result.epochs.front();
      summary.row({scale.paper_scale, std::to_string(scale.workers),
                   result.label, fmt_percent(result.best_top1),
                   fmt_percent(result.final_top1),
                   std::to_string(first.samples_exchanged),
                   fmt_double(result.peak_storage_ratio, 2),
                   fmt_double(wall, 1)});
      out.push_back(ArmResult{scale, std::move(result)});
    }

    curves.header(header);
    std::size_t rows = 0;
    for (const auto& c : cols) rows = std::max(rows, c.size());
    for (std::size_t e = 0; e < rows; ++e) {
      std::vector<std::string> row{std::to_string(e)};
      for (const auto& c : cols) row.push_back(e < c.size() ? c[e] : "-");
      curves.row(std::move(row));
    }
    curves.print(std::cout);
    if (!spec.csv_prefix.empty()) {
      const std::string path = spec.csv_prefix + "_M" +
                               std::to_string(scale.workers) + ".csv";
      if (curves.write_csv(path)) {
        std::cout << "(curves written to " << path << ")\n";
      }
    }
  }

  summary.print(std::cout);
  return out;
}

}  // namespace dshuf::bench
