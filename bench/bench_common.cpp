#include "bench_common.hpp"

#include <iostream>
#include <string_view>

#include "netsim/virtual_comm.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "shuffle/exchange_plan.hpp"
#include "shuffle/mpi_exchange.hpp"
#include "util/stopwatch.hpp"

namespace dshuf::bench {

namespace {

/// Value of `--<name>=v` / `--<name> v` anywhere in argv; "" when absent.
std::string scan_flag(int argc, const char* const* argv,
                      std::string_view name) {
  const std::string eq = "--" + std::string(name) + "=";
  const std::string bare = "--" + std::string(name);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind(eq, 0) == 0) return std::string(arg.substr(eq.size()));
    if (arg == bare && i + 1 < argc) return argv[i + 1];
  }
  return "";
}

}  // namespace

ObsSession::ObsSession(int argc, const char* const* argv)
    : trace_out_(scan_flag(argc, argv, "trace-out")),
      metrics_out_(scan_flag(argc, argv, "metrics-out")),
      timeseries_out_(scan_flag(argc, argv, "timeseries-out")) {
  if (!trace_out_.empty()) {
    obs::Tracer::instance().set_enabled(true);
  }
  if (!timeseries_out_.empty()) {
    auto& sampler = obs::TimeseriesSampler::instance();
    sampler.set_enabled(true);
    sampler.reset();  // window deltas start from the bench's entry state
  }
}

ObsSession::~ObsSession() {
  auto& tracer = obs::Tracer::instance();
  if (!trace_out_.empty()) {
    if (tracer.write_chrome_trace(trace_out_)) {
      std::cout << "(trace written to " << trace_out_ << ")\n";
    } else {
      std::cerr << "failed to write trace to " << trace_out_ << "\n";
    }
    const std::string epochs_csv = trace_out_ + ".epochs.csv";
    if (tracer.write_epoch_report_csv(epochs_csv)) {
      std::cout << "(epoch report written to " << epochs_csv << ")\n";
    }
    tracer.set_enabled(false);
  }
  if (!timeseries_out_.empty()) {
    auto& sampler = obs::TimeseriesSampler::instance();
    // Close out whatever ran after the last per-epoch tick (teardown,
    // final evals) so the export always covers the full session.
    sampler.sample_window("final");
    if (sampler.write_json(timeseries_out_)) {
      std::cout << "(timeseries written to " << timeseries_out_ << ")\n";
    } else {
      std::cerr << "failed to write timeseries to " << timeseries_out_
                << "\n";
    }
    sampler.set_enabled(false);
  }
  if (!metrics_out_.empty()) {
    const auto snap = obs::Registry::instance().snapshot();
    const bool csv = metrics_out_.size() >= 4 &&
                     metrics_out_.compare(metrics_out_.size() - 4, 4,
                                          ".csv") == 0;
    const bool ok = csv ? snap.write_csv(metrics_out_)
                        : snap.write_json(metrics_out_);
    if (ok) {
      std::cout << "(metrics written to " << metrics_out_ << ")\n";
    } else {
      std::cerr << "failed to write metrics to " << metrics_out_ << "\n";
    }
  }
}

void print_header(const std::string& figure, const std::string& title,
                  const std::string& paper_claim) {
  std::cout << "\n==================================================\n"
            << figure << " — " << title << '\n'
            << "Paper claim: " << paper_claim << '\n'
            << "==================================================\n";
}

std::vector<ArmResult> run_panel(const PanelSpec& spec) {
  print_header(spec.figure, spec.title, spec.paper_claim);
  std::cout << "Workload proxy: " << spec.workload.name << " ("
            << spec.workload.paper_model << " / "
            << spec.workload.paper_dataset << "), partition="
            << data::to_string(spec.partition) << "\n";

  std::vector<ArmResult> out;
  TextTable summary(spec.figure + " summary");
  summary.header({"scale", "workers", "backend", "strategy", "best top-1",
                  "final top-1", "exchanged/epoch", "storage ratio",
                  "wall s"});

  for (const auto& scale : spec.scales) {
    // The accuracy panel trains a real model, so it runs the in-process
    // trainer at a substituted M that keeps the per-worker sample/class
    // regime — the backend column says so. Paper-scale traffic claims are
    // NOT made here: benches that quote true M route the exchange through
    // the virtual-rank backend and label those rows "virtual".
    TextTable curves(spec.figure + " accuracy curves @ M=" +
                     std::to_string(scale.workers) +
                     " (trainer backend; stands in for " +
                     scale.paper_scale + ")");
    std::vector<std::string> header{"epoch"};
    std::vector<std::vector<std::string>> cols;

    for (const auto& arm : spec.arms) {
      sim::SimConfig cfg;
      cfg.workers = scale.workers;
      cfg.local_batch = scale.local_batch;
      cfg.strategy = arm.strategy;
      cfg.q = arm.q;
      cfg.partition = spec.partition;
      cfg.seed = spec.seed;
      cfg.epochs = spec.epochs;

      obs::SpanGuard arm_span("bench.arm",
                              {{"figure", spec.figure},
                               {"scale", scale.paper_scale}});
      auto result = sim::run_workload_experiment(spec.workload, cfg);
      arm_span.attr("label", result.label);
      const double wall = static_cast<double>(arm_span.finish()) / 1e6;

      header.push_back(result.label);
      std::vector<std::string> col;
      for (const auto& e : result.epochs) {
        col.push_back(e.val_top1 >= 0 ? fmt_percent(e.val_top1) : "-");
      }
      cols.push_back(std::move(col));

      const auto& first = result.epochs.front();
      summary.row({scale.paper_scale, std::to_string(scale.workers),
                   "trainer", result.label, fmt_percent(result.best_top1),
                   fmt_percent(result.final_top1),
                   std::to_string(first.samples_exchanged),
                   fmt_double(result.peak_storage_ratio, 2),
                   fmt_double(wall, 1)});
      out.push_back(ArmResult{scale, std::move(result)});
    }

    curves.header(header);
    std::size_t rows = 0;
    for (const auto& c : cols) rows = std::max(rows, c.size());
    for (std::size_t e = 0; e < rows; ++e) {
      std::vector<std::string> row{std::to_string(e)};
      for (const auto& c : cols) row.push_back(e < c.size() ? c[e] : "-");
      curves.row(std::move(row));
    }
    curves.print(std::cout);
    if (!spec.csv_prefix.empty()) {
      const std::string path = spec.csv_prefix + "_M" +
                               std::to_string(scale.workers) + ".csv";
      if (curves.write_csv(path)) {
        std::cout << "(curves written to " << path << ")\n";
      }
    }
  }

  summary.print(std::cout);
  return out;
}

VirtualExchangeResult run_virtual_exchange_probe(
    const VirtualExchangeProbe& probe) {
  using namespace dshuf::shuffle;
  const int m = static_cast<int>(probe.workers);
  const std::size_t quota = exchange_quota(probe.shard, probe.q);

  netsim::VirtualWorldOptions opts;
  opts.caps.nic_out_bps = 1e8;
  opts.caps.nic_in_bps = 1e8;
  opts.caps.fabric_bps = 0;  // unconstrained pool: NIC-bound epoch
  opts.caps.per_message_latency_s = 5e-6;
  opts.event_quantum_us = 16;
  netsim::VirtualWorld world(m, opts);

  std::vector<ShardStore> stores;
  stores.reserve(probe.workers);
  for (int r = 0; r < m; ++r) {
    std::vector<SampleId> shard;
    shard.reserve(probe.shard);
    for (std::size_t i = 0; i < probe.shard; ++i) {
      shard.push_back(static_cast<SampleId>(
          static_cast<std::size_t>(r) * probe.shard + i));
    }
    stores.emplace_back(std::move(shard), probe.shard + quota);
  }
  std::vector<ExchangeScratch> scratch(probe.workers);

  const std::size_t payload_bytes = probe.payload_bytes;
  const PayloadFn payload = [payload_bytes](SampleId id,
                                            std::vector<std::byte>& out) {
    out.insert(out.end(), payload_bytes, static_cast<std::byte>(id & 0xFF));
  };
  const DepositFn deposit = [](SampleId, std::span<const std::byte>) {};

  VirtualExchangeResult res;
  res.draws_per_worker = quota;
  std::vector<std::size_t> body(probe.workers, 0);
  std::vector<std::size_t> sent(probe.workers, 0);
  Stopwatch sw;
  world.run([&](comm::Communicator& c) {
    const auto r = static_cast<std::size_t>(c.rank());
    const ExchangeOutcome out = run_pls_exchange_epoch(
        c, stores[r], probe.seed, /*epoch=*/0, probe.q, probe.shard, payload,
        deposit, /*robust=*/nullptr, &scratch[r]);
    body[r] = out.bytes_body;
    sent[r] = out.bytes_sent;
  });
  res.wall_s = sw.seconds();
  res.makespan_s =
      static_cast<double>(world.last_run_stats().virtual_makespan_us) * 1e-6;
  for (std::size_t r = 0; r < probe.workers; ++r) {
    res.bytes_payload += body[r];
    res.bytes_sent += sent[r];
  }

  // The epoch derives its plan from (seed, epoch, M, quota); rebuild it to
  // count the draws that must cross the wire.
  ExchangePlan audit;
  audit.rebuild(probe.seed, /*epoch=*/0, m, quota);
  for (std::size_t i = 0; i < audit.rounds(); ++i) {
    for (int r = 0; r < m; ++r) {
      if (audit.dest(i, r) != r) ++res.wire_samples;
    }
  }
  return res;
}

}  // namespace dshuf::bench
