// Figure 1: node-local storage of fifteen TOP500 systems vs DL dataset
// sizes — the motivation figure. For each system we report its per-node
// dedicated storage, how many of the paper's nine datasets could be fully
// replicated per node (the state-of-practice global-shuffling deployment),
// and how many become feasible under partial local shuffling at 1,024
// workers with Q = 0.1 (storage (1+Q) * D / M per worker).
#include <iostream>

#include "io/storage.hpp"
#include "shuffle/traffic.hpp"
#include "util/table.hpp"

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const dshuf::bench::ObsSession obs_session(argc, argv);
  using namespace dshuf;

  std::cout << "\n==================================================\n"
            << "Fig. 1 — TOP500 node-local storage vs dataset sizes\n"
            << "Paper claim: many top systems cannot replicate modern DL\n"
            << "datasets to node-local storage; PLS removes the need.\n"
            << "==================================================\n";

  const auto& systems = io::top500_systems();
  const auto& datasets = io::figure1_datasets();

  TextTable dataset_table("Fig. 1 datasets (red horizontal lines)");
  dataset_table.header({"dataset", "size"});
  for (const auto& d : datasets) {
    dataset_table.row({d.name, fmt_bytes(d.bytes)});
  }
  dataset_table.print(std::cout);

  constexpr std::size_t kWorkers = 1024;
  constexpr double kQ = 0.1;

  TextTable table("Fig. 1 systems (TOP500 Nov 2020)");
  table.header({"system", "rank", "storage/node", "kind",
                "datasets replicable/node (GS)",
                "datasets feasible (PLS, M=1024, Q=0.1)"});
  for (const auto& s : systems) {
    std::size_t fit_global = 0;
    std::size_t fit_pls = 0;
    for (const auto& d : datasets) {
      if (s.node_local_bytes >= d.bytes) ++fit_global;
      const auto t = shuffle::compute_traffic(
          {.dataset_bytes = d.bytes, .workers = kWorkers, .q = kQ});
      if (s.node_local_bytes >= t.storage_pls) ++fit_pls;
    }
    std::string kind = s.node_local_bytes == 0 ? "none"
                       : s.network_attached   ? "burst buffer"
                                              : "local SSD";
    if (s.dl_designed) kind += " (*DL)";
    table.row({s.name, std::to_string(s.top500_rank),
               s.node_local_bytes > 0 ? fmt_bytes(s.node_local_bytes) : "-",
               kind,
               std::to_string(fit_global) + "/" +
                   std::to_string(datasets.size()),
               std::to_string(fit_pls) + "/" +
                   std::to_string(datasets.size())});
  }
  table.print(std::cout);

  std::cout << "Reading: under global-shuffle replication most systems fit\n"
               "few or none of the datasets per node; with PLS every system\n"
               "that has ANY local storage fits all of them — the paper's\n"
               "qualitative-advantage claim for storage-poor machines.\n";
  return 0;
}
