// Ablation (DESIGN.md #4): the local-shuffling pathology requires initial
// partition skew. With a class-sorted initial distribution (a directory-
// ordered dataset copy) local shuffling collapses at scale; with strided
// or random (near-iid) shards it is benign — which is why the paper's
// Fig. 5(a)-(d) "local is enough" regime coexists with the Fig. 5(e)-(f)
// failures.
#include <iostream>

#include "bench_common.hpp"
#include "data/partition.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  const dshuf::bench::ObsSession obs_session(argc, argv);
  using namespace dshuf;
  using namespace dshuf::bench;

  print_header("Ablation", "initial partition scheme vs local shuffling",
               "skewed shards cause the local-shuffling gap; iid shards "
               "do not");

  const auto& workload = data::find_workload("imagenet1k-resnet50");
  auto split = data::make_class_clusters_split(workload.data);

  TextTable t("local vs global top-1 by partition scheme (M = 32)");
  t.header({"partition", "shard skew (TV)", "global top-1", "local top-1",
            "gap"});
  for (auto scheme :
       {data::PartitionScheme::kClassSorted, data::PartitionScheme::kContiguous,
        data::PartitionScheme::kStrided, data::PartitionScheme::kRandom}) {
    double results[2] = {0, 0};
    int idx = 0;
    for (auto strategy :
         {shuffle::Strategy::kGlobal, shuffle::Strategy::kLocal}) {
      sim::SimConfig cfg;
      cfg.workers = 32;
      cfg.local_batch = 8;
      cfg.strategy = strategy;
      cfg.partition = scheme;
      cfg.seed = 123;
      cfg.epochs = 20;
      const auto res = sim::run_workload_experiment(workload, cfg);
      results[idx++] = res.best_top1;
    }
    Rng rng = Rng(123).fork(0x90);
    const auto shards =
        data::partition_dataset(split.train, 32, scheme, rng);
    t.row({data::to_string(scheme),
           fmt_double(data::partition_skew(split.train, shards), 3),
           fmt_percent(results[0]), fmt_percent(results[1]),
           fmt_percent(results[0] - results[1])});
  }
  t.print(std::cout);
  std::cout << "Reading: the gap column should be large for class-sorted/\n"
               "contiguous (skewed) shards and ~0 for strided/random.\n";
  return 0;
}
