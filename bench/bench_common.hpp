// Shared harness for the figure-reproduction benches.
//
// Each accuracy bench declares a panel: a workload, a set of (strategy, Q)
// arms and a set of worker scales; the harness trains every arm with
// identical seeds/data, prints the per-epoch validation-accuracy series
// (the paper's curves) and a summary table, and optionally writes CSVs
// next to the binary for plotting.
#pragma once

#include <string>
#include <vector>

#include "data/workloads.hpp"
#include "sim/trainer.hpp"
#include "util/table.hpp"

namespace dshuf::bench {

struct Arm {
  shuffle::Strategy strategy;
  double q = 0.0;
};

struct ScaleSpec {
  std::size_t workers;
  std::size_t local_batch;
  /// The paper-scale this stands in for (e.g. "512 GPUs"); the mapping
  /// keeps classes-per-worker / samples-per-worker in the paper's regime.
  std::string paper_scale;
};

struct PanelSpec {
  std::string figure;      // e.g. "Fig. 5(a)"
  std::string title;       // e.g. "ResNet50 / ImageNet-1K"
  std::string paper_claim; // one-line expected shape
  data::Workload workload;
  std::vector<ScaleSpec> scales;
  std::vector<Arm> arms;
  std::size_t epochs = 0;  // 0 = workload default
  data::PartitionScheme partition = data::PartitionScheme::kClassSorted;
  std::uint64_t seed = 123;
  std::string csv_prefix;  // empty = no CSV
};

struct ArmResult {
  ScaleSpec scale;
  sim::SimResult result;
};

/// Run every (scale x arm), print curves + summary, return results.
std::vector<ArmResult> run_panel(const PanelSpec& spec);

/// One REAL coalesced exchange epoch (run_pls_exchange_epoch) at true M on
/// the virtual-rank backend — the honest companion to the trainer panel's
/// substituted scales. Flat Algorithm-1 plan, flat fabric, 4 KiB-class
/// payloads; returns measured wire bytes against the plan's exact draw
/// count so a bench can print measured-vs-model columns with the backend
/// labeled.
struct VirtualExchangeProbe {
  std::size_t workers = 0;
  double q = 0.1;
  std::size_t shard = 16;
  std::size_t payload_bytes = 4096;
  std::uint64_t seed = 4242;
};

struct VirtualExchangeResult {
  std::size_t draws_per_worker = 0;  // exchange quota (rounds)
  std::size_t wire_samples = 0;      // plan draws with dest != src
  std::size_t bytes_payload = 0;     // measured payload bytes, all ranks
  std::size_t bytes_sent = 0;        // DATA bytes incl. headers/retries
  double makespan_s = 0;             // virtual epoch makespan
  double wall_s = 0;                 // real time simulating it
};

VirtualExchangeResult run_virtual_exchange_probe(
    const VirtualExchangeProbe& probe);

/// Print the standard bench header (figure id, claim, substitution note).
void print_header(const std::string& figure, const std::string& title,
                  const std::string& paper_claim);

/// Per-bench observability session. Scans argv for
///
///   --trace-out=<path>       (or: --trace-out <path>)
///   --metrics-out=<path>     (or: --metrics-out <path>)
///   --timeseries-out=<path>  (or: --timeseries-out <path>)
///
/// ignoring every other flag, so it composes with each bench's own
/// ArgParser. When --trace-out is given the tracer is enabled for the
/// bench's lifetime; on destruction the session writes the Chrome trace
/// JSON there, a per-epoch CSV next to it (<path>.epochs.csv), and — when
/// --metrics-out is given — the metrics snapshot (JSON, or CSV when the
/// path ends in .csv). --timeseries-out arms the windowed telemetry
/// sampler (one window per simulated epoch, plus a trailing "final"
/// window for whatever ran after the last tick) and writes the
/// dshuf.timeseries.v1 JSON on destruction. Construct it first thing in
/// main().
class ObsSession {
 public:
  ObsSession(int argc, const char* const* argv);
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;
  ~ObsSession();

  [[nodiscard]] bool tracing() const { return !trace_out_.empty(); }

 private:
  std::string trace_out_;
  std::string metrics_out_;
  std::string timeseries_out_;
};

}  // namespace dshuf::bench
