// Extension analysis: the mixing account of WHY small Q suffices. The
// balanced exchange resamples a Q-fraction of every shard from the global
// pool each epoch, so the initial-partition skew contracts geometrically
// at rate (1 - Q). After the warmup epochs (where the LR is small and
// accuracy is insensitive anyway), even Q = 0.1 has erased most of the
// pathology — matching where the Fig. 5/6 partial curves rejoin global.
#include <iostream>

#include "data/partition.hpp"
#include "data/workloads.hpp"
#include "shuffle/mixing.hpp"
#include "shuffle/shuffler.hpp"
#include "util/table.hpp"

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const dshuf::bench::ObsSession obs_session(argc, argv);
  using namespace dshuf;
  using namespace dshuf::shuffle;

  std::cout << "\n==================================================\n"
            << "Extension — shard-skew mixing analysis\n"
            << "==================================================\n";

  const auto& workload = data::find_workload("imagenet1k-resnet50");
  const auto dataset = data::make_class_clusters(workload.data);
  const std::size_t workers = 32;
  const std::size_t epochs = 15;

  auto shards_for = [&] {
    Rng rng(5);
    return data::partition_dataset(dataset, workers,
                                   data::PartitionScheme::kClassSorted, rng);
  };

  TextTable t("mean worker-vs-global label TV distance per epoch "
              "(class-sorted start, M = 32)");
  std::vector<std::string> header{"epoch"};
  std::vector<MixingTrace> traces;
  std::vector<std::string> labels;

  {
    LocalShuffler ls(shards_for(), 7);
    traces.push_back(measure_mixing(ls, dataset, epochs));
    labels.push_back("local");
  }
  for (double q : {0.1, 0.3, 0.7}) {
    PartialLocalShuffler pls(shards_for(), q, 7);
    traces.push_back(measure_mixing(pls, dataset, epochs));
    labels.push_back(strategy_label(Strategy::kPartial, q));
  }
  {
    GlobalShuffler gs(dataset.size(), static_cast<int>(workers), 7);
    traces.push_back(measure_mixing(gs, dataset, epochs));
    labels.push_back("global");
  }

  for (const auto& l : labels) header.push_back(l);
  t.header(header);
  for (std::size_t e = 0; e < epochs; e += (e < 5 ? 1 : 2)) {
    std::vector<std::string> row{std::to_string(e)};
    for (const auto& tr : traces) {
      row.push_back(fmt_double(tr.skew_per_epoch[e], 3));
    }
    t.row(std::move(row));
  }
  t.print(std::cout);

  TextTable c("measured skew contraction per epoch vs the (1 - Q) theory");
  c.header({"strategy", "measured contraction", "1 - Q prediction",
            "coverage after 15 epochs (shards)"});
  for (std::size_t i = 0; i < traces.size(); ++i) {
    double prediction = 1.0;
    if (labels[i] == "partial-0.1") prediction = 0.9;
    if (labels[i] == "partial-0.3") prediction = 0.7;
    if (labels[i] == "partial-0.7") prediction = 0.3;
    if (labels[i] == "global") prediction = 0.0;
    c.row({labels[i], fmt_double(traces[i].skew_contraction, 3),
           labels[i] == "global" ? "~0 (one-shot)"
                                 : fmt_double(prediction, 2),
           fmt_double(traces[i].coverage_per_epoch.back(), 2)});
  }
  c.print(std::cout);
  std::cout << "Reading: partial-Q's excess skew decays geometrically, at\n"
               "or slightly faster than the (1 - Q)-per-epoch replacement\n"
               "theory (random picks add sampling diffusion on top of pure\n"
               "replacement). This is the quantitative account of the\n"
               "paper's empirical finding that small exchange fractions\n"
               "suffice: within a handful of epochs — while the LR is still\n"
               "warming up — the initial-partition pathology is gone.\n";
  return 0;
}
