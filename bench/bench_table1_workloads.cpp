// Table I: the models and datasets of the paper's evaluation, alongside
// the scaled synthetic proxies this reproduction trains (see DESIGN.md's
// substitution table for why the proxies preserve the relevant behaviour).
#include <iostream>

#include "data/workloads.hpp"
#include "nn/builder.hpp"
#include "util/table.hpp"

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const dshuf::bench::ObsSession obs_session(argc, argv);
  using namespace dshuf;

  std::cout << "\n==================================================\n"
            << "Table I — models and datasets (paper vs proxy)\n"
            << "==================================================\n";

  TextTable table("Table I");
  table.header({"workload", "paper model", "paper dataset", "paper #samples",
                "paper size", "proxy N", "proxy C", "proxy dim",
                "proxy model", "norm"});
  for (const auto& w : data::workload_registry()) {
    const std::size_t n = w.data.num_classes * w.data.samples_per_class;
    std::string arch = std::to_string(w.model.input_dim);
    for (auto h : w.model.hidden) {
      arch.append("-").append(std::to_string(h));
    }
    arch.append("-").append(std::to_string(w.model.num_classes));
    table.row({w.name, w.paper_model, w.paper_dataset, w.paper_samples,
               w.paper_size, std::to_string(n),
               std::to_string(w.data.num_classes),
               std::to_string(w.data.feature_dim), arch,
               nn::to_string(w.model.norm)});
  }
  table.print(std::cout);
  return 0;
}
