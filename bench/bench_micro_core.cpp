// Google-benchmark microbenchmarks for the core primitives: exchange-plan
// construction, full partial-local epochs, global permutation dealing,
// GEMM, and one simulated training iteration.
#include <benchmark/benchmark.h>

#include "data/synthetic.hpp"
#include "nn/builder.hpp"
#include "nn/loss.hpp"
#include "shuffle/shuffler.hpp"

namespace {

using namespace dshuf;

std::vector<std::vector<shuffle::SampleId>> make_shards(std::size_t n,
                                                        std::size_t workers) {
  std::vector<std::vector<shuffle::SampleId>> shards(workers);
  for (std::size_t i = 0; i < n; ++i) {
    shards[i % workers].push_back(static_cast<shuffle::SampleId>(i));
  }
  return shards;
}

void BM_ExchangePlanConstruct(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const auto quota = static_cast<std::size_t>(state.range(1));
  std::size_t epoch = 0;
  for (auto _ : state) {
    shuffle::ExchangePlan plan(42, epoch++, workers, quota);
    benchmark::DoNotOptimize(plan.rounds());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          workers * static_cast<std::int64_t>(quota));
}
BENCHMARK(BM_ExchangePlanConstruct)
    ->Args({64, 16})
    ->Args({512, 16})
    ->Args({2048, 8})
    ->Args({4096, 4});

void BM_PartialEpoch(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  const std::size_t n = workers * 64;
  shuffle::PartialLocalShuffler pls(make_shards(n, workers), 0.1, 7);
  std::size_t epoch = 0;
  for (auto _ : state) {
    pls.begin_epoch(epoch++);
    benchmark::DoNotOptimize(pls.local_order(0).data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PartialEpoch)->Arg(16)->Arg(128)->Arg(1024);

void BM_GlobalEpoch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  shuffle::GlobalShuffler gs(n, 64, 7);
  std::size_t epoch = 0;
  for (auto _ : state) {
    gs.begin_epoch(epoch++);
    benchmark::DoNotOptimize(gs.local_order(0).data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GlobalEpoch)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  Tensor out({n, n});
  for (auto _ : state) {
    gemm(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(128)->Arg(256);

void BM_TrainIteration(benchmark::State& state) {
  data::ClassClusterSpec dspec{.num_classes = 16,
                               .samples_per_class = 64,
                               .feature_dim = 32,
                               .seed = 5};
  const auto ds = data::make_class_clusters(dspec);
  nn::MlpSpec mspec{.input_dim = 32, .hidden = {96, 64}, .num_classes = 16};
  Rng rng(5);
  nn::Model model = nn::make_mlp(mspec, rng);
  nn::SoftmaxCrossEntropy ce;
  std::vector<data::SampleId> batch(32);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i] = static_cast<data::SampleId>(i * 7 % ds.size());
  }
  const Tensor x = ds.gather(batch);
  const auto y = ds.gather_labels(batch);
  for (auto _ : state) {
    model.zero_grad();
    const Tensor logits = model.forward(x, true);
    const float loss = ce.forward(logits, y);
    benchmark::DoNotOptimize(loss);
    model.backward(ce.backward());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_TrainIteration);

}  // namespace

BENCHMARK_MAIN();
