// Google-benchmark microbenchmarks for the core primitives: exchange-plan
// construction, full partial-local epochs, global permutation dealing,
// GEMM and Conv1d under both kernel backends, and one simulated training
// iteration (MLP and CNN). The *Ref variants pin the retained naive
// kernels so blocked-vs-reference speedups can be read off one run;
// tools/dshuf_bench records the same comparison as JSON.
#include <benchmark/benchmark.h>

#include "data/synthetic.hpp"
#include "nn/builder.hpp"
#include "nn/conv.hpp"
#include "nn/loss.hpp"
#include "shuffle/shuffler.hpp"
#include "sim/overlap.hpp"
#include "task/scheduler.hpp"

namespace {

using namespace dshuf;

std::vector<std::vector<shuffle::SampleId>> make_shards(std::size_t n,
                                                        std::size_t workers) {
  std::vector<std::vector<shuffle::SampleId>> shards(workers);
  for (std::size_t i = 0; i < n; ++i) {
    shards[i % workers].push_back(static_cast<shuffle::SampleId>(i));
  }
  return shards;
}

void BM_ExchangePlanConstruct(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const auto quota = static_cast<std::size_t>(state.range(1));
  std::size_t epoch = 0;
  for (auto _ : state) {
    shuffle::ExchangePlan plan(42, epoch++, workers, quota);
    benchmark::DoNotOptimize(plan.rounds());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          workers * static_cast<std::int64_t>(quota));
}
BENCHMARK(BM_ExchangePlanConstruct)
    ->Args({64, 16})
    ->Args({512, 16})
    ->Args({2048, 8})
    ->Args({4096, 4});

void BM_PartialEpoch(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  const std::size_t n = workers * 64;
  shuffle::PartialLocalShuffler pls(make_shards(n, workers), 0.1, 7);
  std::size_t epoch = 0;
  for (auto _ : state) {
    pls.begin_epoch(epoch++);
    benchmark::DoNotOptimize(pls.local_order(0).data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PartialEpoch)->Arg(16)->Arg(128)->Arg(1024);

void BM_GlobalEpoch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  shuffle::GlobalShuffler gs(n, 64, 7);
  std::size_t epoch = 0;
  for (auto _ : state) {
    gs.begin_epoch(epoch++);
    benchmark::DoNotOptimize(gs.local_order(0).data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GlobalEpoch)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void run_gemm(benchmark::State& state, KernelBackend backend,
              void (*op)(const Tensor&, const Tensor&, Tensor&, bool)) {
  const ScopedKernelBackend scoped(backend);
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  Tensor out({n, n});
  for (auto _ : state) {
    op(a, b, out, false);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}

void BM_Gemm(benchmark::State& state) {
  run_gemm(state, KernelBackend::kBlocked, gemm);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(128)->Arg(256);

void BM_GemmRef(benchmark::State& state) {
  run_gemm(state, KernelBackend::kReference, gemm);
}
BENCHMARK(BM_GemmRef)->Arg(32)->Arg(128)->Arg(256);

// Blocked GEMM under the task scheduler at 1/2/4/8 workers (256^3, the
// size tools/dshuf_bench records as multicore GF/s). Results are
// bit-identical across worker counts — only throughput moves, and only
// when the host actually has the cores.
void BM_GemmMulticore(benchmark::State& state) {
  const task::ScopedTaskWorkers scoped(
      static_cast<std::size_t>(state.range(0)));
  const ScopedKernelBackend backend(KernelBackend::kBlocked);
  constexpr std::size_t n = 256;
  Rng rng(3);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  Tensor out({n, n});
  for (auto _ : state) {
    gemm(a, b, out, false);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmMulticore)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// One overlapped exchange+compute epoch (sim/overlap.hpp) per worker
// count: the epoch-time row of BENCH_micro.json. Spawns a 4-rank World
// each iteration, so items = the epoch's exchanged dataset.
void BM_TrainEpochOverlap(benchmark::State& state) {
  const task::ScopedTaskWorkers scoped(
      static_cast<std::size_t>(state.range(0)));
  sim::OverlapConfig cfg;
  cfg.n = 256;
  cfg.ranks = 4;
  cfg.q = 0.3;
  cfg.epochs = 1;
  cfg.seed = 11;
  cfg.compute_gemm_n = 128;
  cfg.compute_reps = 2;
  std::uint64_t seed = 11;
  for (auto _ : state) {
    cfg.seed = seed++;
    const auto res = sim::run_overlapped_epochs(cfg);
    benchmark::DoNotOptimize(res.shards.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cfg.n));
}
BENCHMARK(BM_TrainEpochOverlap)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_GemmAtB(benchmark::State& state) {
  run_gemm(state, KernelBackend::kBlocked, gemm_at_b);
}
BENCHMARK(BM_GemmAtB)->Arg(128)->Arg(256);

void BM_GemmABt(benchmark::State& state) {
  run_gemm(state, KernelBackend::kBlocked, gemm_a_bt);
}
BENCHMARK(BM_GemmABt)->Arg(128)->Arg(256);

// One Conv1d block at the CNN proxy's working size (batch 32, 8 -> 16
// channels over length 32). Items = output scalars per pass.
nn::Conv1d make_bench_conv(Rng& rng) {
  return nn::Conv1d(/*in_channels=*/8, /*out_channels=*/16, /*length=*/32,
                    /*kernel=*/3, rng);
}

void run_conv_forward(benchmark::State& state, KernelBackend backend) {
  const ScopedKernelBackend scoped(backend);
  Rng rng(7);
  nn::Conv1d conv = make_bench_conv(rng);
  const Tensor x = Tensor::randn({32, 8 * 32}, rng);
  Tensor y;
  for (auto _ : state) {
    conv.forward_into(x, y, true);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(32 * 16 * 32));
}

void BM_Conv1dForward(benchmark::State& state) {
  run_conv_forward(state, KernelBackend::kBlocked);
}
BENCHMARK(BM_Conv1dForward);

void BM_Conv1dForwardRef(benchmark::State& state) {
  run_conv_forward(state, KernelBackend::kReference);
}
BENCHMARK(BM_Conv1dForwardRef);

void run_conv_backward(benchmark::State& state, KernelBackend backend) {
  const ScopedKernelBackend scoped(backend);
  Rng rng(7);
  nn::Conv1d conv = make_bench_conv(rng);
  const Tensor x = Tensor::randn({32, 8 * 32}, rng);
  const Tensor g = Tensor::randn({32, 16 * 32}, rng);
  Tensor y;
  Tensor gi;
  conv.forward_into(x, y, true);
  for (auto _ : state) {
    conv.backward_into(g, gi);
    benchmark::DoNotOptimize(gi.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(32 * 16 * 32));
}

void BM_Conv1dBackward(benchmark::State& state) {
  run_conv_backward(state, KernelBackend::kBlocked);
}
BENCHMARK(BM_Conv1dBackward);

void BM_Conv1dBackwardRef(benchmark::State& state) {
  run_conv_backward(state, KernelBackend::kReference);
}
BENCHMARK(BM_Conv1dBackwardRef);

void run_train_iteration(benchmark::State& state, nn::Model model,
                         const data::InMemoryDataset& ds) {
  nn::SoftmaxCrossEntropy ce;
  std::vector<data::SampleId> batch(32);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i] = static_cast<data::SampleId>(i * 7 % ds.size());
  }
  const Tensor x = ds.gather(batch);
  const auto y = ds.gather_labels(batch);
  for (auto _ : state) {
    model.zero_grad();
    const Tensor& logits = model.forward(x, true);
    const float loss = ce.forward(logits, y);
    benchmark::DoNotOptimize(loss);
    model.backward(ce.grad());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.size()));
}

void BM_TrainIteration(benchmark::State& state) {
  data::ClassClusterSpec dspec{.num_classes = 16,
                               .samples_per_class = 64,
                               .feature_dim = 32,
                               .seed = 5};
  const auto ds = data::make_class_clusters(dspec);
  nn::MlpSpec mspec{.input_dim = 32, .hidden = {96, 64}, .num_classes = 16};
  Rng rng(5);
  run_train_iteration(state, nn::make_mlp(mspec, rng), ds);
}
BENCHMARK(BM_TrainIteration);

void BM_TrainIterationCnn(benchmark::State& state) {
  data::ClassClusterSpec dspec{.num_classes = 10,
                               .samples_per_class = 64,
                               .feature_dim = 32,
                               .seed = 5};
  const auto ds = data::make_class_clusters(dspec);
  nn::CnnSpec cspec;  // defaults match feature_dim 32
  Rng rng(5);
  run_train_iteration(state, nn::make_cnn(cspec, rng), ds);
}
BENCHMARK(BM_TrainIterationCnn);

}  // namespace

BENCHMARK_MAIN();
