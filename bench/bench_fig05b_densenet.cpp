// Figure 5(b): DenseNet161 / ImageNet-1K — the "local is enough" case:
// local shuffling attains global-level accuracy at both tested scales
// (the paper saw no gap for DenseNet up to 1,024 GPUs).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  const dshuf::bench::ObsSession obs_session(argc, argv);
  using namespace dshuf;
  using namespace dshuf::bench;

  PanelSpec spec;
  spec.figure = "Fig. 5(b)";
  spec.title = "DenseNet161 / ImageNet-1K";
  spec.paper_claim = "local ~= global at 256 and 1,024 GPUs";
  spec.workload = data::find_workload("imagenet1k-densenet161");
  spec.scales = {{.workers = 4, .local_batch = 32, .paper_scale = "256 GPUs"},
                 {.workers = 8, .local_batch = 16,
                  .paper_scale = "1024 GPUs"}};
  spec.arms = {{shuffle::Strategy::kGlobal, 0},
               {shuffle::Strategy::kLocal, 0}};
  // The paper's default initial distribution is a random permutation
  // (Fig. 2: partitioning represented as a shuffle); these panels are the
  // paper's no-gap regime, so we use it rather than the class-sorted skew
  // surrogate of the gap panels.
  spec.partition = data::PartitionScheme::kRandom;
  run_panel(spec);
  return 0;
}
