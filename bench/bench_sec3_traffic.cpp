// Section III-B worked example and traffic/storage arithmetic: per-epoch
// bytes sent, read locally, and read from the PFS for each strategy, plus
// the storage requirements — including the paper's headline numbers
// (225 MiB sent / 2 GiB local at Q = 0.1 on 512 workers for ImageNet-21K;
// 0.03% of the dataset per worker on Fugaku at 4,096 workers).
#include <iostream>

#include "shuffle/traffic.hpp"
#include "util/table.hpp"

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const dshuf::bench::ObsSession obs_session(argc, argv);
  using namespace dshuf;
  constexpr double kTiB = 1024.0 * 1024.0 * 1024.0 * 1024.0;

  std::cout << "\n==================================================\n"
            << "Sec. III-B — per-epoch traffic & storage arithmetic\n"
            << "==================================================\n";

  {
    TextTable t("Worked example: ImageNet-21K (1.1 TiB), 512 workers");
    t.header({"Q", "sent/worker", "local read/worker", "PFS read (GS)",
              "storage/worker (PLS)", "PLS storage as % of dataset"});
    for (double q : {0.01, 0.1, 0.3, 0.5, 1.0}) {
      const auto r = shuffle::compute_traffic(
          {.dataset_bytes = 1.1 * kTiB, .workers = 512, .q = q});
      t.row({fmt_double(q, 2), fmt_bytes(r.sent_per_worker),
             fmt_bytes(r.local_read_per_worker),
             fmt_bytes(r.pfs_read_per_worker_gs), fmt_bytes(r.storage_pls),
             fmt_percent(r.pls_fraction_of_dataset, 3)});
    }
    t.print(std::cout);
    std::cout << "Paper: Q=0.1 => send 225 MiB, read 2 GiB locally vs GS\n"
                 "reading 2.2 GiB from the PFS.\n";
  }

  {
    TextTable t("Storage bound vs worker count (ImageNet-1K, Q = 0.1)");
    t.header({"workers", "shard", "PLS storage/worker", "% of dataset"});
    for (std::size_t m : {128U, 512U, 1024U, 2048U, 4096U}) {
      const auto r = shuffle::compute_traffic(
          {.dataset_bytes = 140e9, .workers = m, .q = 0.1});
      t.row({std::to_string(m), fmt_bytes(r.shard_bytes),
             fmt_bytes(r.storage_pls),
             fmt_percent(r.pls_fraction_of_dataset, 3)});
    }
    t.print(std::cout);
    std::cout << "Paper headline: at 4,096 Fugaku workers each stores\n"
                 "~1.3/4096 ~= 0.03% of the dataset.\n";
  }

  {
    // The tables above are arithmetic. This one is not: each row runs a
    // real coalesced exchange epoch at M = 512 on the virtual-rank
    // backend and checks the measured payload bytes against the plan's
    // exact draw count — the same per-draw accounting compute_traffic
    // extrapolates to dataset-sized payloads.
    TextTable t(
        "Wire model vs measured exchange (512 workers, 16-sample shards, "
        "4 KiB payloads)");
    t.header({"Q", "backend", "draws/worker", "measured sent/worker",
              "plan sent/worker", "ratio", "epoch ms"});
    for (double q : {0.1, 0.5, 1.0}) {
      const auto r =
          bench::run_virtual_exchange_probe({.workers = 512, .q = q});
      const double plan_bytes = static_cast<double>(r.wire_samples) * 4096.0;
      t.row({fmt_double(q, 2), "virtual",
             std::to_string(r.draws_per_worker),
             fmt_bytes(static_cast<double>(r.bytes_payload) / 512.0),
             fmt_bytes(plan_bytes / 512.0),
             fmt_double(static_cast<double>(r.bytes_payload) / plan_bytes,
                        3),
             fmt_double(r.makespan_s * 1e3, 3)});
    }
    t.print(std::cout);
  }
  return 0;
}
