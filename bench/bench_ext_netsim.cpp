// Network-level validation of the exchange claims using the flow-level
// simulator (max-min fair NIC/fabric sharing):
//   (1) Algorithm 1's balance keeps the exchange makespan at the NIC
//       bound; naive random destinations pay an incast penalty that grows
//       with scale — the network-level cost of losing the balance
//       guarantee.
//   (2) The hierarchical variant relieves a tight fabric exactly as the
//       analytic perf model assumes.
#include <iostream>

#include "netsim/flowsim.hpp"
#include "util/table.hpp"

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const dshuf::bench::ObsSession obs_session(argc, argv);
  using namespace dshuf;
  using namespace dshuf::netsim;

  std::cout << "\n==================================================\n"
            << "Extension — flow-level network simulation of the exchange\n"
            << "==================================================\n";

  const double bytes = 117e3;  // one ImageNet-like sample per message
  const std::size_t quota = 16;
  const LinkCaps nic_only{.nic_out_bps = 1.25e9,
                          .nic_in_bps = 1.25e9,
                          .fabric_bps = 0,
                          .per_message_latency_s = 5e-6};

  TextTable t("exchange makespan: balanced (Algorithm 1) vs naive");
  t.header({"workers", "balanced ms", "naive ms", "naive penalty",
            "NIC lower bound ms"});
  for (int m : {16, 32, 64}) {
    const shuffle::ExchangePlan plan(7, 0, m, quota);
    const auto balanced =
        simulate_flows(flows_from_plan(plan, bytes), nic_only, m);
    const auto naive =
        simulate_flows(flows_naive(m, quota, bytes, 7), nic_only, m);
    const double bound = quota * bytes / nic_only.nic_in_bps;
    t.row({std::to_string(m), fmt_double(balanced.makespan_s * 1e3, 2),
           fmt_double(naive.makespan_s * 1e3, 2),
           fmt_double(naive.makespan_s / balanced.makespan_s, 2) + "x",
           fmt_double(bound * 1e3, 2)});
  }
  t.print(std::cout);

  TextTable h("hierarchical vs flat under a tight fabric (32 ranks, "
              "4 groups, 50% intra rounds)");
  h.header({"fabric GB/s", "flat ms", "hierarchical ms", "speedup"});
  const int groups = 4;
  const int gsize = 8;
  const shuffle::ExchangePlan flat(7, 0, groups * gsize, quota);
  const shuffle::HierarchicalExchangePlan hier(7, 0, groups, gsize, quota,
                                               0.5);
  for (double fabric_gbps : {2.0, 5.0, 10.0, 40.0}) {
    LinkCaps caps = nic_only;
    caps.fabric_bps = fabric_gbps * 1e9;
    const auto f = simulate_flows(flows_from_plan(flat, bytes), caps,
                                  groups * gsize);
    const auto hr = simulate_flows(flows_from_hierarchical_plan(hier, bytes),
                                   caps, groups * gsize);
    h.row({fmt_double(fabric_gbps, 0), fmt_double(f.makespan_s * 1e3, 2),
           fmt_double(hr.makespan_s * 1e3, 2),
           fmt_double(f.makespan_s / hr.makespan_s, 2) + "x"});
  }
  h.print(std::cout);
  std::cout << "Reading: the balanced plan sits on the NIC lower bound at\n"
               "every scale; the naive scheme's worst receiver inflates the\n"
               "makespan. With a constrained fabric the hierarchical plan's\n"
               "group-local rounds recover most of the loss — confirming\n"
               "the analytic model's congestion assumptions from first\n"
               "principles.\n";
  return 0;
}
