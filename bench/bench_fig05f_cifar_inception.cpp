// Figure 5(f): Inception-v4 / CIFAR-100 — architecture sensitivity: on the
// SAME dataset where WideResNet tolerated local shuffling (Fig. 5(c)),
// the narrower, BatchNorm-heavy Inception-style model degrades under
// local shuffling and needs partial-0.3 to recover.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  const dshuf::bench::ObsSession obs_session(argc, argv);
  using namespace dshuf;
  using namespace dshuf::bench;

  PanelSpec spec;
  spec.figure = "Fig. 5(f)";
  spec.title = "Inception-v4 / CIFAR-100 (BN-sensitive architecture)";
  spec.paper_claim =
      "local degrades at 128 workers (unlike WRN on the same data); "
      "partial-0.3 recovers";
  spec.workload = data::find_workload("cifar100-inception");
  spec.scales = {
      {.workers = 16, .local_batch = 8, .paper_scale = "128 GPUs"}};
  spec.arms = {{shuffle::Strategy::kGlobal, 0},
               {shuffle::Strategy::kLocal, 0},
               {shuffle::Strategy::kPartial, 0.1},
               {shuffle::Strategy::kPartial, 0.3}};
  run_panel(spec);
  return 0;
}
