// Extension bench (paper Section V-F future work): hierarchical global
// exchange mapped to the node hierarchy. Two questions:
//   (1) Does accuracy survive constraining the exchange topology?
//       (train flat partial vs hierarchical partial at equal Q)
//   (2) How much exchange time does group-locality buy at scale?
//       (perf model: flat vs hierarchical congestion profile)
#include <iostream>

#include "bench_common.hpp"
#include "perf/perf_model.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  const dshuf::bench::ObsSession obs_session(argc, argv);
  using namespace dshuf;
  using namespace dshuf::bench;
  using shuffle::Strategy;

  print_header("Extension (Sec. V-F)",
               "hierarchical global exchange",
               "group-local exchange should match flat accuracy while "
               "cutting all-to-all congestion at scale");

  // --- (1) accuracy parity -------------------------------------------
  const auto& workload = data::find_workload("imagenet1k-resnet50");
  TextTable acc("accuracy: flat vs hierarchical partial (M = 32, Q = 0.1)");
  acc.header({"variant", "best top-1", "final top-1", "intra traffic",
              "wall s"});
  struct Variant {
    std::string name;
    int groups;
    double intra;
  };
  for (const Variant& v : {Variant{"flat (Algorithm 1)", 0, 0.0},
                           Variant{"hier 4 groups, 50% intra", 4, 0.5},
                           Variant{"hier 8 groups, 75% intra", 8, 0.75}}) {
    sim::SimConfig cfg;
    cfg.workers = 32;
    cfg.local_batch = 8;
    cfg.strategy = Strategy::kPartial;
    cfg.q = 0.1;
    cfg.partition = data::PartitionScheme::kClassSorted;
    cfg.seed = 123;
    cfg.hierarchical_groups = v.groups;
    cfg.hierarchical_intra_fraction = v.intra;
    Stopwatch sw;
    const auto res = sim::run_workload_experiment(workload, cfg);
    acc.row({v.name, fmt_percent(res.best_top1), fmt_percent(res.final_top1),
             v.groups > 0 ? fmt_percent(v.intra) + "+ (plan)" : "0%",
             fmt_double(sw.seconds(), 1)});
  }
  acc.print(std::cout);

  // --- (2) modelled exchange time at scale ---------------------------
  const perf::EpochModel model(io::abci_profile(), perf::resnet50_profile());
  TextTable t("modelled partial-0.1 exchange time: flat vs hierarchical "
              "(16 ranks/group, 50% intra)");
  t.header({"workers", "flat exchange s", "hier exchange s", "speedup"});
  for (std::size_t m : {512U, 1024U, 2048U, 4096U}) {
    const perf::WorkloadShape shape{.dataset_samples = 1'200'000,
                                    .workers = m,
                                    .local_batch = 32};
    const double flat =
        model.epoch(shape, Strategy::kPartial, 0.1).exchange_s;
    const double hier =
        model
            .epoch_partial_hierarchical(shape, 0.1,
                                        static_cast<int>(m / 16), 0.5)
            .exchange_s;
    t.row({std::to_string(m), fmt_double(flat, 2), fmt_double(hier, 2),
           fmt_double(flat / hier, 2) + "x"});
  }
  t.print(std::cout);
  std::cout << "Reading: accuracy is unchanged (the exchange is still a\n"
               "balanced permutation each round; only its topology is\n"
               "constrained) while the congested large-scale exchange\n"
               "shrinks substantially — supporting the paper's proposal.\n";
  return 0;
}
