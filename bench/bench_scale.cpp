// bench_scale: Fugaku-scale strong-scaling baseline on the virtual-rank
// backend (schema dshuf.bench_scale.v1).
//
// Runs the REAL coalesced exchange epoch (run_pls_exchange_epoch,
// Q = 1.0) at M = 256 / 1024 / 4096 virtual ranks — far past the
// threaded backend's cap — under three plan arms on a fixed bisection
// budget (768 NICs' worth, the analytic model's congestion knee):
//
//   * flat          — Algorithm-1 permutations; every cross-rank frame
//                     crosses the shared fabric pool.
//   * hierarchical  — the grouped plan (50% intra rounds) on the SAME
//                     flat fabric: plan locality alone, no network
//                     mapping. Total bytes still cross the bisection, so
//                     this arm isolates what grouping does NOT buy.
//   * topology      — the grouped plan on a two-level topology (G group
//                     uplinks splitting the same aggregate bisection):
//                     intra rounds ride node-local links and bypass the
//                     trunk, which is where the congestion relief comes
//                     from.
//
// For every arm the bench records the virtual epoch makespan, the
// link-level lower bound recomputed from the epoch's actual plan, the
// simulated congestion factor (makespan / uncongested NIC bound) against
// the analytic model's 1 + (M/768)^1.6 envelope, and the wire bytes
// against the plan's worst-case lower bound (every non-self draw moves
// one payload). --out writes BENCH_scale.json; --check re-reads a file
// and enforces the envelope: the simulated factor must stay within
// [0.9, analytic], the makespan must respect the link lower bound, the
// measured bytes must cover the plan bound, and the topology arm must
// beat flat by >= 10% once M >= 1024. --quick runs one epoch per arm
// (the CI perf-smoke configuration; the committed baseline is the full
// three-epoch run). The backend column is always "virtual": nothing in
// this bench silently substitutes laptop-scale M.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "netsim/virtual_comm.hpp"
#include "shuffle/exchange_plan.hpp"
#include "shuffle/mpi_exchange.hpp"
#include "shuffle/topology.hpp"
#include "util/argparse.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace dshuf;
using namespace dshuf::shuffle;

constexpr std::size_t kShard = 16;
constexpr double kQ = 1.0;  // quota = shard: the full-exchange stress case
constexpr std::size_t kPayloadBytes = 4096;
constexpr double kNicBps = 1e8;  // per-rank NIC, bytes/s (virtual units)
// Aggregate bisection shared by fabric-crossing traffic. 768 NICs' worth
// — the analytic model's congestion knee — so the simulated factor and
// the analytic 1 + (M/768)^1.6 curve are probing the same network.
constexpr double kBisectionBps = 768.0 * kNicBps;
constexpr double kLatencyS = 5e-6;
constexpr double kIntraFraction = 0.5;
constexpr std::uint64_t kSeed = 4242;
// Mirrors perf_model.cpp's all-to-all congestion constants.
constexpr double kCongestionKnee = 768.0;
constexpr double kCongestionExp = 1.6;

struct ScaleShape {
  int workers;
  int groups;
};
constexpr ScaleShape kShapes[] = {{256, 16}, {1024, 32}, {4096, 64}};

enum class PlanArm { kFlat, kHier, kTopo };

const char* arm_name(PlanArm a) {
  switch (a) {
    case PlanArm::kFlat: return "flat";
    case PlanArm::kHier: return "hierarchical";
    default: return "topology";
  }
}

struct ArmRow {
  int workers = 0;
  int groups = 0;
  std::string plan;
  std::string backend = "virtual";
  std::size_t epochs = 0;
  double makespan_s = 0;       // mean virtual epoch makespan
  double nic_bound_s = 0;      // uncongested per-rank NIC bound
  double lower_bound_s = 0;    // max over link classes (true floor)
  double congestion_sim = 0;   // makespan / nic_bound
  double congestion_analytic = 0;
  double bytes_sent = 0;        // wire bytes, all ranks, per epoch
  double bytes_lower_bound = 0; // non-self draws * payload
  double wall_s = 0;            // real time for the whole arm
  double flows = 0;             // flows admitted per epoch
};

double analytic_factor(PlanArm arm, int workers) {
  const double base =
      std::pow(static_cast<double>(workers) / kCongestionKnee,
               kCongestionExp);
  // The grouped plan only relieves the bisection when the network maps
  // groups to local links: on the flat fabric the envelope is the full
  // factor; on the topology the intra fraction bypasses the trunk.
  const double share = arm == PlanArm::kTopo ? 1.0 - kIntraFraction : 1.0;
  return 1.0 + share * base;
}

// Link-level lower bounds recomputed from the epoch's actual plan: every
// non-self draw moves one payload over its source egress / dest ingress
// NIC, and (flat fabric: always; topology: cross-group only) over the
// shared bisection. Max-min fairness cannot finish before the most
// loaded link drains.
struct PlanLoad {
  std::size_t wire_samples = 0;  // draws with dest != src
  double nic_bound_s = 0;
  double lower_bound_s = 0;
};

PlanLoad plan_load(const ExchangePlan& plan, PlanArm arm, int workers,
                   int groups) {
  const int group_size = workers / groups;
  std::vector<std::size_t> out(static_cast<std::size_t>(workers), 0);
  std::vector<std::size_t> in(static_cast<std::size_t>(workers), 0);
  std::vector<std::size_t> cross_out(static_cast<std::size_t>(groups), 0);
  std::vector<std::size_t> cross_in(static_cast<std::size_t>(groups), 0);
  PlanLoad load;
  for (std::size_t i = 0; i < plan.rounds(); ++i) {
    for (int r = 0; r < workers; ++r) {
      const int d = plan.dest(i, r);
      if (d == r) continue;
      ++load.wire_samples;
      ++out[static_cast<std::size_t>(r)];
      ++in[static_cast<std::size_t>(d)];
      const int gs = r / group_size;
      const int gd = d / group_size;
      if (gs != gd) {
        ++cross_out[static_cast<std::size_t>(gs)];
        ++cross_in[static_cast<std::size_t>(gd)];
      }
    }
  }
  std::size_t nic_max = 0;
  for (int r = 0; r < workers; ++r) {
    nic_max = std::max({nic_max, out[static_cast<std::size_t>(r)],
                        in[static_cast<std::size_t>(r)]});
  }
  load.nic_bound_s =
      static_cast<double>(nic_max) * kPayloadBytes / kNicBps + kLatencyS;
  double trunk_s = 0;
  if (arm == PlanArm::kTopo) {
    // Per-group uplink/downlink at bisection / G: cross-group bytes only.
    std::size_t trunk_max = 0;
    for (int g = 0; g < groups; ++g) {
      trunk_max = std::max({trunk_max, cross_out[static_cast<std::size_t>(g)],
                            cross_in[static_cast<std::size_t>(g)]});
    }
    trunk_s = static_cast<double>(trunk_max) * kPayloadBytes /
              (kBisectionBps / groups);
  } else {
    // Flat fabric pool: every wire sample crosses it.
    trunk_s =
        static_cast<double>(load.wire_samples) * kPayloadBytes / kBisectionBps;
  }
  load.lower_bound_s = std::max(load.nic_bound_s, trunk_s + kLatencyS);
  return load;
}

ArmRow run_arm(const ScaleShape& shape, PlanArm arm, std::size_t epochs) {
  const int m = shape.workers;
  const int groups = shape.groups;
  const int group_size = m / groups;
  const std::size_t quota = exchange_quota(kShard, kQ);

  Topology topo;
  topo.groups = groups;
  topo.group_size = group_size;
  topo.intra_bw_bps = kNicBps;
  topo.inter_bw_bps = kBisectionBps / groups;
  topo.intra_fraction = kIntraFraction;
  // Leader staging squeezes a whole group's cross traffic through one
  // rank-grade NIC — a cost model, not a win, at S = 64. The headline
  // arms keep it off; see DESIGN.md §15.
  topo.leader_aggregation = false;

  netsim::VirtualWorldOptions opts;
  opts.caps.nic_out_bps = kNicBps;
  opts.caps.nic_in_bps = kNicBps;
  opts.caps.per_message_latency_s = kLatencyS;
  // Coarse completion quantum (lazy rebalancing): < 2.5% pessimism on a
  // >= 650 us epoch, and the per-completion refills that dominated the
  // topology arms collapse to one per tick.
  opts.event_quantum_us = 16;
  if (arm == PlanArm::kTopo) {
    opts.caps.fabric_bps = 0;  // the per-group trunks ARE the bisection
    opts.topology = topo;
  } else {
    opts.caps.fabric_bps = kBisectionBps;
  }

  // The grouped arms install the process-wide exchange topology so
  // run_pls_exchange_epoch swaps in rebuild_grouped; the flat arm keeps
  // the Algorithm-1 permutations.
  std::optional<ScopedExchangeTopology> scoped;
  if (arm != PlanArm::kFlat) scoped.emplace(topo);

  std::vector<ShardStore> stores;
  stores.reserve(static_cast<std::size_t>(m));
  for (int r = 0; r < m; ++r) {
    std::vector<SampleId> shard;
    shard.reserve(kShard);
    for (std::size_t i = 0; i < kShard; ++i) {
      shard.push_back(static_cast<SampleId>(
          static_cast<std::size_t>(r) * kShard + i));
    }
    stores.emplace_back(std::move(shard), kShard + quota);
  }
  std::vector<ExchangeScratch> scratch(static_cast<std::size_t>(m));

  const PayloadFn payload = [](SampleId id, std::vector<std::byte>& out) {
    out.insert(out.end(), kPayloadBytes,
               static_cast<std::byte>(id & 0xFF));
  };
  const DepositFn deposit = [](SampleId, std::span<const std::byte>) {};

  ArmRow row;
  row.workers = m;
  row.groups = groups;
  row.plan = arm_name(arm);
  row.epochs = epochs;

  netsim::VirtualWorld world(m, opts);
  std::vector<std::size_t> bytes_sent(static_cast<std::size_t>(m), 0);
  Stopwatch sw;
  ExchangePlan audit;
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    world.run([&](comm::Communicator& c) {
      const auto r = static_cast<std::size_t>(c.rank());
      const ExchangeOutcome out = run_pls_exchange_epoch(
          c, stores[r], kSeed, epoch, kQ, kShard, payload, deposit,
          /*robust=*/nullptr, &scratch[r]);
      post_exchange_local_shuffle(kSeed, epoch, c.rank(),
                                  stores[r].mutable_ids());
      bytes_sent[r] += out.bytes_sent;
    });
    const auto& stats = world.last_run_stats();
    row.makespan_s += static_cast<double>(stats.virtual_makespan_us) * 1e-6;
    row.flows += static_cast<double>(stats.flows);

    // Recompute the epoch's plan for the link-level bounds (the exchange
    // derives it from the same seed/epoch/topology inputs).
    if (arm == PlanArm::kFlat) {
      audit.rebuild(kSeed, epoch, m, quota);
    } else {
      audit.rebuild_grouped(kSeed, epoch, groups, group_size, quota,
                            kIntraFraction);
    }
    const PlanLoad load = plan_load(audit, arm, m, groups);
    row.nic_bound_s += load.nic_bound_s;
    row.lower_bound_s += load.lower_bound_s;
    row.bytes_lower_bound +=
        static_cast<double>(load.wire_samples) * kPayloadBytes;
  }
  row.wall_s = sw.seconds();

  const auto e = static_cast<double>(epochs);
  row.makespan_s /= e;
  row.flows /= e;
  row.nic_bound_s /= e;
  row.lower_bound_s /= e;
  row.bytes_lower_bound /= e;
  std::size_t total_bytes = 0;
  for (const std::size_t b : bytes_sent) total_bytes += b;
  row.bytes_sent = static_cast<double>(total_bytes) / e;
  row.congestion_sim = row.makespan_s / row.nic_bound_s;
  row.congestion_analytic = analytic_factor(arm, m);
  return row;
}

std::string fmt(double v) {
  std::ostringstream oss;
  oss.precision(6);
  oss << v;
  return oss.str();
}

void check_row(const json::Value& r) {
  const double makespan = r.at("makespan_s").as_number();
  const double nic_bound = r.at("nic_bound_s").as_number();
  const double lower = r.at("lower_bound_s").as_number();
  const double sim = r.at("congestion_sim").as_number();
  const double analytic = r.at("congestion_analytic").as_number();
  const double bytes = r.at("bytes_sent").as_number();
  const double bytes_bound = r.at("bytes_lower_bound").as_number();
  const std::string where = r.at("plan").as_string() + " @ M=" +
                            fmt(r.at("workers").as_number());
  DSHUF_CHECK_EQ(r.at("backend").as_string(), "virtual",
                 where << ": rows must come from the virtual backend");
  DSHUF_CHECK_GT(makespan, 0.0, where << ": bad makespan");
  DSHUF_CHECK_GT(nic_bound, 0.0, where << ": bad NIC bound");
  // Max-min fairness cannot beat the most loaded link...
  DSHUF_CHECK_GE(makespan, 0.99 * lower,
                 where << ": makespan beats the link-level lower bound");
  // ...and the balanced plan must keep the epoch inside the analytic
  // congestion envelope. The measured factor carries a scale-independent
  // additive overhead the congestion model deliberately excludes —
  // per-message latency and the ACK turnaround of the real protocol —
  // which dominates the tiny congestion term at M=256, hence the +0.15
  // allowance on top of the 5% envelope slack.
  DSHUF_CHECK_GE(sim, 0.9, where << ": congestion factor below 1");
  DSHUF_CHECK_LE(sim, analytic * 1.05 + 0.15,
                 where << ": simulated congestion escaped the analytic "
                          "envelope");
  // Every non-self draw must have moved at least one payload.
  DSHUF_CHECK_GE(bytes, bytes_bound,
                 where << ": measured wire bytes below the plan's "
                          "worst-case lower bound");
}

int run_check(const std::string& path) {
  std::ifstream in(path);
  DSHUF_CHECK(in.good(), "cannot open " << path);
  std::stringstream buf;
  buf << in.rdbuf();
  const json::Value doc = json::parse(buf.str());
  DSHUF_CHECK_EQ(doc.at("schema").as_string(), "dshuf.bench_scale.v1",
                 "unexpected schema in " << path);
  const auto& rows = doc.at("rows").as_array();
  DSHUF_CHECK_EQ(rows.size(), 9U, "expected 3 scales x 3 plan arms");
  double flat_4096 = 0;
  double topo_4096 = 0;
  double flat_1024 = 0;
  double topo_1024 = 0;
  for (const auto& r : rows) {
    check_row(r);
    const int m = static_cast<int>(r.at("workers").as_number());
    const std::string plan = r.at("plan").as_string();
    if (m == 4096 && plan == "flat") flat_4096 = r.at("makespan_s").as_number();
    if (m == 4096 && plan == "topology")
      topo_4096 = r.at("makespan_s").as_number();
    if (m == 1024 && plan == "flat") flat_1024 = r.at("makespan_s").as_number();
    if (m == 1024 && plan == "topology")
      topo_1024 = r.at("makespan_s").as_number();
  }
  // The congestion-relief claim: past the knee the topology-aware plan
  // must beat flat by a clear margin (predicted 2x at 4096, 1.33x at
  // 1024; gate at 10%).
  DSHUF_CHECK_GT(flat_4096, 0.0, "missing flat @ 4096 row");
  DSHUF_CHECK_GT(topo_4096, 0.0, "missing topology @ 4096 row");
  DSHUF_CHECK_LE(topo_4096, 0.9 * flat_4096,
                 "topology-aware plan lost its congestion relief at 4096");
  DSHUF_CHECK_LE(topo_1024, 0.9 * flat_1024,
                 "topology-aware plan lost its congestion relief at 1024");
  std::cout << "bench_scale: " << path << " OK (flat@4096 "
            << fmt(flat_4096 * 1e3) << " ms vs topology "
            << fmt(topo_4096 * 1e3) << " ms)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("bench_scale",
                 "Virtual-rank strong scaling: flat vs hierarchical vs "
                 "topology-aware exchange at M = 256/1024/4096");
  args.flag("out", "", "write JSON results to this path");
  args.flag("check", "", "validate a previously written JSON file and exit");
  args.flag("quick", "false", "one epoch per arm (CI smoke)");
  if (!args.parse(argc, argv)) return 0;

  if (!args.get("check").empty()) return run_check(args.get("check"));

  const bool quick = args.get_bool("quick");
  const std::size_t epochs = quick ? 1 : 3;
  const std::size_t quota = exchange_quota(kShard, kQ);

  std::vector<ArmRow> rows;
  TextTable t("virtual-rank strong scaling (coalesced wire, Q = 1.0, " +
              std::to_string(quota) + "-sample shards, " +
              std::to_string(kPayloadBytes) + " B payloads)");
  t.header({"workers", "plan", "backend", "epoch makespan ms", "NIC bound ms",
            "link bound ms", "congestion (sim)", "congestion (analytic)",
            "wire MiB/epoch", "wall s"});
  for (const auto& shape : kShapes) {
    for (const PlanArm arm :
         {PlanArm::kFlat, PlanArm::kHier, PlanArm::kTopo}) {
      ArmRow row = run_arm(shape, arm, epochs);
      t.row({std::to_string(row.workers), row.plan, row.backend,
             fmt_double(row.makespan_s * 1e3, 3),
             fmt_double(row.nic_bound_s * 1e3, 3),
             fmt_double(row.lower_bound_s * 1e3, 3),
             fmt_double(row.congestion_sim, 2) + "x",
             fmt_double(row.congestion_analytic, 2) + "x",
             fmt_double(row.bytes_sent / (1024.0 * 1024.0), 1),
             fmt_double(row.wall_s, 2)});
      rows.push_back(std::move(row));
    }
  }
  t.print(std::cout);
  std::cout << "Reading: the balanced exchange rides the NIC bound until\n"
               "the bisection saturates (past the 768-rank knee); the\n"
               "grouped plan on a flat fabric changes nothing, while the\n"
               "same plan on the two-level topology keeps half the bytes\n"
               "off the trunk and halves the congestion factor — the\n"
               "Section V-F claim, measured on the real exchange code\n"
               "path at true M.\n";

  const std::string out_path = args.get("out");
  if (!out_path.empty()) {
    std::ostringstream j;
    j << "{\n  \"schema\": \"dshuf.bench_scale.v1\",\n"
      << "  \"config\": {\"backend\": \"virtual\", \"shard\": " << kShard
      << ", \"q\": " << fmt(kQ) << ", \"quota\": " << quota
      << ", \"payload_bytes\": " << kPayloadBytes
      << ", \"nic_bps\": " << fmt(kNicBps)
      << ", \"bisection_bps\": " << fmt(kBisectionBps)
      << ", \"intra_fraction\": " << fmt(kIntraFraction)
      << ", \"event_quantum_us\": 16"
      << ", \"epochs\": " << epochs << "},\n  \"rows\": [\n";
    bool first = true;
    for (const auto& r : rows) {
      if (!first) j << ",\n";
      first = false;
      j << "    {\"workers\": " << r.workers << ", \"groups\": " << r.groups
        << ", \"plan\": \"" << r.plan << "\", \"backend\": \"" << r.backend
        << "\", \"makespan_s\": " << fmt(r.makespan_s)
        << ", \"nic_bound_s\": " << fmt(r.nic_bound_s)
        << ", \"lower_bound_s\": " << fmt(r.lower_bound_s)
        << ", \"congestion_sim\": " << fmt(r.congestion_sim)
        << ", \"congestion_analytic\": " << fmt(r.congestion_analytic)
        << ", \"bytes_sent\": " << fmt(r.bytes_sent)
        << ", \"bytes_lower_bound\": " << fmt(r.bytes_lower_bound)
        << ", \"flows\": " << fmt(r.flows)
        << ", \"wall_s\": " << fmt(r.wall_s) << "}";
    }
    j << "\n  ]\n}\n";
    // Never emit a file our own --check would reject.
    json::parse(j.str());
    std::ofstream out(out_path);
    DSHUF_CHECK(out.good(), "cannot write " << out_path);
    out << j.str();
    std::cout << "wrote " << out_path << "\n";
  }
  return 0;
}
