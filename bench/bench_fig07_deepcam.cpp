// Figure 7: DeepCAM. (a) validation accuracy of local vs partial
// shuffling (global is infeasible: the 8.2 TB dataset fits no local
// storage and PFS training would be prohibitive) — the paper reports
// partial improving on local by ~2% at 1,024 GPUs and ~1% at 2,048.
// (b) per-epoch time vs exchange ratio against the PFS-lower-bound line.
#include <iostream>

#include "bench_common.hpp"
#include "perf/perf_model.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  const dshuf::bench::ObsSession obs_session(argc, argv);
  using namespace dshuf;
  using namespace dshuf::bench;

  print_header("Fig. 7(a)", "DeepCAM validation accuracy",
               "partial-0.5+ improves on local by ~2% (1,024 GPUs) / ~1% "
               "(2,048 GPUs); no global arm (dataset does not fit)");

  const data::ClimateSpec climate_spec{};
  const auto climate = data::make_climate_proxy(climate_spec);
  const auto& workload = data::find_workload("deepcam");

  TextTable summary("Fig. 7(a) summary");
  summary.header({"scale", "strategy", "best top-1", "final top-1",
                  "wall s"});
  struct Scale {
    std::size_t workers;
    std::size_t batch;
    std::string label;
  };
  for (const Scale& scale : {Scale{16, 8, "1024 GPUs"},
                             Scale{32, 4, "2048 GPUs"}}) {
    for (const Arm& arm :
         {Arm{shuffle::Strategy::kLocal, 0},
          Arm{shuffle::Strategy::kPartial, 0.25},
          Arm{shuffle::Strategy::kPartial, 0.5},
          Arm{shuffle::Strategy::kPartial, 0.9}}) {
      sim::SimConfig cfg;
      cfg.workers = scale.workers;
      cfg.local_batch = scale.batch;
      cfg.strategy = arm.strategy;
      cfg.q = arm.q;
      // Mild non-iid shards (Dirichlet): DeepCAM's local baseline is only
      // a couple of percent behind partial in the paper, not collapsed —
      // the climate files are spatially clustered but not class-sorted.
      cfg.dirichlet_alpha = 0.6;
      cfg.seed = 99;
      Rng mrng = Rng(cfg.seed).fork(0x91);
      nn::Model model = nn::make_mlp(workload.model, mrng);
      Stopwatch sw;
      const auto res = sim::train_model(
          model, climate.train, climate.val, workload.regime, cfg,
          shuffle::strategy_label(arm.strategy, arm.q));
      summary.row({scale.label, res.label, fmt_percent(res.best_top1),
                   fmt_percent(res.final_top1), fmt_double(sw.seconds(), 1)});
    }
  }
  summary.print(std::cout);

  // ---- (b): epoch time vs exchange ratio, with the PFS lower bound ----
  print_header("Fig. 7(b)", "DeepCAM per-epoch time",
               "partial exchange costs noticeably but stays multiple times "
               "below the PFS-based global-shuffle lower bound");
  const perf::EpochModel model(io::abci_profile(), perf::deepcam_profile());
  const perf::WorkloadShape shape{.dataset_samples = 122'000,
                                  .workers = 1024,
                                  .local_batch = 2};
  TextTable t("Fig. 7(b) epoch time @ 1,024 workers (seconds)");
  t.header({"strategy", "IO", "EXCHANGE", "FW+BW", "GE+WU", "total"});
  auto add = [&](shuffle::Strategy s, double q, const std::string& label) {
    const auto b = model.epoch(shape, s, q);
    t.row({label, fmt_double(b.io_s, 1), fmt_double(b.exchange_s, 1),
           fmt_double(b.fwbw_s, 1), fmt_double(b.gewu_s, 1),
           fmt_double(b.total(), 1)});
  };
  add(shuffle::Strategy::kLocal, 0, "local");
  for (double q : {0.25, 0.5, 0.9}) {
    add(shuffle::Strategy::kPartial, q,
        shuffle::strategy_label(shuffle::Strategy::kPartial, q));
  }
  t.print(std::cout);
  std::cout << "PFS global-shuffle lower bound (whole 8.2 TB dataset "
               "streamed once per epoch at the PFS aggregate bandwidth): "
            << fmt_double(model.pfs_global_lower_bound(shape), 1)
            << " s/epoch — the red line of Fig. 7(b).\n";
  return 0;
}
