// Ablation (DESIGN.md #1): the seed-synchronised destination permutations
// of Algorithm 1 vs naive independent random destinations (the
// DeepIO-style uncontrolled exchange the paper criticises). The plan-based
// scheme is perfectly balanced; the naive scheme leaves some workers
// oversubscribed and others starved, which translates directly into
// receive-buffer imbalance and stragglers.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <tuple>

#include "shuffle/exchange_plan.hpp"
#include "util/table.hpp"

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const dshuf::bench::ObsSession obs_session(argc, argv);
  using namespace dshuf;
  using namespace dshuf::shuffle;

  std::cout << "\n==================================================\n"
            << "Ablation — balanced (Algorithm 1) vs naive exchange\n"
            << "==================================================\n";

  TextTable t("receive-count spread per epoch (quota = 64 samples/worker)");
  t.header({"workers", "scheme", "min recv", "max recv", "max/quota",
            "stddev"});
  const std::size_t quota = 64;
  for (int m : {16, 64, 256, 1024}) {
    // Algorithm 1: balanced by construction.
    const ExchangePlan plan(5, 0, m, quota);
    std::vector<std::size_t> recv(m, 0);
    for (std::size_t i = 0; i < plan.rounds(); ++i) {
      for (int r = 0; r < m; ++r) ++recv[plan.dest(i, r)];
    }
    auto spread = [&](const std::vector<std::size_t>& v) {
      const auto mn = *std::min_element(v.begin(), v.end());
      const auto mx = *std::max_element(v.begin(), v.end());
      double mean = 0;
      for (auto c : v) mean += static_cast<double>(c);
      mean /= static_cast<double>(v.size());
      double ss = 0;
      for (auto c : v) {
        const double d = static_cast<double>(c) - mean;
        ss += d * d;
      }
      const double sd = std::sqrt(ss / static_cast<double>(v.size()));
      return std::tuple<std::size_t, std::size_t, double>{mn, mx, sd};
    };
    {
      const auto [mn, mx, sd] = spread(recv);
      t.row({std::to_string(m), "algorithm-1", std::to_string(mn),
             std::to_string(mx),
             fmt_double(static_cast<double>(mx) / quota, 2),
             fmt_double(sd, 2)});
    }
    {
      const auto naive = naive_exchange_recv_counts(5, 0, m, quota);
      const auto [mn, mx, sd] = spread(naive);
      t.row({std::to_string(m), "naive-random", std::to_string(mn),
             std::to_string(mx),
             fmt_double(static_cast<double>(mx) / quota, 2),
             fmt_double(sd, 2)});
    }
  }
  t.print(std::cout);

  // Self-send fixed points: the paper keeps them (harmless no-ops); the
  // derangement variant trades plan-construction retries for zero self
  // traffic.
  TextTable st("self-sends per epoch (64 workers, quota 64)");
  st.header({"variant", "self-sends", "expected"});
  const ExchangePlan with_self(5, 0, 64, quota, /*allow_self=*/true);
  const ExchangePlan no_self(5, 0, 64, quota, /*allow_self=*/false);
  st.row({"allow self (paper)", std::to_string(with_self.self_sends()),
          "~quota (1 fixed point/round)"});
  st.row({"derangement", std::to_string(no_self.self_sends()), "0"});
  st.print(std::cout);
  return 0;
}
