// bench_overlap: the split-phase exchange measured against the sequential
// schedule — the paper's "shuffling cost is what training cannot hide"
// claim as a runnable experiment. Two arms over identical seeds/shards:
//
//   sequential — each epoch's exchange completes before its compute;
//   overlapped — PlsEpochExchange::post fires (as a task-scheduler comm
//                task when DSHUF_WORKERS > 1), compute runs, finish()
//                collects — the exchange's in-flight window hides under
//                compute.
//
// Prints wall time per epoch for both arms plus the exchange/compute
// overlap report (obs/overlap.hpp) for the overlapped arm, and asserts
// the two schedules leave bit-identical shards. The tracer is cleared
// between arms, so a --trace-out file holds the overlapped arm only —
// CI runs dshuf_trace --min-overlap=0.5 against it.
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "obs/overlap.hpp"
#include "obs/trace.hpp"
#include "sim/overlap.hpp"
#include "task/scheduler.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const dshuf::bench::ObsSession obs_session(argc, argv);
  using namespace dshuf;
  obs::Tracer::instance().set_enabled(true);

  sim::OverlapConfig cfg;
  cfg.n = 512;
  cfg.ranks = 4;
  cfg.q = 0.3;
  cfg.epochs = 6;
  cfg.seed = 21;
  cfg.compute_gemm_n = 160;
  cfg.compute_reps = 4;

  std::cout << "\n==================================================\n"
            << "Exchange/compute overlap — split-phase vs sequential\n"
            << "==================================================\n"
            << "ranks " << cfg.ranks << ", n " << cfg.n << ", q " << cfg.q
            << ", epochs " << cfg.epochs << ", task workers "
            << task::global_workers() << "\n";

  auto timed_run = [&](bool overlapped) {
    sim::OverlapConfig arm = cfg;
    arm.overlapped = overlapped;
    const auto t0 = std::chrono::steady_clock::now();
    sim::OverlapResult res = sim::run_overlapped_epochs(arm);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    return std::make_pair(std::move(res), ms);
  };

  auto [seq, seq_ms] = timed_run(false);
  // Keep only the overlapped arm in the recorded trace (and in the
  // --trace-out file the obs session writes at exit).
  obs::Tracer::instance().clear();
  auto [ovl, ovl_ms] = timed_run(true);

  const auto epochs_d = static_cast<double>(cfg.epochs);
  TextTable arms("Wall time per epoch");
  arms.header({"schedule", "total_ms", "ms/epoch"});
  arms.row({"sequential", fmt_double(seq_ms), fmt_double(seq_ms / epochs_d)});
  arms.row({"overlapped", fmt_double(ovl_ms), fmt_double(ovl_ms / epochs_d)});
  arms.print(std::cout);

  const auto report =
      obs::compute_overlap(obs::Tracer::instance().snapshot());
  TextTable ot("Overlap report (overlapped arm)");
  ot.header({"metric", "value"});
  ot.row({"exchange spans", std::to_string(report.exchange_spans)});
  ot.row({"exchange_ms",
          fmt_double(static_cast<double>(report.exchange_us) / 1e3)});
  ot.row({"hidden_ms",
          fmt_double(static_cast<double>(report.hidden_us) / 1e3)});
  ot.row({"compute_ms",
          fmt_double(static_cast<double>(report.compute_us) / 1e3)});
  ot.row({"efficiency", fmt_percent(report.efficiency())});
  ot.print(std::cout);

  DSHUF_CHECK(seq.shards == ovl.shards,
              "overlapped schedule changed the shards");
  std::cout << "shards bit-identical across schedules: yes\n"
            << "Reading: the overlapped arm's exchange window sits under\n"
               "compute, so its visible cost is the unhidden tail only —\n"
               "the Fig. 4 overlap argument, measured on a real trace.\n";
  return 0;
}
