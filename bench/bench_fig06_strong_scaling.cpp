// Figure 6: strong scaling on the Fugaku setting — fixed global batch
// (paper: 65,536), so the local batch halves as workers double. Paper
// shape: local-shuffling accuracy decreases as the worker count grows
// (at 4,096 workers each holds ~292 samples) while partial-0.1 matches
// global, storing only ~0.03% of the dataset per worker.
#include <iostream>

#include "bench_common.hpp"
#include "shuffle/traffic.hpp"

int main(int argc, char** argv) {
  const dshuf::bench::ObsSession obs_session(argc, argv);
  using namespace dshuf;
  using namespace dshuf::bench;

  PanelSpec spec;
  spec.figure = "Fig. 6";
  spec.title = "ResNet50 / ImageNet-1K on Fugaku, strong scaling";
  spec.paper_claim =
      "fixed global batch: local degrades as workers double; partial-0.1 "
      "~= global";
  spec.workload = data::find_workload("imagenet1k-resnet50");
  // Fixed global batch of 256 at laptop scale; b halves as M doubles.
  spec.scales = {
      {.workers = 32, .local_batch = 8, .paper_scale = "2048 workers"},
      {.workers = 64, .local_batch = 4, .paper_scale = "4096 workers"}};
  spec.arms = {{shuffle::Strategy::kGlobal, 0},
               {shuffle::Strategy::kLocal, 0},
               {shuffle::Strategy::kPartial, 0.1}};
  run_panel(spec);

  // The accuracy panel substitutes M (backend column: trainer). The
  // exchange itself does NOT substitute: these rows run the real
  // coalesced epoch at true paper M on the virtual-rank backend and put
  // the measured payload bytes next to the plan's exact draw count.
  TextTable wire(
      "Paper-scale exchange, true M (Q = 0.1, 16-sample shards, 4 KiB "
      "payloads)");
  wire.header({"workers", "backend", "draws/worker", "payload measured",
               "payload (plan)", "ratio", "epoch ms", "wall s"});
  for (const std::size_t m : {1024U, 2048U, 4096U}) {
    const auto r = run_virtual_exchange_probe({.workers = m, .q = 0.1});
    const double plan_bytes = static_cast<double>(r.wire_samples) * 4096.0;
    wire.row({std::to_string(m), "virtual",
              std::to_string(r.draws_per_worker),
              fmt_bytes(static_cast<double>(r.bytes_payload)),
              fmt_bytes(plan_bytes),
              fmt_double(static_cast<double>(r.bytes_payload) / plan_bytes,
                         3),
              fmt_double(r.makespan_s * 1e3, 3), fmt_double(r.wall_s, 2)});
  }
  wire.print(std::cout);

  const auto traffic = shuffle::compute_traffic(
      {.dataset_bytes = 140e9, .workers = 4096, .q = 0.1});
  std::cout << "Storage check at paper scale (4,096 workers, Q = 0.1): "
            << fmt_percent(traffic.pls_fraction_of_dataset, 3)
            << " of the dataset per worker (paper: ~0.03%).\n";
  return 0;
}
