// Figure 6: strong scaling on the Fugaku setting — fixed global batch
// (paper: 65,536), so the local batch halves as workers double. Paper
// shape: local-shuffling accuracy decreases as the worker count grows
// (at 4,096 workers each holds ~292 samples) while partial-0.1 matches
// global, storing only ~0.03% of the dataset per worker.
#include <iostream>

#include "bench_common.hpp"
#include "shuffle/traffic.hpp"

int main(int argc, char** argv) {
  const dshuf::bench::ObsSession obs_session(argc, argv);
  using namespace dshuf;
  using namespace dshuf::bench;

  PanelSpec spec;
  spec.figure = "Fig. 6";
  spec.title = "ResNet50 / ImageNet-1K on Fugaku, strong scaling";
  spec.paper_claim =
      "fixed global batch: local degrades as workers double; partial-0.1 "
      "~= global";
  spec.workload = data::find_workload("imagenet1k-resnet50");
  // Fixed global batch of 256 at laptop scale; b halves as M doubles.
  spec.scales = {
      {.workers = 32, .local_batch = 8, .paper_scale = "2048 workers"},
      {.workers = 64, .local_batch = 4, .paper_scale = "4096 workers"}};
  spec.arms = {{shuffle::Strategy::kGlobal, 0},
               {shuffle::Strategy::kLocal, 0},
               {shuffle::Strategy::kPartial, 0.1}};
  run_panel(spec);

  const auto traffic = shuffle::compute_traffic(
      {.dataset_bytes = 140e9, .workers = 4096, .q = 0.1});
  std::cout << "Storage check at paper scale (4,096 workers, Q = 0.1): "
            << fmt_percent(traffic.pls_fraction_of_dataset, 3)
            << " of the dataset per worker (paper: ~0.03%).\n";
  return 0;
}
