// Figure 8: upstream pre-training on ImageNet-21K under different
// shuffling strategies, then downstream fine-tuning on ImageNet-1K under
// global shuffling. Paper shape: local shuffling loses ~3% upstream at
// 2,048 GPUs, but the downstream accuracy difference is trivial —
// (partial) local shuffling is safe for pre-training.
#include <iostream>

#include "bench_common.hpp"
#include "sim/transfer.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  const dshuf::bench::ObsSession obs_session(argc, argv);
  using namespace dshuf;
  using namespace dshuf::bench;

  print_header("Fig. 8",
               "ImageNet-21K upstream pre-training -> ImageNet-1K "
               "downstream fine-tuning",
               "upstream local loses a few % at scale; downstream "
               "difference is trivial");

  const data::TaxonomySpec tax_spec{
      .coarse_classes = 16,
      .fine_per_coarse = 8,   // 128 fine classes (the 21K proxy)
      .samples_per_fine = 64,
      .feature_dim = 48,
      .seed = 7,
  };
  const auto tax = data::make_taxonomy(tax_spec);

  TextTable t("Fig. 8 transfer results");
  t.header({"upstream strategy", "upstream top-1 (21K proxy)",
            "downstream top-1 (1K proxy)", "wall s"});

  for (const Arm& arm :
       {Arm{shuffle::Strategy::kGlobal, 0}, Arm{shuffle::Strategy::kLocal, 0},
        Arm{shuffle::Strategy::kPartial, 0.1}}) {
    sim::TransferConfig cfg;
    cfg.trunk = nn::MlpSpec{.input_dim = 48,
                            .hidden = {128, 96},
                            .num_classes = 1,  // overridden per stage
                            .norm = nn::NormKind::kBatchNorm};
    cfg.upstream.workers = 32;  // the "2,048 GPU" regime: ~2 fine
                                // classes per worker under class sorting
    cfg.upstream.local_batch = 8;
    cfg.upstream.strategy = arm.strategy;
    cfg.upstream.q = arm.q;
    // Mild non-iid shards: the paper's upstream local gap is ~3%, a
    // degradation, not a collapse.
    cfg.upstream.dirichlet_alpha = 0.12;
    cfg.upstream.seed = 11;
    cfg.upstream_regime = data::TrainRegime{.epochs = 18,
                                            .base_lr = 0.1F,
                                            .reference_batch = 256,
                                            .milestones = {10, 15},
                                            .warmup_epochs = 2.0};
    // Downstream: always global shuffling, modest scale, short fine-tune.
    cfg.downstream = cfg.upstream;
    cfg.downstream.workers = 8;
    cfg.downstream.strategy = shuffle::Strategy::kGlobal;
    // Short, low-LR fine-tune so downstream accuracy reflects the quality
    // of the transferred trunk rather than re-learning from scratch.
    cfg.downstream_regime = cfg.upstream_regime;
    cfg.downstream_regime.epochs = 5;
    cfg.downstream_regime.milestones = {3};
    cfg.downstream_regime.warmup_epochs = 0.0;
    cfg.downstream_regime.base_lr = 0.01F;

    Stopwatch sw;
    const auto res = sim::run_transfer_experiment(tax, cfg);
    t.row({shuffle::strategy_label(arm.strategy, arm.q),
           fmt_percent(res.upstream.best_top1),
           fmt_percent(res.downstream.best_top1),
           fmt_double(sw.seconds(), 1)});
  }
  t.print(std::cout);
  std::cout << "Reading: the upstream column should show local trailing\n"
               "global by a few percent while the downstream column is\n"
               "nearly uniform — pre-training tolerates cheap shuffling.\n";
  return 0;
}
