// Ablation (DESIGN.md #2): the Fig. 4 iteration-overlapped exchange vs a
// bulk pre-epoch exchange. The perf model reports the raw exchange cost
// and the visible (post-overlap) cost; the difference is what the
// scheduler's chunked pipeline buys — and how that benefit erodes when
// iterations per epoch shrink at scale (the paper's Fig. 9 observation).
#include <iostream>

#include "perf/perf_model.hpp"
#include "util/table.hpp"

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const dshuf::bench::ObsSession obs_session(argc, argv);
  using namespace dshuf;
  using shuffle::Strategy;

  std::cout << "\n==================================================\n"
            << "Ablation — exchange overlap (Fig. 4) vs bulk exchange\n"
            << "==================================================\n";

  const perf::EpochModel model(io::abci_profile(),
                               perf::resnet50_profile());

  TextTable t("partial-0.1 exchange time: bulk (raw) vs overlapped");
  t.header({"workers", "iterations/epoch", "raw exchange s",
            "visible (overlapped) s", "hidden"});
  for (std::size_t m : {64U, 256U, 512U, 1024U, 2048U}) {
    const perf::WorkloadShape shape{.dataset_samples = 1'200'000,
                                    .workers = m,
                                    .local_batch = 32};
    const auto b = model.epoch(shape, Strategy::kPartial, 0.1);
    t.row({std::to_string(m), std::to_string(b.iterations),
           fmt_double(b.exchange_raw_s, 2), fmt_double(b.exchange_s, 2),
           fmt_percent(1.0 - b.exchange_s /
                                 std::max(1e-12, b.exchange_raw_s))});
  }
  t.print(std::cout);
  std::cout << "Reading: the hidden share shrinks as iterations/epoch drop\n"
               "and the raw cost climbs with all-to-all congestion — both\n"
               "mechanisms behind partial-0.1's degradation at 1,024+\n"
               "workers in Fig. 9.\n";
  return 0;
}
