// Time-to-accuracy: the paper's two headline results combined. Global
// shuffling converges in the fewest epochs but pays 3-9x more wall-clock
// per epoch (Fig. 9); local shuffling is cheap per epoch but can stall
// below the target accuracy; partial-Q converges like global at
// local-like epoch cost. This bench multiplies the simulator's accuracy
// curves by the calibrated per-epoch times at paper scale (512 workers,
// ABCI) and reports wall-clock to reach 95% of global's best accuracy.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "perf/perf_model.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  const dshuf::bench::ObsSession obs_session(argc, argv);
  using namespace dshuf;
  using namespace dshuf::bench;
  using shuffle::Strategy;

  print_header("Extension", "time-to-accuracy",
               "partial-Q reaches global-level accuracy at local-like "
               "per-epoch cost — the practical payoff");

  const auto& workload = data::find_workload("imagenet1k-resnet50");
  const perf::EpochModel model(io::abci_profile(), perf::resnet50_profile());
  const perf::WorkloadShape shape{.dataset_samples = 1'200'000,
                                  .workers = 512,
                                  .local_batch = 32};

  struct ArmSpec {
    Strategy strategy;
    double q;
  };
  struct ArmOutcome {
    std::string label;
    std::vector<double> curve;
    double epoch_time;
  };
  std::vector<ArmOutcome> outcomes;
  for (const ArmSpec& arm : {ArmSpec{Strategy::kGlobal, 0},
                             ArmSpec{Strategy::kLocal, 0},
                             ArmSpec{Strategy::kPartial, 0.1},
                             ArmSpec{Strategy::kPartial, 0.3}}) {
    sim::SimConfig cfg;
    cfg.workers = 16;  // "512 GPUs" accuracy regime (see EXPERIMENTS.md)
    cfg.local_batch = 8;
    cfg.strategy = arm.strategy;
    cfg.q = arm.q;
    cfg.partition = data::PartitionScheme::kClassSorted;
    cfg.seed = 123;
    const auto res = sim::run_workload_experiment(workload, cfg);
    ArmOutcome out;
    out.label = res.label;
    for (const auto& e : res.epochs) {
      if (e.val_top1 >= 0) out.curve.push_back(e.val_top1);
    }
    out.epoch_time = model.epoch(shape, arm.strategy, arm.q).total();
    outcomes.push_back(std::move(out));
  }

  const double target = 0.95 * *std::max_element(
                                   outcomes[0].curve.begin(),
                                   outcomes[0].curve.end());

  TextTable t("wall-clock to reach " + fmt_percent(target) +
              " top-1 (95% of global's best), paper-scale epoch times");
  t.header({"strategy", "epochs to target", "s/epoch (512 workers)",
            "minutes to target", "speedup vs global"});
  double global_minutes = 0;
  for (const auto& out : outcomes) {
    std::size_t epochs_needed = 0;
    bool reached = false;
    for (std::size_t e = 0; e < out.curve.size(); ++e) {
      if (out.curve[e] >= target) {
        epochs_needed = e + 1;
        reached = true;
        break;
      }
    }
    const double minutes =
        reached ? static_cast<double>(epochs_needed) * out.epoch_time / 60.0
                : -1;
    if (out.label == "global") global_minutes = minutes;
    t.row({out.label,
           reached ? std::to_string(epochs_needed) : "never",
           fmt_double(out.epoch_time, 1),
           reached ? fmt_double(minutes, 1) : "-",
           reached && global_minutes > 0
               ? fmt_double(global_minutes / minutes, 2) + "x"
               : "-"});
  }
  t.print(std::cout);
  std::cout << "Reading: local is fastest per epoch but never reaches the\n"
               "target under skewed shards; global reaches it but pays the\n"
               "PFS price every epoch; partial-Q gets global-class accuracy\n"
               "at a multiple of global's speed — the paper's 'up to 5x'\n"
               "training-time claim expressed as time-to-accuracy.\n";
  return 0;
}
