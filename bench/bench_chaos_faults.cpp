// Fault-sweep micro-bench: cost and bookkeeping of the robust PLS exchange
// as the injected drop rate rises. Shows what the retry/timeout protocol
// pays for resilience — wall time grows with the retry/backoff budget each
// failed round burns, and the fallback counts quantify how much of the
// exchange degrades to local shuffling (the paper's LS) under loss.
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "comm/comm.hpp"
#include "comm/fault.hpp"
#include "obs/trace.hpp"
#include "shuffle/exchange_plan.hpp"
#include "shuffle/mpi_exchange.hpp"
#include "shuffle/shuffler.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dshuf;
  using namespace dshuf::shuffle;
  bench::ObsSession session(argc, argv);

  std::cout << "\n==================================================\n"
            << "Chaos — robust exchange cost vs injected drop rate\n"
            << "==================================================\n";

  const int m = 8;
  const std::size_t n = 8 * 64;
  const double q = 0.5;
  const std::uint64_t seed = 7;
  const std::uint64_t fault_seed = 42;
  const std::size_t shard = n / static_cast<std::size_t>(m);
  const std::size_t quota = exchange_quota(shard, q);

  // Tight budget so heavy-loss rows finish quickly; the ratios between
  // rows, not the absolute milliseconds, are the point.
  ExchangeRobustness robust;
  robust.ack_timeout = std::chrono::milliseconds(5);
  robust.max_attempts = 4;
  robust.backoff = 2.0;
  robust.recv_deadline = std::chrono::milliseconds(80);
  robust.poll_interval = std::chrono::microseconds(100);

  TextTable t("one exchange epoch, 8 ranks x 64-sample shards, Q = 0.5");
  t.header({"drop", "wall ms", "retries", "send fb", "recv fb", "dup supp",
            "committed"});

  for (double drop : {0.0, 0.05, 0.1, 0.2, 0.4, 0.8}) {
    comm::FaultSpec spec;
    spec.drop_prob = drop;
    spec.delay_prob = 0.3;
    spec.min_delay_us = 50;
    spec.max_delay_us = 1'000;
    spec.dup_prob = 0.05;

    std::vector<std::vector<SampleId>> shards(
        static_cast<std::size_t>(m));
    for (std::size_t i = 0; i < n; ++i) {
      shards[i % static_cast<std::size_t>(m)].push_back(
          static_cast<SampleId>(i));
    }
    std::vector<ShardStore> stores;
    for (auto& s : shards) stores.emplace_back(std::move(s), 0);

    comm::World world(m);
    world.set_fault_plan(comm::FaultPlan(fault_seed, spec));
    std::vector<ExchangeOutcome> outcomes(static_cast<std::size_t>(m));
    obs::SpanGuard row_span("bench.chaos_row",
                            {{"drop", fmt_double(drop, 2)}});
    world.run([&](comm::Communicator& c) {
      auto& store = stores[static_cast<std::size_t>(c.rank())];
      outcomes[static_cast<std::size_t>(c.rank())] = run_pls_exchange_epoch(
          c, store, seed, 0, q, shard, nullptr, nullptr, &robust);
      post_exchange_local_shuffle(seed, 0, c.rank(), store.mutable_ids());
    });
    const double wall_ms = static_cast<double>(row_span.finish()) / 1e3;

    ExchangeStats stats;
    std::size_t committed = 0;
    for (const auto& o : outcomes) {
      o.accumulate_into(stats);
      committed += o.sends_committed;
    }
    t.row({fmt_double(drop, 2), fmt_double(wall_ms, 1),
           std::to_string(stats.retries),
           std::to_string(stats.send_fallbacks),
           std::to_string(stats.recv_fallbacks),
           std::to_string(stats.duplicates_suppressed),
           std::to_string(committed) + "/" +
               std::to_string(static_cast<std::size_t>(m) * quota)});
  }
  t.print(std::cout);
  std::cout << "send fb == recv fb: rounds that fell back to local\n"
               "shuffling on both sides — no sample is ever lost.\n";
  return 0;
}
