// Figure 5(d): ResNet50 (pre-trained) / Stanford Cars — fine-tuning from a
// warm start; local shuffling matches global. The warm start is produced
// by a short global-shuffling pre-training pass on the same proxy task
// (standing in for the paper's ImageNet-pretrained checkpoint).
#include <iostream>

#include "bench_common.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  const dshuf::bench::ObsSession obs_session(argc, argv);
  using namespace dshuf;
  using namespace dshuf::bench;

  print_header("Fig. 5(d)", "ResNet50 (pre-trained) / Stanford Cars",
               "fine-tuning from a warm start: local ~= global at 64 GPUs");

  const auto& workload = data::find_workload("cars-resnet50");
  auto split = data::make_class_clusters_split(workload.data);

  // Produce the "pre-trained" weights: short global-shuffle training.
  sim::SimConfig pre_cfg;
  pre_cfg.workers = 4;
  pre_cfg.local_batch = 16;
  pre_cfg.strategy = shuffle::Strategy::kGlobal;
  pre_cfg.seed = 7;
  Rng mrng = Rng(pre_cfg.seed).fork(0x91);
  nn::Model pretrained = nn::make_mlp(workload.model, mrng);
  data::TrainRegime pre_regime = workload.regime;
  pre_regime.epochs = 8;
  pre_regime.base_lr = 0.1F;
  sim::train_model(pretrained, split.train, split.val, pre_regime, pre_cfg,
                   "pretrain");
  const auto warm_state = pretrained.state();
  std::cout << "Warm start accuracy: "
            << fmt_percent(sim::evaluate(pretrained, split.val, 0, 1))
            << "\n";

  TextTable summary("Fig. 5(d) summary (fine-tune from warm start, M=8)");
  summary.header({"strategy", "best top-1", "final top-1"});
  TextTable curves("Fig. 5(d) accuracy curves");
  std::vector<std::string> header{"epoch"};
  std::vector<std::vector<std::string>> cols;

  for (const Arm& arm :
       {Arm{shuffle::Strategy::kGlobal, 0}, Arm{shuffle::Strategy::kLocal, 0},
        Arm{shuffle::Strategy::kPartial, 0.1}}) {
    sim::SimConfig cfg;
    cfg.workers = 8;
    cfg.local_batch = 8;
    cfg.strategy = arm.strategy;
    cfg.q = arm.q;
    cfg.partition = data::PartitionScheme::kRandom;  // paper default
    cfg.seed = 7;
    cfg.warm_start = warm_state;
    Rng r2 = Rng(cfg.seed).fork(0x95);
    nn::Model model = nn::make_mlp(workload.model, r2);
    const auto res =
        sim::train_model(model, split.train, split.val, workload.regime, cfg,
                         shuffle::strategy_label(arm.strategy, arm.q));
    header.push_back(res.label);
    std::vector<std::string> col;
    for (const auto& e : res.epochs) {
      col.push_back(e.val_top1 >= 0 ? fmt_percent(e.val_top1) : "-");
    }
    cols.push_back(std::move(col));
    summary.row({res.label, fmt_percent(res.best_top1),
                 fmt_percent(res.final_top1)});
  }

  curves.header(header);
  std::size_t rows = 0;
  for (const auto& c : cols) rows = std::max(rows, c.size());
  for (std::size_t e = 0; e < rows; ++e) {
    std::vector<std::string> row{std::to_string(e)};
    for (const auto& c : cols) row.push_back(e < c.size() ? c[e] : "-");
    curves.row(std::move(row));
  }
  curves.print(std::cout);
  summary.print(std::cout);
  return 0;
}
