// Figure 5(a): ResNet50 / ImageNet-1K top-1 validation accuracy under
// global, local, and partial shuffling at two scales. Paper shape: local
// matches global at 512 GPUs; at 2,048 GPUs local falls ~9% behind and a
// partial exchange of 0.3 restores global-level accuracy.
//
// Scale mapping (DESIGN.md): the driver of the effect is per-worker class
// diversity; the proxy keeps classes-per-worker in the paper's regime
// (many classes/worker at the small scale, ~2 at the large one).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  const dshuf::bench::ObsSession obs_session(argc, argv);
  using namespace dshuf;
  using namespace dshuf::bench;

  PanelSpec spec;
  spec.figure = "Fig. 5(a)";
  spec.title = "ResNet50 / ImageNet-1K";
  spec.paper_claim =
      "local ~= global at 512 GPUs; ~9% gap at 2,048; partial-0.3 recovers";
  spec.workload = data::find_workload("imagenet1k-resnet50");
  spec.scales = {{.workers = 4, .local_batch = 16, .paper_scale = "512 GPUs"},
                 {.workers = 16, .local_batch = 8,
                  .paper_scale = "2048 GPUs"}};
  spec.arms = {{shuffle::Strategy::kGlobal, 0},
               {shuffle::Strategy::kLocal, 0},
               {shuffle::Strategy::kPartial, 0.1},
               {shuffle::Strategy::kPartial, 0.3}};
  run_panel(spec);
  return 0;
}
