// Related-work baseline (paper Section VI-A): DeepIO-style UNCONTROLLED
// exchange — independent random destinations, no shared seed, no balance
// guarantee — vs the paper's Algorithm 1. Two costs of losing control:
//   (1) shard sizes drift, and synchronous training is gated by the
//       smallest shard (fewer iterations per epoch for everyone);
//   (2) receive volume is bursty (buffer provisioning, stragglers).
// Accuracy typically survives (samples still mix) — the scheme's problem
// is operational, exactly as the paper argues.
#include <iostream>

#include "bench_common.hpp"
#include "shuffle/uncontrolled.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  const dshuf::bench::ObsSession obs_session(argc, argv);
  using namespace dshuf;
  using namespace dshuf::bench;

  print_header("Baseline (Sec. VI-A)",
               "uncontrolled (DeepIO-style) vs balanced exchange",
               "uncontrolled exchange mixes samples but loses the balance "
               "guarantee that bounds storage and iteration counts");

  // --- accuracy under both schemes ------------------------------------
  const auto& workload = data::find_workload("imagenet1k-resnet50");
  TextTable acc("accuracy @ M = 32, class-sorted shards, Q = 0.1");
  acc.header({"scheme", "best top-1", "final top-1", "wall s"});
  for (auto strategy :
       {shuffle::Strategy::kPartial, shuffle::Strategy::kUncontrolled}) {
    sim::SimConfig cfg;
    cfg.workers = 32;
    cfg.local_batch = 8;
    cfg.strategy = strategy;
    cfg.q = 0.1;
    cfg.partition = data::PartitionScheme::kClassSorted;
    cfg.seed = 123;
    Stopwatch sw;
    const auto res = sim::run_workload_experiment(workload, cfg);
    acc.row({res.label, fmt_percent(res.best_top1),
             fmt_percent(res.final_top1), fmt_double(sw.seconds(), 1)});
  }
  acc.print(std::cout);

  // --- operational drift ----------------------------------------------
  TextTable drift("shard-size drift over 30 epochs (512 samples, 16 "
                  "workers, Q = 0.5)");
  drift.header({"epoch", "balanced min/max", "uncontrolled min/max",
                "uncontrolled imbalance"});
  std::vector<std::vector<shuffle::SampleId>> shards(16);
  for (std::size_t i = 0; i < 512; ++i) {
    shards[i % 16].push_back(static_cast<shuffle::SampleId>(i));
  }
  shuffle::PartialLocalShuffler balanced(shards, 0.5, 7);
  shuffle::UncontrolledShuffler uncontrolled(shards, 0.5, 7);
  for (std::size_t e = 0; e < 30; ++e) {
    balanced.begin_epoch(e);
    uncontrolled.begin_epoch(e);
    if (e % 5 == 0 || e == 29) {
      std::size_t bmn = SIZE_MAX;
      std::size_t bmx = 0;
      for (int w = 0; w < 16; ++w) {
        bmn = std::min(bmn, balanced.local_order(w).size());
        bmx = std::max(bmx, balanced.local_order(w).size());
      }
      drift.row({std::to_string(e),
                 std::to_string(bmn) + "/" + std::to_string(bmx),
                 std::to_string(uncontrolled.min_shard()) + "/" +
                     std::to_string(uncontrolled.max_shard()),
                 fmt_double(uncontrolled.shard_imbalance(), 2) + "x"});
    }
  }
  drift.print(std::cout);
  std::cout << "Reading: the balanced scheme pins every shard at N/M\n"
               "forever; the uncontrolled baseline drifts, shrinking the\n"
               "usable iterations/epoch (min shard) and inflating worst-\n"
               "case storage (max shard) — the paper's 'arbitrary\n"
               "communication bottlenecks' in concrete numbers.\n";
  return 0;
}
