// Extension bench (paper Section IV-B future work): importance sampling
// applied to the exchange picks. Instead of exporting a uniformly random
// Q-fraction, each worker exports the samples it currently finds hardest
// (high EMA loss) or easiest (low loss). Question: at equal Q, does
// informed exchange change accuracy relative to the paper's uniform pick?
#include <iostream>

#include "bench_common.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  const dshuf::bench::ObsSession obs_session(argc, argv);
  using namespace dshuf;
  using namespace dshuf::bench;

  print_header("Extension (Sec. IV-B)",
               "importance-sampled exchange picks",
               "biasing WHAT gets exchanged is a lever on the sampling "
               "bias partial shuffling introduces");

  const auto& workload = data::find_workload("imagenet50-resnet50");
  TextTable t("top-1 @ M = 40, class-sorted shards, by pick policy");
  t.header({"Q", "pick policy", "best top-1", "final top-1", "wall s"});

  for (double q : {0.1, 0.3}) {
    for (auto policy : {shuffle::PickPolicy::kUniform,
                        shuffle::PickPolicy::kHighLoss,
                        shuffle::PickPolicy::kLowLoss}) {
      sim::SimConfig cfg;
      cfg.workers = 40;
      cfg.local_batch = 4;
      cfg.strategy = shuffle::Strategy::kPartial;
      cfg.q = q;
      cfg.partition = data::PartitionScheme::kClassSorted;
      cfg.seed = 123;
      cfg.epochs = 25;
      cfg.pick_policy = policy;
      Stopwatch sw;
      const auto res = sim::run_workload_experiment(workload, cfg);
      t.row({fmt_double(q, 1), shuffle::to_string(policy),
             fmt_percent(res.best_top1), fmt_percent(res.final_top1),
             fmt_double(sw.seconds(), 1)});
    }
  }
  t.print(std::cout);
  std::cout << "Reading (measured): exporting EASY samples hoards each\n"
               "worker's difficulty locally and is clearly worst; exporting\n"
               "HARD samples is no better than uniform because the\n"
               "deterministic pick keeps re-routing the same sample set and\n"
               "loses mixing entropy. Algorithm 1's uniform random pick is\n"
               "a strong default — an importance scheme would need to mix\n"
               "stochasticity with bias (e.g. loss-weighted sampling) to\n"
               "beat it, which matches the paper's framing of this as open\n"
               "future work.\n";
  return 0;
}
