// Ablation (DESIGN.md #3): normalisation vs the local-shuffling gap.
// Section IV-A-1 attributes much of the gap to per-worker BatchNorm
// statistics and suggests batch-size-independent normalisation (GroupNorm)
// as an alternative. We train local shuffling on skewed shards with
// (i) per-worker BN, (ii) synchronised BN (fused global batch), and
// (iii) GroupNorm, against the global-shuffling BN reference.
#include <iostream>

#include "bench_common.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  const dshuf::bench::ObsSession obs_session(argc, argv);
  using namespace dshuf;
  using namespace dshuf::bench;

  print_header("Ablation", "normalisation vs local-shuffling gap",
               "sync-BN / GroupNorm shrink local shuffling's accuracy gap "
               "(Section IV-A-1)");

  auto workload = data::find_workload("imagenet1k-resnet50");
  TextTable t("top-1 @ M = 32, class-sorted shards, 20 epochs");
  t.header({"configuration", "best top-1", "final top-1", "wall s"});

  struct Config {
    std::string label;
    shuffle::Strategy strategy;
    nn::NormKind norm;
    bool sync_bn;
  };
  for (const Config& c : {
           Config{"global + BN (reference)", shuffle::Strategy::kGlobal,
                  nn::NormKind::kBatchNorm, false},
           Config{"local + per-worker BN", shuffle::Strategy::kLocal,
                  nn::NormKind::kBatchNorm, false},
           Config{"local + synced BN", shuffle::Strategy::kLocal,
                  nn::NormKind::kBatchNorm, true},
           Config{"local + GroupNorm", shuffle::Strategy::kLocal,
                  nn::NormKind::kGroupNorm, false},
           Config{"local + no norm", shuffle::Strategy::kLocal,
                  nn::NormKind::kNone, false},
       }) {
    auto w = workload;
    w.model.norm = c.norm;
    sim::SimConfig cfg;
    cfg.workers = 32;
    cfg.local_batch = 8;
    cfg.strategy = c.strategy;
    cfg.partition = data::PartitionScheme::kClassSorted;
    cfg.seed = 123;
    cfg.epochs = 20;
    cfg.sync_batchnorm = c.sync_bn;
    Stopwatch sw;
    const auto res = sim::run_workload_experiment(w, cfg);
    t.row({c.label, fmt_percent(res.best_top1), fmt_percent(res.final_top1),
           fmt_double(sw.seconds(), 1)});
  }
  t.print(std::cout);
  return 0;
}
