// Figure 5(c): WideResNet-28-10 / CIFAR-100 — local matches global even
// though each worker holds only a few hundred samples (the paper: 128
// workers x ~390 samples each).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  const dshuf::bench::ObsSession obs_session(argc, argv);
  using namespace dshuf;
  using namespace dshuf::bench;

  PanelSpec spec;
  spec.figure = "Fig. 5(c)";
  spec.title = "WideResNet-28-10 / CIFAR-100";
  spec.paper_claim = "local ~= global at 64 and 128 workers";
  spec.workload = data::find_workload("cifar100-wrn28");
  spec.scales = {{.workers = 4, .local_batch = 16, .paper_scale = "64 GPUs"},
                 {.workers = 8, .local_batch = 8,
                  .paper_scale = "128 GPUs"}};
  spec.arms = {{shuffle::Strategy::kGlobal, 0},
               {shuffle::Strategy::kLocal, 0}};
  // The paper's default initial distribution is a random permutation
  // (Fig. 2: partitioning represented as a shuffle); these panels are the
  // paper's no-gap regime, so we use it rather than the class-sorted skew
  // surrogate of the gap panels.
  spec.partition = data::PartitionScheme::kRandom;
  run_panel(spec);
  return 0;
}
