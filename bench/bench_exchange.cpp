// bench_exchange: records the exchange wire-format performance baseline.
//
// Two arms over the identical PLS workload (M = 16 ranks, shard = 256,
// Q = 1.0 so quota = 256, 64-byte payloads):
//
//   * baseline:  ExchangeWire::kPerSample with fresh working storage every
//     epoch — the call shape every site used before the coalesced wire and
//     the ExchangeScratch API existed (one message per sample per epoch).
//   * coalesced: ExchangeWire::kCoalesced with a persistent per-rank
//     ExchangeScratch — the current default data path (one frame per peer,
//     pooled buffers, allocation-free steady state).
//
// This TU replaces global operator new with a counting wrapper, so besides
// message counts and wall clock it reports exact heap-allocation counts
// for the measured epochs (warmup epochs absorb one-time pool/table
// growth). --out writes BENCH_exchange.json (schema
// dshuf.bench_exchange.v1); --check re-reads a written file and enforces
// the PR's acceptance ratios — >= 5x fewer messages and >= 5x fewer heap
// allocations — which is the CI perf-smoke gate. Wall-clock ratios on
// shared runners are informational.
#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "comm/comm.hpp"
#include "shuffle/exchange_plan.hpp"
#include "shuffle/mpi_exchange.hpp"
#include "shuffle/shuffler.hpp"
#include "util/argparse.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/stopwatch.hpp"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace dshuf;
using namespace dshuf::shuffle;

constexpr int kRanks = 16;
constexpr std::size_t kShard = 256;
constexpr double kQ = 1.0;  // quota = 256 >= the acceptance floor
constexpr std::size_t kPayloadBytes = 64;
constexpr std::uint64_t kSeed = 99;

struct ModeResult {
  std::string wire;
  std::size_t epochs = 0;
  double msgs_per_epoch = 0.0;    // point-to-point messages, all ranks
  double allocs_per_epoch = 0.0;  // heap allocations, whole process
  double bytes_per_epoch = 0.0;   // offered wire bytes, all ranks
  double epoch_ms = 0.0;          // wall clock per epoch
};

ModeResult run_mode(ExchangeWire wire, bool with_scratch,
                    std::size_t warmup_epochs, std::size_t epochs) {
  ScopedExchangeWire mode(wire);
  const std::size_t quota = exchange_quota(kShard, kQ);

  std::vector<ShardStore> stores;
  std::vector<ExchangeScratch> scratch(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    std::vector<SampleId> shard;
    for (std::size_t i = 0; i < kShard; ++i) {
      shard.push_back(static_cast<SampleId>(
          static_cast<std::size_t>(r) * kShard + i));
    }
    stores.emplace_back(std::move(shard), kShard + quota);
  }

  const PayloadFn payload = [](SampleId id, std::vector<std::byte>& out) {
    for (std::size_t b = 0; b < kPayloadBytes; ++b) {
      out.push_back(static_cast<std::byte>((id + b) & 0xFF));
    }
  };
  const DepositFn deposit = [](SampleId, std::span<const std::byte>) {};

  std::vector<std::size_t> msgs(kRanks, 0);
  std::vector<std::size_t> bytes(kRanks, 0);
  std::uint64_t allocs_before = 0;
  std::uint64_t allocs_after = 0;
  double elapsed_s = 0.0;

  comm::World world(kRanks);
  world.run([&](comm::Communicator& c) {
    const auto r = static_cast<std::size_t>(c.rank());
    Stopwatch sw;
    const auto epoch_step = [&](std::size_t epoch, bool measured) {
      const ExchangeOutcome out = run_pls_exchange_epoch(
          c, stores[r], kSeed, epoch, kQ, kShard, payload, deposit,
          /*robust=*/nullptr, with_scratch ? &scratch[r] : nullptr);
      post_exchange_local_shuffle(kSeed, epoch, c.rank(),
                                  stores[r].mutable_ids());
      if (measured) {
        msgs[r] += out.msgs_sent;
        bytes[r] += out.bytes_offered;
      }
    };

    for (std::size_t e = 0; e < warmup_epochs; ++e) epoch_step(e, false);
    c.barrier();
    c.barrier();
    if (c.rank() == 0) {
      allocs_before = g_allocs.load(std::memory_order_relaxed);
      sw.reset();
    }
    c.barrier();
    for (std::size_t e = 0; e < epochs; ++e) {
      epoch_step(warmup_epochs + e, true);
    }
    c.barrier();
    if (c.rank() == 0) {
      elapsed_s = sw.seconds();
      allocs_after = g_allocs.load(std::memory_order_relaxed);
    }
  });

  ModeResult res;
  res.wire = to_string(wire);
  res.epochs = epochs;
  std::size_t total_msgs = 0;
  std::size_t total_bytes = 0;
  for (int r = 0; r < kRanks; ++r) {
    total_msgs += msgs[static_cast<std::size_t>(r)];
    total_bytes += bytes[static_cast<std::size_t>(r)];
  }
  const auto e = static_cast<double>(epochs);
  res.msgs_per_epoch = static_cast<double>(total_msgs) / e;
  res.allocs_per_epoch =
      static_cast<double>(allocs_after - allocs_before) / e;
  res.bytes_per_epoch = static_cast<double>(total_bytes) / e;
  res.epoch_ms = elapsed_s * 1e3 / e;
  return res;
}

std::string fmt(double v) {
  std::ostringstream oss;
  oss.precision(6);
  oss << v;
  return oss.str();
}

double ratio(double base, double opt) { return base / std::max(opt, 1.0); }

int run_check(const std::string& path) {
  std::ifstream in(path);
  DSHUF_CHECK(in.good(), "cannot open " << path);
  std::stringstream buf;
  buf << in.rdbuf();
  const json::Value doc = json::parse(buf.str());
  DSHUF_CHECK_EQ(doc.at("schema").as_string(), "dshuf.bench_exchange.v1",
                 "unexpected schema in " << path);
  DSHUF_CHECK_EQ(doc.at("modes").as_array().size(), 2U,
                 "expected baseline + coalesced modes");
  for (const auto& m : doc.at("modes").as_array()) {
    DSHUF_CHECK_GT(m.at("msgs_per_epoch").as_number(), 0.0, "bad msgs");
    DSHUF_CHECK_GT(m.at("epoch_ms").as_number(), 0.0, "bad epoch_ms");
  }
  // The PR's acceptance floors: an epoch must cost at least 5x fewer
  // messages and 5x fewer heap allocations than the per-sample baseline.
  const double msgs_ratio = doc.at("ratios").at("msgs").as_number();
  const double alloc_ratio = doc.at("ratios").at("allocs").as_number();
  DSHUF_CHECK_GE(msgs_ratio, 5.0, "coalescing lost its message win");
  DSHUF_CHECK_GE(alloc_ratio, 5.0, "coalescing lost its allocation win");
  std::cout << "bench_exchange: " << path << " OK (msgs " << fmt(msgs_ratio)
            << "x, allocs " << fmt(alloc_ratio) << "x)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("bench_exchange",
                 "Coalesced vs per-sample exchange wire baseline");
  args.flag("out", "", "write JSON results to this path");
  args.flag("check", "", "validate a previously written JSON file and exit");
  args.flag("quick", "false", "reduced epoch count (CI smoke)");
  if (!args.parse(argc, argv)) return 0;

  if (!args.get("check").empty()) return run_check(args.get("check"));

  const bool quick = args.get_bool("quick");
  const std::size_t warmup = 3;
  const std::size_t epochs = quick ? 4 : 12;
  const std::size_t quota = exchange_quota(kShard, kQ);

  // Baseline: the pre-coalescing data path — one message per sample, new
  // working storage every epoch.
  const ModeResult base =
      run_mode(ExchangeWire::kPerSample, /*with_scratch=*/false, warmup,
               epochs);
  // Optimized: the current default — one frame per peer, persistent
  // scratch, pooled buffers.
  const ModeResult opt =
      run_mode(ExchangeWire::kCoalesced, /*with_scratch=*/true, warmup,
               epochs);

  const double msgs_ratio = ratio(base.msgs_per_epoch, opt.msgs_per_epoch);
  const double alloc_ratio =
      ratio(base.allocs_per_epoch, opt.allocs_per_epoch);
  const double speedup =
      opt.epoch_ms > 0.0 ? base.epoch_ms / opt.epoch_ms : 0.0;

  for (const auto& m : {base, opt}) {
    std::cout << m.wire << ": " << fmt(m.msgs_per_epoch) << " msgs/epoch, "
              << fmt(m.allocs_per_epoch) << " allocs/epoch, "
              << fmt(m.bytes_per_epoch) << " bytes/epoch, "
              << fmt(m.epoch_ms) << " ms/epoch\n";
  }
  std::cout << "ratios: msgs " << fmt(msgs_ratio) << "x, allocs "
            << fmt(alloc_ratio) << "x, wall-clock speedup " << fmt(speedup)
            << "x\n";

  const std::string out_path = args.get("out");
  if (!out_path.empty()) {
    std::ostringstream j;
    j << "{\n  \"schema\": \"dshuf.bench_exchange.v1\",\n"
      << "  \"config\": {\"workers\": " << kRanks
      << ", \"shard\": " << kShard << ", \"q\": " << fmt(kQ)
      << ", \"quota\": " << quota
      << ", \"payload_bytes\": " << kPayloadBytes
      << ", \"epochs\": " << epochs << "},\n  \"modes\": [\n";
    bool first = true;
    for (const auto& m : {base, opt}) {
      if (!first) j << ",\n";
      first = false;
      j << "    {\"wire\": \"" << m.wire
        << "\", \"msgs_per_epoch\": " << fmt(m.msgs_per_epoch)
        << ", \"allocs_per_epoch\": " << fmt(m.allocs_per_epoch)
        << ", \"bytes_per_epoch\": " << fmt(m.bytes_per_epoch)
        << ", \"epoch_ms\": " << fmt(m.epoch_ms) << "}";
    }
    j << "\n  ],\n  \"ratios\": {\"msgs\": " << fmt(msgs_ratio)
      << ", \"allocs\": " << fmt(alloc_ratio)
      << ", \"speedup\": " << fmt(speedup) << "}\n}\n";
    // Round-trip through the parser before writing: the tool never emits
    // a file its own --check would reject.
    json::parse(j.str());
    std::ofstream out(out_path);
    DSHUF_CHECK(out.good(), "cannot write " << out_path);
    out << j.str();
    std::cout << "wrote " << out_path << "\n";
  }
  return 0;
}
