// Figure 10: breakdown of the per-epoch training time at 512 workers into
// IO / EXCHANGE / FW+BW / GE+WU as the exchange rate grows, for ResNet50
// and DenseNet161 on the ABCI profile. The paper's anchor numbers for
// DenseNet161: local I/O ~8 s vs global ~19.6 s mean with an 11.9-142 s
// straggler spread; GE inflated to ~70 s under global shuffling; partial
// degrades epoch time by at most ~1.37x as Q grows.
#include <iostream>

#include "perf/perf_model.hpp"
#include "util/table.hpp"

namespace {

void breakdown_for(const dshuf::perf::ComputeProfile& profile) {
  using namespace dshuf;
  using shuffle::Strategy;

  const perf::EpochModel model(io::abci_profile(), profile);
  const perf::WorkloadShape shape{.dataset_samples = 1'200'000,
                                  .workers = 512,
                                  .local_batch = 32};

  TextTable t("Fig. 10 breakdown — " + profile.model_name +
              " @ 512 workers (seconds)");
  t.header({"strategy", "IO", "EXCHANGE", "FW+BW", "GE+WU", "total",
            "vs local"});
  const double ls_total = model.epoch(shape, Strategy::kLocal, 0).total();
  auto add_row = [&](Strategy s, double q, const std::string& label) {
    const auto b = model.epoch(shape, s, q);
    t.row({label, fmt_double(b.io_s, 1), fmt_double(b.exchange_s, 1),
           fmt_double(b.fwbw_s, 1), fmt_double(b.gewu_s, 1),
           fmt_double(b.total(), 1), fmt_double(b.total() / ls_total, 2)});
  };
  add_row(Strategy::kLocal, 0, "local");
  for (double q : {0.1, 0.3, 0.5, 0.7}) {
    add_row(Strategy::kPartial, q, shuffle::strategy_label(
                                       Strategy::kPartial, q));
  }
  add_row(Strategy::kGlobal, 0, "global");
  t.print(std::cout);

  const auto gs = model.epoch(shape, Strategy::kGlobal, 0);
  std::cout << "Global-shuffle I/O straggler spread across 512 workers: "
            << "min " << fmt_double(gs.io_min_s, 1) << " s, mean "
            << fmt_double(gs.io_s, 1) << " s, max "
            << fmt_double(gs.io_max_s, 1)
            << " s (paper DenseNet161: 11.9 / 19.6 / 142 s)\n";
}

}  // namespace

int main() {
  std::cout << "\n==================================================\n"
            << "Fig. 10 — epoch-time breakdown vs exchange rate\n"
            << "(512 workers, ABCI profile)\n"
            << "==================================================\n";
  breakdown_for(dshuf::perf::resnet50_profile());
  breakdown_for(dshuf::perf::densenet161_profile());
  std::cout << "Paper: FW+BW constant across strategies; partial cost grows\n"
               "mildly with Q (<= ~1.37x); global pays PFS I/O + straggler-\n"
               "inflated gradient exchange.\n";
  return 0;
}
