// Figure 10: breakdown of the per-epoch training time at 512 workers into
// IO / EXCHANGE / FW+BW / GE+WU as the exchange rate grows, for ResNet50
// and DenseNet161 on the ABCI profile. The paper's anchor numbers for
// DenseNet161: local I/O ~8 s vs global ~19.6 s mean with an 11.9-142 s
// straggler spread; GE inflated to ~70 s under global shuffling; partial
// degrades epoch time by at most ~1.37x as Q grows.
//
// Phase timings flow through the span tracer: each (model, strategy) arm
// emits epoch.io / epoch.exchange / epoch.fwbw / epoch.gewu spans over a
// virtual clock advanced by the analytic model, and the printed breakdown
// is aggregated back from the tracer snapshot. Run with --trace-out=t.json
// to get the same numbers as a Perfetto-loadable Chrome trace.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/clock.hpp"
#include "obs/trace.hpp"
#include "perf/perf_model.hpp"
#include "util/table.hpp"

namespace {

using namespace dshuf;
using shuffle::Strategy;

std::string span_attr(const obs::SpanEvent& e, const std::string& key) {
  for (const auto& [k, v] : e.attrs) {
    if (k == key) return v;
  }
  return "";
}

struct PhaseTotals {
  double io_s = 0;
  double exchange_s = 0;
  double fwbw_s = 0;
  double gewu_s = 0;

  [[nodiscard]] double total() const {
    return io_s + exchange_s + fwbw_s + gewu_s;
  }
};

void breakdown_for(obs::VirtualClock& clock,
                   const perf::ComputeProfile& profile) {
  const perf::EpochModel model(io::abci_profile(), profile);
  const perf::WorkloadShape shape{.dataset_samples = 1'200'000,
                                  .workers = 512,
                                  .local_batch = 32};

  std::vector<std::pair<std::string, perf::EpochBreakdown>> arm_rows;
  arm_rows.emplace_back("local", model.epoch(shape, Strategy::kLocal, 0));
  for (double q : {0.1, 0.3, 0.5, 0.7}) {
    arm_rows.emplace_back(shuffle::strategy_label(Strategy::kPartial, q),
                          model.epoch(shape, Strategy::kPartial, q));
  }
  arm_rows.emplace_back("global", model.epoch(shape, Strategy::kGlobal, 0));

  // Emit every arm's modeled epoch as phase spans on the virtual clock.
  auto& tracer = obs::Tracer::instance();
  for (const auto& [label, b] : arm_rows) {
    const auto phase = [&](const char* name, double seconds) {
      obs::SpanGuard span(
          name, {{"model", profile.model_name}, {"strategy", label}});
      clock.advance_us(
          static_cast<std::uint64_t>(std::llround(seconds * 1e6)));
    };
    phase("epoch.io", b.io_s);
    phase("epoch.exchange", b.exchange_s);
    phase("epoch.fwbw", b.fwbw_s);
    phase("epoch.gewu", b.gewu_s);
  }

  // Aggregate this model's spans back out of the tracer; the table is the
  // trace, so a --trace-out artifact can never drift from what we print.
  std::map<std::string, PhaseTotals> totals;
  for (const auto& e : tracer.snapshot()) {
    if (span_attr(e, "model") != profile.model_name) continue;
    auto& row = totals[span_attr(e, "strategy")];
    const double s = static_cast<double>(e.dur_us) / 1e6;
    if (e.name == "epoch.io") row.io_s += s;
    if (e.name == "epoch.exchange") row.exchange_s += s;
    if (e.name == "epoch.fwbw") row.fwbw_s += s;
    if (e.name == "epoch.gewu") row.gewu_s += s;
  }

  TextTable t("Fig. 10 breakdown — " + profile.model_name +
              " @ 512 workers (seconds, from span tracer)");
  t.header({"strategy", "IO", "EXCHANGE", "FW+BW", "GE+WU", "total",
            "vs local"});
  const double ls_total = totals["local"].total();
  for (const auto& [label, unused] : arm_rows) {
    (void)unused;
    const PhaseTotals& b = totals[label];
    t.row({label, fmt_double(b.io_s, 1), fmt_double(b.exchange_s, 1),
           fmt_double(b.fwbw_s, 1), fmt_double(b.gewu_s, 1),
           fmt_double(b.total(), 1), fmt_double(b.total() / ls_total, 2)});
  }
  t.print(std::cout);

  const auto gs = model.epoch(shape, Strategy::kGlobal, 0);
  std::cout << "Global-shuffle I/O straggler spread across 512 workers: "
            << "min " << fmt_double(gs.io_min_s, 1) << " s, mean "
            << fmt_double(gs.io_s, 1) << " s, max "
            << fmt_double(gs.io_max_s, 1)
            << " s (paper DenseNet161: 11.9 / 19.6 / 142 s)\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsSession session(argc, argv);

  std::cout << "\n==================================================\n"
            << "Fig. 10 — epoch-time breakdown vs exchange rate\n"
            << "(512 workers, ABCI profile)\n"
            << "==================================================\n";

  obs::VirtualClock clock;
  obs::set_obs_clock(&clock);
  obs::Tracer::instance().set_enabled(true);  // the table is built FROM it

  breakdown_for(clock, perf::resnet50_profile());
  breakdown_for(clock, perf::densenet161_profile());
  std::cout << "Paper: FW+BW constant across strategies; partial cost grows\n"
               "mildly with Q (<= ~1.37x); global pays PFS I/O + straggler-\n"
               "inflated gradient exchange.\n";

  obs::set_obs_clock(nullptr);
  return 0;
}
