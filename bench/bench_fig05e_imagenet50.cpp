// Figure 5(e): ResNet50 / ImageNet-50 — the hard case for local
// shuffling. Paper shape: a ~10% gap already at 32 GPUs, up to ~30% at
// 128; a high exchange rate (Q = 0.7) is needed to approach global
// accuracy at the larger scale.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  const dshuf::bench::ObsSession obs_session(argc, argv);
  using namespace dshuf;
  using namespace dshuf::bench;

  PanelSpec spec;
  spec.figure = "Fig. 5(e)";
  spec.title = "ResNet50 / ImageNet-50 (small dataset at scale)";
  spec.paper_claim =
      "10% local gap at 32 GPUs, up to 30% at 128; needs partial-0.7";
  spec.workload = data::find_workload("imagenet50-resnet50");
  spec.scales = {{.workers = 10, .local_batch = 8, .paper_scale = "32 GPUs"},
                 {.workers = 40, .local_batch = 4,
                  .paper_scale = "128 GPUs"}};
  spec.arms = {{shuffle::Strategy::kGlobal, 0},
               {shuffle::Strategy::kLocal, 0},
               {shuffle::Strategy::kPartial, 0.1},
               {shuffle::Strategy::kPartial, 0.3},
               {shuffle::Strategy::kPartial, 0.5},
               {shuffle::Strategy::kPartial, 0.7}};
  run_panel(spec);
  return 0;
}
