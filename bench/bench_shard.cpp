// bench_shard: records the million-sample shard storage baseline.
//
// Three arms over identical workloads at n = 10^4, 10^5 and (full runs)
// 10^6 samples of 128-byte payloads:
//
//   * file:          FileSampleStore — one file per sample, the paper's
//     supported layout. Every load pays an open/read/close metadata round
//     trip, which is what makes million-sample shards hopeless on it.
//   * mmap/hash:     MmapSampleStore with the open-addressing slot index —
//     append-allocated segment files, zero-copy span reads, epoch-based
//     reclamation.
//   * mmap/learned:  the same store under the learned (piecewise-linear)
//     slot index.
//
// Per arm and size it measures insert / lookup (load_into, the PayloadFn
// shape) / sequential scan (read() spans) / remove throughput plus the
// resident and live-payload footprints. This TU replaces global operator
// new with a counting wrapper so the lookup column also reports exact heap
// allocations per op — the mmap arms must show 0 in steady state. --out
// writes BENCH_shard.json (schema dshuf.bench_shard.v1); --check re-reads
// a written file and enforces the PR's acceptance floor — every mmap arm
// must load >= 10x faster than FileSampleStore at the largest recorded
// size — which is the CI perf-smoke gate. Absolute throughput on shared
// runners is informational; the ratio is the contract (and on a real PFS
// the per-file metadata latency only widens it).
#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "io/file_store.hpp"
#include "io/mmap_store.hpp"
#include "util/argparse.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/stopwatch.hpp"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace dshuf;

namespace fs = std::filesystem;

constexpr std::size_t kPayloadBytes = 128;
constexpr std::size_t kLookupOps = 100'000;   // sampled, multiplicative hash
constexpr std::size_t kScanOpsCap = 200'000;  // sequential id prefix
constexpr std::size_t kRemoveOpsCap = 50'000;
constexpr std::size_t kWarmupOps = 2'000;

struct ArmResult {
  std::string arm;
  std::size_t n = 0;
  double insert_sps = 0.0;  // samples/s
  double lookup_sps = 0.0;
  double lookup_allocs_per_op = 0.0;
  double scan_sps = 0.0;
  double remove_sps = 0.0;
  std::size_t resident_bytes = 0;  // mapped footprint (file arm: disk)
  std::size_t disk_bytes = 0;      // live payload bytes
  double load_ratio_vs_file = 0.0;  // filled for the mmap arms
};

void fill_payload(data::SampleId id, std::vector<std::byte>& buf) {
  buf.resize(kPayloadBytes);
  for (std::size_t b = 0; b < kPayloadBytes; ++b) {
    buf[b] = static_cast<std::byte>((id * 131U + b) & 0xFF);
  }
}

/// Runs the full workload against `store` and fills every column except
/// the arm name and resident_bytes (the caller knows the concrete type).
void run_workload(io::SampleStore& store, std::size_t n, ArmResult& res) {
  res.n = n;
  std::vector<std::byte> buf;
  buf.reserve(kPayloadBytes);

  Stopwatch sw;
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<data::SampleId>(i);
    fill_payload(id, buf);
    store.save(id, buf);
  }
  res.insert_sps = static_cast<double>(n) / sw.seconds();

  // Lookups: load_into with a reused sink — the exact PayloadFn call
  // shape the exchange uses to stream a sample into a wire frame.
  std::vector<std::byte> sink;
  sink.reserve(kPayloadBytes);
  std::uint64_t checksum = 0;
  for (std::size_t i = 0; i < kWarmupOps; ++i) {
    sink.clear();
    store.load_into(static_cast<data::SampleId>(i % n), sink);
    checksum += sink.size();
  }
  const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  sw.reset();
  for (std::size_t i = 0; i < kLookupOps; ++i) {
    const auto id = static_cast<data::SampleId>((i * 2'654'435'761U) % n);
    sink.clear();
    store.load_into(id, sink);
    checksum += static_cast<std::uint8_t>(sink[0]);
  }
  const double lookup_s = sw.seconds();
  const std::uint64_t allocs_after = g_allocs.load(std::memory_order_relaxed);
  res.lookup_sps = static_cast<double>(kLookupOps) / lookup_s;
  res.lookup_allocs_per_op =
      static_cast<double>(allocs_after - allocs_before) /
      static_cast<double>(kLookupOps);

  // Sequential scan over an id prefix through the zero-copy read() path.
  const std::size_t scan_n = std::min(n, kScanOpsCap);
  sw.reset();
  for (std::size_t i = 0; i < scan_n; ++i) {
    store.read(static_cast<data::SampleId>(i),
               [&checksum](std::span<const std::byte> p) {
                 checksum += static_cast<std::uint8_t>(p[p.size() - 1]);
               });
  }
  res.scan_sps = static_cast<double>(scan_n) / sw.seconds();

  res.disk_bytes = store.disk_bytes();

  // Removes last — they shrink the store. Spread across the id range so
  // the mmap arms quarantine from many segments, not one.
  const std::size_t remove_n = std::min(n, kRemoveOpsCap);
  const std::size_t stride = n / remove_n;
  sw.reset();
  for (std::size_t i = 0; i < remove_n; ++i) {
    store.remove(static_cast<data::SampleId>(i * stride));
  }
  res.remove_sps = static_cast<double>(remove_n) / sw.seconds();

  DSHUF_CHECK_GT(checksum, 0U, "workload optimised away");
}

ArmResult run_file_arm(const fs::path& dir, std::size_t n) {
  ArmResult res;
  res.arm = "file";
  io::FileSampleStore store(dir);
  run_workload(store, n, res);
  res.resident_bytes = store.disk_bytes();
  return res;
}

ArmResult run_mmap_arm(const fs::path& dir, std::size_t n,
                       io::SlotIndexKind kind) {
  ArmResult res;
  res.arm = std::string("mmap/") + io::to_string(kind);
  io::MmapStoreConfig cfg;
  cfg.dir = dir;
  cfg.index_kind = kind;
  io::MmapSampleStore store(cfg);
  run_workload(store, n, res);
  store.advance_epoch();  // retire the removed slots' quarantine
  res.resident_bytes = store.resident_bytes();
  return res;
}

std::string fmt(double v) {
  std::ostringstream oss;
  oss.precision(6);
  oss << v;
  return oss.str();
}

int run_check(const std::string& path) {
  std::ifstream in(path);
  DSHUF_CHECK(in.good(), "cannot open " << path);
  std::stringstream buf;
  buf << in.rdbuf();
  const json::Value doc = json::parse(buf.str());
  DSHUF_CHECK_EQ(doc.at("schema").as_string(), "dshuf.bench_shard.v1",
                 "unexpected schema in " << path);
  const auto& sizes = doc.at("sizes").as_array();
  DSHUF_CHECK(!sizes.empty(), "no sizes recorded in " << path);
  for (const auto& s : sizes) {
    DSHUF_CHECK_EQ(s.at("arms").as_array().size(), 3U,
                   "expected file + two mmap arms");
    for (const auto& a : s.at("arms").as_array()) {
      DSHUF_CHECK_GT(a.at("insert_sps").as_number(), 0.0, "bad insert_sps");
      DSHUF_CHECK_GT(a.at("lookup_sps").as_number(), 0.0, "bad lookup_sps");
    }
  }
  // The PR's acceptance floor: at the largest recorded shard size, BOTH
  // mmap arms must load >= 10x faster than the per-file baseline, and
  // their steady-state lookups must be allocation-free.
  const auto& largest = sizes.back();
  for (const auto& a : largest.at("arms").as_array()) {
    if (a.at("arm").as_string() == "file") continue;
    const double r = a.at("load_ratio_vs_file").as_number();
    DSHUF_CHECK_GE(r, 10.0, a.at("arm").as_string()
                                << " lost its load-throughput win");
    DSHUF_CHECK_EQ(a.at("lookup_allocs_per_op").as_number(), 0.0,
                   a.at("arm").as_string() << " lookups allocate");
  }
  std::cout << "bench_shard: " << path << " OK (load ratio >= 10x at n="
            << largest.at("n").as_number() << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("bench_shard",
                 "Mmap segment store vs per-file store shard baseline");
  args.flag("out", "", "write JSON results to this path");
  args.flag("check", "", "validate a previously written JSON file and exit");
  args.flag("quick", "false", "cap shard size at 1e5 (CI smoke)");
  args.flag("dir", "", "scratch directory (default: /dev/shm or $TMPDIR)");
  if (!args.parse(argc, argv)) return 0;

  if (!args.get("check").empty()) return run_check(args.get("check"));

  const bool quick = args.get_bool("quick");
  fs::path scratch(args.get("dir"));
  if (scratch.empty()) {
    scratch = fs::is_directory("/dev/shm") ? fs::path("/dev/shm")
                                           : fs::temp_directory_path();
  }
  const fs::path root =
      scratch / ("dshuf_bench_shard_" + std::to_string(::getpid()));
  fs::remove_all(root);

  std::vector<std::size_t> sizes{10'000, 100'000};
  if (!quick) sizes.push_back(1'000'000);

  std::vector<std::vector<ArmResult>> results;
  for (const std::size_t n : sizes) {
    std::vector<ArmResult> arms;
    arms.push_back(run_file_arm(root / "file", n));
    arms.push_back(
        run_mmap_arm(root / "hash", n, io::SlotIndexKind::kOpenAddressing));
    arms.push_back(
        run_mmap_arm(root / "learned", n, io::SlotIndexKind::kLearned));
    for (ArmResult& a : arms) {
      if (a.arm != "file") {
        a.load_ratio_vs_file = a.lookup_sps / arms.front().lookup_sps;
      }
      std::cout << "n=" << n << " " << a.arm << ": insert "
                << fmt(a.insert_sps) << "/s, lookup " << fmt(a.lookup_sps)
                << "/s (" << fmt(a.lookup_allocs_per_op)
                << " allocs/op), scan " << fmt(a.scan_sps) << "/s, remove "
                << fmt(a.remove_sps) << "/s, resident " << a.resident_bytes
                << " B, live " << a.disk_bytes << " B";
      if (a.arm != "file") {
        std::cout << ", load ratio " << fmt(a.load_ratio_vs_file) << "x";
      }
      std::cout << "\n";
    }
    results.push_back(std::move(arms));
    fs::remove_all(root);  // cap peak scratch usage between sizes
  }

  const std::string out_path = args.get("out");
  if (!out_path.empty()) {
    std::ostringstream j;
    j << "{\n  \"schema\": \"dshuf.bench_shard.v1\",\n"
      << "  \"config\": {\"payload_bytes\": " << kPayloadBytes
      << ", \"lookup_ops\": " << kLookupOps
      << ", \"scan_ops_cap\": " << kScanOpsCap
      << ", \"remove_ops_cap\": " << kRemoveOpsCap
      << ", \"quick\": " << (quick ? "true" : "false")
      << "},\n  \"sizes\": [\n";
    for (std::size_t s = 0; s < results.size(); ++s) {
      j << "    {\"n\": " << results[s].front().n << ", \"arms\": [\n";
      for (std::size_t i = 0; i < results[s].size(); ++i) {
        const ArmResult& a = results[s][i];
        j << "      {\"arm\": \"" << a.arm
          << "\", \"insert_sps\": " << fmt(a.insert_sps)
          << ", \"lookup_sps\": " << fmt(a.lookup_sps)
          << ", \"lookup_allocs_per_op\": " << fmt(a.lookup_allocs_per_op)
          << ", \"scan_sps\": " << fmt(a.scan_sps)
          << ", \"remove_sps\": " << fmt(a.remove_sps)
          << ", \"resident_bytes\": " << a.resident_bytes
          << ", \"disk_bytes\": " << a.disk_bytes
          << ", \"load_ratio_vs_file\": " << fmt(a.load_ratio_vs_file)
          << "}" << (i + 1 < results[s].size() ? "," : "") << "\n";
      }
      j << "    ]}" << (s + 1 < results.size() ? "," : "") << "\n";
    }
    j << "  ]\n}\n";
    // Round-trip through the parser before writing: the tool never emits
    // a file its own --check would reject.
    json::parse(j.str());
    std::ofstream out(out_path);
    DSHUF_CHECK(out.good(), "cannot write " << out_path);
    out << j.str();
    std::cout << "wrote " << out_path << "\n";
  }
  return 0;
}
