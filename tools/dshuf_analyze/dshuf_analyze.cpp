// dshuf_analyze driver: load the given files/directories, run the lexical
// rules plus the four cross-TU passes (passes.hpp), and report findings.
//
//   dshuf_analyze [--format=text|json] [--baseline=FILE]
//                 [--write-baseline=FILE] <file-or-dir>...
//
// Exit 0 = clean, 1 = findings (after baseline), 2 = usage/IO error.
// Directory walks skip `fixtures/` and `build*/` subtrees — the analyzer's
// own deliberately-broken fixtures are only scanned when named explicitly
// (the WILL_FAIL ctest entries do exactly that). Paths are reported
// repo-relative (from the first src/tools/bench/tests component) so the
// committed baseline and golden tests are machine-independent.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lexical_rules.hpp"
#include "passes.hpp"
#include "report.hpp"
#include "source_model.hpp"

namespace {

namespace fs = std::filesystem;

bool scannable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

bool skipped_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == "fixtures" || name.rfind("build", 0) == 0 ||
         (!name.empty() && name[0] == '.');
}

std::vector<fs::path> collect(const std::vector<std::string>& roots) {
  std::vector<fs::path> files;
  for (const auto& root : roots) {
    const fs::path p(root);
    if (fs::is_regular_file(p)) {
      if (scannable(p)) files.push_back(p);
      continue;
    }
    if (!fs::is_directory(p)) {
      std::cerr << "dshuf_analyze: no such file or directory: " << root
                << "\n";
      std::exit(2);
    }
    fs::recursive_directory_iterator it(p);
    const fs::recursive_directory_iterator end;
    while (it != end) {
      if (it->is_directory() && skipped_dir(it->path())) {
        it.disable_recursion_pending();
      } else if (it->is_regular_file() && scannable(it->path())) {
        files.push_back(it->path());
      }
      ++it;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

/// Repo-relative display path: cut at the first src/tools/bench/tests
/// path component so reports are stable across checkouts.
std::string normalize(const std::string& generic) {
  std::size_t best = std::string::npos;
  for (const char* marker : {"src/", "tools/", "bench/", "tests/"}) {
    std::size_t pos = 0;
    while ((pos = generic.find(marker, pos)) != std::string::npos) {
      if (pos == 0 || generic[pos - 1] == '/') {
        if (pos < best) best = pos;
        break;
      }
      ++pos;
    }
  }
  return best == std::string::npos ? generic : generic.substr(best);
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "text";
  std::string baseline_path;
  std::string write_baseline_path;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help") {
      std::cout
          << "usage: dshuf_analyze [--format=text|json] [--baseline=FILE]\n"
             "                     [--write-baseline=FILE] <file-or-dir>...\n"
             "Cross-TU static analysis: lexical lint rules plus lock-order,\n"
             "blocking-under-lock, atomics-discipline and DSHUF_NOALLOC\n"
             "reachability passes. Exit 0 = clean, 1 = findings, 2 = usage.\n";
      return 0;
    }
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json") {
        std::cerr << "dshuf_analyze: unknown format: " << format << "\n";
        return 2;
      }
      continue;
    }
    if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
      continue;
    }
    if (arg.rfind("--write-baseline=", 0) == 0) {
      write_baseline_path = arg.substr(17);
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "dshuf_analyze: unknown option: " << arg << "\n";
      return 2;
    }
    roots.push_back(arg);
  }
  if (roots.empty()) {
    std::cerr << "usage: dshuf_analyze [--format=text|json] "
                 "[--baseline=FILE] <file-or-dir>...\n";
    return 2;
  }

  std::vector<dshuf::analyze::SourceFile> files;
  for (const auto& file : collect(roots)) {
    std::ifstream in(file, std::ios::binary);
    if (!in.good()) {
      std::cerr << "dshuf_analyze: cannot read " << file << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    files.push_back(dshuf::analyze::make_source_file(
        normalize(file.generic_string()), buf.str()));
  }
  const std::size_t files_scanned = files.size();

  std::vector<dshuf::analyze::Finding> findings;
  for (const auto& f : files) {
    for (auto& fd : dshuf::analyze::scan_lexical(f)) {
      findings.push_back(std::move(fd));
    }
  }
  const dshuf::analyze::ProjectIndex idx =
      dshuf::analyze::build_index(std::move(files));
  dshuf::analyze::AnalysisResult res = dshuf::analyze::run_passes(idx);
  findings.insert(findings.end(),
                  std::make_move_iterator(res.findings.begin()),
                  std::make_move_iterator(res.findings.end()));
  std::sort(findings.begin(), findings.end(),
            [](const dshuf::analyze::Finding& a,
               const dshuf::analyze::Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.pass != b.pass) return a.pass < b.pass;
              return a.message < b.message;
            });

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path);
    if (!out) {
      std::cerr << "dshuf_analyze: cannot write " << write_baseline_path
                << "\n";
      return 2;
    }
    out << dshuf::analyze::render_baseline(findings);
  }
  if (!baseline_path.empty()) {
    findings = dshuf::analyze::apply_baseline(
        std::move(findings), dshuf::analyze::load_baseline(baseline_path));
  }

  const std::string rendered =
      format == "json"
          ? dshuf::analyze::render_json(findings, res.edges, files_scanned)
          : dshuf::analyze::render_text(findings, res.edges, files_scanned);
  std::cout << rendered;
  return findings.empty() ? 0 : 1;
}
