#include "source_model.hpp"

#include <algorithm>
#include <cctype>

namespace dshuf::analyze {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::size_t find_word(const std::string& s, const std::string& word,
                      std::size_t pos) {
  while ((pos = s.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(s[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= s.size() || !is_ident_char(s[end]);
    if (left_ok && right_ok) return pos;
    pos = end;
  }
  return std::string::npos;
}

bool contains_word(const std::string& s, const std::string& word) {
  return find_word(s, word) != std::string::npos;
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::vector<std::string> split_lines(const std::string& s) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t nl = s.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(s.substr(start));
      break;
    }
    lines.push_back(s.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

std::string annotation_justification(const std::string& raw_line,
                                     const std::string& marker) {
  const std::size_t pos = raw_line.find(marker);
  if (pos == std::string::npos) return {};
  std::string rest = raw_line.substr(pos + marker.size());
  std::size_t b = 0;
  while (b < rest.size() &&
         (rest[b] == ':' || rest[b] == '-' || rest[b] == ' ' ||
          rest[b] == '\t')) {
    ++b;
  }
  return trim(rest.substr(b));
}

bool annotated(const std::vector<std::string>& raw_lines, std::size_t idx,
               const std::string& marker) {
  if (idx < raw_lines.size() &&
      raw_lines[idx].find(marker) != std::string::npos) {
    return true;
  }
  return idx > 0 && raw_lines[idx - 1].find(marker) != std::string::npos;
}

std::size_t annotation_line(const std::vector<std::string>& raw_lines,
                            std::size_t idx, const std::string& marker) {
  if (idx < raw_lines.size() &&
      raw_lines[idx].find(marker) != std::string::npos) {
    return idx;
  }
  if (idx > 0 && raw_lines[idx - 1].find(marker) != std::string::npos) {
    return idx - 1;
  }
  return std::string::npos;
}

FileClass classify_path(const std::string& path) {
  FileClass info;
  info.path = path;
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  const auto has = [&](const char* needle) {
    return p.find(needle) != std::string::npos;
  };
  info.is_header = p.size() >= 4 && (p.rfind(".hpp") == p.size() - 4 ||
                                     p.rfind(".h") == p.size() - 2);
  info.determinism_critical =
      has("src/shuffle/") || has("src/comm/") || has("src/sim/");
  info.rng_module = has("util/rng.hpp") || has("util/rng.cpp");
  info.src_tree = has("src/");
  info.log_module = has("util/log.cpp");
  info.io_module = has("src/io/");
  return info;
}

std::string scrub(const std::string& content) {
  std::string out = content;
  enum class St { kCode, kLine, kBlock, kStr, kChar, kRaw };
  St st = St::kCode;
  std::string raw_delim;
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char n = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && n == '/') {
          st = St::kLine;
          out[i] = ' ';
        } else if (c == '/' && n == '*') {
          st = St::kBlock;
          out[i] = ' ';
        } else if (c == 'R' && n == '"' &&
                   (i == 0 || !is_ident_char(content[i - 1]))) {
          // Raw string: capture the delimiter up to '('.
          std::size_t j = i + 2;
          while (j < content.size() && content[j] != '(') ++j;
          raw_delim = ")" + content.substr(i + 2, j - i - 2) + "\"";
          st = St::kRaw;
          // Keep R"...( visible length but blank it.
          for (std::size_t k = i; k <= j && k < content.size(); ++k) {
            if (content[k] != '\n') out[k] = ' ';
          }
          i = j;
        } else if (c == '"') {
          st = St::kStr;
        } else if (c == '\'') {
          st = St::kChar;
        }
        break;
      case St::kLine:
        if (c == '\n') {
          st = St::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case St::kBlock:
        if (c == '*' && n == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kStr:
        if (c == '\\') {
          out[i] = ' ';
          if (n != '\n') {
            if (i + 1 < out.size()) out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < out.size() && n != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kRaw:
        if (content.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 0; k < raw_delim.size(); ++k) {
            if (out[i + k] != '\n') out[i + k] = ' ';
          }
          i += raw_delim.size() - 1;
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<Token> tokenize(const std::string& s) {
  std::vector<Token> toks;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = s.size();
  while (i < n) {
    const char c = s[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::size_t j = i + 1;
      while (j < n && is_ident_char(s[j])) ++j;
      toks.push_back({Token::Kind::kIdent, s.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i + 1;
      while (j < n && (is_ident_char(s[j]) || s[j] == '.')) ++j;
      toks.push_back({Token::Kind::kNumber, s.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (c == '"') {
      // Scrubbed string: contents are spaces, the quotes survive. Scan to
      // the closing quote on the same logical literal.
      std::size_t j = i + 1;
      while (j < n && s[j] != '"') {
        if (s[j] == '\n') ++line;
        ++j;
      }
      toks.push_back({Token::Kind::kString, "", line});
      i = j < n ? j + 1 : n;
      continue;
    }
    if (c == '\'') {
      std::size_t j = i + 1;
      while (j < n && s[j] != '\'') {
        if (s[j] == '\n') ++line;
        ++j;
      }
      toks.push_back({Token::Kind::kChar, "", line});
      i = j < n ? j + 1 : n;
      continue;
    }
    // Punctuation. Only `::` and `->` are fused; everything else is a
    // single character so `>>` closes two template levels naturally.
    if (c == ':' && i + 1 < n && s[i + 1] == ':') {
      toks.push_back({Token::Kind::kPunct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && s[i + 1] == '>') {
      toks.push_back({Token::Kind::kPunct, "->", line});
      i += 2;
      continue;
    }
    toks.push_back({Token::Kind::kPunct, std::string(1, c), line});
    ++i;
  }
  return toks;
}

SourceFile make_source_file(const std::string& path,
                            const std::string& content) {
  SourceFile f;
  f.cls = classify_path(path);
  f.raw = content;
  f.scrubbed = scrub(content);
  f.raw_lines = split_lines(content);
  f.lines = split_lines(f.scrubbed);
  f.toks = tokenize(f.scrubbed);
  return f;
}

}  // namespace dshuf::analyze
