// Fixture: atomics-discipline violations (WILL_FAIL test). This file has
// no entry in the profile table, so only explicit seq_cst is acceptable:
// the implicit-order load() and the exotic consume order must both flag.
#include <atomic>

namespace fix {

class StopFlag {
 public:
  [[nodiscard]] bool read() const { return stop_.load(); }  // implicit order

  void set() { stop_.store(true, std::memory_order_consume); }  // off-profile

 private:
  std::atomic<bool> stop_{false};
};

}  // namespace fix
