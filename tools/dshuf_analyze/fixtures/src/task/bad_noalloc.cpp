// Fixture: DSHUF_NOALLOC violations (WILL_FAIL test). hot_loop() is
// declared allocation-free but both allocates directly (`new`) and reaches
// a growing std::vector through Queue::record — the reachability pass must
// report the callee's push_back with a witness chain.
#include <cstddef>
#include <vector>

#define DSHUF_NOALLOC

namespace fix {

class Queue {
 public:
  void record(int v) { log_.push_back(v); }  // grows under the hood

 private:
  std::vector<int> log_;
};

DSHUF_NOALLOC void hot_loop(Queue& q, std::size_t n) {
  int* scratch = new int[4];  // direct allocation on the hot path
  for (std::size_t i = 0; i < n; ++i) {
    q.record(static_cast<int>(i));  // transitive allocation
  }
  delete[] scratch;
}

}  // namespace fix
