// Fixture: blocking primitives reachable under a lock (WILL_FAIL test).
// Three distinct hazards: a sleep under a lock, file I/O under a lock, and
// a transitive condition-variable wait — wait_ready() itself is clean (the
// wait releases its own mutex), but calling it with queue_mu_ held is not.
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <mutex>
#include <thread>

namespace fix {

enum class LockRank { kTaskScheduler = 5, kBatchLoader = 30 };

class RankedMutex {};

class Loader {
 public:
  void wait_ready() {
    std::unique_lock<RankedMutex> lk(mu_);
    cv_.wait(lk);  // releases mu_: no other rank held, so clean here
  }

  void drain() {
    std::lock_guard<RankedMutex> outer(queue_mu_);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));  // hazard 1
    std::ifstream in("manifest.txt");                           // hazard 2
    wait_ready();  // hazard 3: cv wait while queue_mu_ is held
  }

 private:
  RankedMutex mu_{LockRank::kBatchLoader, "fix.loader"};
  RankedMutex queue_mu_{LockRank::kTaskScheduler, "fix.queue"};
  std::condition_variable_any cv_;
};

}  // namespace fix
