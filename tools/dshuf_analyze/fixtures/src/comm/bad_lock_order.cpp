// Fixture: lock-order inversion the analyzer must flag (WILL_FAIL test).
// Self-contained rank universe — the indexer parses `enum class LockRank`
// out of whichever file defines it, so this fixture never sees the real
// src/util/ranked_mutex.hpp ranks.
//
// The inversion is cross-function: on_timeout() holds rank 20 and calls
// deliver(), whose body (an out-of-line definition, exercising the
// qualified-name indexing path) acquires rank 10. Only the transitive
// may-acquire relation sees it.
#include <mutex>

namespace fix {

enum class LockRank { kTaskScheduler = 5, kCommMailbox = 10, kFault = 20 };

class RankedMutex {};

class Mailbox {
 public:
  RankedMutex mu{LockRank::kCommMailbox, "fix.mailbox"};
  void deliver();
};

class FaultTracker {
 public:
  RankedMutex mu_{LockRank::kFault, "fix.fault"};
  Mailbox box;

  void on_timeout() {
    std::lock_guard<RankedMutex> hold(mu_);  // rank 20 held...
    box.deliver();                           // ...while reaching rank 10
  }
};

void Mailbox::deliver() {
  std::lock_guard<RankedMutex> lk(mu);  // rank 10: the inverted acquire
}

}  // namespace fix
