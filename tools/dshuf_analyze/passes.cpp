#include "passes.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace dshuf::analyze {

namespace {

// ------------------------------------------------------------ small utils

bool is_ident(const std::vector<Token>& t, std::size_t i) {
  return i < t.size() && t[i].kind == Token::Kind::kIdent;
}

bool is_punct(const std::vector<Token>& t, std::size_t i, const char* p) {
  return i < t.size() && t[i].kind == Token::Kind::kPunct && t[i].text == p;
}

std::size_t skip_angle(const std::vector<Token>& t, std::size_t i) {
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].kind != Token::Kind::kPunct) continue;
    if (t[j].text == "<") ++depth;
    if (t[j].text == ">") {
      --depth;
      if (depth == 0) return j + 1;
    }
    if (t[j].text == ";" || t[j].text == "{" || t[j].text == "}") break;
  }
  return i + 1;
}

std::size_t skip_balanced(const std::vector<Token>& t, std::size_t i,
                          const char* open, const char* close) {
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].kind != Token::Kind::kPunct) continue;
    if (t[j].text == open) ++depth;
    if (t[j].text == close) {
      --depth;
      if (depth == 0) return j + 1;
    }
  }
  return t.size();
}

const std::set<std::string>& keywords() {
  static const std::set<std::string> kw = {
      "if",    "for",    "while",    "switch", "catch",    "return",
      "new",   "delete", "sizeof",   "alignof", "typeid",  "decltype",
      "throw", "do",     "else",     "case",    "goto",    "noexcept",
      "static_assert", "assert", "alignas", "try", "const_cast",
      "static_cast", "dynamic_cast", "reinterpret_cast"};
  return kw;
}

/// Waiver lookup: `// analyze:<tag> <why>` on the finding's line or the
/// line above, with a non-trivial justification.
bool waived(const SourceFile& f, int line, const std::string& tag) {
  const std::string marker = "analyze:" + tag;
  const std::size_t idx = static_cast<std::size_t>(line) - 1;
  const std::size_t mline = annotation_line(f.raw_lines, idx, marker);
  if (mline == std::string::npos) return false;
  return annotation_justification(f.raw_lines[mline], marker).size() >= 3;
}

// ------------------------------------------------------- per-body events

struct Held {
  int rank = -1;
  std::string what;   // "mu_ [kFileStore=40]"
  std::string guard;  // guard variable name
};

struct Acq {
  int rank = -1;
  std::string what;
  int line = 0;
  std::vector<Held> held;  // held at the acquisition point
};

struct CallSite {
  std::string name;
  std::string receiver;
  std::string recv_class;  // explicit Class:: qualifier, if written
  int line = 0;
  bool in_catch = false;
  std::vector<Held> held;
};

struct DirectBlock {
  std::string what;
  int line = 0;
  std::vector<Held> held;
};

struct DirectAlloc {
  std::string what;
  int line = 0;
};

struct FuncSummary {
  std::vector<Acq> acquires;
  std::vector<CallSite> calls;
  std::vector<DirectBlock> blocks;
  std::vector<DirectAlloc> allocs;
  std::vector<Finding> local;  // unresolved/ambiguous guard findings
};

const std::set<std::string>& guard_types() {
  static const std::set<std::string> g = {"lock_guard", "unique_lock",
                                          "scoped_lock", "shared_lock"};
  return g;
}

const std::set<std::string>& growth_methods() {
  static const std::set<std::string> g = {
      "push_back", "emplace_back", "push_front", "emplace_front", "push",
      "emplace",   "insert",       "resize",     "reserve",        "assign",
      "append"};
  return g;
}

const std::set<std::string>& alloc_calls() {
  static const std::set<std::string> a = {"malloc",      "calloc",
                                          "realloc",     "aligned_alloc",
                                          "make_unique", "make_shared",
                                          "to_string",   "strdup"};
  return a;
}

const std::set<std::string>& blocking_calls() {
  static const std::set<std::string> b = {
      "sleep_for", "sleep_until", "ifstream", "ofstream", "fstream",
      "fopen",     "create_directories", "directory_iterator", "remove_all"};
  return b;
}

const std::set<std::string>& atomic_ops();  // defined with the atomics pass

const std::set<std::string>& log_macros() {
  static const std::set<std::string> m = {"LOG_DEBUG", "LOG_INFO", "LOG_WARN",
                                          "LOG_ERROR", "DSHUF_LOG"};
  return m;
}

const std::set<std::string>& obs_macros() {
  static const std::set<std::string> m = {"DSHUF_COUNTER", "DSHUF_GAUGE",
                                          "DSHUF_HISTOGRAM_US", "DSHUF_SPAN"};
  return m;
}

std::string rank_display(const ProjectIndex& idx, int rank) {
  for (const auto& [name, value] : idx.rank_values) {
    if (value == rank) return name + "=" + std::to_string(rank);
  }
  return std::to_string(rank);
}

std::string mutex_display(const ProjectIndex& idx, const MutexDecl& m) {
  return m.name + " [" + rank_display(idx, m.rank) + "]";
}

/// Split the token range of a guard's argument list on top-level commas.
std::vector<std::pair<std::size_t, std::size_t>> split_args(
    const std::vector<Token>& t, std::size_t b, std::size_t e) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  int depth = 0;
  std::size_t start = b;
  for (std::size_t j = b; j < e; ++j) {
    if (t[j].kind != Token::Kind::kPunct) continue;
    const std::string& p = t[j].text;
    if (p == "(" || p == "[" || p == "{") ++depth;
    if (p == ")" || p == "]" || p == "}") --depth;
    if (p == "," && depth == 0) {
      out.emplace_back(start, j);
      start = j + 1;
    }
  }
  if (start < e) out.emplace_back(start, e);
  return out;
}

/// True for lock-tag arguments (std::adopt_lock etc.) that name no mutex.
bool is_lock_tag(const std::vector<Token>& t, std::size_t b, std::size_t e) {
  for (std::size_t j = b; j < e; ++j) {
    if (!is_ident(t, j)) continue;
    const std::string& w = t[j].text;
    if (w == "adopt_lock" || w == "defer_lock" || w == "try_to_lock") {
      return true;
    }
    if (w != "std") return false;
  }
  return true;  // empty argument
}

struct Region {
  std::string guard;
  std::vector<Held> locks;
  int depth = 0;
  bool active = true;
};

std::vector<Held> held_now(const std::vector<Region>& regions) {
  std::vector<Held> out;
  for (const Region& r : regions) {
    if (!r.active) continue;
    out.insert(out.end(), r.locks.begin(), r.locks.end());
  }
  return out;
}

/// Immediate receiver of a call at token `name_i`: the identifier directly
/// before the `.`/`->`. In `a.b.c(...)`, that is `b` — the one whose class
/// owns `c`, and the one the var -> class map can type when it is a
/// declared member. Empty for chained calls (`f(x).g(`) and subscripted
/// receivers (`v[i].g(`).
std::string receiver_of(const std::vector<Token>& t, std::size_t name_i,
                        std::size_t lo) {
  if (name_i < lo + 2) return {};
  if (!is_punct(t, name_i - 1, ".") && !is_punct(t, name_i - 1, "->")) {
    return {};
  }
  if (t[name_i - 2].kind != Token::Kind::kIdent) return {};
  return t[name_i - 2].text;
}

/// Extract the event stream of one function body.
FuncSummary extract(const ProjectIndex& idx, const FunctionDef& fn) {
  const SourceFile& f = idx.files[static_cast<std::size_t>(fn.file)];
  const std::vector<Token>& t = f.toks;
  const std::size_t lo = fn.body_begin;
  const std::size_t hi = std::min(fn.body_end, t.size());

  FuncSummary out;
  std::vector<Region> regions;
  std::vector<int> catch_depths;
  bool pending_catch = false;
  int depth = 0;

  const bool emit = f.cls.src_tree;

  std::size_t i = lo;
  while (i < hi) {
    const Token& tok = t[i];
    if (tok.kind == Token::Kind::kPunct) {
      if (tok.text == "{") {
        ++depth;
        if (pending_catch) {
          catch_depths.push_back(depth);
          pending_catch = false;
        }
      } else if (tok.text == "}") {
        for (Region& r : regions) {
          if (r.active && r.depth >= depth) r.active = false;
        }
        if (!catch_depths.empty() && catch_depths.back() == depth) {
          catch_depths.pop_back();
        }
        --depth;
      }
      ++i;
      continue;
    }
    if (tok.kind != Token::Kind::kIdent) {
      ++i;
      continue;
    }
    const std::string& w = tok.text;
    const bool in_catch = !catch_depths.empty();

    if (w == "catch") {
      pending_catch = true;
      std::size_t j = i + 1;
      if (is_punct(t, j, "(")) j = skip_balanced(t, j, "(", ")");
      i = j;
      continue;
    }

    // ---- lock guard declarations -----------------------------------
    if (guard_types().count(w) != 0) {
      std::size_t j = i + 1;
      if (is_punct(t, j, "<")) j = skip_angle(t, j);
      if (is_ident(t, j) &&
          (is_punct(t, j + 1, "(") || is_punct(t, j + 1, "{"))) {
        const std::string gname = t[j].text;
        const char* open = t[j + 1].text == "(" ? "(" : "{";
        const char* close = t[j + 1].text == "(" ? ")" : "}";
        const std::size_t end = skip_balanced(t, j + 1, open, close);
        Region region;
        region.guard = gname;
        region.depth = depth;
        for (const auto& [ab, ae] :
             split_args(t, j + 2, end > 0 ? end - 1 : end)) {
          if (is_lock_tag(t, ab, ae)) continue;
          const auto decls = resolve_mutex(idx, fn.file, fn.qual, t, ab, ae);
          std::set<int> ranks;
          for (const MutexDecl* d : decls) ranks.insert(d->rank);
          if (decls.empty() || ranks.size() != 1) {
            if (emit && !waived(f, tok.line, "lock-ok")) {
              Finding fd;
              fd.file = f.cls.path;
              fd.line = static_cast<std::size_t>(tok.line);
              fd.pass = "lock-order";
              fd.rule = decls.empty() ? "lock-unresolved" : "lock-ambiguous";
              fd.message =
                  decls.empty()
                      ? "cannot resolve guarded mutex to a RankedMutex "
                        "declaration (is it ranked?)"
                      : "guarded mutex name resolves to declarations with "
                        "different ranks";
              out.local.push_back(fd);
            }
            continue;
          }
          const MutexDecl* d = decls.front();
          Acq acq;
          acq.rank = d->rank;
          acq.what = mutex_display(idx, *d);
          acq.line = tok.line;
          acq.held = held_now(regions);
          out.acquires.push_back(acq);
          region.locks.push_back({d->rank, acq.what, gname});
        }
        if (!region.locks.empty()) regions.push_back(region);
        i = end;
        continue;
      }
    }

    // ---- guard unlock / relock -------------------------------------
    if ((w == "unlock" || w == "lock") && is_punct(t, i + 1, "(")) {
      const std::string recv = receiver_of(t, i, lo);
      if (!recv.empty()) {
        for (Region& r : regions) {
          if (r.guard == recv) r.active = (w == "lock");
        }
        i = skip_balanced(t, i + 1, "(", ")");
        continue;
      }
    }

    // ---- condition-variable waits ----------------------------------
    if ((w == "wait" || w == "wait_for" || w == "wait_until") &&
        is_punct(t, i + 1, "(")) {
      const std::string recv = receiver_of(t, i, lo);
      if (!recv.empty() && idx.cv_names.count(recv) != 0) {
        // The wait releases its own guard's mutex; anything else held
        // across the wait is the hazard.
        std::string own;
        const std::size_t end = skip_balanced(t, i + 1, "(", ")");
        if (is_ident(t, i + 2)) own = t[i + 2].text;
        DirectBlock blk;
        blk.what = recv + "." + w + "()";
        blk.line = tok.line;
        for (const Region& r : regions) {
          if (!r.active || r.guard == own) continue;
          blk.held.insert(blk.held.end(), r.locks.begin(), r.locks.end());
        }
        out.blocks.push_back(blk);
        i = end;
        continue;
      }
    }

    // ---- log / obs macro aliases -----------------------------------
    if (log_macros().count(w) != 0) {
      Acq acq;
      const auto it = idx.rank_values.find("kLog");
      acq.rank = it != idx.rank_values.end() ? it->second : -1;
      acq.what = w + " [" + rank_display(idx, acq.rank) + "]";
      acq.line = tok.line;
      acq.held = held_now(regions);
      if (acq.rank >= 0) out.acquires.push_back(acq);
      if (!waived(f, tok.line, "alloc-ok")) {
        out.allocs.push_back({w + " line buffer", tok.line});
      }
      ++i;
      continue;
    }
    if (obs_macros().count(w) != 0) {
      const auto it = idx.rank_values.find("kObs");
      if (it != idx.rank_values.end()) {
        Acq acq;
        acq.rank = it->second;
        acq.what = w + " [" + rank_display(idx, acq.rank) + "]";
        acq.line = tok.line;
        acq.held = held_now(regions);
        out.acquires.push_back(acq);
      }
      ++i;
      continue;
    }
    if (w.rfind("DSHUF_CHECK", 0) == 0) {  // failure-path only: exempt
      ++i;
      continue;
    }

    // ---- allocation / blocking / call events -----------------------
    if (w == "new" && !in_catch) {
      if (!waived(f, tok.line, "alloc-ok")) {
        out.allocs.push_back({"new", tok.line});
      }
      ++i;
      continue;
    }

    const bool called = is_punct(t, i + 1, "(");
    if (called && keywords().count(w) == 0) {
      const std::string recv = receiver_of(t, i, lo);
      const bool recv_is_project_class =
          !recv.empty() && idx.var_class.count(recv) != 0 &&
          idx.var_class.at(recv).size() == 1;
      // `Class::name(...)` / `ns::name(...)` qualifier, when written.
      std::string qualifier;
      if (recv.empty() && i >= lo + 2 && is_punct(t, i - 1, "::") &&
          is_ident(t, i - 2)) {
        qualifier = t[i - 2].text;
      }

      if (blocking_calls().count(w) != 0) {
        out.blocks.push_back({w, tok.line, held_now(regions)});
      } else if (w == "join" && !recv.empty()) {
        out.blocks.push_back({recv + ".join()", tok.line,
                              held_now(regions)});
      } else if (alloc_calls().count(w) != 0) {
        if (!in_catch && !waived(f, tok.line, "alloc-ok")) {
          out.allocs.push_back({w, tok.line});
        }
      } else if (growth_methods().count(w) != 0 && !recv.empty() &&
                 (!recv_is_project_class ||
                  resolve_call(idx, w, recv, "", fn.file).empty())) {
        // Growth on a standard container: either the receiver is not a
        // project class, or it is one that doesn't define this method
        // (a var name shared with an unrelated class elsewhere). A
        // project class that does define it falls through to the call
        // branch below and has its body analyzed instead.
        if (!in_catch && !waived(f, tok.line, "alloc-ok")) {
          out.allocs.push_back({recv + "." + w + "()", tok.line});
        }
      } else if (!recv.empty() && idx.atomic_names.count(recv) != 0) {
        // std::atomic operation, not a project call (the atomics pass
        // owns these sites).
      } else if (atomic_ops().count(w) != 0 && !recv_is_project_class &&
                 qualifier.empty()) {
        // load()/store()/... without a receiver of known project class:
        // almost certainly an atomic the indexer couldn't name (e.g.
        // `buckets_[i].load(...)` whose subscripted receiver is opaque);
        // never treated as a project call.
      } else if (!qualifier.empty() &&
                 idx.class_names.count(qualifier) == 0) {
        // std:: / fs:: / chrono:: etc. — external, nothing to resolve.
      } else {
        // Declaration `Type var(args)` is a constructor call of Type.
        std::string callee = w;
        std::string creceiver = recv;
        if (recv.empty() && qualifier.empty() && i > lo &&
            is_ident(t, i - 1) && keywords().count(t[i - 1].text) == 0) {
          callee = t[i - 1].text;  // ctor of the declared type
          creceiver.clear();
        }
        CallSite c;
        c.name = callee;
        c.receiver = creceiver;
        c.recv_class = qualifier;
        c.line = tok.line;
        c.in_catch = in_catch;
        c.held = held_now(regions);
        out.calls.push_back(c);
      }
      i = i + 1;
      continue;
    }
    // Blocking stream types used as declarations: `std::ifstream in(...)`.
    if (!called && blocking_calls().count(w) != 0 &&
        (is_ident(t, i + 1) || is_punct(t, i + 1, "{"))) {
      out.blocks.push_back({w, tok.line, held_now(regions)});
      ++i;
      continue;
    }
    ++i;
  }
  return out;
}

// --------------------------------------------------------- atomics pass

const std::set<std::string>& atomic_ops() {
  static const std::set<std::string> ops = {
      "load",        "store",
      "exchange",    "fetch_add",
      "fetch_sub",   "fetch_and",
      "fetch_or",    "fetch_xor",
      "compare_exchange_weak", "compare_exchange_strong"};
  return ops;
}

/// Allowed memory orders per file (longest-suffix match), the "profile".
/// Files not listed fall back to seq_cst-only: the strongest order is
/// always acceptable; anything weaker must be declared here.
const std::vector<std::pair<std::string, std::set<std::string>>>&
atomics_profiles() {
  static const std::vector<std::pair<std::string, std::set<std::string>>>
      table = {
          {"src/task/task_queue.hpp",
           {"seq_cst", "acquire", "release", "relaxed", "acq_rel"}},
          {"src/task/scheduler.hpp",
           {"seq_cst", "acquire", "release", "acq_rel", "relaxed"}},
          {"src/task/scheduler.cpp",
           {"seq_cst", "acquire", "release", "acq_rel", "relaxed"}},
          {"src/obs/metrics.hpp", {"relaxed"}},
          {"src/obs/metrics.cpp", {"relaxed"}},
          {"src/obs/timeseries.cpp", {"acquire", "release"}},
          {"src/obs/trace.cpp", {"acquire", "release", "relaxed"}},
          {"src/obs/trace.hpp", {"acquire", "release", "relaxed"}},
          {"src/obs/clock.hpp", {"acquire", "release", "acq_rel"}},
          {"src/obs/clock.cpp", {"acquire", "release", "acq_rel"}},
          {"src/shuffle/exchange_wire.cpp", {"acquire", "release"}},
          // Plan-interning switch: plain published flag, same discipline
          // as the wire switch above.
          {"src/shuffle/exchange_plan.cpp", {"acquire", "release"}},
          // Slot-index backend switch: plain published flag.
          {"src/io/slot_index.cpp", {"acquire", "release"}},
          // Epoch pins: CAS-claimed under the store lock, released with a
          // store-release that the reclaim scan acquires.
          {"src/io/mmap_store.cpp", {"acquire", "release", "acq_rel"}},
          {"src/tensor/tensor.cpp", {"acquire", "release"}},
          {"src/util/ranked_mutex.cpp", {"seq_cst", "acquire", "acq_rel"}},
          // src/netsim/* has NO entry on purpose: the virtual-rank
          // backend is single-OS-thread by design (fibers + one event
          // loop), so any atomic appearing there should trip the
          // seq_cst-only fallback and force a review.
      };
  return table;
}

const std::set<std::string>* profile_for(const std::string& path) {
  static const std::set<std::string> fallback = {"seq_cst"};
  const std::set<std::string>* best = nullptr;
  std::size_t best_len = 0;
  for (const auto& [suffix, orders] : atomics_profiles()) {
    if (path.size() >= suffix.size() &&
        path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
            0 &&
        suffix.size() > best_len) {
      best = &orders;
      best_len = suffix.size();
    }
  }
  return best != nullptr ? best : &fallback;
}

void atomics_pass(const ProjectIndex& idx, std::vector<Finding>& out) {
  for (const SourceFile& f : idx.files) {
    if (!f.cls.src_tree) continue;
    const std::set<std::string>& profile = *profile_for(f.cls.path);
    const std::vector<Token>& t = f.toks;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (!is_ident(t, i) || atomic_ops().count(t[i].text) == 0) continue;
      if (!is_punct(t, i + 1, "(")) continue;
      if (i < 2 ||
          (!is_punct(t, i - 1, ".") && !is_punct(t, i - 1, "->"))) {
        continue;
      }
      if (!is_ident(t, i - 2) ||
          idx.atomic_names.count(t[i - 2].text) == 0) {
        continue;
      }
      const std::size_t end = skip_balanced(t, i + 1, "(", ")");
      std::vector<std::string> orders;
      for (std::size_t j = i + 2; j < end; ++j) {
        if (!is_ident(t, j)) continue;
        const std::string& a = t[j].text;
        if (a.rfind("memory_order_", 0) == 0) {
          orders.push_back(a.substr(13));
        } else if (a == "memory_order" && is_punct(t, j + 1, "::") &&
                   is_ident(t, j + 2)) {
          orders.push_back(t[j + 2].text);
          j += 2;
        }
      }
      const int line = t[i].line;
      if (waived(f, line, "atomic-ok")) continue;
      if (orders.empty()) {
        Finding fd;
        fd.file = f.cls.path;
        fd.line = static_cast<std::size_t>(line);
        fd.pass = "atomics";
        fd.rule = "implicit-memory-order";
        fd.message = t[i - 2].text + "." + t[i].text +
                     " uses the implicit seq_cst memory order; spell it "
                     "explicitly";
        out.push_back(fd);
        continue;
      }
      for (const std::string& o : orders) {
        if (profile.count(o) != 0) continue;
        Finding fd;
        fd.file = f.cls.path;
        fd.line = static_cast<std::size_t>(line);
        fd.pass = "atomics";
        fd.rule = "memory-order-profile";
        fd.message = "memory_order_" + o + " on " + t[i - 2].text + "." +
                     t[i].text +
                     " is not in this file's allowed profile";
        out.push_back(fd);
      }
    }
  }
}

// ------------------------------------------------------------- fixpoints

struct RankProv {
  std::string what;  // display of the acquired mutex
  int func = -1;     // function holding the direct acquire
  int line = 0;
};

struct BlockProv {
  std::string what;
  int func = -1;
  int line = 0;
};

std::string func_display(const ProjectIndex& idx, const FunctionDef& fn) {
  const std::string& path = idx.files[static_cast<std::size_t>(fn.file)]
                                .cls.path;
  const std::string qual =
      fn.qual.empty() ? fn.name : fn.qual + "::" + fn.name;
  return qual + " (" + path + ":" + std::to_string(fn.line) + ")";
}

}  // namespace

AnalysisResult run_passes(const ProjectIndex& idx) {
  AnalysisResult res;

  // ---- extract every function body once ---------------------------------
  std::vector<FuncSummary> sums;
  sums.reserve(idx.functions.size());
  for (const FunctionDef& fn : idx.functions) sums.push_back(extract(idx, fn));
  for (const FuncSummary& s : sums) {
    res.findings.insert(res.findings.end(), s.local.begin(), s.local.end());
  }

  const std::size_t n = idx.functions.size();

  // ---- fixpoint: ranks each function may acquire (transitively) ---------
  std::vector<std::map<int, RankProv>> may_acquire(n);
  for (std::size_t fi = 0; fi < n; ++fi) {
    for (const Acq& a : sums[fi].acquires) {
      may_acquire[fi].emplace(
          a.rank, RankProv{a.what, static_cast<int>(fi), a.line});
    }
  }
  // Resolve call targets once.
  std::vector<std::vector<std::pair<std::size_t, std::vector<int>>>>
      call_targets(n);
  for (std::size_t fi = 0; fi < n; ++fi) {
    for (std::size_t ci = 0; ci < sums[fi].calls.size(); ++ci) {
      const CallSite& c = sums[fi].calls[ci];
      std::vector<int> targets = resolve_call(idx, c.name, c.receiver,
                                              c.recv_class,
                                              idx.functions[fi].file);
      if (!targets.empty()) call_targets[fi].emplace_back(ci, targets);
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t fi = 0; fi < n; ++fi) {
      for (const auto& [ci, targets] : call_targets[fi]) {
        (void)ci;
        for (int gi : targets) {
          for (const auto& [rank, prov] :
               may_acquire[static_cast<std::size_t>(gi)]) {
            if (may_acquire[fi].emplace(rank, prov).second) changed = true;
          }
        }
      }
    }
  }

  // ---- fixpoint: may the function block? --------------------------------
  std::vector<BlockProv> may_block(n);
  for (std::size_t fi = 0; fi < n; ++fi) {
    if (!sums[fi].blocks.empty()) {
      const DirectBlock& b = sums[fi].blocks.front();
      may_block[fi] = {b.what, static_cast<int>(fi), b.line};
    }
  }
  changed = true;
  while (changed) {
    changed = false;
    for (std::size_t fi = 0; fi < n; ++fi) {
      if (may_block[fi].func >= 0) continue;
      for (const auto& [ci, targets] : call_targets[fi]) {
        (void)ci;
        for (int gi : targets) {
          if (may_block[static_cast<std::size_t>(gi)].func >= 0) {
            may_block[fi] = may_block[static_cast<std::size_t>(gi)];
            changed = true;
            break;
          }
        }
        if (may_block[fi].func >= 0) break;
      }
    }
  }

  // ---- pass 1: lock order ----------------------------------------------
  std::set<std::pair<int, int>> edge_seen;
  std::set<std::string> dedupe;
  const auto record_edge = [&](int from, int to, const std::string& via,
                               bool violation) {
    if (!edge_seen.insert({from, to}).second) return;
    LockOrderEdge e;
    e.from_rank = from;
    e.to_rank = to;
    for (const auto& [name, value] : idx.rank_values) {
      if (value == from && e.from_name.empty()) e.from_name = name;
      if (value == to && e.to_name.empty()) e.to_name = name;
    }
    e.via = via;
    e.violation = violation;
    res.edges.push_back(e);
  };

  for (std::size_t fi = 0; fi < n; ++fi) {
    const FunctionDef& fn = idx.functions[fi];
    const SourceFile& f = idx.files[static_cast<std::size_t>(fn.file)];
    const std::string via = func_display(idx, fn);
    // Direct acquisitions under held locks.
    for (const Acq& a : sums[fi].acquires) {
      for (const Held& h : a.held) {
        const bool bad = a.rank <= h.rank;
        record_edge(h.rank, a.rank, via, bad);
        if (!bad || !f.cls.src_tree) continue;
        if (waived(f, a.line, "lock-ok")) continue;
        const std::string key = f.cls.path + ":" +
                                std::to_string(a.line) + ":" +
                                std::to_string(h.rank) + ">" +
                                std::to_string(a.rank);
        if (!dedupe.insert(key).second) continue;
        Finding fd;
        fd.file = f.cls.path;
        fd.line = static_cast<std::size_t>(a.line);
        fd.pass = "lock-order";
        fd.rule = "lock-order";
        fd.message = "acquires " + a.what + " while holding " + h.what +
                     " — LockRank requires strictly ascending acquisition";
        res.findings.push_back(fd);
      }
    }
    // Transitive acquisitions through calls made under held locks.
    for (const auto& [ci, targets] : call_targets[fi]) {
      const CallSite& c = sums[fi].calls[ci];
      if (c.held.empty()) continue;
      for (int gi : targets) {
        for (const auto& [rank, prov] :
             may_acquire[static_cast<std::size_t>(gi)]) {
          for (const Held& h : c.held) {
            const bool bad = rank <= h.rank;
            record_edge(h.rank, rank, via, bad);
            if (!bad || !f.cls.src_tree) continue;
            if (waived(f, c.line, "lock-ok")) continue;
            const std::string key = f.cls.path + ":" +
                                    std::to_string(c.line) + ":" +
                                    std::to_string(h.rank) + ">" +
                                    std::to_string(rank);
            if (!dedupe.insert(key).second) continue;
            const FunctionDef& g =
                idx.functions[static_cast<std::size_t>(gi)];
            const FunctionDef& leaf =
                idx.functions[static_cast<std::size_t>(prov.func)];
            Finding fd;
            fd.file = f.cls.path;
            fd.line = static_cast<std::size_t>(c.line);
            fd.pass = "lock-order";
            fd.rule = "lock-order";
            fd.message = "call to " + c.name + " may acquire " + prov.what +
                         " while holding " + h.what +
                         " — LockRank requires strictly ascending "
                         "acquisition";
            fd.chain.push_back(func_display(idx, g));
            if (prov.func != gi) fd.chain.push_back(func_display(idx, leaf));
            fd.chain.push_back("acquires " + prov.what + " at " +
                               idx.files[static_cast<std::size_t>(leaf.file)]
                                   .cls.path +
                               ":" + std::to_string(prov.line));
            res.findings.push_back(fd);
          }
        }
      }
    }
  }

  // ---- pass 2: blocking under lock -------------------------------------
  dedupe.clear();
  for (std::size_t fi = 0; fi < n; ++fi) {
    const FunctionDef& fn = idx.functions[fi];
    const SourceFile& f = idx.files[static_cast<std::size_t>(fn.file)];
    if (!f.cls.src_tree) continue;
    for (const DirectBlock& b : sums[fi].blocks) {
      if (b.held.empty()) continue;
      if (waived(f, b.line, "blocking-ok")) continue;
      const std::string key =
          f.cls.path + ":" + std::to_string(b.line);
      if (!dedupe.insert(key).second) continue;
      Finding fd;
      fd.file = f.cls.path;
      fd.line = static_cast<std::size_t>(b.line);
      fd.pass = "blocking";
      fd.rule = "blocking-under-lock";
      fd.message = b.what + " while holding " + b.held.front().what;
      res.findings.push_back(fd);
    }
    for (const auto& [ci, targets] : call_targets[fi]) {
      const CallSite& c = sums[fi].calls[ci];
      if (c.held.empty()) continue;
      for (int gi : targets) {
        const BlockProv& bp = may_block[static_cast<std::size_t>(gi)];
        if (bp.func < 0) continue;
        if (waived(f, c.line, "blocking-ok")) continue;
        const std::string key =
            f.cls.path + ":" + std::to_string(c.line);
        if (!dedupe.insert(key).second) continue;
        const FunctionDef& leaf =
            idx.functions[static_cast<std::size_t>(bp.func)];
        Finding fd;
        fd.file = f.cls.path;
        fd.line = static_cast<std::size_t>(c.line);
        fd.pass = "blocking";
        fd.rule = "blocking-under-lock";
        fd.message = "call to " + c.name + " may block (" + bp.what +
                     ") while holding " + c.held.front().what;
        fd.chain.push_back(
            func_display(idx, idx.functions[static_cast<std::size_t>(gi)]));
        if (bp.func != gi) fd.chain.push_back(func_display(idx, leaf));
        fd.chain.push_back(
            bp.what + " at " +
            idx.files[static_cast<std::size_t>(leaf.file)].cls.path + ":" +
            std::to_string(bp.line));
        res.findings.push_back(fd);
        break;
      }
    }
  }

  // ---- pass 3: atomics discipline --------------------------------------
  atomics_pass(idx, res.findings);

  // ---- pass 4: no-alloc reachability -----------------------------------
  for (std::size_t ri = 0; ri < n; ++ri) {
    if (!idx.functions[ri].noalloc) continue;
    const std::string root = func_display(idx, idx.functions[ri]);
    std::set<std::size_t> visited;
    // DFS over (function, chain-so-far).
    std::vector<std::pair<std::size_t, std::vector<std::string>>> stack;
    stack.push_back({ri, {}});
    visited.insert(ri);
    std::set<std::string> site_seen;
    while (!stack.empty()) {
      const auto [fi, chain] = stack.back();
      stack.pop_back();
      const FunctionDef& fn = idx.functions[fi];
      const SourceFile& f = idx.files[static_cast<std::size_t>(fn.file)];
      for (const DirectAlloc& a : sums[fi].allocs) {
        const std::string key =
            f.cls.path + ":" + std::to_string(a.line);
        if (!site_seen.insert(key).second) continue;
        Finding fd;
        fd.file = f.cls.path;
        fd.line = static_cast<std::size_t>(a.line);
        fd.pass = "noalloc";
        fd.rule = "noalloc";
        fd.message = "allocation (" + a.what +
                     ") reachable from DSHUF_NOALLOC root " + root;
        fd.chain = chain;
        res.findings.push_back(fd);
      }
      for (const auto& [ci, targets] : call_targets[fi]) {
        if (sums[fi].calls[ci].in_catch) continue;
        for (int gi : targets) {
          const std::size_t gu = static_cast<std::size_t>(gi);
          if (!visited.insert(gu).second) continue;
          std::vector<std::string> next = chain;
          if (next.size() < 8) {
            next.push_back(func_display(idx, idx.functions[gu]));
            stack.push_back({gu, next});
          }
        }
      }
    }
  }

  std::sort(res.findings.begin(), res.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.pass != b.pass) return a.pass < b.pass;
              return a.message < b.message;
            });
  std::sort(res.edges.begin(), res.edges.end(),
            [](const LockOrderEdge& a, const LockOrderEdge& b) {
              if (a.from_rank != b.from_rank) return a.from_rank < b.from_rank;
              return a.to_rank < b.to_rank;
            });
  return res;
}

}  // namespace dshuf::analyze
