// Project-wide symbol index for dshuf_analyze.
//
// Built from the token streams of every scanned file, the index holds the
// facts the cross-TU passes reason over:
//
//   - function definitions (free functions, out-of-line `A::f` members,
//     and inline in-class methods), each with its body token range;
//   - `RankedMutex` declarations with their declared `LockRank` (the enum
//     itself is parsed out of whichever scanned file defines it, so
//     fixtures can carry their own rank universe);
//   - `std::condition_variable[_any]` and `std::atomic<...>` variable
//     names;
//   - a name → class map for variables/members whose declared type is a
//     project class, used to disambiguate `obj.method(...)` calls and
//     `obj.mu`-style mutex references by receiver.
//
// Everything is heuristic — see DESIGN.md §12 for the soundness limits —
// but deliberately conservative in the direction that matters: an
// unresolvable call contributes nothing (documented under-approximation),
// while an ambiguous name resolves to the union of its candidates.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "source_model.hpp"

namespace dshuf::analyze {

struct FunctionDef {
  int file = -1;         // index into ProjectIndex::files
  int line = 1;          // 1-based line of the definition
  std::string name;      // unqualified
  std::string qual;      // enclosing class ("" for free functions)
  std::size_t body_begin = 0;  // token index just past the opening '{'
  std::size_t body_end = 0;    // token index of the closing '}'
  bool noalloc = false;        // carried a DSHUF_NOALLOC marker
};

struct MutexDecl {
  int file = -1;
  int line = 1;
  std::string name;       // variable name (mu_, mu, ...)
  std::string owner;      // enclosing class ("" for locals/globals)
  std::string rank_name;  // kCommMailbox, ...
  std::string label;      // the human-readable name string, if present
  int rank = -1;          // resolved numeric rank (-1 if enum unseen)
};

struct ProjectIndex {
  std::vector<SourceFile> files;
  std::vector<FunctionDef> functions;
  std::map<std::string, std::vector<int>> functions_by_name;
  std::vector<MutexDecl> mutexes;
  std::map<std::string, int> rank_values;  // kName -> numeric rank
  std::set<std::string> cv_names;          // condition variable var names
  std::set<std::string> atomic_names;      // std::atomic<...> var names
  std::set<std::string> class_names;
  // var/member name -> set of project classes it was declared as.
  std::map<std::string, std::set<std::string>> var_class;
};

/// Build the index over all files. `files` is moved in.
ProjectIndex build_index(std::vector<SourceFile> files);

/// Resolve the mutex expression tokens [b, e) (the argument of a lock
/// guard) to the set of possible numeric ranks, with `file` as the file
/// holding the expression and `owner` the enclosing class of the guard
/// site ("" for free functions). Returns the matched declarations; empty
/// when nothing resolves. Resolution order: receiver class member, the
/// enclosing class's own member, same file, header/source sibling (same
/// path stem), globally unique name.
std::vector<const MutexDecl*> resolve_mutex(const ProjectIndex& idx,
                                            int file,
                                            const std::string& owner,
                                            const std::vector<Token>& toks,
                                            std::size_t b, std::size_t e);

/// Candidate functions for a call `recv.name(...)` / `Class::name(...)` /
/// `name(...)` made from `caller_file`. Resolution order, first match
/// wins: `class_hint`'s methods (explicit qualifier), the receiver's
/// declared class (when unique), definitions in the caller's own file,
/// then a project-wide match only when the name is unambiguous (a name
/// with several unrelated definitions resolves to nothing — a documented
/// under-approximation, DESIGN.md §12).
std::vector<int> resolve_call(const ProjectIndex& idx,
                              const std::string& name,
                              const std::string& receiver,
                              const std::string& class_hint,
                              int caller_file);

}  // namespace dshuf::analyze
