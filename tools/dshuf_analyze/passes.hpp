// The four cross-TU passes of dshuf_analyze (DESIGN.md §12):
//
//   lock-order   May-acquire-while-holding, transitively over the call
//                graph. Every edge `held rank R -> acquired rank S` is
//                collected; edges with S <= R violate the LockRank
//                discipline and become findings with a witness chain.
//   blocking     Blocking primitives (cv waits, sleeps, thread joins,
//                file streams / filesystem walks) reachable while any
//                lock is held. A cv.wait(lk) releases only lk's own
//                mutex, so it still counts when other ranks are held.
//   atomics      Every std::atomic operation must spell its memory order
//                explicitly, and the order must come from the per-file
//                profile table (e.g. obs/metrics.hpp is relaxed-only,
//                comm/comm.cpp is seq_cst-only).
//   noalloc      Functions marked DSHUF_NOALLOC (util/noalloc.hpp) must
//                not reach `new`, malloc-family calls, std::to_string,
//                make_unique/make_shared, or growth operations on
//                standard containers. Failure paths (catch blocks,
//                DSHUF_CHECK) are exempt; `// analyze:alloc-ok <why>`
//                waives a site with a justification.
//
// Waiver markers, same-line or line-above, justification >= 3 chars:
//   // analyze:lock-ok <why>      // analyze:blocking-ok <why>
//   // analyze:atomic-ok <why>    // analyze:alloc-ok <why>
#pragma once

#include <string>
#include <vector>

#include "index.hpp"
#include "source_model.hpp"

namespace dshuf::analyze {

/// One observed (held -> acquired) rank pair, deduplicated project-wide.
/// `via` names a function exhibiting the edge.
struct LockOrderEdge {
  int from_rank = -1;
  std::string from_name;  // kFileStore, ...
  int to_rank = -1;
  std::string to_name;
  std::string via;  // "Class::func (file:line)"
  bool violation = false;
};

struct AnalysisResult {
  std::vector<Finding> findings;
  std::vector<LockOrderEdge> edges;
};

/// Run the four concurrency/steady-state passes over the indexed project.
/// Findings are only emitted for files whose FileClass is src_tree (which
/// includes the analyzer's own fixtures/src/ tree); the call graph and
/// fixpoints still span every indexed file.
AnalysisResult run_passes(const ProjectIndex& idx);

}  // namespace dshuf::analyze
