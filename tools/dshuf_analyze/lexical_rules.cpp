#include "lexical_rules.hpp"

#include <algorithm>
#include <cstddef>
#include <map>
#include <string>

namespace dshuf::analyze {

namespace {

/// Index of the first token on each 1-based line (tokens are line-sorted).
/// Lets the token-based rules iterate one line's tokens at a time, which
/// preserves the historical one-finding-per-line behaviour.
std::vector<std::pair<std::size_t, std::size_t>> line_token_spans(
    const std::vector<Token>& toks, std::size_t n_lines) {
  std::vector<std::pair<std::size_t, std::size_t>> spans(
      n_lines + 2, {toks.size(), toks.size()});
  for (std::size_t i = 0; i < toks.size();) {
    const int line = toks[i].line;
    std::size_t j = i;
    while (j < toks.size() && toks[j].line == line) ++j;
    if (static_cast<std::size_t>(line) < spans.size()) {
      spans[static_cast<std::size_t>(line)] = {i, j};
    }
    i = j;
  }
  return spans;
}

bool is_ident_tok(const Token& t, const char* text) {
  return t.kind == Token::Kind::kIdent && t.text == text;
}

// --- rule: banned-random -------------------------------------------------

void check_banned_random(const SourceFile& f, std::vector<Finding>& out) {
  if (f.cls.rng_module) return;
  const auto spans = line_token_spans(f.toks, f.lines.size());
  for (std::size_t i = 0; i < f.lines.size(); ++i) {
    const auto [b, e] = spans[i + 1];
    if (b == e) continue;
    auto flag = [&](const std::string& what) {
      out.push_back({f.cls.path, i + 1, "lint", "banned-random",
                     what + " — all randomness must flow through "
                           "dshuf::Rng (util/rng.hpp)",
                     {}});
    };
    bool hit = false;
    for (std::size_t t = b; t < e && !hit; ++t) {
      const Token& tok = f.toks[t];
      if (tok.kind != Token::Kind::kIdent) continue;
      if (tok.text == "random_device") {
        flag("std::random_device is a nondeterministic entropy source");
        hit = true;
      } else if (tok.text == "srand") {
        // Seeding call or call-ish use: an opening paren later on the line.
        for (std::size_t u = t + 1; u < e; ++u) {
          if (f.toks[u].kind == Token::Kind::kPunct && f.toks[u].text == "(") {
            flag("srand() seeds the global C PRNG");
            hit = true;
            break;
          }
        }
      } else if (tok.text == "rand" && t + 1 < e &&
                 f.toks[t + 1].kind == Token::Kind::kPunct &&
                 f.toks[t + 1].text == "(") {
        flag("rand() draws from unseeded global state");
        hit = true;
      } else if (tok.text == "time" && t + 3 < e &&
                 f.toks[t + 1].text == "(" && f.toks[t + 3].text == ")") {
        const Token& arg = f.toks[t + 2];
        if (is_ident_tok(arg, "NULL") || is_ident_tok(arg, "nullptr") ||
            (arg.kind == Token::Kind::kNumber && arg.text == "0")) {
          flag("time(" + arg.text + ") is a wall-clock seed");
          hit = true;
        }
      } else if (tok.text == "time_since_epoch" &&
                 lower(f.lines[i]).find("seed") != std::string::npos) {
        flag("seeding from time_since_epoch() is wall-clock dependent");
        hit = true;
      }
    }
  }
}

// --- rule: unordered-iteration -------------------------------------------

/// Names declared (in this file) with an unordered container type.
std::vector<std::string> unordered_decl_names(
    const std::vector<std::string>& lines) {
  std::vector<std::string> names;
  for (const std::string& l : lines) {
    for (const char* kw : {"unordered_map", "unordered_set"}) {
      std::size_t p = 0;
      while ((p = find_word(l, kw, p)) != std::string::npos) {
        std::size_t q = p + std::string(kw).size();
        if (q >= l.size() || l[q] != '<') {
          p = q;
          continue;
        }
        int depth = 0;
        while (q < l.size()) {
          if (l[q] == '<') ++depth;
          if (l[q] == '>') {
            --depth;
            if (depth == 0) break;
          }
          ++q;
        }
        if (q >= l.size()) break;  // template args span lines — give up
        ++q;
        while (q < l.size() && (l[q] == ' ' || l[q] == '&' || l[q] == '*')) {
          ++q;
        }
        std::size_t e = q;
        while (e < l.size() && is_ident_char(l[e])) ++e;
        if (e > q) names.push_back(l.substr(q, e - q));
        p = e;
      }
    }
  }
  return names;
}

void check_unordered_iteration(const SourceFile& f,
                               std::vector<Finding>& out) {
  if (!f.cls.determinism_critical) return;
  const auto names = unordered_decl_names(f.lines);
  const std::string marker = "lint:" "ordered-ok";
  for (std::size_t i = 0; i < f.lines.size(); ++i) {
    const std::string& l = f.lines[i];
    bool iterates = false;
    std::string detail;
    // Range-for whose range expression names an unordered container (or
    // constructs one inline).
    const std::size_t fp = find_word(l, "for");
    if (fp != std::string::npos) {
      const std::size_t colon = l.find(" : ", fp);
      if (colon != std::string::npos) {
        const std::string range = l.substr(colon + 3);
        if (range.find("unordered_map") != std::string::npos ||
            range.find("unordered_set") != std::string::npos) {
          iterates = true;
          detail = "range-for over an unordered container";
        }
        for (const auto& n : names) {
          if (contains_word(range, n)) {
            iterates = true;
            detail = "range-for over unordered container '" + n + "'";
          }
        }
      }
    }
    // Explicit iterator walks.
    for (const auto& n : names) {
      for (const char* m : {".begin(", ".cbegin(", "->begin(", "->cbegin("}) {
        const std::size_t p = l.find(n + m);
        if (p != std::string::npos && (p == 0 || !is_ident_char(l[p - 1]))) {
          iterates = true;
          detail = "iterator walk over unordered container '" + n + "'";
        }
      }
    }
    if (!iterates) continue;
    if (annotated(f.raw_lines, i, marker)) {
      const std::size_t al = annotation_line(f.raw_lines, i, marker);
      if (annotation_justification(f.raw_lines[al], marker).size() < 3) {
        out.push_back({f.cls.path, al + 1, "lint", "ordered-ok-justification",
                       "lint:" "ordered-ok requires a justification "
                       "(why is iteration order irrelevant here?)",
                       {}});
      }
      continue;
    }
    out.push_back(
        {f.cls.path, i + 1, "lint", "unordered-iteration",
         detail + " in a determinism-critical namespace — iteration order "
                  "is hash-dependent; use an ordered container, sort "
                  "before iterating, or annotate `// lint:ordered-ok "
                  "<why>`",
         {}});
  }
}

// --- rule: raw-tag-literal -----------------------------------------------

/// Split the argument list starting at `open` (index of '(') into
/// top-level comma-separated pieces. Returns empty when unbalanced (e.g.
/// the call spans a scrubbed region) — callers skip those.
std::vector<std::string> call_args(const std::string& text,
                                   std::size_t open) {
  std::vector<std::string> args;
  int depth = 0;
  std::string cur;
  for (std::size_t i = open; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '(' || c == '[' || c == '{') {
      ++depth;
      if (depth == 1) continue;  // the call's own '('
    } else if (c == ')' || c == ']' || c == '}') {
      --depth;
      if (depth == 0) {
        args.push_back(cur);
        return args;
      }
    } else if (c == ',' && depth == 1) {
      args.push_back(cur);
      cur.clear();
      continue;
    }
    cur += c;
  }
  return {};
}

void check_raw_tags(const SourceFile& f, std::vector<Finding>& out) {
  const std::string& text = f.scrubbed;
  const std::vector<std::string>& raw_lines = f.raw_lines;
  std::vector<std::size_t> line_starts;
  line_starts.push_back(0);
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') line_starts.push_back(i + 1);
  }

  const std::string file_marker = "lint:" "tag-ok-file";
  const std::string line_marker = "lint:" "tag-ok";
  std::size_t file_marker_line = std::string::npos;
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    if (raw_lines[i].find(file_marker) != std::string::npos) {
      file_marker_line = i;
      break;
    }
  }
  if (file_marker_line != std::string::npos &&
      annotation_justification(raw_lines[file_marker_line], file_marker)
              .size() < 3) {
    out.push_back({f.cls.path, file_marker_line + 1, "lint",
                   "tag-ok-justification",
                   "lint:" "tag-ok-file requires a justification",
                   {}});
  }

  auto line_of = [&](std::size_t off) {
    const auto it =
        std::upper_bound(line_starts.begin(), line_starts.end(), off);
    return static_cast<std::size_t>(it - line_starts.begin());  // 1-based
  };

  for (const char* fn : {"isend", "irecv"}) {
    std::size_t p = 0;
    while ((p = find_word(text, fn, p)) != std::string::npos) {
      std::size_t q = p + 5;
      while (q < text.size() && (text[q] == ' ' || text[q] == '\n')) ++q;
      if (q >= text.size() || text[q] != '(') {
        p = q;
        continue;
      }
      const auto args = call_args(text, q);
      p = q;
      // isend(dest, tag, payload) / irecv(source, tag): the tag is always
      // argument #2. Declarations pass too ("int tag" mentions tag).
      if (args.size() < 2) continue;
      const std::string tag_arg = lower(trim(args[1]));
      if (tag_arg.find("tag") != std::string::npos) continue;
      const std::size_t lineno = line_of(p);  // 1-based
      const std::size_t idx = lineno - 1;
      if (file_marker_line != std::string::npos) continue;
      if (annotated(raw_lines, idx, line_marker)) {
        const std::size_t al = annotation_line(raw_lines, idx, line_marker);
        if (annotation_justification(raw_lines[al], line_marker).size() < 3) {
          out.push_back({f.cls.path, al + 1, "lint", "tag-ok-justification",
                         "lint:" "tag-ok requires a justification",
                         {}});
        }
        continue;
      }
      out.push_back(
          {f.cls.path, lineno, "lint", "raw-tag-literal",
           std::string(fn) + " tag '" + trim(args[1]) +
               "' does not reference a tag helper — derive it from the "
               "per-epoch helpers in shuffle/exchange_tags.hpp (or "
               "annotate `// lint:tag-ok <why>`)",
           {}});
    }
  }
}

// --- rule: raw-stdout ------------------------------------------------------

void check_raw_stdout(const SourceFile& f, std::vector<Finding>& out) {
  if (!f.cls.src_tree || f.cls.log_module) return;
  const std::string marker = "lint:" "stdout-ok";
  const auto spans = line_token_spans(f.toks, f.lines.size());
  for (std::size_t i = 0; i < f.lines.size(); ++i) {
    const auto [b, e] = spans[i + 1];
    std::string stream;
    for (std::size_t t = b; t < e; ++t) {
      if (is_ident_tok(f.toks[t], "cout")) stream = "cout";
    }
    for (std::size_t t = b; t < e; ++t) {
      if (is_ident_tok(f.toks[t], "cerr")) stream = "cerr";
    }
    if (stream.empty()) continue;
    if (annotated(f.raw_lines, i, marker)) {
      const std::size_t al = annotation_line(f.raw_lines, i, marker);
      if (annotation_justification(f.raw_lines[al], marker).size() < 3) {
        out.push_back({f.cls.path, al + 1, "lint", "stdout-ok-justification",
                       "lint:" "stdout-ok requires a justification "
                       "(why can this site not log through util/log.hpp?)",
                       {}});
      }
      continue;
    }
    out.push_back(
        {f.cls.path, i + 1, "lint", "raw-stdout",
         "std::" + stream + " write in src/ — route output through "
         "util/log.hpp (LOG_* lines carry the [rank epoch] context) or "
         "annotate `// lint:stdout-ok <why>`",
         {}});
  }
}

// --- rule: raw-mmap --------------------------------------------------------

/// Direct mmap-family syscalls outside src/io/ bypass the segment store's
/// accounting (resident/quarantine gauges), its epoch-based reclamation and
/// the capacity bound — a stray munmap would invalidate spans the store
/// still hands out. src/io/ is the one module allowed to own mappings;
/// everyone else goes through io::MmapSampleStore. A call-site is an
/// identifier token immediately followed by `(` (so a member named `mmap_`
/// or the word in a comment never matches); `::mmap` matches because the
/// qualifier is a separate token. Suppress a deliberate site with
/// `// lint:mmap-ok <why>`.
void check_raw_mmap(const SourceFile& f, std::vector<Finding>& out) {
  if (!f.cls.src_tree || f.cls.io_module) return;
  const std::string marker = "lint:" "mmap-ok";
  const char* const calls[] = {"mmap", "munmap", "mremap", "msync"};
  const auto spans = line_token_spans(f.toks, f.lines.size());
  for (std::size_t i = 0; i < f.lines.size(); ++i) {
    const auto [b, e] = spans[i + 1];
    std::string which;
    for (std::size_t t = b; t + 1 < e && which.empty(); ++t) {
      if (f.toks[t].kind != Token::Kind::kIdent) continue;
      if (f.toks[t + 1].kind != Token::Kind::kPunct ||
          f.toks[t + 1].text != "(") {
        continue;
      }
      for (const char* name : calls) {
        if (f.toks[t].text == name) which = name;
      }
    }
    if (which.empty()) continue;
    if (annotated(f.raw_lines, i, marker)) {
      const std::size_t al = annotation_line(f.raw_lines, i, marker);
      if (annotation_justification(f.raw_lines[al], marker).size() < 3) {
        out.push_back({f.cls.path, al + 1, "lint", "mmap-ok-justification",
                       "lint:" "mmap-ok requires a justification "
                       "(why can this mapping not live in src/io/?)",
                       {}});
      }
      continue;
    }
    out.push_back(
        {f.cls.path, i + 1, "lint", "raw-mmap",
         which + "() outside src/io/ — memory-mapped payloads must go "
         "through io::MmapSampleStore so reclamation and the capacity "
         "bound stay correct, or annotate `// lint:mmap-ok <why>`",
         {}});
  }
}

// --- rule: metric-name ---------------------------------------------------

/// Registry names must be dotted lowercase ([a-z0-9_.]+): the dashboards,
/// the timeseries export and dshuf_trace's counter tables all key on the
/// literal, and one "Exchange.Bytes" next to "exchange.bytes" splits a
/// metric in two forever. The scrubber blanks literal bodies, so the name
/// is re-read from the raw line of the macro's string argument.
void check_metric_names(const SourceFile& f, std::vector<Finding>& out) {
  const auto is_metric_macro = [](const Token& t) {
    return t.kind == Token::Kind::kIdent &&
           (t.text == "DSHUF_COUNTER" || t.text == "DSHUF_GAUGE" ||
            t.text == "DSHUF_HISTOGRAM_US");
  };
  const auto valid_char = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' ||
           c == '.';
  };
  // Per-line read cursor so several macros on one raw line each consume
  // their own literal (tokens arrive in source order).
  std::map<int, std::size_t> cursor;
  for (std::size_t t = 0; t + 2 < f.toks.size(); ++t) {
    if (!is_metric_macro(f.toks[t])) continue;
    if (!(f.toks[t + 1].kind == Token::Kind::kPunct &&
          f.toks[t + 1].text == "(")) {
      continue;
    }
    // A computed name (identifier argument, e.g. the macro definition
    // itself) is outside this rule's reach.
    if (f.toks[t + 2].kind != Token::Kind::kString) continue;
    const int line = f.toks[t + 2].line;
    if (line < 1 ||
        static_cast<std::size_t>(line) > f.raw_lines.size()) {
      continue;
    }
    const std::string& raw = f.raw_lines[static_cast<std::size_t>(line) - 1];
    std::size_t& at = cursor[line];
    const std::size_t open = raw.find('"', at);
    if (open == std::string::npos) continue;
    const std::size_t close = raw.find('"', open + 1);
    if (close == std::string::npos) continue;
    at = close + 1;
    const std::string name = raw.substr(open + 1, close - open - 1);
    const bool ok =
        !name.empty() && std::all_of(name.begin(), name.end(), valid_char);
    if (ok) continue;
    out.push_back({f.cls.path, static_cast<std::size_t>(line), "lint",
                   "metric-name",
                   f.toks[t].text + " name \"" + name +
                       "\" is not dotted lowercase ([a-z0-9_.]+) — mixed "
                       "case or stray characters split the metric across "
                       "dashboards and exports",
                   {}});
  }
}

// --- rule: include hygiene -----------------------------------------------

void check_include_hygiene(const SourceFile& f, std::vector<Finding>& out) {
  if (f.cls.is_header) {
    bool pragma_first = false;
    for (const auto& l : f.lines) {
      const std::string t = trim(l);
      if (t.empty()) continue;
      pragma_first = t.rfind("#pragma once", 0) == 0;
      break;
    }
    if (!pragma_first) {
      out.push_back({f.cls.path, 1, "lint", "pragma-once",
                     "header must open with #pragma once (before any other "
                     "content)",
                     {}});
    }
  }
  for (std::size_t i = 0; i < f.lines.size(); ++i) {
    // Include paths live inside the quotes the scrubber blanks — inspect
    // the raw line for preprocessor directives.
    const std::string rt =
        i < f.raw_lines.size() ? trim(f.raw_lines[i]) : std::string{};
    if (rt.rfind("#include", 0) == 0 && rt.find('"') != std::string::npos &&
        rt.find("../") != std::string::npos) {
      out.push_back({f.cls.path, i + 1, "lint", "relative-include",
                     "quote-includes must be rooted at src/ (no ../)",
                     {}});
    }
    const std::string t = trim(f.lines[i]);
    if (contains_word(t, "using") &&
        t.find("namespace std") != std::string::npos) {
      out.push_back({f.cls.path, i + 1, "lint", "using-namespace-std",
                     "`using namespace std` pollutes every declaration "
                     "after it",
                     {}});
    }
  }
}

}  // namespace

std::vector<Finding> scan_lexical(const SourceFile& f) {
  std::vector<Finding> out;
  check_banned_random(f, out);
  check_unordered_iteration(f, out);
  check_raw_tags(f, out);
  check_raw_stdout(f, out);
  check_raw_mmap(f, out);
  check_metric_names(f, out);
  check_include_hygiene(f, out);
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return a.line != b.line ? a.line < b.line : a.rule < b.rule;
  });
  return out;
}

}  // namespace dshuf::analyze
