// Per-file lexical rules, ported from tools/dshuf_lint onto the shared
// scanning core (source_model.hpp).
//
// Rule catalogue (unchanged from dshuf_lint — see that tool's header for
// the full contract):
//   banned-random          entropy/wall-clock sources outside util/rng.*
//   unordered-iteration    hash-order iteration in determinism-critical
//                          namespaces (`// lint:ordered-ok <why>` waives)
//   raw-tag-literal        isend/irecv tag args that bypass
//                          shuffle/exchange_tags.hpp (`// lint:tag-ok`)
//   raw-stdout             std::cout/cerr in src/ (`// lint:stdout-ok`)
//   raw-mmap               mmap/munmap/mremap/msync call-sites in src/
//                          outside src/io/ — mappings belong to
//                          io::MmapSampleStore (`// lint:mmap-ok` waives)
//   metric-name            DSHUF_COUNTER/GAUGE/HISTOGRAM_US name literals
//                          must be dotted lowercase ([a-z0-9_.]+)
//   pragma-once, relative-include, using-namespace-std
//
// banned-random and raw-stdout now match on the token stream (whole-token
// identifier equality) instead of substring scans; the remaining rules
// consume the shared scrubbed-line view. Either way a match inside a
// string literal or comment is impossible by construction.
#pragma once

#include <vector>

#include "source_model.hpp"

namespace dshuf::analyze {

/// Run every lexical rule over one file. Findings carry pass = "lint" and
/// are sorted by (line, rule).
std::vector<Finding> scan_lexical(const SourceFile& f);

}  // namespace dshuf::analyze
