// Shared scanning core for dshuf's static-analysis tools.
//
// Both `dshuf_lint` (per-file lexical rules) and `dshuf_analyze` (the
// cross-TU concurrency/steady-state analyzer) sit on this layer:
//
//   - scrub():        blanks comments, string/char/raw-string literals in
//                     place while preserving newlines, so downstream scans
//                     can never match inside a literal or comment.
//   - tokenize():     a real C++ token stream (identifiers, numbers,
//                     string/char literal markers, punctuation) over the
//                     scrubbed text, with 1-based line numbers.
//   - classify_path(): path-based file policy (src tree, determinism-
//                     critical namespaces, rng/log module exemptions).
//   - annotation helpers: the `// lint:<tag> <why>` / `// analyze:<tag>
//                     <why>` waiver contract, including the justification
//                     requirement.
//
// Keeping one implementation here is what makes the two tools agree: a
// construct the linter ignores because it sits in a comment is invisible
// to the analyzer for the same reason, by the same code.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dshuf::analyze {

/// Path-derived scanning policy for one file. Mirrors (and now backs)
/// dshuf::lint::FileInfo.
struct FileClass {
  std::string path;
  bool is_header = false;
  bool determinism_critical = false;  // src/shuffle|src/comm|src/sim
  bool rng_module = false;            // util/rng.* may name entropy sources
  bool src_tree = false;              // under src/ (includes fixture trees)
  bool log_module = false;            // util/log.cpp may write to streams
  bool io_module = false;             // src/io/ may call mmap/munmap directly
};

FileClass classify_path(const std::string& path);

/// Replace comments and string/char literal contents with spaces,
/// preserving length and newlines so offsets map 1:1 onto the original.
std::string scrub(const std::string& content);

// ------------------------------------------------------------------ tokens

struct Token {
  enum class Kind { kIdent, kNumber, kString, kChar, kPunct };
  Kind kind;
  std::string text;  // identifier/number/punct spelling; empty for literals
  int line;          // 1-based
};

/// Tokenize scrubbed C++ text. Multi-character punctuation is split except
/// for `::` and `->`, which the index needs whole; `<`/`>` are always
/// single tokens so template-argument balancing can treat them uniformly.
std::vector<Token> tokenize(const std::string& scrubbed);

// ------------------------------------------------------------- line utils

std::vector<std::string> split_lines(const std::string& s);
std::string trim(const std::string& s);
std::string lower(std::string s);

bool is_ident_char(char c);

/// Whole-word occurrence of `word` in `s` at `pos` or later; npos if absent.
std::size_t find_word(const std::string& s, const std::string& word,
                      std::size_t pos = 0);
bool contains_word(const std::string& s, const std::string& word);

// ------------------------------------------------------------ annotations

/// Justification text following an annotation marker: everything after the
/// marker with leading separators (: - whitespace) stripped. Empty when the
/// author wrote the marker alone.
std::string annotation_justification(const std::string& raw_line,
                                     const std::string& marker);

/// True when `marker` appears on raw line `idx` (0-based) or the line above.
bool annotated(const std::vector<std::string>& raw_lines, std::size_t idx,
               const std::string& marker);

/// The raw line (same or previous) carrying `marker`, or npos.
std::size_t annotation_line(const std::vector<std::string>& raw_lines,
                            std::size_t idx, const std::string& marker);

// -------------------------------------------------------------- findings

/// One reported defect. `pass` groups findings by analysis ("lint",
/// "lock-order", "blocking", "atomics", "noalloc"); `chain` is the witness
/// call path for cross-function findings (empty for direct ones).
struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string pass;
  std::string rule;
  std::string message;
  std::vector<std::string> chain;  // "qual::name (file:line)" hops
};

/// One file loaded for scanning: raw text plus the derived views every
/// rule consumes. Built once, shared by the lexical rules and the index.
struct SourceFile {
  FileClass cls;
  std::string raw;
  std::string scrubbed;
  std::vector<std::string> raw_lines;
  std::vector<std::string> lines;  // scrubbed, split
  std::vector<Token> toks;
};

SourceFile make_source_file(const std::string& path,
                            const std::string& content);

}  // namespace dshuf::analyze
