#include "report.hpp"

#include <fstream>
#include <sstream>

namespace dshuf::analyze {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string baseline_key(const Finding& f) {
  return f.rule + "\t" + f.file + "\t" + f.message;
}

Baseline load_baseline(const std::string& path) {
  Baseline out;
  std::ifstream in(path);
  if (!in) return out;
  std::string line;
  while (std::getline(in, line)) {
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    out.insert(t);
  }
  return out;
}

std::string render_baseline(const std::vector<Finding>& findings) {
  std::set<std::string> keys;
  for (const Finding& f : findings) keys.insert(baseline_key(f));
  std::ostringstream out;
  out << "# dshuf_analyze baseline — rule<TAB>file<TAB>message per line.\n"
      << "# Ratchet: this file may only shrink (DESIGN.md §12).\n";
  for (const std::string& k : keys) out << k << "\n";
  return out.str();
}

std::vector<Finding> apply_baseline(std::vector<Finding> findings,
                                    const Baseline& baseline) {
  if (baseline.empty()) return findings;
  std::vector<Finding> out;
  out.reserve(findings.size());
  for (Finding& f : findings) {
    if (baseline.count(baseline_key(f)) == 0) out.push_back(std::move(f));
  }
  return out;
}

std::string render_text(const std::vector<Finding>& findings,
                        const std::vector<LockOrderEdge>& edges,
                        std::size_t files_scanned) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.file << ":" << f.line << ": [" << f.pass;
    if (f.rule != f.pass) out << "/" << f.rule;
    out << "] " << f.message << "\n";
    for (const std::string& hop : f.chain) {
      out << "    via " << hop << "\n";
    }
  }
  std::size_t violations = 0;
  for (const LockOrderEdge& e : edges) {
    if (e.violation) ++violations;
  }
  out << "dshuf_analyze: " << findings.size() << " finding(s), "
      << edges.size() << " lock-order edge(s) (" << violations
      << " violating), " << files_scanned << " file(s) scanned\n";
  return out.str();
}

std::string render_json(const std::vector<Finding>& findings,
                        const std::vector<LockOrderEdge>& edges,
                        std::size_t files_scanned) {
  std::ostringstream out;
  out << "{\n  \"schema\": \"dshuf.analyze.v1\",\n  \"files_scanned\": "
      << files_scanned << ",\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"file\": \"" << json_escape(f.file) << "\", \"line\": "
        << f.line << ", \"pass\": \"" << json_escape(f.pass)
        << "\", \"rule\": \"" << json_escape(f.rule)
        << "\", \"message\": \"" << json_escape(f.message)
        << "\", \"chain\": [";
    for (std::size_t j = 0; j < f.chain.size(); ++j) {
      if (j != 0) out << ", ";
      out << "\"" << json_escape(f.chain[j]) << "\"";
    }
    out << "]}";
  }
  out << (findings.empty() ? "],\n" : "\n  ],\n");
  out << "  \"lock_order_edges\": [";
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const LockOrderEdge& e = edges[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"from_rank\": " << e.from_rank << ", \"from\": \""
        << json_escape(e.from_name) << "\", \"to_rank\": " << e.to_rank
        << ", \"to\": \"" << json_escape(e.to_name) << "\", \"via\": \""
        << json_escape(e.via) << "\", \"violation\": "
        << (e.violation ? "true" : "false") << "}";
  }
  out << (edges.empty() ? "]\n" : "\n  ]\n");
  out << "}\n";
  return out.str();
}

}  // namespace dshuf::analyze
