// Rendering and baseline handling for dshuf_analyze.
//
// Baseline format (tools/dshuf_analyze/baseline.txt): one waived finding
// per line, `rule<TAB>file<TAB>message`, '#' comments and blank lines
// ignored. Line numbers are deliberately absent so unrelated edits do not
// churn the baseline. The ratchet policy (DESIGN.md §12): the committed
// baseline may only shrink — new findings are fixed or annotated at the
// site, never baselined.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "passes.hpp"
#include "source_model.hpp"

namespace dshuf::analyze {

using Baseline = std::set<std::string>;

/// Key used for baseline matching: "rule\tfile\tmessage".
std::string baseline_key(const Finding& f);

/// Load a baseline file. Returns an empty set when the file is absent.
Baseline load_baseline(const std::string& path);

/// Serialise findings as a baseline document (sorted, unique).
std::string render_baseline(const std::vector<Finding>& findings);

/// Drop findings present in the baseline.
std::vector<Finding> apply_baseline(std::vector<Finding> findings,
                                    const Baseline& baseline);

/// Human-readable report: one line per finding plus witness-chain lines,
/// then a summary with the scanned-file and edge counts.
std::string render_text(const std::vector<Finding>& findings,
                        const std::vector<LockOrderEdge>& edges,
                        std::size_t files_scanned);

/// Machine-readable report, schema "dshuf.analyze.v1".
std::string render_json(const std::vector<Finding>& findings,
                        const std::vector<LockOrderEdge>& edges,
                        std::size_t files_scanned);

}  // namespace dshuf::analyze
