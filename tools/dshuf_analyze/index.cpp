#include "index.hpp"

#include <algorithm>
#include <cstdlib>

namespace dshuf::analyze {

namespace {

const std::set<std::string>& keywords() {
  static const std::set<std::string> kw = {
      "if",     "for",      "while",  "switch",   "catch",  "return",
      "new",    "delete",   "sizeof", "alignof",  "typeid", "decltype",
      "throw",  "do",       "else",   "case",     "goto",   "co_await",
      "co_return", "co_yield", "static_assert", "assert",  "defined",
      "alignas", "noexcept", "try"};
  return kw;
}

bool is_ident(const std::vector<Token>& t, std::size_t i) {
  return i < t.size() && t[i].kind == Token::Kind::kIdent;
}

bool is_punct(const std::vector<Token>& t, std::size_t i, const char* p) {
  return i < t.size() && t[i].kind == Token::Kind::kPunct && t[i].text == p;
}

/// i at '<' — index after the matching '>', or i + 1 when the scan runs
/// into a statement boundary (the '<' was a comparison, not a template).
std::size_t skip_angle(const std::vector<Token>& t, std::size_t i) {
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].kind != Token::Kind::kPunct) continue;
    if (t[j].text == "<") ++depth;
    if (t[j].text == ">") {
      --depth;
      if (depth == 0) return j + 1;
    }
    if (t[j].text == ";" || t[j].text == "{" || t[j].text == "}") break;
  }
  return i + 1;
}

/// i at '(' / '[' / '{' — index after the matching close (t.size() when
/// unbalanced).
std::size_t skip_balanced(const std::vector<Token>& t, std::size_t i,
                          const char* open, const char* close) {
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].kind != Token::Kind::kPunct) continue;
    if (t[j].text == open) ++depth;
    if (t[j].text == close) {
      --depth;
      if (depth == 0) return j + 1;
    }
  }
  return t.size();
}

struct DefMatch {
  bool ok = false;
  std::string name;
  std::string qual;      // explicit A:: qualifier, if written
  std::size_t open = 0;  // token index of the body '{'
};

/// Try to match a function definition starting at token `i`:
///   qual::...::name ( params ) [trailer | : ctor-init] {
DefMatch match_function(const std::vector<Token>& t, std::size_t i) {
  DefMatch m;
  std::vector<std::string> segs;
  std::size_t j = i;
  while (true) {
    if (!is_ident(t, j)) return m;
    segs.push_back(t[j].text);
    ++j;
    if (is_punct(t, j, "<")) j = skip_angle(t, j);
    if (is_punct(t, j, "::")) {
      ++j;
      continue;
    }
    break;
  }
  if (!is_punct(t, j, "(")) return m;
  m.name = segs.back();
  if (keywords().count(m.name) != 0) return m;
  if (segs.size() > 1) m.qual = segs[segs.size() - 2];
  j = skip_balanced(t, j, "(", ")");
  // Trailer: cv-qualifiers, noexcept(...), attributes, trailing return
  // types — anything but a terminator.
  while (j < t.size()) {
    const Token& tok = t[j];
    if (tok.kind == Token::Kind::kIdent) {
      ++j;
      if (is_punct(t, j, "(")) j = skip_balanced(t, j, "(", ")");
      continue;
    }
    if (tok.kind != Token::Kind::kPunct) return m;
    if (tok.text == "{") {
      m.ok = true;
      m.open = j;
      return m;
    }
    if (tok.text == ";" || tok.text == "=" || tok.text == ",") return m;
    if (tok.text == "<") {
      j = skip_angle(t, j);
      continue;
    }
    if (tok.text == "::" || tok.text == "->" || tok.text == "*" ||
        tok.text == "&") {
      ++j;
      continue;
    }
    if (tok.text == "[") {
      j = skip_balanced(t, j, "[", "]");
      continue;
    }
    if (tok.text == ":") {
      // Constructor member-init list: items `name(...)` / `name{...}`
      // separated by commas, then the body brace.
      ++j;
      while (true) {
        while (is_ident(t, j) || is_punct(t, j, "::")) {
          if (is_ident(t, j) && is_punct(t, j + 1, "<")) {
            ++j;
            j = skip_angle(t, j);
          } else {
            ++j;
          }
        }
        if (is_punct(t, j, "...")) ++j;  // never fused, but harmless
        if (is_punct(t, j, "(")) {
          j = skip_balanced(t, j, "(", ")");
        } else if (is_punct(t, j, "{")) {
          j = skip_balanced(t, j, "{", "}");
        } else {
          return m;
        }
        if (is_punct(t, j, ",")) {
          ++j;
          continue;
        }
        if (is_punct(t, j, "{")) {
          m.ok = true;
          m.open = j;
          return m;
        }
        return m;
      }
    }
    return m;
  }
  return m;
}

struct Ctx {
  enum Kind { kNamespace, kClass, kFunction, kBlock };
  Kind kind;
  std::string name;
  int def_index = -1;  // for kFunction: index into ProjectIndex::functions
};

std::string enclosing_class(const std::vector<Ctx>& stack) {
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->kind == Ctx::kClass) return it->name;
  }
  return {};
}

bool inside_function(const std::vector<Ctx>& stack) {
  return std::any_of(stack.begin(), stack.end(), [](const Ctx& c) {
    return c.kind == Ctx::kFunction;
  });
}

/// First quoted substring of `raw_line` (the human label of a RankedMutex
/// declaration — scrubbed tokens lose literal contents).
std::string quoted_label(const std::string& raw_line) {
  const std::size_t a = raw_line.find('"');
  if (a == std::string::npos) return {};
  const std::size_t b = raw_line.find('"', a + 1);
  if (b == std::string::npos) return {};
  return raw_line.substr(a + 1, b - a - 1);
}

void parse_lock_rank_enum(const std::vector<Token>& t, std::size_t open,
                          std::map<std::string, int>& ranks) {
  int value = 0;
  for (std::size_t j = open + 1; j < t.size(); ++j) {
    if (is_punct(t, j, "}")) return;
    if (!is_ident(t, j)) continue;
    const std::string name = t[j].text;
    int v = value;
    if (is_punct(t, j + 1, "=") && j + 2 < t.size() &&
        t[j + 2].kind == Token::Kind::kNumber) {
      v = std::atoi(t[j + 2].text.c_str());
      j += 2;
    }
    ranks[name] = v;
    value = v + 1;
    // Advance to the comma / closing brace.
    while (j + 1 < t.size() && !is_punct(t, j + 1, ",") &&
           !is_punct(t, j + 1, "}")) {
      ++j;
    }
    if (is_punct(t, j + 1, ",")) ++j;
  }
}

std::string path_stem(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  return dot == std::string::npos ? path : path.substr(0, dot);
}

void index_file(int file_id, const SourceFile& f, ProjectIndex& idx) {
  const std::vector<Token>& t = f.toks;
  std::vector<Ctx> stack;
  bool pending_noalloc = false;
  std::size_t i = 0;
  while (i < t.size()) {
    const Token& tok = t[i];
    if (tok.kind == Token::Kind::kPunct) {
      if (tok.text == "{") {
        stack.push_back({Ctx::kBlock, "", -1});
      } else if (tok.text == "}") {
        if (!stack.empty()) {
          if (stack.back().kind == Ctx::kFunction &&
              stack.back().def_index >= 0) {
            idx.functions[static_cast<std::size_t>(stack.back().def_index)]
                .body_end = i;
          }
          stack.pop_back();
        }
      } else if (tok.text == ";") {
        pending_noalloc = false;
      }
      ++i;
      continue;
    }
    if (tok.kind != Token::Kind::kIdent) {
      ++i;
      continue;
    }
    const std::string& w = tok.text;

    if (w == "template" && is_punct(t, i + 1, "<")) {
      i = skip_angle(t, i + 1);
      continue;
    }
    if (w == "namespace") {
      std::size_t j = i + 1;
      std::string name;
      while (is_ident(t, j) || is_punct(t, j, "::")) {
        if (is_ident(t, j)) name = t[j].text;
        ++j;
      }
      if (is_punct(t, j, "{")) {
        stack.push_back({Ctx::kNamespace, name, -1});
        i = j + 1;
        continue;
      }
      i = j + 1;  // alias or extern-C-ish — skip
      continue;
    }
    if (w == "enum") {
      std::size_t j = i + 1;
      if (is_ident(t, j) && (t[j].text == "class" || t[j].text == "struct")) {
        ++j;
      }
      std::string name;
      if (is_ident(t, j)) {
        name = t[j].text;
        ++j;
      }
      while (j < t.size() && !is_punct(t, j, "{") && !is_punct(t, j, ";")) {
        ++j;
      }
      if (is_punct(t, j, "{")) {
        if (name == "LockRank") parse_lock_rank_enum(t, j, idx.rank_values);
        i = skip_balanced(t, j, "{", "}");
      } else {
        i = j + 1;
      }
      continue;
    }
    if ((w == "class" || w == "struct") && is_ident(t, i + 1)) {
      const std::string name = t[i + 1].text;
      // Scan to the opening brace (skipping template args and base lists)
      // or a ';' ending a forward declaration / variable of struct type.
      std::size_t j = i + 2;
      bool found = false;
      while (j < t.size()) {
        if (is_punct(t, j, "<")) {
          j = skip_angle(t, j);
          continue;
        }
        if (is_punct(t, j, "{")) {
          found = true;
          break;
        }
        if (is_punct(t, j, ";") || is_punct(t, j, ")") ||
            is_punct(t, j, ",") || is_punct(t, j, ">")) {
          break;  // fwd decl, `const struct X&` param, etc.
        }
        ++j;
      }
      if (found) {
        idx.class_names.insert(name);
        stack.push_back({Ctx::kClass, name, -1});
        i = j + 1;
        continue;
      }
      i += 2;
      continue;
    }

    // --- declarations, detected anywhere -------------------------------
    if (w == "DSHUF_NOALLOC" && !(is_ident(t, i >= 1 ? i - 1 : 0) &&
                                  t[i - 1].text == "define")) {
      pending_noalloc = true;
      ++i;
      continue;
    }
    if (w == "RankedMutex" && is_ident(t, i + 1) &&
        (is_punct(t, i + 2, "{") || is_punct(t, i + 2, "("))) {
      MutexDecl d;
      d.file = file_id;
      d.line = tok.line;
      d.name = t[i + 1].text;
      d.owner = enclosing_class(stack);
      const char* open = t[i + 2].text == "{" ? "{" : "(";
      const char* close = t[i + 2].text == "{" ? "}" : ")";
      const std::size_t end = skip_balanced(t, i + 2, open, close);
      for (std::size_t j = i + 2; j + 2 < end; ++j) {
        if (is_ident(t, j) && t[j].text == "LockRank" &&
            is_punct(t, j + 1, "::") && is_ident(t, j + 2)) {
          d.rank_name = t[j + 2].text;
          break;
        }
      }
      const std::size_t li = static_cast<std::size_t>(tok.line) - 1;
      if (li < f.raw_lines.size()) d.label = quoted_label(f.raw_lines[li]);
      idx.mutexes.push_back(d);
      i = end;
      continue;
    }
    if ((w == "condition_variable_any" || w == "condition_variable") &&
        is_ident(t, i + 1)) {
      idx.cv_names.insert(t[i + 1].text);
      i += 2;
      continue;
    }
    if (w == "atomic" && is_punct(t, i + 1, "<")) {
      std::size_t j = skip_angle(t, i + 1);
      while (is_punct(t, j, ">") || is_punct(t, j, "[") ||
             is_punct(t, j, "]") || is_punct(t, j, "*") ||
             is_punct(t, j, "&")) {
        ++j;
      }
      if (is_ident(t, j) && keywords().count(t[j].text) == 0) {
        idx.atomic_names.insert(t[j].text);
      }
      ++i;
      continue;
    }

    // --- function definitions (only at namespace/class scope) ----------
    if (!inside_function(stack) && keywords().count(w) == 0 &&
        !(i >= 1 && (is_punct(t, i - 1, "~") || is_punct(t, i - 1, ".") ||
                     is_punct(t, i - 1, "->") ||
                     (is_ident(t, i - 1) && t[i - 1].text == "operator")))) {
      DefMatch m = match_function(t, i);
      if (m.ok && m.name != "operator") {
        FunctionDef def;
        def.file = file_id;
        def.line = tok.line;
        def.name = m.name;
        def.qual = !m.qual.empty() ? m.qual : enclosing_class(stack);
        def.body_begin = m.open + 1;
        def.body_end = m.open + 1;  // patched at the closing brace
        def.noalloc = pending_noalloc;
        pending_noalloc = false;
        const int def_index = static_cast<int>(idx.functions.size());
        idx.functions.push_back(def);
        if (!def.qual.empty()) idx.class_names.insert(def.qual);
        stack.push_back({Ctx::kFunction, def.name, def_index});
        i = m.open + 1;
        continue;
      }
    }
    ++i;
  }
  // Unclosed contexts (truncated file): close any function bodies at EOF.
  for (const Ctx& c : stack) {
    if (c.kind == Ctx::kFunction && c.def_index >= 0) {
      idx.functions[static_cast<std::size_t>(c.def_index)].body_end =
          t.size();
    }
  }
}

/// Second pass: variable -> class typing, using the full project's
/// class-name set. Covers `ClassName [>*&]* var`, wrapper templates whose
/// arguments name a project class (`shared_ptr<RequestState> state`,
/// `std::vector<RankMailbox> mailboxes_`), and — in a follow-up pass —
/// range-for bindings (`for (auto& mb : mailboxes_)` types `mb` as the
/// container's element class).
void collect_var_classes(const SourceFile& f, ProjectIndex& idx) {
  const std::vector<Token>& t = f.toks;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!is_ident(t, i)) continue;
    const bool direct = idx.class_names.count(t[i].text) != 0;
    std::string cls = direct ? t[i].text : std::string();
    std::size_t j = i + 1;
    if (is_punct(t, j, "<")) {
      const std::size_t close = skip_angle(t, j);
      if (!direct) {
        // Wrapper template: adopt the first project class among the
        // arguments (shared_ptr<X>, vector<X>, optional<X>, ...).
        for (std::size_t k = j + 1; k + 1 < close; ++k) {
          if (is_ident(t, k) && idx.class_names.count(t[k].text) != 0) {
            cls = t[k].text;
            break;
          }
        }
      }
      j = close;
    }
    if (cls.empty()) continue;
    while (is_punct(t, j, ">") || is_punct(t, j, "*") ||
           is_punct(t, j, "&") || is_punct(t, j, "[") ||
           is_punct(t, j, "]")) {
      ++j;
    }
    if (!is_ident(t, j) || keywords().count(t[j].text) != 0) continue;
    const std::size_t after = j + 1;
    if (is_punct(t, after, ";") || is_punct(t, after, ",") ||
        is_punct(t, after, "=") || is_punct(t, after, "{") ||
        is_punct(t, after, ")")) {
      idx.var_class[t[j].text].insert(cls);
    } else if (is_punct(t, after, "(")) {
      // `Type name(args)` is a ctor-style variable declaration only when
      // the paren group ends the statement; `TraceState& state() {` is a
      // function definition and must not type the name `state`.
      const std::size_t close = skip_balanced(t, after, "(", ")");
      if (is_punct(t, close, ";") || is_punct(t, close, ",")) {
        idx.var_class[t[j].text].insert(cls);
      }
    }
  }
}

/// Third pass: propagate container element classes through range-for
/// bindings — `for (auto& x : ys)` gives `x` whatever class `ys` has.
void collect_range_for_bindings(const SourceFile& f, ProjectIndex& idx) {
  const std::vector<Token>& t = f.toks;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!is_ident(t, i) || t[i].text != "for" || !is_punct(t, i + 1, "(")) {
      continue;
    }
    const std::size_t close = skip_balanced(t, i + 1, "(", ")");
    std::size_t colon = 0;
    int depth = 0;
    for (std::size_t j = i + 1; j + 1 < close; ++j) {
      if (is_punct(t, j, "(") || is_punct(t, j, "<")) ++depth;
      if (is_punct(t, j, ")") || is_punct(t, j, ">")) --depth;
      if (depth == 1 && is_punct(t, j, ":")) {
        colon = j;
        break;
      }
      if (is_punct(t, j, ";")) break;  // classic for loop
    }
    if (colon == 0) continue;
    std::string binder;
    for (std::size_t j = colon; j > i + 1; --j) {
      if (is_ident(t, j - 1)) {
        binder = t[j - 1].text;
        break;
      }
    }
    std::string source;
    for (std::size_t j = colon + 1; j + 1 < close; ++j) {
      if (is_ident(t, j) && t[j].text != "this") {
        source = t[j].text;
        break;
      }
    }
    if (binder.empty() || source.empty() || binder == "auto") continue;
    const auto it = idx.var_class.find(source);
    if (it != idx.var_class.end()) {
      idx.var_class[binder].insert(it->second.begin(), it->second.end());
    }
  }
}

}  // namespace

ProjectIndex build_index(std::vector<SourceFile> files) {
  ProjectIndex idx;
  idx.files = std::move(files);
  for (std::size_t i = 0; i < idx.files.size(); ++i) {
    index_file(static_cast<int>(i), idx.files[i], idx);
  }
  for (const SourceFile& f : idx.files) collect_var_classes(f, idx);
  for (const SourceFile& f : idx.files) {
    collect_range_for_bindings(f, idx);
  }
  for (MutexDecl& m : idx.mutexes) {
    const auto it = idx.rank_values.find(m.rank_name);
    if (it != idx.rank_values.end()) m.rank = it->second;
  }
  for (std::size_t i = 0; i < idx.functions.size(); ++i) {
    idx.functions_by_name[idx.functions[i].name].push_back(
        static_cast<int>(i));
  }
  return idx;
}

std::vector<const MutexDecl*> resolve_mutex(const ProjectIndex& idx,
                                            int file,
                                            const std::string& owner,
                                            const std::vector<Token>& toks,
                                            std::size_t b, std::size_t e) {
  // Final identifier of the expression, plus the receiver before `.`/`->`.
  std::size_t fin = e;
  for (std::size_t j = e; j > b; --j) {
    if (toks[j - 1].kind == Token::Kind::kIdent) {
      fin = j - 1;
      break;
    }
  }
  if (fin == e) return {};
  const std::string name = toks[fin].text;
  std::string receiver;
  bool receiver_is_var = true;  // false for `state().mu`-style call results
  if (fin >= b + 2 && (is_punct(toks, fin - 1, ".") ||
                       is_punct(toks, fin - 1, "->"))) {
    std::size_t r = fin - 2;
    if (is_punct(toks, r, ")") || is_punct(toks, r, "]")) {
      receiver_is_var = false;
      const char* close = toks[r].text == ")" ? ")" : "]";
      const char* open = toks[r].text == ")" ? "(" : "[";
      int depth = 0;
      while (r > b) {
        if (is_punct(toks, r, close)) ++depth;
        if (is_punct(toks, r, open)) {
          --depth;
          if (depth == 0) {
            if (r > b) --r;
            break;
          }
        }
        --r;
      }
    }
    if (toks[r].kind == Token::Kind::kIdent) receiver = toks[r].text;
  }

  std::vector<const MutexDecl*> out;
  // 1. Receiver with known candidate classes: intersect with the classes
  // actually owning a mutex of this name. A variable name declared as
  // several project classes still resolves when only one of them has the
  // member (`state->mu` where only RequestState owns a `mu`). Call-result
  // receivers (`state().mu`) skip this — a function name is not a
  // variable — and fall to the locality heuristics below.
  if (!receiver.empty() && receiver_is_var) {
    const auto vc = idx.var_class.find(receiver);
    if (vc != idx.var_class.end()) {
      for (const MutexDecl& m : idx.mutexes) {
        if (m.name == name && vc->second.count(m.owner) != 0) {
          out.push_back(&m);
        }
      }
      if (!out.empty()) return out;
    }
  }
  // 2. Bare member name inside a member function: the enclosing class's
  // own mutex.
  if (receiver.empty() && !owner.empty()) {
    for (const MutexDecl& m : idx.mutexes) {
      if (m.name == name && m.owner == owner) out.push_back(&m);
    }
    if (!out.empty()) return out;
  }
  // 3. Same file.
  for (const MutexDecl& m : idx.mutexes) {
    if (m.name == name && m.file == file) out.push_back(&m);
  }
  if (!out.empty()) return out;
  // 4. Header/source sibling (same path stem).
  if (file >= 0 && static_cast<std::size_t>(file) < idx.files.size()) {
    const std::string stem = path_stem(idx.files[static_cast<std::size_t>(
        file)].cls.path);
    for (const MutexDecl& m : idx.mutexes) {
      if (m.name == name && m.file >= 0 &&
          path_stem(idx.files[static_cast<std::size_t>(m.file)].cls.path) ==
              stem) {
        out.push_back(&m);
      }
    }
    if (!out.empty()) return out;
  }
  // 4. Global by name.
  for (const MutexDecl& m : idx.mutexes) {
    if (m.name == name) out.push_back(&m);
  }
  return out;
}

std::vector<int> resolve_call(const ProjectIndex& idx,
                              const std::string& name,
                              const std::string& receiver,
                              const std::string& class_hint,
                              int caller_file) {
  const auto it = idx.functions_by_name.find(name);
  if (it == idx.functions_by_name.end()) return {};
  const auto by_class = [&](const std::string& cls) {
    std::vector<int> filtered;
    for (int fi : it->second) {
      if (idx.functions[static_cast<std::size_t>(fi)].qual == cls) {
        filtered.push_back(fi);
      }
    }
    return filtered;
  };
  // 1. Explicit `Class::name(...)` qualifier: the class decides, full
  // stop. (The extractor only forwards qualifiers that are known project
  // classes.)
  if (!class_hint.empty()) return by_class(class_hint);
  // 2. A call through a receiver is a method call; it never resolves to a
  // free function, and a typed receiver never falls through to weaker
  // heuristics — a class without the method means the body is simply out
  // of view (documented under-approximation, DESIGN.md §12).
  if (!receiver.empty()) {
    const auto vc = idx.var_class.find(receiver);
    if (vc != idx.var_class.end()) {
      std::vector<int> filtered;
      for (const std::string& cls : vc->second) {
        for (int fi : by_class(cls)) filtered.push_back(fi);
      }
      return filtered;
    }
    // Untyped receiver. STL-ish method names (`clear`, `pop`, ...) are
    // overwhelmingly standard-container calls; resolving them to a
    // same-named project method produces phantom recursion, so they
    // require a typed receiver.
    static const std::set<std::string> stl_like = {
        "clear", "erase",  "pop",   "pop_back", "pop_front", "top",
        "front", "back",   "size",  "empty",    "begin",     "end",
        "find",  "count",  "at",    "swap",     "data",      "c_str",
        "get",   "reset",  "value", "str",      "substr",    "wait"};
    if (stl_like.count(name) != 0) return {};
    // Otherwise only a project-wide unique *method* definition resolves.
    std::vector<int> methods;
    for (int fi : it->second) {
      if (!idx.functions[static_cast<std::size_t>(fi)].qual.empty()) {
        methods.push_back(fi);
      }
    }
    if (methods.size() == 1) return methods;
    return {};
  }
  // 3. Receiver-less call: definitions in the caller's own file shadow
  // same-named functions elsewhere (file-local helpers, implicit-this
  // methods of a class defined here).
  std::vector<int> same_file;
  for (int fi : it->second) {
    if (idx.functions[static_cast<std::size_t>(fi)].file == caller_file) {
      same_file.push_back(fi);
    }
  }
  if (!same_file.empty()) return same_file;
  // 4. Project-wide, but only when unambiguous: a name with several
  // unrelated definitions resolves to nothing rather than to their union
  // (documented under-approximation — DESIGN.md §12).
  if (it->second.size() == 1) return it->second;
  return {};
}

}  // namespace dshuf::analyze
