#include "lint_rules.hpp"

#include <algorithm>
#include <cctype>

namespace dshuf::lint {

namespace {

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Whole-word occurrence of `word` in `s` starting at `pos` or later;
/// returns npos when absent.
std::size_t find_word(const std::string& s, const std::string& word,
                      std::size_t pos = 0) {
  while ((pos = s.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident(s[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= s.size() || !is_ident(s[end]);
    if (left_ok && right_ok) return pos;
    pos = end;
  }
  return std::string::npos;
}

bool contains_word(const std::string& s, const std::string& word) {
  return find_word(s, word) != std::string::npos;
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::vector<std::string> split_lines(const std::string& s) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t nl = s.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(s.substr(start));
      break;
    }
    lines.push_back(s.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

/// Justification text following an annotation marker: everything after the
/// marker with leading separators (:- and dashes) stripped. Empty when the
/// author wrote the marker alone.
std::string annotation_justification(const std::string& raw_line,
                                     const std::string& marker) {
  const std::size_t pos = raw_line.find(marker);
  if (pos == std::string::npos) return {};
  std::string rest = raw_line.substr(pos + marker.size());
  std::size_t b = 0;
  while (b < rest.size() &&
         (rest[b] == ':' || rest[b] == '-' || rest[b] == ' ' ||
          rest[b] == '\t')) {
    ++b;
  }
  return trim(rest.substr(b));
}

/// True when `marker` appears on raw line `idx` or the line above it.
bool annotated(const std::vector<std::string>& raw_lines, std::size_t idx,
               const std::string& marker) {
  if (idx < raw_lines.size() &&
      raw_lines[idx].find(marker) != std::string::npos) {
    return true;
  }
  return idx > 0 && raw_lines[idx - 1].find(marker) != std::string::npos;
}

/// The raw line (same or previous) carrying `marker`, or npos.
std::size_t annotation_line(const std::vector<std::string>& raw_lines,
                            std::size_t idx, const std::string& marker) {
  if (idx < raw_lines.size() &&
      raw_lines[idx].find(marker) != std::string::npos) {
    return idx;
  }
  if (idx > 0 && raw_lines[idx - 1].find(marker) != std::string::npos) {
    return idx - 1;
  }
  return std::string::npos;
}

// --- rule: banned-random -------------------------------------------------

void check_banned_random(const FileInfo& info,
                         const std::vector<std::string>& lines,
                         std::vector<Finding>& out) {
  if (info.rng_module) return;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& l = lines[i];
    auto flag = [&](const std::string& what) {
      out.push_back({info.path, i + 1, "banned-random",
                     what + " — all randomness must flow through "
                           "dshuf::Rng (util/rng.hpp)"});
    };
    if (contains_word(l, "random_device")) {
      flag("std::random_device is a nondeterministic entropy source");
      continue;
    }
    std::size_t p;
    if ((p = find_word(l, "srand")) != std::string::npos &&
        l.find('(', p) != std::string::npos) {
      flag("srand() seeds the global C PRNG");
      continue;
    }
    if ((p = find_word(l, "rand")) != std::string::npos) {
      std::size_t q = p + 4;
      while (q < l.size() && l[q] == ' ') ++q;
      if (q < l.size() && l[q] == '(') {
        flag("rand() draws from unseeded global state");
        continue;
      }
    }
    // Wall-clock seeding: time(NULL/nullptr/0) or a time_since_epoch()
    // value flowing into anything named *seed*.
    if ((p = find_word(l, "time")) != std::string::npos) {
      std::size_t q = p + 4;
      while (q < l.size() && l[q] == ' ') ++q;
      if (q < l.size() && l[q] == '(') {
        const std::string inner = trim(l.substr(
            q + 1, l.find(')', q) == std::string::npos
                       ? std::string::npos
                       : l.find(')', q) - q - 1));
        if (inner == "NULL" || inner == "nullptr" || inner == "0") {
          flag("time(" + inner + ") is a wall-clock seed");
          continue;
        }
      }
    }
    if (l.find("time_since_epoch") != std::string::npos &&
        lower(l).find("seed") != std::string::npos) {
      flag("seeding from time_since_epoch() is wall-clock dependent");
    }
  }
}

// --- rule: unordered-iteration -------------------------------------------

/// Names declared (in this file) with an unordered container type.
std::vector<std::string> unordered_decl_names(
    const std::vector<std::string>& lines) {
  std::vector<std::string> names;
  for (const std::string& l : lines) {
    for (const char* kw : {"unordered_map", "unordered_set"}) {
      std::size_t p = 0;
      while ((p = find_word(l, kw, p)) != std::string::npos) {
        std::size_t q = p + std::string(kw).size();
        if (q >= l.size() || l[q] != '<') {
          p = q;
          continue;
        }
        int depth = 0;
        while (q < l.size()) {
          if (l[q] == '<') ++depth;
          if (l[q] == '>') {
            --depth;
            if (depth == 0) break;
          }
          ++q;
        }
        if (q >= l.size()) break;  // template args span lines — give up
        ++q;
        while (q < l.size() && (l[q] == ' ' || l[q] == '&' || l[q] == '*')) {
          ++q;
        }
        std::size_t e = q;
        while (e < l.size() && is_ident(l[e])) ++e;
        if (e > q) names.push_back(l.substr(q, e - q));
        p = e;
      }
    }
  }
  return names;
}

void check_unordered_iteration(const FileInfo& info,
                               const std::vector<std::string>& lines,
                               const std::vector<std::string>& raw_lines,
                               std::vector<Finding>& out) {
  if (!info.determinism_critical) return;
  const auto names = unordered_decl_names(lines);
  const std::string marker = "lint:ordered-ok";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& l = lines[i];
    bool iterates = false;
    std::string detail;
    // Range-for whose range expression names an unordered container (or
    // constructs one inline).
    const std::size_t fp = find_word(l, "for");
    if (fp != std::string::npos) {
      const std::size_t colon = l.find(" : ", fp);
      if (colon != std::string::npos) {
        const std::string range = l.substr(colon + 3);
        if (range.find("unordered_map") != std::string::npos ||
            range.find("unordered_set") != std::string::npos) {
          iterates = true;
          detail = "range-for over an unordered container";
        }
        for (const auto& n : names) {
          if (contains_word(range, n)) {
            iterates = true;
            detail = "range-for over unordered container '" + n + "'";
          }
        }
      }
    }
    // Explicit iterator walks.
    for (const auto& n : names) {
      for (const char* m : {".begin(", ".cbegin(", "->begin(", "->cbegin("}) {
        const std::size_t p = l.find(n + m);
        if (p != std::string::npos &&
            (p == 0 || !is_ident(l[p - 1]))) {
          iterates = true;
          detail = "iterator walk over unordered container '" + n + "'";
        }
      }
    }
    if (!iterates) continue;
    if (annotated(raw_lines, i, marker)) {
      const std::size_t al = annotation_line(raw_lines, i, marker);
      if (annotation_justification(raw_lines[al], marker).size() < 3) {
        out.push_back({info.path, al + 1, "ordered-ok-justification",
                       "lint:ordered-ok requires a justification "
                       "(why is iteration order irrelevant here?)"});
      }
      continue;
    }
    out.push_back(
        {info.path, i + 1, "unordered-iteration",
         detail + " in a determinism-critical namespace — iteration order "
                  "is hash-dependent; use an ordered container, sort "
                  "before iterating, or annotate `// lint:ordered-ok "
                  "<why>`"});
  }
}

// --- rule: raw-tag-literal -----------------------------------------------

/// Split the argument list starting at `open` (index of '(') into
/// top-level comma-separated pieces. Returns empty when unbalanced (e.g.
/// the call spans a scrubbed region) — callers skip those.
std::vector<std::string> call_args(const std::string& text,
                                   std::size_t open) {
  std::vector<std::string> args;
  int depth = 0;
  std::string cur;
  for (std::size_t i = open; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '(' || c == '[' || c == '{') {
      ++depth;
      if (depth == 1) continue;  // the call's own '('
    } else if (c == ')' || c == ']' || c == '}') {
      --depth;
      if (depth == 0) {
        args.push_back(cur);
        return args;
      }
    } else if (c == ',' && depth == 1) {
      args.push_back(cur);
      cur.clear();
      continue;
    }
    cur += c;
  }
  return {};
}

void check_raw_tags(const FileInfo& info, const std::string& text,
                    const std::vector<std::size_t>& line_starts,
                    const std::vector<std::string>& raw_lines,
                    std::vector<Finding>& out) {
  const std::string file_marker = "lint:tag-ok-file";
  const std::string line_marker = "lint:tag-ok";
  std::size_t file_marker_line = std::string::npos;
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    if (raw_lines[i].find(file_marker) != std::string::npos) {
      file_marker_line = i;
      break;
    }
  }
  if (file_marker_line != std::string::npos &&
      annotation_justification(raw_lines[file_marker_line], file_marker)
              .size() < 3) {
    out.push_back({info.path, file_marker_line + 1, "tag-ok-justification",
                   "lint:tag-ok-file requires a justification"});
  }

  auto line_of = [&](std::size_t off) {
    const auto it =
        std::upper_bound(line_starts.begin(), line_starts.end(), off);
    return static_cast<std::size_t>(it - line_starts.begin());  // 1-based
  };

  for (const char* fn : {"isend", "irecv"}) {
    std::size_t p = 0;
    while ((p = find_word(text, fn, p)) != std::string::npos) {
      std::size_t q = p + 5;
      while (q < text.size() && (text[q] == ' ' || text[q] == '\n')) ++q;
      if (q >= text.size() || text[q] != '(') {
        p = q;
        continue;
      }
      const auto args = call_args(text, q);
      p = q;
      // isend(dest, tag, payload) / irecv(source, tag): the tag is always
      // argument #2. Declarations pass too ("int tag" mentions tag).
      if (args.size() < 2) continue;
      const std::string tag_arg = lower(trim(args[1]));
      if (tag_arg.find("tag") != std::string::npos) continue;
      const std::size_t lineno = line_of(p);  // 1-based
      const std::size_t idx = lineno - 1;
      if (file_marker_line != std::string::npos) continue;
      if (annotated(raw_lines, idx, line_marker)) {
        const std::size_t al = annotation_line(raw_lines, idx, line_marker);
        if (annotation_justification(raw_lines[al], line_marker).size() <
            3) {
          out.push_back({info.path, al + 1, "tag-ok-justification",
                         "lint:tag-ok requires a justification"});
        }
        continue;
      }
      out.push_back(
          {info.path, lineno, "raw-tag-literal",
           std::string(fn) +
               " tag '" + trim(args[1]) +
               "' does not reference a tag helper — derive it from the "
               "per-epoch helpers in shuffle/exchange_tags.hpp (or "
               "annotate `// lint:tag-ok <why>`)"});
    }
  }
}

// --- rule: raw-stdout ------------------------------------------------------

void check_raw_stdout(const FileInfo& info,
                      const std::vector<std::string>& lines,
                      const std::vector<std::string>& raw_lines,
                      std::vector<Finding>& out) {
  if (!info.src_tree || info.log_module) return;
  const std::string marker = "lint:stdout-ok";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& l = lines[i];
    std::string stream;
    for (const char* s : {"cout", "cerr"}) {
      if (contains_word(l, s)) stream = s;
    }
    if (stream.empty()) continue;
    if (annotated(raw_lines, i, marker)) {
      const std::size_t al = annotation_line(raw_lines, i, marker);
      if (annotation_justification(raw_lines[al], marker).size() < 3) {
        out.push_back({info.path, al + 1, "stdout-ok-justification",
                       "lint:stdout-ok requires a justification "
                       "(why can this site not log through util/log.hpp?)"});
      }
      continue;
    }
    out.push_back(
        {info.path, i + 1, "raw-stdout",
         "std::" + stream + " write in src/ — route output through "
         "util/log.hpp (LOG_* lines carry the [rank epoch] context) or "
         "annotate `// lint:stdout-ok <why>`"});
  }
}

// --- rule: include hygiene -----------------------------------------------

void check_include_hygiene(const FileInfo& info,
                           const std::vector<std::string>& lines,
                           const std::vector<std::string>& raw_lines,
                           std::vector<Finding>& out) {
  if (info.is_header) {
    bool pragma_first = false;
    for (const auto& l : lines) {
      const std::string t = trim(l);
      if (t.empty()) continue;
      pragma_first = t.rfind("#pragma once", 0) == 0;
      break;
    }
    if (!pragma_first) {
      out.push_back({info.path, 1, "pragma-once",
                     "header must open with #pragma once (before any other "
                     "content)"});
    }
  }
  for (std::size_t i = 0; i < lines.size(); ++i) {
    // Include paths live inside the quotes the scrubber blanks — inspect
    // the raw line for preprocessor directives.
    const std::string rt =
        i < raw_lines.size() ? trim(raw_lines[i]) : std::string{};
    if (rt.rfind("#include", 0) == 0 && rt.find('"') != std::string::npos &&
        rt.find("../") != std::string::npos) {
      out.push_back({info.path, i + 1, "relative-include",
                     "quote-includes must be rooted at src/ (no ../)"});
    }
    const std::string t = trim(lines[i]);
    if (contains_word(t, "using") && t.find("namespace std") !=
                                         std::string::npos) {
      out.push_back({info.path, i + 1, "using-namespace-std",
                     "`using namespace std` pollutes every declaration "
                     "after it"});
    }
  }
}

}  // namespace

FileInfo classify_path(const std::string& path) {
  FileInfo info;
  info.path = path;
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  const auto has = [&](const char* needle) {
    return p.find(needle) != std::string::npos;
  };
  info.is_header = p.size() >= 4 && (p.rfind(".hpp") == p.size() - 4 ||
                                     p.rfind(".h") == p.size() - 2);
  info.determinism_critical =
      has("src/shuffle/") || has("src/comm/") || has("src/sim/");
  info.rng_module = has("util/rng.hpp") || has("util/rng.cpp");
  info.src_tree = has("src/");
  info.log_module = has("util/log.cpp");
  return info;
}

std::string scrub(const std::string& content) {
  std::string out = content;
  enum class St { kCode, kLine, kBlock, kStr, kChar, kRaw };
  St st = St::kCode;
  std::string raw_delim;
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char n = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && n == '/') {
          st = St::kLine;
          out[i] = ' ';
        } else if (c == '/' && n == '*') {
          st = St::kBlock;
          out[i] = ' ';
        } else if (c == 'R' && n == '"' &&
                   (i == 0 || !is_ident(content[i - 1]))) {
          // Raw string: capture the delimiter up to '('.
          std::size_t j = i + 2;
          while (j < content.size() && content[j] != '(') ++j;
          raw_delim = ")" + content.substr(i + 2, j - i - 2) + "\"";
          st = St::kRaw;
          // Keep R"...( visible length but blank it.
          for (std::size_t k = i; k <= j && k < content.size(); ++k) {
            if (content[k] != '\n') out[k] = ' ';
          }
          i = j;
        } else if (c == '"') {
          st = St::kStr;
        } else if (c == '\'') {
          st = St::kChar;
        }
        break;
      case St::kLine:
        if (c == '\n') {
          st = St::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case St::kBlock:
        if (c == '*' && n == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kStr:
        if (c == '\\') {
          out[i] = ' ';
          if (n != '\n') {
            if (i + 1 < out.size()) out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < out.size() && n != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kRaw:
        if (content.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 0; k < raw_delim.size(); ++k) {
            if (out[i + k] != '\n') out[i + k] = ' ';
          }
          i += raw_delim.size() - 1;
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<Finding> scan_file(const FileInfo& info,
                               const std::string& content) {
  std::vector<Finding> out;
  const std::string scrubbed = scrub(content);
  const auto lines = split_lines(scrubbed);
  const auto raw_lines = split_lines(content);
  std::vector<std::size_t> line_starts;
  line_starts.push_back(0);
  for (std::size_t i = 0; i < scrubbed.size(); ++i) {
    if (scrubbed[i] == '\n') line_starts.push_back(i + 1);
  }

  check_banned_random(info, lines, out);
  check_unordered_iteration(info, lines, raw_lines, out);
  check_raw_tags(info, scrubbed, line_starts, raw_lines, out);
  check_raw_stdout(info, lines, raw_lines, out);
  check_include_hygiene(info, lines, raw_lines, out);

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return a.line != b.line ? a.line < b.line : a.rule < b.rule;
  });
  return out;
}

std::vector<Finding> scan_file(const std::string& path,
                               const std::string& content) {
  return scan_file(classify_path(path), content);
}

}  // namespace dshuf::lint
