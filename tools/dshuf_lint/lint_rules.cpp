// dshuf_lint rule engine — now a thin adapter over the shared scanning
// core in tools/dshuf_analyze (source_model + lexical_rules). The rules
// themselves moved there so dshuf_lint and dshuf_analyze agree byte-for-
// byte on scrubbing, tokenization and the annotation contract; this file
// only converts between the two tools' (intentionally stable) public
// types. See lexical_rules.hpp for the rule catalogue.
#include "lint_rules.hpp"

#include "lexical_rules.hpp"
#include "source_model.hpp"

namespace dshuf::lint {

namespace {

analyze::FileClass to_class(const FileInfo& info) {
  analyze::FileClass cls;
  cls.path = info.path;
  cls.is_header = info.is_header;
  cls.determinism_critical = info.determinism_critical;
  cls.rng_module = info.rng_module;
  cls.src_tree = info.src_tree;
  cls.log_module = info.log_module;
  cls.io_module = info.io_module;
  return cls;
}

}  // namespace

FileInfo classify_path(const std::string& path) {
  const analyze::FileClass cls = analyze::classify_path(path);
  FileInfo info;
  info.path = cls.path;
  info.is_header = cls.is_header;
  info.determinism_critical = cls.determinism_critical;
  info.rng_module = cls.rng_module;
  info.src_tree = cls.src_tree;
  info.log_module = cls.log_module;
  info.io_module = cls.io_module;
  return info;
}

std::string scrub(const std::string& content) {
  return analyze::scrub(content);
}

std::vector<Finding> scan_file(const FileInfo& info,
                               const std::string& content) {
  analyze::SourceFile f = analyze::make_source_file(info.path, content);
  f.cls = to_class(info);  // honour caller-overridden classifications
  std::vector<Finding> out;
  for (const analyze::Finding& fd : analyze::scan_lexical(f)) {
    out.push_back(Finding{fd.file, fd.line, fd.rule, fd.message});
  }
  return out;
}

std::vector<Finding> scan_file(const std::string& path,
                               const std::string& content) {
  return scan_file(classify_path(path), content);
}

}  // namespace dshuf::lint
