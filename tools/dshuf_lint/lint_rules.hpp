// dshuf_lint rule engine.
//
// Enforces the project's determinism invariants that the compiler cannot
// (DESIGN.md §8): the bit-identical PLS/GS gradient equivalence and the
// replayable fault schedules only hold if no code path consults an
// unseeded or wall-clock entropy source and no determinism-critical result
// depends on hash-bucket iteration order. The checks are lexical — a
// comment/string-aware token scan, not a full parse — which keeps the tool
// dependency-free and fast enough to run as a ctest on every build.
//
// Rules (each Finding carries the rule id):
//
//   banned-random       std::rand / srand / std::random_device / seeding
//                       from wall-clock time anywhere outside util/rng.*.
//                       All randomness must flow through dshuf::Rng.
//   unordered-iteration iteration over std::unordered_{map,set} inside the
//                       determinism-critical namespaces (src/shuffle,
//                       src/comm, src/sim). Suppress a deliberate site
//                       with `// lint:ordered-ok <justification>` on the
//                       same or the preceding line.
//   ordered-ok-justification  a lint:ordered-ok annotation with no
//                       justification text (the contract requires one).
//   raw-tag-literal     an isend/irecv whose tag argument does not
//                       reference a tag helper/constant (it must mention
//                       `tag`, e.g. data_tag(...), ack_tag(...), kAnyTag,
//                       tag_base). Raw literals collide across epochs.
//                       Suppress per line with `// lint:tag-ok <why>` or
//                       per file with `// lint:tag-ok-file: <why>` (for
//                       transport-level tests that name their own
//                       channels).
//   tag-ok-justification  a lint:tag-ok[-file] annotation with no
//                       justification text.
//   raw-stdout          a direct std::cout / std::cerr write inside src/
//                       (everything under src/ must log through
//                       util/log.hpp so lines carry the [rank epoch]
//                       context; util/log.cpp itself is the one module
//                       allowed to own the streams). Suppress a deliberate
//                       site with `// lint:stdout-ok <why>` on the same or
//                       the preceding line. Benches and tests are exempt.
//   stdout-ok-justification  a lint:stdout-ok annotation with no
//                       justification text.
//   raw-mmap            a direct mmap / munmap / mremap / msync call-site
//                       inside src/ but outside src/io/ (mappings must be
//                       owned by io::MmapSampleStore so epoch reclamation
//                       and the capacity bound stay correct). Suppress a
//                       deliberate site with `// lint:mmap-ok <why>`.
//   mmap-ok-justification  a lint:mmap-ok annotation with no
//                       justification text.
//   metric-name         a DSHUF_COUNTER / DSHUF_GAUGE /
//                       DSHUF_HISTOGRAM_US name literal that is not
//                       dotted lowercase ([a-z0-9_.]+). Registry names
//                       are keys into the metrics snapshot, timeseries
//                       export and dshuf_trace tables; "Exchange.Bytes"
//                       next to "exchange.bytes" splits one metric in
//                       two forever.
//   pragma-once         a header whose first content line is not
//                       `#pragma once`.
//   relative-include    `#include "..."` using a ../ path (all project
//                       includes are rooted at src/).
//   using-namespace-std `using namespace std;`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dshuf::lint {

struct Finding {
  std::string file;
  std::size_t line = 1;  // 1-based
  std::string rule;
  std::string message;
};

/// Path-derived properties steering which rules apply.
struct FileInfo {
  std::string path;
  bool is_header = false;
  /// Under src/shuffle, src/comm, or src/sim — the namespaces whose
  /// results must not depend on hash iteration order.
  bool determinism_critical = false;
  /// util/rng.* — the one module allowed to name entropy primitives.
  bool rng_module = false;
  /// Under a src/ tree — the namespaces where raw stream writes are
  /// banned in favour of util/log.hpp.
  bool src_tree = false;
  /// util/log.cpp — the one module allowed to own std::cout/std::cerr.
  bool log_module = false;
  /// src/io/ — the one module allowed to call mmap/munmap directly.
  bool io_module = false;
};

/// Derive FileInfo from a (relative or absolute) path.
[[nodiscard]] FileInfo classify_path(const std::string& path);

/// Blank out comments and string/char literal bodies with spaces,
/// preserving newlines, so token scans cannot match prose. Handles //,
/// /*...*/, "..." with escapes, '...' and R"delim(...)delim".
[[nodiscard]] std::string scrub(const std::string& content);

/// Run every applicable rule over one file's content.
[[nodiscard]] std::vector<Finding> scan_file(const FileInfo& info,
                                             const std::string& content);

/// Convenience: classify_path + scan_file.
[[nodiscard]] std::vector<Finding> scan_file(const std::string& path,
                                             const std::string& content);

}  // namespace dshuf::lint
