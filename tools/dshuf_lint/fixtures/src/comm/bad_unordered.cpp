// Fixture: hash-order iteration in a determinism-critical namespace, plus
// an annotation that violates the justification contract. Never compiled.
#include <cstdint>
#include <unordered_map>

namespace dshuf::comm {

std::uint64_t hash_order_dependent() {
  std::unordered_map<std::uint64_t, std::uint64_t> counters;
  counters[1] = 2;
  std::uint64_t mix = 0;
  for (const auto& [k, v] : counters) {  // order is bucket-dependent
    mix = mix * 31 + k + v;
  }
  // lint:ordered-ok
  for (const auto& [k, v] : counters) {  // annotated but no justification
    mix ^= k;
  }
  return mix;
}

}  // namespace dshuf::comm
