// Fixture: malformed metric registry names. Never compiled — exists so
// the lint_fixture_flags ctest proves dshuf_lint still rejects these.
#include "obs/metrics.hpp"

namespace dshuf {

void register_bad_metrics(int n) {
  DSHUF_COUNTER("Exchange.Bytes").add(1);          // mixed case
  DSHUF_GAUGE("task workers").set(n);              // space
  DSHUF_HISTOGRAM_US("exchange/fence").observe(1); // slash, not dot
}

}  // namespace dshuf
