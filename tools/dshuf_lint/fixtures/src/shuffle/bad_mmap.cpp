// Fixture: raw mmap-family calls outside src/io/. Never compiled — exists
// so the lint_fixture_flags / lint_fixture_mmap_flags ctests prove
// dshuf_lint still rejects these (mappings belong to io::MmapSampleStore).
#include <sys/mman.h>

namespace dshuf::shuffle {

void* banned_mapping(int fd, unsigned long len) {
  void* base = ::mmap(nullptr, len, PROT_READ, MAP_SHARED, fd, 0);
  msync(base, len, MS_SYNC);  // unqualified call matches too
  // lint:mmap-ok
  munmap(base, len);  // annotation above has no justification
  return base;
}

}  // namespace dshuf::shuffle
