// Fixture: every entropy primitive dshuf bans. Never compiled — exists so
// the lint_fixture_flags ctest proves dshuf_lint still rejects these.
#include <cstdlib>
#include <ctime>
#include <random>

namespace dshuf::shuffle {

int banned_everywhere() {
  std::srand(static_cast<unsigned>(time(nullptr)));  // wall-clock seed
  std::random_device rd;                             // hardware entropy
  return std::rand() + static_cast<int>(rd());       // unseeded global PRNG
}

}  // namespace dshuf::shuffle
