// Fixture: exchange traffic on raw tag literals instead of the per-epoch
// helpers from shuffle/exchange_tags.hpp. Never compiled.
#include "comm/comm.hpp"

namespace dshuf::shuffle {

void raw_tag_exchange(comm::Communicator& comm) {
  comm.isend(0, 7, {});              // raw literal collides across epochs
  auto r = comm.irecv(comm::kAnySource, 7);
  r.wait();
}

}  // namespace dshuf::shuffle
