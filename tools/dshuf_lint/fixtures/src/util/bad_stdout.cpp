// Fixture: raw stream writes inside src/. Never compiled — exists so the
// lint_fixture_flags ctest proves dshuf_lint still rejects these.
#include <iostream>

namespace dshuf {

void banned_streams(int rank) {
  std::cout << "rank " << rank << " done\n";  // bypasses util/log.hpp
  // lint:stdout-ok
  std::cerr << "oops\n";  // annotation above has no justification
}

}  // namespace dshuf
