#ifndef DSHUF_FIXTURE_BAD_HEADER
#define DSHUF_FIXTURE_BAD_HEADER
// Fixture: include-hygiene violations (guard macro instead of pragma once,
// a ../ relative include, and a namespace dump). Never compiled.
#include "../util/error.hpp"

using namespace std;

#endif
