// dshuf_lint driver: walk the given files/directories, apply every rule in
// lint_rules.{hpp,cpp}, print findings as `path:line: [rule] message`, and
// exit non-zero when anything is flagged. Registered as the `lint` ctest
// label; run locally with
//
//   ./build/tools/dshuf_lint/dshuf_lint src bench tests
//
// from the repo root (see DESIGN.md §8 for the rule catalogue and the
// annotation contract).
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint_rules.hpp"

namespace {

namespace fs = std::filesystem;

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

std::vector<fs::path> collect(const std::vector<std::string>& roots) {
  std::vector<fs::path> files;
  for (const auto& root : roots) {
    const fs::path p(root);
    if (fs::is_regular_file(p)) {
      if (lintable(p)) files.push_back(p);
      continue;
    }
    if (!fs::is_directory(p)) {
      std::cerr << "dshuf_lint: no such file or directory: " << root << "\n";
      std::exit(2);
    }
    for (const auto& entry : fs::recursive_directory_iterator(p)) {
      if (entry.is_regular_file() && lintable(entry.path())) {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots(argv + 1, argv + argc);
  if (!roots.empty() && roots.front() == "--help") {
    std::cout << "usage: dshuf_lint <file-or-dir>...\n"
                 "Scans .cpp/.hpp/.cc/.h files for dshuf determinism and\n"
                 "hygiene violations. Exit 0 = clean, 1 = findings, 2 = "
                 "usage error.\n";
    return 0;
  }
  if (roots.empty()) {
    std::cerr << "usage: dshuf_lint <file-or-dir>...\n";
    return 2;
  }

  std::size_t files_scanned = 0;
  std::vector<dshuf::lint::Finding> findings;
  for (const auto& file : collect(roots)) {
    std::ifstream in(file, std::ios::binary);
    if (!in.good()) {
      std::cerr << "dshuf_lint: cannot read " << file << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    ++files_scanned;
    for (auto& f : dshuf::lint::scan_file(file.generic_string(), buf.str())) {
      findings.push_back(std::move(f));
    }
  }

  for (const auto& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  std::cout << "dshuf_lint: " << files_scanned << " file(s), "
            << findings.size() << " finding(s)\n";
  return findings.empty() ? 0 : 1;
}
