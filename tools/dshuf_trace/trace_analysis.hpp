// Parsing and analysis core of dshuf_trace, factored into a library so
// tests can drive the exact code the CLI runs (tests/test_overlap.cpp
// links it the way test_lint links dshuf_lint_rules).
//
// Loads the Chrome trace-event JSON written by --trace-out (complete "X"
// spans, "s"/"t"/"f" flow events, "M" metadata), the metrics snapshot
// written by --metrics-out, and the dshuf.timeseries.v1 document written
// by --timeseries-out, structurally validating all three; computes the
// derived views the tool prints: per-span and per-track self-time, the
// exchange/compute overlap report (obs/overlap.hpp), cross-rank flow
// validation (no recv before its send), per-epoch critical paths over the
// causal DAG, and the straggler attribution report.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/overlap.hpp"

namespace dshuf::tracetool {

/// One trace event. `ph` is the Chrome phase: 'X' complete span (ts +
/// dur), 's'/'t'/'f' flow send/step/finish (ts + flow id), 'M' metadata
/// (thread/process name). Only 'X' events carry a meaningful dur; only
/// flow events carry a meaningful flow_id.
struct Ev {
  std::string name;
  char ph = 'X';
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  std::int64_t tid = 0;
  std::uint64_t flow_id = 0;
  std::map<std::string, std::string> args;
};

/// Parse + structurally validate a Chrome trace document. Any malformed
/// input (missing traceEvents, unknown phase, missing dur on a span,
/// missing id on a flow event, negative ts/dur) fails a DSHUF_CHECK —
/// the --check CI gate relies on that.
std::vector<Ev> load_trace(const std::string& path);

/// Structurally validate a metrics snapshot; returns counter name -> value.
std::map<std::string, std::uint64_t> load_metrics(const std::string& path);

/// track id -> human name, from the trace's "thread_name" metadata
/// events ("rank 0", "task.worker.1", ...). Empty when the trace carries
/// no metadata.
std::map<std::int64_t, std::string> thread_names(
    const std::vector<Ev>& events);

struct SelfAgg {
  std::uint64_t count = 0;
  std::uint64_t total_us = 0;
  std::uint64_t self_us = 0;
};

/// Per-span-name totals with self-time (duration minus directly nested
/// child spans on the same track). Non-span events are ignored.
std::map<std::string, SelfAgg> self_time_by_name(std::vector<Ev> events);

/// Per-track totals: span count and self-time summed over every span on
/// the track (the per-worker / per-rank utilisation rows).
std::map<std::int64_t, SelfAgg> self_time_by_track(std::vector<Ev> events);

/// Exchange/compute overlap over the loaded events (obs/overlap.hpp).
obs::OverlapReport overlap_report(const std::vector<Ev>& events);

// ------------------------------------------------------------- causality --

/// Result of validating the trace's flow events as a causal order.
struct FlowCheck {
  std::uint64_t sends = 0;
  std::uint64_t steps = 0;
  std::uint64_t finishes = 0;
  /// Human-readable violations; empty means the trace is causally sound
  /// (every finish has a matching send at ts_send <= ts_finish, every
  /// step follows its send).
  std::vector<std::string> errors;
};

/// Check that no flow finish (receive) precedes its send under the
/// trace's clock, and that steps (retransmits) only appear between a
/// send and some finish of the same flow id.
FlowCheck check_flows(const std::vector<Ev>& events);

/// One entry on a critical path: a maximal run of self-time attributed
/// to one span name on one track.
struct PathStep {
  std::string name;
  std::int64_t tid = 0;
  std::uint64_t us = 0;
};

/// Longest causal path through one epoch's span DAG (see DESIGN.md §13:
/// track edges between consecutive self-time segments, flow edges from
/// each send point to its finish's segment).
struct CriticalPath {
  std::string label;        ///< "epoch N", or "trace" when unpartitioned
  std::uint64_t wall_us = 0;  ///< group makespan (max end - min start)
  std::uint64_t path_us = 0;  ///< longest path length
  std::vector<PathStep> steps;  ///< path contributions, largest first
};

/// Stitch the (merged, multi-track) trace into one causal DAG per epoch
/// and return each epoch's longest path. Spans without an "epoch" arg are
/// assigned by containment in the epoch's per-track time window; with no
/// epoch-annotated spans at all the whole trace forms one group.
std::vector<CriticalPath> critical_paths(const std::vector<Ev>& events);

/// Fence-wait attribution for one (epoch, rank).
struct StragglerRow {
  std::string epoch;
  std::int64_t rank = 0;
  std::uint64_t fence_us = 0;
  /// Track id of the peer whose data arrived last during the fence
  /// (-1 when the fence saw no arrivals — nothing to blame).
  std::int64_t blocking_rank = -1;
  /// Retransmit ('t') events on the flows that finished on this rank.
  std::uint64_t retransmits = 0;
  /// "organic" (plain skew) or "fault" (the blocking flow needed
  /// retransmits, i.e. an injected drop/stall forced the wait).
  std::string klass;
};

/// Attribute each rank's exchange.fence wait to the peer that kept it
/// waiting. `counters` (from --metrics) is optional context: when it
/// carries no comm.fault.* activity every row is classified organic even
/// if flows retransmitted (there was nothing injected to blame).
std::vector<StragglerRow> stragglers(
    const std::vector<Ev>& events,
    const std::map<std::string, std::uint64_t>& counters);

// ------------------------------------------------------------ timeseries --

/// One validated window of a dshuf.timeseries.v1 document.
struct TsWindow {
  std::string label;
  std::uint64_t t_start_us = 0;
  std::uint64_t t_end_us = 0;
  std::size_t counters = 0;
  std::size_t gauges = 0;
  std::size_t histograms = 0;
};

/// Parse + structurally validate a dshuf.timeseries.v1 document: schema
/// tag, per-window monotone [t_start_us, t_end_us] intervals, and
/// non-decreasing p50 <= p99 <= p999 on every histogram entry.
std::vector<TsWindow> load_timeseries(const std::string& path);

}  // namespace dshuf::tracetool
