// Parsing and analysis core of dshuf_trace, factored into a library so
// tests can drive the exact code the CLI runs (tests/test_overlap.cpp
// links it the way test_lint links dshuf_lint_rules).
//
// Loads the Chrome trace-event JSON written by --trace-out and the metrics
// snapshot written by --metrics-out, structurally validating both, and
// computes the derived views the tool prints: per-span self-time and the
// exchange/compute overlap report (obs/overlap.hpp).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/overlap.hpp"

namespace dshuf::tracetool {

/// One complete ("X") trace event.
struct Ev {
  std::string name;
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  std::int64_t tid = 0;
  std::map<std::string, std::string> args;
};

/// Parse + structurally validate a Chrome trace document. Any malformed
/// input (missing traceEvents, non-"X" phase, negative ts/dur) fails a
/// DSHUF_CHECK — the --check CI gate relies on that.
std::vector<Ev> load_trace(const std::string& path);

/// Structurally validate a metrics snapshot; returns counter name -> value.
std::map<std::string, std::uint64_t> load_metrics(const std::string& path);

struct SelfAgg {
  std::uint64_t count = 0;
  std::uint64_t total_us = 0;
  std::uint64_t self_us = 0;
};

/// Per-span-name totals with self-time (duration minus directly nested
/// child spans on the same track).
std::map<std::string, SelfAgg> self_time_by_name(std::vector<Ev> events);

/// Exchange/compute overlap over the loaded events (obs/overlap.hpp).
obs::OverlapReport overlap_report(const std::vector<Ev>& events);

}  // namespace dshuf::tracetool
