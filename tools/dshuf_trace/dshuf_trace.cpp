// dshuf_trace: inspect and validate dshuf observability artifacts.
//
// Reads the Chrome trace-event JSON written by --trace-out (and optionally
// the metrics snapshot written by --metrics-out and the timeseries export
// written by --timeseries-out) and prints a Fig.-10-style breakdown: top
// spans by self-time, per-track utilisation, exchange totals per rank, the
// exchange/compute overlap report, and the fault-injection summary. With
// --check it validates the artifacts' structure — including flow-event
// causality: no receive may precede its send under the trace clock — and
// exits non-zero on any malformed input, which is what the CI obs step
// runs against fresh bench output. --min-overlap=F additionally gates on
// the overlap report (exit non-zero when the hidden fraction of exchange
// time is below F) — the CI perf-smoke step holds the overlapped trainer
// bench to 0.5.
//
//   dshuf_trace --trace=trace.json [--metrics=metrics.json] [--top=N]
//   dshuf_trace --trace=trace.json [--timeseries=ts.json] --check
//   dshuf_trace --trace=trace.json --min-overlap=0.5
//   dshuf_trace --trace=trace.json --critical-path
//   dshuf_trace --trace=trace.json [--metrics=metrics.json] --stragglers
//
// --critical-path stitches the (possibly multi-rank) trace into one
// causal DAG per epoch — program order within a track, flow arrows across
// tracks — and prints each epoch's longest path against its wall clock.
// --stragglers attributes each rank's exchange.fence wait to the peer
// whose data arrived last, counting retransmits and splitting organic
// skew from injected faults (cross-checked against comm.fault.* when
// --metrics is given).
//
// Virtual-backend traces carry thousands of rank tracks; above 64 the
// per-rank and per-track tables collapse into contiguous rank groups
// (mean/max columns, max annotated with the owning rank). --group-size=S
// forces a specific grouping; the default 0 auto-sizes to <= 64 rows.
//
// Parsing/analysis live in trace_analysis.{hpp,cpp} (dshuf_trace_lib) so
// tests exercise the same code paths.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "trace_analysis.hpp"
#include "util/argparse.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace {

using dshuf::tracetool::Ev;
using dshuf::tracetool::SelfAgg;

std::string track_label(const std::map<std::int64_t, std::string>& names,
                        std::int64_t tid) {
  const auto it = names.find(tid);
  return it != names.end() ? it->second : std::to_string(tid);
}

void print_top_spans(const std::vector<Ev>& events, std::size_t top_n) {
  const auto agg = dshuf::tracetool::self_time_by_name(events);
  std::uint64_t wall_us = 0;
  for (const auto& [name, a] : agg) wall_us += a.self_us;
  std::vector<std::pair<std::string, SelfAgg>> rows(agg.begin(), agg.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.self_us != b.second.self_us) {
      return a.second.self_us > b.second.self_us;
    }
    return a.first < b.first;
  });
  if (rows.size() > top_n) rows.resize(top_n);

  dshuf::TextTable t("Top spans by self-time");
  t.header({"span", "count", "total_ms", "self_ms", "self_share"});
  for (const auto& [name, a] : rows) {
    t.row({name, std::to_string(a.count),
           dshuf::fmt_double(static_cast<double>(a.total_us) / 1e3),
           dshuf::fmt_double(static_cast<double>(a.self_us) / 1e3),
           dshuf::fmt_percent(wall_us == 0
                                  ? 0.0
                                  : static_cast<double>(a.self_us) /
                                        static_cast<double>(wall_us))});
  }
  t.print(std::cout);
}

std::size_t effective_group_size(std::size_t requested, std::size_t ranks);

void print_tracks(const std::vector<Ev>& events, std::size_t group_size) {
  const auto agg = dshuf::tracetool::self_time_by_track(events);
  if (agg.size() < 2) return;  // single lane: nothing to break down
  const auto names = dshuf::tracetool::thread_names(events);
  const std::size_t gs = effective_group_size(group_size, agg.size());
  if (gs <= 1) {
    dshuf::TextTable t("Self-time per track");
    t.header({"track", "spans", "busy_ms"});
    for (const auto& [tid, a] : agg) {
      t.row({track_label(names, tid), std::to_string(a.count),
             dshuf::fmt_double(static_cast<double>(a.self_us) / 1e3)});
    }
    t.print(std::cout);
    std::cout << "\n";
    return;
  }
  struct GroupAgg {
    std::size_t tracks = 0;
    std::uint64_t count = 0;
    std::uint64_t self_us = 0;
  };
  std::map<std::int64_t, GroupAgg> by_group;
  for (const auto& [tid, a] : agg) {
    auto& g =
        by_group[tid >= 0 ? tid / static_cast<std::int64_t>(gs) : -1];
    ++g.tracks;
    g.count += a.count;
    g.self_us += a.self_us;
  }
  dshuf::TextTable t("Self-time per track group (group size " +
                     std::to_string(gs) + ")");
  t.header({"tracks", "n", "spans", "busy_ms (mean)"});
  for (const auto& [g, ga] : by_group) {
    const std::string label =
        g < 0 ? "other"
              : std::to_string(g * static_cast<std::int64_t>(gs)) + ".." +
                    std::to_string((g + 1) * static_cast<std::int64_t>(gs) -
                                   1);
    t.row({label, std::to_string(ga.tracks), std::to_string(ga.count),
           dshuf::fmt_double(static_cast<double>(ga.self_us) / 1e3 /
                             static_cast<double>(ga.tracks))});
  }
  t.print(std::cout);
  std::cout << "\n";
}

// Per-rank tables stop being readable once the virtual backend puts
// thousands of rank tracks in one trace; past this many rows the
// breakdown collapses into contiguous rank groups.
constexpr std::size_t kMaxRankRows = 64;

// Effective group size: an explicit --group-size wins; otherwise the
// smallest power of two that fits `ranks` tracks into kMaxRankRows rows
// (1 = no grouping).
std::size_t effective_group_size(std::size_t requested, std::size_t ranks) {
  if (requested > 0) return requested;
  if (ranks <= kMaxRankRows) return 1;
  std::size_t gs = 1;
  while ((ranks + gs - 1) / gs > kMaxRankRows) gs *= 2;
  return gs;
}

void print_exchange_by_rank(const std::vector<Ev>& events,
                            std::size_t group_size) {
  struct RankAgg {
    std::uint64_t epochs = 0;
    std::uint64_t exchange_us = 0;
    std::uint64_t fence_us = 0;
    std::uint64_t bytes = 0;
  };
  std::map<std::int64_t, RankAgg> by_rank;
  for (const Ev& e : events) {
    if (e.ph != 'X' || e.name.rfind("exchange.", 0) != 0) continue;
    auto& a = by_rank[e.tid];
    if (e.name == "exchange.epoch") {
      ++a.epochs;
      a.exchange_us += e.dur_us;
      const auto it = e.args.find("bytes");
      if (it != e.args.end()) {
        a.bytes += static_cast<std::uint64_t>(
            std::strtoull(it->second.c_str(), nullptr, 10));
      }
    } else if (e.name == "exchange.fence") {
      a.fence_us += e.dur_us;
    }
  }
  if (by_rank.empty()) {
    std::cout << "(no exchange.* spans in trace)\n";
    return;
  }

  const std::size_t gs = effective_group_size(group_size, by_rank.size());
  if (gs <= 1) {
    dshuf::TextTable t("Exchange totals per rank");
    t.header({"rank", "epochs", "exchange_ms", "fence_ms", "bytes"});
    for (const auto& [rank, a] : by_rank) {
      t.row({std::to_string(rank), std::to_string(a.epochs),
             dshuf::fmt_double(static_cast<double>(a.exchange_us) / 1e3),
             dshuf::fmt_double(static_cast<double>(a.fence_us) / 1e3),
             std::to_string(a.bytes)});
    }
    t.print(std::cout);
    return;
  }

  struct GroupAgg {
    std::size_t ranks = 0;
    std::uint64_t epochs = 0;
    std::uint64_t exchange_us = 0;
    std::uint64_t fence_us = 0;
    std::uint64_t fence_max_us = 0;
    std::int64_t fence_max_rank = -1;
    std::uint64_t bytes = 0;
  };
  std::map<std::int64_t, GroupAgg> by_group;
  for (const auto& [rank, a] : by_rank) {
    const std::int64_t g =
        rank >= 0 ? rank / static_cast<std::int64_t>(gs) : -1;
    auto& ga = by_group[g];
    ++ga.ranks;
    ga.epochs += a.epochs;
    ga.exchange_us += a.exchange_us;
    ga.fence_us += a.fence_us;
    ga.bytes += a.bytes;
    if (a.fence_us >= ga.fence_max_us) {
      ga.fence_max_us = a.fence_us;
      ga.fence_max_rank = rank;
    }
  }
  dshuf::TextTable t("Exchange totals per rank group (group size " +
                     std::to_string(gs) + ")");
  t.header({"ranks", "n", "epochs", "exchange_ms (mean)",
            "fence_ms (mean)", "fence_ms (max @ rank)", "bytes"});
  for (const auto& [g, ga] : by_group) {
    const double n = static_cast<double>(ga.ranks);
    const std::string label =
        g < 0 ? "other"
              : std::to_string(g * static_cast<std::int64_t>(gs)) + ".." +
                    std::to_string((g + 1) * static_cast<std::int64_t>(gs) -
                                   1);
    t.row({label, std::to_string(ga.ranks), std::to_string(ga.epochs),
           dshuf::fmt_double(static_cast<double>(ga.exchange_us) / 1e3 / n),
           dshuf::fmt_double(static_cast<double>(ga.fence_us) / 1e3 / n),
           dshuf::fmt_double(static_cast<double>(ga.fence_max_us) / 1e3) +
               " @ " + std::to_string(ga.fence_max_rank),
           std::to_string(ga.bytes)});
  }
  t.print(std::cout);
}

void print_overlap(const dshuf::obs::OverlapReport& report) {
  if (report.exchange_spans == 0) {
    std::cout << "(no exchange spans in trace — overlap not applicable)\n";
    return;
  }
  dshuf::TextTable t("Exchange/compute overlap");
  t.header({"metric", "value"});
  t.row({"exchange spans", std::to_string(report.exchange_spans)});
  t.row({"compute spans", std::to_string(report.compute_spans)});
  t.row({"exchange_ms",
         dshuf::fmt_double(static_cast<double>(report.exchange_us) / 1e3)});
  t.row({"hidden_ms",
         dshuf::fmt_double(static_cast<double>(report.hidden_us) / 1e3)});
  t.row({"compute_ms",
         dshuf::fmt_double(static_cast<double>(report.compute_us) / 1e3)});
  t.row({"efficiency", dshuf::fmt_percent(report.efficiency())});
  t.print(std::cout);
}

int print_critical_paths(const std::vector<Ev>& events) {
  const auto paths = dshuf::tracetool::critical_paths(events);
  if (paths.empty()) {
    std::cout << "(no spans in trace — no critical path)\n";
    return 0;
  }
  const auto names = dshuf::tracetool::thread_names(events);
  dshuf::TextTable t("Epoch critical paths");
  t.header({"epoch", "wall_ms", "path_ms", "path/wall", "dominant step"});
  for (const auto& p : paths) {
    std::string dominant = "-";
    if (!p.steps.empty()) {
      dominant = p.steps[0].name + " @ " +
                 track_label(names, p.steps[0].tid) + " (" +
                 dshuf::fmt_double(static_cast<double>(p.steps[0].us) /
                                   1e3) +
                 " ms)";
    }
    t.row({p.label,
           dshuf::fmt_double(static_cast<double>(p.wall_us) / 1e3),
           dshuf::fmt_double(static_cast<double>(p.path_us) / 1e3),
           p.wall_us == 0 ? "-"
                          : dshuf::fmt_percent(
                                static_cast<double>(p.path_us) /
                                static_cast<double>(p.wall_us)),
           dominant});
  }
  t.print(std::cout);
  return 0;
}

int print_stragglers(
    const std::vector<Ev>& events,
    const std::map<std::string, std::uint64_t>& counters) {
  const auto rows = dshuf::tracetool::stragglers(events, counters);
  if (rows.empty()) {
    std::cout << "(no exchange.fence spans in trace — nothing to "
                 "attribute)\n";
    return 0;
  }
  const auto names = dshuf::tracetool::thread_names(events);
  dshuf::TextTable t("Fence-wait attribution (stragglers)");
  t.header(
      {"epoch", "rank", "fence_ms", "blocked by", "retransmits", "class"});
  for (const auto& r : rows) {
    t.row({r.epoch, track_label(names, r.rank),
           dshuf::fmt_double(static_cast<double>(r.fence_us) / 1e3),
           r.blocking_rank < 0 ? "-" : track_label(names, r.blocking_rank),
           std::to_string(r.retransmits), r.klass});
  }
  t.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  dshuf::ArgParser args(
      "dshuf_trace",
      "Inspect/validate dshuf trace and metrics artifacts "
      "(Fig.-10-style breakdown).");
  args.flag("trace", "", "Chrome trace JSON written by --trace-out");
  args.flag("metrics", "", "metrics JSON written by --metrics-out (optional)");
  args.flag("timeseries", "",
            "timeseries JSON written by --timeseries-out (optional)");
  args.flag("top", "12", "rows in the top-spans table");
  args.flag("check", "false", "validate the artifacts and exit");
  args.flag("critical-path", "false",
            "print the per-epoch causal critical path (skips the default "
            "breakdown; composes with --stragglers)");
  args.flag("stragglers", "false",
            "print the per-(epoch, rank) fence-wait attribution (skips the "
            "default breakdown; composes with --critical-path)");
  args.flag("min-overlap", "",
            "fail unless the exchange/compute overlap efficiency is >= "
            "this fraction (e.g. 0.5)");
  args.flag("group-size", "0",
            "collapse the per-rank/per-track tables into contiguous rank "
            "groups of this size (0 = auto: group only when a virtual-"
            "backend trace carries more than 64 rank tracks)");
  try {
    if (!args.parse(argc, argv)) return 0;
    const std::string trace_path = args.get("trace");
    DSHUF_CHECK(!trace_path.empty(), "--trace is required");

    const std::vector<Ev> events = dshuf::tracetool::load_trace(trace_path);
    std::map<std::string, std::uint64_t> counters;
    const std::string metrics_path = args.get("metrics");
    if (!metrics_path.empty()) {
      counters = dshuf::tracetool::load_metrics(metrics_path);
    }
    const std::string timeseries_path = args.get("timeseries");
    std::size_t ts_windows = 0;
    if (!timeseries_path.empty()) {
      ts_windows =
          dshuf::tracetool::load_timeseries(timeseries_path).size();
    }

    const std::string min_overlap = args.get("min-overlap");
    if (!min_overlap.empty()) {
      const double threshold = std::strtod(min_overlap.c_str(), nullptr);
      DSHUF_CHECK(threshold >= 0.0 && threshold <= 1.0,
                  "--min-overlap must be in [0, 1], got " << min_overlap);
      const auto report = dshuf::tracetool::overlap_report(events);
      std::cout << "overlap efficiency "
                << dshuf::fmt_percent(report.efficiency()) << " (hidden "
                << report.hidden_us << " us of " << report.exchange_us
                << " us exchange across " << report.exchange_spans
                << " spans), threshold "
                << dshuf::fmt_percent(threshold) << "\n";
      if (report.efficiency() < threshold) {
        std::cerr << "dshuf_trace: overlap efficiency below threshold\n";
        return 1;
      }
      return 0;
    }

    if (args.get_bool("check")) {
      // Structural validation happened in the loaders; on top of that the
      // flow events must describe a causal order (a receive recorded
      // before its send means the trace clock or the wire context is
      // broken).
      const auto fc = dshuf::tracetool::check_flows(events);
      for (const std::string& err : fc.errors) {
        std::cerr << "dshuf_trace: " << trace_path << ": " << err << "\n";
      }
      if (!fc.errors.empty()) return 1;
      std::cout << "OK: " << trace_path << " (" << events.size()
                << " events, " << fc.sends << " flow sends, "
                << fc.finishes << " finishes, " << fc.steps << " steps)";
      if (!metrics_path.empty()) {
        std::cout << ", " << metrics_path << " (" << counters.size()
                  << " counters)";
      }
      if (!timeseries_path.empty()) {
        std::cout << ", " << timeseries_path << " (" << ts_windows
                  << " windows)";
      }
      std::cout << "\n";
      return 0;
    }

    // The focused reports compose: --critical-path --stragglers prints
    // both and skips the default breakdown.
    if (args.get_bool("critical-path") || args.get_bool("stragglers")) {
      int rc = 0;
      if (args.get_bool("critical-path")) {
        rc |= print_critical_paths(events);
      }
      if (args.get_bool("stragglers")) {
        if (args.get_bool("critical-path")) std::cout << "\n";
        rc |= print_stragglers(events, counters);
      }
      return rc;
    }

    const auto group_size = static_cast<std::size_t>(
        std::max<std::int64_t>(0, args.get_int("group-size")));
    print_top_spans(events,
                    static_cast<std::size_t>(
                        std::max<std::int64_t>(1, args.get_int("top"))));
    std::cout << "\n";
    print_tracks(events, group_size);
    print_exchange_by_rank(events, group_size);
    std::cout << "\n";
    print_overlap(dshuf::tracetool::overlap_report(events));
    if (!counters.empty()) {
      std::cout << "\n";
      dshuf::TextTable ex("Exchange counters");
      ex.header({"counter", "value"});
      for (const auto& [name, v] : counters) {
        if (name.rfind("exchange.", 0) == 0) ex.row({name, std::to_string(v)});
      }
      if (ex.num_rows() > 0) {
        ex.print(std::cout);
        std::cout << "\n";
      }
      dshuf::TextTable ft("Fault summary");
      ft.header({"counter", "value"});
      for (const auto& [name, v] : counters) {
        if (name.rfind("comm.fault.", 0) == 0) {
          ft.row({name, std::to_string(v)});
        }
      }
      if (ft.num_rows() > 0) ft.print(std::cout);
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "dshuf_trace: " << e.what() << "\n";
    return 1;
  }
}
