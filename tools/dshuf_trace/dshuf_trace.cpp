// dshuf_trace: inspect and validate dshuf observability artifacts.
//
// Reads the Chrome trace-event JSON written by --trace-out (and optionally
// the metrics snapshot written by --metrics-out) and prints a Fig.-10-style
// breakdown: top spans by self-time, exchange totals per rank, and the
// fault-injection summary. With --check it validates the artifacts'
// structure instead and exits non-zero on any malformed input, which is
// what the CI obs step runs against fresh bench output.
//
//   dshuf_trace --trace=trace.json [--metrics=metrics.json] [--top=N]
//   dshuf_trace --trace=trace.json [--metrics=metrics.json] --check

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/argparse.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

using dshuf::json::Value;

struct Ev {
  std::string name;
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  std::int64_t tid = 0;
  std::map<std::string, std::string> args;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DSHUF_CHECK(in.good(), "cannot open " << path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

std::uint64_t as_u64(const Value& v, const char* what) {
  const std::int64_t i = v.as_int();
  DSHUF_CHECK(i >= 0, what << " must be non-negative, got " << i);
  return static_cast<std::uint64_t>(i);
}

/// Parse + structurally validate a Chrome trace document.
std::vector<Ev> load_trace(const std::string& path) {
  const Value doc = dshuf::json::parse(slurp(path));
  DSHUF_CHECK(doc.has("traceEvents"), path << ": missing traceEvents");
  std::vector<Ev> events;
  for (const Value& ev : doc.at("traceEvents").as_array()) {
    Ev e;
    e.name = ev.at("name").as_string();
    DSHUF_CHECK(ev.at("ph").as_string() == "X",
                path << ": expected complete ('X') events only, got '"
                     << ev.at("ph").as_string() << "' in span '" << e.name
                     << "'");
    e.ts_us = as_u64(ev.at("ts"), "ts");
    e.dur_us = as_u64(ev.at("dur"), "dur");
    e.tid = ev.at("tid").as_int();
    if (ev.has("args")) {
      const Value& args = ev.at("args");
      for (const std::string& k : args.keys()) {
        e.args[k] = args.at(k).as_string();
      }
    }
    events.push_back(std::move(e));
  }
  return events;
}

/// Structurally validate a metrics snapshot; returns counter name -> value.
std::map<std::string, std::uint64_t> load_metrics(const std::string& path) {
  const Value doc = dshuf::json::parse(slurp(path));
  std::map<std::string, std::uint64_t> counters;
  for (const char* section : {"counters", "gauges", "histograms"}) {
    DSHUF_CHECK(doc.has(section), path << ": missing " << section);
  }
  const Value& cs = doc.at("counters");
  for (const std::string& name : cs.keys()) {
    counters[name] = as_u64(cs.at(name), "counter");
  }
  const Value& hs = doc.at("histograms");
  for (const std::string& name : hs.keys()) {
    const Value& h = hs.at(name);
    const auto& bounds = h.at("bounds").as_array();
    const auto& bucket_counts = h.at("counts").as_array();
    DSHUF_CHECK_EQ(bucket_counts.size(), bounds.size() + 1,
                   path << ": histogram '" << name
                        << "' counts/bounds size mismatch");
    std::uint64_t total = 0;
    for (const Value& c : bucket_counts) total += as_u64(c, "bucket count");
    DSHUF_CHECK_EQ(total, as_u64(h.at("count"), "count"),
                   path << ": histogram '" << name
                        << "' bucket counts do not sum to count");
  }
  return counters;
}

struct SelfAgg {
  std::uint64_t count = 0;
  std::uint64_t total_us = 0;
  std::uint64_t self_us = 0;
};

/// Per-span-name totals with self-time (duration minus directly nested
/// child spans on the same track).
std::map<std::string, SelfAgg> self_time_by_name(std::vector<Ev> events) {
  // Sort per track by (start asc, duration desc) so a parent precedes the
  // spans it encloses; a stack then tracks the open ancestry.
  std::sort(events.begin(), events.end(), [](const Ev& a, const Ev& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
    return a.dur_us > b.dur_us;
  });
  std::map<std::string, SelfAgg> agg;
  struct Open {
    const Ev* ev;
    std::uint64_t child_us = 0;
  };
  std::vector<Open> stack;
  const auto close_until = [&](const Ev* next) {
    while (!stack.empty()) {
      const Open& top = stack.back();
      const bool nests = next != nullptr && next->tid == top.ev->tid &&
                         next->ts_us >= top.ev->ts_us &&
                         next->ts_us + next->dur_us <=
                             top.ev->ts_us + top.ev->dur_us;
      if (nests) return;
      auto& a = agg[top.ev->name];
      ++a.count;
      a.total_us += top.ev->dur_us;
      a.self_us += top.ev->dur_us - std::min(top.child_us, top.ev->dur_us);
      if (stack.size() > 1) {
        stack[stack.size() - 2].child_us += top.ev->dur_us;
      }
      stack.pop_back();
    }
  };
  for (const Ev& e : events) {
    close_until(&e);
    stack.push_back(Open{&e});
  }
  close_until(nullptr);
  return agg;
}

void print_top_spans(const std::vector<Ev>& events, std::size_t top_n) {
  const auto agg = self_time_by_name(events);
  std::uint64_t wall_us = 0;
  for (const auto& [name, a] : agg) wall_us += a.self_us;
  std::vector<std::pair<std::string, SelfAgg>> rows(agg.begin(), agg.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.self_us != b.second.self_us) {
      return a.second.self_us > b.second.self_us;
    }
    return a.first < b.first;
  });
  if (rows.size() > top_n) rows.resize(top_n);

  dshuf::TextTable t("Top spans by self-time");
  t.header({"span", "count", "total_ms", "self_ms", "self_share"});
  for (const auto& [name, a] : rows) {
    t.row({name, std::to_string(a.count),
           dshuf::fmt_double(static_cast<double>(a.total_us) / 1e3),
           dshuf::fmt_double(static_cast<double>(a.self_us) / 1e3),
           dshuf::fmt_percent(wall_us == 0
                                  ? 0.0
                                  : static_cast<double>(a.self_us) /
                                        static_cast<double>(wall_us))});
  }
  t.print(std::cout);
}

void print_exchange_by_rank(const std::vector<Ev>& events) {
  struct RankAgg {
    std::uint64_t epochs = 0;
    std::uint64_t exchange_us = 0;
    std::uint64_t fence_us = 0;
    std::uint64_t bytes = 0;
  };
  std::map<std::int64_t, RankAgg> by_rank;
  for (const Ev& e : events) {
    if (e.name.rfind("exchange.", 0) != 0) continue;
    auto& a = by_rank[e.tid];
    if (e.name == "exchange.epoch") {
      ++a.epochs;
      a.exchange_us += e.dur_us;
      const auto it = e.args.find("bytes");
      if (it != e.args.end()) {
        a.bytes += static_cast<std::uint64_t>(
            std::strtoull(it->second.c_str(), nullptr, 10));
      }
    } else if (e.name == "exchange.fence") {
      a.fence_us += e.dur_us;
    }
  }
  if (by_rank.empty()) {
    std::cout << "(no exchange.* spans in trace)\n";
    return;
  }
  dshuf::TextTable t("Exchange totals per rank");
  t.header({"rank", "epochs", "exchange_ms", "fence_ms", "bytes"});
  for (const auto& [rank, a] : by_rank) {
    t.row({std::to_string(rank), std::to_string(a.epochs),
           dshuf::fmt_double(static_cast<double>(a.exchange_us) / 1e3),
           dshuf::fmt_double(static_cast<double>(a.fence_us) / 1e3),
           std::to_string(a.bytes)});
  }
  t.print(std::cout);
}

void print_counter_group(const std::map<std::string, std::uint64_t>& counters,
                         const std::string& prefix,
                         const std::string& title) {
  dshuf::TextTable t(title);
  t.header({"counter", "value"});
  for (const auto& [name, v] : counters) {
    if (name.rfind(prefix, 0) == 0) t.row({name, std::to_string(v)});
  }
  if (t.num_rows() == 0) return;
  t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  dshuf::ArgParser args(
      "dshuf_trace",
      "Inspect/validate dshuf trace and metrics artifacts "
      "(Fig.-10-style breakdown).");
  args.flag("trace", "", "Chrome trace JSON written by --trace-out");
  args.flag("metrics", "", "metrics JSON written by --metrics-out (optional)");
  args.flag("top", "12", "rows in the top-spans table");
  args.flag("check", "false", "validate the artifacts and exit");
  try {
    if (!args.parse(argc, argv)) return 0;
    const std::string trace_path = args.get("trace");
    DSHUF_CHECK(!trace_path.empty(), "--trace is required");

    const std::vector<Ev> events = load_trace(trace_path);
    std::map<std::string, std::uint64_t> counters;
    const std::string metrics_path = args.get("metrics");
    if (!metrics_path.empty()) counters = load_metrics(metrics_path);

    if (args.get_bool("check")) {
      std::cout << "OK: " << trace_path << " (" << events.size()
                << " spans)";
      if (!metrics_path.empty()) {
        std::cout << ", " << metrics_path << " (" << counters.size()
                  << " counters)";
      }
      std::cout << "\n";
      return 0;
    }

    print_top_spans(events,
                    static_cast<std::size_t>(
                        std::max<std::int64_t>(1, args.get_int("top"))));
    std::cout << "\n";
    print_exchange_by_rank(events);
    if (!counters.empty()) {
      std::cout << "\n";
      print_counter_group(counters, "exchange.", "Exchange counters");
      std::cout << "\n";
      print_counter_group(counters, "comm.fault.", "Fault summary");
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "dshuf_trace: " << e.what() << "\n";
    return 1;
  }
}
