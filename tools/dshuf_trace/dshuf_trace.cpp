// dshuf_trace: inspect and validate dshuf observability artifacts.
//
// Reads the Chrome trace-event JSON written by --trace-out (and optionally
// the metrics snapshot written by --metrics-out) and prints a Fig.-10-style
// breakdown: top spans by self-time, exchange totals per rank, the
// exchange/compute overlap report, and the fault-injection summary. With
// --check it validates the artifacts' structure instead and exits non-zero
// on any malformed input, which is what the CI obs step runs against fresh
// bench output. --min-overlap=F additionally gates on the overlap report
// (exit non-zero when the hidden fraction of exchange time is below F) —
// the CI perf-smoke step holds the overlapped trainer bench to 0.5.
//
//   dshuf_trace --trace=trace.json [--metrics=metrics.json] [--top=N]
//   dshuf_trace --trace=trace.json [--metrics=metrics.json] --check
//   dshuf_trace --trace=trace.json --min-overlap=0.5
//
// Parsing/analysis live in trace_analysis.{hpp,cpp} (dshuf_trace_lib) so
// tests exercise the same code paths.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "trace_analysis.hpp"
#include "util/argparse.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace {

using dshuf::tracetool::Ev;
using dshuf::tracetool::SelfAgg;

void print_top_spans(const std::vector<Ev>& events, std::size_t top_n) {
  const auto agg = dshuf::tracetool::self_time_by_name(events);
  std::uint64_t wall_us = 0;
  for (const auto& [name, a] : agg) wall_us += a.self_us;
  std::vector<std::pair<std::string, SelfAgg>> rows(agg.begin(), agg.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.self_us != b.second.self_us) {
      return a.second.self_us > b.second.self_us;
    }
    return a.first < b.first;
  });
  if (rows.size() > top_n) rows.resize(top_n);

  dshuf::TextTable t("Top spans by self-time");
  t.header({"span", "count", "total_ms", "self_ms", "self_share"});
  for (const auto& [name, a] : rows) {
    t.row({name, std::to_string(a.count),
           dshuf::fmt_double(static_cast<double>(a.total_us) / 1e3),
           dshuf::fmt_double(static_cast<double>(a.self_us) / 1e3),
           dshuf::fmt_percent(wall_us == 0
                                  ? 0.0
                                  : static_cast<double>(a.self_us) /
                                        static_cast<double>(wall_us))});
  }
  t.print(std::cout);
}

void print_exchange_by_rank(const std::vector<Ev>& events) {
  struct RankAgg {
    std::uint64_t epochs = 0;
    std::uint64_t exchange_us = 0;
    std::uint64_t fence_us = 0;
    std::uint64_t bytes = 0;
  };
  std::map<std::int64_t, RankAgg> by_rank;
  for (const Ev& e : events) {
    if (e.name.rfind("exchange.", 0) != 0) continue;
    auto& a = by_rank[e.tid];
    if (e.name == "exchange.epoch") {
      ++a.epochs;
      a.exchange_us += e.dur_us;
      const auto it = e.args.find("bytes");
      if (it != e.args.end()) {
        a.bytes += static_cast<std::uint64_t>(
            std::strtoull(it->second.c_str(), nullptr, 10));
      }
    } else if (e.name == "exchange.fence") {
      a.fence_us += e.dur_us;
    }
  }
  if (by_rank.empty()) {
    std::cout << "(no exchange.* spans in trace)\n";
    return;
  }
  dshuf::TextTable t("Exchange totals per rank");
  t.header({"rank", "epochs", "exchange_ms", "fence_ms", "bytes"});
  for (const auto& [rank, a] : by_rank) {
    t.row({std::to_string(rank), std::to_string(a.epochs),
           dshuf::fmt_double(static_cast<double>(a.exchange_us) / 1e3),
           dshuf::fmt_double(static_cast<double>(a.fence_us) / 1e3),
           std::to_string(a.bytes)});
  }
  t.print(std::cout);
}

void print_overlap(const dshuf::obs::OverlapReport& report) {
  if (report.exchange_spans == 0) {
    std::cout << "(no exchange spans in trace — overlap not applicable)\n";
    return;
  }
  dshuf::TextTable t("Exchange/compute overlap");
  t.header({"metric", "value"});
  t.row({"exchange spans", std::to_string(report.exchange_spans)});
  t.row({"compute spans", std::to_string(report.compute_spans)});
  t.row({"exchange_ms",
         dshuf::fmt_double(static_cast<double>(report.exchange_us) / 1e3)});
  t.row({"hidden_ms",
         dshuf::fmt_double(static_cast<double>(report.hidden_us) / 1e3)});
  t.row({"compute_ms",
         dshuf::fmt_double(static_cast<double>(report.compute_us) / 1e3)});
  t.row({"efficiency", dshuf::fmt_percent(report.efficiency())});
  t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  dshuf::ArgParser args(
      "dshuf_trace",
      "Inspect/validate dshuf trace and metrics artifacts "
      "(Fig.-10-style breakdown).");
  args.flag("trace", "", "Chrome trace JSON written by --trace-out");
  args.flag("metrics", "", "metrics JSON written by --metrics-out (optional)");
  args.flag("top", "12", "rows in the top-spans table");
  args.flag("check", "false", "validate the artifacts and exit");
  args.flag("min-overlap", "",
            "fail unless the exchange/compute overlap efficiency is >= "
            "this fraction (e.g. 0.5)");
  try {
    if (!args.parse(argc, argv)) return 0;
    const std::string trace_path = args.get("trace");
    DSHUF_CHECK(!trace_path.empty(), "--trace is required");

    const std::vector<Ev> events = dshuf::tracetool::load_trace(trace_path);
    std::map<std::string, std::uint64_t> counters;
    const std::string metrics_path = args.get("metrics");
    if (!metrics_path.empty()) {
      counters = dshuf::tracetool::load_metrics(metrics_path);
    }

    const std::string min_overlap = args.get("min-overlap");
    if (!min_overlap.empty()) {
      const double threshold = std::strtod(min_overlap.c_str(), nullptr);
      DSHUF_CHECK(threshold >= 0.0 && threshold <= 1.0,
                  "--min-overlap must be in [0, 1], got " << min_overlap);
      const auto report = dshuf::tracetool::overlap_report(events);
      std::cout << "overlap efficiency "
                << dshuf::fmt_percent(report.efficiency()) << " (hidden "
                << report.hidden_us << " us of " << report.exchange_us
                << " us exchange across " << report.exchange_spans
                << " spans), threshold "
                << dshuf::fmt_percent(threshold) << "\n";
      if (report.efficiency() < threshold) {
        std::cerr << "dshuf_trace: overlap efficiency below threshold\n";
        return 1;
      }
      return 0;
    }

    if (args.get_bool("check")) {
      std::cout << "OK: " << trace_path << " (" << events.size()
                << " spans)";
      if (!metrics_path.empty()) {
        std::cout << ", " << metrics_path << " (" << counters.size()
                  << " counters)";
      }
      std::cout << "\n";
      return 0;
    }

    print_top_spans(events,
                    static_cast<std::size_t>(
                        std::max<std::int64_t>(1, args.get_int("top"))));
    std::cout << "\n";
    print_exchange_by_rank(events);
    std::cout << "\n";
    print_overlap(dshuf::tracetool::overlap_report(events));
    if (!counters.empty()) {
      std::cout << "\n";
      dshuf::TextTable ex("Exchange counters");
      ex.header({"counter", "value"});
      for (const auto& [name, v] : counters) {
        if (name.rfind("exchange.", 0) == 0) ex.row({name, std::to_string(v)});
      }
      if (ex.num_rows() > 0) {
        ex.print(std::cout);
        std::cout << "\n";
      }
      dshuf::TextTable ft("Fault summary");
      ft.header({"counter", "value"});
      for (const auto& [name, v] : counters) {
        if (name.rfind("comm.fault.", 0) == 0) {
          ft.row({name, std::to_string(v)});
        }
      }
      if (ft.num_rows() > 0) ft.print(std::cout);
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "dshuf_trace: " << e.what() << "\n";
    return 1;
  }
}
