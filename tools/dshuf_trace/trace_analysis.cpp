#include "trace_analysis.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/error.hpp"
#include "util/json.hpp"

namespace dshuf::tracetool {

namespace {

using dshuf::json::Value;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DSHUF_CHECK(in.good(), "cannot open " << path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

std::uint64_t as_u64(const Value& v, const char* what) {
  const std::int64_t i = v.as_int();
  DSHUF_CHECK(i >= 0, what << " must be non-negative, got " << i);
  return static_cast<std::uint64_t>(i);
}

}  // namespace

std::vector<Ev> load_trace(const std::string& path) {
  const Value doc = dshuf::json::parse(slurp(path));
  DSHUF_CHECK(doc.has("traceEvents"), path << ": missing traceEvents");
  std::vector<Ev> events;
  for (const Value& ev : doc.at("traceEvents").as_array()) {
    Ev e;
    e.name = ev.at("name").as_string();
    DSHUF_CHECK(ev.at("ph").as_string() == "X",
                path << ": expected complete ('X') events only, got '"
                     << ev.at("ph").as_string() << "' in span '" << e.name
                     << "'");
    e.ts_us = as_u64(ev.at("ts"), "ts");
    e.dur_us = as_u64(ev.at("dur"), "dur");
    e.tid = ev.at("tid").as_int();
    if (ev.has("args")) {
      const Value& args = ev.at("args");
      for (const std::string& k : args.keys()) {
        e.args[k] = args.at(k).as_string();
      }
    }
    events.push_back(std::move(e));
  }
  return events;
}

std::map<std::string, std::uint64_t> load_metrics(const std::string& path) {
  const Value doc = dshuf::json::parse(slurp(path));
  std::map<std::string, std::uint64_t> counters;
  for (const char* section : {"counters", "gauges", "histograms"}) {
    DSHUF_CHECK(doc.has(section), path << ": missing " << section);
  }
  const Value& cs = doc.at("counters");
  for (const std::string& name : cs.keys()) {
    counters[name] = as_u64(cs.at(name), "counter");
  }
  const Value& hs = doc.at("histograms");
  for (const std::string& name : hs.keys()) {
    const Value& h = hs.at(name);
    const auto& bounds = h.at("bounds").as_array();
    const auto& bucket_counts = h.at("counts").as_array();
    DSHUF_CHECK_EQ(bucket_counts.size(), bounds.size() + 1,
                   path << ": histogram '" << name
                        << "' counts/bounds size mismatch");
    std::uint64_t total = 0;
    for (const Value& c : bucket_counts) total += as_u64(c, "bucket count");
    DSHUF_CHECK_EQ(total, as_u64(h.at("count"), "count"),
                   path << ": histogram '" << name
                        << "' bucket counts do not sum to count");
  }
  return counters;
}

std::map<std::string, SelfAgg> self_time_by_name(std::vector<Ev> events) {
  // Sort per track by (start asc, duration desc) so a parent precedes the
  // spans it encloses; a stack then tracks the open ancestry.
  std::sort(events.begin(), events.end(), [](const Ev& a, const Ev& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
    return a.dur_us > b.dur_us;
  });
  std::map<std::string, SelfAgg> agg;
  struct Open {
    const Ev* ev;
    std::uint64_t child_us = 0;
  };
  std::vector<Open> stack;
  const auto close_until = [&](const Ev* next) {
    while (!stack.empty()) {
      const Open& top = stack.back();
      const bool nests = next != nullptr && next->tid == top.ev->tid &&
                         next->ts_us >= top.ev->ts_us &&
                         next->ts_us + next->dur_us <=
                             top.ev->ts_us + top.ev->dur_us;
      if (nests) return;
      auto& a = agg[top.ev->name];
      ++a.count;
      a.total_us += top.ev->dur_us;
      a.self_us += top.ev->dur_us - std::min(top.child_us, top.ev->dur_us);
      if (stack.size() > 1) {
        stack[stack.size() - 2].child_us += top.ev->dur_us;
      }
      stack.pop_back();
    }
  };
  for (const Ev& e : events) {
    close_until(&e);
    stack.push_back(Open{&e});
  }
  close_until(nullptr);
  return agg;
}

obs::OverlapReport overlap_report(const std::vector<Ev>& events) {
  std::vector<obs::NamedSpan> spans;
  spans.reserve(events.size());
  for (const Ev& e : events) spans.push_back({e.name, e.ts_us, e.dur_us});
  return obs::compute_overlap(std::span<const obs::NamedSpan>(spans));
}

}  // namespace dshuf::tracetool
