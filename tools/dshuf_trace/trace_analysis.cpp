#include "trace_analysis.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/error.hpp"
#include "util/json.hpp"

namespace dshuf::tracetool {

namespace {

using dshuf::json::Value;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DSHUF_CHECK(in.good(), "cannot open " << path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

std::uint64_t as_u64(const Value& v, const char* what) {
  const std::int64_t i = v.as_int();
  DSHUF_CHECK(i >= 0, what << " must be non-negative, got " << i);
  return static_cast<std::uint64_t>(i);
}

/// Flow ids are serialised as decimal strings (a u64 with bit 63 set
/// does not fit JSON's double-exact integer range).
std::uint64_t parse_flow_id(const std::string& s, const std::string& path) {
  DSHUF_CHECK(!s.empty(), path << ": flow event with empty id");
  char* end = nullptr;
  const std::uint64_t id = std::strtoull(s.c_str(), &end, 10);
  DSHUF_CHECK(end != nullptr && *end == '\0',
              path << ": flow id '" << s << "' is not a decimal integer");
  return id;
}

/// A maximal run of self-time: `name` was the innermost open span on
/// `tid` throughout [start_us, end_us).
struct Seg {
  std::string name;
  std::int64_t tid = 0;
  std::uint64_t start_us = 0;
  std::uint64_t end_us = 0;

  [[nodiscard]] std::uint64_t dur() const { return end_us - start_us; }
};

/// Split the spans into per-track self-time segments: sort each track by
/// (start asc, duration desc) so parents precede the spans they enclose,
/// sweep with an open-ancestry stack, and emit a segment whenever the
/// innermost span changes. The segments partition each track's busy time
/// and sum to the spans' self-times.
std::vector<Seg> self_segments(std::vector<const Ev*> spans) {
  std::sort(spans.begin(), spans.end(), [](const Ev* a, const Ev* b) {
    if (a->tid != b->tid) return a->tid < b->tid;
    if (a->ts_us != b->ts_us) return a->ts_us < b->ts_us;
    return a->dur_us > b->dur_us;
  });
  std::vector<Seg> segs;
  struct Open {
    const Ev* ev;
    std::uint64_t cursor;  // start of the span's current self-time run
  };
  std::vector<Open> stack;
  const auto emit = [&](const Open& o, std::uint64_t upto) {
    if (upto > o.cursor) {
      segs.push_back(Seg{o.ev->name, o.ev->tid, o.cursor, upto});
    }
  };
  const auto close_until = [&](const Ev* next) {
    while (!stack.empty()) {
      const Open& top = stack.back();
      const bool nests = next != nullptr && next->tid == top.ev->tid &&
                         next->ts_us >= top.ev->ts_us &&
                         next->ts_us + next->dur_us <=
                             top.ev->ts_us + top.ev->dur_us;
      if (nests) return;
      const std::uint64_t end = top.ev->ts_us + top.ev->dur_us;
      emit(top, end);
      if (stack.size() > 1) {
        stack[stack.size() - 2].cursor =
            std::max(stack[stack.size() - 2].cursor, end);
      }
      stack.pop_back();
    }
  };
  for (const Ev* e : spans) {
    close_until(e);
    if (!stack.empty()) {
      emit(stack.back(), e->ts_us);
      stack.back().cursor = std::max(stack.back().cursor, e->ts_us);
    }
    stack.push_back(Open{e, e->ts_us});
  }
  close_until(nullptr);
  return segs;
}

const std::string* epoch_arg(const Ev& e) {
  const auto it = e.args.find("epoch");
  return it == e.args.end() ? nullptr : &it->second;
}

}  // namespace

std::vector<Ev> load_trace(const std::string& path) {
  const Value doc = dshuf::json::parse(slurp(path));
  DSHUF_CHECK(doc.has("traceEvents"), path << ": missing traceEvents");
  std::vector<Ev> events;
  for (const Value& ev : doc.at("traceEvents").as_array()) {
    Ev e;
    e.name = ev.at("name").as_string();
    const std::string& ph = ev.at("ph").as_string();
    DSHUF_CHECK(ph.size() == 1, path << ": bad phase '" << ph
                                     << "' in event '" << e.name << "'");
    e.ph = ph[0];
    e.tid = ev.at("tid").as_int();
    if (ev.has("args")) {
      const Value& args = ev.at("args");
      for (const std::string& k : args.keys()) {
        e.args[k] = args.at(k).as_string();
      }
    }
    switch (e.ph) {
      case 'X':
        e.ts_us = as_u64(ev.at("ts"), "ts");
        e.dur_us = as_u64(ev.at("dur"), "dur");
        break;
      case 's':
      case 't':
      case 'f':
        e.ts_us = as_u64(ev.at("ts"), "ts");
        e.flow_id = parse_flow_id(ev.at("id").as_string(), path);
        break;
      case 'M':
        DSHUF_CHECK(e.name == "process_name" || e.name == "thread_name",
                    path << ": unknown metadata event '" << e.name << "'");
        DSHUF_CHECK(e.args.count("name") != 0,
                    path << ": metadata event without args.name");
        break;
      default:
        DSHUF_CHECK(false, path << ": unsupported phase '" << e.ph
                                << "' in event '" << e.name << "'");
    }
    events.push_back(std::move(e));
  }
  return events;
}

std::map<std::string, std::uint64_t> load_metrics(const std::string& path) {
  const Value doc = dshuf::json::parse(slurp(path));
  std::map<std::string, std::uint64_t> counters;
  for (const char* section : {"counters", "gauges", "histograms"}) {
    DSHUF_CHECK(doc.has(section), path << ": missing " << section);
  }
  const Value& cs = doc.at("counters");
  for (const std::string& name : cs.keys()) {
    counters[name] = as_u64(cs.at(name), "counter");
  }
  const Value& hs = doc.at("histograms");
  for (const std::string& name : hs.keys()) {
    const Value& h = hs.at(name);
    const auto& bounds = h.at("bounds").as_array();
    const auto& bucket_counts = h.at("counts").as_array();
    DSHUF_CHECK_EQ(bucket_counts.size(), bounds.size() + 1,
                   path << ": histogram '" << name
                        << "' counts/bounds size mismatch");
    std::uint64_t total = 0;
    for (const Value& c : bucket_counts) total += as_u64(c, "bucket count");
    DSHUF_CHECK_EQ(total, as_u64(h.at("count"), "count"),
                   path << ": histogram '" << name
                        << "' bucket counts do not sum to count");
  }
  return counters;
}

std::map<std::int64_t, std::string> thread_names(
    const std::vector<Ev>& events) {
  std::map<std::int64_t, std::string> names;
  for (const Ev& e : events) {
    if (e.ph != 'M' || e.name != "thread_name") continue;
    const auto it = e.args.find("name");
    if (it != e.args.end()) names[e.tid] = it->second;
  }
  return names;
}

std::map<std::string, SelfAgg> self_time_by_name(std::vector<Ev> events) {
  std::map<std::string, SelfAgg> agg;
  std::vector<const Ev*> spans;
  for (const Ev& e : events) {
    if (e.ph != 'X') continue;
    spans.push_back(&e);
    auto& a = agg[e.name];
    ++a.count;
    a.total_us += e.dur_us;
  }
  for (const Seg& s : self_segments(std::move(spans))) {
    agg[s.name].self_us += s.dur();
  }
  return agg;
}

std::map<std::int64_t, SelfAgg> self_time_by_track(std::vector<Ev> events) {
  std::map<std::int64_t, SelfAgg> agg;
  std::vector<const Ev*> spans;
  for (const Ev& e : events) {
    if (e.ph != 'X') continue;
    spans.push_back(&e);
    auto& a = agg[e.tid];
    ++a.count;
    a.total_us += e.dur_us;
  }
  for (const Seg& s : self_segments(std::move(spans))) {
    agg[s.tid].self_us += s.dur();
  }
  return agg;
}

obs::OverlapReport overlap_report(const std::vector<Ev>& events) {
  std::vector<obs::NamedSpan> spans;
  spans.reserve(events.size());
  for (const Ev& e : events) {
    if (e.ph != 'X') continue;
    spans.push_back({e.name, e.ts_us, e.dur_us});
  }
  return obs::compute_overlap(std::span<const obs::NamedSpan>(spans));
}

// --------------------------------------------------------------- flows --

FlowCheck check_flows(const std::vector<Ev>& events) {
  FlowCheck out;
  // Earliest send and step per flow id: a retransmission legitimately
  // re-sends after the first attempt, so causal soundness means every
  // finish is at or after the FIRST send of its id.
  std::map<std::uint64_t, std::uint64_t> first_send;
  for (const Ev& e : events) {
    if (e.ph != 's') continue;
    ++out.sends;
    const auto it = first_send.find(e.flow_id);
    if (it == first_send.end() || e.ts_us < it->second) {
      first_send[e.flow_id] = e.ts_us;
    }
  }
  for (const Ev& e : events) {
    if (e.ph == 't') {
      ++out.steps;
      const auto it = first_send.find(e.flow_id);
      if (it == first_send.end()) {
        out.errors.push_back("flow step '" + e.name + "' id " +
                             std::to_string(e.flow_id) +
                             " has no matching send");
      } else if (e.ts_us < it->second) {
        out.errors.push_back("flow step '" + e.name + "' id " +
                             std::to_string(e.flow_id) +
                             " precedes its send");
      }
    } else if (e.ph == 'f') {
      ++out.finishes;
      const auto it = first_send.find(e.flow_id);
      if (it == first_send.end()) {
        out.errors.push_back("flow finish '" + e.name + "' id " +
                             std::to_string(e.flow_id) +
                             " has no matching send (recv without send)");
      } else if (e.ts_us < it->second) {
        out.errors.push_back(
            "flow finish '" + e.name + "' id " + std::to_string(e.flow_id) +
            " at ts " + std::to_string(e.ts_us) + " precedes its send at " +
            std::to_string(it->second));
      }
    }
  }
  return out;
}

// -------------------------------------------------------- critical path --

namespace {

/// One epoch group: the spans and flow events attributed to it.
struct Group {
  std::string label;
  std::vector<const Ev*> spans;
  std::vector<const Ev*> flows;
};

/// Partition the trace into per-epoch groups. Spans/flows carrying an
/// "epoch" arg go to that epoch; epoch-less spans are assigned by full
/// containment in the epoch's time window on their own track (so e.g.
/// exchange.fence lands in the epoch of its enclosing exchange.epoch).
/// A trace with no epoch args at all forms one "trace" group.
std::vector<Group> group_by_epoch(const std::vector<Ev>& events) {
  std::map<std::string, Group> by_epoch;
  std::vector<const Ev*> unassigned;
  for (const Ev& e : events) {
    if (e.ph == 'X') {
      if (const std::string* ep = epoch_arg(e)) {
        by_epoch[*ep].spans.push_back(&e);
      } else {
        unassigned.push_back(&e);
      }
    } else if (e.ph == 's' || e.ph == 't' || e.ph == 'f') {
      if (const std::string* ep = epoch_arg(e)) {
        by_epoch[*ep].flows.push_back(&e);
      }
    }
  }
  std::vector<Group> groups;
  if (by_epoch.empty()) {
    Group g;
    g.label = "trace";
    g.spans = std::move(unassigned);
    for (const Ev& e : events) {
      if (e.ph == 's' || e.ph == 't' || e.ph == 'f') g.flows.push_back(&e);
    }
    if (!g.spans.empty()) groups.push_back(std::move(g));
    return groups;
  }
  // Per-(epoch, track) windows from the epoch-annotated spans, then
  // assign each epoch-less span to every epoch whose window on its track
  // fully contains it (windows can nest across epochs; full containment
  // keeps the assignment unambiguous per group).
  for (auto& [epoch, g] : by_epoch) {
    std::map<std::int64_t, std::pair<std::uint64_t, std::uint64_t>> windows;
    for (const Ev* e : g.spans) {
      auto [it, fresh] = windows.try_emplace(
          e->tid, e->ts_us, e->ts_us + e->dur_us);
      if (!fresh) {
        it->second.first = std::min(it->second.first, e->ts_us);
        it->second.second =
            std::max(it->second.second, e->ts_us + e->dur_us);
      }
    }
    for (const Ev* e : unassigned) {
      const auto it = windows.find(e->tid);
      if (it == windows.end()) continue;
      if (e->ts_us >= it->second.first &&
          e->ts_us + e->dur_us <= it->second.second) {
        g.spans.push_back(e);
      }
    }
    g.label = "epoch " + epoch;
    groups.push_back(std::move(g));
  }
  // Numeric epoch order where possible (map order is lexicographic).
  std::sort(groups.begin(), groups.end(), [](const Group& a,
                                             const Group& b) {
    const long la = std::strtol(a.label.c_str() + 6, nullptr, 10);
    const long lb = std::strtol(b.label.c_str() + 6, nullptr, 10);
    if (la != lb) return la < lb;
    return a.label < b.label;
  });
  return groups;
}

/// Longest path over one group's segment DAG. Nodes are self-time
/// segments; edges are (a) program order between consecutive segments on
/// one track and (b) flow edges from the segment containing a send point
/// to the segment containing the matching finish. dp values propagate by
/// round-robin relaxation (track sweep + flow edges) until fixpoint —
/// flow edges can point "backwards" in start order, so a single sweep is
/// not enough.
CriticalPath longest_path(const Group& g) {
  CriticalPath out;
  out.label = g.label;
  std::uint64_t lo = UINT64_MAX;
  std::uint64_t hi = 0;
  for (const Ev* e : g.spans) {
    lo = std::min(lo, e->ts_us);
    hi = std::max(hi, e->ts_us + e->dur_us);
  }
  if (hi <= lo) return out;
  out.wall_us = hi - lo;

  std::vector<Seg> segs = self_segments(g.spans);
  if (segs.empty()) return out;
  // self_segments returns per-track start order; remember each track's
  // contiguous range of indices.
  std::map<std::int64_t, std::pair<std::size_t, std::size_t>> track_range;
  for (std::size_t i = 0; i < segs.size(); ++i) {
    auto [it, fresh] = track_range.try_emplace(segs[i].tid, i, i + 1);
    if (!fresh) it->second.second = i + 1;
  }

  // Flow edges: (source segment, send ts, target segment, finish ts).
  struct FlowEdge {
    std::size_t from, to;
    std::uint64_t ts_send, ts_fin;
  };
  const auto seg_at = [&](std::int64_t tid,
                          std::uint64_t ts) -> std::size_t {
    const auto it = track_range.find(tid);
    if (it == track_range.end()) return SIZE_MAX;
    for (std::size_t i = it->second.first; i < it->second.second; ++i) {
      if (segs[i].start_us <= ts && ts < segs[i].end_us) return i;
    }
    return SIZE_MAX;
  };
  std::map<std::uint64_t, const Ev*> send_of;  // first send per flow id
  for (const Ev* e : g.flows) {
    if (e->ph != 's') continue;
    const auto it = send_of.find(e->flow_id);
    if (it == send_of.end() || e->ts_us < it->second->ts_us) {
      send_of[e->flow_id] = e;
    }
  }
  std::vector<FlowEdge> flow_edges;
  for (const Ev* e : g.flows) {
    if (e->ph != 'f') continue;
    const auto it = send_of.find(e->flow_id);
    if (it == send_of.end() || it->second->ts_us > e->ts_us) continue;
    const std::size_t from = seg_at(it->second->tid, it->second->ts_us);
    const std::size_t to = seg_at(e->tid, e->ts_us);
    if (from == SIZE_MAX || to == SIZE_MAX || from == to) continue;
    flow_edges.push_back(FlowEdge{from, to, it->second->ts_us, e->ts_us});
  }

  // dp[i] = longest path ending at the END of segment i; pred[i] the
  // argmax predecessor (or SIZE_MAX at a path start).
  std::vector<std::uint64_t> dp(segs.size(), 0);
  std::vector<std::size_t> pred(segs.size(), SIZE_MAX);
  for (std::size_t i = 0; i < segs.size(); ++i) dp[i] = segs[i].dur();
  bool changed = true;
  for (int iter = 0; changed && iter < 64; ++iter) {
    changed = false;
    for (const auto& [tid, range] : track_range) {
      for (std::size_t i = range.first + 1; i < range.second; ++i) {
        const std::uint64_t cand = dp[i - 1] + segs[i].dur();
        if (cand > dp[i]) {
          dp[i] = cand;
          pred[i] = i - 1;
          changed = true;
        }
      }
    }
    for (const FlowEdge& fe : flow_edges) {
      // Path reaches the send point partway through `from` (its prefix
      // up to ts_send), crosses the wire, and resumes at the finish
      // point inside `to` (its suffix from ts_fin).
      const std::uint64_t at_send =
          dp[fe.from] - segs[fe.from].dur() +
          (fe.ts_send - segs[fe.from].start_us);
      const std::uint64_t cand =
          at_send + (segs[fe.to].end_us - fe.ts_fin);
      if (cand > dp[fe.to]) {
        dp[fe.to] = cand;
        pred[fe.to] = fe.from;
        changed = true;
      }
    }
  }

  std::size_t best = 0;
  for (std::size_t i = 1; i < segs.size(); ++i) {
    if (dp[i] > dp[best]) best = i;
  }
  out.path_us = dp[best];

  // Walk the path, aggregating contributions by (name, track).
  std::map<std::pair<std::string, std::int64_t>, std::uint64_t> by_step;
  for (std::size_t i = best; i != SIZE_MAX; i = pred[i]) {
    by_step[{segs[i].name, segs[i].tid}] += segs[i].dur();
    if (pred[i] == i) break;  // defensive: never self-loop
  }
  for (const auto& [key, us] : by_step) {
    out.steps.push_back(PathStep{key.first, key.second, us});
  }
  std::sort(out.steps.begin(), out.steps.end(),
            [](const PathStep& a, const PathStep& b) {
              if (a.us != b.us) return a.us > b.us;
              if (a.name != b.name) return a.name < b.name;
              return a.tid < b.tid;
            });
  return out;
}

}  // namespace

std::vector<CriticalPath> critical_paths(const std::vector<Ev>& events) {
  std::vector<CriticalPath> out;
  for (const Group& g : group_by_epoch(events)) {
    out.push_back(longest_path(g));
  }
  return out;
}

// ----------------------------------------------------------- stragglers --

std::vector<StragglerRow> stragglers(
    const std::vector<Ev>& events,
    const std::map<std::string, std::uint64_t>& counters) {
  // Fault context: with a metrics snapshot present, only blame injected
  // faults when the fault counters actually moved.
  bool fault_possible = counters.empty();
  for (const auto& [name, v] : counters) {
    if (name.rfind("comm.fault.", 0) == 0 && v > 0) fault_possible = true;
  }

  // Index flow events once: first send and step count per flow id.
  std::map<std::uint64_t, const Ev*> send_of;
  std::map<std::uint64_t, std::uint64_t> steps_of;
  for (const Ev& e : events) {
    if (e.ph == 's') {
      const auto it = send_of.find(e.flow_id);
      if (it == send_of.end() || e.ts_us < it->second->ts_us) {
        send_of[e.flow_id] = &e;
      }
    } else if (e.ph == 't') {
      ++steps_of[e.flow_id];
    }
  }

  std::vector<StragglerRow> rows;
  for (const Ev& fence : events) {
    if (fence.ph != 'X' || fence.name != "exchange.fence") continue;
    // The fence's epoch comes from its enclosing exchange.epoch span on
    // the same track.
    const std::string* epoch = nullptr;
    for (const Ev& outer : events) {
      if (outer.ph != 'X' || outer.name != "exchange.epoch" ||
          outer.tid != fence.tid) {
        continue;
      }
      if (outer.ts_us <= fence.ts_us &&
          fence.ts_us + fence.dur_us <= outer.ts_us + outer.dur_us) {
        epoch = epoch_arg(outer);
        break;
      }
    }
    StragglerRow row;
    row.epoch = epoch != nullptr ? *epoch : "?";
    row.rank = fence.tid;
    row.fence_us = fence.dur_us;
    // Arrivals on this rank for this epoch; the one that lands last is
    // the flow the fence was waiting on.
    const Ev* last = nullptr;
    for (const Ev& f : events) {
      if (f.ph != 'f' || f.tid != fence.tid) continue;
      const std::string* fep = epoch_arg(f);
      if (epoch != nullptr && (fep == nullptr || *fep != *epoch)) continue;
      if (f.ts_us > fence.ts_us + fence.dur_us) continue;
      row.retransmits += steps_of.count(f.flow_id) != 0
                             ? steps_of[f.flow_id]
                             : 0;
      if (last == nullptr || f.ts_us > last->ts_us) last = &f;
    }
    if (last != nullptr) {
      const auto it = send_of.find(last->flow_id);
      if (it != send_of.end()) row.blocking_rank = it->second->tid;
      const bool blocked_by_retransmit = steps_of.count(last->flow_id) != 0;
      row.klass =
          blocked_by_retransmit && fault_possible ? "fault" : "organic";
    } else {
      row.klass = "organic";
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const StragglerRow& a, const StragglerRow& b) {
              const long ea = std::strtol(a.epoch.c_str(), nullptr, 10);
              const long eb = std::strtol(b.epoch.c_str(), nullptr, 10);
              if (ea != eb) return ea < eb;
              return a.rank < b.rank;
            });
  return rows;
}

// ------------------------------------------------------------ timeseries --

std::vector<TsWindow> load_timeseries(const std::string& path) {
  const Value doc = dshuf::json::parse(slurp(path));
  DSHUF_CHECK(doc.has("schema") &&
                  doc.at("schema").as_string() == "dshuf.timeseries.v1",
              path << ": not a dshuf.timeseries.v1 document");
  DSHUF_CHECK(doc.has("windows"), path << ": missing windows");
  std::vector<TsWindow> out;
  for (const Value& w : doc.at("windows").as_array()) {
    TsWindow tw;
    tw.label = w.at("label").as_string();
    tw.t_start_us = as_u64(w.at("t_start_us"), "t_start_us");
    tw.t_end_us = as_u64(w.at("t_end_us"), "t_end_us");
    DSHUF_CHECK(tw.t_start_us <= tw.t_end_us,
                path << ": window '" << tw.label
                     << "' has t_start_us > t_end_us");
    if (!out.empty()) {
      DSHUF_CHECK(out.back().t_end_us <= tw.t_start_us,
                  path << ": window '" << tw.label
                       << "' overlaps its predecessor");
    }
    const Value& cs = w.at("counters");
    tw.counters = cs.keys().size();
    for (const std::string& k : cs.keys()) {
      (void)as_u64(cs.at(k), "counter delta");
    }
    tw.gauges = w.at("gauges").keys().size();
    const Value& hs = w.at("histograms");
    tw.histograms = hs.keys().size();
    for (const std::string& k : hs.keys()) {
      const Value& h = hs.at(k);
      DSHUF_CHECK(as_u64(h.at("count"), "count") > 0,
                  path << ": histogram '" << k
                       << "' exported with zero observations");
      const double p50 = h.at("p50").as_number();
      const double p99 = h.at("p99").as_number();
      const double p999 = h.at("p999").as_number();
      DSHUF_CHECK(p50 <= p99 && p99 <= p999,
                  path << ": histogram '" << k
                       << "' quantiles not monotone (p50 " << p50
                       << ", p99 " << p99 << ", p999 " << p999 << ")");
    }
    out.push_back(std::move(tw));
  }
  return out;
}

}  // namespace dshuf::tracetool
