// dshuf_bench: records the compute-kernel performance baseline.
//
// Times the retained reference kernels against the blocked production
// kernels (GEMM at several sizes, Conv1d forward/backward, and a full
// simulated training iteration for the MLP and CNN proxies) in one
// process, by flipping the KernelBackend switch. --out writes the
// results as BENCH_micro-style JSON (schema dshuf.bench_micro.v1);
// --check re-reads a written file with util/json and validates its
// structure, which is the CI perf-smoke gate.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "data/synthetic.hpp"
#include "nn/builder.hpp"
#include "nn/conv.hpp"
#include "nn/loss.hpp"
#include "tensor/tensor.hpp"
#include "util/argparse.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace dshuf;

/// Milliseconds per call: repeats `fn` until `min_seconds` has elapsed,
/// best of `reps` rounds (robust to scheduler noise on a shared core).
template <typename Fn>
double time_ms(Fn&& fn, double min_seconds, int reps) {
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    std::size_t iters = 0;
    Stopwatch sw;
    double elapsed = 0.0;
    do {
      fn();
      ++iters;
      elapsed = sw.seconds();
    } while (elapsed < min_seconds);
    const double ms = elapsed * 1e3 / static_cast<double>(iters);
    if (best < 0.0 || ms < best) best = ms;
  }
  return best;
}

struct Timing {
  double ref_ms = 0.0;
  double blocked_ms = 0.0;

  [[nodiscard]] double speedup() const {
    return blocked_ms > 0.0 ? ref_ms / blocked_ms : 0.0;
  }
};

/// Runs `fn` once per backend under time_ms.
template <typename Fn>
Timing time_both(Fn&& fn, double min_seconds, int reps) {
  Timing t;
  {
    const ScopedKernelBackend scoped(KernelBackend::kReference);
    t.ref_ms = time_ms(fn, min_seconds, reps);
  }
  {
    const ScopedKernelBackend scoped(KernelBackend::kBlocked);
    t.blocked_ms = time_ms(fn, min_seconds, reps);
  }
  return t;
}

std::string fmt(double v) {
  std::ostringstream oss;
  oss.precision(6);
  oss << v;
  return oss.str();
}

struct GemmRow {
  std::size_t n = 0;
  Timing t;
  [[nodiscard]] double gflops(double ms) const {
    const double flops = 2.0 * static_cast<double>(n) *
                         static_cast<double>(n) * static_cast<double>(n);
    return ms > 0.0 ? flops / (ms * 1e6) : 0.0;
  }
};

struct PassRow {
  std::string name;
  Timing t;
};

Timing time_train_iteration(nn::Model model, const data::InMemoryDataset& ds,
                            double min_seconds, int reps) {
  nn::SoftmaxCrossEntropy ce;
  std::vector<data::SampleId> batch(32);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i] = static_cast<data::SampleId>(i * 7 % ds.size());
  }
  const Tensor x = ds.gather(batch);
  const auto y = ds.gather_labels(batch);
  return time_both(
      [&] {
        model.zero_grad();
        const Tensor& logits = model.forward(x, true);
        ce.forward(logits, y);
        model.backward(ce.grad());
      },
      min_seconds, reps);
}

int run_check(const std::string& path) {
  std::ifstream in(path);
  DSHUF_CHECK(in.good(), "cannot open " << path);
  std::stringstream buf;
  buf << in.rdbuf();
  const json::Value doc = json::parse(buf.str());
  DSHUF_CHECK_EQ(doc.at("schema").as_string(), "dshuf.bench_micro.v1",
                 "unexpected schema in " << path);
  DSHUF_CHECK(!doc.at("gemm").as_array().empty(), "no gemm entries");
  for (const auto& row : doc.at("gemm").as_array()) {
    DSHUF_CHECK_GT(row.at("ref_ms").as_number(), 0.0, "bad ref_ms");
    DSHUF_CHECK_GT(row.at("blocked_ms").as_number(), 0.0, "bad blocked_ms");
    DSHUF_CHECK_GT(row.at("speedup").as_number(), 0.0, "bad speedup");
  }
  DSHUF_CHECK_EQ(doc.at("conv1d").as_array().size(), 2U,
                 "expected conv1d forward+backward");
  DSHUF_CHECK_EQ(doc.at("train_iteration").as_array().size(), 2U,
                 "expected mlp+cnn train iterations");
  std::cout << "dshuf_bench: " << path << " OK ("
            << doc.at("gemm").as_array().size() << " gemm sizes)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("dshuf_bench",
                 "Record the blocked-vs-reference kernel perf baseline");
  args.flag("out", "", "write JSON results to this path");
  args.flag("check", "", "validate a previously written JSON file and exit");
  args.flag("quick", "false", "reduced measurement time (CI smoke)");
  if (!args.parse(argc, argv)) return 0;

  if (!args.get("check").empty()) return run_check(args.get("check"));

  const bool quick = args.get_bool("quick");
  const double min_seconds = quick ? 0.02 : 0.2;
  const int reps = quick ? 2 : 5;

  Rng rng(3);
  std::vector<GemmRow> gemm_rows;
  for (const std::size_t n : {std::size_t{64}, std::size_t{128},
                              std::size_t{256}}) {
    GemmRow row;
    row.n = n;
    const Tensor a = Tensor::randn({n, n}, rng);
    const Tensor b = Tensor::randn({n, n}, rng);
    Tensor out({n, n});
    row.t = time_both([&] { gemm(a, b, out); }, min_seconds, reps);
    gemm_rows.push_back(row);
    std::cout << "gemm " << n << "x" << n << "x" << n << ": ref "
              << fmt(row.t.ref_ms) << " ms (" << fmt(row.gflops(row.t.ref_ms))
              << " GF/s), blocked " << fmt(row.t.blocked_ms) << " ms ("
              << fmt(row.gflops(row.t.blocked_ms)) << " GF/s), speedup "
              << fmt(row.t.speedup()) << "x\n";
  }

  std::vector<PassRow> conv_rows;
  {
    Rng crng(7);
    nn::Conv1d conv(8, 16, 32, 3, crng);
    const Tensor x = Tensor::randn({32, 8 * 32}, crng);
    const Tensor g = Tensor::randn({32, 16 * 32}, crng);
    Tensor y;
    Tensor gi;
    conv_rows.push_back(
        {"forward",
         time_both([&] { conv.forward_into(x, y, true); }, min_seconds,
                   reps)});
    conv_rows.push_back({"backward", time_both(
                                         [&] {
                                           conv.forward_into(x, y, true);
                                           conv.backward_into(g, gi);
                                         },
                                         min_seconds, reps)});
    for (const auto& row : conv_rows) {
      std::cout << "conv1d " << row.name << ": ref " << fmt(row.t.ref_ms)
                << " ms, blocked " << fmt(row.t.blocked_ms) << " ms, speedup "
                << fmt(row.t.speedup()) << "x\n";
    }
  }

  std::vector<PassRow> train_rows;
  {
    data::ClassClusterSpec dspec{.num_classes = 16,
                                 .samples_per_class = 64,
                                 .feature_dim = 32,
                                 .seed = 5};
    const auto ds = data::make_class_clusters(dspec);
    nn::MlpSpec mspec{.input_dim = 32, .hidden = {96, 64}, .num_classes = 16};
    Rng mrng(5);
    train_rows.push_back(
        {"mlp", time_train_iteration(nn::make_mlp(mspec, mrng), ds,
                                     min_seconds, reps)});
    data::ClassClusterSpec cdspec{.num_classes = 10,
                                  .samples_per_class = 64,
                                  .feature_dim = 32,
                                  .seed = 5};
    const auto cds = data::make_class_clusters(cdspec);
    nn::CnnSpec cspec;
    Rng crng(5);
    train_rows.push_back(
        {"cnn", time_train_iteration(nn::make_cnn(cspec, crng), cds,
                                     min_seconds, reps)});
    for (const auto& row : train_rows) {
      std::cout << "train_iteration " << row.name << ": ref "
                << fmt(row.t.ref_ms) << " ms, blocked "
                << fmt(row.t.blocked_ms) << " ms, speedup "
                << fmt(row.t.speedup()) << "x\n";
    }
  }

  const std::string out_path = args.get("out");
  if (!out_path.empty()) {
    std::ostringstream j;
    j << "{\n  \"schema\": \"dshuf.bench_micro.v1\",\n  \"gemm\": [\n";
    for (std::size_t i = 0; i < gemm_rows.size(); ++i) {
      const auto& r = gemm_rows[i];
      j << "    {\"m\": " << r.n << ", \"n\": " << r.n << ", \"k\": " << r.n
        << ", \"ref_ms\": " << fmt(r.t.ref_ms)
        << ", \"blocked_ms\": " << fmt(r.t.blocked_ms)
        << ", \"ref_gflops\": " << fmt(r.gflops(r.t.ref_ms))
        << ", \"blocked_gflops\": " << fmt(r.gflops(r.t.blocked_ms))
        << ", \"speedup\": " << fmt(r.t.speedup()) << "}"
        << (i + 1 < gemm_rows.size() ? "," : "") << "\n";
    }
    j << "  ],\n  \"conv1d\": [\n";
    for (std::size_t i = 0; i < conv_rows.size(); ++i) {
      const auto& r = conv_rows[i];
      j << "    {\"pass\": \"" << r.name
        << "\", \"ref_ms\": " << fmt(r.t.ref_ms)
        << ", \"blocked_ms\": " << fmt(r.t.blocked_ms)
        << ", \"speedup\": " << fmt(r.t.speedup()) << "}"
        << (i + 1 < conv_rows.size() ? "," : "") << "\n";
    }
    j << "  ],\n  \"train_iteration\": [\n";
    for (std::size_t i = 0; i < train_rows.size(); ++i) {
      const auto& r = train_rows[i];
      j << "    {\"model\": \"" << r.name
        << "\", \"ref_ms\": " << fmt(r.t.ref_ms)
        << ", \"blocked_ms\": " << fmt(r.t.blocked_ms)
        << ", \"speedup\": " << fmt(r.t.speedup()) << "}"
        << (i + 1 < train_rows.size() ? "," : "") << "\n";
    }
    j << "  ]\n}\n";
    // Round-trip through the parser before writing: the tool never emits
    // a file its own --check would reject.
    json::parse(j.str());
    std::ofstream out(out_path);
    DSHUF_CHECK(out.good(), "cannot write " << out_path);
    out << j.str();
    std::cout << "wrote " << out_path << "\n";
  }
  return 0;
}
