// dshuf_bench: records the compute-kernel performance baseline.
//
// Times the retained reference kernels against the blocked production
// kernels (GEMM at several sizes, Conv1d forward/backward, and a full
// simulated training iteration for the MLP and CNN proxies) in one
// process, by flipping the KernelBackend switch, plus the multicore rows:
// blocked GEMM under the task scheduler at 1/2/4/8 workers and one
// overlapped exchange+compute epoch (sim/overlap.hpp) at the same worker
// counts, plus the observability tax: the same overlapped epoch with the
// tracer + timeseries sampler on vs off. --out writes the results as
// BENCH_micro-style JSON (schema dshuf.bench_micro.v3, which also records
// hw_threads so readers can judge the scaling rows); --check re-reads a
// written file with util/json and validates its structure — and, when the
// recording host had >= 4 hardware threads, gates multicore GEMM at 4
// workers on >= 2x the 1-worker row, and always gates the tracing
// overhead at <= 5%. This is the CI perf-smoke gate.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.hpp"
#include "nn/builder.hpp"
#include "nn/conv.hpp"
#include "nn/loss.hpp"
#include "obs/trace.hpp"
#include "obs/timeseries.hpp"
#include "sim/overlap.hpp"
#include "task/scheduler.hpp"
#include "tensor/tensor.hpp"
#include "util/argparse.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace dshuf;

/// Milliseconds per call: repeats `fn` until `min_seconds` has elapsed,
/// best of `reps` rounds (robust to scheduler noise on a shared core).
template <typename Fn>
double time_ms(Fn&& fn, double min_seconds, int reps) {
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    std::size_t iters = 0;
    Stopwatch sw;
    double elapsed = 0.0;
    do {
      fn();
      ++iters;
      elapsed = sw.seconds();
    } while (elapsed < min_seconds);
    const double ms = elapsed * 1e3 / static_cast<double>(iters);
    if (best < 0.0 || ms < best) best = ms;
  }
  return best;
}

struct Timing {
  double ref_ms = 0.0;
  double blocked_ms = 0.0;

  [[nodiscard]] double speedup() const {
    return blocked_ms > 0.0 ? ref_ms / blocked_ms : 0.0;
  }
};

/// Runs `fn` once per backend under time_ms.
template <typename Fn>
Timing time_both(Fn&& fn, double min_seconds, int reps) {
  Timing t;
  {
    const ScopedKernelBackend scoped(KernelBackend::kReference);
    t.ref_ms = time_ms(fn, min_seconds, reps);
  }
  {
    const ScopedKernelBackend scoped(KernelBackend::kBlocked);
    t.blocked_ms = time_ms(fn, min_seconds, reps);
  }
  return t;
}

std::string fmt(double v) {
  std::ostringstream oss;
  oss.precision(6);
  oss << v;
  return oss.str();
}

struct GemmRow {
  std::size_t n = 0;
  Timing t;
  [[nodiscard]] double gflops(double ms) const {
    const double flops = 2.0 * static_cast<double>(n) *
                         static_cast<double>(n) * static_cast<double>(n);
    return ms > 0.0 ? flops / (ms * 1e6) : 0.0;
  }
};

struct PassRow {
  std::string name;
  Timing t;
};

Timing time_train_iteration(nn::Model model, const data::InMemoryDataset& ds,
                            double min_seconds, int reps) {
  nn::SoftmaxCrossEntropy ce;
  std::vector<data::SampleId> batch(32);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i] = static_cast<data::SampleId>(i * 7 % ds.size());
  }
  const Tensor x = ds.gather(batch);
  const auto y = ds.gather_labels(batch);
  return time_both(
      [&] {
        model.zero_grad();
        const Tensor& logits = model.forward(x, true);
        ce.forward(logits, y);
        model.backward(ce.grad());
      },
      min_seconds, reps);
}

int run_check(const std::string& path) {
  std::ifstream in(path);
  DSHUF_CHECK(in.good(), "cannot open " << path);
  std::stringstream buf;
  buf << in.rdbuf();
  const json::Value doc = json::parse(buf.str());
  DSHUF_CHECK_EQ(doc.at("schema").as_string(), "dshuf.bench_micro.v3",
                 "unexpected schema in " << path);
  const std::int64_t hw_threads = doc.at("hw_threads").as_int();
  DSHUF_CHECK_GE(hw_threads, 1, "bad hw_threads");
  DSHUF_CHECK(!doc.at("gemm").as_array().empty(), "no gemm entries");
  for (const auto& row : doc.at("gemm").as_array()) {
    DSHUF_CHECK_GT(row.at("ref_ms").as_number(), 0.0, "bad ref_ms");
    DSHUF_CHECK_GT(row.at("blocked_ms").as_number(), 0.0, "bad blocked_ms");
    DSHUF_CHECK_GT(row.at("speedup").as_number(), 0.0, "bad speedup");
  }
  DSHUF_CHECK_EQ(doc.at("conv1d").as_array().size(), 2U,
                 "expected conv1d forward+backward");
  DSHUF_CHECK_EQ(doc.at("train_iteration").as_array().size(), 2U,
                 "expected mlp+cnn train iterations");
  DSHUF_CHECK(!doc.at("gemm_multicore").as_array().empty(),
              "no gemm_multicore entries");
  double speedup_at_4 = -1.0;
  for (const auto& row : doc.at("gemm_multicore").as_array()) {
    DSHUF_CHECK_GT(row.at("workers").as_int(), 0, "bad workers");
    DSHUF_CHECK_GT(row.at("ms").as_number(), 0.0, "bad ms");
    DSHUF_CHECK_GT(row.at("gflops").as_number(), 0.0, "bad gflops");
    DSHUF_CHECK_GT(row.at("speedup_vs_1").as_number(), 0.0,
                   "bad speedup_vs_1");
    if (row.at("workers").as_int() == 4) {
      speedup_at_4 = row.at("speedup_vs_1").as_number();
    }
  }
  DSHUF_CHECK(!doc.at("epoch_time").as_array().empty(),
              "no epoch_time entries");
  for (const auto& row : doc.at("epoch_time").as_array()) {
    DSHUF_CHECK_GT(row.at("workers").as_int(), 0, "bad workers");
    DSHUF_CHECK_GT(row.at("ms").as_number(), 0.0, "bad ms");
  }
  DSHUF_CHECK(!doc.at("obs_overhead").as_array().empty(),
              "no obs_overhead entries");
  for (const auto& row : doc.at("obs_overhead").as_array()) {
    DSHUF_CHECK_GT(row.at("off_ms").as_number(), 0.0, "bad off_ms");
    DSHUF_CHECK_GT(row.at("on_ms").as_number(), 0.0, "bad on_ms");
    // The always-on-able observability stack (tracer + windowed sampler)
    // must stay under a 5% tax on the overlapped epoch.
    DSHUF_CHECK_LE(row.at("overhead_frac").as_number(), 0.05,
                   "tracing+sampling overhead above 5% in "
                       << path << " (workload "
                       << row.at("workload").as_string() << ")");
  }
  // The scaling gate only means something when the recording host had the
  // cores: a 1-core container legitimately shows ~1.0x at any width.
  if (hw_threads >= 4) {
    DSHUF_CHECK_GE(speedup_at_4, 2.0,
                   "multicore GEMM at 4 workers must be >= 2x 1-worker ("
                       << path << " recorded " << speedup_at_4 << "x on "
                       << hw_threads << " hw threads)");
  } else {
    std::cout << "dshuf_bench: scaling gate skipped (recorded on "
              << hw_threads << " hw thread(s))\n";
  }
  std::cout << "dshuf_bench: " << path << " OK ("
            << doc.at("gemm").as_array().size() << " gemm sizes, "
            << doc.at("gemm_multicore").as_array().size()
            << " multicore rows)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("dshuf_bench",
                 "Record the blocked-vs-reference kernel perf baseline");
  args.flag("out", "", "write JSON results to this path");
  args.flag("check", "", "validate a previously written JSON file and exit");
  args.flag("quick", "false", "reduced measurement time (CI smoke)");
  if (!args.parse(argc, argv)) return 0;

  if (!args.get("check").empty()) return run_check(args.get("check"));

  const bool quick = args.get_bool("quick");
  const double min_seconds = quick ? 0.02 : 0.2;
  const int reps = quick ? 2 : 5;

  Rng rng(3);
  std::vector<GemmRow> gemm_rows;
  for (const std::size_t n : {std::size_t{64}, std::size_t{128},
                              std::size_t{256}}) {
    GemmRow row;
    row.n = n;
    const Tensor a = Tensor::randn({n, n}, rng);
    const Tensor b = Tensor::randn({n, n}, rng);
    Tensor out({n, n});
    row.t = time_both([&] { gemm(a, b, out); }, min_seconds, reps);
    gemm_rows.push_back(row);
    std::cout << "gemm " << n << "x" << n << "x" << n << ": ref "
              << fmt(row.t.ref_ms) << " ms (" << fmt(row.gflops(row.t.ref_ms))
              << " GF/s), blocked " << fmt(row.t.blocked_ms) << " ms ("
              << fmt(row.gflops(row.t.blocked_ms)) << " GF/s), speedup "
              << fmt(row.t.speedup()) << "x\n";
  }

  std::vector<PassRow> conv_rows;
  {
    Rng crng(7);
    nn::Conv1d conv(8, 16, 32, 3, crng);
    const Tensor x = Tensor::randn({32, 8 * 32}, crng);
    const Tensor g = Tensor::randn({32, 16 * 32}, crng);
    Tensor y;
    Tensor gi;
    conv_rows.push_back(
        {"forward",
         time_both([&] { conv.forward_into(x, y, true); }, min_seconds,
                   reps)});
    conv_rows.push_back({"backward", time_both(
                                         [&] {
                                           conv.forward_into(x, y, true);
                                           conv.backward_into(g, gi);
                                         },
                                         min_seconds, reps)});
    for (const auto& row : conv_rows) {
      std::cout << "conv1d " << row.name << ": ref " << fmt(row.t.ref_ms)
                << " ms, blocked " << fmt(row.t.blocked_ms) << " ms, speedup "
                << fmt(row.t.speedup()) << "x\n";
    }
  }

  std::vector<PassRow> train_rows;
  {
    data::ClassClusterSpec dspec{.num_classes = 16,
                                 .samples_per_class = 64,
                                 .feature_dim = 32,
                                 .seed = 5};
    const auto ds = data::make_class_clusters(dspec);
    nn::MlpSpec mspec{.input_dim = 32, .hidden = {96, 64}, .num_classes = 16};
    Rng mrng(5);
    train_rows.push_back(
        {"mlp", time_train_iteration(nn::make_mlp(mspec, mrng), ds,
                                     min_seconds, reps)});
    data::ClassClusterSpec cdspec{.num_classes = 10,
                                  .samples_per_class = 64,
                                  .feature_dim = 32,
                                  .seed = 5};
    const auto cds = data::make_class_clusters(cdspec);
    nn::CnnSpec cspec;
    Rng crng(5);
    train_rows.push_back(
        {"cnn", time_train_iteration(nn::make_cnn(cspec, crng), cds,
                                     min_seconds, reps)});
    for (const auto& row : train_rows) {
      std::cout << "train_iteration " << row.name << ": ref "
                << fmt(row.t.ref_ms) << " ms, blocked "
                << fmt(row.t.blocked_ms) << " ms, speedup "
                << fmt(row.t.speedup()) << "x\n";
    }
  }

  // Multicore rows: blocked GEMM and one overlapped exchange+compute
  // epoch under the task scheduler at 1/2/4/8 workers. Worker counts
  // beyond hw_threads still run correctly (bit-identical results); they
  // just can't speed up — which is why the JSON records hw_threads.
  struct McRow {
    std::size_t workers = 0;
    double ms = 0.0;
  };
  const std::size_t mc_n = 256;
  std::vector<McRow> mc_rows;
  std::vector<McRow> epoch_rows;
  {
    Rng mcrng(3);
    const Tensor a = Tensor::randn({mc_n, mc_n}, mcrng);
    const Tensor b = Tensor::randn({mc_n, mc_n}, mcrng);
    Tensor out({mc_n, mc_n});
    const ScopedKernelBackend scoped(KernelBackend::kBlocked);
    for (const std::size_t w :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
      const task::ScopedTaskWorkers workers(w);
      mc_rows.push_back(
          {w, time_ms([&] { gemm(a, b, out); }, min_seconds, reps)});
    }
  }
  const double mc_ms1 = mc_rows.empty() ? 0.0 : mc_rows.front().ms;
  const auto mc_gflops = [&](double ms) {
    const double flops = 2.0 * static_cast<double>(mc_n) *
                         static_cast<double>(mc_n) *
                         static_cast<double>(mc_n);
    return ms > 0.0 ? flops / (ms * 1e6) : 0.0;
  };
  for (const auto& row : mc_rows) {
    std::cout << "gemm_multicore " << mc_n << "^3 @ " << row.workers
              << " workers: " << fmt(row.ms) << " ms ("
              << fmt(mc_gflops(row.ms)) << " GF/s, "
              << fmt(row.ms > 0.0 ? mc_ms1 / row.ms : 0.0) << "x vs 1)\n";
  }
  {
    sim::OverlapConfig ocfg;
    ocfg.n = 256;
    ocfg.ranks = 4;
    ocfg.q = 0.3;
    ocfg.epochs = 1;
    ocfg.compute_gemm_n = 128;
    ocfg.compute_reps = 2;
    std::uint64_t seed = 11;
    for (const std::size_t w :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
      const task::ScopedTaskWorkers workers(w);
      epoch_rows.push_back({w, time_ms(
                                   [&] {
                                     ocfg.seed = seed++;
                                     sim::run_overlapped_epochs(ocfg);
                                   },
                                   min_seconds, reps)});
      std::cout << "epoch_time (overlapped, 4 ranks) @ " << w
                << " workers: " << fmt(epoch_rows.back().ms) << " ms\n";
    }
  }
  // Observability tax: the identical overlapped epoch with the tracer and
  // the timeseries sampler recording vs fully off. clear()/sample_window()
  // stay inside the timed region — they are part of the per-epoch
  // lifecycle a traced bench actually pays. The workload is deliberately
  // heavier than the epoch_time rows (real epochs are long; the per-event
  // cost is fixed), and the arms alternate per rep so machine-load drift
  // hits both sides instead of biasing one.
  double obs_off_ms = 0.0;
  double obs_on_ms = 0.0;
  {
    sim::OverlapConfig ocfg;
    ocfg.n = 256;
    ocfg.ranks = 4;
    ocfg.q = 0.3;
    ocfg.epochs = 2;
    ocfg.compute_gemm_n = 256;
    ocfg.compute_reps = 4;
    const task::ScopedTaskWorkers workers(4);
    std::uint64_t seed = 21;
    auto& tracer = obs::Tracer::instance();
    auto& sampler = obs::TimeseriesSampler::instance();
    const auto run_arm = [&](bool on) {
      tracer.set_enabled(on);
      sampler.set_enabled(on);
      if (on) sampler.reset();
      const double ms = time_ms(
          [&] {
            ocfg.seed = seed++;
            sim::run_overlapped_epochs(ocfg);
            if (on) tracer.clear();
          },
          min_seconds, 1);
      tracer.set_enabled(false);
      sampler.set_enabled(false);
      return ms;
    };
    for (int r = 0; r < reps; ++r) {
      const double off = run_arm(false);
      const double on = run_arm(true);
      if (obs_off_ms <= 0.0 || off < obs_off_ms) obs_off_ms = off;
      if (obs_on_ms <= 0.0 || on < obs_on_ms) obs_on_ms = on;
    }
    sampler.reset();
    tracer.clear();
  }
  const double obs_overhead_frac =
      obs_off_ms > 0.0 ? (obs_on_ms - obs_off_ms) / obs_off_ms : 0.0;
  std::cout << "obs_overhead (overlapped epoch @ 4 workers): off "
            << fmt(obs_off_ms) << " ms, on " << fmt(obs_on_ms) << " ms, +"
            << fmt(obs_overhead_frac * 100.0) << "%\n";

  const auto hw_threads =
      std::max(1U, std::thread::hardware_concurrency());

  const std::string out_path = args.get("out");
  if (!out_path.empty()) {
    std::ostringstream j;
    j << "{\n  \"schema\": \"dshuf.bench_micro.v3\",\n  \"hw_threads\": "
      << hw_threads << ",\n  \"gemm\": [\n";
    for (std::size_t i = 0; i < gemm_rows.size(); ++i) {
      const auto& r = gemm_rows[i];
      j << "    {\"m\": " << r.n << ", \"n\": " << r.n << ", \"k\": " << r.n
        << ", \"ref_ms\": " << fmt(r.t.ref_ms)
        << ", \"blocked_ms\": " << fmt(r.t.blocked_ms)
        << ", \"ref_gflops\": " << fmt(r.gflops(r.t.ref_ms))
        << ", \"blocked_gflops\": " << fmt(r.gflops(r.t.blocked_ms))
        << ", \"speedup\": " << fmt(r.t.speedup()) << "}"
        << (i + 1 < gemm_rows.size() ? "," : "") << "\n";
    }
    j << "  ],\n  \"conv1d\": [\n";
    for (std::size_t i = 0; i < conv_rows.size(); ++i) {
      const auto& r = conv_rows[i];
      j << "    {\"pass\": \"" << r.name
        << "\", \"ref_ms\": " << fmt(r.t.ref_ms)
        << ", \"blocked_ms\": " << fmt(r.t.blocked_ms)
        << ", \"speedup\": " << fmt(r.t.speedup()) << "}"
        << (i + 1 < conv_rows.size() ? "," : "") << "\n";
    }
    j << "  ],\n  \"train_iteration\": [\n";
    for (std::size_t i = 0; i < train_rows.size(); ++i) {
      const auto& r = train_rows[i];
      j << "    {\"model\": \"" << r.name
        << "\", \"ref_ms\": " << fmt(r.t.ref_ms)
        << ", \"blocked_ms\": " << fmt(r.t.blocked_ms)
        << ", \"speedup\": " << fmt(r.t.speedup()) << "}"
        << (i + 1 < train_rows.size() ? "," : "") << "\n";
    }
    j << "  ],\n  \"gemm_multicore\": [\n";
    for (std::size_t i = 0; i < mc_rows.size(); ++i) {
      const auto& r = mc_rows[i];
      j << "    {\"n\": " << mc_n << ", \"workers\": " << r.workers
        << ", \"ms\": " << fmt(r.ms)
        << ", \"gflops\": " << fmt(mc_gflops(r.ms)) << ", \"speedup_vs_1\": "
        << fmt(r.ms > 0.0 ? mc_ms1 / r.ms : 0.0) << "}"
        << (i + 1 < mc_rows.size() ? "," : "") << "\n";
    }
    j << "  ],\n  \"epoch_time\": [\n";
    for (std::size_t i = 0; i < epoch_rows.size(); ++i) {
      const auto& r = epoch_rows[i];
      j << "    {\"workers\": " << r.workers << ", \"ms\": " << fmt(r.ms)
        << "}" << (i + 1 < epoch_rows.size() ? "," : "") << "\n";
    }
    j << "  ],\n  \"obs_overhead\": [\n"
      << "    {\"workload\": \"overlap_epoch\", \"workers\": 4, \"off_ms\": "
      << fmt(obs_off_ms) << ", \"on_ms\": " << fmt(obs_on_ms)
      << ", \"overhead_frac\": " << fmt(obs_overhead_frac) << "}\n"
      << "  ]\n}\n";
    // Round-trip through the parser before writing: the tool never emits
    // a file its own --check would reject.
    json::parse(j.str());
    std::ofstream out(out_path);
    DSHUF_CHECK(out.good(), "cannot write " << out_path);
    out << j.str();
    std::cout << "wrote " << out_path << "\n";
  }
  return 0;
}
