// Fault-injection machinery at the comm layer: the seeded plan is a pure
// function of its inputs, the injector's drop/duplicate/delay/stall
// behaviours are observable through the timeout-aware receive API, and the
// whole schedule reproduces exactly from the fault seed.
// lint:tag-ok-file: exercises the raw transport — tags here name
// transport-level channels under test, not PLS exchange rounds.
#include "comm/fault.hpp"

#include <atomic>
#include <cstring>

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace dshuf::comm {
namespace {

std::vector<std::byte> bytes_of(int v) {
  std::vector<std::byte> b(sizeof(int));
  std::memcpy(b.data(), &v, sizeof(int));
  return b;
}

int int_of(const std::vector<std::byte>& b) {
  int v = 0;
  std::memcpy(&v, b.data(), sizeof(int));
  return v;
}

using std::chrono::milliseconds;

TEST(FaultPlan, DecisionsAreDeterministic) {
  FaultSpec spec;
  spec.drop_prob = 0.3;
  spec.dup_prob = 0.3;
  spec.delay_prob = 0.5;
  spec.min_delay_us = 100;
  spec.max_delay_us = 5000;
  const FaultPlan a(1234, spec);
  const FaultPlan b(1234, spec);
  for (int src = 0; src < 4; ++src) {
    for (int dst = 0; dst < 4; ++dst) {
      for (int tag = 0; tag < 8; ++tag) {
        for (std::uint64_t attempt = 0; attempt < 4; ++attempt) {
          const auto da = a.decide(src, dst, tag, attempt);
          const auto db = b.decide(src, dst, tag, attempt);
          EXPECT_EQ(da.drop, db.drop);
          EXPECT_EQ(da.duplicate, db.duplicate);
          EXPECT_EQ(da.delay_us, db.delay_us);
        }
      }
    }
  }
}

TEST(FaultPlan, DifferentSeedsDiffer) {
  FaultSpec spec;
  spec.drop_prob = 0.5;
  const FaultPlan a(1, spec);
  const FaultPlan b(2, spec);
  int differing = 0;
  for (int tag = 0; tag < 64; ++tag) {
    if (a.decide(0, 1, tag, 0).drop != b.decide(0, 1, tag, 0).drop) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultPlan, RetriesGetIndependentDecisions) {
  FaultSpec spec;
  spec.drop_prob = 0.5;
  const FaultPlan plan(7, spec);
  // Across many attempts on one link, both outcomes must occur — a retry
  // protocol would never converge if every attempt shared one decision.
  bool dropped = false;
  bool passed = false;
  for (std::uint64_t attempt = 0; attempt < 64; ++attempt) {
    (plan.decide(0, 1, 3, attempt).drop ? dropped : passed) = true;
  }
  EXPECT_TRUE(dropped);
  EXPECT_TRUE(passed);
}

TEST(FaultPlan, ZeroSpecIsTransparent) {
  const FaultPlan plan(99, FaultSpec{});
  for (int tag = 0; tag < 32; ++tag) {
    const auto d = plan.decide(0, 1, tag, 0);
    EXPECT_FALSE(d.drop);
    EXPECT_FALSE(d.duplicate);
    EXPECT_EQ(d.delay_us, 0U);
  }
}

TEST(ChaosComm, DroppedMessageTimesOutAndCancels) {
  FaultSpec spec;
  spec.drop_prob = 1.0;
  World world(2);
  world.set_fault_plan(FaultPlan(5, spec));
  world.run([](Communicator& c) {
    if (c.rank() == 0) {
      c.isend(1, 0, bytes_of(42));  // vanishes
    } else {
      const auto got = c.recv_for(0, 0, milliseconds(50));
      EXPECT_FALSE(got.has_value());
    }
  });
  const auto stats = world.fault_stats();
  EXPECT_EQ(stats.dropped, 1U);
  EXPECT_EQ(stats.delivered, 0U);
}

TEST(ChaosComm, DuplicateDeliversTwoCopies) {
  FaultSpec spec;
  spec.dup_prob = 1.0;
  World world(2);
  world.set_fault_plan(FaultPlan(5, spec));
  world.run([](Communicator& c) {
    if (c.rank() == 0) {
      c.isend(1, 0, bytes_of(7));
    } else {
      EXPECT_EQ(int_of(c.recv(0, 0).payload), 7);
      const auto dup = c.recv_for(0, 0, milliseconds(500));
      ASSERT_TRUE(dup.has_value());
      EXPECT_EQ(int_of(dup->payload), 7);
    }
  });
  EXPECT_EQ(world.fault_stats().duplicated, 1U);
}

TEST(ChaosComm, DelayedMessageArrivesLate) {
  FaultSpec spec;
  spec.delay_prob = 1.0;
  spec.min_delay_us = 30'000;
  spec.max_delay_us = 30'000;
  World world(2);
  world.set_fault_plan(FaultPlan(5, spec));
  world.run([](Communicator& c) {
    if (c.rank() == 0) {
      c.isend(1, 0, bytes_of(3));
    } else {
      Request r = c.irecv(0, 0);
      // Not yet due...
      EXPECT_FALSE(r.wait_for(std::chrono::microseconds(1000)));
      // ...but it must land once the delay elapses.
      EXPECT_TRUE(r.wait_for(milliseconds(2000)));
      EXPECT_EQ(int_of(r.message().payload), 3);
    }
  });
  EXPECT_EQ(world.fault_stats().delayed, 1U);
}

TEST(ChaosComm, DelaysReorderAcrossSources) {
  // Rank 0's message is delayed; rank 2's is not. Rank 1 receives with
  // ANY_SOURCE and must see the un-delayed source first even though both
  // sends were issued "simultaneously" — cross-source reordering.
  FaultSpec spec;
  spec.delay_prob = 1.0;
  spec.min_delay_us = 50'000;
  spec.max_delay_us = 50'000;
  World world(3);
  // Craft a plan seed where (0 -> 1) delays and (2 -> 1) does not by
  // giving rank 2's link no delay via the spec: simplest determinstic
  // construction is per-link behaviour from the same spec, so instead use
  // a barrier to order the sends and assert arrival order flips.
  world.set_fault_plan(FaultPlan(11, spec));
  world.run([](Communicator& c) {
    if (c.rank() == 0) {
      c.isend(1, 0, bytes_of(100));  // delayed 50 ms
      c.barrier();
    } else if (c.rank() == 2) {
      c.barrier();  // sends strictly after rank 0's isend returned
      // Give this message a distinct tag so its (src, tag) stream differs.
      c.isend(1, 1, bytes_of(200));
    } else {
      c.barrier();
      // Both in flight; the later-but-undelayed or shorter-delayed one may
      // overtake. We simply require both to arrive and the world to drain.
      const Message first = c.recv(kAnySource, kAnyTag);
      const Message second = c.recv(kAnySource, kAnyTag);
      EXPECT_NE(first.source, second.source);
      EXPECT_EQ(int_of(first.payload) + int_of(second.payload), 300);
    }
  });
  EXPECT_EQ(world.fault_stats().delivered, 2U);
}

TEST(ChaosComm, LoopbackIsExempt) {
  FaultSpec spec;
  spec.drop_prob = 1.0;
  World world(2);
  world.set_fault_plan(FaultPlan(5, spec));
  world.run([](Communicator& c) {
    // Self-sends never cross the wire, so even drop_prob = 1 delivers.
    c.isend(c.rank(), 9, bytes_of(c.rank()));
    EXPECT_EQ(int_of(c.recv(c.rank(), 9).payload), c.rank());
  });
  EXPECT_EQ(world.fault_stats().delivered, 2U);
  EXPECT_EQ(world.fault_stats().dropped, 0U);
}

TEST(ChaosComm, StallHoldsEarlySends) {
  FaultSpec spec;
  spec.stall_prob = 1.0;  // every rank stalls...
  spec.stall_us = 40'000;
  World world(2);
  world.set_fault_plan(FaultPlan(21, spec));
  world.run([](Communicator& c) {
    if (c.rank() == 0) {
      c.isend(1, 0, bytes_of(1));
    } else {
      Request r = c.irecv(0, 0);
      EXPECT_FALSE(r.wait_for(std::chrono::microseconds(1000)));
      EXPECT_TRUE(r.wait_for(milliseconds(2000)));
    }
  });
  EXPECT_EQ(world.fault_stats().stalled, 1U);
}

TEST(ChaosComm, FenceFlushesDelayedMessages) {
  FaultSpec spec;
  spec.delay_prob = 1.0;
  spec.min_delay_us = 5'000'000;  // would outlive the test without a fence
  spec.max_delay_us = 5'000'000;
  World world(2);
  world.set_fault_plan(FaultPlan(5, spec));
  world.run([](Communicator& c) {
    if (c.rank() == 0) c.isend(1, 0, bytes_of(8));
    c.barrier();
    c.fence_faults();
    if (c.rank() == 1) {
      const auto got = c.poll(kAnySource, kAnyTag);
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(int_of(got->payload), 8);
    }
  });
  EXPECT_EQ(world.fault_stats().flushed, 1U);
}

TEST(ChaosComm, PollOnlyTakesArrivedMessages) {
  World world(2);
  world.run([](Communicator& c) {
    if (c.rank() == 0) {
      EXPECT_FALSE(c.poll(1, 0).has_value());  // nothing sent yet
      c.barrier();
      const auto got = c.poll(kAnySource, kAnyTag);
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(int_of(got->payload), 4);
    } else {
      c.isend(0, 0, bytes_of(4));
      c.barrier();
    }
  });
}

TEST(ChaosComm, CancelRetiresPendingReceive) {
  World world(2);
  world.run([](Communicator& c) {
    if (c.rank() == 0) {
      Request r = c.irecv(1, 77);
      EXPECT_FALSE(r.wait_for(std::chrono::microseconds(500)));
      EXPECT_TRUE(c.cancel(r));
      EXPECT_TRUE(r.cancelled());
      c.barrier();
      // The message arrives AFTER the cancel; it must stay in the mailbox
      // for a fresh receive rather than matching the cancelled request.
      EXPECT_EQ(int_of(c.recv(1, 77).payload), 5);
    } else {
      c.barrier();
      c.isend(0, 77, bytes_of(5));
    }
  });
}

TEST(ChaosComm, CancelFailsOnCompletedRequest) {
  World world(2);
  world.run([](Communicator& c) {
    if (c.rank() == 0) {
      Request r = c.irecv(1, 0);
      r.wait();
      EXPECT_FALSE(c.cancel(r));  // already matched; message available
      EXPECT_EQ(int_of(r.message().payload), 6);
    } else {
      c.isend(0, 0, bytes_of(6));
    }
  });
}

TEST(ChaosComm, SameSeedReproducesTheSchedule) {
  FaultSpec spec;
  spec.drop_prob = 0.4;
  spec.dup_prob = 0.2;
  spec.delay_prob = 0.3;
  spec.min_delay_us = 100;
  spec.max_delay_us = 2000;

  auto run_once = [&](std::uint64_t fault_seed) {
    World world(4);
    world.set_fault_plan(FaultPlan(fault_seed, spec));
    std::atomic<int> received{0};
    world.run([&](Communicator& c) {
      constexpr int kMsgs = 16;
      for (int t = 0; t < kMsgs; ++t) {
        for (int d = 0; d < 4; ++d) {
          if (d != c.rank()) c.isend(d, t, bytes_of(t));
        }
      }
      c.barrier();
      c.fence_faults();
      while (c.poll(kAnySource, kAnyTag).has_value()) {
        received.fetch_add(1);
      }
      c.barrier();
    });
    return std::pair<FaultStats, int>(world.fault_stats(), received.load());
  };

  const auto [s1, r1] = run_once(777);
  const auto [s2, r2] = run_once(777);
  EXPECT_EQ(s1.dropped, s2.dropped);
  EXPECT_EQ(s1.duplicated, s2.duplicated);
  EXPECT_EQ(s1.delayed, s2.delayed);
  EXPECT_EQ(s1.delivered, s2.delivered);
  EXPECT_EQ(r1, r2);
  EXPECT_GT(s1.dropped, 0U);
  EXPECT_GT(s1.delivered, 0U);

  const auto [s3, r3] = run_once(778);
  EXPECT_NE(s1.dropped, s3.dropped);  // different seed, different schedule
}

TEST(ChaosComm, RerunResetsAttemptCounters) {
  // Attempt counters restart every run(): the same body over the same
  // world must observe the identical fault schedule both times.
  FaultSpec spec;
  spec.drop_prob = 0.5;
  World world(2);
  world.set_fault_plan(FaultPlan(31, spec));
  auto body = [](Communicator& c) {
    int got = 0;
    if (c.rank() == 0) {
      for (int t = 0; t < 12; ++t) c.isend(1, t, bytes_of(t));
      c.barrier();
    } else {
      c.barrier();
      c.fence_faults();
      while (c.poll(kAnySource, kAnyTag).has_value()) ++got;
    }
    return got;
  };
  std::atomic<int> first{-1};
  std::atomic<int> second{-2};
  world.run([&](Communicator& c) {
    const int g = body(c);
    if (c.rank() == 1) first.store(g);
  });
  world.run([&](Communicator& c) {
    const int g = body(c);
    if (c.rank() == 1) second.store(g);
  });
  EXPECT_EQ(first.load(), second.load());
}

TEST(ChaosComm, ClearFaultPlanRestoresPerfectDelivery) {
  FaultSpec spec;
  spec.drop_prob = 1.0;
  World world(2);
  world.set_fault_plan(FaultPlan(5, spec));
  world.run([](Communicator& c) {
    if (c.rank() == 0) c.isend(1, 0, bytes_of(1));
    if (c.rank() == 1) {
      EXPECT_FALSE(c.recv_for(0, 0, milliseconds(30)).has_value());
    }
  });
  world.clear_fault_plan();
  world.run([](Communicator& c) {
    EXPECT_FALSE(c.fault_injection_enabled());
    if (c.rank() == 0) c.isend(1, 0, bytes_of(2));
    if (c.rank() == 1) {
      EXPECT_EQ(int_of(c.recv(0, 0).payload), 2);
    }
  });
}

}  // namespace
}  // namespace dshuf::comm
