// lint:tag-ok-file: exercises the raw transport — tags here name
// transport-level channels under test, not PLS exchange rounds.
#include "comm/comm.hpp"

#include <atomic>
#include <cstring>
#include <numeric>

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace dshuf::comm {
namespace {

std::vector<std::byte> bytes_of(int v) {
  std::vector<std::byte> b(sizeof(int));
  std::memcpy(b.data(), &v, sizeof(int));
  return b;
}

int int_of(const std::vector<std::byte>& b) {
  int v = 0;
  std::memcpy(&v, b.data(), sizeof(int));
  return v;
}

TEST(Comm, PointToPointSendRecv) {
  World world(2);
  world.run([](Communicator& c) {
    if (c.rank() == 0) {
      c.isend(1, /*tag=*/7, bytes_of(42));
    } else {
      const Message m = c.recv(0, 7);
      EXPECT_EQ(int_of(m.payload), 42);
      EXPECT_EQ(m.source, 0);
      EXPECT_EQ(m.tag, 7);
    }
  });
}

TEST(Comm, AnySourceMatchesWhoeverSends) {
  World world(3);
  world.run([](Communicator& c) {
    if (c.rank() != 0) {
      c.isend(0, 1, bytes_of(c.rank()));
    } else {
      int sum = 0;
      for (int i = 0; i < 2; ++i) {
        const Message m = c.recv(kAnySource, 1);
        sum += int_of(m.payload);
      }
      EXPECT_EQ(sum, 3);  // 1 + 2
    }
  });
}

TEST(Comm, TagsSelectMessages) {
  World world(2);
  world.run([](Communicator& c) {
    if (c.rank() == 0) {
      c.isend(1, /*tag=*/5, bytes_of(55));
      c.isend(1, /*tag=*/9, bytes_of(99));
    } else {
      // Receive tag 9 first even though tag 5 arrived first.
      const Message m9 = c.recv(0, 9);
      EXPECT_EQ(int_of(m9.payload), 99);
      const Message m5 = c.recv(0, 5);
      EXPECT_EQ(int_of(m5.payload), 55);
    }
  });
}

TEST(Comm, NonOvertakingPerSourceAndTag) {
  World world(2);
  world.run([](Communicator& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 16; ++i) c.isend(1, 3, bytes_of(i));
    } else {
      for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(int_of(c.recv(0, 3).payload), i);
      }
    }
  });
}

TEST(Comm, IrecvParksUntilMessageArrives) {
  World world(2);
  world.run([](Communicator& c) {
    if (c.rank() == 1) {
      Request r = c.irecv(0, 2);
      // Possibly not done yet; wait() must complete once rank 0 sends.
      r.wait();
      EXPECT_EQ(int_of(r.message().payload), 7);
    } else {
      c.isend(1, 2, bytes_of(7));
    }
  });
}

TEST(Comm, WaitAllCompletesMixedRequests) {
  World world(2);
  world.run([](Communicator& c) {
    std::vector<Request> reqs;
    const int peer = 1 - c.rank();
    for (int i = 0; i < 8; ++i) {
      reqs.push_back(c.isend(peer, i, bytes_of(i)));
      reqs.push_back(c.irecv(peer, i));
    }
    wait_all(reqs);
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(int_of(reqs[2 * i + 1].message().payload), i);
    }
  });
}

TEST(Comm, BarrierSynchronises) {
  World world(4);
  std::atomic<int> before{0};
  std::atomic<int> after{0};
  world.run([&](Communicator& c) {
    before.fetch_add(1);
    c.barrier();
    // Every rank must have passed `before` by now.
    EXPECT_EQ(before.load(), 4);
    after.fetch_add(1);
  });
  EXPECT_EQ(after.load(), 4);
}

TEST(Comm, AllreduceSumsContributions) {
  World world(4);
  world.run([](Communicator& c) {
    const std::vector<double> contrib{static_cast<double>(c.rank()), 1.0};
    const auto sum = c.allreduce_sum(contrib);
    ASSERT_EQ(sum.size(), 2U);
    EXPECT_DOUBLE_EQ(sum[0], 0 + 1 + 2 + 3);
    EXPECT_DOUBLE_EQ(sum[1], 4.0);
  });
}

TEST(Comm, AllreduceIsBitwiseIdenticalAcrossRanks) {
  World world(3);
  std::vector<std::vector<double>> results(3);
  world.run([&](Communicator& c) {
    std::vector<double> contrib(5);
    for (std::size_t i = 0; i < 5; ++i) {
      contrib[i] = 0.1 * (c.rank() + 1) * static_cast<double>(i);
    }
    results[static_cast<std::size_t>(c.rank())] = c.allreduce_sum(contrib);
  });
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[1], results[2]);
}

TEST(Comm, BcastDistributesRootPayload) {
  World world(3);
  world.run([](Communicator& c) {
    std::vector<std::byte> payload;
    if (c.rank() == 1) payload = bytes_of(1234);
    const auto got = c.bcast(1, payload);
    EXPECT_EQ(int_of(got), 1234);
  });
}

TEST(Comm, AlltoallvPersonalisedExchange) {
  World world(3);
  world.run([](Communicator& c) {
    std::vector<std::vector<std::byte>> send(3);
    for (int d = 0; d < 3; ++d) {
      send[d] = bytes_of(c.rank() * 10 + d);
    }
    const auto got = c.alltoallv(std::move(send));
    ASSERT_EQ(got.size(), 3U);
    for (int s = 0; s < 3; ++s) {
      EXPECT_EQ(int_of(got[s]), s * 10 + c.rank());
    }
  });
}

TEST(Comm, GatherCollectsAtRootOnly) {
  World world(4);
  world.run([](Communicator& c) {
    const auto got = c.gather(2, bytes_of(c.rank() * 11));
    if (c.rank() == 2) {
      ASSERT_EQ(got.size(), 4U);
      for (int s = 0; s < 4; ++s) EXPECT_EQ(int_of(got[s]), s * 11);
    } else {
      EXPECT_TRUE(got.empty());
    }
  });
}

TEST(Comm, AllgatherGivesEveryoneEverything) {
  World world(3);
  world.run([](Communicator& c) {
    const auto got = c.allgather(bytes_of(100 + c.rank()));
    ASSERT_EQ(got.size(), 3U);
    for (int s = 0; s < 3; ++s) EXPECT_EQ(int_of(got[s]), 100 + s);
  });
}

TEST(Comm, ReduceSumDeliversAtRoot) {
  World world(4);
  world.run([](Communicator& c) {
    const std::vector<double> contrib{static_cast<double>(c.rank() + 1)};
    const auto got = c.reduce_sum(0, contrib);
    if (c.rank() == 0) {
      ASSERT_EQ(got.size(), 1U);
      EXPECT_DOUBLE_EQ(got[0], 1 + 2 + 3 + 4);
    } else {
      EXPECT_TRUE(got.empty());
    }
  });
}

TEST(Comm, ScatterDistributesRootShares) {
  World world(3);
  world.run([](Communicator& c) {
    std::vector<std::vector<std::byte>> shares;
    if (c.rank() == 1) {
      for (int d = 0; d < 3; ++d) shares.push_back(bytes_of(d * 7));
    }
    const auto mine = c.scatter(1, std::move(shares));
    EXPECT_EQ(int_of(mine), c.rank() * 7);
  });
}

TEST(Comm, ExceptionInOneRankPropagatesAndUnblocksOthers) {
  World world(2);
  EXPECT_THROW(world.run([](Communicator& c) {
                 if (c.rank() == 0) {
                   throw CheckError("rank 0 failure");
                 }
                 // Rank 1 would deadlock on this barrier without abort
                 // handling.
                 c.barrier();
               }),
               CheckError);
}

TEST(Comm, UndrainedMailboxIsAnError) {
  World world(2);
  EXPECT_THROW(world.run([](Communicator& c) {
                 if (c.rank() == 0) c.isend(1, 0, bytes_of(1));
                 // Rank 1 never receives.
               }),
               CheckError);
}

TEST(Comm, WorldCanRunMultipleTimes) {
  World world(2);
  for (int round = 0; round < 3; ++round) {
    world.run([round](Communicator& c) {
      if (c.rank() == 0) {
        c.isend(1, round, bytes_of(round));
      } else {
        EXPECT_EQ(int_of(c.recv(0, round).payload), round);
      }
    });
  }
}

TEST(Comm, ManyRanksStress) {
  constexpr int kRanks = 16;
  World world(kRanks);
  world.run([](Communicator& c) {
    // Ring: send to the right, receive from the left, several laps.
    const int right = (c.rank() + 1) % kRanks;
    const int left = (c.rank() + kRanks - 1) % kRanks;
    int token = c.rank();
    for (int lap = 0; lap < 4; ++lap) {
      c.isend(right, lap, bytes_of(token));
      token = int_of(c.recv(left, lap).payload);
    }
    // After 4 laps the token originated 4 ranks to the left.
    EXPECT_EQ(token, (c.rank() + kRanks - 4) % kRanks);
  });
}

TEST(Comm, RejectsInvalidRanks) {
  World world(2);
  EXPECT_THROW(world.run([](Communicator& c) {
                 if (c.rank() == 0) c.isend(5, 0, {});
                 c.barrier();
               }),
               CheckError);
}

}  // namespace
}  // namespace dshuf::comm
