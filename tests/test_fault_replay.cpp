// Fault-schedule replay regression: the injector's behaviour must be a
// pure function of the fault seed. Two runs with the same seed have to
// produce the identical delivery trace — same messages dropped, same
// copies duplicated, same delays drawn — regardless of how the rank
// threads and the injector's timer thread happen to interleave. Wall
// clock still reorders *arrival*, so traces are compared as sorted
// multisets, never as raw sequences.
// lint:tag-ok-file: exercises the raw transport — tags here name
// transport-level channels under test, not PLS exchange rounds.
#include "comm/fault.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <mutex>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "comm/comm.hpp"

namespace dshuf::comm {
namespace {

constexpr int kRanks = 3;
constexpr int kTags = 3;
constexpr int kSendsPerLink = 6;

FaultSpec lossy_spec() {
  FaultSpec spec;
  spec.drop_prob = 0.25;
  spec.dup_prob = 0.25;
  spec.delay_prob = 0.5;
  spec.min_delay_us = 100;
  spec.max_delay_us = 2'000;
  return spec;
}

/// One delivered copy, as observed by a receiver.
using TraceEntry = std::tuple<int /*dest*/, int /*source*/, int /*tag*/,
                              int /*payload*/>;

struct RunResult {
  std::vector<TraceEntry> trace;  // sorted
  FaultStats stats;
};

int payload_value(int source, int tag, int k) {
  return (source * 100 + tag) * 100 + k;
}

/// All-to-all blast under the given fault seed; every rank drains its
/// mailbox after a fence, so the trace is the complete set of copies the
/// injector chose to deliver.
RunResult run_once(std::uint64_t seed) {
  World world(kRanks);
  world.set_fault_plan(FaultPlan(seed, lossy_spec()));
  std::mutex trace_mu;
  std::vector<TraceEntry> trace;
  world.run([&](Communicator& c) {
    for (int tag = 0; tag < kTags; ++tag) {
      for (int k = 0; k < kSendsPerLink; ++k) {
        for (int dest = 0; dest < kRanks; ++dest) {
          if (dest == c.rank()) continue;
          std::vector<std::byte> payload(sizeof(int));
          const int v = payload_value(c.rank(), tag, k);
          std::memcpy(payload.data(), &v, sizeof(int));
          c.isend(dest, tag, std::move(payload));
        }
      }
    }
    c.barrier();       // all sends issued everywhere
    c.fence_faults();  // flush delayed copies, quiesce the injector
    std::vector<TraceEntry> mine;
    while (const auto m = c.poll(kAnySource, kAnyTag)) {
      int v = 0;
      std::memcpy(&v, m->payload.data(), sizeof(int));
      mine.emplace_back(c.rank(), m->source, m->tag, v);
    }
    std::lock_guard<std::mutex> lk(trace_mu);
    trace.insert(trace.end(), mine.begin(), mine.end());
  });
  std::sort(trace.begin(), trace.end());
  return {std::move(trace), world.fault_stats()};
}

TEST(FaultReplay, SameSeedSameDeliveryTrace) {
  const auto a = run_once(/*seed=*/424242);
  const auto b = run_once(/*seed=*/424242);
  EXPECT_EQ(a.trace, b.trace);
  // The counter block must replay too — not just the surviving messages.
  EXPECT_EQ(a.stats.submitted, b.stats.submitted);
  EXPECT_EQ(a.stats.dropped, b.stats.dropped);
  EXPECT_EQ(a.stats.duplicated, b.stats.duplicated);
  EXPECT_EQ(a.stats.delayed, b.stats.delayed);
  EXPECT_EQ(a.stats.delivered, b.stats.delivered);
  // Sanity: the spec actually exercised every fault class.
  EXPECT_GT(a.stats.dropped, 0U);
  EXPECT_GT(a.stats.duplicated, 0U);
  EXPECT_GT(a.stats.delayed, 0U);
}

TEST(FaultReplay, TraceMatchesThePlanOracle) {
  // The observed trace must equal what a fresh FaultPlan predicts from
  // (seed, link, attempt) alone — delivery is plan-driven, not timing-
  // driven. Attempt numbers count per (source, dest, tag) link in send
  // order, which each rank's deterministic loop fixes as k = 0..N-1.
  const std::uint64_t seed = 987654;
  const FaultPlan oracle(seed, lossy_spec());
  std::vector<TraceEntry> expected;
  for (int src = 0; src < kRanks; ++src) {
    for (int dest = 0; dest < kRanks; ++dest) {
      if (dest == src) continue;
      for (int tag = 0; tag < kTags; ++tag) {
        for (int k = 0; k < kSendsPerLink; ++k) {
          const auto d = oracle.decide(src, dest, tag,
                                       static_cast<std::uint64_t>(k));
          if (d.drop) continue;
          const int copies = d.duplicate ? 2 : 1;
          for (int copy = 0; copy < copies; ++copy) {
            expected.emplace_back(dest, src, tag,
                                  payload_value(src, tag, k));
          }
        }
      }
    }
  }
  std::sort(expected.begin(), expected.end());
  const auto run = run_once(seed);
  EXPECT_EQ(run.trace, expected);
}

TEST(FaultReplay, DifferentSeedsProduceDifferentSchedules) {
  // Compared at the plan level so the check is exact, not probabilistic
  // over thread timing.
  const FaultPlan a(1, lossy_spec());
  const FaultPlan b(2, lossy_spec());
  int differing = 0;
  for (int tag = 0; tag < kTags; ++tag) {
    for (int k = 0; k < 32; ++k) {
      const auto da = a.decide(0, 1, tag, static_cast<std::uint64_t>(k));
      const auto db = b.decide(0, 1, tag, static_cast<std::uint64_t>(k));
      if (da.drop != db.drop || da.duplicate != db.duplicate ||
          da.delay_us != db.delay_us) {
        ++differing;
      }
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultReplay, AttemptCountersResetBetweenRuns) {
  // World::run calls begin_run(), so two consecutive runs inside one
  // World see the same attempt numbering — the second run must replay
  // the first run's schedule exactly.
  World world(2);
  world.set_fault_plan(FaultPlan(77, lossy_spec()));
  std::array<std::vector<TraceEntry>, 2> traces;
  for (int round = 0; round < 2; ++round) {
    auto& trace = traces[static_cast<std::size_t>(round)];
    std::mutex trace_mu;
    world.run([&](Communicator& c) {
      for (int k = 0; k < kSendsPerLink; ++k) {
        std::vector<std::byte> payload(sizeof(int));
        const int v = payload_value(c.rank(), 0, k);
        std::memcpy(payload.data(), &v, sizeof(int));
        c.isend(1 - c.rank(), 0, std::move(payload));
      }
      c.barrier();
      c.fence_faults();
      std::vector<TraceEntry> mine;
      while (const auto m = c.poll(kAnySource, kAnyTag)) {
        int v = 0;
        std::memcpy(&v, m->payload.data(), sizeof(int));
        mine.emplace_back(c.rank(), m->source, m->tag, v);
      }
      std::lock_guard<std::mutex> lk(trace_mu);
      trace.insert(trace.end(), mine.begin(), mine.end());
    });
    std::sort(trace.begin(), trace.end());
  }
  EXPECT_EQ(traces[0], traces[1]);
}

}  // namespace
}  // namespace dshuf::comm
