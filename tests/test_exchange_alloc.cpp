// Allocation-free steady state for the coalesced exchange data path.
//
// This TU replaces the global operator new/delete with counting wrappers
// (the same pattern as test_workspace.cpp, which guards the training hot
// path) so it can assert an exact zero: after warmup epochs size the
// ExchangeScratch tables, the comm buffer pool, the mailbox ring queues,
// the shard-store index, and the metrics-registry statics to their
// high-water marks, a full exchange epoch — plan rebuild, frame packing,
// send, blocking receive, round-ordered staging with payload deposits,
// and the post-exchange local shuffle — performs no heap allocation at
// all, on any rank thread.
//
// The counter is process-global, so the measured window is bracketed with
// barriers: every rank finishes warmup before the baseline is read, and
// every rank finishes the measured epochs before the delta is read. A
// zero therefore proves the WHOLE exchange allocation-free, not just one
// rank's slice. gtest assertions allocate on their own, so the measured
// region records into plain pre-sized arrays and the checks run after
// World::run returns.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "comm/comm.hpp"
#include "shuffle/exchange_plan.hpp"
#include "shuffle/exchange_wire.hpp"
#include "shuffle/mpi_exchange.hpp"
#include "shuffle/shuffler.hpp"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dshuf::shuffle {
namespace {

constexpr int kRanks = 4;
constexpr std::size_t kShard = 32;       // per-rank samples
constexpr double kQ = 0.5;               // quota = 16
constexpr std::size_t kPayload = 32;     // bytes per sample
constexpr std::uint64_t kSeed = 2026;
constexpr std::size_t kWarmupEpochs = 6;
constexpr std::size_t kMeasuredEpochs = 4;

TEST(ExchangeAlloc, CoalescedSteadyStateAllocatesNothing) {
  ScopedExchangeWire wire(ExchangeWire::kCoalesced);

  const std::size_t quota = exchange_quota(kShard, kQ);
  ASSERT_GT(quota, 0U);

  std::vector<ShardStore> stores;
  std::vector<ExchangeScratch> scratch(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    std::vector<SampleId> shard;
    for (std::size_t i = 0; i < kShard; ++i) {
      shard.push_back(static_cast<SampleId>(
          static_cast<std::size_t>(r) * kShard + i));
    }
    stores.emplace_back(std::move(shard), kShard + quota);
  }

  // Payload/deposit pair exercised on every sample; the deposit verifies
  // the bytes without gtest (no allocation on the hot path).
  const PayloadFn payload = [](SampleId id, std::vector<std::byte>& out) {
    for (std::size_t b = 0; b < kPayload; ++b) {
      out.push_back(static_cast<std::byte>((id + b) & 0xFF));
    }
  };
  std::atomic<std::uint64_t> bad_deposits{0};
  const DepositFn deposit = [&bad_deposits](SampleId id,
                                            std::span<const std::byte> body) {
    bool ok = body.size() == kPayload;
    for (std::size_t b = 0; ok && b < body.size(); ++b) {
      ok = body[b] == static_cast<std::byte>((id + b) & 0xFF);
    }
    if (!ok) bad_deposits.fetch_add(1, std::memory_order_relaxed);
  };

  std::uint64_t before = 0;
  std::uint64_t after = 0;
  // Per-(rank, epoch) outcome fields, pre-sized so the measured region
  // only writes through pointers.
  std::vector<std::size_t> msgs(kRanks * kMeasuredEpochs, 0);
  std::vector<std::size_t> recvs(kRanks * kMeasuredEpochs, 0);

  comm::World world(kRanks);
  world.run([&](comm::Communicator& c) {
    const auto r = static_cast<std::size_t>(c.rank());
    auto& store = stores[r];
    auto& s = scratch[r];

    const auto epoch_step = [&](std::size_t epoch) {
      const ExchangeOutcome out = run_pls_exchange_epoch(
          c, store, kSeed, epoch, kQ, kShard, payload, deposit,
          /*robust=*/nullptr, &s);
      post_exchange_local_shuffle(kSeed, epoch, c.rank(),
                                  store.mutable_ids());
      return out;
    };

    // Warmup: size every buffer, table, pool slot, and registry static to
    // its high-water mark, and exercise the barrier path itself.
    for (std::size_t e = 0; e < kWarmupEpochs; ++e) epoch_step(e);
    c.barrier();
    c.barrier();

    if (c.rank() == 0) before = g_allocs.load(std::memory_order_relaxed);
    c.barrier();

    for (std::size_t e = 0; e < kMeasuredEpochs; ++e) {
      const ExchangeOutcome out = epoch_step(kWarmupEpochs + e);
      msgs[r * kMeasuredEpochs + e] = out.msgs_sent;
      recvs[r * kMeasuredEpochs + e] = out.recvs_committed;
    }
    c.barrier();

    if (c.rank() == 0) after = g_allocs.load(std::memory_order_relaxed);
  });

  // The acceptance bar: not "few", ZERO heap allocations across all four
  // rank threads for four full exchange epochs.
  EXPECT_EQ(after - before, 0U)
      << "steady-state exchange performed " << (after - before)
      << " heap allocations over " << kMeasuredEpochs << " epochs";

  // The window really did run the exchange: every rank committed its full
  // quota each epoch over at most M coalesced messages (the plan may route
  // some rounds back to the sender itself, so self is a valid frame
  // destination), and every deposited payload carried the expected bytes.
  EXPECT_EQ(bad_deposits.load(), 0U);
  for (int r = 0; r < kRanks; ++r) {
    for (std::size_t e = 0; e < kMeasuredEpochs; ++e) {
      const std::size_t i =
          static_cast<std::size_t>(r) * kMeasuredEpochs + e;
      EXPECT_EQ(recvs[i], quota) << "rank " << r << " epoch " << e;
      EXPECT_LE(msgs[i], static_cast<std::size_t>(kRanks));
      EXPECT_GE(msgs[i], 1U);
    }
  }
}

}  // namespace
}  // namespace dshuf::shuffle
