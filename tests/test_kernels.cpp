// Equivalence and determinism tests for the blocked compute kernels.
//
// The blocked GEMM must match the retained reference kernel numerically
// on every shape class (edge tiles, single rows/cols, sizes straddling
// the micro-tile), and — per the determinism contract in
// tensor/gemm_kernel.hpp — must be bit-identical across repeated runs
// and across cache-block configurations. Conv1d's im2col+GEMM path is
// checked against the scalar reference both ways through the layer.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "nn/conv.hpp"
#include "tensor/gemm_kernel.hpp"
#include "tensor/im2col.hpp"
#include "tensor/kernel_ref.hpp"
#include "tensor/tensor.hpp"

namespace {

using namespace dshuf;

constexpr std::size_t kSizes[] = {1, 3, 7, 17, 64, 100};

// Reference and blocked kernels both accumulate each output element in a
// single ascending-k float chain, but vectorization/FMA may contract
// differently; a small absolute tolerance on unit-scale data covers it.
constexpr float kTol = 1e-3F;

float max_abs_diff(const Tensor& a, const Tensor& b) {
  EXPECT_EQ(a.size(), b.size());
  float m = 0.0F;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a.data()[i] - b.data()[i]));
  }
  return m;
}

using GemmFn = void (*)(const Tensor&, const Tensor&, Tensor&, bool);

struct Variant {
  const char* name;
  GemmFn fn;
  // Shapes of (a, b, out) for logical result M x N with inner dim K.
  bool a_is_km;  // a stored [K, M] (gemm_at_b)
  bool b_is_nk;  // b stored [N, K] (gemm_a_bt)
};

constexpr Variant kVariants[] = {
    {"gemm", gemm, false, false},
    {"gemm_at_b", gemm_at_b, true, false},
    {"gemm_a_bt", gemm_a_bt, false, true},
};

TEST(GemmEquivalence, BlockedMatchesReferenceAllVariants) {
  Rng rng(11);
  for (const auto& v : kVariants) {
    for (std::size_t m : kSizes) {
      for (std::size_t n : kSizes) {
        for (std::size_t k : kSizes) {
          const Tensor a = Tensor::randn(v.a_is_km ? std::vector<std::size_t>{k, m}
                                                   : std::vector<std::size_t>{m, k},
                                         rng);
          const Tensor b = Tensor::randn(v.b_is_nk ? std::vector<std::size_t>{n, k}
                                                   : std::vector<std::size_t>{k, n},
                                         rng);
          Tensor blocked({m, n});
          Tensor ref({m, n});
          {
            const ScopedKernelBackend s(KernelBackend::kBlocked);
            v.fn(a, b, blocked, false);
          }
          {
            const ScopedKernelBackend s(KernelBackend::kReference);
            v.fn(a, b, ref, false);
          }
          ASSERT_LE(max_abs_diff(blocked, ref), kTol)
              << v.name << " m=" << m << " n=" << n << " k=" << k;
        }
      }
    }
  }
}

TEST(GemmEquivalence, AccumulateAddsOntoExistingOutput) {
  Rng rng(13);
  for (const auto& v : kVariants) {
    const std::size_t m = 17;
    const std::size_t n = 100;
    const std::size_t k = 7;
    const Tensor a =
        Tensor::randn(v.a_is_km ? std::vector<std::size_t>{k, m}
                                : std::vector<std::size_t>{m, k},
                      rng);
    const Tensor b =
        Tensor::randn(v.b_is_nk ? std::vector<std::size_t>{n, k}
                                : std::vector<std::size_t>{k, n},
                      rng);
    const Tensor seed = Tensor::randn({m, n}, rng);
    Tensor blocked;
    copy_into(seed, blocked);
    Tensor ref;
    copy_into(seed, ref);
    {
      const ScopedKernelBackend s(KernelBackend::kBlocked);
      v.fn(a, b, blocked, true);
    }
    {
      const ScopedKernelBackend s(KernelBackend::kReference);
      v.fn(a, b, ref, true);
    }
    ASSERT_LE(max_abs_diff(blocked, ref), kTol) << v.name;
    // And the accumulate really added onto the seed, not overwrote it.
    Tensor plain({m, n});
    {
      const ScopedKernelBackend s(KernelBackend::kBlocked);
      v.fn(a, b, plain, false);
    }
    float m_diff = 0.0F;
    for (std::size_t i = 0; i < plain.size(); ++i) {
      m_diff = std::max(m_diff, std::fabs(blocked.data()[i] - seed.data()[i] -
                                          plain.data()[i]));
    }
    ASSERT_LE(m_diff, kTol) << v.name;
  }
}

TEST(GemmDeterminism, BitIdenticalAcrossRuns) {
  Rng rng(17);
  for (std::size_t m : {std::size_t{7}, std::size_t{100}}) {
    const std::size_t n = 65;
    const std::size_t k = 33;
    const Tensor a = Tensor::randn({m, k}, rng);
    const Tensor b = Tensor::randn({k, n}, rng);
    Tensor out1({m, n});
    Tensor out2({m, n});
    kernel::gemm_blocked(a.data(), b.data(), out1.data(), m, n, k, false,
                         false, false);
    kernel::gemm_blocked(a.data(), b.data(), out2.data(), m, n, k, false,
                         false, false);
    ASSERT_EQ(std::memcmp(out1.data(), out2.data(), m * n * sizeof(float)), 0)
        << "m=" << m;
  }
}

TEST(GemmDeterminism, BitIdenticalAcrossBlockConfigs) {
  // The determinism contract: results are independent of the cache-block
  // configuration because there is no K-blocking and padded edge lanes
  // are never stored. Exercised across all three transpose modes with
  // blocks far smaller than, equal to, and larger than the problem.
  const kernel::BlockConfig configs[] = {{64, 512}, {24, 56}, {8, 32}};
  Rng rng(19);
  const std::size_t m = 50;
  const std::size_t n = 70;
  const std::size_t k = 90;
  for (bool at : {false, true}) {
    for (bool bt : {false, true}) {
      if (at && bt) continue;  // no public entry point uses both
      const Tensor a = Tensor::randn(at ? std::vector<std::size_t>{k, m}
                                        : std::vector<std::size_t>{m, k},
                                     rng);
      const Tensor b = Tensor::randn(bt ? std::vector<std::size_t>{n, k}
                                        : std::vector<std::size_t>{k, n},
                                     rng);
      Tensor base({m, n});
      kernel::gemm_blocked(a.data(), b.data(), base.data(), m, n, k, at, bt,
                           false, configs[0]);
      for (std::size_t c = 1; c < std::size(configs); ++c) {
        Tensor out({m, n});
        kernel::gemm_blocked(a.data(), b.data(), out.data(), m, n, k, at, bt,
                             false, configs[c]);
        ASSERT_EQ(
            std::memcmp(base.data(), out.data(), m * n * sizeof(float)), 0)
            << "at=" << at << " bt=" << bt << " config " << c;
      }
    }
  }
}

TEST(Im2col, ColumnsMatchDirectIndexing) {
  const std::size_t n_batch = 2;
  const std::size_t in_c = 3;
  const std::size_t length = 7;
  const std::size_t kernel = 5;
  const std::size_t pad = kernel / 2;
  Rng rng(23);
  const Tensor x = Tensor::randn({n_batch, in_c * length}, rng);
  Tensor cols;
  kernel::im2col_1d(x.data(), n_batch, in_c, length, kernel, cols);
  ASSERT_EQ(cols.rows(), in_c * kernel);
  ASSERT_EQ(cols.cols(), n_batch * length);
  for (std::size_t ic = 0; ic < in_c; ++ic) {
    for (std::size_t kk = 0; kk < kernel; ++kk) {
      for (std::size_t nb = 0; nb < n_batch; ++nb) {
        for (std::size_t t = 0; t < length; ++t) {
          const std::ptrdiff_t src = static_cast<std::ptrdiff_t>(t + kk) -
                                     static_cast<std::ptrdiff_t>(pad);
          float expect = 0.0F;
          if (src >= 0 && src < static_cast<std::ptrdiff_t>(length)) {
            expect = x.data()[nb * in_c * length + ic * length +
                              static_cast<std::size_t>(src)];
          }
          const float got =
              cols.data()[(ic * kernel + kk) * (n_batch * length) +
                          nb * length + t];
          ASSERT_EQ(got, expect) << "ic=" << ic << " k=" << kk << " n=" << nb
                                 << " t=" << t;
        }
      }
    }
  }
}

TEST(Im2col, Col2imIsAdjoint) {
  // <im2col(x), d> must equal <x, col2im(d)> — the defining property of
  // the backward scatter.
  const std::size_t n_batch = 3;
  const std::size_t in_c = 4;
  const std::size_t length = 9;
  for (std::size_t kernel : {std::size_t{1}, std::size_t{3}, std::size_t{5}}) {
    Rng rng(29);
    const Tensor x = Tensor::randn({n_batch, in_c * length}, rng);
    Tensor cols;
    kernel::im2col_1d(x.data(), n_batch, in_c, length, kernel, cols);
    const Tensor d = Tensor::randn({cols.rows(), cols.cols()}, rng);
    Tensor back({n_batch, in_c * length});
    back.fill(0.0F);
    kernel::col2im_1d(d, n_batch, in_c, length, kernel, back.data());
    double lhs = 0.0;
    for (std::size_t i = 0; i < cols.size(); ++i) {
      lhs += static_cast<double>(cols.data()[i]) * d.data()[i];
    }
    double rhs = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      rhs += static_cast<double>(x.data()[i]) * back.data()[i];
    }
    ASSERT_NEAR(lhs, rhs, 1e-3) << "kernel=" << kernel;
  }
}

TEST(Conv1dEquivalence, ForwardMatchesReference) {
  for (std::size_t kernel : {std::size_t{1}, std::size_t{3}, std::size_t{5}}) {
    Rng rng_b(31);
    Rng rng_r(31);
    nn::Conv1d conv_b(3, 5, 11, kernel, rng_b);
    nn::Conv1d conv_r(3, 5, 11, kernel, rng_r);
    Rng xrng(37);
    const Tensor x = Tensor::randn({6, 3 * 11}, xrng);
    Tensor y_b;
    Tensor y_r;
    {
      const ScopedKernelBackend s(KernelBackend::kBlocked);
      conv_b.forward_into(x, y_b, true);
    }
    {
      const ScopedKernelBackend s(KernelBackend::kReference);
      conv_r.forward_into(x, y_r, true);
    }
    ASSERT_EQ(y_b.rows(), 6U);
    ASSERT_EQ(y_b.cols(), 5U * 11U);
    ASSERT_LE(max_abs_diff(y_b, y_r), kTol) << "kernel=" << kernel;
  }
}

TEST(Conv1dEquivalence, BackwardMatchesReference) {
  for (std::size_t kernel : {std::size_t{1}, std::size_t{3}, std::size_t{5}}) {
    Rng rng_b(41);
    Rng rng_r(41);
    nn::Conv1d conv_b(3, 5, 11, kernel, rng_b);
    nn::Conv1d conv_r(3, 5, 11, kernel, rng_r);
    Rng xrng(43);
    const Tensor x = Tensor::randn({6, 3 * 11}, xrng);
    const Tensor g = Tensor::randn({6, 5 * 11}, xrng);
    Tensor y;
    Tensor gi_b;
    Tensor gi_r;
    {
      const ScopedKernelBackend s(KernelBackend::kBlocked);
      conv_b.forward_into(x, y, true);
      conv_b.backward_into(g, gi_b);
    }
    {
      const ScopedKernelBackend s(KernelBackend::kReference);
      conv_r.forward_into(x, y, true);
      conv_r.backward_into(g, gi_r);
    }
    ASSERT_LE(max_abs_diff(gi_b, gi_r), kTol) << "kernel=" << kernel;
    const auto pb = conv_b.params();
    const auto pr = conv_r.params();
    ASSERT_EQ(pb.size(), pr.size());
    for (std::size_t i = 0; i < pb.size(); ++i) {
      ASSERT_LE(max_abs_diff(pb[i]->grad, pr[i]->grad), kTol)
          << "kernel=" << kernel << " param " << pb[i]->name;
    }
  }
}

}  // namespace
