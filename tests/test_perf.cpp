#include "perf/perf_model.hpp"

#include <gtest/gtest.h>

namespace dshuf::perf {
namespace {

using shuffle::Strategy;

EpochModel abci_resnet() {
  return EpochModel(io::abci_profile(), resnet50_profile());
}

WorkloadShape imagenet(std::size_t workers, std::size_t batch = 32) {
  return WorkloadShape{.dataset_samples = 1'200'000,
                       .workers = workers,
                       .local_batch = batch};
}

TEST(PerfModel, GlobalIsSlowerThanLocal) {
  const auto model = abci_resnet();
  for (std::size_t m : {64U, 128U, 512U, 2048U}) {
    const auto gs = model.epoch(imagenet(m), Strategy::kGlobal, 0);
    const auto ls = model.epoch(imagenet(m), Strategy::kLocal, 0);
    EXPECT_GT(gs.total(), 1.5 * ls.total()) << "m=" << m;
  }
}

TEST(PerfModel, GlobalToLocalGapGrowsWithScale) {
  const auto model = abci_resnet();
  const auto r128 = model.epoch(imagenet(128), Strategy::kGlobal, 0).total() /
                    model.epoch(imagenet(128), Strategy::kLocal, 0).total();
  const auto r2048 =
      model.epoch(imagenet(2048), Strategy::kGlobal, 0).total() /
      model.epoch(imagenet(2048), Strategy::kLocal, 0).total();
  EXPECT_GT(r128, 2.0);   // the paper reports ~5x at 128
  EXPECT_GT(r2048, r128);  // contention worsens with readers
}

TEST(PerfModel, PartialLowQMatchesLocalAtModerateScale) {
  // Fig. 9: partial-0.1 ~ local up to 512 workers.
  const auto model = abci_resnet();
  for (std::size_t m : {128U, 512U}) {
    const auto ls = model.epoch(imagenet(m), Strategy::kLocal, 0);
    const auto pls = model.epoch(imagenet(m), Strategy::kPartial, 0.1);
    EXPECT_LT(pls.total(), 1.25 * ls.total()) << "m=" << m;
  }
}

TEST(PerfModel, PartialDegradesAtExtremeScale) {
  // Fig. 9: partial-0.1 visibly degrades at 1024-2048 (fewer iterations to
  // overlap with + all-to-all congestion).
  const auto model = abci_resnet();
  const auto shape = imagenet(2048);
  const auto ls = model.epoch(shape, Strategy::kLocal, 0);
  const auto pls = model.epoch(shape, Strategy::kPartial, 0.1);
  EXPECT_GT(pls.exchange_s, 0.0);
  EXPECT_GT(pls.total(), 1.1 * ls.total());
}

TEST(PerfModel, OverlapHidesPartOfTheExchange) {
  const auto model = abci_resnet();
  const auto pls = model.epoch(imagenet(64), Strategy::kPartial, 0.1);
  EXPECT_GT(pls.exchange_raw_s, 0.0);
  EXPECT_GT(pls.exchange_s, 0.0);
  EXPECT_LT(pls.exchange_s, pls.exchange_raw_s);  // some of it hides
  // With many iterations per epoch, the hidden share approaches the
  // model's overlap ceiling; with one iteration nothing can hide.
  const WorkloadShape one_iter{.dataset_samples = 64 * 32,
                               .workers = 64,
                               .local_batch = 32};
  const auto tight = model.epoch(one_iter, Strategy::kPartial, 0.1);
  EXPECT_DOUBLE_EQ(tight.exchange_s, tight.exchange_raw_s);
}

TEST(PerfModel, StragglerSpreadMatchesPaperAt512) {
  // DenseNet161 @ 512 workers (Fig. 10): mean ~19.6 s, min ~11.9 s,
  // max ~142 s. Shape tolerance: right order of magnitude and skew.
  EpochModel model(io::abci_profile(), densenet161_profile());
  const auto gs = model.epoch(imagenet(512), Strategy::kGlobal, 0);
  EXPECT_GT(gs.io_s, 12.0);
  EXPECT_LT(gs.io_s, 30.0);
  EXPECT_GT(gs.io_max_s, 80.0);
  EXPECT_LT(gs.io_max_s, 260.0);
  EXPECT_GT(gs.io_min_s, 8.0);
  EXPECT_LT(gs.io_min_s, 16.0);
  // Local I/O ~8 s with tight spread.
  const auto ls = model.epoch(imagenet(512), Strategy::kLocal, 0);
  EXPECT_NEAR(ls.io_s, 8.0, 2.5);
  EXPECT_LT(ls.io_max_s / ls.io_s, 1.6);
}

TEST(PerfModel, GradientExchangeInflatedByStragglers) {
  EpochModel model(io::abci_profile(), densenet161_profile());
  const auto gs = model.epoch(imagenet(512), Strategy::kGlobal, 0);
  const auto ls = model.epoch(imagenet(512), Strategy::kLocal, 0);
  // Fig. 10: GE reaches ~70 s under global vs ~a few seconds local.
  EXPECT_GT(gs.gewu_s, 5.0 * ls.gewu_s);
  EXPECT_GT(gs.gewu_s, 40.0);
  EXPECT_LT(gs.gewu_s, 160.0);
}

TEST(PerfModel, FwBwIndependentOfStrategy) {
  const auto model = abci_resnet();
  const auto shape = imagenet(512);
  const auto gs = model.epoch(shape, Strategy::kGlobal, 0);
  const auto ls = model.epoch(shape, Strategy::kLocal, 0);
  const auto pls = model.epoch(shape, Strategy::kPartial, 0.5);
  EXPECT_DOUBLE_EQ(gs.fwbw_s, ls.fwbw_s);
  EXPECT_DOUBLE_EQ(ls.fwbw_s, pls.fwbw_s);
}

TEST(PerfModel, PartialCostGrowsModeratelyWithQ) {
  // Fig. 10: partial slows down by up to ~1.37x as Q -> 0.7 vs local.
  const auto model = abci_resnet();
  const auto shape = imagenet(512);
  const auto ls = model.epoch(shape, Strategy::kLocal, 0).total();
  double prev = ls;
  for (double q : {0.1, 0.3, 0.5, 0.7}) {
    const double t = model.epoch(shape, Strategy::kPartial, q).total();
    EXPECT_GE(t, prev * 0.999) << "q=" << q;  // monotone non-decreasing
    prev = t;
  }
  const double t07 = model.epoch(shape, Strategy::kPartial, 0.7).total();
  EXPECT_LT(t07 / ls, 2.0);
  // Partial reads only (1-Q) of the shard from disk, so its I/O is below
  // local's.
  const auto p05 = model.epoch(shape, Strategy::kPartial, 0.5);
  const auto l = model.epoch(shape, Strategy::kLocal, 0);
  EXPECT_LT(p05.io_s, l.io_s);
}

TEST(PerfModel, PfsLowerBoundScalesWithDatasetSize) {
  EpochModel model(io::abci_profile(), deepcam_profile());
  const WorkloadShape small{.dataset_samples = 61'000, .workers = 1024,
                            .local_batch = 2};
  const WorkloadShape big{.dataset_samples = 122'000, .workers = 1024,
                          .local_batch = 2};
  EXPECT_NEAR(model.pfs_global_lower_bound(big) /
                  model.pfs_global_lower_bound(small),
              2.0, 1e-9);
}

TEST(PerfModel, DeterministicAcrossCalls) {
  const auto model = abci_resnet();
  const auto a = model.epoch(imagenet(256), Strategy::kGlobal, 0);
  const auto b = model.epoch(imagenet(256), Strategy::kGlobal, 0);
  EXPECT_DOUBLE_EQ(a.total(), b.total());
  EXPECT_DOUBLE_EQ(a.io_max_s, b.io_max_s);
}

TEST(PerfModel, RejectsDegenerateShapes) {
  const auto model = abci_resnet();
  EXPECT_THROW((void)model.epoch({.dataset_samples = 10, .workers = 0,
                            .local_batch = 1},
                           Strategy::kLocal, 0),
               CheckError);
  EXPECT_THROW((void)model.epoch({.dataset_samples = 10, .workers = 20,
                            .local_batch = 1},
                           Strategy::kLocal, 0),
               CheckError);
}

}  // namespace
}  // namespace dshuf::perf
