// Stress tests for the work-stealing queues and the scheduler's
// exactly-once execution guarantee. The `concurrent` label puts these
// under TSan/ASan in CI: the Chase–Lev deque's all-seq_cst formulation
// (task/task_queue.hpp) exists precisely so these storms are meaningful
// under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

#include "task/scheduler.hpp"
#include "task/task_queue.hpp"
#include "util/rng.hpp"

namespace {

using dshuf::Rng;
using dshuf::task::BoundedMpmcQueue;
using dshuf::task::ChaseLevDeque;

TEST(ChaseLevDeque, OwnerPopsLifoThievesStealFifo) {
  ChaseLevDeque<int> dq(4);
  for (int i = 0; i < 6; ++i) dq.push(i);
  // Thief sees the OLDEST item.
  const auto stolen = dq.steal();
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(*stolen, 0);
  // Owner sees the NEWEST.
  const auto popped = dq.pop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(*popped, 5);
  EXPECT_EQ(dq.size_hint(), 4U);
}

TEST(ChaseLevDeque, EmptyPopAndStealReturnNothing) {
  ChaseLevDeque<int> dq;
  EXPECT_FALSE(dq.pop().has_value());
  EXPECT_FALSE(dq.steal().has_value());
  dq.push(7);
  EXPECT_EQ(*dq.pop(), 7);
  EXPECT_FALSE(dq.pop().has_value());
}

TEST(ChaseLevDeque, GrowPreservesEveryItem) {
  // Start at the minimum capacity so pushes cross several growth steps.
  ChaseLevDeque<int> dq(2);
  constexpr int kN = 300;
  for (int i = 0; i < kN; ++i) dq.push(i);
  // Everything is still there, in order, from the thief's end.
  for (int i = 0; i < kN; ++i) {
    const auto v = dq.steal();
    ASSERT_TRUE(v.has_value()) << "lost item " << i << " across grow";
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(dq.steal().has_value());
}

TEST(BoundedMpmcQueue, FifoOrderAndCapacity) {
  BoundedMpmcQueue<int> q(3);  // rounds up to 4
  EXPECT_EQ(q.capacity(), 4U);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99)) << "push into a full queue must fail";
  for (int i = 0; i < 4; ++i) {
    const auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
  // Reusable after wrap-around.
  EXPECT_TRUE(q.try_push(42));
  EXPECT_EQ(*q.try_pop(), 42);
}

/// Owner pushes kN values (randomly popping as it goes) while thieves
/// steal concurrently; every value must surface exactly once somewhere.
void chase_lev_storm(std::uint64_t seed, int thieves) {
  constexpr std::size_t kN = 10'000;
  ChaseLevDeque<std::size_t> dq(8);
  std::vector<std::atomic<int>> seen(kN);
  std::atomic<std::size_t> consumed{0};
  std::atomic<bool> done_pushing{false};

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(thieves));
  for (int t = 0; t < thieves; ++t) {
    pool.emplace_back([&] {
      while (consumed.load(std::memory_order_acquire) < kN) {
        if (const auto v = dq.steal()) {
          seen[*v].fetch_add(1, std::memory_order_relaxed);
          consumed.fetch_add(1, std::memory_order_acq_rel);
        } else if (done_pushing.load(std::memory_order_acquire)) {
          // Owner may still drain its own end; spin politely.
          std::this_thread::yield();
        }
      }
    });
  }

  Rng rng(seed);
  for (std::size_t i = 0; i < kN; ++i) {
    dq.push(i);
    if (rng.uniform_u64(4) == 0) {
      if (const auto v = dq.pop()) {
        seen[*v].fetch_add(1, std::memory_order_relaxed);
        consumed.fetch_add(1, std::memory_order_acq_rel);
      }
    }
  }
  done_pushing.store(true, std::memory_order_release);
  while (consumed.load(std::memory_order_acquire) < kN) {
    if (const auto v = dq.pop()) {
      seen[*v].fetch_add(1, std::memory_order_relaxed);
      consumed.fetch_add(1, std::memory_order_acq_rel);
    } else {
      std::this_thread::yield();
    }
  }
  for (auto& t : pool) t.join();

  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(seen[i].load(), 1) << "value " << i << " surfaced "
                                 << seen[i].load() << " times (seed " << seed
                                 << ", thieves " << thieves << ")";
  }
  EXPECT_FALSE(dq.pop().has_value());
  EXPECT_FALSE(dq.steal().has_value());
}

TEST(ChaseLevDeque, StealStormExactlyOnce) {
  for (const std::uint64_t seed : {11ULL, 12ULL, 13ULL}) {
    chase_lev_storm(seed, /*thieves=*/3);
  }
  chase_lev_storm(99, /*thieves=*/1);
}

TEST(BoundedMpmcQueue, MultiProducerMultiConsumerStormExactlyOnce) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kConsumers = 4;
  constexpr std::size_t kPerProducer = 2'500;
  constexpr std::size_t kN = kProducers * kPerProducer;
  BoundedMpmcQueue<std::size_t> q(256);
  std::vector<std::atomic<int>> seen(kN);
  std::atomic<std::size_t> consumed{0};

  std::vector<std::thread> pool;
  for (std::size_t c = 0; c < kConsumers; ++c) {
    pool.emplace_back([&] {
      while (consumed.load(std::memory_order_acquire) < kN) {
        if (const auto v = q.try_pop()) {
          seen[*v].fetch_add(1, std::memory_order_relaxed);
          consumed.fetch_add(1, std::memory_order_acq_rel);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::size_t p = 0; p < kProducers; ++p) {
    pool.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        const std::size_t v = p * kPerProducer + i;
        while (!q.try_push(v)) std::this_thread::yield();
      }
    });
  }
  for (auto& t : pool) t.join();

  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(seen[i].load(), 1)
        << "value " << i << " surfaced " << seen[i].load() << " times";
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

/// A plain counting task: exactly-once execution shows up as every slot
/// reading 1 after the storm.
struct CountTask : dshuf::task::Task {
  std::atomic<int>* slot = nullptr;
};

void count_task_fn(dshuf::task::Task* t) {
  static_cast<CountTask*>(t)->slot->fetch_add(1, std::memory_order_relaxed);
}

TEST(Scheduler, MultiProducerSubmitStormRunsEveryTaskOnce) {
  const dshuf::task::ScopedTaskWorkers scoped(4);
  dshuf::task::Scheduler* const sched = dshuf::task::global_scheduler();
  ASSERT_NE(sched, nullptr);
  ASSERT_EQ(sched->workers(), 4U);

  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 2'500;
  constexpr std::size_t kN = kProducers * kPerProducer;
  std::vector<std::atomic<int>> slots(kN);
  std::vector<CountTask> tasks(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    tasks[i].fn = count_task_fn;
    tasks[i].slot = &slots[i];
  }

  dshuf::task::TaskGroup group;
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        sched->submit(&tasks[p * kPerProducer + i], group);
      }
    });
  }
  // Join before waiting: the group must only be declared drained once
  // every producer has finished adding to it.
  for (auto& t : producers) t.join();
  sched->wait(group);
  ASSERT_TRUE(group.done());

  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(slots[i].load(), 1)
        << "task " << i << " ran " << slots[i].load() << " times";
  }
}

TEST(Scheduler, ParallelForCoversRangeExactlyOnce) {
  const dshuf::task::ScopedTaskWorkers scoped(4);
  dshuf::task::Scheduler* const sched = dshuf::task::global_scheduler();
  ASSERT_NE(sched, nullptr);

  constexpr std::size_t kN = 40'000;
  std::vector<std::atomic<int>> marks(kN);
  sched->parallel_for(0, kN, 64, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      marks[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(marks[i].load(), 1) << "index " << i;
  }
}

TEST(Scheduler, SingleWorkerRunsInlineAndGlobalIsNull) {
  // Default configuration (DSHUF_WORKERS unset): serial semantics.
  {
    const dshuf::task::ScopedTaskWorkers scoped(1);
    EXPECT_EQ(dshuf::task::global_scheduler(), nullptr);
    EXPECT_EQ(dshuf::task::global_workers(), 1U);
  }
  // A 1-worker scheduler object still works, inline.
  dshuf::task::Scheduler sched(dshuf::task::Scheduler::Config{.workers = 1});
  EXPECT_EQ(sched.this_worker_index(), SIZE_MAX);
  std::vector<int> marks(100, 0);
  sched.parallel_for(0, marks.size(), 1,
                     [&](std::size_t b, std::size_t e) {
                       for (std::size_t i = b; i < e; ++i) ++marks[i];
                     });
  for (const int m : marks) EXPECT_EQ(m, 1);
}

// A throwing task body must not terminate a pool worker or strand the
// group: wait() observes the drain and rethrows on the WAITER's thread,
// and the scheduler keeps working afterwards.
TEST(Scheduler, ThrowingTaskRethrowsInWaitAndSchedulerSurvives) {
  const dshuf::task::ScopedTaskWorkers scoped(4);
  dshuf::task::Scheduler* const sched = dshuf::task::global_scheduler();
  ASSERT_NE(sched, nullptr);

  std::atomic<int> ran{0};
  auto ok_body = [&] { ran.fetch_add(1, std::memory_order_relaxed); };
  auto bad_body = [] { throw std::runtime_error("task boom"); };
  std::vector<dshuf::task::ClosureTask<decltype(ok_body)>> ok(
      16, dshuf::task::ClosureTask<decltype(ok_body)>(ok_body));
  dshuf::task::ClosureTask<decltype(bad_body)> bad(bad_body);

  dshuf::task::TaskGroup group;
  for (auto& t : ok) sched->submit(&t, group);
  sched->submit(&bad, group);
  EXPECT_THROW(sched->wait(group), std::runtime_error);
  EXPECT_EQ(ran.load(), 16) << "sibling tasks must still have run";

  // The group cleared its error and the pool is intact.
  ran.store(0);
  dshuf::task::TaskGroup again;
  for (auto& t : ok) sched->submit(&t, again);
  sched->wait(again);
  EXPECT_EQ(ran.load(), 16);

  // parallel_for propagates a chunk's throw to the caller too.
  EXPECT_THROW(sched->parallel_for(0, 1000, 1,
                                   [](std::size_t b, std::size_t) {
                                     if (b > 400) {
                                       throw std::runtime_error("chunk boom");
                                     }
                                   }),
               std::runtime_error);
  // And still fine afterwards.
  std::atomic<int> marks{0};
  sched->parallel_for(0, 1000, 1, [&](std::size_t b, std::size_t e) {
    marks.fetch_add(static_cast<int>(e - b), std::memory_order_relaxed);
  });
  EXPECT_EQ(marks.load(), 1000);
}

TEST(Scheduler, WaitHelpsFromExternalThread) {
  const dshuf::task::ScopedTaskWorkers scoped(2);
  dshuf::task::Scheduler* const sched = dshuf::task::global_scheduler();
  ASSERT_NE(sched, nullptr);
  std::atomic<int> ran{0};
  auto body = [&] { ran.fetch_add(1, std::memory_order_relaxed); };
  std::vector<dshuf::task::ClosureTask<decltype(body)>> tasks(64, //
      dshuf::task::ClosureTask<decltype(body)>(body));
  dshuf::task::TaskGroup group;
  for (auto& t : tasks) sched->submit(&t, group);
  sched->wait(group);
  EXPECT_EQ(ran.load(), 64);
}

}  // namespace
