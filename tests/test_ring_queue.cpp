// RingQueue backs the comm mailboxes: FIFO order, random-access take()
// (receives match by (source, tag), not just the head), and capacity reuse
// so the steady state never touches the allocator. The reference model is
// a plain std::vector driven by the same operation sequence.
#include "util/ring_queue.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace dshuf {
namespace {

TEST(RingQueue, FifoBasics) {
  RingQueue<int> q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0U);
  for (int v = 0; v < 5; ++v) q.push_back(v);
  EXPECT_EQ(q.size(), 5U);
  for (int v = 0; v < 5; ++v) EXPECT_EQ(q[static_cast<std::size_t>(v)], v);
  EXPECT_EQ(q.pop_front(), 0);
  EXPECT_EQ(q.pop_front(), 1);
  EXPECT_EQ(q.size(), 3U);
  EXPECT_EQ(q[0], 2);  // indices are queue order, not storage order
}

TEST(RingQueue, TakePreservesOrderOfTheRest) {
  RingQueue<int> q;
  for (int v = 0; v < 7; ++v) q.push_back(v);
  EXPECT_EQ(q.take(3), 3);  // middle
  ASSERT_EQ(q.size(), 6U);
  const int expect_a[] = {0, 1, 2, 4, 5, 6};
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(q[i], expect_a[i]);
  EXPECT_EQ(q.take(0), 0);  // head
  EXPECT_EQ(q.take(4), 6);  // tail
  const int expect_b[] = {1, 2, 4, 5};
  ASSERT_EQ(q.size(), 4U);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(q[i], expect_b[i]);
}

TEST(RingQueue, GrowsAcrossTheWrapBoundary) {
  RingQueue<int> q;
  // Offset head so the live region wraps when growth copies it out.
  for (int v = 0; v < 6; ++v) q.push_back(v);
  for (int v = 0; v < 6; ++v) EXPECT_EQ(q.pop_front(), v);
  for (int v = 100; v < 140; ++v) q.push_back(v);  // forces several grows
  ASSERT_EQ(q.size(), 40U);
  for (int v = 100; v < 140; ++v) EXPECT_EQ(q.pop_front(), v);
  EXPECT_TRUE(q.empty());
}

TEST(RingQueue, MoveOnlyElements) {
  RingQueue<std::unique_ptr<int>> q;
  q.push_back(std::make_unique<int>(1));
  q.push_back(std::make_unique<int>(2));
  q.push_back(std::make_unique<int>(3));
  auto two = q.take(1);
  EXPECT_EQ(*two, 2);
  EXPECT_EQ(*q.pop_front(), 1);
  EXPECT_EQ(*q.pop_front(), 3);
}

TEST(RingQueue, RandomisedAgainstVectorModel) {
  Rng rng(2024);
  RingQueue<std::uint64_t> q;
  std::vector<std::uint64_t> model;
  std::uint64_t next = 0;
  for (int step = 0; step < 20000; ++step) {
    const auto op = rng.uniform_u64(3);
    if (op == 0 || model.empty()) {
      q.push_back(next);
      model.push_back(next);
      ++next;
    } else if (op == 1) {
      ASSERT_EQ(q.pop_front(), model.front());
      model.erase(model.begin());
    } else {
      const auto i =
          static_cast<std::size_t>(rng.uniform_u64(model.size()));
      ASSERT_EQ(q.take(i), model[i]);
      model.erase(model.begin() + static_cast<std::ptrdiff_t>(i));
    }
    ASSERT_EQ(q.size(), model.size());
    if (!model.empty()) {
      const auto probe =
          static_cast<std::size_t>(rng.uniform_u64(model.size()));
      ASSERT_EQ(q[probe], model[probe]);
    }
  }
}

}  // namespace
}  // namespace dshuf
