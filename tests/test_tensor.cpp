#include "tensor/tensor.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace dshuf {
namespace {

TEST(Tensor, ZeroInitialisedWithShape) {
  Tensor t({2, 3});
  EXPECT_EQ(t.rank(), 2U);
  EXPECT_EQ(t.rows(), 2U);
  EXPECT_EQ(t.cols(), 3U);
  EXPECT_EQ(t.size(), 6U);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.at(i), 0.0F);
}

TEST(Tensor, AdoptDataChecksSize) {
  EXPECT_NO_THROW(Tensor({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), CheckError);
}

TEST(Tensor, FullAndFill) {
  auto t = Tensor::full({3}, 2.5F);
  EXPECT_EQ(t.at(1), 2.5F);
  t.fill(-1.0F);
  EXPECT_EQ(t.at(2), -1.0F);
}

TEST(Tensor, RandnUsesStddev) {
  Rng rng(5);
  auto t = Tensor::randn({1000}, rng, 0.1F);
  double s2 = 0;
  for (std::size_t i = 0; i < t.size(); ++i) s2 += t.at(i) * t.at(i);
  EXPECT_NEAR(s2 / 1000.0, 0.01, 0.002);
}

TEST(Tensor, At2DIndexing) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.at(0, 0), 1.0F);
  EXPECT_EQ(t.at(1, 2), 6.0F);
  EXPECT_THROW(t.at(2, 0), CheckError);
  EXPECT_THROW(t.at(0, 3), CheckError);
}

TEST(Tensor, ReshapePreservesCount) {
  Tensor t({2, 3});
  t.reshape({3, 2});
  EXPECT_EQ(t.rows(), 3U);
  EXPECT_THROW(t.reshape({4, 2}), CheckError);
}

TEST(Tensor, AxpyAndScale) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {10, 20, 30});
  a.axpy(0.5F, b);
  EXPECT_EQ(a.at(0), 6.0F);
  EXPECT_EQ(a.at(2), 18.0F);
  a.scale(2.0F);
  EXPECT_EQ(a.at(1), 24.0F);
}

TEST(Tensor, AxpyRejectsMismatchedSizes) {
  Tensor a({3});
  Tensor b({4});
  EXPECT_THROW(a.axpy(1.0F, b), CheckError);
}

TEST(Tensor, Reductions) {
  Tensor t({4}, {1, -2, 3, -4});
  EXPECT_FLOAT_EQ(t.sum(), -2.0F);
  EXPECT_FLOAT_EQ(t.l2_norm(), std::sqrt(30.0F));
  EXPECT_FLOAT_EQ(t.max_abs(), 4.0F);
}

TEST(Gemm, MatchesManualResult) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {5, 6, 7, 8});
  Tensor out({2, 2});
  gemm(a, b, out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 19.0F);
  EXPECT_FLOAT_EQ(out.at(0, 1), 22.0F);
  EXPECT_FLOAT_EQ(out.at(1, 0), 43.0F);
  EXPECT_FLOAT_EQ(out.at(1, 1), 50.0F);
}

TEST(Gemm, AccumulateAddsIntoOutput) {
  Tensor a({1, 1}, {2});
  Tensor b({1, 1}, {3});
  Tensor out({1, 1}, {10});
  gemm(a, b, out, /*accumulate=*/true);
  EXPECT_FLOAT_EQ(out.at(0, 0), 16.0F);
  gemm(a, b, out, /*accumulate=*/false);
  EXPECT_FLOAT_EQ(out.at(0, 0), 6.0F);
}

TEST(Gemm, RejectsIncompatibleShapes) {
  Tensor a({2, 3});
  Tensor b({4, 2});
  Tensor out({2, 2});
  EXPECT_THROW(gemm(a, b, out), CheckError);
}

// Property: gemm_at_b(a, b) == gemm(transpose(a), b) over random matrices.
TEST(Gemm, AtBMatchesExplicitTranspose) {
  Rng rng(7);
  const std::size_t K = 5;
  const std::size_t M = 4;
  const std::size_t N = 3;
  Tensor a = Tensor::randn({K, M}, rng);
  Tensor b = Tensor::randn({K, N}, rng);
  Tensor at({M, K});
  for (std::size_t i = 0; i < K; ++i) {
    for (std::size_t j = 0; j < M; ++j) at.at(j, i) = a.at(i, j);
  }
  Tensor expected({M, N});
  gemm(at, b, expected);
  Tensor got({M, N});
  gemm_at_b(a, b, got);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got.at(i), expected.at(i), 1e-4F);
  }
}

TEST(Gemm, ABtMatchesExplicitTranspose) {
  Rng rng(9);
  const std::size_t M = 4;
  const std::size_t K = 5;
  const std::size_t N = 3;
  Tensor a = Tensor::randn({M, K}, rng);
  Tensor b = Tensor::randn({N, K}, rng);
  Tensor bt({K, N});
  for (std::size_t i = 0; i < N; ++i) {
    for (std::size_t j = 0; j < K; ++j) bt.at(j, i) = b.at(i, j);
  }
  Tensor expected({M, N});
  gemm(a, bt, expected);
  Tensor got({M, N});
  gemm_a_bt(a, b, got);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got.at(i), expected.at(i), 1e-4F);
  }
}

TEST(Tensor, ArgmaxRows) {
  Tensor m({2, 3}, {0.1F, 0.9F, 0.3F, 2.0F, -1.0F, 1.5F});
  const auto idx = argmax_rows(m);
  ASSERT_EQ(idx.size(), 2U);
  EXPECT_EQ(idx[0], 1U);
  EXPECT_EQ(idx[1], 0U);
}

TEST(Tensor, ShapeStr) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.shape_str(), "[2, 3, 4]");
}

}  // namespace
}  // namespace dshuf
