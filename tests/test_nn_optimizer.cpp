#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include "nn/layers.hpp"

namespace dshuf::nn {
namespace {

/// One-parameter model for hand-checkable optimiser math.
Model tiny_model(Rng& rng, float w0) {
  Model m;
  m.add(std::make_unique<Linear>(1, 1, rng));
  auto* p = m.params()[0];
  p->value = Tensor({1, 1}, {w0});
  m.params()[1]->value = Tensor({1}, {0.0F});
  return m;
}

void set_grad(Model& m, float gw) {
  m.params()[0]->grad = Tensor({1, 1}, {gw});
}

TEST(Sgd, VanillaStep) {
  Rng rng(1);
  Model m = tiny_model(rng, 1.0F);
  Sgd opt(m, SgdConfig{.lr = 0.1F, .momentum = 0.0F, .weight_decay = 0.0F});
  set_grad(m, 2.0F);
  opt.step();
  EXPECT_NEAR(m.params()[0]->value.at(0), 1.0F - 0.1F * 2.0F, 1e-6F);
}

TEST(Sgd, MomentumAccumulates) {
  Rng rng(2);
  Model m = tiny_model(rng, 0.0F);
  Sgd opt(m, SgdConfig{.lr = 1.0F, .momentum = 0.5F, .weight_decay = 0.0F});
  set_grad(m, 1.0F);
  opt.step();  // v = 1, w = -1
  EXPECT_NEAR(m.params()[0]->value.at(0), -1.0F, 1e-6F);
  set_grad(m, 1.0F);
  opt.step();  // v = 1.5, w = -2.5
  EXPECT_NEAR(m.params()[0]->value.at(0), -2.5F, 1e-6F);
}

TEST(Sgd, WeightDecayActsAsL2) {
  Rng rng(3);
  Model m = tiny_model(rng, 2.0F);
  Sgd opt(m, SgdConfig{.lr = 0.1F, .momentum = 0.0F, .weight_decay = 0.5F});
  set_grad(m, 0.0F);
  opt.step();  // effective grad = 0 + 0.5*2 = 1 => w = 2 - 0.1
  EXPECT_NEAR(m.params()[0]->value.at(0), 1.9F, 1e-6F);
}

TEST(Sgd, WeightDecaySkipsExcludedParams) {
  Rng rng(4);
  Model m = tiny_model(rng, 1.0F);
  // The bias param is decay-excluded by construction.
  auto* bias = m.params()[1];
  bias->value = Tensor({1}, {3.0F});
  Sgd opt(m, SgdConfig{.lr = 0.1F, .momentum = 0.0F, .weight_decay = 1.0F});
  set_grad(m, 0.0F);
  bias->grad = Tensor({1}, {0.0F});
  opt.step();
  EXPECT_NEAR(bias->value.at(0), 3.0F, 1e-6F);   // untouched
  EXPECT_NEAR(m.params()[0]->value.at(0), 0.9F, 1e-6F);  // decayed
}

TEST(Sgd, NesterovLooksAhead) {
  Rng rng(5);
  Model m = tiny_model(rng, 0.0F);
  Sgd opt(m, SgdConfig{.lr = 1.0F,
                       .momentum = 0.5F,
                       .weight_decay = 0.0F,
                       .nesterov = true});
  set_grad(m, 1.0F);
  opt.step();  // v = 1, update = 0.5*1 + 1 = 1.5
  EXPECT_NEAR(m.params()[0]->value.at(0), -1.5F, 1e-6F);
}

TEST(Sgd, LarsScalesByTrustRatio) {
  Rng rng(6);
  Model m = tiny_model(rng, 4.0F);
  SgdConfig cfg;
  cfg.lr = 1.0F;
  cfg.momentum = 0.0F;
  cfg.weight_decay = 0.0F;
  cfg.lars_trust = 0.1F;
  Sgd opt(m, cfg);
  set_grad(m, 2.0F);
  opt.step();
  // local_lr = 1.0 * 0.1 * |4| / |2| = 0.2 => w = 4 - 0.2*2 = 3.6.
  EXPECT_NEAR(m.params()[0]->value.at(0), 3.6F, 1e-5F);
}

TEST(Sgd, LarsFallsBackWhenNormsVanish) {
  Rng rng(7);
  Model m = tiny_model(rng, 0.0F);  // zero weight norm
  SgdConfig cfg;
  cfg.lr = 0.5F;
  cfg.momentum = 0.0F;
  cfg.lars_trust = 0.1F;
  Sgd opt(m, cfg);
  set_grad(m, 1.0F);
  opt.step();  // plain SGD step
  EXPECT_NEAR(m.params()[0]->value.at(0), -0.5F, 1e-6F);
}

TEST(Schedule, ConstantLr) {
  ConstantLr s(0.3F);
  EXPECT_FLOAT_EQ(s.lr_at(0.0), 0.3F);
  EXPECT_FLOAT_EQ(s.lr_at(100.0), 0.3F);
}

TEST(Schedule, MultiStepDecaysAtMilestones) {
  MultiStepLr s(1.0F, {10, 20}, 0.1F);
  EXPECT_FLOAT_EQ(s.lr_at(0.0), 1.0F);
  EXPECT_FLOAT_EQ(s.lr_at(9.9), 1.0F);
  EXPECT_FLOAT_EQ(s.lr_at(10.0), 0.1F);
  EXPECT_NEAR(s.lr_at(25.0), 0.01F, 1e-7F);
}

TEST(Schedule, MultiStepWarmupRampsLinearly) {
  MultiStepLr s(1.0F, {}, 0.1F, /*warmup_epochs=*/4.0,
                /*warmup_start_factor=*/0.25F);
  EXPECT_FLOAT_EQ(s.lr_at(0.0), 0.25F);
  EXPECT_NEAR(s.lr_at(2.0), 0.625F, 1e-6F);
  EXPECT_FLOAT_EQ(s.lr_at(4.0), 1.0F);
}

TEST(Schedule, CosineDecaysToZero) {
  CosineLr s(1.0F, 10.0);
  EXPECT_NEAR(s.lr_at(0.0), 1.0F, 1e-5F);
  EXPECT_NEAR(s.lr_at(5.0), 0.5F, 1e-5F);
  EXPECT_NEAR(s.lr_at(10.0), 0.0F, 1e-5F);
  EXPECT_NEAR(s.lr_at(15.0), 0.0F, 1e-5F);  // clamped past the horizon
}

TEST(Schedule, CosineWithWarmup) {
  CosineLr s(2.0F, 10.0, 2.0);
  EXPECT_LT(s.lr_at(0.0), 0.1F);
  EXPECT_NEAR(s.lr_at(2.0), 2.0F, 0.05F);
}

}  // namespace
}  // namespace dshuf::nn
