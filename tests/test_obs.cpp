// Observability layer tests: metrics registry semantics, span tracer +
// virtual clock, log context prefixes, JSON export round-trips, and the
// golden determinism contract — two chaos runs with the same fault seed
// emit byte-identical trace artifacts, and the exchange/fault stats the
// protocol reports agree exactly with what the registry counted.
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chaos_harness.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

namespace dshuf {
namespace {

std::uint64_t counter_of(const obs::MetricsSnapshot& s,
                         const std::string& name) {
  for (const auto& [n, v] : s.counters) {
    if (n == name) return v;
  }
  return 0;
}

// ------------------------------------------------------------- registry

TEST(ObsRegistry, CounterGaugeBasics) {
  auto& reg = obs::Registry::instance();
  auto& c = reg.counter("test.obs.counter");
  c.reset();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42U);

  auto& g = reg.gauge("test.obs.gauge");
  g.set(10);
  g.add(5);
  g.sub(3);
  EXPECT_EQ(g.value(), 12);

  // Find-or-create returns the same instrument for the same name.
  EXPECT_EQ(&c, &reg.counter("test.obs.counter"));
  EXPECT_EQ(&g, &reg.gauge("test.obs.gauge"));
}

TEST(ObsRegistry, HistogramBucketsAndOverflow) {
  const std::vector<std::uint64_t> bounds{10, 100, 1000};
  auto& h = obs::Registry::instance().histogram("test.obs.hist", bounds);
  h.reset();
  h.observe(5);     // <= 10
  h.observe(10);    // <= 10 (inclusive upper bound)
  h.observe(50);    // <= 100
  h.observe(5000);  // overflow bucket
  EXPECT_EQ(h.count(), 4U);
  EXPECT_EQ(h.sum(), 5U + 10U + 50U + 5000U);
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), bounds.size() + 1);
  EXPECT_EQ(counts[0], 2U);
  EXPECT_EQ(counts[1], 1U);
  EXPECT_EQ(counts[2], 0U);
  EXPECT_EQ(counts[3], 1U);
}

TEST(ObsRegistry, ResetPreservesInstrumentIdentity) {
  auto& reg = obs::Registry::instance();
  auto& c = reg.counter("test.obs.reset");
  c.add(7);
  reg.reset();
  EXPECT_EQ(c.value(), 0U);           // zeroed ...
  EXPECT_EQ(&c, &reg.counter("test.obs.reset"));  // ... same object
  c.add(3);
  EXPECT_EQ(counter_of(reg.snapshot(), "test.obs.reset"), 3U);
}

TEST(ObsRegistry, SnapshotIsSortedAndJsonParses) {
  auto& reg = obs::Registry::instance();
  reg.reset();
  reg.counter("test.zz").add(2);
  reg.counter("test.aa").add(1);
  reg.gauge("test.depth").set(-4);
  reg.histogram("test.lat", std::vector<std::uint64_t>{1, 2}).observe(3);

  const auto snap = reg.snapshot();
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);
  }

  const json::Value doc = json::parse(snap.to_json());
  EXPECT_EQ(doc.at("counters").at("test.aa").as_int(), 1);
  EXPECT_EQ(doc.at("counters").at("test.zz").as_int(), 2);
  EXPECT_EQ(doc.at("gauges").at("test.depth").as_int(), -4);
  const auto& hist = doc.at("histograms").at("test.lat");
  EXPECT_EQ(hist.at("count").as_int(), 1);
  EXPECT_EQ(hist.at("sum").as_int(), 3);
  EXPECT_EQ(hist.at("counts").as_array().size(),
            hist.at("bounds").as_array().size() + 1);
}

// ------------------------------------------------------- spans + clocks

TEST(ObsTrace, VirtualClockDrivesSpanDurations) {
  obs::VirtualClock clock(100);
  obs::set_obs_clock(&clock);
  auto& tracer = obs::Tracer::instance();
  tracer.clear();
  tracer.set_enabled(true);

  {
    obs::SpanGuard span("test.span", {{"k", "v"}});
    clock.advance_us(250);
    EXPECT_EQ(span.finish(), 250U);
    EXPECT_EQ(span.finish(), 250U);  // idempotent
  }
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 1U);
  EXPECT_EQ(events[0].name, "test.span");
  EXPECT_EQ(events[0].ts_us, 100U);
  EXPECT_EQ(events[0].dur_us, 250U);
  ASSERT_EQ(events[0].attrs.size(), 1U);
  EXPECT_EQ(events[0].attrs[0].first, "k");

  tracer.set_enabled(false);
  tracer.clear();
  obs::set_obs_clock(nullptr);
}

TEST(ObsTrace, DisabledTracerStillMeasuresButRecordsNothing) {
  obs::VirtualClock clock;
  obs::set_obs_clock(&clock);
  auto& tracer = obs::Tracer::instance();
  tracer.set_enabled(false);
  tracer.clear();

  obs::SpanGuard span("test.unrecorded");
  clock.advance_us(77);
  EXPECT_EQ(span.finish(), 77U);
  EXPECT_TRUE(tracer.snapshot().empty());
  obs::set_obs_clock(nullptr);
}

TEST(ObsTrace, ChromeTraceJsonIsValidAndComplete) {
  obs::VirtualClock clock;
  obs::set_obs_clock(&clock);
  auto& tracer = obs::Tracer::instance();
  tracer.clear();
  tracer.set_enabled(true);
  {
    obs::SpanGuard a("test.a", {{"epoch", "0"}});
    clock.advance_us(10);
  }
  {
    obs::SpanGuard b("test.b");
    clock.advance_us(5);
  }

  const json::Value doc = json::parse(tracer.chrome_trace_json());
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2U);
  for (const auto& e : events) {
    EXPECT_EQ(e.at("ph").as_string(), "X");
    EXPECT_GE(e.at("dur").as_int(), 0);
    EXPECT_TRUE(e.has("ts"));
    EXPECT_TRUE(e.has("tid"));
  }

  // The epoch report aggregates the span that carries an epoch attribute.
  const std::string csv = tracer.epoch_report_csv();
  EXPECT_NE(csv.find("0,test.a,1,10"), std::string::npos) << csv;

  tracer.set_enabled(false);
  tracer.clear();
  obs::set_obs_clock(nullptr);
}

// ---------------------------------------------------------- log context

TEST(ObsLog, ContextPrefixesEveryLine) {
  const LogLevel saved = global_log_level();
  global_log_level() = LogLevel::kInfo;
  std::ostringstream captured;
  std::streambuf* old = std::clog.rdbuf(captured.rdbuf());

  LOG_INFO << "no context";
  {
    ScopedLogContext ctx(3, 7);
    LOG_INFO << "inside";
    {
      ScopedLogContext inner(1, 8);
      LOG_INFO << "nested";
    }
    LOG_INFO << "restored";
  }
  LOG_INFO << "cleared";

  std::clog.rdbuf(old);
  global_log_level() = saved;

  const std::string out = captured.str();
  EXPECT_NE(out.find("[INFO ] no context"), std::string::npos) << out;
  EXPECT_NE(out.find("[INFO ] [r3 e7] inside"), std::string::npos) << out;
  EXPECT_NE(out.find("[INFO ] [r1 e8] nested"), std::string::npos) << out;
  EXPECT_NE(out.find("[INFO ] [r3 e7] restored"), std::string::npos) << out;
  EXPECT_NE(out.find("[INFO ] cleared"), std::string::npos) << out;
}

// ------------------------------------------------- golden determinism

chaos::ChaosConfig golden_config(std::uint64_t fault_seed) {
  chaos::ChaosConfig cfg;
  cfg.n = 48;
  cfg.m = 3;
  cfg.q = 0.3;
  cfg.epochs = 2;
  cfg.seed = 11;
  cfg.fault_seed = fault_seed;
  cfg.spec.drop_prob = 0.08;
  cfg.spec.dup_prob = 0.05;
  cfg.unlimited_capacity = true;
  return cfg;
}

struct TracedChaos {
  std::string trace_json;
  std::string epoch_csv;
  std::string timeseries_json;
  chaos::ChaosResult result;
};

/// One chaos run with tracing + the timeseries sampler on a fresh virtual
/// clock; the returned artifacts must be a pure function of (shuffle
/// seed, fault seed).
TracedChaos run_traced_chaos(const chaos::ChaosConfig& cfg) {
  auto& tracer = obs::Tracer::instance();
  auto& sampler = obs::TimeseriesSampler::instance();
  obs::Registry::instance().reset();
  tracer.clear();
  obs::VirtualClock clock;
  obs::set_obs_clock(&clock);
  tracer.set_enabled(true);
  sampler.set_enabled(true);
  sampler.reset();

  TracedChaos out;
  out.result = chaos::run_chaos_exchange(cfg);
  sampler.sample_window("final");
  out.trace_json = tracer.chrome_trace_json();
  out.epoch_csv = tracer.epoch_report_csv();
  out.timeseries_json = sampler.to_json();

  sampler.set_enabled(false);
  sampler.reset();
  tracer.set_enabled(false);
  tracer.clear();
  obs::set_obs_clock(nullptr);
  return out;
}

TEST(ObsGolden, ChaosTraceIsByteIdenticalAcrossRuns) {
  const auto a = run_traced_chaos(golden_config(21));
  const auto b = run_traced_chaos(golden_config(21));
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.epoch_csv, b.epoch_csv);
  EXPECT_EQ(a.timeseries_json, b.timeseries_json);
  // Sanity: the artifacts are non-trivial and well-formed JSON.
  const json::Value doc = json::parse(a.trace_json);
  EXPECT_GE(doc.at("traceEvents").as_array().size(),
            golden_config(21).epochs * 3U);  // one epoch span per rank
  EXPECT_NE(a.epoch_csv.find("exchange.epoch"), std::string::npos);
  // The trace carries the cross-rank causality layer: named rank lanes
  // and send/finish flow points alongside the spans.
  EXPECT_NE(a.trace_json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(a.trace_json.find("\"dshuf.flow\""), std::string::npos);
  EXPECT_NE(a.trace_json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(a.trace_json.find("\"ph\":\"f\""), std::string::npos);
  // And the timeseries export is a valid v1 document with the exchange
  // counters in its window.
  const json::Value ts = json::parse(a.timeseries_json);
  EXPECT_EQ(ts.at("schema").as_string(), "dshuf.timeseries.v1");
  ASSERT_GE(ts.at("windows").as_array().size(), 1U);
  EXPECT_TRUE(ts.at("windows").as_array()[0].at("counters").has(
      "exchange.epochs"));
}

TEST(ObsGolden, ExchangeOutcomesMatchRegistryCounters) {
  obs::Registry::instance().reset();
  const auto result = chaos::run_chaos_exchange(golden_config(5));

  shuffle::ExchangeOutcome sum;
  std::size_t epoch_count = 0;
  for (const auto& per_rank : result.outcomes) {
    for (const auto& o : per_rank) {
      ++epoch_count;
      sum.rounds += o.rounds;
      sum.sends_committed += o.sends_committed;
      sum.send_fallbacks += o.send_fallbacks;
      sum.recvs_committed += o.recvs_committed;
      sum.recv_fallbacks += o.recv_fallbacks;
      sum.retries += o.retries;
      sum.duplicates_suppressed += o.duplicates_suppressed;
      sum.strays_drained += o.strays_drained;
      sum.msgs_sent += o.msgs_sent;
      sum.bytes_header += o.bytes_header;
      sum.bytes_body += o.bytes_body;
      sum.bytes_sent += o.bytes_sent;
      sum.bytes_offered += o.bytes_offered;
    }
  }

  const auto snap = obs::Registry::instance().snapshot();
  EXPECT_EQ(counter_of(snap, "exchange.epochs"), epoch_count);
  EXPECT_EQ(counter_of(snap, "exchange.rounds"), sum.rounds);
  EXPECT_EQ(counter_of(snap, "exchange.sends_committed"),
            sum.sends_committed);
  EXPECT_EQ(counter_of(snap, "exchange.send_fallbacks"),
            sum.send_fallbacks);
  EXPECT_EQ(counter_of(snap, "exchange.recvs_committed"),
            sum.recvs_committed);
  EXPECT_EQ(counter_of(snap, "exchange.recv_fallbacks"),
            sum.recv_fallbacks);
  EXPECT_EQ(counter_of(snap, "exchange.retries"), sum.retries);
  EXPECT_EQ(counter_of(snap, "exchange.duplicates_suppressed"),
            sum.duplicates_suppressed);
  EXPECT_EQ(counter_of(snap, "exchange.strays_drained"),
            sum.strays_drained);
  EXPECT_EQ(counter_of(snap, "exchange.msgs"), sum.msgs_sent);
  EXPECT_EQ(counter_of(snap, "exchange.bytes.header"), sum.bytes_header);
  EXPECT_EQ(counter_of(snap, "exchange.bytes.body"), sum.bytes_body);
  EXPECT_EQ(counter_of(snap, "exchange.bytes_sent"), sum.bytes_sent);
  // Framing + payload accounts for every first-attempt byte, exactly.
  EXPECT_EQ(sum.bytes_header + sum.bytes_body, sum.bytes_offered);
}

TEST(ObsGolden, FaultStatsMatchRegistryCounters) {
  obs::Registry::instance().reset();
  auto cfg = golden_config(9);
  cfg.spec.delay_prob = 0.1;
  cfg.spec.min_delay_us = 200;
  cfg.spec.max_delay_us = 2000;
  const auto result = chaos::run_chaos_exchange(cfg);
  const comm::FaultStats& f = result.faults;

  const auto snap = obs::Registry::instance().snapshot();
  EXPECT_EQ(counter_of(snap, "comm.fault.submitted"), f.submitted);
  EXPECT_EQ(counter_of(snap, "comm.fault.delivered"), f.delivered);
  EXPECT_EQ(counter_of(snap, "comm.fault.dropped"), f.dropped);
  EXPECT_EQ(counter_of(snap, "comm.fault.duplicated"), f.duplicated);
  EXPECT_EQ(counter_of(snap, "comm.fault.delayed"), f.delayed);
  EXPECT_EQ(counter_of(snap, "comm.fault.stalled"), f.stalled);
  EXPECT_EQ(counter_of(snap, "comm.fault.flushed"), f.flushed);
  EXPECT_GT(f.submitted, 0U);
}

// ------------------------------------------------------------ json util

TEST(ObsJson, ParsesNestedDocuments) {
  const json::Value v = json::parse(
      R"({"a": [1, 2.5, true, null, "sé"], "b": {"c": -3}})");
  EXPECT_EQ(v.at("a").as_array().size(), 5U);
  EXPECT_EQ(v.at("a").as_array()[0].as_int(), 1);
  EXPECT_DOUBLE_EQ(v.at("a").as_array()[1].as_number(), 2.5);
  EXPECT_TRUE(v.at("a").as_array()[2].as_bool());
  EXPECT_TRUE(v.at("a").as_array()[3].is_null());
  EXPECT_EQ(v.at("a").as_array()[4].as_string(), "s\xc3\xa9");
  EXPECT_EQ(v.at("b").at("c").as_int(), -3);
}

TEST(ObsJson, RejectsMalformedInput) {
  EXPECT_THROW((void)json::parse("{\"a\": }"), CheckError);
  EXPECT_THROW((void)json::parse("[1, 2"), CheckError);
  EXPECT_THROW((void)json::parse("{} trailing"), CheckError);
  EXPECT_THROW((void)json::parse(""), CheckError);
}

}  // namespace
}  // namespace dshuf
