// Unit tests for the dshuf_lint rule engine (tools/dshuf_lint).
//
// Every "bad" snippet below lives inside a string literal, which the
// linter's own scrubber blanks out — so scanning this test file with
// dshuf_lint stays clean while the rules are still exercised end to end.
#include "lint_rules.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace dshuf::lint {
namespace {

std::vector<std::string> rules_of(const std::vector<Finding>& fs) {
  std::vector<std::string> r;
  for (const auto& f : fs) r.push_back(f.rule);
  std::sort(r.begin(), r.end());
  return r;
}

bool has_rule(const std::vector<Finding>& fs, const std::string& rule) {
  return std::any_of(fs.begin(), fs.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

// ---------------------------------------------------------------- scrub

TEST(LintScrub, BlanksLineAndBlockComments) {
  const std::string in = "int a; // srand here\nint b; /* rand() */ int c;\n";
  const std::string out = scrub(in);
  EXPECT_EQ(out.find("srand"), std::string::npos);
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_NE(out.find("int c;"), std::string::npos);
  // Newlines survive so findings keep their line numbers.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'),
            std::count(in.begin(), in.end(), '\n'));
}

TEST(LintScrub, BlanksStringAndCharLiterals) {
  const std::string in =
      "auto s = \"std::rand()\"; char c = '\\\"'; auto t = \"x\";\n";
  const std::string out = scrub(in);
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_NE(out.find("auto s ="), std::string::npos);
  EXPECT_NE(out.find("auto t ="), std::string::npos);
}

TEST(LintScrub, BlanksRawStrings) {
  const std::string in = "auto r = R\"(srand(1); /* still a string */)\";\n";
  const std::string out = scrub(in);
  EXPECT_EQ(out.find("srand"), std::string::npos);
}

TEST(LintScrub, MultiLineBlockCommentKeepsNewlines) {
  const std::string in = "/* line one\n   std::random_device rd;\n*/ int x;\n";
  const std::string out = scrub(in);
  EXPECT_EQ(out.find("random_device"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  EXPECT_NE(out.find("int x;"), std::string::npos);
}

// -------------------------------------------------------- classify_path

TEST(LintClassify, DeterminismCriticalNamespaces) {
  EXPECT_TRUE(classify_path("src/shuffle/mixing.cpp").determinism_critical);
  EXPECT_TRUE(classify_path("src/comm/comm.cpp").determinism_critical);
  EXPECT_TRUE(classify_path("src/sim/events.cpp").determinism_critical);
  EXPECT_FALSE(classify_path("src/data/batch_loader.cpp")
                   .determinism_critical);
  EXPECT_FALSE(classify_path("tests/test_comm.cpp").determinism_critical);
}

TEST(LintClassify, SrcTreeAndLogModule) {
  EXPECT_TRUE(classify_path("src/shuffle/mixing.cpp").src_tree);
  EXPECT_TRUE(classify_path("/root/repo/src/util/argparse.cpp").src_tree);
  EXPECT_FALSE(classify_path("bench/bench_fig09.cpp").src_tree);
  EXPECT_FALSE(classify_path("tests/test_comm.cpp").src_tree);
  EXPECT_TRUE(classify_path("src/util/log.cpp").log_module);
  EXPECT_FALSE(classify_path("src/util/log.hpp").log_module);
}

TEST(LintClassify, RngModuleAndHeaders) {
  EXPECT_TRUE(classify_path("src/util/rng.hpp").rng_module);
  EXPECT_TRUE(classify_path("src/util/rng.cpp").rng_module);
  EXPECT_FALSE(classify_path("src/util/log.cpp").rng_module);
  EXPECT_TRUE(classify_path("src/util/rng.hpp").is_header);
  EXPECT_FALSE(classify_path("src/util/rng.cpp").is_header);
}

// -------------------------------------------------------- banned-random

TEST(LintRandom, FlagsRandSrandAndRandomDevice) {
  const std::string code =
      "#include <cstdlib>\n"
      "int f() {\n"
      "  srand(42);\n"
      "  std::random_device rd;\n"
      "  return std::rand();\n"
      "}\n";
  const auto fs = scan_file(classify_path("src/data/gen.cpp"), code);
  int banned = 0;
  for (const auto& f : fs) {
    if (f.rule == "banned-random") ++banned;
  }
  EXPECT_EQ(banned, 3);
}

TEST(LintRandom, FlagsTimeBasedSeeding) {
  const auto fs = scan_file(classify_path("src/data/gen.cpp"),
                            "void f() { seed_with(time(nullptr)); }\n");
  EXPECT_TRUE(has_rule(fs, "banned-random"));
}

TEST(LintRandom, RngModuleIsExempt) {
  const std::string code =
      "#pragma once\n"
      "// the one module allowed to name entropy primitives\n"
      "inline unsigned hw() { std::random_device rd; return rd(); }\n";
  const auto fs = scan_file(classify_path("src/util/rng.hpp"), code);
  EXPECT_FALSE(has_rule(fs, "banned-random"));
}

TEST(LintRandom, IdentifiersContainingRandPass) {
  // `rand` must match as a whole word: operand/random_shuffle_plan etc.
  // are fine, as is a member called rand_ or a function srandomize().
  const auto fs = scan_file(
      classify_path("src/data/gen.cpp"),
      "int operand(int x) { return x; }\n"
      "void srandomize(int*) {}\n"
      "int use(int brand) { return operand(brand); }\n");
  EXPECT_FALSE(has_rule(fs, "banned-random"));
}

// -------------------------------------------------- unordered-iteration

TEST(LintUnordered, FlagsRangeForInCriticalNamespace) {
  const std::string code =
      "#include <unordered_map>\n"
      "void f(const std::unordered_map<int, int>& m) {\n"
      "  for (const auto& kv : m) { use(kv); }\n"
      "}\n";
  const auto fs = scan_file(classify_path("src/shuffle/plan.cpp"), code);
  EXPECT_TRUE(has_rule(fs, "unordered-iteration"));
}

TEST(LintUnordered, NonCriticalNamespaceIsNotChecked) {
  const std::string code =
      "void f(const std::unordered_map<int, int>& m) {\n"
      "  for (const auto& kv : m) { use(kv); }\n"
      "}\n";
  const auto fs = scan_file(classify_path("src/data/cache.cpp"), code);
  EXPECT_FALSE(has_rule(fs, "unordered-iteration"));
}

TEST(LintUnordered, JustifiedAnnotationSuppresses) {
  const std::string code =
      "void f(const std::unordered_map<int, int>& m) {\n"
      "  // lint:ordered-ok values are summed, order cannot matter\n"
      "  for (const auto& kv : m) { use(kv); }\n"
      "}\n";
  const auto fs = scan_file(classify_path("src/comm/stats.cpp"), code);
  EXPECT_FALSE(has_rule(fs, "unordered-iteration"));
  EXPECT_FALSE(has_rule(fs, "ordered-ok-justification"));
}

TEST(LintUnordered, BareAnnotationDemandsJustification) {
  const std::string code =
      "void f(const std::unordered_map<int, int>& m) {\n"
      "  for (const auto& kv : m) { use(kv); }  // lint:ordered-ok\n"
      "}\n";
  const auto fs = scan_file(classify_path("src/comm/stats.cpp"), code);
  EXPECT_FALSE(has_rule(fs, "unordered-iteration"));
  EXPECT_TRUE(has_rule(fs, "ordered-ok-justification"));
}

TEST(LintUnordered, OrderedMapIterationPasses) {
  const std::string code =
      "#include <map>\n"
      "void f(const std::map<int, int>& m) {\n"
      "  for (const auto& kv : m) { use(kv); }\n"
      "}\n";
  const auto fs = scan_file(classify_path("src/shuffle/plan.cpp"), code);
  EXPECT_FALSE(has_rule(fs, "unordered-iteration"));
}

TEST(LintUnordered, ExplicitBeginWalkIsFlagged) {
  const std::string code =
      "void f(const std::unordered_set<int>& s) {\n"
      "  for (auto it = s.begin(); it != s.end(); ++it) { use(*it); }\n"
      "}\n";
  const auto fs = scan_file(classify_path("src/sim/state.cpp"), code);
  EXPECT_TRUE(has_rule(fs, "unordered-iteration"));
}

// ------------------------------------------------------ raw-tag-literal

TEST(LintTags, FlagsLiteralTagOnIsendAndIrecv) {
  const std::string code =
      "void f(Communicator& c) {\n"
      "  c.isend(1, 7, payload());\n"
      "  c.irecv(0, 7);\n"
      "}\n";
  const auto fs = scan_file(classify_path("src/shuffle/x.cpp"), code);
  int raw = 0;
  for (const auto& f : fs) {
    if (f.rule == "raw-tag-literal") ++raw;
  }
  EXPECT_EQ(raw, 2);
}

TEST(LintTags, TagHelperExpressionsPass) {
  const std::string code =
      "void f(Communicator& c, std::size_t base, std::size_t i) {\n"
      "  c.isend(1, data_tag(base, i), payload());\n"
      "  c.irecv(0, ack_tag(base, i));\n"
      "  c.irecv(kAnySource, kAnyTag);\n"
      "}\n";
  const auto fs = scan_file(classify_path("src/shuffle/x.cpp"), code);
  EXPECT_FALSE(has_rule(fs, "raw-tag-literal"));
}

TEST(LintTags, LineAnnotationSuppressesWithJustification) {
  const std::string code =
      "void f(Communicator& c) {\n"
      "  c.isend(1, 7, payload());  // lint:tag-ok control channel probe\n"
      "}\n";
  const auto fs = scan_file(classify_path("src/shuffle/x.cpp"), code);
  EXPECT_FALSE(has_rule(fs, "raw-tag-literal"));
}

TEST(LintTags, FileAnnotationSuppressesWholeFile) {
  const std::string code =
      "// lint:tag-ok-file: transport-level test names its own channels\n"
      "void f(Communicator& c) {\n"
      "  c.isend(1, 7, payload());\n"
      "  c.irecv(0, 9);\n"
      "}\n";
  const auto fs = scan_file(classify_path("tests/test_x.cpp"), code);
  EXPECT_FALSE(has_rule(fs, "raw-tag-literal"));
}

TEST(LintTags, BareFileAnnotationDemandsJustification) {
  const std::string code =
      "// lint:tag-ok-file\n"
      "void f(Communicator& c) { c.isend(1, 7, payload()); }\n";
  const auto fs = scan_file(classify_path("tests/test_x.cpp"), code);
  EXPECT_TRUE(has_rule(fs, "tag-ok-justification"));
}

TEST(LintTags, DeclarationsAreNotCalls) {
  // A prototype's second parameter is `int tag`, which references "tag" —
  // the rule must not fire on declarations or the comm API itself.
  const std::string code =
      "Request isend(int dest, int tag, std::vector<std::byte> payload);\n"
      "Request irecv(int source, int tag);\n";
  const auto fs = scan_file(classify_path("src/comm/comm.hpp"), code);
  EXPECT_FALSE(has_rule(fs, "raw-tag-literal"));
}

// ---------------------------------------------------------- raw-stdout

TEST(LintStdout, FlagsCoutAndCerrInSrc) {
  const std::string code =
      "#include <iostream>\n"
      "void f(int rank) {\n"
      "  std::cout << rank << '\\n';\n"
      "  std::cerr << \"bad\\n\";\n"
      "}\n";
  const auto fs = scan_file(classify_path("src/shuffle/x.cpp"), code);
  int raw = 0;
  for (const auto& f : fs) {
    if (f.rule == "raw-stdout") ++raw;
  }
  EXPECT_EQ(raw, 2);
}

TEST(LintStdout, BenchesAndTestsAreExempt) {
  const std::string code = "void f() { std::cout << \"table\\n\"; }\n";
  EXPECT_FALSE(has_rule(scan_file(classify_path("bench/bench_x.cpp"), code),
                        "raw-stdout"));
  EXPECT_FALSE(has_rule(scan_file(classify_path("tests/test_x.cpp"), code),
                        "raw-stdout"));
}

TEST(LintStdout, LogModuleIsExempt) {
  const std::string code =
      "void emit() { (true ? std::cerr : std::clog) << \"line\\n\"; }\n";
  const auto fs = scan_file(classify_path("src/util/log.cpp"), code);
  EXPECT_FALSE(has_rule(fs, "raw-stdout"));
}

TEST(LintStdout, JustifiedAnnotationSuppresses) {
  const std::string code =
      "// lint:stdout-ok --help output is CLI text, not a log line\n"
      "void f() { std::cout << \"usage\\n\"; }\n";
  const auto fs = scan_file(classify_path("src/util/argparse.cpp"), code);
  EXPECT_FALSE(has_rule(fs, "raw-stdout"));
  EXPECT_FALSE(has_rule(fs, "stdout-ok-justification"));
}

TEST(LintStdout, BareAnnotationDemandsJustification) {
  const std::string code =
      "void f() { std::cout << \"usage\\n\"; }  // lint:stdout-ok\n";
  const auto fs = scan_file(classify_path("src/util/argparse.cpp"), code);
  EXPECT_FALSE(has_rule(fs, "raw-stdout"));
  EXPECT_TRUE(has_rule(fs, "stdout-ok-justification"));
}

// ------------------------------------------------------------ raw-mmap

TEST(LintMmap, FlagsMmapFamilyCallsOutsideIo) {
  const std::string code =
      "#include <sys/mman.h>\n"
      "void f(int fd, unsigned long len) {\n"
      "  void* b = ::mmap(nullptr, len, 1, 1, fd, 0);\n"
      "  msync(b, len, 4);\n"
      "  munmap(b, len);\n"
      "}\n";
  const auto fs = scan_file(classify_path("src/shuffle/x.cpp"), code);
  int raw = 0;
  for (const auto& f : fs) {
    if (f.rule == "raw-mmap") ++raw;
  }
  EXPECT_EQ(raw, 3);
}

TEST(LintMmap, IoModuleIsExempt) {
  const std::string code =
      "void* f(unsigned long len) { return ::mmap(nullptr, len, 1, 1, -1, 0);"
      " }\n";
  const auto fs = scan_file(classify_path("src/io/mmap_store.cpp"), code);
  EXPECT_FALSE(has_rule(fs, "raw-mmap"));
  EXPECT_TRUE(classify_path("src/io/mmap_store.cpp").io_module);
  EXPECT_FALSE(classify_path("src/shuffle/exchange.cpp").io_module);
}

TEST(LintMmap, CallSitesOnlyNeverIdentifiers) {
  // A member named mmap_, a declaration mentioning munmap in a comment or
  // string, or the bare word without a call never match.
  const std::string code =
      "struct S { void* mmap_ = nullptr; };\n"
      "int mmap;  // the identifier alone is not a call\n"
      "auto s = \"call mmap() here\";\n";
  const auto fs = scan_file(classify_path("src/shuffle/x.cpp"), code);
  EXPECT_FALSE(has_rule(fs, "raw-mmap"));
}

TEST(LintMmap, JustifiedAnnotationSuppresses) {
  const std::string code =
      "// lint:mmap-ok scratch arena for a fuzz target, never reclaimed\n"
      "void* f(unsigned long n) { return ::mmap(nullptr, n, 1, 1, -1, 0); }\n";
  const auto fs = scan_file(classify_path("src/util/arena.cpp"), code);
  EXPECT_FALSE(has_rule(fs, "raw-mmap"));
  EXPECT_FALSE(has_rule(fs, "mmap-ok-justification"));
}

TEST(LintMmap, BareAnnotationDemandsJustification) {
  const std::string code =
      "void f(void* b, unsigned long n) { munmap(b, n); }  // lint:mmap-ok\n";
  const auto fs = scan_file(classify_path("src/util/arena.cpp"), code);
  EXPECT_FALSE(has_rule(fs, "raw-mmap"));
  EXPECT_TRUE(has_rule(fs, "mmap-ok-justification"));
}

TEST(LintStdout, IdentifiersContainingCoutPass) {
  // `cout`/`cerr` match as whole words only: scout/concerrns etc. pass.
  const auto fs = scan_file(classify_path("src/data/x.cpp"),
                            "int scout_count(int cerrtainly) {\n"
                            "  return cerrtainly;\n"
                            "}\n");
  EXPECT_FALSE(has_rule(fs, "raw-stdout"));
}

// ----------------------------------------------------------- metric-name

TEST(LintMetricName, FlagsNamesOutsideDottedLowercase) {
  const std::string code =
      "void f(int n) {\n"
      "  DSHUF_COUNTER(\"Exchange.Bytes\").add(1);\n"
      "  DSHUF_GAUGE(\"task workers\").set(n);\n"
      "  DSHUF_HISTOGRAM_US(\"exchange/fence\").observe(1);\n"
      "}\n";
  const auto fs = scan_file(classify_path("src/shuffle/x.cpp"), code);
  int bad = 0;
  for (const auto& f : fs) {
    if (f.rule == "metric-name") ++bad;
  }
  EXPECT_EQ(bad, 3);
}

TEST(LintMetricName, AcceptsDottedLowercaseEverywhere) {
  const std::string code =
      "void f() {\n"
      "  DSHUF_COUNTER(\"exchange.bytes_sent\").add(1);\n"
      "  DSHUF_GAUGE(\"task.workers\").set(2);\n"
      "  DSHUF_HISTOGRAM_US(\"exchange.fence_wait_us\").observe(7);\n"
      "}\n";
  EXPECT_FALSE(has_rule(scan_file(classify_path("src/comm/x.cpp"), code),
                        "metric-name"));
  // The rule follows the macros into benches and tests too — names are
  // global registry keys no matter who registers them.
  EXPECT_TRUE(has_rule(
      scan_file(classify_path("tests/test_x.cpp"),
                "void g() { DSHUF_COUNTER(\"Bad.Name\").add(1); }\n"),
      "metric-name"));
}

TEST(LintMetricName, TwoMacrosOnOneLineEachGetTheirOwnLiteral) {
  const std::string code =
      "void f() { DSHUF_COUNTER(\"ok.name\").add(1); "
      "DSHUF_COUNTER(\"BAD\").add(1); }\n";
  const auto fs = scan_file(classify_path("src/obs/x.cpp"), code);
  int bad = 0;
  for (const auto& f : fs) {
    if (f.rule == "metric-name") ++bad;
  }
  EXPECT_EQ(bad, 1);
}

TEST(LintMetricName, ComputedNamesAndCommentsAreOutOfScope) {
  // An identifier argument (the registry helper, a macro definition) and
  // macro names inside comments/strings never trip the rule.
  const std::string code =
      "#define DSHUF_COUNTER(name) registry().counter(name)\n"
      "// DSHUF_COUNTER(\"Not.Code\") in prose\n"
      "void f(const char* n) { DSHUF_COUNTER(n).add(1); }\n";
  EXPECT_FALSE(has_rule(scan_file(classify_path("src/obs/x.cpp"), code),
                        "metric-name"));
}

// ------------------------------------------------------ include hygiene

TEST(LintHygiene, HeaderWithoutPragmaOnce) {
  const std::string code =
      "#ifndef FOO_H\n#define FOO_H\nint x;\n#endif\n";
  const auto fs = scan_file(classify_path("src/util/foo.hpp"), code);
  EXPECT_TRUE(has_rule(fs, "pragma-once"));
}

TEST(LintHygiene, LeadingCommentBeforePragmaOnceIsFine) {
  const std::string code = "// docs first\n#pragma once\nint x;\n";
  const auto fs = scan_file(classify_path("src/util/foo.hpp"), code);
  EXPECT_FALSE(has_rule(fs, "pragma-once"));
}

TEST(LintHygiene, SourceFilesNeedNoPragmaOnce) {
  const auto fs =
      scan_file(classify_path("src/util/foo.cpp"), "int x = 1;\n");
  EXPECT_FALSE(has_rule(fs, "pragma-once"));
}

TEST(LintHygiene, RelativeIncludeAndUsingNamespaceStd) {
  const std::string code =
      "#pragma once\n"
      "#include \"../util/error.hpp\"\n"
      "using namespace std;\n";
  const auto fs = scan_file(classify_path("src/util/foo.hpp"), code);
  EXPECT_TRUE(has_rule(fs, "relative-include"));
  EXPECT_TRUE(has_rule(fs, "using-namespace-std"));
}

TEST(LintHygiene, RootedIncludePasses) {
  const std::string code =
      "#pragma once\n#include \"util/error.hpp\"\n#include <vector>\n";
  const auto fs = scan_file(classify_path("src/util/foo.hpp"), code);
  EXPECT_TRUE(fs.empty()) << rules_of(fs).size() << " findings";
}

// ----------------------------------------------------------- plumbing

TEST(LintPlumbing, FindingsCarryOneBasedLines) {
  const std::string code = "int a;\nint b = std::rand();\n";
  const auto fs = scan_file(classify_path("src/data/x.cpp"), code);
  ASSERT_EQ(fs.size(), 1U);
  EXPECT_EQ(fs[0].line, 2U);
  EXPECT_EQ(fs[0].rule, "banned-random");
  EXPECT_EQ(fs[0].file, "src/data/x.cpp");
}

TEST(LintPlumbing, CleanFileYieldsNoFindings) {
  const std::string code =
      "#include \"util/rng.hpp\"\n"
      "int draw(dshuf::Rng& rng) { return static_cast<int>(rng.next()); }\n";
  const auto fs = scan_file(classify_path("src/data/x.cpp"), code);
  EXPECT_TRUE(fs.empty());
}

}  // namespace
}  // namespace dshuf::lint
