#include "nn/norm.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "gradcheck.hpp"

namespace dshuf::nn {
namespace {

TEST(BatchNorm, NormalisesBatchStatistics) {
  BatchNorm1d bn(2);
  const Tensor x({4, 2}, {1, 10, 2, 20, 3, 30, 4, 40});
  const Tensor y = bn.forward(x, true);
  // Each column should have ~zero mean and ~unit variance (biased).
  for (std::size_t c = 0; c < 2; ++c) {
    double mean = 0;
    double var = 0;
    for (std::size_t i = 0; i < 4; ++i) mean += y.at(i, c);
    mean /= 4;
    for (std::size_t i = 0; i < 4; ++i) {
      var += (y.at(i, c) - mean) * (y.at(i, c) - mean);
    }
    var /= 4;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm, GammaBetaApplied) {
  BatchNorm1d bn(1);
  bn.params()[0]->value = Tensor({1}, {2.0F});  // gamma
  bn.params()[1]->value = Tensor({1}, {5.0F});  // beta
  const Tensor x({2, 1}, {-1, 1});
  const Tensor y = bn.forward(x, true);
  // xhat = {-1, 1} (up to eps), y = 2*xhat + 5.
  EXPECT_NEAR(y.at(0, 0), 3.0F, 1e-2F);
  EXPECT_NEAR(y.at(1, 0), 7.0F, 1e-2F);
}

TEST(BatchNorm, RunningStatsConvergeToDataStats) {
  BatchNorm1d bn(1, /*momentum=*/0.5F);
  Rng rng(1);
  for (int step = 0; step < 60; ++step) {
    Tensor x({64, 1});
    for (std::size_t i = 0; i < 64; ++i) {
      x.vec()[i] = static_cast<float>(rng.normal(3.0, 2.0));
    }
    bn.forward(x, true);
  }
  EXPECT_NEAR(bn.running_mean().at(0), 3.0F, 0.5F);
  EXPECT_NEAR(bn.running_var().at(0), 4.0F, 1.0F);
}

TEST(BatchNorm, EvalUsesRunningStats) {
  BatchNorm1d bn(1, /*momentum=*/1.0F);  // running <- batch exactly
  const Tensor train_x({4, 1}, {0, 2, 4, 6});  // mean 3, var(unbiased) ~6.67
  bn.forward(train_x, true);
  const Tensor x({1, 1}, {3.0F});
  const Tensor y = bn.forward(x, /*training=*/false);
  EXPECT_NEAR(y.at(0, 0), 0.0F, 1e-3F);  // (3 - 3)/sqrt(var)
}

TEST(BatchNorm, EvalDoesNotTouchRunningStats) {
  BatchNorm1d bn(2);
  const Tensor x({3, 2}, {1, 2, 3, 4, 5, 6});
  const auto mean_before = bn.running_mean();
  bn.forward(x, false);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_FLOAT_EQ(bn.running_mean().at(i), mean_before.at(i));
  }
}

TEST(BatchNorm, GradientsMatchFiniteDifferences) {
  Rng rng(2);
  BatchNorm1d bn(3);
  // Larger gamma/beta diversity so the check exercises all paths.
  bn.params()[0]->value = Tensor({3}, {1.5F, 0.7F, 2.0F});
  bn.params()[1]->value = Tensor({3}, {0.1F, -0.2F, 0.3F});
  Tensor x = Tensor::randn({6, 3}, rng, 2.0F);
  testing::GradCheckOptions opt;
  opt.epsilon = 5e-3F;
  opt.tolerance = 5e-2F;
  testing::check_gradients(bn, x, 18, rng, opt);
}

TEST(BatchNorm, RejectsBatchOfOneInTraining) {
  BatchNorm1d bn(2);
  Tensor x({1, 2});
  EXPECT_THROW(bn.forward(x, true), CheckError);
}

// The property the whole paper leans on: batch statistics depend on the
// batch COMPOSITION. The same sample normalises differently depending on
// what it is batched with — this is the mechanism by which class-skewed
// local shards hurt accuracy (Section IV-A-1).
TEST(BatchNorm, OutputDependsOnBatchComposition) {
  BatchNorm1d bn(1);
  const Tensor batch_a({2, 1}, {1.0F, 3.0F});
  const Tensor batch_b({2, 1}, {1.0F, -5.0F});
  const float ya = bn.forward(batch_a, true).at(0, 0);
  const float yb = bn.forward(batch_b, true).at(0, 0);
  EXPECT_GT(std::fabs(ya - yb), 0.5F);
}

TEST(GroupNorm, NormalisesPerSamplePerGroup) {
  GroupNorm gn(4, 2);
  Rng rng(3);
  const Tensor x = Tensor::randn({3, 4}, rng, 3.0F);
  const Tensor y = gn.forward(x, true);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t g = 0; g < 2; ++g) {
      const double a = y.at(i, g * 2);
      const double b = y.at(i, g * 2 + 1);
      EXPECT_NEAR(a + b, 0.0, 1e-4);          // zero mean per group
      EXPECT_NEAR(a * a + b * b, 2.0, 0.05);  // unit variance per group
    }
  }
}

// GroupNorm's counter-property: per-sample statistics make the output
// INDEPENDENT of batch composition — the paper's suggested remedy.
TEST(GroupNorm, OutputIndependentOfBatchComposition) {
  GroupNorm gn(4, 2);
  Rng rng(4);
  const Tensor probe = Tensor::randn({1, 4}, rng);
  Tensor batch_a({2, 4});
  Tensor batch_b({2, 4});
  for (std::size_t c = 0; c < 4; ++c) {
    batch_a.at(0, c) = probe.at(0, c);
    batch_b.at(0, c) = probe.at(0, c);
    batch_a.at(1, c) = 10.0F;
    batch_b.at(1, c) = -7.0F;
  }
  const Tensor ya = gn.forward(batch_a, true);
  const Tensor yb = gn.forward(batch_b, true);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_FLOAT_EQ(ya.at(0, c), yb.at(0, c));
  }
}

TEST(GroupNorm, GradientsMatchFiniteDifferences) {
  Rng rng(5);
  GroupNorm gn(4, 2);
  gn.params()[0]->value = Tensor({4}, {1.2F, 0.8F, 1.5F, 0.5F});
  gn.params()[1]->value = Tensor({4}, {0.0F, 0.1F, -0.1F, 0.2F});
  Tensor x = Tensor::randn({3, 4}, rng, 2.0F);
  testing::GradCheckOptions opt;
  opt.epsilon = 5e-3F;
  opt.tolerance = 5e-2F;
  testing::check_gradients(gn, x, 12, rng, opt);
}

TEST(GroupNorm, RejectsIndivisibleGroups) {
  EXPECT_THROW(GroupNorm(5, 2), CheckError);
  EXPECT_THROW(GroupNorm(4, 0), CheckError);
}

}  // namespace
}  // namespace dshuf::nn
