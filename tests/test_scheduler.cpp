#include "shuffle/scheduler.hpp"

#include <set>

#include <gtest/gtest.h>

#include "shuffle/shuffler.hpp"

namespace dshuf::shuffle {
namespace {

std::vector<std::vector<SampleId>> make_shards(std::size_t n,
                                               std::size_t workers) {
  std::vector<std::vector<SampleId>> shards(workers);
  for (std::size_t i = 0; i < n; ++i) {
    shards[i % workers].push_back(static_cast<SampleId>(i));
  }
  return shards;
}

void run_epoch(Scheduler& s, std::size_t epoch) {
  s.scheduling(epoch);
  const std::size_t iters = s.iterations_per_epoch();
  for (std::size_t it = 0; it < iters; ++it) {
    const auto chunk = s.communicate(it);
    s.synchronize(chunk);
  }
  s.clean_local_storage();
}

TEST(Scheduler, LifecycleMatchesPaperProtocol) {
  Scheduler s(make_shards(80, 4), 0.25, /*local_batch=*/5, /*seed=*/7);
  EXPECT_EQ(s.iterations_per_epoch(), 4U);  // 20 / 5
  run_epoch(s, 0);
  const auto& stats = s.last_stats();
  const std::size_t quota = exchange_quota(20, 0.25);
  for (std::size_t w = 0; w < 4; ++w) {
    EXPECT_EQ(stats.sent_per_worker[w], quota);
    EXPECT_EQ(stats.received_per_worker[w], quota);
  }
}

// The equivalence the Scheduler promises: after each epoch, shard CONTENTS
// (id multisets per worker) match PartialLocalShuffler for the same
// (seed, epoch, Q).
TEST(Scheduler, ShardContentsMatchPartialLocalShuffler) {
  const double q = 0.3;
  const std::uint64_t seed = 55;
  Scheduler sched(make_shards(96, 6), q, 4, seed);
  PartialLocalShuffler pls(make_shards(96, 6), q, seed);
  for (std::size_t e = 0; e < 4; ++e) {
    run_epoch(sched, e);
    pls.begin_epoch(e);
    for (std::size_t w = 0; w < 6; ++w) {
      const auto& a = sched.stores()[w].ids();
      const auto& b = pls.stores()[w].ids();
      EXPECT_EQ(std::multiset<SampleId>(a.begin(), a.end()),
                std::multiset<SampleId>(b.begin(), b.end()))
          << "worker " << w << " epoch " << e;
    }
  }
}

TEST(Scheduler, ChunksDeliverQTimesBatchPerIteration) {
  // Q = 0.5, b = 4 => 2 rounds per iteration; quota 10 over 5 iterations.
  Scheduler s(make_shards(80, 4), 0.5, 4, 7);
  s.scheduling(0);
  std::size_t total = 0;
  for (std::size_t it = 0; it < s.iterations_per_epoch(); ++it) {
    const auto chunk = s.communicate(it);
    EXPECT_LE(chunk.num_rounds, 2U);
    total += chunk.num_rounds;
    s.synchronize(chunk);
  }
  EXPECT_EQ(total, exchange_quota(20, 0.5));
  s.clean_local_storage();
}

TEST(Scheduler, CleanFlushesUndeliveredRounds) {
  // Never call communicate(): clean_local_storage must still complete the
  // exchange (Algorithm 1 line 7).
  Scheduler s(make_shards(40, 4), 0.5, 5, 7);
  s.scheduling(0);
  s.clean_local_storage();
  const auto& stats = s.last_stats();
  for (std::size_t w = 0; w < 4; ++w) {
    EXPECT_EQ(stats.sent_per_worker[w], exchange_quota(10, 0.5));
  }
}

TEST(Scheduler, CurrentEpochOrderIsPreExchange) {
  // Fig. 4 semantics: the samples trained on in epoch e are the shard as
  // of the START of epoch e.
  auto shards = make_shards(40, 4);
  const std::set<SampleId> w0(shards[0].begin(), shards[0].end());
  Scheduler s(std::move(shards), 1.0, 5, 7);
  s.scheduling(0);
  for (auto id : s.local_order(0)) {
    EXPECT_TRUE(w0.count(id)) << "trained on a sample received mid-epoch";
  }
}

TEST(Scheduler, ConservationAcrossEpochs) {
  Scheduler s(make_shards(60, 5), 0.4, 3, 21);
  std::multiset<SampleId> expected;
  for (std::size_t i = 0; i < 60; ++i) {
    expected.insert(static_cast<SampleId>(i));
  }
  for (std::size_t e = 0; e < 4; ++e) {
    run_epoch(s, e);
    std::multiset<SampleId> got;
    for (const auto& store : s.stores()) {
      got.insert(store.ids().begin(), store.ids().end());
    }
    EXPECT_EQ(got, expected);
  }
}

TEST(Scheduler, MisuseIsRejected) {
  Scheduler s(make_shards(40, 4), 0.5, 5, 7);
  EXPECT_THROW(s.communicate(0), CheckError);          // before scheduling
  EXPECT_THROW(s.clean_local_storage(), CheckError);   // before scheduling
  s.scheduling(0);
  EXPECT_THROW(s.scheduling(1), CheckError);           // double-open
  s.clean_local_storage();
  EXPECT_NO_THROW(s.scheduling(1));
  s.clean_local_storage();
}

TEST(Scheduler, QZeroIsPureLocal) {
  Scheduler s(make_shards(40, 4), 0.0, 5, 7);
  run_epoch(s, 0);
  EXPECT_EQ(s.last_stats().total_sent(), 0U);
}

}  // namespace
}  // namespace dshuf::shuffle
