#include "nn/conv.hpp"

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "gradcheck.hpp"
#include "nn/loss.hpp"
#include "nn/metrics.hpp"
#include "nn/optimizer.hpp"

namespace dshuf::nn {
namespace {

TEST(Conv1d, IdentityKernelPassesSignalThrough) {
  Rng rng(1);
  Conv1d conv(1, 1, 6, 3, rng);
  // Kernel [0, 1, 0] with zero bias is the identity under same-padding.
  conv.params()[0]->value = Tensor({1, 1, 3}, {0.0F, 1.0F, 0.0F});
  conv.params()[1]->value = Tensor({1}, {0.0F});
  const Tensor x({1, 6}, {1, 2, 3, 4, 5, 6});
  const Tensor y = conv.forward(x, true);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(y.at(i), x.at(i));
}

TEST(Conv1d, ShiftKernelWithZeroPadding) {
  Rng rng(1);
  Conv1d conv(1, 1, 4, 3, rng);
  // Kernel [1, 0, 0] reads x[t-1]: shifts the signal right, zero first.
  conv.params()[0]->value = Tensor({1, 1, 3}, {1.0F, 0.0F, 0.0F});
  conv.params()[1]->value = Tensor({1}, {0.0F});
  const Tensor x({1, 4}, {10, 20, 30, 40});
  const Tensor y = conv.forward(x, true);
  EXPECT_FLOAT_EQ(y.at(0), 0.0F);   // padding
  EXPECT_FLOAT_EQ(y.at(1), 10.0F);
  EXPECT_FLOAT_EQ(y.at(3), 30.0F);
}

TEST(Conv1d, BiasIsAddedPerOutputChannel) {
  Rng rng(1);
  Conv1d conv(1, 2, 3, 1, rng);
  conv.params()[0]->value = Tensor({2, 1, 1}, {0.0F, 0.0F});
  conv.params()[1]->value = Tensor({2}, {1.5F, -2.0F});
  const Tensor x({1, 3});
  const Tensor y = conv.forward(x, true);
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_FLOAT_EQ(y.at(0, t), 1.5F);
    EXPECT_FLOAT_EQ(y.at(0, 3 + t), -2.0F);
  }
}

TEST(Conv1d, GradientsMatchFiniteDifferences) {
  Rng rng(2);
  Conv1d conv(2, 3, 5, 3, rng);
  Tensor x = Tensor::randn({2, 2 * 5}, rng);
  testing::check_gradients(conv, x, 2 * 3 * 5, rng);
}

TEST(Conv1d, RejectsBadConfigurations) {
  Rng rng(1);
  EXPECT_THROW(Conv1d(1, 1, 4, 2, rng), CheckError);  // even kernel
  EXPECT_THROW(Conv1d(1, 1, 2, 3, rng), CheckError);  // kernel > length
  Conv1d ok(1, 1, 4, 3, rng);
  Tensor wrong({1, 5});
  EXPECT_THROW(ok.forward(wrong, true), CheckError);
}

TEST(MaxPool1d, SelectsWindowMaxima) {
  MaxPool1d pool(1, 6, 2);
  const Tensor x({1, 6}, {1, 5, 2, 2, 9, 3});
  const Tensor y = pool.forward(x, true);
  ASSERT_EQ(y.cols(), 3U);
  EXPECT_FLOAT_EQ(y.at(0), 5.0F);
  EXPECT_FLOAT_EQ(y.at(1), 2.0F);
  EXPECT_FLOAT_EQ(y.at(2), 9.0F);
}

TEST(MaxPool1d, BackwardRoutesGradientToArgmax) {
  MaxPool1d pool(1, 4, 2);
  const Tensor x({1, 4}, {1, 5, 9, 2});
  pool.forward(x, true);
  const Tensor g({1, 2}, {10.0F, 20.0F});
  const Tensor gi = pool.backward(g);
  EXPECT_FLOAT_EQ(gi.at(0), 0.0F);
  EXPECT_FLOAT_EQ(gi.at(1), 10.0F);
  EXPECT_FLOAT_EQ(gi.at(2), 20.0F);
  EXPECT_FLOAT_EQ(gi.at(3), 0.0F);
}

TEST(MaxPool1d, MultiChannelLayout) {
  MaxPool1d pool(2, 4, 2);
  // Channel 0: [1 2 3 4]; channel 1: [8 7 6 5].
  const Tensor x({1, 8}, {1, 2, 3, 4, 8, 7, 6, 5});
  const Tensor y = pool.forward(x, true);
  EXPECT_FLOAT_EQ(y.at(0), 2.0F);
  EXPECT_FLOAT_EQ(y.at(1), 4.0F);
  EXPECT_FLOAT_EQ(y.at(2), 8.0F);
  EXPECT_FLOAT_EQ(y.at(3), 6.0F);
}

TEST(MaxPool1d, RejectsNonDividingWindow) {
  EXPECT_THROW(MaxPool1d(1, 5, 2), CheckError);
}

TEST(MakeCnn, ShapesComposeAcrossBlocks) {
  Rng rng(3);
  CnnSpec spec{.input_length = 16,
               .channels = {4, 8},
               .kernel = 3,
               .pool = 2,
               .num_classes = 5,
               .norm = NormKind::kBatchNorm};
  Model m = make_cnn(spec, rng);
  Tensor x = Tensor::randn({6, 16}, rng);
  const Tensor y = m.forward(x, true);
  EXPECT_EQ(y.rows(), 6U);
  EXPECT_EQ(y.cols(), 5U);
  // Backward runs end to end.
  m.zero_grad();
  Tensor g(y.shape());
  g.fill(0.1F);
  m.backward(g);
  EXPECT_GT(m.gradients().size(), 0U);
}

TEST(MakeCnn, LearnsTheSyntheticTask) {
  const auto split = data::make_class_clusters_split(
      {.num_classes = 4,
       .samples_per_class = 48,
       .feature_dim = 16,
       .cluster_separation = 3.0,
       .seed = 9});
  Rng rng(5);
  CnnSpec spec{.input_length = 16,
               .channels = {8},
               .kernel = 3,
               .pool = 2,
               .num_classes = 4,
               .norm = NormKind::kBatchNorm};
  Model m = make_cnn(spec, rng);
  Sgd opt(m, SgdConfig{.lr = 0.05F, .momentum = 0.9F});
  SoftmaxCrossEntropy ce;
  std::vector<data::SampleId> order(split.train.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<data::SampleId>(i);
  }
  Rng shuffle_rng(7);
  for (int epoch = 0; epoch < 12; ++epoch) {
    shuffle_rng.shuffle(order);
    for (std::size_t off = 0; off + 16 <= order.size(); off += 16) {
      const std::span<const data::SampleId> ids(order.data() + off, 16);
      const Tensor x = split.train.gather(ids);
      const auto y = split.train.gather_labels(ids);
      m.zero_grad();
      const Tensor logits = m.forward(x, true);
      ce.forward(logits, y);
      m.backward(ce.backward());
      opt.step();
    }
  }
  std::vector<data::SampleId> val_ids(split.val.size());
  for (std::size_t i = 0; i < val_ids.size(); ++i) {
    val_ids[i] = static_cast<data::SampleId>(i);
  }
  const Tensor logits =
      m.forward(split.val.gather(val_ids), /*training=*/false);
  EXPECT_GT(top1_accuracy(logits, split.val.gather_labels(val_ids)), 0.5);
}

TEST(MakeCnn, RejectsNonDividingPool) {
  Rng rng(1);
  CnnSpec spec{.input_length = 10,
               .channels = {4},
               .kernel = 3,
               .pool = 3,
               .num_classes = 3};
  EXPECT_THROW(make_cnn(spec, rng), CheckError);
}

}  // namespace
}  // namespace dshuf::nn
