// Golden determinism regression tests.
//
// Every experiment in this repo is a pure function of its seeds; the
// figures in EXPERIMENTS.md are only reproducible if the underlying
// streams never change. These tests pin golden values so an accidental
// change to the RNG, the fork-tag layout, or the consumption order of any
// stream fails loudly instead of silently shifting every result.
// If a change is INTENTIONAL (e.g. a new algorithm draws differently),
// update the goldens and note the shift in EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "shuffle/exchange_plan.hpp"
#include "shuffle/shuffler.hpp"
#include "util/rng.hpp"

namespace dshuf {
namespace {

std::uint64_t fnv1a(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

TEST(Determinism, RngStreamGolden) {
  Rng rng(42);
  std::vector<std::uint64_t> draws(16);
  for (auto& d : draws) d = rng.next();
  EXPECT_EQ(draws[0], 1546998764402558742ULL);
  EXPECT_EQ(fnv1a(draws.data(), draws.size() * sizeof(std::uint64_t)),
            4094723821598404166ULL);
}

TEST(Determinism, PermutationGolden) {
  Rng rng(7);
  const auto perm = rng.permutation(64);
  EXPECT_EQ(fnv1a(perm.data(), perm.size() * sizeof(std::uint32_t)),
            7163676831470682259ULL);
}

TEST(Determinism, ExchangePlanGolden) {
  const shuffle::ExchangePlan plan(123, 5, 32, 8);
  std::vector<int> dests;
  for (std::size_t i = 0; i < plan.rounds(); ++i) {
    for (int r = 0; r < 32; ++r) dests.push_back(plan.dest(i, r));
  }
  EXPECT_EQ(fnv1a(dests.data(), dests.size() * sizeof(int)),
            11757177967146572323ULL);
}

TEST(Determinism, PartialShufflerThreeEpochGolden) {
  std::vector<std::vector<shuffle::SampleId>> shards(8);
  for (std::size_t i = 0; i < 128; ++i) {
    shards[i % 8].push_back(static_cast<shuffle::SampleId>(i));
  }
  shuffle::PartialLocalShuffler pls(std::move(shards), 0.25, 99);
  for (std::size_t e = 0; e < 3; ++e) pls.begin_epoch(e);
  std::vector<shuffle::SampleId> all;
  for (int w = 0; w < 8; ++w) {
    const auto& o = pls.local_order(w);
    all.insert(all.end(), o.begin(), o.end());
  }
  EXPECT_EQ(fnv1a(all.data(), all.size() * sizeof(shuffle::SampleId)),
            4125090101849834915ULL);
}

TEST(Determinism, SyntheticDatasetGolden) {
  const auto ds = data::make_class_clusters(
      {.num_classes = 4, .samples_per_class = 8, .feature_dim = 6,
       .seed = 11});
  EXPECT_FLOAT_EQ(ds.features().at(0, 0), 0.0879346132F);
  EXPECT_EQ(fnv1a(ds.features().data(),
                  ds.features().size() * sizeof(float)),
            18216332009516254503ULL);
}

}  // namespace
}  // namespace dshuf
