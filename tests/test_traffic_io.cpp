#include <filesystem>

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "io/file_store.hpp"
#include "io/storage.hpp"
#include "shuffle/traffic.hpp"

namespace dshuf {
namespace {

constexpr double kMiB = 1024.0 * 1024.0;
constexpr double kGiB = 1024.0 * kMiB;
constexpr double kTiB = 1024.0 * kGiB;

// Section III-B's worked example: Q = 0.1, 512 workers, ImageNet-21K
// (1.1 TiB) => send 225 MiB, read ~2 GiB locally; global shuffling reads
// 2.2 GiB from the PFS.
TEST(Traffic, PaperWorkedExample) {
  const auto r = shuffle::compute_traffic(
      {.dataset_bytes = 1.1 * kTiB, .workers = 512, .q = 0.1});
  EXPECT_NEAR(r.sent_per_worker / kMiB, 225.0, 5.0);
  EXPECT_NEAR(r.local_read_per_worker / kGiB, 2.0, 0.05);
  EXPECT_NEAR(r.pfs_read_per_worker_gs / kGiB, 2.2, 0.05);
}

// The paper's headline storage number: 4,096 Fugaku workers at Q = 0.1
// each store ~0.03% of the dataset ((1 + 0.1) / 4096).
TEST(Traffic, FugakuStorageFraction) {
  const auto r = shuffle::compute_traffic(
      {.dataset_bytes = 140e9, .workers = 4096, .q = 0.1});
  EXPECT_NEAR(r.pls_fraction_of_dataset, 1.1 / 4096.0, 1e-9);
  EXPECT_LT(r.pls_fraction_of_dataset, 0.0003);
  EXPECT_GT(r.pls_fraction_of_dataset, 0.0002);
}

TEST(Traffic, StorageOrderingAcrossStrategies) {
  const auto r = shuffle::compute_traffic(
      {.dataset_bytes = 1e12, .workers = 128, .q = 0.3});
  EXPECT_LT(r.storage_local, r.storage_pls);
  EXPECT_LT(r.storage_pls, r.storage_global);
  EXPECT_NEAR(r.storage_pls / r.storage_local, 1.3, 1e-9);
}

TEST(Traffic, QOneSendsWholeShardAndReadsNothing) {
  const auto r = shuffle::compute_traffic(
      {.dataset_bytes = 1e9, .workers = 8, .q = 1.0});
  EXPECT_DOUBLE_EQ(r.sent_per_worker, r.shard_bytes);
  EXPECT_DOUBLE_EQ(r.local_read_per_worker, 0.0);
}

TEST(Traffic, RejectsInvalidParams) {
  EXPECT_THROW(
      shuffle::compute_traffic({.dataset_bytes = 0, .workers = 8, .q = 0.1}),
      CheckError);
  EXPECT_THROW(
      shuffle::compute_traffic({.dataset_bytes = 1, .workers = 0, .q = 0.1}),
      CheckError);
  EXPECT_THROW(
      shuffle::compute_traffic({.dataset_bytes = 1, .workers = 8, .q = 2.0}),
      CheckError);
}

// ------------------------------------------------------------ io module --

TEST(Storage, ProfilesHaveSaneTiers) {
  for (const auto& p : {io::abci_profile(), io::fugaku_profile()}) {
    EXPECT_GT(p.pfs.shared_backend_bps, 0.0) << p.name;
    EXPECT_GT(p.node_local.bandwidth_bps, 0.0) << p.name;
    EXPECT_GT(p.network_injection_bps, 0.0) << p.name;
    // PFS has far more capacity but node-local has lower latency.
    EXPECT_GT(p.pfs.capacity_bytes, p.node_local.capacity_bytes) << p.name;
    EXPECT_LT(p.node_local.per_file_latency_s, p.pfs.per_file_latency_s)
        << p.name;
    // PFS congestion variance dominates local variance (the Fig. 10
    // straggler story).
    EXPECT_GT(p.pfs.straggler_sigma, p.node_local.straggler_sigma) << p.name;
  }
}

TEST(Storage, Figure1DataIsPlausible) {
  const auto& systems = io::top500_systems();
  EXPECT_EQ(systems.size(), 15U);
  EXPECT_EQ(systems.front().name, "Fugaku");
  std::size_t with_storage = 0;
  std::size_t dl_designed = 0;
  for (const auto& s : systems) {
    if (s.node_local_bytes > 0) ++with_storage;
    if (s.dl_designed) ++dl_designed;
  }
  // The paper's point: many top systems have little or no local storage.
  EXPECT_LT(with_storage, systems.size());
  EXPECT_GE(dl_designed, 2U);

  const auto& datasets = io::figure1_datasets();
  EXPECT_GE(datasets.size(), 9U);
  // Sorted largest-first and spanning ~GBs to tens of TBs.
  for (std::size_t i = 1; i < datasets.size(); ++i) {
    EXPECT_GE(datasets[i - 1].bytes, datasets[i].bytes);
  }
  EXPECT_GT(datasets.front().bytes, 1e13);
  EXPECT_LT(datasets.back().bytes, 1e12);
}

TEST(Storage, StagingCostShrinksByMWithSharding) {
  const auto sys = io::abci_profile();
  const double d = 1e12;
  const auto repl = io::staging_cost(sys, d, 512, /*replicate_full=*/true);
  const auto shard = io::staging_cost(sys, d, 512, /*replicate_full=*/false);
  EXPECT_DOUBLE_EQ(repl.bytes_per_worker, d);
  EXPECT_NEAR(shard.bytes_per_worker, d / 512, 1e-3);
  EXPECT_NEAR(repl.aggregate_pfs_bytes / shard.aggregate_pfs_bytes, 512.0,
              1e-9);
  EXPECT_GT(repl.time_s, 100.0 * shard.time_s);
  // PLS pays the (1+Q) factor only.
  const auto pls = io::staging_cost(sys, d, 512, false, 0.1);
  EXPECT_NEAR(pls.bytes_per_worker / shard.bytes_per_worker, 1.1, 1e-9);
}

class FileStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dshuf_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(FileStoreTest, SaveLoadRoundTrip) {
  io::FileSampleStore store(dir_);
  const std::vector<std::byte> payload{std::byte{1}, std::byte{2},
                                       std::byte{3}};
  store.save(7, payload);
  EXPECT_TRUE(store.contains(7));
  EXPECT_EQ(store.load(7), payload);
}

TEST_F(FileStoreTest, RemoveDeletesFile) {
  io::FileSampleStore store(dir_);
  store.save(1, std::vector<std::byte>(4, std::byte{9}));
  store.remove(1);
  EXPECT_FALSE(store.contains(1));
  EXPECT_THROW(store.load(1), CheckError);
  EXPECT_THROW(store.remove(1), CheckError);
}

TEST_F(FileStoreTest, ListAndDiskBytes) {
  io::FileSampleStore store(dir_);
  store.save(3, std::vector<std::byte>(10));
  store.save(1, std::vector<std::byte>(20));
  store.save(2, std::vector<std::byte>(30));
  const auto ids = store.list();
  EXPECT_EQ(ids, (std::vector<data::SampleId>{1, 2, 3}));
  EXPECT_EQ(store.disk_bytes(), 60U);
}

TEST_F(FileStoreTest, OverwriteReplacesPayload) {
  io::FileSampleStore store(dir_);
  store.save(5, std::vector<std::byte>(10, std::byte{0}));
  store.save(5, std::vector<std::byte>(2, std::byte{1}));
  EXPECT_EQ(store.load(5).size(), 2U);
  EXPECT_EQ(store.disk_bytes(), 2U);
}

// Pins the documented move contract: the target adopts the source's
// directory, the moved-from store ends with an EMPTY dir(), a self-move
// leaves the store fully intact, and no move ever deletes bytes on disk.
TEST_F(FileStoreTest, FileStoreMoveContract) {
  const std::vector<std::byte> payload{std::byte{4}, std::byte{2}};
  io::FileSampleStore a(dir_);
  a.save(1, payload);

  // Move-construction: b adopts the directory, a is emptied.
  io::FileSampleStore b(std::move(a));
  EXPECT_EQ(b.dir(), dir_);
  EXPECT_TRUE(a.dir().empty());  // NOLINT(bugprone-use-after-move) — pinned
  EXPECT_EQ(b.load(1), payload);

  // Move-assignment: c adopts from b, b is emptied; bytes survive.
  io::FileSampleStore c(dir_ / "elsewhere");
  c = std::move(b);
  EXPECT_EQ(c.dir(), dir_);
  EXPECT_TRUE(b.dir().empty());  // NOLINT(bugprone-use-after-move) — pinned
  EXPECT_EQ(c.load(1), payload);

  // Self-move must not wipe the store (the guard the satellite added).
  io::FileSampleStore& cref = c;
  c = std::move(cref);
  EXPECT_EQ(c.dir(), dir_);
  EXPECT_EQ(c.load(1), payload);

  // Reassigning the moved-from store makes it usable again.
  b = io::FileSampleStore(dir_ / "fresh");
  b.save(2, payload);
  EXPECT_TRUE(b.contains(2));
  // And the original directory still holds sample 1 on disk.
  EXPECT_TRUE(std::filesystem::exists(dir_ / "1.sample"));
}

TEST_F(FileStoreTest, SampleSerialisationRoundTrip) {
  data::ClassClusterSpec spec{.num_classes = 3,
                              .samples_per_class = 4,
                              .feature_dim = 6,
                              .seed = 2};
  const auto ds = data::make_class_clusters(spec);
  io::FileSampleStore store(dir_);
  for (data::SampleId id = 0; id < 5; ++id) {
    store.save(id, io::serialize_sample(ds, id));
  }
  for (data::SampleId id = 0; id < 5; ++id) {
    const auto s = io::deserialize_sample(store.load(id));
    EXPECT_EQ(s.label, ds.label(id));
    ASSERT_EQ(s.features.size(), 6U);
    for (std::size_t k = 0; k < 6; ++k) {
      EXPECT_FLOAT_EQ(s.features[k], ds.features().at(id, k));
    }
  }
}

}  // namespace
}  // namespace dshuf
