// Edge-case and failure-injection coverage across modules: the inputs a
// downstream user will eventually feed the library.
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "nn/norm.hpp"
#include "shuffle/hierarchical.hpp"
#include "shuffle/scheduler.hpp"
#include "shuffle/shuffler.hpp"
#include "sim/trainer.hpp"

namespace dshuf {
namespace {

using shuffle::SampleId;

std::vector<std::vector<SampleId>> make_shards(std::size_t n,
                                               std::size_t workers) {
  std::vector<std::vector<SampleId>> shards(workers);
  for (std::size_t i = 0; i < n; ++i) {
    shards[i % workers].push_back(static_cast<SampleId>(i));
  }
  return shards;
}

TEST(EdgeCases, PartialShufflerWithUnevenShards) {
  // 97 samples over 8 workers: shard sizes 13 and 12. Quota derives from
  // the MIN shard so balance holds; sizes must stay constant per worker.
  const std::size_t n = 97;
  shuffle::PartialLocalShuffler pls(make_shards(n, 8), 0.3, 5);
  std::vector<std::size_t> sizes;
  for (int w = 0; w < 8; ++w) sizes.push_back(pls.local_order(w).size());
  for (std::size_t e = 0; e < 5; ++e) {
    pls.begin_epoch(e);
    std::multiset<SampleId> all;
    for (int w = 0; w < 8; ++w) {
      const auto& o = pls.local_order(w);
      all.insert(o.begin(), o.end());
      EXPECT_EQ(o.size(), (w < 1) ? 13U : 12U) << "worker " << w;
    }
    EXPECT_EQ(all.size(), n);
    EXPECT_EQ(std::set<SampleId>(all.begin(), all.end()).size(), n);
  }
}

TEST(EdgeCases, SchedulerWithBatchLargerThanShard) {
  // One iteration per epoch; clean_local_storage still flushes the quota.
  shuffle::Scheduler s(make_shards(40, 4), 0.5, /*local_batch=*/32, 7);
  EXPECT_EQ(s.iterations_per_epoch(), 1U);
  s.scheduling(0);
  const auto chunk = s.communicate(0);
  s.synchronize(chunk);
  s.clean_local_storage();
  EXPECT_EQ(s.last_stats().sent_per_worker[0],
            shuffle::exchange_quota(10, 0.5));
}

TEST(EdgeCases, TinyShardFullExchange) {
  // Shard size 1 with Q = 1: every epoch every worker's single sample
  // moves somewhere.
  shuffle::PartialLocalShuffler pls(make_shards(4, 4), 1.0, 5);
  for (std::size_t e = 0; e < 4; ++e) {
    pls.begin_epoch(e);
    for (int w = 0; w < 4; ++w) EXPECT_EQ(pls.local_order(w).size(), 1U);
  }
}

TEST(EdgeCases, HierarchicalWithSingletonGroups) {
  // groups == workers: intra rounds are pure self-sends, inter rounds are
  // full permutations; still balanced and conserving.
  shuffle::HierarchicalPartialShuffler hs(make_shards(32, 8), 0.5,
                                          /*groups=*/8, 5,
                                          /*intra_fraction=*/0.5);
  hs.begin_epoch(0);
  std::multiset<SampleId> all;
  for (int w = 0; w < 8; ++w) {
    all.insert(hs.local_order(w).begin(), hs.local_order(w).end());
  }
  EXPECT_EQ(all.size(), 32U);
  EXPECT_EQ(std::set<SampleId>(all.begin(), all.end()).size(), 32U);
}

TEST(EdgeCases, HierarchicalSingleGroupEqualsFlatStatistics) {
  shuffle::HierarchicalPartialShuffler hs(make_shards(48, 6), 0.5,
                                          /*groups=*/1, 5);
  hs.begin_epoch(0);
  const auto* stats = hs.last_stats();
  for (std::size_t w = 0; w < 6; ++w) {
    EXPECT_EQ(stats->sent_per_worker[w], shuffle::exchange_quota(8, 0.5));
  }
  EXPECT_DOUBLE_EQ(hs.last_intra_fraction(), 1.0);  // nothing leaves group
}

TEST(EdgeCases, BatchNormHandlesZeroVarianceColumn) {
  nn::BatchNorm1d bn(2);
  Tensor x({4, 2});
  for (std::size_t i = 0; i < 4; ++i) {
    x.at(i, 0) = 3.0F;  // constant column
    x.at(i, 1) = static_cast<float>(i);
  }
  const Tensor y = bn.forward(x, true);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_TRUE(std::isfinite(y.at(i)));
  }
  // Constant column normalises to ~0 (mean removed, eps-guarded).
  EXPECT_NEAR(y.at(0, 0), 0.0F, 1e-2F);
}

TEST(EdgeCases, GroupNormWorksWithBatchSizeOne) {
  nn::GroupNorm gn(4, 2);
  Rng rng(1);
  const Tensor x = Tensor::randn({1, 4}, rng);
  const Tensor y = gn.forward(x, true);
  EXPECT_EQ(y.rows(), 1U);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_TRUE(std::isfinite(y.at(i)));
  }
}

TEST(EdgeCases, EvaluateWithOversizedCapUsesWholeSet) {
  const auto split = data::make_class_clusters_split(
      {.num_classes = 3, .samples_per_class = 8, .feature_dim = 4,
       .seed = 2});
  Rng rng(1);
  nn::MlpSpec spec{.input_dim = 4, .hidden = {8}, .num_classes = 3};
  nn::Model model = nn::make_mlp(spec, rng);
  const double a = sim::evaluate(model, split.val, 10'000, 1);
  const double b = sim::evaluate(model, split.val, 0, 1);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(EdgeCases, GlobalShufflerSingleWorkerVisitsEverything) {
  shuffle::GlobalShuffler gs(20, 1, 5);
  gs.begin_epoch(0);
  EXPECT_EQ(gs.local_order(0).size(), 20U);
  EXPECT_EQ(std::set<SampleId>(gs.local_order(0).begin(),
                               gs.local_order(0).end())
                .size(),
            20U);
}

TEST(EdgeCases, ExchangeQuotaNeverExceedsShard) {
  for (std::size_t shard : {1U, 2U, 3U, 7U}) {
    for (double q : {0.01, 0.5, 0.999, 1.0}) {
      EXPECT_LE(shuffle::exchange_quota(shard, q), shard);
      if (q > 0) {
        EXPECT_GE(shuffle::exchange_quota(shard, q), 1U);
      }
    }
  }
}

}  // namespace
}  // namespace dshuf
