#include "shuffle/shuffling_error.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/mathx.hpp"

namespace dshuf::shuffle {
namespace {

TEST(LogSigma, FiniteAndPositiveForPracticalSettings) {
  const double s = log_sigma(1.2e6, 512, 0.1);
  EXPECT_TRUE(std::isfinite(s));
  EXPECT_GT(s, 0.0);
}

TEST(LogSigma, StaysBelowLogTotalPermutationsAtScale) {
  // In the regime the paper argues about (large N, moderate Q) sigma is a
  // vanishing fraction of N!. NOTE: the paper's Equation 9 is a loose
  // COUNT that overcounts for small N (sigma can exceed N!; e.g. n = 8,
  // m = 2, q = 0.5 gives sigma = 82944 > 8! = 40320) — shuffling_error()
  // clamps the resulting ratio, and this test pins the regime where the
  // bound is meaningful.
  for (double n : {1e5, 1.2e6}) {
    for (double m : {64.0, 512.0, 4096.0}) {
      EXPECT_LT(log_sigma(n, m, 0.1), log_total_permutations(n))
          << "n=" << n << " m=" << m;
    }
  }
}

TEST(LogSigma, PaperEquationOvercountsForTinyDatasets) {
  // Documents the small-N looseness explicitly (see note above).
  EXPECT_GT(log_sigma(8, 2, 0.5), log_total_permutations(8));
  EXPECT_NEAR(shuffling_error(8, 2, 0.5), 0.0, 1e-12);  // clamped
}

TEST(ShufflingError, IsInUnitInterval) {
  for (double q : {0.0, 0.3, 1.0}) {
    const double e = shuffling_error(1000, 10, q);
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, 1.0);
  }
}

// The paper's Section IV-B conclusion: for ImageNet-scale N and any
// practical M, the shuffling error is ~1.
TEST(ShufflingError, ApproachesOneForPracticalSettings) {
  // NOTE: the paper claims this for 4 <= M <= 100,000, but its Equation 9
  // overcounts for very small M (sigma > N! already at M = 4 for
  // ImageNet-scale N, where the clamp yields 0) — we pin the claim where
  // the count is meaningful, M >= 64.
  const double n = 1.2e6;
  for (double m : {64.0, 512.0, 4096.0, 100000.0}) {
    EXPECT_GT(shuffling_error(n, m, 0.1), 0.999) << "m=" << m;
  }
}

TEST(ShufflingError, SingleWorkerFullShuffleHasZeroError) {
  // m = 1, q arbitrary: sigma = (N/1)! * 1 * 1 * 0! = N! => error 0.
  EXPECT_NEAR(shuffling_error(50, 1, 0.0), 0.0, 1e-9);
  EXPECT_NEAR(shuffling_error(50, 1, 1.0), 0.0, 1e-9);
}

TEST(ShufflingError, GrowsWithWorkerCountForSmallN) {
  // With a tiny dataset the error is measurably below 1 and increases as
  // the partition count grows (fewer consistent permutations).
  const double e2 = shuffling_error(8, 2, 0.5);
  const double e4 = shuffling_error(8, 4, 0.5);
  EXPECT_LT(e2, e4);
}

TEST(ShufflingError, TinyCaseAgainstHandComputation) {
  // n = 4, m = 2, q = 0.5: per = 2, rest = 2, ex = 1.
  // log sigma = log(2!) + log(2!/1!) + log(2!/1!) + log(2!)
  //           = log 2 + log 2 + log 2 + log 2 = log 16.
  EXPECT_NEAR(log_sigma(4, 2, 0.5), std::log(16.0), 1e-9);
  // error = 1 - 16/24 = 1/3.
  EXPECT_NEAR(shuffling_error(4, 2, 0.5), 1.0 / 3.0, 1e-9);
}

TEST(DominationThreshold, MatchesFormula) {
  EXPECT_NEAR(domination_threshold(1.2e6, 512, 32),
              std::sqrt(32.0 * 512.0 / 1.2e6), 1e-12);
}

TEST(ErrorDominates, TrueForImagenetScale) {
  // The paper: error ~ 1 dominates the bound whenever the global minibatch
  // is below 100K (M >= 64 per the Equation-9 looseness note above).
  for (double m : {64.0, 512.0, 100000.0}) {
    ErrorParams p{.n = 1.2e6, .m = m, .q = 0.1, .b = 32};
    if (p.b * p.m < 100000) {
      EXPECT_TRUE(error_dominates(p)) << "m=" << m;
    }
  }
}

TEST(ErrorDominates, FalseForSingleWorker) {
  ErrorParams p{.n = 1000, .m = 1, .q = 1.0, .b = 32};
  EXPECT_FALSE(error_dominates(p));
}

TEST(BoundTerms, AllFiniteAndOrderedAsExpected) {
  ErrorParams p{.n = 1.2e6, .m = 512, .q = 0.1, .b = 32};
  const auto t = bound_terms(p, 90);
  EXPECT_TRUE(std::isfinite(t.statistical));
  EXPECT_TRUE(std::isfinite(t.optimization));
  EXPECT_TRUE(std::isfinite(t.shuffling));
  // With error ~ 1 the shuffling term dominates both other terms — the
  // paper's core theoretical observation.
  EXPECT_GT(t.shuffling, t.statistical);
  EXPECT_GT(t.shuffling, t.optimization);
}

TEST(ShufflingError, RejectsInvalidInputs) {
  EXPECT_THROW(log_sigma(0, 2, 0.5), CheckError);
  EXPECT_THROW(log_sigma(10, 0.5, 0.5), CheckError);
  EXPECT_THROW(log_sigma(10, 2, 1.5), CheckError);
}

TEST(MathX, LogFactorialMatchesExactSmallValues) {
  EXPECT_NEAR(log_factorial(0), 0.0, 1e-12);
  EXPECT_NEAR(log_factorial(5), std::log(120.0), 1e-9);
  EXPECT_NEAR(log_falling_factorial(5, 2), std::log(20.0), 1e-9);
  EXPECT_THROW(log_falling_factorial(3, 4), CheckError);
}

TEST(MathX, ExpLogRatioHandlesExtremes) {
  EXPECT_DOUBLE_EQ(exp_log_ratio(0.0, 0.0), 1.0);
  EXPECT_EQ(exp_log_ratio(0.0, 1e6), 0.0);          // underflow -> 0
  EXPECT_GT(exp_log_ratio(1e6, 0.0), 1e300);        // saturates, no inf
  EXPECT_TRUE(std::isfinite(exp_log_ratio(1e6, 0.0)));
}

}  // namespace
}  // namespace dshuf::shuffle
