// Randomized differential suite for the two io::SampleStore
// implementations: FileSampleStore (one file per sample — the simple,
// debuggable reference) and MmapSampleStore (segment log + epoch
// reclamation, under both slot-index backends). Identical schedules of
// save / overwrite / load / remove / list / disk_bytes must produce
// bit-identical observable state on every arm — including live through a
// fault-injected PLS exchange with mid-exchange removal
// (clean_local_storage while retried/duplicated frames are in flight).
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <random>
#include <vector>

#include "chaos_harness.hpp"
#include "io/file_store.hpp"
#include "io/mmap_store.hpp"
#include "shuffle/store_hooks.hpp"
#include "util/error.hpp"

namespace dshuf::io {
namespace {

namespace fs = std::filesystem;

struct Arm {
  std::string name;
  std::unique_ptr<SampleStore> store;
};

fs::path fresh_root(const std::string& tag) {
  const fs::path root =
      fs::temp_directory_path() /
      ("dshuf_differential_" + std::to_string(::getpid()) + "_" + tag);
  fs::remove_all(root);
  return root;
}

/// All interchangeable store arms rooted under `root`: the file store and
/// the mmap store under each index backend (small segments so schedules
/// cross segment boundaries and trigger reclamation/compaction).
std::vector<Arm> make_arms(const fs::path& root) {
  std::vector<Arm> arms;
  arms.push_back({"file", std::make_unique<FileSampleStore>(root / "file")});
  for (const auto kind :
       {SlotIndexKind::kOpenAddressing, SlotIndexKind::kLearned}) {
    MmapStoreConfig cfg;
    cfg.dir = root / ("mmap_" + to_string(kind));
    cfg.segment_bytes = 4096;
    cfg.index_kind = kind;
    arms.push_back(
        {"mmap_" + to_string(kind), std::make_unique<MmapSampleStore>(cfg)});
  }
  return arms;
}

/// Full observable state of one arm: ascending ids, each id's payload,
/// and the live-byte accounting.
struct Snapshot {
  std::vector<data::SampleId> ids;
  std::map<data::SampleId, std::vector<std::byte>> payloads;
  std::size_t disk_bytes = 0;
  std::size_t size = 0;

  bool operator==(const Snapshot&) const = default;
};

Snapshot snapshot(const SampleStore& store) {
  Snapshot s;
  s.ids = store.list();
  for (const auto id : s.ids) {
    std::vector<std::byte> p;
    store.load_into(id, p);
    s.payloads.emplace(id, std::move(p));
  }
  s.disk_bytes = store.disk_bytes();
  s.size = store.size();
  return s;
}

void expect_arms_identical(const std::vector<Arm>& arms,
                           const std::string& context) {
  ASSERT_GE(arms.size(), 2U);
  const Snapshot ref = snapshot(*arms[0].store);
  for (std::size_t a = 1; a < arms.size(); ++a) {
    const Snapshot got = snapshot(*arms[a].store);
    EXPECT_EQ(got.ids, ref.ids)
        << context << ": " << arms[a].name << " vs " << arms[0].name;
    EXPECT_EQ(got.disk_bytes, ref.disk_bytes)
        << context << ": " << arms[a].name << " disk_bytes";
    EXPECT_EQ(got.size, ref.size) << context << ": " << arms[a].name;
    ASSERT_EQ(got.payloads.size(), ref.payloads.size()) << context;
    for (const auto& [id, p] : ref.payloads) {
      const auto it = got.payloads.find(id);
      ASSERT_NE(it, got.payloads.end()) << context << ": id " << id;
      EXPECT_EQ(it->second, p)
          << context << ": " << arms[a].name << " payload of id " << id;
    }
  }
}

// The SampleSource::read contract: the callback runs without the store
// lock, so it may reenter the store — the exchange deposit path saves
// into the same store from inside a read. Every arm must honour it
// (holding the lock across the callback deadlocks or rank-faults here).
TEST(StoreDifferential, ReadCallbackMayReenterEveryArm) {
  const fs::path root = fresh_root("reenter");
  auto arms = make_arms(root);
  const std::vector<std::byte> a(32, std::byte{0x11});
  const std::vector<std::byte> b(48, std::byte{0x22});
  for (auto& arm : arms) {
    arm.store->save(1, a);
    bool called = false;
    arm.store->read(1, [&](std::span<const std::byte> got) {
      called = true;
      ASSERT_EQ(got.size(), a.size()) << arm.name;
      EXPECT_EQ(std::memcmp(got.data(), a.data(), a.size()), 0) << arm.name;
      // Reentrant deposit, lookup and payload load from the callback.
      arm.store->save(2, b);
      EXPECT_TRUE(arm.store->contains(1)) << arm.name;
      std::vector<std::byte> out;
      arm.store->load_into(2, out);
      EXPECT_EQ(out, b) << arm.name;
    });
    EXPECT_TRUE(called) << arm.name;
    EXPECT_EQ(arm.store->size(), 2U) << arm.name;
  }
  expect_arms_identical(arms, "after reentrant reads");
  for (auto& arm : arms) arm.store.reset();
  fs::remove_all(root);
}

TEST(StoreDifferential, RandomSchedulesProduceIdenticalState) {
  for (const std::uint64_t seed : {3ULL, 41ULL, 20'26ULL}) {
    const fs::path root = fresh_root("sched" + std::to_string(seed));
    auto arms = make_arms(root);
    std::mt19937_64 rng(seed);
    std::vector<data::SampleId> live;

    for (int op = 0; op < 2'000; ++op) {
      const auto roll = rng() % 100;
      if (roll < 55 || live.empty()) {
        // save (new id or overwrite)
        const auto id = static_cast<data::SampleId>(rng() % 512);
        std::vector<std::byte> p(1 + rng() % 96);
        for (auto& b : p) b = static_cast<std::byte>(rng() & 0xFF);
        bool existed = false;
        for (auto& a : arms) {
          existed = a.store->contains(id);
          a.store->save(id, p);
        }
        if (!existed) live.push_back(id);
      } else if (roll < 80) {
        // remove a random live id
        const std::size_t j = rng() % live.size();
        const auto id = live[j];
        for (auto& a : arms) a.store->remove(id);
        live[j] = live.back();
        live.pop_back();
      } else if (roll < 90) {
        // point read of a random live id
        const auto id = live[rng() % live.size()];
        std::vector<std::byte> ref;
        arms[0].store->load_into(id, ref);
        for (std::size_t a = 1; a < arms.size(); ++a) {
          std::vector<std::byte> got;
          arms[a].store->load_into(id, got);
          ASSERT_EQ(got, ref) << arms[a].name << " id " << id;
        }
      } else {
        // epoch boundary: reclaim the mmap arms (no-op for the file arm);
        // must never change observable state.
        for (auto& a : arms) {
          if (auto* ms = dynamic_cast<MmapSampleStore*>(a.store.get())) {
            ms->advance_epoch();
          }
        }
      }
      if (op % 250 == 0) {
        expect_arms_identical(arms, "seed " + std::to_string(seed) +
                                        " op " + std::to_string(op));
      }
    }
    expect_arms_identical(arms, "seed " + std::to_string(seed) + " final");
    arms.clear();
    fs::remove_all(root);
  }
}

TEST(StoreDifferential, RemoveAllThenRefillMatches) {
  const fs::path root = fresh_root("refill");
  auto arms = make_arms(root);
  for (data::SampleId id = 0; id < 300; ++id) {
    std::vector<std::byte> p(1 + id % 64, static_cast<std::byte>(id & 0xFF));
    for (auto& a : arms) a.store->save(id, p);
  }
  for (data::SampleId id = 0; id < 300; ++id) {
    for (auto& a : arms) a.store->remove(id);
  }
  for (auto& a : arms) {
    EXPECT_EQ(a.store->disk_bytes(), 0U) << a.name;
    EXPECT_TRUE(a.store->list().empty()) << a.name;
  }
  for (data::SampleId id = 500; id < 700; ++id) {
    std::vector<std::byte> p(1 + id % 32, static_cast<std::byte>(id & 0xFF));
    for (auto& a : arms) a.store->save(id, p);
  }
  expect_arms_identical(arms, "refill");
  arms.clear();
  fs::remove_all(root);
}

// Mid-exchange removal under chaos faults: each arm runs the SAME
// fault-injected exchange (delay + reorder + duplicate; no drops, so the
// schedule of shard mutations is deterministic), with payloads flowing
// through the arm's store and clean_local_storage removing transmitted
// samples between epochs — while duplicated/late frames of those very
// samples are still bouncing through the comm layer. Every arm must end
// with bit-identical store contents.
TEST(StoreDifferential, ChaosExchangeWithMidEpochRemovalMatches) {
  constexpr int kRanks = 4;
  constexpr std::size_t kN = 96;
  constexpr double kQ = 0.5;
  constexpr std::size_t kEpochs = 3;
  constexpr std::uint64_t kSeed = 77;

  comm::FaultSpec spec;
  spec.delay_prob = 0.5;
  spec.min_delay_us = 100;
  spec.max_delay_us = 5'000;
  spec.dup_prob = 0.25;

  // Payload = 64 deterministic bytes per id.
  auto payload_of = [](data::SampleId id) {
    std::vector<std::byte> p(64);
    for (std::size_t i = 0; i < p.size(); ++i) {
      p[i] = static_cast<std::byte>((id * 37 + i) & 0xFF);
    }
    return p;
  };

  std::vector<Snapshot> per_arm_final;  // [arm][rank] flattened
  std::vector<std::string> arm_names;

  const fs::path root = fresh_root("chaos");
  for (auto& arm_proto : make_arms(root)) {
    arm_names.push_back(arm_proto.name);
  }

  for (std::size_t arm_idx = 0; arm_idx < arm_names.size(); ++arm_idx) {
    const fs::path arm_root = root / ("arm" + std::to_string(arm_idx));
    // One store per rank, same backend across ranks for this arm.
    std::vector<std::unique_ptr<SampleStore>> rank_stores;
    for (int r = 0; r < kRanks; ++r) {
      auto arms = make_arms(arm_root / ("rank" + std::to_string(r)));
      rank_stores.push_back(std::move(arms[arm_idx].store));
    }

    auto shards = chaos::make_shards(kN, kRanks);
    const std::size_t shard = shards[0].size();
    const std::size_t quota = shuffle::exchange_quota(shard, kQ);
    std::vector<shuffle::ShardStore> stores;
    for (int r = 0; r < kRanks; ++r) {
      for (const auto id : shards[static_cast<std::size_t>(r)]) {
        rank_stores[static_cast<std::size_t>(r)]->save(id, payload_of(id));
      }
      stores.emplace_back(std::move(shards[static_cast<std::size_t>(r)]),
                          shard + quota);
    }

    const auto robust = chaos::default_robustness();
    comm::World world(kRanks);
    world.set_fault_plan(comm::FaultPlan(kSeed, spec));
    for (std::size_t epoch = 0; epoch < kEpochs; ++epoch) {
      world.run([&](comm::Communicator& c) {
        const auto r = static_cast<std::size_t>(c.rank());
        SampleStore& file_store = *rank_stores[r];
        const auto payload = shuffle::make_store_payload_fn(file_store);
        const auto deposit = shuffle::make_store_deposit_fn(file_store);
        shuffle::run_pls_exchange_epoch(c, stores[r], kSeed, epoch, kQ,
                                        shard, payload, deposit, &robust);
        // clean_local_storage with retries/dups still in flight: remove
        // every transmitted sample from the payload store.
        for (const auto id : file_store.list()) {
          bool held = false;
          for (const auto sid : stores[r].ids()) {
            if (sid == id) {
              held = true;
              break;
            }
          }
          if (!held) file_store.remove(id);
        }
        if (auto* ms = dynamic_cast<MmapSampleStore*>(&file_store)) {
          ms->advance_epoch();
        }
        shuffle::post_exchange_local_shuffle(kSeed, epoch, c.rank(),
                                             stores[r].mutable_ids());
      });
    }

    for (int r = 0; r < kRanks; ++r) {
      per_arm_final.push_back(
          snapshot(*rank_stores[static_cast<std::size_t>(r)]));
      // Store contents must agree with the id store: same ids, and every
      // payload intact after all the moves.
      const auto& ids = stores[static_cast<std::size_t>(r)].ids();
      std::vector<data::SampleId> sorted(ids.begin(), ids.end());
      std::sort(sorted.begin(), sorted.end());
      EXPECT_EQ(per_arm_final.back().ids, sorted)
          << arm_names[arm_idx] << " rank " << r;
      for (const auto& [id, p] : per_arm_final.back().payloads) {
        EXPECT_EQ(p, payload_of(id))
            << arm_names[arm_idx] << " rank " << r << " id " << id;
      }
    }
  }

  // Cross-arm: identical final state per rank on every arm.
  const std::size_t per_arm = kRanks;
  for (std::size_t a = 1; a < arm_names.size(); ++a) {
    for (std::size_t r = 0; r < per_arm; ++r) {
      EXPECT_EQ(per_arm_final[a * per_arm + r], per_arm_final[r])
          << arm_names[a] << " rank " << r << " diverged from "
          << arm_names[0];
    }
  }
  fs::remove_all(root);
}

}  // namespace
}  // namespace dshuf::io
