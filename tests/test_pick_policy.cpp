#include <set>

#include <gtest/gtest.h>

#include "data/workloads.hpp"
#include "shuffle/shuffler.hpp"
#include "sim/trainer.hpp"

namespace dshuf::shuffle {
namespace {

std::vector<std::vector<SampleId>> make_shards(std::size_t n,
                                               std::size_t workers) {
  std::vector<std::vector<SampleId>> shards(workers);
  for (std::size_t i = 0; i < n; ++i) {
    shards[i % workers].push_back(static_cast<SampleId>(i));
  }
  return shards;
}

TEST(PickPolicy, HighLossExportsTopScoredSamples) {
  const std::size_t n = 32;
  PartialLocalShuffler pls(make_shards(n, 2), 0.25, 7);
  pls.set_pick_policy(PickPolicy::kHighLoss);
  // Score = id: worker 0 holds even ids, its top-4 are 30, 28, 26, 24.
  std::vector<float> scores(n);
  for (std::size_t i = 0; i < n; ++i) scores[i] = static_cast<float>(i);
  pls.set_sample_scores(scores);
  pls.begin_epoch(0);
  // The exported samples left worker 0's shard (unless bounced back by a
  // self-send, which cannot happen for all four across distinct rounds
  // with M = 2... it can; instead verify via received side: union check).
  // Strongest direct check: worker 0 no longer holds {24, 26, 28, 30}
  // except any that were routed straight back to it.
  std::size_t still_held = 0;
  for (auto id : pls.local_order(0)) {
    if (id == 24 || id == 26 || id == 28 || id == 30) ++still_held;
  }
  // With M = 2 roughly half the rounds are self-sends in expectation;
  // verify at least one top sample actually moved.
  EXPECT_LT(still_held, 4U);
}

TEST(PickPolicy, HighAndLowSelectOppositeEnds) {
  const std::size_t n = 40;
  std::vector<float> scores(n);
  for (std::size_t i = 0; i < n; ++i) scores[i] = static_cast<float>(i % 10);

  auto run = [&](PickPolicy p) {
    PartialLocalShuffler pls(make_shards(n, 4), 0.2, 7);
    pls.set_pick_policy(p);
    pls.set_sample_scores(scores);
    pls.begin_epoch(0);
    return pls;
  };
  // Both policies keep the exchange balanced and conserve samples.
  for (auto p : {PickPolicy::kHighLoss, PickPolicy::kLowLoss}) {
    auto pls = run(p);
    std::multiset<SampleId> all;
    for (int w = 0; w < 4; ++w) {
      all.insert(pls.local_order(w).begin(), pls.local_order(w).end());
    }
    EXPECT_EQ(all.size(), n);
    EXPECT_EQ(std::set<SampleId>(all.begin(), all.end()).size(), n);
    const auto* stats = pls.last_stats();
    for (auto s : stats->sent_per_worker) EXPECT_EQ(s, 2U);
  }
}

TEST(PickPolicy, WithoutScoresFallsBackToUniform) {
  PartialLocalShuffler a(make_shards(64, 4), 0.25, 9);
  PartialLocalShuffler b(make_shards(64, 4), 0.25, 9);
  b.set_pick_policy(PickPolicy::kHighLoss);  // no scores provided
  a.begin_epoch(0);
  b.begin_epoch(0);
  for (int w = 0; w < 4; ++w) {
    EXPECT_EQ(a.local_order(w), b.local_order(w));
  }
}

TEST(PickPolicy, DeterministicTieBreakById) {
  const std::size_t n = 24;
  std::vector<float> same(n, 1.0F);  // all-equal scores
  auto run = [&] {
    PartialLocalShuffler pls(make_shards(n, 2), 0.5, 3);
    pls.set_pick_policy(PickPolicy::kHighLoss);
    pls.set_sample_scores(same);
    pls.begin_epoch(0);
    std::vector<std::vector<SampleId>> out;
    for (int w = 0; w < 2; ++w) out.push_back(pls.local_order(w));
    return out;
  };
  EXPECT_EQ(run(), run());
}

TEST(PickPolicy, ToString) {
  EXPECT_EQ(to_string(PickPolicy::kUniform), "uniform");
  EXPECT_EQ(to_string(PickPolicy::kHighLoss), "high-loss");
  EXPECT_EQ(to_string(PickPolicy::kLowLoss), "low-loss");
}

TEST(PickPolicy, TrainerIntegrationRunsAndExchanges) {
  data::Workload w = data::find_workload("imagenet1k-resnet50");
  w.data.num_classes = 8;
  w.data.samples_per_class = 32;
  w.data.feature_dim = 12;
  w.model.input_dim = 12;
  w.model.num_classes = 8;
  w.model.hidden = {16};
  w.regime.epochs = 4;
  w.regime.reference_batch = 32;

  for (auto policy :
       {shuffle::PickPolicy::kHighLoss, shuffle::PickPolicy::kLowLoss}) {
    sim::SimConfig cfg;
    cfg.workers = 4;
    cfg.local_batch = 8;
    cfg.strategy = Strategy::kPartial;
    cfg.q = 0.25;
    cfg.seed = 5;
    cfg.max_eval_samples = 0;
    cfg.pick_policy = policy;
    const auto res = sim::run_workload_experiment(w, cfg);
    EXPECT_EQ(res.epochs.size(), 4U);
    for (const auto& e : res.epochs) EXPECT_GT(e.samples_exchanged, 0U);
    EXPECT_GT(res.best_top1, 0.2);  // still learns
  }
}

}  // namespace
}  // namespace dshuf::shuffle
