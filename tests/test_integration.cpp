// End-to-end integration tests: the paper's headline empirical claims at
// miniature scale. These exercise data generation -> partitioning ->
// shuffling -> distributed-SGD simulation -> evaluation in one pass.
#include <gtest/gtest.h>

#include "data/workloads.hpp"
#include "sim/trainer.hpp"

namespace dshuf::sim {
namespace {

data::Workload mini_workload() {
  data::Workload w = data::find_workload("imagenet1k-resnet50");
  w.data.num_classes = 16;
  w.data.samples_per_class = 64;  // N = 1024
  w.data.feature_dim = 16;
  w.model.input_dim = 16;
  w.model.num_classes = 16;
  w.model.hidden = {32};
  w.regime.epochs = 10;
  w.regime.milestones = {6, 8};
  w.regime.warmup_epochs = 1.0;
  return w;
}

SimConfig config(shuffle::Strategy s, double q, std::size_t workers) {
  SimConfig c;
  c.workers = workers;
  c.local_batch = 8;
  c.strategy = s;
  c.q = q;
  c.seed = 202;
  c.max_eval_samples = 0;
  c.partition = data::PartitionScheme::kClassSorted;
  return c;
}

// Paper claim 1 (Fig. 5(a)-(d)): at modest scale, LOCAL shuffling matches
// GLOBAL shuffling even though each worker never sees most of the data.
TEST(Integration, LocalMatchesGlobalAtModestScale) {
  const auto w = mini_workload();
  const auto gs =
      run_workload_experiment(w, config(shuffle::Strategy::kGlobal, 0, 4));
  const auto ls =
      run_workload_experiment(w, config(shuffle::Strategy::kLocal, 0, 4));
  EXPECT_GT(gs.best_top1, 0.5);
  EXPECT_GT(ls.best_top1, gs.best_top1 - 0.07);
}

// Paper claim 2 (Fig. 5(e)-(f), Fig. 6): at scale, with class-skewed
// shards, local shuffling degrades markedly...
TEST(Integration, LocalDegradesAtScaleWithSkewedShards) {
  const auto w = mini_workload();
  const auto gs =
      run_workload_experiment(w, config(shuffle::Strategy::kGlobal, 0, 32));
  const auto ls =
      run_workload_experiment(w, config(shuffle::Strategy::kLocal, 0, 32));
  EXPECT_GT(gs.best_top1, 0.5);
  EXPECT_LT(ls.best_top1, gs.best_top1 - 0.05);
}

// ...and claim 3: a small partial exchange recovers most of the gap at a
// (1+Q)-fold storage cost.
TEST(Integration, PartialExchangeRecoversTheGap) {
  const auto w = mini_workload();
  const auto gs =
      run_workload_experiment(w, config(shuffle::Strategy::kGlobal, 0, 32));
  const auto ls =
      run_workload_experiment(w, config(shuffle::Strategy::kLocal, 0, 32));
  const auto pls = run_workload_experiment(
      w, config(shuffle::Strategy::kPartial, 0.3, 32));
  EXPECT_GT(pls.best_top1, ls.best_top1);
  EXPECT_GT(pls.best_top1, gs.best_top1 - 0.08);
  // (1 + Q) up to quota-ceiling granularity: ceil(0.3 * 32)/32 = 0.3125.
  EXPECT_LE(pls.peak_storage_ratio, 1.0 + 0.3 + 1.0 / 32.0);
}

// Paper ablation: the pathology needs skew — with near-iid (strided)
// shards, local shuffling is fine even at scale.
TEST(Integration, StridedPartitionMakesLocalBenign) {
  const auto w = mini_workload();
  auto gcfg = config(shuffle::Strategy::kGlobal, 0, 32);
  auto lcfg = config(shuffle::Strategy::kLocal, 0, 32);
  gcfg.partition = data::PartitionScheme::kStrided;
  lcfg.partition = data::PartitionScheme::kStrided;
  const auto gs = run_workload_experiment(w, gcfg);
  const auto ls = run_workload_experiment(w, lcfg);
  EXPECT_GT(ls.best_top1, gs.best_top1 - 0.06);
}

// Paper remedy ablation (Section IV-A-1): synchronised batch statistics
// shrink local shuffling's gap.
TEST(Integration, SyncBatchNormShrinksLocalGap) {
  const auto w = mini_workload();
  auto plain = config(shuffle::Strategy::kLocal, 0, 32);
  auto synced = plain;
  synced.sync_batchnorm = true;
  const auto ls = run_workload_experiment(w, plain);
  const auto ls_sync = run_workload_experiment(w, synced);
  EXPECT_GT(ls_sync.best_top1, ls.best_top1 - 0.02);
}

}  // namespace
}  // namespace dshuf::sim
