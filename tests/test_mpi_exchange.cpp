// Cross-validation of the two Algorithm-1 implementations: the threaded
// message-passing executor must produce exactly the shard contents the
// sequential driver computes, because both derive every decision from the
// same (seed, epoch, worker) streams.
#include "shuffle/mpi_exchange.hpp"

#include <mutex>
#include <set>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "shuffle/shuffler.hpp"
#include "shuffle/traffic.hpp"

namespace dshuf::shuffle {
namespace {

std::vector<std::vector<SampleId>> make_shards(std::size_t n,
                                               std::size_t workers) {
  std::vector<std::vector<SampleId>> shards(workers);
  for (std::size_t i = 0; i < n; ++i) {
    shards[i % workers].push_back(static_cast<SampleId>(i));
  }
  return shards;
}

TEST(MpiExchange, MatchesSequentialDriver) {
  const std::size_t n = 64;
  const int m = 8;
  const double q = 0.25;
  const std::uint64_t seed = 31;

  // Threaded execution: one store per rank, real isend/irecv.
  auto shards = make_shards(n, m);
  std::vector<ShardStore> stores;
  for (auto& s : shards) {
    const std::size_t cap = s.size() + exchange_quota(n / m, q);
    stores.emplace_back(std::move(s), cap);
  }
  comm::World world(m);
  for (std::size_t epoch = 0; epoch < 3; ++epoch) {
    world.run([&](comm::Communicator& c) {
      auto& store = stores[static_cast<std::size_t>(c.rank())];
      run_pls_exchange_epoch(c, store, seed, epoch, q, n / m);
      // Callers own the end-of-epoch local shuffle (see header contract).
      post_exchange_local_shuffle(seed, epoch, c.rank(),
                                  store.mutable_ids());
    });
  }

  // Sequential reference.
  PartialLocalShuffler pls(make_shards(n, m), q, seed);
  for (std::size_t epoch = 0; epoch < 3; ++epoch) pls.begin_epoch(epoch);

  for (int w = 0; w < m; ++w) {
    const auto& a = stores[static_cast<std::size_t>(w)].ids();
    const auto& b = pls.stores()[static_cast<std::size_t>(w)].ids();
    EXPECT_EQ(std::multiset<SampleId>(a.begin(), a.end()),
              std::multiset<SampleId>(b.begin(), b.end()))
        << "rank " << w;
  }
}

TEST(MpiExchange, ConservesSamplesAcrossRanks) {
  const std::size_t n = 48;
  const int m = 6;
  auto shards = make_shards(n, m);
  std::vector<ShardStore> stores;
  for (auto& s : shards) {
    const std::size_t cap = s.size() + exchange_quota(n / m, 0.5);
    stores.emplace_back(std::move(s), cap);
  }
  comm::World world(m);
  world.run([&](comm::Communicator& c) {
    run_pls_exchange_epoch(c, stores[static_cast<std::size_t>(c.rank())], 9,
                           0, 0.5, n / m);
  });
  std::multiset<SampleId> got;
  for (const auto& s : stores) got.insert(s.ids().begin(), s.ids().end());
  EXPECT_EQ(got.size(), n);
  EXPECT_EQ(std::set<SampleId>(got.begin(), got.end()).size(), n);
}

TEST(MpiExchange, MovesPayloadBytes) {
  const std::size_t n = 16;
  const int m = 4;
  auto shards = make_shards(n, m);
  std::vector<ShardStore> stores;
  for (auto& s : shards) {
    const std::size_t cap = s.size() + exchange_quota(n / m, 1.0);
    stores.emplace_back(std::move(s), cap);
  }
  // Payload = the sample id repeated 3 times as bytes; the deposit hook
  // verifies integrity on the receiving side.
  std::mutex mu;
  std::size_t deposits = 0;
  comm::World world(m);
  world.run([&](comm::Communicator& c) {
    run_pls_exchange_epoch(
        c, stores[static_cast<std::size_t>(c.rank())], 13, 0, 1.0, n / m,
        /*payload=*/
        [](SampleId id, std::vector<std::byte>& out) {
          out.insert(out.end(), 3, static_cast<std::byte>(id & 0xFF));
        },
        /*deposit=*/
        [&](SampleId id, std::span<const std::byte> body) {
          EXPECT_EQ(body.size(), 3U);
          for (auto b : body) {
            EXPECT_EQ(b, static_cast<std::byte>(id & 0xFF));
          }
          std::lock_guard<std::mutex> lk(mu);
          ++deposits;
        });
  });
  EXPECT_EQ(deposits, n);  // quota == shard at Q = 1: all samples moved
}

TEST(MpiExchange, QZeroIsANoOp) {
  const std::size_t n = 16;
  const int m = 4;
  auto shards = make_shards(n, m);
  const auto original = shards;
  std::vector<ShardStore> stores;
  for (auto& s : shards) {
    const std::size_t cap = s.size();
    stores.emplace_back(std::move(s), cap);
  }
  comm::World world(m);
  world.run([&](comm::Communicator& c) {
    run_pls_exchange_epoch(c, stores[static_cast<std::size_t>(c.rank())], 13,
                           0, 0.0, n / m);
  });
  for (int w = 0; w < m; ++w) {
    EXPECT_EQ(stores[static_cast<std::size_t>(w)].ids(),
              original[static_cast<std::size_t>(w)]);
  }
}

// --------------------------------------------------------------------------
// Edge cases: the degenerate corners of the (M, Q, shard) space must agree
// with the sequential driver exactly, not just approximately.

// Bit-identical comparison helper: run `epochs` world epochs (exchange +
// the shared post-shuffle) and diff against PartialLocalShuffler.
void expect_bit_identical_to_driver(std::size_t n, int m, double q,
                                    std::uint64_t seed, std::size_t epochs) {
  auto shards = make_shards(n, static_cast<std::size_t>(m));
  std::size_t min_shard = shards[0].size();
  for (const auto& s : shards) min_shard = std::min(min_shard, s.size());
  const std::size_t quota = exchange_quota(min_shard, q);
  std::vector<ShardStore> stores;
  for (auto& s : shards) {
    const std::size_t cap = s.size() + quota;
    stores.emplace_back(std::move(s), cap);
  }
  comm::World world(m);
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    world.run([&](comm::Communicator& c) {
      auto& store = stores[static_cast<std::size_t>(c.rank())];
      run_pls_exchange_epoch(c, store, seed, epoch, q, min_shard);
      post_exchange_local_shuffle(seed, epoch, c.rank(),
                                  store.mutable_ids());
    });
  }
  PartialLocalShuffler pls(make_shards(n, static_cast<std::size_t>(m)), q,
                           seed);
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    pls.begin_epoch(epoch);
  }
  for (int w = 0; w < m; ++w) {
    EXPECT_EQ(stores[static_cast<std::size_t>(w)].ids(),
              pls.stores()[static_cast<std::size_t>(w)].ids())
        << "rank " << w << " diverged (n=" << n << " m=" << m << " q=" << q
        << ")";
  }
}

TEST(MpiExchangeEdge, FullExchangeMatchesDriverBitIdentically) {
  // Q = 1 moves every sample every epoch — the partial scheme degenerates
  // to a full re-deal and must still track the driver byte for byte.
  expect_bit_identical_to_driver(/*n=*/40, /*m=*/5, /*q=*/1.0, /*seed=*/7,
                                 /*epochs=*/3);
}

TEST(MpiExchangeEdge, SingleRankSkipsTheExchange) {
  // M = 1: nothing to exchange with; the sequential driver skips the
  // exchange too (its plan needs m > 1), so both reduce to the local
  // shuffle alone.
  expect_bit_identical_to_driver(/*n=*/12, /*m=*/1, /*q=*/0.7, /*seed=*/3,
                                 /*epochs=*/2);
}

TEST(MpiExchangeEdge, MinimumShardOneSamplePerRank) {
  // shard = 1, Q = 1: every rank's whole shard (one sample) is in flight
  // every epoch.
  expect_bit_identical_to_driver(/*n=*/6, /*m=*/6, /*q=*/1.0, /*seed=*/5,
                                 /*epochs=*/3);
}

TEST(MpiExchangeEdge, RaggedShardsUseTheGlobalMinimumQuota)  {
  // n not divisible by m: shards of 7 and 6, quota from the minimum.
  expect_bit_identical_to_driver(/*n=*/50, /*m=*/8, /*q=*/0.5, /*seed=*/17,
                                 /*epochs=*/2);
}

TEST(MpiExchangeEdge, EmptyShardsAreANoOp) {
  const int m = 4;
  std::vector<ShardStore> stores(m);
  comm::World world(m);
  world.run([&](comm::Communicator& c) {
    const auto out = run_pls_exchange_epoch(
        c, stores[static_cast<std::size_t>(c.rank())], 1, 0, 1.0,
        /*global_min_shard=*/0);
    EXPECT_EQ(out.rounds, 0U);
  });
  for (const auto& s : stores) EXPECT_TRUE(s.ids().empty());
}

// The three byte ledgers — the analytic traffic model, ExchangeOutcome,
// and the comm.* counters — must agree to the byte, not a tolerance.
// With a uniform payload of P bytes: bytes_body is exactly the traffic
// model's Q * D / M (integer form pls_exchange_payload_bytes); every
// offered byte is either framing or payload; and the outcome's
// msgs_sent / bytes_sent march in lockstep with the comm layer's own
// isend / bytes_sent counters.
TEST(MpiExchangeEdge, BytesAccountingMatchesTrafficModelAndCommCounters) {
  const std::size_t n = 48;
  const int m = 6;
  const double q = 0.5;
  const std::size_t kPayloadBytes = 24;
  const std::size_t shard = n / static_cast<std::size_t>(m);
  const std::size_t quota = exchange_quota(shard, q);
  const std::size_t epochs = 2;

  for (const ExchangeWire wire :
       {ExchangeWire::kPerSample, ExchangeWire::kCoalesced}) {
    SCOPED_TRACE(to_string(wire));
    ScopedExchangeWire mode(wire);

    auto shards = make_shards(n, static_cast<std::size_t>(m));
    std::vector<ShardStore> stores;
    for (auto& s : shards) stores.emplace_back(std::move(s), shard + quota);

    std::vector<ExchangeOutcome> outcomes(
        static_cast<std::size_t>(m) * epochs);
    auto& isend_counter = obs::Registry::instance().counter("comm.isend");
    auto& bytes_counter =
        obs::Registry::instance().counter("comm.bytes_sent");
    const std::uint64_t isend_before = isend_counter.value();
    const std::uint64_t bytes_before = bytes_counter.value();

    comm::World world(m);
    world.run([&](comm::Communicator& c) {
      const auto r = static_cast<std::size_t>(c.rank());
      for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
        outcomes[r * epochs + epoch] = run_pls_exchange_epoch(
            c, stores[r], /*seed=*/17, epoch, q, shard,
            [&](SampleId id, std::vector<std::byte>& out) {
              out.insert(out.end(), kPayloadBytes,
                         static_cast<std::byte>(id & 0xFF));
            });
        post_exchange_local_shuffle(17, epoch, c.rank(),
                                    stores[r].mutable_ids());
      }
    });

    // Fast path, no faults: no retransmits, so the outcome's bytes_sent
    // is exactly the offered bytes, and the analytic model prices the
    // payload portion of every rank's epoch.
    const std::size_t model_body =
        pls_exchange_payload_bytes(quota, kPayloadBytes);
    TrafficParams tp;
    tp.dataset_bytes =
        static_cast<double>(n) * static_cast<double>(kPayloadBytes);
    tp.workers = static_cast<std::size_t>(m);
    tp.q = q;
    // ceil(q * shard) == q * shard here, so the double model is exact too.
    EXPECT_EQ(compute_traffic(tp).sent_per_worker,
              static_cast<double>(model_body));

    std::size_t sum_msgs = 0;
    std::size_t sum_bytes_sent = 0;
    for (const auto& o : outcomes) {
      EXPECT_EQ(o.rounds, quota);
      EXPECT_EQ(o.bytes_body, model_body);
      EXPECT_EQ(o.bytes_header + o.bytes_body, o.bytes_offered);
      EXPECT_EQ(o.bytes_sent, o.bytes_offered);
      if (wire == ExchangeWire::kPerSample) {
        EXPECT_EQ(o.msgs_sent, quota);
        EXPECT_EQ(o.bytes_header, quota * sizeof(SampleId));
      } else {
        // One frame per distinct destination (self included — the plan
        // may route rounds back to the sender).
        EXPECT_LE(o.msgs_sent, static_cast<std::size_t>(m));
        EXPECT_GE(o.msgs_sent, 1U);
      }
      sum_msgs += o.msgs_sent;
      sum_bytes_sent += o.bytes_sent;
    }
    EXPECT_EQ(isend_counter.value() - isend_before, sum_msgs);
    EXPECT_EQ(bytes_counter.value() - bytes_before, sum_bytes_sent);
  }
}

TEST(MpiExchangeEdge, OutcomeAccumulatesIntoStats) {
  ExchangeStats stats;
  ExchangeOutcome outcome;
  outcome.retries = 3;
  outcome.send_fallbacks = 1;
  outcome.recv_fallbacks = 2;
  outcome.duplicates_suppressed = 4;
  outcome.accumulate_into(stats);
  outcome.accumulate_into(stats);
  EXPECT_EQ(stats.retries, 6U);
  EXPECT_EQ(stats.send_fallbacks, 2U);
  EXPECT_EQ(stats.recv_fallbacks, 4U);
  EXPECT_EQ(stats.duplicates_suppressed, 8U);
}

}  // namespace
}  // namespace dshuf::shuffle
