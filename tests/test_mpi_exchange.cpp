// Cross-validation of the two Algorithm-1 implementations: the threaded
// message-passing executor must produce exactly the shard contents the
// sequential driver computes, because both derive every decision from the
// same (seed, epoch, worker) streams.
#include "shuffle/mpi_exchange.hpp"

#include <mutex>
#include <set>

#include <gtest/gtest.h>

#include "shuffle/shuffler.hpp"

namespace dshuf::shuffle {
namespace {

std::vector<std::vector<SampleId>> make_shards(std::size_t n,
                                               std::size_t workers) {
  std::vector<std::vector<SampleId>> shards(workers);
  for (std::size_t i = 0; i < n; ++i) {
    shards[i % workers].push_back(static_cast<SampleId>(i));
  }
  return shards;
}

TEST(MpiExchange, MatchesSequentialDriver) {
  const std::size_t n = 64;
  const int m = 8;
  const double q = 0.25;
  const std::uint64_t seed = 31;

  // Threaded execution: one store per rank, real isend/irecv.
  auto shards = make_shards(n, m);
  std::vector<ShardStore> stores;
  for (auto& s : shards) {
    const std::size_t cap = s.size() + exchange_quota(n / m, q);
    stores.emplace_back(std::move(s), cap);
  }
  comm::World world(m);
  for (std::size_t epoch = 0; epoch < 3; ++epoch) {
    world.run([&](comm::Communicator& c) {
      auto& store = stores[static_cast<std::size_t>(c.rank())];
      run_pls_exchange_epoch(c, store, seed, epoch, q, n / m);
      // Callers own the end-of-epoch local shuffle (see header contract).
      post_exchange_local_shuffle(seed, epoch, c.rank(),
                                  store.mutable_ids());
    });
  }

  // Sequential reference.
  PartialLocalShuffler pls(make_shards(n, m), q, seed);
  for (std::size_t epoch = 0; epoch < 3; ++epoch) pls.begin_epoch(epoch);

  for (int w = 0; w < m; ++w) {
    const auto& a = stores[static_cast<std::size_t>(w)].ids();
    const auto& b = pls.stores()[static_cast<std::size_t>(w)].ids();
    EXPECT_EQ(std::multiset<SampleId>(a.begin(), a.end()),
              std::multiset<SampleId>(b.begin(), b.end()))
        << "rank " << w;
  }
}

TEST(MpiExchange, ConservesSamplesAcrossRanks) {
  const std::size_t n = 48;
  const int m = 6;
  auto shards = make_shards(n, m);
  std::vector<ShardStore> stores;
  for (auto& s : shards) {
    const std::size_t cap = s.size() + exchange_quota(n / m, 0.5);
    stores.emplace_back(std::move(s), cap);
  }
  comm::World world(m);
  world.run([&](comm::Communicator& c) {
    run_pls_exchange_epoch(c, stores[static_cast<std::size_t>(c.rank())], 9,
                           0, 0.5, n / m);
  });
  std::multiset<SampleId> got;
  for (const auto& s : stores) got.insert(s.ids().begin(), s.ids().end());
  EXPECT_EQ(got.size(), n);
  EXPECT_EQ(std::set<SampleId>(got.begin(), got.end()).size(), n);
}

TEST(MpiExchange, MovesPayloadBytes) {
  const std::size_t n = 16;
  const int m = 4;
  auto shards = make_shards(n, m);
  std::vector<ShardStore> stores;
  for (auto& s : shards) {
    const std::size_t cap = s.size() + exchange_quota(n / m, 1.0);
    stores.emplace_back(std::move(s), cap);
  }
  // Payload = the sample id repeated 3 times as bytes; the deposit hook
  // verifies integrity on the receiving side.
  std::mutex mu;
  std::size_t deposits = 0;
  comm::World world(m);
  world.run([&](comm::Communicator& c) {
    run_pls_exchange_epoch(
        c, stores[static_cast<std::size_t>(c.rank())], 13, 0, 1.0, n / m,
        /*payload=*/
        [](SampleId id) {
          std::vector<std::byte> p(3, static_cast<std::byte>(id & 0xFF));
          return p;
        },
        /*deposit=*/
        [&](SampleId id, std::span<const std::byte> body) {
          EXPECT_EQ(body.size(), 3U);
          for (auto b : body) {
            EXPECT_EQ(b, static_cast<std::byte>(id & 0xFF));
          }
          std::lock_guard<std::mutex> lk(mu);
          ++deposits;
        });
  });
  EXPECT_EQ(deposits, n);  // quota == shard at Q = 1: all samples moved
}

TEST(MpiExchange, QZeroIsANoOp) {
  const std::size_t n = 16;
  const int m = 4;
  auto shards = make_shards(n, m);
  const auto original = shards;
  std::vector<ShardStore> stores;
  for (auto& s : shards) {
    const std::size_t cap = s.size();
    stores.emplace_back(std::move(s), cap);
  }
  comm::World world(m);
  world.run([&](comm::Communicator& c) {
    run_pls_exchange_epoch(c, stores[static_cast<std::size_t>(c.rank())], 13,
                           0, 0.0, n / m);
  });
  for (int w = 0; w < m; ++w) {
    EXPECT_EQ(stores[static_cast<std::size_t>(w)].ids(),
              original[static_cast<std::size_t>(w)]);
  }
}

}  // namespace
}  // namespace dshuf::shuffle
