// Unit tests for the mmap-backed segment store (io/mmap_store.hpp):
// round-trips, segment rollover, the byte-exact capacity bound, epoch-
// based reclamation (pins block retirement; advance_epoch frees dead
// segments), compaction of cold segments, crash-style reopen/replay of
// the segment log, both slot-index backends, and a TSan storm of
// concurrent pinned readers against a mutating writer.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <thread>
#include <vector>

#include "io/mmap_store.hpp"
#include "util/error.hpp"

namespace dshuf::io {
namespace {

namespace fs = std::filesystem;

std::vector<std::byte> bytes_of(std::initializer_list<int> xs) {
  std::vector<std::byte> out;
  for (int x : xs) out.push_back(static_cast<std::byte>(x));
  return out;
}

/// Deterministic payload for an id: id-seeded length and contents, so a
/// differential check needs no side table.
std::vector<std::byte> payload_for(data::SampleId id, std::size_t min_len = 1,
                                   std::size_t max_len = 64) {
  std::mt19937 rng(id * 2654435761U + 1);
  const std::size_t len =
      min_len + rng() % (max_len - min_len + 1);
  std::vector<std::byte> p(len);
  for (auto& b : p) b = static_cast<std::byte>(rng() & 0xFF);
  return p;
}

class MmapStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("dshuf_mmap_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

TEST_F(MmapStoreTest, RoundTripsPayloads) {
  MmapSampleStore store(dir_);
  const auto a = bytes_of({1, 2, 3, 4});
  const auto b = bytes_of({9});
  store.save(10, a);
  store.save(20, b);

  EXPECT_TRUE(store.contains(10));
  EXPECT_TRUE(store.contains(20));
  EXPECT_FALSE(store.contains(30));
  EXPECT_EQ(store.size(), 2U);
  EXPECT_EQ(store.disk_bytes(), a.size() + b.size());

  std::vector<std::byte> out;
  store.load_into(10, out);
  EXPECT_EQ(out, a);
  store.load_into(20, out);  // load_into APPENDS
  ASSERT_EQ(out.size(), a.size() + b.size());
  EXPECT_EQ(std::memcmp(out.data() + a.size(), b.data(), b.size()), 0);
}

TEST_F(MmapStoreTest, ReadHandsOutSpanWithoutLock) {
  MmapSampleStore store(dir_);
  const auto p = payload_for(5);
  store.save(5, p);
  bool called = false;
  store.read(5, [&](std::span<const std::byte> got) {
    called = true;
    ASSERT_EQ(got.size(), p.size());
    EXPECT_EQ(std::memcmp(got.data(), p.data(), p.size()), 0);
    // The callback runs without the store lock: reentering is legal.
    EXPECT_TRUE(store.contains(5));
  });
  EXPECT_TRUE(called);
}

TEST_F(MmapStoreTest, OverwriteReplacesAndAccountsBytes) {
  MmapSampleStore store(dir_);
  store.save(1, bytes_of({1, 1, 1, 1, 1}));
  store.save(1, bytes_of({2, 2}));
  EXPECT_EQ(store.size(), 1U);
  EXPECT_EQ(store.disk_bytes(), 2U);
  std::vector<std::byte> out;
  store.load_into(1, out);
  EXPECT_EQ(out, bytes_of({2, 2}));
  // The old extent sits in quarantine until the epoch advances.
  EXPECT_EQ(store.quarantined_bytes(), 5U);
  store.advance_epoch();
  EXPECT_EQ(store.quarantined_bytes(), 0U);
}

TEST_F(MmapStoreTest, RemoveThrowsWhenAbsentAndQuarantines) {
  MmapSampleStore store(dir_);
  store.save(7, bytes_of({1, 2, 3}));
  EXPECT_THROW(store.remove(8), CheckError);
  store.remove(7);
  EXPECT_FALSE(store.contains(7));
  EXPECT_EQ(store.disk_bytes(), 0U);
  EXPECT_EQ(store.quarantined_bytes(), 3U);
  EXPECT_THROW(store.remove(7), CheckError);
  std::vector<std::byte> out;
  EXPECT_THROW(store.load_into(7, out), CheckError);
}

TEST_F(MmapStoreTest, ListIsAscending) {
  MmapSampleStore store(dir_);
  for (data::SampleId id : {40U, 10U, 30U, 20U}) {
    store.save(id, payload_for(id));
  }
  store.remove(30);
  const auto ids = store.list();
  EXPECT_EQ(ids, (std::vector<data::SampleId>{10, 20, 40}));
}

TEST_F(MmapStoreTest, RollsOverIntoNewSegments) {
  MmapStoreConfig cfg;
  cfg.dir = dir_;
  cfg.segment_bytes = 4096;  // one page => frequent rollover
  MmapSampleStore store(cfg);
  for (data::SampleId id = 0; id < 500; ++id) {
    store.save(id, payload_for(id, 32, 64));
  }
  EXPECT_GE(store.segment_count(), 4U);
  for (data::SampleId id = 0; id < 500; ++id) {
    std::vector<std::byte> out;
    store.load_into(id, out);
    ASSERT_EQ(out, payload_for(id, 32, 64)) << "id " << id;
  }
}

TEST_F(MmapStoreTest, OversizedPayloadGetsDedicatedSegment) {
  MmapStoreConfig cfg;
  cfg.dir = dir_;
  cfg.segment_bytes = 4096;
  MmapSampleStore store(cfg);
  std::vector<std::byte> big(100'000, std::byte{0xAB});
  store.save(1, big);
  std::vector<std::byte> out;
  store.load_into(1, out);
  EXPECT_EQ(out, big);
  EXPECT_GE(store.resident_bytes(), big.size());
}

TEST_F(MmapStoreTest, CapacityBoundIsByteExact) {
  MmapStoreConfig cfg;
  cfg.dir = dir_;
  cfg.capacity_bytes = 10;
  MmapSampleStore store(cfg);
  store.save(1, bytes_of({1, 2, 3, 4, 5, 6}));      // 6 live
  store.save(2, bytes_of({1, 2, 3, 4}));            // 10 live == bound: ok
  EXPECT_THROW(store.save(3, bytes_of({1})), CheckError);  // 11 > 10
  // An overwrite charges only the delta...
  store.save(2, bytes_of({9, 9, 9, 9}));            // still 10
  EXPECT_THROW(store.save(2, bytes_of({9, 9, 9, 9, 9})), CheckError);
  // ...and removal frees budget immediately (live bytes, not reclaim).
  store.remove(1);
  store.save(3, bytes_of({1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(store.disk_bytes(), 10U);
}

TEST_F(MmapStoreTest, AdvanceEpochFreesFullyDeadSegments) {
  MmapStoreConfig cfg;
  cfg.dir = dir_;
  cfg.segment_bytes = 4096;
  MmapSampleStore store(cfg);
  for (data::SampleId id = 0; id < 300; ++id) {
    store.save(id, payload_for(id, 32, 64));
  }
  const std::size_t segs_before = store.segment_count();
  ASSERT_GE(segs_before, 3U);
  for (data::SampleId id = 0; id < 300; ++id) store.remove(id);
  EXPECT_EQ(store.disk_bytes(), 0U);
  EXPECT_GT(store.quarantined_bytes(), 0U);

  store.advance_epoch();
  EXPECT_EQ(store.quarantined_bytes(), 0U);
  // Every sealed segment died; at most the active one remains mapped.
  EXPECT_LE(store.segment_count(), 1U);
  // And the files are really gone from disk.
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(dir_)) {
    files += e.is_regular_file() ? 1 : 0;
  }
  EXPECT_LE(files, 1U);
}

TEST_F(MmapStoreTest, PinnedViewBlocksReclaimUntilDropped) {
  MmapStoreConfig cfg;
  cfg.dir = dir_;
  cfg.segment_bytes = 4096;
  MmapSampleStore store(cfg);
  const auto p = payload_for(1, 64, 64);
  store.save(1, p);
  // Seal the first segment so it is a candidate for freeing.
  for (data::SampleId id = 2; id < 200; ++id) {
    store.save(id, payload_for(id, 64, 64));
  }

  {
    auto view = store.pin(1);
    store.remove(1);  // quarantined, not freed
    store.advance_epoch();
    store.advance_epoch();
    // The pin predates the removal epoch: the bytes must still be intact.
    ASSERT_EQ(view.bytes().size(), p.size());
    EXPECT_EQ(std::memcmp(view.bytes().data(), p.data(), p.size()), 0);
    EXPECT_GT(store.quarantined_bytes(), 0U);
    EXPECT_GE(store.reclaim_lag(), 1U);
  }
  // Pin dropped: the next advance retires it.
  store.advance_epoch();
  EXPECT_EQ(store.quarantined_bytes(), 0U);
  EXPECT_EQ(store.reclaim_lag(), 0U);
}

TEST_F(MmapStoreTest, CompactionRelocatesSurvivorsAndFreesColdSegments) {
  MmapStoreConfig cfg;
  cfg.dir = dir_;
  cfg.segment_bytes = 4096;
  MmapSampleStore store(cfg);
  for (data::SampleId id = 0; id < 400; ++id) {
    store.save(id, payload_for(id, 32, 48));
  }
  const std::size_t segs_full = store.segment_count();
  ASSERT_GE(segs_full, 4U);
  // Kill ~94% of samples: every sealed segment drops under the 25% live
  // fraction but keeps a few survivors, so freeing REQUIRES relocation.
  for (data::SampleId id = 0; id < 400; ++id) {
    if (id % 16 != 0) store.remove(id);
  }
  for (int i = 0; i < 4; ++i) store.advance_epoch();

  EXPECT_LT(store.segment_count(), segs_full);
  EXPECT_LT(store.resident_bytes(), segs_full * 4096);
  // Survivors relocated intact.
  for (data::SampleId id = 0; id < 400; id += 16) {
    std::vector<std::byte> out;
    store.load_into(id, out);
    ASSERT_EQ(out, payload_for(id, 32, 48)) << "id " << id;
  }
  EXPECT_EQ(store.size(), 400U / 16U);
}

TEST_F(MmapStoreTest, ReopenReplaysSavesRemovesAndOverwrites) {
  {
    MmapStoreConfig cfg;
    cfg.dir = dir_;
    cfg.segment_bytes = 4096;
    MmapSampleStore store(cfg);
    for (data::SampleId id = 0; id < 200; ++id) {
      store.save(id, payload_for(id, 16, 48));
    }
    for (data::SampleId id = 0; id < 200; id += 3) store.remove(id);
    for (data::SampleId id = 1; id < 200; id += 10) {
      store.save(id, payload_for(id + 1'000, 16, 48));  // overwrite
    }
    // Destroyed WITHOUT advance_epoch: quarantined bytes still on disk,
    // replay must resolve them from the log alone.
  }

  MmapSampleStore reopened(dir_);
  std::size_t expect_live = 0;
  std::size_t expect_bytes = 0;
  for (data::SampleId id = 0; id < 200; ++id) {
    const bool removed = id % 3 == 0;
    const bool overwritten = id % 10 == 1;
    std::vector<std::byte> out;
    if (removed && !overwritten) {
      EXPECT_FALSE(reopened.contains(id)) << "id " << id;
      continue;
    }
    const auto want = overwritten ? payload_for(id + 1'000, 16, 48)
                                  : payload_for(id, 16, 48);
    reopened.load_into(id, out);
    ASSERT_EQ(out, want) << "id " << id;
    ++expect_live;
    expect_bytes += want.size();
  }
  EXPECT_EQ(reopened.size(), expect_live);
  EXPECT_EQ(reopened.disk_bytes(), expect_bytes);
  // A reopened store keeps working.
  reopened.save(500, bytes_of({1, 2, 3}));
  EXPECT_TRUE(reopened.contains(500));
}

// Regression: a tombstone in segment S may be the only thing masking an
// older record for the same id in an earlier, retained segment. Freeing
// S (once its live+quarantined counts hit zero) must re-log that
// tombstone, or the next reopen replays the earlier segment and
// resurrects the removed sample.
TEST_F(MmapStoreTest, RemovalSurvivesTombstoneSegmentFreeAcrossReopens) {
  MmapStoreConfig cfg;
  cfg.dir = dir_;
  cfg.segment_bytes = 4096;
  {
    MmapSampleStore store(cfg);
    // Fill segment 0 exactly: 8 records of 504-byte payloads (512 B each
    // with the header) — the next append must roll over.
    for (data::SampleId id = 1; id <= 8; ++id) {
      store.save(id, payload_for(id, 504, 504));
    }
    ASSERT_EQ(store.segment_count(), 1U);
    // The tombstone for id 1 becomes the ONLY record in segment 1...
    store.remove(1);
    // ...which an oversized save then seals (it gets its own segment 2).
    store.save(100, std::vector<std::byte>(8192, std::byte{0x5A}));
    ASSERT_EQ(store.segment_count(), 3U);
    // Drain reclaim until the tombstone-only segment is freed: id 1's
    // extent retires (segment 0 stays, ids 2..8 are live there) and the
    // sweep unlinks segment 1 — re-logging the tombstone first, since
    // segment 0 still holds id 1's record on disk.
    store.advance_epoch();
    store.advance_epoch();
    EXPECT_EQ(store.quarantined_bytes(), 0U);
    EXPECT_EQ(store.segment_count(), 2U) << "tombstone-only segment leaked";
    EXPECT_FALSE(store.contains(1));
  }
  // Reopen TWICE: without the re-log the first reopen replays segment
  // 0's record for id 1 unmasked and resurrects it.
  for (int round = 0; round < 2; ++round) {
    MmapSampleStore reopened(cfg);
    EXPECT_FALSE(reopened.contains(1)) << "resurrected on reopen " << round;
    EXPECT_EQ(reopened.size(), 8U) << "reopen " << round;  // 2..8 and 100
    for (data::SampleId id = 2; id <= 8; ++id) {
      std::vector<std::byte> out;
      reopened.load_into(id, out);
      ASSERT_EQ(out, payload_for(id, 504, 504)) << "id " << id;
    }
  }
}

// Same resurrection hazard on the reopen path: open_existing frees fully
// dead segments, and a reopened tombstone-only segment is fully dead.
// Its tombstones must migrate into a fresh segment, and stay durable
// across arbitrarily many reopen cycles.
TEST_F(MmapStoreTest, ReopenFreesTombstoneOnlySegmentWithoutResurrection) {
  MmapStoreConfig cfg;
  cfg.dir = dir_;
  cfg.segment_bytes = 4096;
  {
    MmapSampleStore store(cfg);
    for (data::SampleId id = 1; id <= 8; ++id) {
      store.save(id, payload_for(id, 504, 504));
    }
    ASSERT_EQ(store.segment_count(), 1U);
    store.remove(1);  // tombstone alone in segment 1
    // Destroyed with the quarantine undrained: replay resolves it.
  }
  for (int round = 0; round < 3; ++round) {
    MmapSampleStore reopened(cfg);
    EXPECT_FALSE(reopened.contains(1)) << "resurrected on reopen " << round;
    EXPECT_EQ(reopened.size(), 7U) << "reopen " << round;
  }
}

TEST_F(MmapStoreTest, ReopenIgnoresForeignFiles) {
  {
    MmapSampleStore store(dir_);
    store.save(1, bytes_of({1, 2, 3}));
  }
  {
    std::ofstream junk(dir_ / "notes.txt");
    junk << "not a segment";
  }
  MmapSampleStore reopened(dir_);
  EXPECT_EQ(reopened.size(), 1U);
  EXPECT_TRUE(reopened.contains(1));
}

TEST_F(MmapStoreTest, WorksWithBothIndexBackends) {
  for (const auto kind :
       {SlotIndexKind::kOpenAddressing, SlotIndexKind::kLearned}) {
    const fs::path sub = dir_ / to_string(kind);
    ScopedSlotIndex scoped(kind);
    MmapSampleStore store(sub);  // picks up the scoped default
    EXPECT_EQ(store.index_kind(), kind);
    for (data::SampleId id = 0; id < 2'000; ++id) {
      store.save(id, payload_for(id, 8, 24));
    }
    for (data::SampleId id = 0; id < 2'000; id += 2) store.remove(id);
    for (data::SampleId id = 1; id < 2'000; id += 2) {
      std::vector<std::byte> out;
      store.load_into(id, out);
      ASSERT_EQ(out, payload_for(id, 8, 24)) << to_string(kind) << " " << id;
    }
    EXPECT_EQ(store.size(), 1'000U);
    EXPECT_GT(store.index_stats().lookups, 0U);
  }
}

// TSan storm: concurrent pinned readers racing a writer that removes,
// re-saves and advances epochs. Under TSan this validates the pin
// release/acquire pairing; under plain builds it validates that a reader
// NEVER observes bytes from a reclaimed or rewritten extent (every span
// it sees must be internally consistent for SOME committed version).
TEST_F(MmapStoreTest, ConcurrentReadersSurviveReclamationStorm) {
  MmapStoreConfig cfg;
  cfg.dir = dir_;
  cfg.segment_bytes = 16 * 4096;
  MmapSampleStore store(cfg);
  constexpr data::SampleId kIds = 64;
  constexpr std::size_t kLen = 256;
  // Version-stamped payloads: byte pattern is a pure function of
  // (id, version), so readers can verify consistency without locks.
  auto make_payload = [](data::SampleId id, std::uint32_t version) {
    std::vector<std::byte> p(kLen);
    for (std::size_t i = 0; i < kLen; ++i) {
      p[i] = static_cast<std::byte>((id * 131 + version * 31 + i) & 0xFF);
    }
    return p;
  };
  for (data::SampleId id = 0; id < kIds; ++id) {
    store.save(id, make_payload(id, 0));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      std::mt19937 rng(static_cast<unsigned>(t) + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto id = static_cast<data::SampleId>(rng() % kIds);
        try {
          auto view = store.pin(id);
          const auto p = view.bytes();
          ASSERT_EQ(p.size(), kLen);
          // Recover the version from byte 0, then check every byte
          // matches that version — a torn/reclaimed span cannot.
          const auto b0 = static_cast<std::uint8_t>(p[0]);
          const auto base = static_cast<std::uint8_t>(id * 131);
          const std::uint8_t v31 = b0 - base;
          for (std::size_t i = 0; i < kLen; ++i) {
            ASSERT_EQ(static_cast<std::uint8_t>(p[i]),
                      static_cast<std::uint8_t>(base + v31 + i))
                << "torn read of id " << id;
          }
          reads.fetch_add(1, std::memory_order_relaxed);
        } catch (const CheckError&) {
          // id transiently absent between remove and re-save — fine.
        }
      }
    });
  }

  std::mt19937 wrng(99);
  for (std::uint32_t round = 1; round <= 300; ++round) {
    for (data::SampleId id = 0; id < kIds; ++id) {
      if (wrng() % 3 == 0) {
        store.remove(id);
        store.save(id, make_payload(id, round));
      } else {
        store.save(id, make_payload(id, round));  // overwrite path
      }
    }
    store.advance_epoch();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : readers) th.join();

  EXPECT_GT(reads.load(), 0U);
  EXPECT_EQ(store.size(), static_cast<std::size_t>(kIds));
  store.advance_epoch();  // drain the last round's quarantine
  store.advance_epoch();
  EXPECT_EQ(store.quarantined_bytes(), 0U);
}

}  // namespace
}  // namespace dshuf::io
