#include "nn/checkpoint.hpp"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "nn/builder.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace dshuf::nn {
namespace {

namespace fs = std::filesystem;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (fs::temp_directory_path() /
             ("dshuf_ckpt_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                .string();
  }
  void TearDown() override { fs::remove(path_); }

  static Model make_model(std::uint64_t seed) {
    Rng rng(seed);
    MlpSpec spec{.input_dim = 6,
                 .hidden = {12},
                 .num_classes = 4,
                 .norm = NormKind::kBatchNorm};
    return make_mlp(spec, rng);
  }

  /// One deterministic training step on synthetic data.
  static void train_step(Model& model, Sgd& opt,
                         const data::InMemoryDataset& ds, std::size_t step) {
    SoftmaxCrossEntropy ce;
    std::vector<data::SampleId> batch(8);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i] = static_cast<data::SampleId>((step * 8 + i) % ds.size());
    }
    const Tensor x = ds.gather(batch);
    const auto y = ds.gather_labels(batch);
    model.zero_grad();
    const Tensor logits = model.forward(x, true);
    ce.forward(logits, y);
    model.backward(ce.backward());
    opt.step();
  }

  static data::InMemoryDataset make_data() {
    return data::make_class_clusters({.num_classes = 4,
                                      .samples_per_class = 16,
                                      .feature_dim = 6,
                                      .seed = 3});
  }

  std::string path_;
};

TEST_F(CheckpointTest, RoundTripsThroughDisk) {
  Model model = make_model(1);
  Sgd opt(model, SgdConfig{.lr = 0.1F, .momentum = 0.9F});
  const auto ds = make_data();
  for (std::size_t s = 0; s < 5; ++s) train_step(model, opt, ds, s);

  const Checkpoint before = make_checkpoint(model, opt, 5);
  save_checkpoint(path_, before);
  const Checkpoint after = load_checkpoint(path_);
  EXPECT_EQ(after.epoch, 5U);
  EXPECT_EQ(after.model_state, before.model_state);
  EXPECT_EQ(after.buffer_state, before.buffer_state);
  EXPECT_EQ(after.optimizer_state, before.optimizer_state);
}

// The property that makes checkpoints trustworthy: restore + continue is
// bit-identical to never stopping.
TEST_F(CheckpointTest, ResumeEqualsUninterruptedTraining) {
  const auto ds = make_data();

  // Reference: 10 uninterrupted steps.
  Model ref = make_model(1);
  Sgd ref_opt(ref, SgdConfig{.lr = 0.1F, .momentum = 0.9F});
  for (std::size_t s = 0; s < 10; ++s) train_step(ref, ref_opt, ds, s);

  // Interrupted: 5 steps, checkpoint to disk, restore into FRESH objects,
  // 5 more steps.
  Model a = make_model(1);
  Sgd a_opt(a, SgdConfig{.lr = 0.1F, .momentum = 0.9F});
  for (std::size_t s = 0; s < 5; ++s) train_step(a, a_opt, ds, s);
  save_checkpoint(path_, make_checkpoint(a, a_opt, 5));

  Model b = make_model(999);  // different init — must be overwritten
  Sgd b_opt(b, SgdConfig{.lr = 0.1F, .momentum = 0.9F});
  const Checkpoint ckpt = load_checkpoint(path_);
  restore_checkpoint(ckpt, b, b_opt);
  for (std::size_t s = ckpt.epoch; s < 10; ++s) train_step(b, b_opt, ds, s);

  EXPECT_EQ(ref.state(), b.state());
  EXPECT_EQ(ref.buffer_state(), b.buffer_state());
}

TEST_F(CheckpointTest, BuffersIncludeBatchNormRunningStats) {
  Model model = make_model(1);
  const auto buffers = model.buffers();
  ASSERT_EQ(buffers.size(), 2U);  // running mean + var of the one BN layer
  // Train a little; running stats must change and be captured.
  Sgd opt(model, SgdConfig{.lr = 0.1F});
  const auto ds = make_data();
  const auto before = model.buffer_state();
  train_step(model, opt, ds, 0);
  EXPECT_NE(model.buffer_state(), before);
}

TEST_F(CheckpointTest, RejectsGarbageFiles) {
  {
    std::ofstream f(path_, std::ios::binary);
    f << "this is not a checkpoint";
  }
  EXPECT_THROW(load_checkpoint(path_), CheckError);
  EXPECT_THROW(load_checkpoint("/nonexistent/dir/x.ckpt"), CheckError);
}

TEST_F(CheckpointTest, RejectsTruncatedFiles) {
  Model model = make_model(1);
  Sgd opt(model, SgdConfig{});
  save_checkpoint(path_, make_checkpoint(model, opt, 1));
  const auto size = fs::file_size(path_);
  fs::resize_file(path_, size / 2);
  EXPECT_THROW(load_checkpoint(path_), CheckError);
}

TEST_F(CheckpointTest, RestoreRejectsArchitectureMismatch) {
  Model model = make_model(1);
  Sgd opt(model, SgdConfig{});
  const Checkpoint ckpt = make_checkpoint(model, opt, 0);

  Rng rng(2);
  MlpSpec other{.input_dim = 6, .hidden = {24}, .num_classes = 4};
  Model wrong = make_mlp(other, rng);
  Sgd wrong_opt(wrong, SgdConfig{});
  EXPECT_THROW(restore_checkpoint(ckpt, wrong, wrong_opt), CheckError);
}

}  // namespace
}  // namespace dshuf::nn
