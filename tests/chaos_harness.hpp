// Seeded chaos-test harness for the comm layer and the PLS exchange.
//
// A chaos run wires a fault-injected comm::World to the robust
// run_pls_exchange_epoch and sweeps epochs, collecting per-rank outcomes.
// Everything is reproducible from (shuffle seed, fault seed): the fault
// schedule is a pure function of the fault seed (comm/fault.hpp) and the
// retry/deadline margins are sized so the protocol's decisions depend only
// on WHICH messages the plan drops, not on thread scheduling. Tests assert
// the core invariants on the result:
//
//   * conservation — no sample globally lost or duplicated, ever;
//   * equivalence  — with drops disabled, shards bit-identical to the
//                    sequential PartialLocalShuffler;
//   * balance      — per-epoch shard drift bounded by the exchange quota;
//   * determinism  — identical seeds => identical final shards.
#pragma once

#include <gtest/gtest.h>

#include <mutex>
#include <set>
#include <vector>

#include "comm/fault.hpp"
#include "shuffle/mpi_exchange.hpp"
#include "shuffle/shuffler.hpp"

namespace dshuf::chaos {

using shuffle::SampleId;

inline std::vector<std::vector<SampleId>> make_shards(std::size_t n,
                                                      int workers) {
  std::vector<std::vector<SampleId>> shards(
      static_cast<std::size_t>(workers));
  for (std::size_t i = 0; i < n; ++i) {
    shards[i % static_cast<std::size_t>(workers)].push_back(
        static_cast<SampleId>(i));
  }
  return shards;
}

/// Robustness budget with margins comfortably above the harness's injected
/// delays (<= ~10 ms) so round outcomes are functions of the drop pattern
/// alone.
inline shuffle::ExchangeRobustness default_robustness() {
  shuffle::ExchangeRobustness r;
  r.ack_timeout = std::chrono::milliseconds(40);
  r.max_attempts = 4;
  r.backoff = 2.0;
  r.recv_deadline = std::chrono::milliseconds(800);
  r.poll_interval = std::chrono::microseconds(200);
  return r;
}

struct ChaosConfig {
  std::size_t n = 64;          ///< dataset size (dealt round-robin)
  int m = 4;                   ///< ranks
  double q = 0.3;              ///< exchange fraction
  std::size_t epochs = 2;
  std::uint64_t seed = 1;        ///< shuffle seed (plans, picks, shuffles)
  std::uint64_t fault_seed = 1;  ///< fault-schedule seed
  comm::FaultSpec spec;
  shuffle::ExchangeRobustness robust = default_robustness();
  /// Wire format to run the exchange under (defaults to the process-wide
  /// mode); chaos invariants must hold for BOTH.
  shuffle::ExchangeWire wire = shuffle::exchange_wire();
  /// Unlimited store capacity: required for drop scenarios, where shard
  /// sizes may drift beyond the fault-free (1+Q) bound across epochs.
  bool unlimited_capacity = false;
};

struct ChaosResult {
  std::vector<std::vector<SampleId>> initial;            // pre-run shards
  std::vector<std::vector<SampleId>> shards;             // final shard ids
  std::vector<std::vector<shuffle::ExchangeOutcome>> outcomes;  // [epoch][rank]
  std::vector<std::vector<std::size_t>> sizes_per_epoch;  // [epoch][rank]
  std::vector<std::size_t> quota_per_epoch;
  comm::FaultStats faults;
};

/// Run `epochs` robust exchange epochs (plus the caller-owned post-exchange
/// local shuffle, applied here exactly as the sequential driver does) over
/// a fault-injected world.
inline ChaosResult run_chaos_exchange(const ChaosConfig& cfg) {
  ChaosResult result;
  result.initial = make_shards(cfg.n, cfg.m);

  auto shards = result.initial;
  std::vector<std::size_t> initial_sizes;
  std::size_t min_shard = shards.empty() ? 0 : shards[0].size();
  for (const auto& s : shards) min_shard = std::min(min_shard, s.size());
  const std::size_t quota0 = shuffle::exchange_quota(min_shard, cfg.q);
  std::vector<shuffle::ShardStore> stores;
  stores.reserve(shards.size());
  for (auto& s : shards) {
    initial_sizes.push_back(s.size());
    const std::size_t cap =
        cfg.unlimited_capacity ? 0 : s.size() + quota0;
    stores.emplace_back(std::move(s), cap);
  }

  // Set BEFORE World::run — rank threads read the process-wide mode.
  shuffle::ScopedExchangeWire wire_mode(cfg.wire);
  comm::World world(cfg.m);
  world.set_fault_plan(comm::FaultPlan(cfg.fault_seed, cfg.spec));

  result.outcomes.resize(cfg.epochs);
  result.sizes_per_epoch.resize(cfg.epochs);
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    // All ranks agree on the epoch's quota from the (globally known)
    // minimum shard size; under drift the harness recomputes it between
    // world runs — the distributed analogue is one tiny allreduce.
    std::size_t global_min = stores[0].size();
    for (const auto& s : stores) {
      global_min = std::min(global_min, s.size());
    }
    result.quota_per_epoch.push_back(
        shuffle::exchange_quota(global_min, cfg.q));

    std::vector<shuffle::ExchangeOutcome> per_rank(
        static_cast<std::size_t>(cfg.m));
    world.run([&](comm::Communicator& c) {
      auto& store = stores[static_cast<std::size_t>(c.rank())];
      auto outcome = shuffle::run_pls_exchange_epoch(
          c, store, cfg.seed, epoch, cfg.q, global_min,
          /*payload=*/nullptr, /*deposit=*/nullptr, &cfg.robust);
      shuffle::post_exchange_local_shuffle(cfg.seed, epoch, c.rank(),
                                           store.mutable_ids());
      per_rank[static_cast<std::size_t>(c.rank())] = outcome;
    });
    result.outcomes[epoch] = std::move(per_rank);
    for (const auto& s : stores) {
      result.sizes_per_epoch[epoch].push_back(s.size());
    }
  }

  result.faults = world.fault_stats();
  for (auto& s : stores) result.shards.push_back(s.ids());
  return result;
}

/// Union of all shards must be exactly {0, ..., n-1}: nothing lost,
/// nothing duplicated — the invariant that must survive ANY fault schedule.
inline void expect_conservation(
    const std::vector<std::vector<SampleId>>& shards, std::size_t n) {
  std::multiset<SampleId> all;
  for (const auto& s : shards) all.insert(s.begin(), s.end());
  ASSERT_EQ(all.size(), n) << "sample count changed";
  EXPECT_EQ(std::set<SampleId>(all.begin(), all.end()).size(), n)
      << "a sample was duplicated (and another lost)";
  if (n > 0) {
    EXPECT_EQ(*all.begin(), 0U);
    EXPECT_EQ(*all.rbegin(), n - 1);
  }
}

/// Each epoch moves at most `quota` samples in and out of a shard, so the
/// per-epoch drift is bounded by the quota even when rounds fail.
inline void expect_balance_bound(const ChaosResult& result) {
  std::vector<std::size_t> prev;
  for (const auto& s : result.initial) prev.push_back(s.size());
  for (std::size_t e = 0; e < result.sizes_per_epoch.size(); ++e) {
    const auto quota = result.quota_per_epoch[e];
    for (std::size_t w = 0; w < prev.size(); ++w) {
      const auto now = result.sizes_per_epoch[e][w];
      const auto drift = now > prev[w] ? now - prev[w] : prev[w] - now;
      EXPECT_LE(drift, quota)
          << "rank " << w << " drifted by " << drift << " in epoch " << e;
    }
    prev = result.sizes_per_epoch[e];
  }
}

/// Reference: final shards of the sequential PartialLocalShuffler after the
/// same number of epochs. Valid comparison only for no-drop fault specs.
inline std::vector<std::vector<SampleId>> sequential_reference(
    const ChaosConfig& cfg) {
  shuffle::PartialLocalShuffler pls(make_shards(cfg.n, cfg.m), cfg.q,
                                    cfg.seed);
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    pls.begin_epoch(epoch);
  }
  std::vector<std::vector<SampleId>> out;
  for (const auto& s : pls.stores()) out.push_back(s.ids());
  return out;
}

}  // namespace dshuf::chaos
