#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

namespace dshuf {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ForkIsDeterministicAndDoesNotAdvanceParent) {
  Rng parent(7);
  const auto before = Rng(7).next();
  Rng c1 = parent.fork(1, 2, 3);
  Rng c2 = parent.fork(1, 2, 3);
  EXPECT_EQ(c1.next(), c2.next());
  EXPECT_EQ(parent.next(), before);
}

TEST(Rng, ForkTagsProduceIndependentStreams) {
  Rng parent(7);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, UniformU64RespectsBound) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform_u64(17), 17U);
  }
}

TEST(Rng, UniformU64IsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform_u64(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  double chi2 = 0;
  for (int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  // 7 dof; 99.9th percentile ~ 24.3.
  EXPECT_LT(chi2, 24.3);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(-2, 2));
  EXPECT_EQ(seen.size(), 5U);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  constexpr int kDraws = 50000;
  double sum = 0;
  double sum2 = 0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sum2 / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, PermutationIsBijective) {
  Rng rng(17);
  const auto p = rng.permutation(257);
  std::vector<bool> seen(257, false);
  for (auto v : p) {
    ASSERT_LT(v, 257U);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(Rng, PermutationActuallyShuffles) {
  Rng rng(19);
  const auto p = rng.permutation(100);
  std::size_t fixed = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] == i) ++fixed;
  }
  EXPECT_LT(fixed, 10U);  // expected ~1 fixed point
}

TEST(Rng, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(23);
  const auto s = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(s.size(), 20U);
  std::set<std::uint32_t> set(s.begin(), s.end());
  EXPECT_EQ(set.size(), 20U);
  for (auto v : s) EXPECT_LT(v, 50U);
}

TEST(Rng, SampleWithoutReplacementFullPopulation) {
  Rng rng(29);
  const auto s = rng.sample_without_replacement(10, 10);
  std::set<std::uint32_t> set(s.begin(), s.end());
  EXPECT_EQ(set.size(), 10U);
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(31);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), CheckError);
}

TEST(Rng, ShuffleIsSeedStable) {
  std::vector<int> a{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> b = a;
  Rng r1(99);
  Rng r2(99);
  r1.shuffle(a);
  r2.shuffle(b);
  EXPECT_EQ(a, b);
}

TEST(Rng, UniformU64RejectsZeroBound) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_u64(0), CheckError);
}

}  // namespace
}  // namespace dshuf
