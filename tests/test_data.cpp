#include <set>

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "data/workloads.hpp"

namespace dshuf::data {
namespace {

TEST(Dataset, GatherAssemblesBatch) {
  Tensor f({3, 2}, {1, 2, 3, 4, 5, 6});
  InMemoryDataset ds(std::move(f), {0, 1, 0}, 2);
  const std::vector<SampleId> ids{2, 0};
  const Tensor batch = ds.gather(ids);
  EXPECT_EQ(batch.rows(), 2U);
  EXPECT_FLOAT_EQ(batch.at(0, 0), 5.0F);
  EXPECT_FLOAT_EQ(batch.at(1, 1), 2.0F);
  const auto labels = ds.gather_labels(ids);
  EXPECT_EQ(labels[0], 0U);
  EXPECT_EQ(labels[1], 0U);
}

TEST(Dataset, RejectsOutOfRangeIds) {
  InMemoryDataset ds(Tensor({2, 1}), {0, 1}, 2);
  const std::vector<SampleId> bad{5};
  EXPECT_THROW(ds.gather(bad), CheckError);
  EXPECT_THROW((void)ds.label(9), CheckError);
}

TEST(Dataset, RejectsLabelOutOfClassRange) {
  EXPECT_THROW(InMemoryDataset(Tensor({2, 1}), {0, 5}, 2), CheckError);
}

TEST(Dataset, ClassHistogram) {
  InMemoryDataset ds(Tensor({4, 1}), {0, 1, 1, 1}, 3);
  const auto h = ds.class_histogram();
  EXPECT_EQ(h[0], 1U);
  EXPECT_EQ(h[1], 3U);
  EXPECT_EQ(h[2], 0U);
}

TEST(Dataset, BytesPerSample) {
  InMemoryDataset ds(Tensor({1, 10}), {0}, 2);
  EXPECT_EQ(ds.bytes_per_sample(), 10 * sizeof(float) + sizeof(std::uint32_t));
}

TEST(Synthetic, DeterministicForSpec) {
  ClassClusterSpec spec{.num_classes = 4, .samples_per_class = 8, .seed = 5};
  const auto a = make_class_clusters(spec);
  const auto b = make_class_clusters(spec);
  EXPECT_EQ(a.features().vec(), b.features().vec());
  EXPECT_EQ(a.labels(), b.labels());
}

TEST(Synthetic, DifferentSeedsDiffer) {
  ClassClusterSpec spec{.num_classes = 4, .samples_per_class = 8, .seed = 5};
  auto a = make_class_clusters(spec);
  spec.seed = 6;
  auto b = make_class_clusters(spec);
  EXPECT_NE(a.features().vec(), b.features().vec());
}

TEST(Synthetic, ShapeAndBalance) {
  ClassClusterSpec spec{.num_classes = 5,
                        .samples_per_class = 10,
                        .feature_dim = 7,
                        .label_noise = 0.0};
  const auto ds = make_class_clusters(spec);
  EXPECT_EQ(ds.size(), 50U);
  EXPECT_EQ(ds.feature_dim(), 7U);
  EXPECT_EQ(ds.num_classes(), 5U);
  for (auto c : ds.class_histogram()) EXPECT_EQ(c, 10U);
}

TEST(Synthetic, LabelNoisePerturbsSomeLabels) {
  ClassClusterSpec clean{.num_classes = 4,
                         .samples_per_class = 200,
                         .label_noise = 0.0,
                         .seed = 9};
  ClassClusterSpec noisy = clean;
  noisy.label_noise = 0.3;
  const auto a = make_class_clusters(clean);
  const auto b = make_class_clusters(noisy);
  std::size_t flips = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.labels()[i] != b.labels()[i]) ++flips;
  }
  // ~30% * (3/4 actually change); allow wide tolerance.
  EXPECT_GT(flips, 80U);
  EXPECT_LT(flips, 280U);
}

TEST(Synthetic, ClassesAreSeparated) {
  // With strong separation, per-class centroid distances should dominate
  // the within-class spread: nearest-centroid classification on the raw
  // features should beat chance by a wide margin.
  ClassClusterSpec spec{.num_classes = 4,
                        .samples_per_class = 50,
                        .feature_dim = 16,
                        .cluster_separation = 4.0,
                        .manifold_warp = 0.0,
                        .seed = 11};
  const auto ds = make_class_clusters(spec);
  // Compute class means.
  std::vector<std::vector<double>> means(4,
                                         std::vector<double>(16, 0.0));
  for (std::size_t i = 0; i < ds.size(); ++i) {
    for (std::size_t dIdx = 0; dIdx < 16; ++dIdx) {
      means[ds.labels()[i]][dIdx] += ds.features().at(i, dIdx) / 50.0;
    }
  }
  std::size_t correct = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    double best = 1e18;
    std::size_t arg = 0;
    for (std::size_t c = 0; c < 4; ++c) {
      double d2 = 0;
      for (std::size_t k = 0; k < 16; ++k) {
        const double diff = ds.features().at(i, k) - means[c][k];
        d2 += diff * diff;
      }
      if (d2 < best) {
        best = d2;
        arg = c;
      }
    }
    if (arg == ds.labels()[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(ds.size()),
            0.9);
}

TEST(Synthetic, SplitProducesIndependentValSet) {
  ClassClusterSpec spec{.num_classes = 3, .samples_per_class = 20, .seed = 13};
  const auto split = make_class_clusters_split(spec, 0.25);
  EXPECT_EQ(split.train.size(), 60U);
  EXPECT_EQ(split.val.size(), 15U);
  // Same geometry, different draws: no row of val equals a row of train.
  EXPECT_NE(split.train.features().at(0, 0), split.val.features().at(0, 0));
}

TEST(Taxonomy, LabelsAreConsistent) {
  TaxonomySpec spec{.coarse_classes = 3,
                    .fine_per_coarse = 4,
                    .samples_per_fine = 6,
                    .seed = 17};
  const auto tax = make_taxonomy(spec);
  EXPECT_EQ(tax.fine_classes, 12U);
  EXPECT_EQ(tax.coarse_classes, 3U);
  EXPECT_EQ(tax.upstream.train.num_classes(), 12U);
  EXPECT_EQ(tax.downstream.train.num_classes(), 3U);
  EXPECT_EQ(tax.upstream.train.size(), 12U * 6U);
}

TEST(Taxonomy, FineClustersNestInsideCoarse) {
  // Samples of fine classes belonging to the same coarse class should be
  // closer on average than samples from different coarse classes.
  TaxonomySpec spec{.coarse_classes = 4,
                    .fine_per_coarse = 3,
                    .samples_per_fine = 20,
                    .feature_dim = 24,
                    .coarse_separation = 6.0,
                    .fine_separation = 1.0,
                    .manifold_warp = 0.0,
                    .seed = 19};
  const auto tax = make_taxonomy(spec);
  const auto& ds = tax.downstream.train;
  // Mean within-coarse vs between-coarse distances over a sample of pairs.
  double within = 0;
  double between = 0;
  std::size_t wn = 0;
  std::size_t bn = 0;
  for (std::size_t i = 0; i < ds.size(); i += 7) {
    for (std::size_t j = i + 1; j < ds.size(); j += 11) {
      double d2 = 0;
      for (std::size_t k = 0; k < ds.feature_dim(); ++k) {
        const double diff = ds.features().at(i, k) - ds.features().at(j, k);
        d2 += diff * diff;
      }
      if (ds.labels()[i] == ds.labels()[j]) {
        within += d2;
        ++wn;
      } else {
        between += d2;
        ++bn;
      }
    }
  }
  ASSERT_GT(wn, 0U);
  ASSERT_GT(bn, 0U);
  EXPECT_LT(within / static_cast<double>(wn),
            between / static_cast<double>(bn));
}

TEST(Climate, ImbalancedClasses) {
  ClimateSpec spec{.num_samples = 1000, .background_fraction = 0.8};
  const auto split = make_climate_proxy(spec);
  const auto h = split.train.class_histogram();
  ASSERT_EQ(h.size(), 3U);
  EXPECT_NEAR(
      static_cast<double>(h[0]) / static_cast<double>(split.train.size()),
      0.8, 0.02);
  EXPECT_GT(h[1], h[2]);  // cyclones more common than rivers
}

TEST(Workloads, RegistryCoversTableOne) {
  const auto& reg = workload_registry();
  EXPECT_EQ(reg.size(), 8U);
  std::set<std::string> names;
  for (const auto& w : reg) names.insert(w.name);
  EXPECT_TRUE(names.count("imagenet1k-resnet50"));
  EXPECT_TRUE(names.count("deepcam"));
  EXPECT_TRUE(names.count("cifar100-inception"));
}

TEST(Workloads, FindByNameAndReject) {
  EXPECT_EQ(find_workload("cars-resnet50").paper_dataset, "Stanford Cars");
  EXPECT_THROW(find_workload("nonexistent"), CheckError);
}

TEST(Workloads, SpecsAreInternallyConsistent) {
  for (const auto& w : workload_registry()) {
    EXPECT_EQ(w.data.feature_dim, w.model.input_dim) << w.name;
    EXPECT_EQ(w.data.num_classes, w.model.num_classes) << w.name;
    EXPECT_GT(w.regime.epochs, 0U) << w.name;
    EXPECT_GT(w.regime.base_lr, 0.0F) << w.name;
  }
}

}  // namespace
}  // namespace dshuf::data
