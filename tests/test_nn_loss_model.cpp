#include <cmath>

#include <gtest/gtest.h>

#include "nn/builder.hpp"
#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/metrics.hpp"
#include "nn/model.hpp"

namespace dshuf::nn {
namespace {

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogC) {
  SoftmaxCrossEntropy ce;
  Tensor logits({2, 4});  // all zeros => uniform softmax
  const float loss = ce.forward(logits, {0, 3});
  EXPECT_NEAR(loss, std::log(4.0F), 1e-5F);
}

TEST(SoftmaxCrossEntropy, ConfidentCorrectPredictionLowLoss) {
  SoftmaxCrossEntropy ce;
  Tensor logits({1, 3}, {10.0F, 0.0F, 0.0F});
  EXPECT_LT(ce.forward(logits, {0}), 1e-3F);
  EXPECT_GT(ce.forward(logits, {1}), 5.0F);
}

TEST(SoftmaxCrossEntropy, ProbsSumToOne) {
  SoftmaxCrossEntropy ce;
  Tensor logits({2, 5}, {1, 2, 3, 4, 5, -1, 0, 1, 0, -1});
  ce.forward(logits, {0, 1});
  for (std::size_t i = 0; i < 2; ++i) {
    double sum = 0;
    for (std::size_t j = 0; j < 5; ++j) sum += ce.probs().at(i, j);
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(SoftmaxCrossEntropy, GradientIsProbsMinusOneHotOverN) {
  SoftmaxCrossEntropy ce;
  Tensor logits({2, 3}, {1, 2, 3, 0, 0, 0});
  ce.forward(logits, {2, 0});
  const Tensor g = ce.backward();
  // Row sums of the gradient are zero (softmax property).
  for (std::size_t i = 0; i < 2; ++i) {
    double s = 0;
    for (std::size_t j = 0; j < 3; ++j) s += g.at(i, j);
    EXPECT_NEAR(s, 0.0, 1e-6);
  }
  // grad = (p - onehot) / N.
  EXPECT_NEAR(g.at(0, 2), (ce.probs().at(0, 2) - 1.0F) / 2.0F, 1e-6F);
  EXPECT_NEAR(g.at(1, 0), (ce.probs().at(1, 0) - 1.0F) / 2.0F, 1e-6F);
}

TEST(SoftmaxCrossEntropy, NumericallyStableForHugeLogits) {
  SoftmaxCrossEntropy ce;
  Tensor logits({1, 2}, {10000.0F, 9990.0F});
  const float loss = ce.forward(logits, {0});
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_LT(loss, 1e-3F);
}

TEST(SoftmaxCrossEntropy, GradientMatchesFiniteDifferences) {
  Rng rng(1);
  SoftmaxCrossEntropy ce;
  Tensor logits = Tensor::randn({3, 4}, rng);
  const std::vector<std::uint32_t> labels{1, 3, 0};
  ce.forward(logits, labels);
  const Tensor g = ce.backward();
  const float eps = 1e-2F;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const float orig = logits.at(i);
    logits.vec()[i] = orig + eps;
    const float lp = ce.forward(logits, labels);
    logits.vec()[i] = orig - eps;
    const float lm = ce.forward(logits, labels);
    logits.vec()[i] = orig;
    EXPECT_NEAR(g.at(i), (lp - lm) / (2 * eps), 2e-3F);
  }
}

TEST(SoftmaxCrossEntropy, RejectsBadLabels) {
  SoftmaxCrossEntropy ce;
  Tensor logits({1, 3});
  EXPECT_THROW(ce.forward(logits, {3}), CheckError);
  EXPECT_THROW(ce.forward(logits, {0, 1}), CheckError);
}

TEST(Model, StateRoundTrips) {
  Rng rng(2);
  MlpSpec spec{.input_dim = 4, .hidden = {8}, .num_classes = 3};
  Model m = make_mlp(spec, rng);
  const auto s = m.state();
  EXPECT_EQ(s.size(), m.num_params());
  Rng rng2(99);
  Model m2 = make_mlp(spec, rng2);
  m2.load_state(s);
  EXPECT_EQ(m2.state(), s);
}

TEST(Model, LoadStateRejectsWrongSize) {
  Rng rng(3);
  MlpSpec spec{.input_dim = 4, .hidden = {8}, .num_classes = 3};
  Model m = make_mlp(spec, rng);
  std::vector<float> tooshort(m.num_params() - 1, 0.0F);
  EXPECT_THROW(m.load_state(tooshort), CheckError);
}

TEST(Model, ZeroGradAndScaleGrad) {
  Rng rng(4);
  Model m;
  m.add(std::make_unique<Linear>(2, 2, rng));
  Tensor x = Tensor::randn({3, 2}, rng);
  Tensor g({3, 2});
  g.fill(1.0F);
  m.forward(x, true);
  m.backward(g);
  const auto g1 = m.gradients();
  m.scale_grad(0.5F);
  const auto g2 = m.gradients();
  for (std::size_t i = 0; i < g1.size(); ++i) {
    EXPECT_FLOAT_EQ(g2[i], 0.5F * g1[i]);
  }
  m.zero_grad();
  for (float v : m.gradients()) EXPECT_FLOAT_EQ(v, 0.0F);
}

TEST(Model, PopLayersRemovesHead) {
  Rng rng(5);
  MlpSpec spec{.input_dim = 4, .hidden = {8}, .num_classes = 3};
  Model m = make_mlp(spec, rng);
  const auto before = m.layers().size();
  m.pop_layers(1);
  EXPECT_EQ(m.layers().size(), before - 1);
  // Output is now the 8-wide trunk activation.
  Tensor x = Tensor::randn({2, 4}, rng);
  EXPECT_EQ(m.forward(x, false).cols(), 8U);
}

TEST(Builder, MlpShapesAndNormSelection) {
  Rng rng(6);
  for (auto norm : {NormKind::kNone, NormKind::kBatchNorm,
                    NormKind::kGroupNorm}) {
    MlpSpec spec{.input_dim = 6,
                 .hidden = {12, 10},
                 .num_classes = 4,
                 .norm = norm,
                 .groups = 2};
    Model m = make_mlp(spec, rng);
    Tensor x = Tensor::randn({5, 6}, rng);
    const Tensor y = m.forward(x, true);
    EXPECT_EQ(y.rows(), 5U);
    EXPECT_EQ(y.cols(), 4U);
  }
}

TEST(Builder, RejectsDegenerateSpecs) {
  Rng rng(7);
  MlpSpec spec{.input_dim = 0, .hidden = {4}, .num_classes = 3};
  EXPECT_THROW(make_mlp(spec, rng), CheckError);
  spec = MlpSpec{.input_dim = 4, .hidden = {4}, .num_classes = 1};
  EXPECT_THROW(make_mlp(spec, rng), CheckError);
}

TEST(Metrics, Top1Accuracy) {
  Tensor logits({3, 2}, {0.9F, 0.1F, 0.2F, 0.8F, 0.6F, 0.4F});
  EXPECT_DOUBLE_EQ(top1_accuracy(logits, {0, 1, 1}), 2.0 / 3.0);
}

TEST(Metrics, AccuracyMeterAccumulates) {
  AccuracyMeter meter;
  Tensor l1({1, 2}, {1.0F, 0.0F});
  Tensor l2({1, 2}, {0.0F, 1.0F});
  meter.update(l1, {0});
  meter.update(l2, {0});
  EXPECT_DOUBLE_EQ(meter.value(), 0.5);
  EXPECT_EQ(meter.count(), 2U);
  meter.reset();
  EXPECT_DOUBLE_EQ(meter.value(), 0.0);
}

}  // namespace
}  // namespace dshuf::nn
