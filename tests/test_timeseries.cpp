// Windowed telemetry tests: quantile estimation from bucketed counts,
// the log2 default histogram layout, and TimeseriesSampler's per-window
// delta semantics (obs/timeseries.hpp, DESIGN.md §13).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"

namespace dshuf::obs {
namespace {

// ------------------------------------------------------------ quantiles --

TEST(Quantiles, EmptyHistogramEstimatesAllZero) {
  const Quantiles q = estimate_quantiles({10, 20, 30}, {0, 0, 0, 0});
  EXPECT_EQ(q.p50, 0.0);
  EXPECT_EQ(q.p99, 0.0);
  EXPECT_EQ(q.p999, 0.0);
}

// All mass in one bucket: estimates interpolate linearly inside
// [bounds[i-1], bounds[i]]. total=4, p50 rank=2 -> frac (2-0.5)/4.
TEST(Quantiles, InterpolatesLinearlyInsideTheOwningBucket) {
  const Quantiles q = estimate_quantiles({10, 20, 30}, {0, 4, 0, 0});
  EXPECT_DOUBLE_EQ(q.p50, 10.0 + 10.0 * (2.0 - 0.5) / 4.0);   // 13.75
  EXPECT_DOUBLE_EQ(q.p99, 10.0 + 10.0 * (4.0 - 0.5) / 4.0);   // 18.75
  EXPECT_DOUBLE_EQ(q.p999, q.p99);  // both ranks clamp to total
}

TEST(Quantiles, OverflowBucketExtrapolatesToTwiceTheLastBound) {
  // All 3 observations above bounds.back(): the synthetic upper edge is
  // 2 * 20 = 40, so every estimate lands in (20, 40).
  const Quantiles q = estimate_quantiles({10, 20}, {0, 0, 3});
  EXPECT_DOUBLE_EQ(q.p50, 20.0 + 20.0 * (2.0 - 0.5) / 3.0);   // 30
  EXPECT_GT(q.p999, q.p50);
  EXPECT_LT(q.p999, 40.0);
}

TEST(Quantiles, MonotoneAcrossBuckets) {
  const Quantiles q = estimate_quantiles({1, 2, 4, 8, 16},
                                         {5, 10, 20, 40, 20, 5});
  EXPECT_LE(q.p50, q.p99);
  EXPECT_LE(q.p99, q.p999);
}

// ---------------------------------------------------- log2 default hist --

TEST(Log2Histogram, DefaultRegistrationUsesLog2Buckets) {
  auto& h = Registry::instance().histogram("ts.test.log2_layout");
  ASSERT_TRUE(h.log2_buckets());
  const auto bounds = log2_latency_bounds_us();
  ASSERT_EQ(h.bounds().size(), bounds.size());
  EXPECT_EQ(h.bounds().front(), 1u);
  EXPECT_EQ(h.bounds().back(), std::uint64_t{1} << 39);
  // Bucket index is bit_width(v-1): 1000 lands in (512, 1024].
  h.reset();
  h.observe(1000);
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), bounds.size() + 1);
  EXPECT_EQ(counts[std::bit_width(std::uint64_t{999})], 1u);
}

// The one-octave error bound: the estimate shares a bucket with the true
// value, so it stays within [2^(i-1), 2^i] of any constant input.
TEST(Log2Histogram, QuantileErrorBoundedByOneOctave) {
  Histogram h;  // log2 default
  for (int i = 0; i < 100; ++i) h.observe(1000);
  const Quantiles q = estimate_quantiles(h.bounds(), h.bucket_counts());
  for (const double est : {q.p50, q.p99, q.p999}) {
    EXPECT_GE(est, 512.0);
    EXPECT_LE(est, 1024.0);
  }
}

// -------------------------------------------------------------- sampler --

TEST(TimeseriesSampler, WindowsAreDeltasNotTotals) {
  auto& sampler = TimeseriesSampler::instance();
  Registry::instance().reset();
  sampler.set_enabled(true);
  sampler.reset();

  DSHUF_COUNTER("ts.test.events").add(5);
  sampler.sample_window("w0");
  DSHUF_COUNTER("ts.test.events").add(3);
  DSHUF_GAUGE("ts.test.depth").set(7);
  for (int i = 0; i < 3; ++i) DSHUF_HISTOGRAM_US("ts.test.lat").observe(100);
  sampler.sample_window("w1");
  sampler.set_enabled(false);

  const auto ws = sampler.windows();
  ASSERT_EQ(ws.size(), 2u);

  const auto counter_in = [](const TimeseriesWindow& w,
                             const std::string& name) -> std::int64_t {
    for (const auto& [n, v] : w.counters) {
      if (n == name) return static_cast<std::int64_t>(v);
    }
    return -1;
  };
  EXPECT_EQ(counter_in(ws[0], "ts.test.events"), 5);
  EXPECT_EQ(counter_in(ws[1], "ts.test.events"), 3);  // delta, not 8

  ASSERT_EQ(ws[1].histograms.size(), 1u);
  EXPECT_EQ(ws[1].histograms[0].name, "ts.test.lat");
  EXPECT_EQ(ws[1].histograms[0].count, 3u);
  EXPECT_EQ(ws[1].histograms[0].sum, 300u);
  // Window 0 saw no histogram observations — zero-delta entries are
  // omitted entirely.
  EXPECT_TRUE(ws[0].histograms.empty());

  // Windows tile the timeline: contiguous, non-overlapping.
  EXPECT_LE(ws[0].t_start_us, ws[0].t_end_us);
  EXPECT_EQ(ws[0].t_end_us, ws[1].t_start_us);
}

TEST(TimeseriesSampler, GaugesExportLevelsAtTheBoundary) {
  auto& sampler = TimeseriesSampler::instance();
  Registry::instance().reset();
  sampler.set_enabled(true);
  sampler.reset();

  DSHUF_GAUGE("ts.test.level").set(7);
  sampler.sample_window("w0");
  DSHUF_GAUGE("ts.test.level").set(2);
  sampler.sample_window("w1");
  sampler.set_enabled(false);

  const auto ws = sampler.windows();
  ASSERT_EQ(ws.size(), 2u);
  const auto gauge_in = [](const TimeseriesWindow& w,
                           const std::string& name) -> std::int64_t {
    for (const auto& [n, v] : w.gauges) {
      if (n == name) return v;
    }
    return INT64_MIN;
  };
  EXPECT_EQ(gauge_in(ws[0], "ts.test.level"), 7);
  EXPECT_EQ(gauge_in(ws[1], "ts.test.level"), 2);  // level, not -5 delta
}

TEST(TimeseriesSampler, RegistryResetMidWindowDoesNotUnderflow) {
  auto& sampler = TimeseriesSampler::instance();
  Registry::instance().reset();
  sampler.set_enabled(true);
  sampler.reset();

  DSHUF_COUNTER("ts.test.rollback").add(10);
  sampler.sample_window("w0");
  Registry::instance().reset();  // totals drop below the baseline
  DSHUF_COUNTER("ts.test.rollback").add(4);
  sampler.sample_window("w1");
  sampler.set_enabled(false);

  const auto ws = sampler.windows();
  ASSERT_EQ(ws.size(), 2u);
  for (const auto& [n, v] : ws[1].counters) {
    if (n == "ts.test.rollback") {
      EXPECT_EQ(v, 4u);  // new total, not a wrapped 4 - 10
      return;
    }
  }
  FAIL() << "ts.test.rollback missing from the post-reset window";
}

TEST(TimeseriesSampler, DisabledSamplerIgnoresTicks) {
  auto& sampler = TimeseriesSampler::instance();
  sampler.set_enabled(true);
  sampler.reset();
  sampler.set_enabled(false);
  const std::size_t before = sampler.window_count();
  sampler.sample_window("ignored");
  tick_timeseries_epoch(42);
  EXPECT_EQ(sampler.window_count(), before);
}

TEST(TimeseriesSampler, JsonCarriesTheSchemaTagAndWindowLabels) {
  auto& sampler = TimeseriesSampler::instance();
  Registry::instance().reset();
  sampler.set_enabled(true);
  sampler.reset();
  DSHUF_COUNTER("ts.test.json").add(1);
  tick_timeseries_epoch(3);
  sampler.set_enabled(false);

  const std::string json = sampler.to_json();
  EXPECT_NE(json.find("\"schema\": \"dshuf.timeseries.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"label\": \"epoch 3\""), std::string::npos);
  EXPECT_NE(json.find("\"ts.test.json\": 1"), std::string::npos);
}

}  // namespace
}  // namespace dshuf::obs
