// Bit-identity of the multicore kernels and the overlapped trainer.
//
// The work-stealing runtime parallelises GEMM/im2col over M-blocks with
// the reduction order inside every micro-tile unchanged, and the trainer's
// overlapped exchange prefetch replays the exact begin_epoch sequence the
// sequential schedule runs — so EVERY result here must match the serial
// path to the last bit, not to a tolerance. These tests pin that contract
// at 1/2/4/8 workers.
//
// Also here: the regression tests for the thread-aware process-wide mode
// switches (ScopedKernelBackend, ScopedExchangeWire). Both are atomics
// with release/acquire semantics read once per call/epoch; flipping them
// from another thread under load must never tear (TSan runs these via the
// `concurrent` label) and every individual call must land wholly on one
// mode.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "data/synthetic.hpp"
#include "nn/builder.hpp"
#include "nn/conv.hpp"
#include "shuffle/exchange_wire.hpp"
#include "sim/overlap.hpp"
#include "sim/trainer.hpp"
#include "task/scheduler.hpp"
#include "util/error.hpp"

namespace dshuf {
namespace {

/// Exact (bit-level) tensor comparison: float == would accept -0.0 vs 0.0
/// and reject NaN; memcmp is the contract we actually promise.
[[nodiscard]] bool bits_equal(const Tensor& a, const Tensor& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

[[nodiscard]] bool bits_equal(const std::vector<float>& a,
                              const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

constexpr std::size_t kWorkerCounts[] = {1, 2, 4, 8};

// n=160 crosses the parallel gate (m*n*k >= 1<<20), so the scheduler
// actually partitions the M-blocks at workers > 1.
TEST(TaskDeterminism, GemmBitIdenticalAcrossWorkers) {
  const ScopedKernelBackend backend(KernelBackend::kBlocked);
  constexpr std::size_t n = 160;
  Rng rng(3);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  Tensor serial({n, n});
  gemm(a, b, serial, false);

  for (const std::size_t w : kWorkerCounts) {
    const task::ScopedTaskWorkers scoped(w);
    Tensor out({n, n});
    gemm(a, b, out, false);
    EXPECT_TRUE(bits_equal(serial, out)) << "gemm differs at " << w
                                         << " workers";
    // Accumulating into a warm output must also be unchanged.
    Tensor acc = Tensor::randn({n, n}, rng);
    Tensor acc_serial = acc;
    gemm(a, b, acc, true);
    {
      // Reference accumulate without the scheduler.
      const task::ScopedTaskWorkers serial_scope(1);
      gemm(a, b, acc_serial, true);
    }
    EXPECT_TRUE(bits_equal(acc_serial, acc))
        << "accumulating gemm differs at " << w << " workers";
  }
}

TEST(TaskDeterminism, GemmTransposeVariantsBitIdenticalAcrossWorkers) {
  const ScopedKernelBackend backend(KernelBackend::kBlocked);
  constexpr std::size_t n = 160;
  Rng rng(5);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  Tensor at_serial({n, n});
  Tensor bt_serial({n, n});
  gemm_at_b(a, b, at_serial, false);
  gemm_a_bt(a, b, bt_serial, false);

  for (const std::size_t w : kWorkerCounts) {
    const task::ScopedTaskWorkers scoped(w);
    Tensor at({n, n});
    Tensor bt({n, n});
    gemm_at_b(a, b, at, false);
    gemm_a_bt(a, b, bt, false);
    EXPECT_TRUE(bits_equal(at_serial, at)) << "gemm_at_b differs at " << w;
    EXPECT_TRUE(bits_equal(bt_serial, bt)) << "gemm_a_bt differs at " << w;
  }
}

TEST(TaskDeterminism, Conv1dBitIdenticalAcrossWorkers) {
  const ScopedKernelBackend backend(KernelBackend::kBlocked);
  Rng srng(7);
  const Tensor x = Tensor::randn({32, 8 * 32}, srng);
  const Tensor g = Tensor::randn({32, 16 * 32}, srng);

  Tensor y_serial;
  Tensor gi_serial;
  {
    Rng rng(7);
    nn::Conv1d conv(8, 16, 32, 3, rng);
    conv.forward_into(x, y_serial, true);
    conv.backward_into(g, gi_serial);
  }

  for (const std::size_t w : kWorkerCounts) {
    const task::ScopedTaskWorkers scoped(w);
    Rng rng(7);
    nn::Conv1d conv(8, 16, 32, 3, rng);
    Tensor y;
    Tensor gi;
    conv.forward_into(x, y, true);
    conv.backward_into(g, gi);
    EXPECT_TRUE(bits_equal(y_serial, y))
        << "Conv1d forward differs at " << w << " workers";
    EXPECT_TRUE(bits_equal(gi_serial, gi))
        << "Conv1d backward differs at " << w << " workers";
  }
}

// --- trained-model bit-identity --------------------------------------

data::Workload tiny_workload() {
  data::Workload w = data::find_workload("imagenet1k-resnet50");
  w.data.num_classes = 8;
  w.data.samples_per_class = 24;
  w.data.feature_dim = 12;
  w.model.input_dim = 12;
  w.model.num_classes = 8;
  w.model.hidden = {24};
  w.regime.epochs = 4;
  w.regime.milestones = {3};
  w.regime.warmup_epochs = 1.0;
  w.regime.reference_batch = 32;
  return w;
}

sim::SimConfig tiny_config() {
  sim::SimConfig c;
  c.workers = 4;
  c.local_batch = 8;
  c.strategy = shuffle::Strategy::kPartial;
  c.q = 0.25;
  c.epochs = 4;
  c.seed = 77;
  c.max_eval_samples = 0;
  return c;
}

struct TrainedRun {
  std::vector<float> params;
  std::vector<float> buffers;
  sim::SimResult result;
};

TrainedRun train_once(bool overlap, std::size_t workers) {
  const task::ScopedTaskWorkers scoped(workers);
  const auto w = tiny_workload();
  auto cfg = tiny_config();
  cfg.overlap_exchange = overlap;
  auto split = data::make_class_clusters_split(w.data);
  Rng mrng = Rng(cfg.seed).fork(0x91);
  nn::Model model = nn::make_mlp(w.model, mrng);
  TrainedRun run;
  run.result = sim::train_model(model, split.train, split.val, w.regime, cfg,
                                overlap ? "overlap" : "sequential");
  run.params = model.state();
  run.buffers = model.buffer_state();
  return run;
}

void expect_same_run(const TrainedRun& a, const TrainedRun& b,
                     const char* what) {
  EXPECT_TRUE(bits_equal(a.params, b.params)) << what << ": params differ";
  EXPECT_TRUE(bits_equal(a.buffers, b.buffers)) << what << ": buffers differ";
  ASSERT_EQ(a.result.epochs.size(), b.result.epochs.size()) << what;
  for (std::size_t e = 0; e < a.result.epochs.size(); ++e) {
    EXPECT_DOUBLE_EQ(a.result.epochs[e].train_loss,
                     b.result.epochs[e].train_loss)
        << what << ": loss differs at epoch " << e;
    EXPECT_EQ(a.result.epochs[e].samples_exchanged,
              b.result.epochs[e].samples_exchanged)
        << what << ": exchange count differs at epoch " << e;
  }
  EXPECT_DOUBLE_EQ(a.result.peak_storage_ratio, b.result.peak_storage_ratio)
      << what;
}

// The acceptance bit: multicore + overlapped training reproduces the
// serial sequential schedule's model EXACTLY — same parameters, same
// BatchNorm buffers, same per-epoch losses and exchange counts.
TEST(TaskDeterminism, TrainedModelBitIdenticalAcrossWorkersAndOverlap) {
  const TrainedRun baseline = train_once(/*overlap=*/false, /*workers=*/1);
  ASSERT_GT(baseline.result.epochs.front().samples_exchanged, 0U)
      << "config must actually exchange, or the test proves nothing";

  expect_same_run(baseline, train_once(true, 1), "overlap@1");
  for (const std::size_t w : {2UL, 4UL, 8UL}) {
    expect_same_run(baseline, train_once(false, w), "sequential@multi");
    expect_same_run(baseline, train_once(true, w), "overlap@multi");
  }
}

// --- mode switches flipped under load --------------------------------

// Another thread flips the kernel backend as fast as it can while we run
// GEMMs. Each call must land wholly on ONE backend: the result is byte-
// equal to the pure-blocked or the pure-reference product, never a blend.
TEST(TaskDeterminism, KernelBackendFlipUnderLoadIsPerCallConsistent) {
  constexpr std::size_t n = 64;
  Rng rng(11);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  Tensor blocked({n, n});
  Tensor reference({n, n});
  {
    const ScopedKernelBackend s(KernelBackend::kBlocked);
    gemm(a, b, blocked, false);
  }
  {
    const ScopedKernelBackend s(KernelBackend::kReference);
    gemm(a, b, reference, false);
  }

  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    bool which = false;
    while (!stop.load(std::memory_order_acquire)) {
      set_kernel_backend(which ? KernelBackend::kBlocked
                               : KernelBackend::kReference);
      which = !which;
    }
  });

  Tensor out({n, n});
  for (int i = 0; i < 400; ++i) {
    gemm(a, b, out, false);
    const bool is_blocked = bits_equal(out, blocked);
    const bool is_reference = bits_equal(out, reference);
    ASSERT_TRUE(is_blocked || is_reference)
        << "gemm result matches neither backend at iteration " << i;
  }
  stop.store(true, std::memory_order_release);
  flipper.join();
  set_kernel_backend(KernelBackend::kBlocked);
}

// Same drill for the exchange wire. The mode is read once per epoch at
// run_pls_exchange_epoch entry, so a concurrent flip must never tear the
// value (always a valid enumerator) and exchanges driven with the flip
// sequenced between World runs must leave identical shards under either
// wire.
TEST(TaskDeterminism, ExchangeWireFlipUnderLoadIsSafe) {
  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    bool which = false;
    while (!stop.load(std::memory_order_acquire)) {
      shuffle::set_exchange_wire(which ? shuffle::ExchangeWire::kPerSample
                                       : shuffle::ExchangeWire::kCoalesced);
      which = !which;
    }
  });

  // Reads under concurrent flips never see a torn value.
  for (int i = 0; i < 20'000; ++i) {
    const auto w = shuffle::exchange_wire();
    ASSERT_TRUE(w == shuffle::ExchangeWire::kPerSample ||
                w == shuffle::ExchangeWire::kCoalesced)
        << "torn exchange_wire read";
  }
  // Exchanges racing the flipper: the documented contract is memory
  // safety plus per-epoch consistency — each rank reads the mode once at
  // epoch entry, so a run either completes (and then its shards match the
  // quiet baseline exactly) or fails CLEANLY with CheckError when ranks
  // within one epoch disagree / the split-phase path sees kPerSample.
  // Never a torn value, never a crash (TSan audits the never-a-tear half).
  // The robust protocol is required for LIVENESS here: mixed wires within
  // an epoch can leave a rank expecting a message its peer never sent,
  // and only the recv deadline turns that into the clean CheckError.
  sim::OverlapConfig cfg;
  cfg.n = 96;
  cfg.ranks = 3;
  cfg.q = 0.3;
  cfg.epochs = 2;
  cfg.seed = 13;
  cfg.compute = [](int, std::size_t) {};
  shuffle::ExchangeRobustness robust;
  robust.ack_timeout = std::chrono::milliseconds(40);
  robust.max_attempts = 4;
  robust.backoff = 2.0;
  robust.recv_deadline = std::chrono::milliseconds(800);
  robust.poll_interval = std::chrono::microseconds(200);
  cfg.robust = robust;
  sim::OverlapResult baseline;
  {
    // Quiet baseline first; the flipper is still running, so pause it.
    stop.store(true, std::memory_order_release);
    flipper.join();
    shuffle::set_exchange_wire(shuffle::ExchangeWire::kCoalesced);
    baseline = sim::run_overlapped_epochs(cfg);
  }

  std::atomic<bool> stop2{false};
  std::thread flipper2([&] {
    bool which = false;
    while (!stop2.load(std::memory_order_acquire)) {
      shuffle::set_exchange_wire(which ? shuffle::ExchangeWire::kPerSample
                                       : shuffle::ExchangeWire::kCoalesced);
      which = !which;
      std::this_thread::yield();
    }
  });
  int completed = 0;
  for (int i = 0; i < 8; ++i) {
    cfg.overlapped = (i % 2 == 0);
    try {
      const auto res = sim::run_overlapped_epochs(cfg);
      EXPECT_EQ(baseline.shards, res.shards)
          << "a completed run under flips must match the quiet baseline";
      ++completed;
    } catch (const CheckError&) {
      // Clean rejection of a mid-epoch wire disagreement: acceptable.
    }
  }
  stop2.store(true, std::memory_order_release);
  flipper2.join();
  shuffle::set_exchange_wire(shuffle::ExchangeWire::kCoalesced);
  // Not a hard guarantee, but with yields in the flipper at least one run
  // should usually get through; record it for the log either way.
  RecordProperty("runs_completed_under_flips", completed);
}

}  // namespace
}  // namespace dshuf
