// Causal-DAG analysis tests: critical paths, flow checking, straggler
// attribution, and the trace/timeseries loaders — driven through
// dshuf_trace_lib, the exact code the CLI runs (DESIGN.md §13).
//
// Synthetic Ev vectors pin the DAG semantics exactly (every duration
// below is hand-checked); the loader tests round-trip real exports.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "trace_analysis.hpp"
#include "util/error.hpp"

namespace dshuf::tracetool {
namespace {

Ev span(const std::string& name, std::int64_t tid, std::uint64_t ts,
        std::uint64_t dur, const std::string& epoch = "") {
  Ev e;
  e.name = name;
  e.ph = 'X';
  e.tid = tid;
  e.ts_us = ts;
  e.dur_us = dur;
  if (!epoch.empty()) e.args["epoch"] = epoch;
  return e;
}

Ev flow(char ph, std::int64_t tid, std::uint64_t ts, std::uint64_t id,
        const std::string& epoch = "") {
  Ev e;
  e.name = "dshuf.flow";
  e.ph = ph;
  e.tid = tid;
  e.ts_us = ts;
  e.flow_id = id;
  if (!epoch.empty()) e.args["epoch"] = epoch;
  return e;
}

std::string write_temp(const std::string& name, const std::string& body) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary);
  out << body;
  return path;
}

// ------------------------------------------------------- critical paths --

// A single rank doing strictly sequential work: the epoch's critical path
// is the whole epoch, so path_us must equal wall_us exactly. The nested
// post/fence spans carry no epoch arg — they are assigned by containment
// in the enclosing exchange.epoch window.
TEST(CriticalPath, SingleTrackSequentialEpochEqualsWallClock) {
  std::vector<Ev> ev;
  ev.push_back(span("exchange.epoch", 0, 0, 100, "0"));
  ev.push_back(span("exchange.post", 0, 0, 30));
  ev.push_back(span("exchange.fence", 0, 30, 70));

  const auto cps = critical_paths(ev);
  ASSERT_EQ(cps.size(), 1u);
  EXPECT_EQ(cps[0].label, "epoch 0");
  EXPECT_EQ(cps[0].wall_us, 100u);
  EXPECT_EQ(cps[0].path_us, 100u);
  // The epoch span contributes no self-time (fully covered by children),
  // so the path is post + fence.
  ASSERT_EQ(cps[0].steps.size(), 2u);
  EXPECT_EQ(cps[0].steps[0].name, "exchange.fence");
  EXPECT_EQ(cps[0].steps[0].us, 70u);
  EXPECT_EQ(cps[0].steps[1].name, "exchange.post");
}

// A flow edge lets the path jump tracks: producer prefix (40us to the
// send point) + wire + consumer suffix (40us from the finish) = 80us,
// longer than either track alone (50us and 10+40=50us).
TEST(CriticalPath, FlowEdgeStitchesCrossTrackPath) {
  std::vector<Ev> ev;
  ev.push_back(span("produce", 0, 0, 50, "0"));
  ev.push_back(span("recv.wait", 1, 0, 10, "0"));
  ev.push_back(span("consume", 1, 60, 40, "0"));
  ev.push_back(flow('s', 0, 40, 7, "0"));
  ev.push_back(flow('f', 1, 60, 7, "0"));

  const auto cps = critical_paths(ev);
  ASSERT_EQ(cps.size(), 1u);
  EXPECT_EQ(cps[0].wall_us, 100u);
  EXPECT_EQ(cps[0].path_us, 80u);
  ASSERT_GE(cps[0].steps.size(), 2u);
  // Largest contribution first; both sides of the wire are on the path.
  EXPECT_EQ(cps[0].steps[0].name, "produce");
  EXPECT_EQ(cps[0].steps[0].tid, 0);
  EXPECT_EQ(cps[0].steps[1].name, "consume");
  EXPECT_EQ(cps[0].steps[1].tid, 1);
}

TEST(CriticalPath, EpochGroupsSortNumericallyNotLexicographically) {
  std::vector<Ev> ev;
  ev.push_back(span("exchange.epoch", 0, 1000, 10, "10"));
  ev.push_back(span("exchange.epoch", 0, 0, 10, "2"));

  const auto cps = critical_paths(ev);
  ASSERT_EQ(cps.size(), 2u);
  EXPECT_EQ(cps[0].label, "epoch 2");
  EXPECT_EQ(cps[1].label, "epoch 10");
}

TEST(CriticalPath, TraceWithoutEpochArgsFormsOneGroup) {
  std::vector<Ev> ev;
  ev.push_back(span("compute", 0, 0, 40));
  ev.push_back(span("compute", 1, 0, 60));

  const auto cps = critical_paths(ev);
  ASSERT_EQ(cps.size(), 1u);
  EXPECT_EQ(cps[0].label, "trace");
  EXPECT_EQ(cps[0].wall_us, 60u);
  EXPECT_EQ(cps[0].path_us, 60u);
}

// ---------------------------------------------------------- flow checks --

TEST(CheckFlows, AcceptsCausallySoundTrace) {
  std::vector<Ev> ev;
  ev.push_back(flow('s', 0, 10, 5));
  ev.push_back(flow('t', 0, 15, 5));  // retransmit after the send: fine
  ev.push_back(flow('f', 1, 20, 5));

  const auto fc = check_flows(ev);
  EXPECT_EQ(fc.sends, 1u);
  EXPECT_EQ(fc.steps, 1u);
  EXPECT_EQ(fc.finishes, 1u);
  EXPECT_TRUE(fc.errors.empty());
}

TEST(CheckFlows, FlagsRecvBeforeSendAndOrphanFinishes) {
  std::vector<Ev> ev;
  ev.push_back(flow('s', 0, 10, 5));
  ev.push_back(flow('f', 1, 5, 5));   // finish before its send
  ev.push_back(flow('f', 1, 20, 9));  // no send with this id at all

  const auto fc = check_flows(ev);
  ASSERT_EQ(fc.errors.size(), 2u);
  EXPECT_NE(fc.errors[0].find("precedes its send"), std::string::npos);
  EXPECT_NE(fc.errors[1].find("no matching send"), std::string::npos);
}

TEST(CheckFlows, RetransmitOnlyShiftsNothingWhenFirstSendIsEarliest) {
  // Two sends of the same id (a retry re-sends): causal soundness is
  // measured against the FIRST send, so a finish between them is sound.
  std::vector<Ev> ev;
  ev.push_back(flow('s', 0, 10, 5));
  ev.push_back(flow('s', 0, 40, 5));
  ev.push_back(flow('f', 1, 25, 5));
  EXPECT_TRUE(check_flows(ev).errors.empty());
}

// ----------------------------------------------------------- stragglers --

std::vector<Ev> straggler_trace() {
  std::vector<Ev> ev;
  // Rank 1 spends half of epoch 3 in the fence.
  ev.push_back(span("exchange.epoch", 1, 0, 100, "3"));
  ev.push_back(span("exchange.fence", 1, 50, 50));
  // Rank 0's frame arrives early; rank 2's arrives last after a
  // retransmit, so rank 2 is the blocker.
  ev.push_back(flow('s', 0, 10, 100, "3"));
  ev.push_back(flow('f', 1, 20, 100, "3"));
  ev.push_back(flow('s', 2, 15, 200, "3"));
  ev.push_back(flow('t', 2, 60, 200, "3"));
  ev.push_back(flow('f', 1, 90, 200, "3"));
  return ev;
}

TEST(Stragglers, BlamesTheSenderOfTheLastArrival) {
  const auto rows = stragglers(straggler_trace(), {});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].epoch, "3");  // from the enclosing exchange.epoch
  EXPECT_EQ(rows[0].rank, 1);
  EXPECT_EQ(rows[0].fence_us, 50u);
  EXPECT_EQ(rows[0].blocking_rank, 2);
  EXPECT_EQ(rows[0].retransmits, 1u);
  // No metrics context: the retransmitted blocker is presumed injected.
  EXPECT_EQ(rows[0].klass, "fault");
}

TEST(Stragglers, QuietFaultCountersReclassifyRetransmitsAsOrganic) {
  // A metrics snapshot with no comm.fault.* activity proves nothing was
  // injected — the same retransmit pattern is plain skew.
  std::map<std::string, std::uint64_t> counters{
      {"exchange.epochs", 4}, {"comm.fault.drops", 0}};
  const auto rows = stragglers(straggler_trace(), counters);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].klass, "organic");

  counters["comm.fault.drops"] = 2;
  const auto rows2 = stragglers(straggler_trace(), counters);
  ASSERT_EQ(rows2.size(), 1u);
  EXPECT_EQ(rows2[0].klass, "fault");
}

TEST(Stragglers, FenceWithNoArrivalsBlamesNobody) {
  std::vector<Ev> ev;
  ev.push_back(span("exchange.epoch", 0, 0, 10, "0"));
  ev.push_back(span("exchange.fence", 0, 5, 5));
  const auto rows = stragglers(ev, {});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].blocking_rank, -1);
  EXPECT_EQ(rows[0].klass, "organic");
}

// -------------------------------------------------------------- loaders --

TEST(LoadTrace, ParsesSpansFlowsAndMetadata) {
  const std::string path = write_temp(
      "dshuf_ta_trace.json",
      R"({"traceEvents":[
{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"dshuf"}},
{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"rank 0"}},
{"name":"exchange.epoch","ph":"X","ts":0,"dur":100,"pid":0,"tid":0,"args":{"epoch":"0"}},
{"name":"dshuf.flow","ph":"s","ts":10,"pid":0,"tid":0,"id":"9223372036854775809","args":{"epoch":"0"}},
{"name":"dshuf.flow","ph":"f","ts":20,"pid":0,"tid":1,"id":"9223372036854775809","bp":"e","args":{"epoch":"0"}}
]})");
  const auto events = load_trace(path);
  ASSERT_EQ(events.size(), 5u);
  const auto names = thread_names(events);
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names.at(0), "rank 0");
  // Bit-63 flow ids round-trip through the decimal-string encoding.
  EXPECT_EQ(events[3].flow_id, 9223372036854775809ull);
  EXPECT_EQ(events[4].flow_id, 9223372036854775809ull);
  EXPECT_TRUE(check_flows(events).errors.empty());
  std::remove(path.c_str());
}

TEST(LoadTrace, RejectsUnknownPhasesAndIdlessFlows) {
  const std::string bad_phase = write_temp(
      "dshuf_ta_badphase.json",
      R"({"traceEvents":[{"name":"x","ph":"Q","ts":0,"tid":0}]})");
  EXPECT_THROW((void)load_trace(bad_phase), CheckError);
  std::remove(bad_phase.c_str());

  const std::string no_id = write_temp(
      "dshuf_ta_noid.json",
      R"({"traceEvents":[{"name":"f","ph":"s","ts":0,"tid":0}]})");
  EXPECT_ANY_THROW((void)load_trace(no_id));
  std::remove(no_id.c_str());
}

// The real sampler's export must satisfy the tool's structural checks.
TEST(LoadTimeseries, RoundTripsARealSamplerExport) {
  auto& sampler = obs::TimeseriesSampler::instance();
  obs::Registry::instance().reset();
  sampler.set_enabled(true);
  sampler.reset();
  DSHUF_COUNTER("tracetest.ticks").add(7);
  for (int i = 0; i < 5; ++i) {
    DSHUF_HISTOGRAM_US("tracetest.lat_us").observe(100);
  }
  obs::tick_timeseries_epoch(0);
  DSHUF_COUNTER("tracetest.ticks").add(1);
  sampler.sample_window("final");
  sampler.set_enabled(false);

  const std::string path = ::testing::TempDir() + "dshuf_ta_ts.json";
  ASSERT_TRUE(sampler.write_json(path));
  const auto ws = load_timeseries(path);
  ASSERT_EQ(ws.size(), 2u);
  EXPECT_EQ(ws[0].label, "epoch 0");
  EXPECT_EQ(ws[1].label, "final");
  EXPECT_GE(ws[0].counters, 1u);
  EXPECT_EQ(ws[0].histograms, 1u);
  EXPECT_EQ(ws[1].histograms, 0u);  // nothing observed in the last window
  std::remove(path.c_str());
}

TEST(LoadTimeseries, RejectsMalformedDocuments) {
  const std::string wrong_schema = write_temp(
      "dshuf_ta_ts_schema.json", R"({"schema":"other","windows":[]})");
  EXPECT_THROW((void)load_timeseries(wrong_schema), CheckError);
  std::remove(wrong_schema.c_str());

  const std::string overlap = write_temp(
      "dshuf_ta_ts_overlap.json",
      R"({"schema":"dshuf.timeseries.v1","windows":[
{"label":"a","t_start_us":0,"t_end_us":10,"counters":{},"gauges":{},"histograms":{}},
{"label":"b","t_start_us":5,"t_end_us":20,"counters":{},"gauges":{},"histograms":{}}
]})");
  EXPECT_THROW((void)load_timeseries(overlap), CheckError);
  std::remove(overlap.c_str());

  const std::string bad_q = write_temp(
      "dshuf_ta_ts_quantiles.json",
      R"({"schema":"dshuf.timeseries.v1","windows":[
{"label":"a","t_start_us":0,"t_end_us":10,"counters":{},"gauges":{},
 "histograms":{"h":{"count":3,"sum":30,"p50":100,"p99":50,"p999":50}}}
]})");
  EXPECT_THROW((void)load_timeseries(bad_q), CheckError);
  std::remove(bad_q.c_str());

  const std::string zero_count = write_temp(
      "dshuf_ta_ts_zero.json",
      R"({"schema":"dshuf.timeseries.v1","windows":[
{"label":"a","t_start_us":0,"t_end_us":10,"counters":{},"gauges":{},
 "histograms":{"h":{"count":0,"sum":0,"p50":0,"p99":0,"p999":0}}}
]})");
  EXPECT_THROW((void)load_timeseries(zero_count), CheckError);
  std::remove(zero_count.c_str());
}

}  // namespace
}  // namespace dshuf::tracetool
