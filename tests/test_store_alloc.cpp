// Allocation-free steady-state reads for the mmap-backed sample store —
// the acceptance gate for the zero-copy path: after warmup (segments
// mapped, index built, metrics-site statics initialised, scratch sized),
// a read must hand the payload span to the caller without a single heap
// allocation, under BOTH slot-index backends.
//
// Same counting-operator-new pattern as test_exchange_alloc.cpp /
// test_workspace.cpp: this TU replaces global new/delete, warmup runs
// first, then the measured loop's delta must be exactly zero. gtest
// assertions allocate, so the measured region only records counters and
// the checks run afterwards.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <new>
#include <vector>

#include "io/mmap_store.hpp"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dshuf::io {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kSamples = 4'096;
constexpr std::size_t kPayload = 128;
constexpr std::size_t kMeasuredReads = 50'000;

/// Returns the exact number of heap allocations performed by
/// kMeasuredReads steady-state reads (read() spans + load_into reuse).
std::uint64_t measure_steady_reads(SlotIndexKind kind, const fs::path& dir) {
  MmapStoreConfig cfg;
  cfg.dir = dir;
  cfg.index_kind = kind;
  MmapSampleStore store(cfg);

  std::vector<std::byte> payload(kPayload);
  for (data::SampleId id = 0; id < kSamples; ++id) {
    std::memset(payload.data(), static_cast<int>(id & 0xFF), kPayload);
    store.save(id, payload);
  }
  store.advance_epoch();

  // Warmup: touch every id once through both read entry points so
  // metric-site statics, the learned core (delta merge) and the reused
  // sink vector reach their steady state.
  std::uint64_t checksum = 0;
  std::vector<std::byte> sink;
  sink.reserve(kPayload);
  for (data::SampleId id = 0; id < kSamples; ++id) {
    store.read(id, [&checksum](std::span<const std::byte> p) {
      checksum += static_cast<std::uint8_t>(p[0]);
    });
    sink.clear();
    store.load_into(id, sink);
  }

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kMeasuredReads; ++i) {
    const auto id = static_cast<data::SampleId>((i * 2'654'435'761U) %
                                                kSamples);
    store.read(id, [&checksum](std::span<const std::byte> p) {
      checksum += static_cast<std::uint8_t>(p[p.size() - 1]);
    });
    sink.clear();  // capacity retained: append stays allocation-free
    store.load_into(id, sink);
    checksum += sink.size();
  }
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);

  // Defeat any over-eager optimisation of the read loop.
  EXPECT_GT(checksum, 0U);
  return after - before;
}

class StoreAllocTest : public ::testing::TestWithParam<SlotIndexKind> {};

INSTANTIATE_TEST_SUITE_P(Backends, StoreAllocTest,
                         ::testing::Values(SlotIndexKind::kOpenAddressing,
                                           SlotIndexKind::kLearned),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

TEST_P(StoreAllocTest, SteadyStateReadsAreAllocationFree) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("dshuf_store_alloc_" + std::to_string(::getpid()) + "_" +
       to_string(GetParam()));
  fs::remove_all(dir);
  const std::uint64_t allocs = measure_steady_reads(GetParam(), dir);
  EXPECT_EQ(allocs, 0U)
      << allocs << " allocations in " << kMeasuredReads
      << " steady-state reads under the " << to_string(GetParam())
      << " index";
  fs::remove_all(dir);
}

}  // namespace
}  // namespace dshuf::io
