// The exchange/compute overlap stack, end to end:
//
//   1. obs::compute_overlap arithmetic pinned on hand-built golden traces
//      (exact microsecond expectations, not tolerances);
//   2. the overlapped schedule (sim/overlap.hpp) leaves shards
//      bit-identical to the sequential schedule AND to the single-process
//      PartialLocalShuffler reference — with and without a task scheduler;
//   3. chaos: overlapped epochs under drops/delays/stalls keep the
//      conservation and balance invariants;
//   4. a real recorded trace round-trips through the dshuf_trace library
//      (tests link trace_analysis the way test_lint links the lint rules):
//      load_trace's structural validation — the --check gate — accepts an
//      overlapped trace, and the tool's overlap_report reproduces the
//      in-process numbers exactly.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "chaos_harness.hpp"
#include "obs/overlap.hpp"
#include "obs/trace.hpp"
#include "sim/overlap.hpp"
#include "task/scheduler.hpp"
#include "trace_analysis.hpp"

namespace dshuf {
namespace {

using obs::NamedSpan;
using obs::OverlapReport;

OverlapReport report_of(std::vector<NamedSpan> spans) {
  return obs::compute_overlap(
      std::span<const NamedSpan>(spans.data(), spans.size()));
}

// --- golden arithmetic ------------------------------------------------

TEST(OverlapMetric, HalfHiddenExchange) {
  const auto r = report_of({
      {"exchange.epoch", 100, 100},    // [100, 200)
      {"sim.epoch.compute", 150, 100}, // [150, 250)
  });
  EXPECT_EQ(r.exchange_us, 100U);
  EXPECT_EQ(r.compute_us, 100U);
  EXPECT_EQ(r.hidden_us, 50U);
  EXPECT_EQ(r.exchange_spans, 1U);
  EXPECT_EQ(r.compute_spans, 1U);
  EXPECT_DOUBLE_EQ(r.efficiency(), 0.5);
}

TEST(OverlapMetric, OverlappingComputeSpansCoalesceIntoAUnion) {
  // Compute [0,30) and [20,60) must count as one 60us interval, not 70us,
  // and the exchange [10,70) hides exactly its 50us under that union.
  const auto r = report_of({
      {"compute.batch", 0, 30},
      {"compute.batch", 20, 40},
      {"exchange.epoch", 10, 60},
  });
  EXPECT_EQ(r.compute_us, 60U);
  EXPECT_EQ(r.exchange_us, 60U);
  EXPECT_EQ(r.hidden_us, 50U);
}

TEST(OverlapMetric, ExchangeSpansSumAcrossHiddenAndExposed) {
  const auto r = report_of({
      {"sim.epoch.compute", 0, 100},
      {"exchange.task", 0, 10},     // fully hidden
      {"sim.epoch.shuffle", 200, 20}, // fully exposed
  });
  EXPECT_EQ(r.exchange_spans, 2U);
  EXPECT_EQ(r.exchange_us, 30U);
  EXPECT_EQ(r.hidden_us, 10U);
  EXPECT_DOUBLE_EQ(r.efficiency(), 10.0 / 30.0);
}

TEST(OverlapMetric, ExchangeAcrossGappedComputeIntervals) {
  // Exchange [0,50) over compute [10,20) + [30,40): hidden = 20.
  const auto r = report_of({
      {"exchange.epoch", 0, 50},
      {"compute.batch", 10, 10},
      {"compute.batch", 30, 10},
  });
  EXPECT_EQ(r.hidden_us, 20U);
  EXPECT_DOUBLE_EQ(r.efficiency(), 0.4);
}

TEST(OverlapMetric, NoExchangeMeansNothingToHide) {
  const auto r = report_of({{"sim.epoch.compute", 0, 100}});
  EXPECT_EQ(r.exchange_spans, 0U);
  EXPECT_EQ(r.exchange_us, 0U);
  EXPECT_DOUBLE_EQ(r.efficiency(), 1.0);
}

TEST(OverlapMetric, NoComputeMeansNothingHidden) {
  const auto r = report_of({{"exchange.epoch", 0, 100}});
  EXPECT_EQ(r.hidden_us, 0U);
  EXPECT_DOUBLE_EQ(r.efficiency(), 0.0);
}

TEST(OverlapMetric, UnrelatedSpansDoNotPerturbTheNumbers) {
  const auto quiet = report_of({
      {"exchange.epoch", 100, 100},
      {"sim.epoch.compute", 150, 100},
  });
  const auto noisy = report_of({
      {"exchange.epoch", 100, 100},
      {"sim.epoch.compute", 150, 100},
      {"io.read", 0, 10'000},
      {"sim.epoch", 90, 500},
      {"exchange_frames", 120, 40},  // not "exchange." taxonomy
  });
  EXPECT_EQ(noisy.exchange_us, quiet.exchange_us);
  EXPECT_EQ(noisy.hidden_us, quiet.hidden_us);
  EXPECT_EQ(noisy.compute_us, quiet.compute_us);
}

TEST(OverlapMetric, SpanTaxonomy) {
  EXPECT_TRUE(obs::is_exchange_span("exchange.epoch"));
  EXPECT_TRUE(obs::is_exchange_span("exchange.task"));
  EXPECT_TRUE(obs::is_exchange_span("sim.epoch.shuffle"));
  EXPECT_TRUE(obs::is_compute_span("sim.epoch.compute"));
  EXPECT_TRUE(obs::is_compute_span("compute.batch"));
  EXPECT_FALSE(obs::is_exchange_span("sim.epoch.compute"));
  EXPECT_FALSE(obs::is_compute_span("exchange.epoch"));
  EXPECT_FALSE(obs::is_exchange_span("io.read"));
  EXPECT_FALSE(obs::is_compute_span("io.read"));
}

// --- schedule equivalence ---------------------------------------------

sim::OverlapConfig tiny_overlap_config() {
  sim::OverlapConfig cfg;
  cfg.n = 64;
  cfg.ranks = 4;
  cfg.q = 0.3;
  cfg.epochs = 3;
  cfg.seed = 5;
  cfg.compute = [](int, std::size_t) {};  // shards don't depend on compute
  return cfg;
}

chaos::ChaosConfig matching_chaos_config(const sim::OverlapConfig& cfg) {
  chaos::ChaosConfig c;
  c.n = cfg.n;
  c.m = cfg.ranks;
  c.q = cfg.q;
  c.epochs = cfg.epochs;
  c.seed = cfg.seed;
  return c;
}

TEST(OverlapSchedule, OverlappedMatchesSequentialAndReference) {
  auto cfg = tiny_overlap_config();
  const auto reference = chaos::sequential_reference(matching_chaos_config(cfg));

  cfg.overlapped = false;
  const auto seq = sim::run_overlapped_epochs(cfg);
  cfg.overlapped = true;
  const auto ovl = sim::run_overlapped_epochs(cfg);

  EXPECT_EQ(seq.shards, reference)
      << "sequential arm diverged from PartialLocalShuffler";
  EXPECT_EQ(ovl.shards, reference)
      << "overlapped arm diverged from PartialLocalShuffler";
  chaos::expect_conservation(ovl.shards, cfg.n);
}

TEST(OverlapSchedule, OverlappedUnderTaskSchedulerStillMatches) {
  auto cfg = tiny_overlap_config();
  cfg.overlapped = true;
  const task::ScopedTaskWorkers scoped(4);
  for (const std::uint64_t seed : {5ULL, 6ULL, 7ULL}) {
    cfg.seed = seed;
    const auto ovl = sim::run_overlapped_epochs(cfg);
    EXPECT_EQ(ovl.shards,
              chaos::sequential_reference(matching_chaos_config(cfg)))
        << "seed " << seed;
  }
}

// --- chaos under overlap ----------------------------------------------

void expect_total_drift_bounded(const sim::OverlapResult& res,
                                std::size_t n, int ranks) {
  const auto initial = chaos::make_shards(n, ranks);
  std::size_t quota_sum = 0;
  for (const auto q : res.quota_per_epoch) quota_sum += q;
  ASSERT_EQ(res.shards.size(), initial.size());
  for (std::size_t r = 0; r < res.shards.size(); ++r) {
    const std::size_t now = res.shards[r].size();
    const std::size_t was = initial[r].size();
    const std::size_t drift = now > was ? now - was : was - now;
    EXPECT_LE(drift, quota_sum)
        << "rank " << r << " drifted past the summed per-epoch quotas";
  }
}

TEST(OverlapChaos, FaultedOverlappedEpochsConserveSamples) {
  auto cfg = tiny_overlap_config();
  cfg.overlapped = true;
  cfg.robust = chaos::default_robustness();
  comm::FaultSpec spec;
  spec.drop_prob = 0.3;
  spec.delay_prob = 0.3;
  spec.min_delay_us = 100;
  spec.max_delay_us = 5'000;
  cfg.faults = spec;
  for (const std::uint64_t fault_seed : {1ULL, 2ULL, 3ULL}) {
    cfg.fault_seed = fault_seed;
    const auto res = sim::run_overlapped_epochs(cfg);
    chaos::expect_conservation(res.shards, cfg.n);
    expect_total_drift_bounded(res, cfg.n, cfg.ranks);
  }
}

TEST(OverlapChaos, FaultedOverlappedEpochsAreSeedDeterministic) {
  auto cfg = tiny_overlap_config();
  cfg.overlapped = true;
  cfg.robust = chaos::default_robustness();
  comm::FaultSpec spec;
  spec.drop_prob = 0.4;
  cfg.faults = spec;
  cfg.fault_seed = 9;
  const auto a = sim::run_overlapped_epochs(cfg);
  const auto b = sim::run_overlapped_epochs(cfg);
  EXPECT_EQ(a.shards, b.shards);
}

TEST(OverlapChaos, NoDropFaultsStillMatchReference) {
  // Delays and stalls reorder the wire but never change the outcome.
  auto cfg = tiny_overlap_config();
  cfg.overlapped = true;
  cfg.robust = chaos::default_robustness();
  comm::FaultSpec spec;
  spec.dup_prob = 0.2;
  spec.delay_prob = 0.5;
  spec.min_delay_us = 100;
  spec.max_delay_us = 8'000;
  cfg.faults = spec;
  const auto res = sim::run_overlapped_epochs(cfg);
  EXPECT_EQ(res.shards, chaos::sequential_reference(matching_chaos_config(cfg)));
}

// --- trace round-trip through the dshuf_trace library -----------------

TEST(OverlapTrace, RecordedTraceRoundTripsThroughTheTool) {
  auto& tracer = obs::Tracer::instance();
  tracer.set_enabled(true);
  tracer.clear();

  auto cfg = tiny_overlap_config();
  cfg.overlapped = true;
  cfg.compute = {};  // use the gemm burn so compute spans have real width
  cfg.compute_gemm_n = 128;
  cfg.compute_reps = 2;
  const auto res = sim::run_overlapped_epochs(cfg);
  ASSERT_FALSE(res.shards.empty());

  const auto snapshot = tracer.snapshot();
  const auto in_process = obs::compute_overlap(snapshot);
  EXPECT_GT(in_process.exchange_spans, 0U);
  EXPECT_GT(in_process.compute_spans, 0U);
  EXPECT_GT(in_process.compute_us, 0U);

  const std::string path = ::testing::TempDir() + "dshuf_overlap_trace.json";
  ASSERT_TRUE(tracer.write_chrome_trace(path));
  tracer.clear();
  tracer.set_enabled(false);

  // load_trace performs the structural validation behind `dshuf_trace
  // --check`; an overlapped trace must pass it.
  const auto events = tracetool::load_trace(path);
  EXPECT_GE(events.size(), snapshot.size());

  // And the tool-side overlap report reproduces the in-process numbers.
  const auto from_file = tracetool::overlap_report(events);
  EXPECT_EQ(from_file.exchange_spans, in_process.exchange_spans);
  EXPECT_EQ(from_file.compute_spans, in_process.compute_spans);
  EXPECT_EQ(from_file.exchange_us, in_process.exchange_us);
  EXPECT_EQ(from_file.hidden_us, in_process.hidden_us);
  EXPECT_EQ(from_file.compute_us, in_process.compute_us);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dshuf
