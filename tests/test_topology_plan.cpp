// Property tests for the topology-aware exchange plan at paper scale.
//
// When a Topology is installed, the exchange swaps its flat Algorithm-1
// permutations for ExchangePlan::rebuild_grouped — which must (a) keep the
// every-round-is-a-permutation balance guarantee the whole scheme rests
// on, (b) route each round's inter-group traffic as whole-group blocks
// (one destination group per source group — that's what makes a leader
// aggregate a single trunk instead of S fan-out flows), and (c) stay
// draw-for-draw identical to the sequential HierarchicalExchangePlan so
// the message-passing exchange and the hierarchical driver never diverge.
// The sizes here are virtual-backend sizes (M up to 4096), far past what
// the threaded suite exercises.
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "shuffle/exchange_plan.hpp"
#include "shuffle/hierarchical.hpp"
#include "shuffle/topology.hpp"
#include "util/error.hpp"

namespace dshuf::shuffle {
namespace {

void expect_round_is_permutation(const ExchangePlan& plan, std::size_t round,
                                 int m) {
  std::vector<char> hit(static_cast<std::size_t>(m), 0);
  for (int r = 0; r < m; ++r) {
    const int d = plan.dest(round, r);
    ASSERT_GE(d, 0);
    ASSERT_LT(d, m);
    ASSERT_EQ(hit[static_cast<std::size_t>(d)], 0)
        << "round " << round << " maps two ranks onto " << d;
    hit[static_cast<std::size_t>(d)] = 1;
  }
}

TEST(TopologyPlan, EveryRoundIsAPermutationAtLargeG) {
  // 4096 ranks in 64 groups of 64 — the fig06 ceiling.
  const int groups = 64;
  const int group_size = 64;
  const int m = groups * group_size;
  ExchangePlan plan;
  plan.rebuild_grouped(2024, 5, groups, group_size, 8, 0.5);
  ASSERT_EQ(plan.workers(), m);
  ASSERT_EQ(plan.rounds(), 8U);
  for (std::size_t i = 0; i < plan.rounds(); ++i) {
    expect_round_is_permutation(plan, i, m);
  }
}

TEST(TopologyPlan, RoundsMoveGroupsAsBlocks) {
  // In any round, all ranks of one source group land in ONE destination
  // group, and the group-level map is itself a permutation — so each
  // group's uplink carries at most one trunk per round and the total
  // inter-group degree over an epoch is bounded by min(rounds, G), never
  // S * (G - 1).
  const int groups = 32;
  const int group_size = 32;
  const std::size_t quota = 12;
  ExchangePlan plan;
  plan.rebuild_grouped(91, 2, groups, group_size, quota, 0.25);

  std::vector<std::set<int>> peers_of_group(static_cast<std::size_t>(groups));
  for (std::size_t i = 0; i < quota; ++i) {
    std::vector<int> gdest(static_cast<std::size_t>(groups), -1);
    std::set<int> used;
    for (int g = 0; g < groups; ++g) {
      for (int s = 0; s < group_size; ++s) {
        const int rank = g * group_size + s;
        const int dg = plan.dest(i, rank) / group_size;
        if (gdest[static_cast<std::size_t>(g)] == -1) {
          gdest[static_cast<std::size_t>(g)] = dg;
          used.insert(dg);
        } else {
          ASSERT_EQ(gdest[static_cast<std::size_t>(g)], dg)
              << "round " << i << ": group " << g << " split across "
              << "destination groups";
        }
      }
      peers_of_group[static_cast<std::size_t>(g)].insert(
          gdest[static_cast<std::size_t>(g)]);
    }
    EXPECT_EQ(used.size(), static_cast<std::size_t>(groups))
        << "round " << i << ": group-level map is not a permutation";
  }
  for (int g = 0; g < groups; ++g) {
    EXPECT_LE(peers_of_group[static_cast<std::size_t>(g)].size(),
              std::min(quota, static_cast<std::size_t>(groups)));
  }
}

TEST(TopologyPlan, IntraFractionRoundsStayHome) {
  const int groups = 16;
  const int group_size = 8;
  const std::size_t quota = 8;
  ExchangePlan plan;
  plan.rebuild_grouped(7, 0, groups, group_size, quota, 0.5);
  const std::size_t intra_rounds =
      static_cast<std::size_t>(0.5 * static_cast<double>(quota));
  for (std::size_t i = 0; i < intra_rounds; ++i) {
    for (int r = 0; r < groups * group_size; ++r) {
      EXPECT_EQ(plan.dest(i, r) / group_size, r / group_size)
          << "intra round " << i << " leaked rank " << r << " across groups";
    }
  }
}

TEST(TopologyPlan, MatchesHierarchicalPlanDrawForDraw) {
  // rebuild_grouped promises bit-identity with the sequential
  // hierarchical driver's plan — same forked RNG streams, same tables.
  for (std::size_t epoch : {0UL, 1UL, 7UL}) {
    const int groups = 8;
    const int group_size = 16;
    const std::size_t quota = 10;
    ExchangePlan grouped;
    grouped.rebuild_grouped(55, epoch, groups, group_size, quota, 0.4);
    const HierarchicalExchangePlan ref(55, epoch, groups, group_size, quota,
                                       0.4);
    ASSERT_EQ(grouped.rounds(), ref.rounds());
    for (std::size_t i = 0; i < ref.rounds(); ++i) {
      for (int r = 0; r < ref.workers(); ++r) {
        ASSERT_EQ(grouped.dest(i, r), ref.dest(i, r))
            << "epoch " << epoch << " round " << i << " rank " << r;
        ASSERT_EQ(grouped.source(i, r), ref.source(i, r))
            << "epoch " << epoch << " round " << i << " rank " << r;
      }
    }
  }
}

TEST(TopologyPlan, SourceInvertsDest) {
  ExchangePlan plan;
  plan.rebuild_grouped(3, 1, 32, 16, 6, 0.5);
  for (std::size_t i = 0; i < plan.rounds(); ++i) {
    for (int r = 0; r < plan.workers(); ++r) {
      EXPECT_EQ(plan.source(i, plan.dest(i, r)), r);
    }
  }
}

TEST(TopologyResolution, ValidatesShape) {
  Topology topo;
  topo.groups = 4;
  topo.group_size = 0;  // derive
  const Topology r = topo.resolved_for(64);
  EXPECT_EQ(r.group_size, 16);
  EXPECT_EQ(r.group_of(17), 1);
  EXPECT_EQ(r.leader_of(2), 32);
  EXPECT_THROW(topo.resolved_for(62), CheckError);  // 62 % 4 != 0
  Topology bad = topo;
  bad.groups = 0;
  EXPECT_THROW(bad.resolved_for(64), CheckError);
}

}  // namespace
}  // namespace dshuf::shuffle
