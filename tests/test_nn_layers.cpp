#include "nn/layers.hpp"

#include <gtest/gtest.h>

#include "gradcheck.hpp"

namespace dshuf::nn {
namespace {

TEST(Linear, ForwardComputesAffineMap) {
  Rng rng(1);
  Linear l(2, 3, rng);
  // Overwrite weights to a known value: W[in, out], b.
  auto params = l.params();
  params[0]->value = Tensor({2, 3}, {1, 2, 3, 4, 5, 6});
  params[1]->value = Tensor({3}, {0.5F, -0.5F, 1.0F});
  const Tensor x({1, 2}, {1, 2});
  const Tensor y = l.forward(x, true);
  // y = [1*1+2*4, 1*2+2*5, 1*3+2*6] + b = [9.5, 11.5, 16]
  EXPECT_FLOAT_EQ(y.at(0, 0), 9.5F);
  EXPECT_FLOAT_EQ(y.at(0, 1), 11.5F);
  EXPECT_FLOAT_EQ(y.at(0, 2), 16.0F);
}

TEST(Linear, GradientsMatchFiniteDifferences) {
  Rng rng(2);
  Linear l(4, 3, rng);
  Tensor x = Tensor::randn({5, 4}, rng);
  testing::check_gradients(l, x, 5 * 3, rng);
}

TEST(Linear, GradientsAccumulateAcrossBackwards) {
  Rng rng(3);
  Linear l(2, 2, rng);
  const Tensor x = Tensor::randn({3, 2}, rng);
  Tensor ones({3, 2});
  ones.fill(1.0F);
  l.forward(x, true);
  l.backward(ones);
  const Tensor g1 = l.params()[0]->grad;
  l.forward(x, true);
  l.backward(ones);
  const Tensor& g2 = l.params()[0]->grad;
  for (std::size_t i = 0; i < g1.size(); ++i) {
    EXPECT_FLOAT_EQ(g2.at(i), 2.0F * g1.at(i));
  }
}

TEST(Linear, HeInitialisationScale) {
  Rng rng(4);
  Linear l(256, 64, rng);
  const Tensor& w = l.params()[0]->value;
  double s2 = 0;
  for (std::size_t i = 0; i < w.size(); ++i) s2 += w.at(i) * w.at(i);
  // Var ~= 2 / 256.
  EXPECT_NEAR(s2 / static_cast<double>(w.size()), 2.0 / 256.0,
              0.2 * 2.0 / 256.0);
  // Bias starts at zero.
  EXPECT_FLOAT_EQ(l.params()[1]->value.sum(), 0.0F);
}

TEST(Linear, RejectsWrongInputWidth) {
  Rng rng(5);
  Linear l(4, 2, rng);
  Tensor x({1, 3});
  EXPECT_THROW(l.forward(x, true), CheckError);
}

TEST(ReLU, ForwardClampsNegatives) {
  ReLU r;
  const Tensor x({1, 4}, {-1.0F, 0.0F, 2.0F, -3.0F});
  const Tensor y = r.forward(x, true);
  EXPECT_FLOAT_EQ(y.at(0), 0.0F);
  EXPECT_FLOAT_EQ(y.at(1), 0.0F);
  EXPECT_FLOAT_EQ(y.at(2), 2.0F);
  EXPECT_FLOAT_EQ(y.at(3), 0.0F);
}

TEST(ReLU, BackwardMasksGradient) {
  ReLU r;
  const Tensor x({1, 3}, {-1.0F, 1.0F, 2.0F});
  r.forward(x, true);
  const Tensor g({1, 3}, {5.0F, 5.0F, 5.0F});
  const Tensor gi = r.backward(g);
  EXPECT_FLOAT_EQ(gi.at(0), 0.0F);
  EXPECT_FLOAT_EQ(gi.at(1), 5.0F);
  EXPECT_FLOAT_EQ(gi.at(2), 5.0F);
}

TEST(Tanh, GradientsMatchFiniteDifferences) {
  Rng rng(6);
  Tanh t;
  Tensor x = Tensor::randn({3, 4}, rng, 0.5F);
  testing::check_gradients(t, x, 12, rng);
}

TEST(Dropout, EvalIsIdentity) {
  Rng rng(7);
  Dropout d(0.5, rng);
  Tensor x = Tensor::randn({2, 8}, rng);
  const Tensor y = d.forward(x, /*training=*/false);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_FLOAT_EQ(y.at(i), x.at(i));
  }
}

TEST(Dropout, TrainingPreservesExpectedValue) {
  Rng rng(8);
  Dropout d(0.3, rng);
  Tensor x = Tensor::full({1, 20000}, 1.0F);
  const Tensor y = d.forward(x, true);
  EXPECT_NEAR(y.sum() / 20000.0F, 1.0F, 0.03F);
}

TEST(Dropout, BackwardUsesSameMask) {
  Rng rng(9);
  Dropout d(0.5, rng);
  Tensor x = Tensor::full({1, 100}, 1.0F);
  const Tensor y = d.forward(x, true);
  Tensor ones({1, 100});
  ones.fill(1.0F);
  const Tensor g = d.backward(ones);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_FLOAT_EQ(g.at(i), y.at(i));  // both are 0 or 1/(1-p)
  }
}

TEST(Dropout, RejectsInvalidProbability) {
  Rng rng(10);
  EXPECT_THROW(Dropout(1.0, rng), CheckError);
  EXPECT_THROW(Dropout(-0.1, rng), CheckError);
}

}  // namespace
}  // namespace dshuf::nn
