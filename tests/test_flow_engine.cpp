// Differential and property tests for the incremental max-min flow
// engine. simulate_flows now runs on FlowEngine; simulate_flows_reference
// is the original recompute-everything loop, kept as the semantic oracle.
// Anyone touching the engine's tolerances must keep the two in agreement
// here before trusting any BENCH_scale number.
#include "netsim/flow_engine.hpp"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "netsim/flowsim.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dshuf::netsim {
namespace {

void expect_same_outcome(const SimOutcome& got, const SimOutcome& want) {
  ASSERT_EQ(got.flow_finish_s.size(), want.flow_finish_s.size());
  for (std::size_t i = 0; i < got.flow_finish_s.size(); ++i) {
    const double scale = std::max(1.0, std::abs(want.flow_finish_s[i]));
    EXPECT_NEAR(got.flow_finish_s[i], want.flow_finish_s[i], 1e-6 * scale)
        << "flow " << i;
  }
  ASSERT_EQ(got.rank_finish_s.size(), want.rank_finish_s.size());
  for (std::size_t r = 0; r < got.rank_finish_s.size(); ++r) {
    const double scale = std::max(1.0, std::abs(want.rank_finish_s[r]));
    EXPECT_NEAR(got.rank_finish_s[r], want.rank_finish_s[r], 1e-6 * scale)
        << "rank " << r;
  }
  EXPECT_NEAR(got.makespan_s, want.makespan_s,
              1e-6 * std::max(1.0, want.makespan_s));
}

std::vector<Flow> random_flows(std::uint64_t seed, int ranks, int count,
                               bool staggered) {
  Rng rng(seed);
  std::vector<Flow> flows;
  flows.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Flow f;
    f.src = static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(ranks)));
    f.dst = static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(ranks)));
    // Mix of sizes spanning three orders of magnitude, plus the empty
    // control-message case.
    const auto kind = rng.uniform_u64(8);
    f.bytes = kind == 0 ? 0.0 : std::floor(rng.uniform() * 1e6) + 1;
    f.start_s = staggered ? rng.uniform() * 0.05 : 0.0;
    f.uses_fabric = rng.uniform_u64(4) != 0;
    flows.push_back(f);
  }
  return flows;
}

TEST(FlowEngineDifferential, MatchesReferenceAllAtOnce) {
  LinkCaps caps;
  caps.nic_out_bps = 1e9;
  caps.nic_in_bps = 1e9;
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    const auto flows = random_flows(seed, 12, 160, /*staggered=*/false);
    expect_same_outcome(simulate_flows(flows, caps, 12),
                        simulate_flows_reference(flows, caps, 12));
  }
}

TEST(FlowEngineDifferential, MatchesReferenceStaggeredArrivals) {
  LinkCaps caps;
  caps.nic_out_bps = 4e8;
  caps.nic_in_bps = 2e8;
  caps.per_message_latency_s = 1e-4;
  for (std::uint64_t seed : {11ULL, 12ULL, 13ULL, 14ULL}) {
    const auto flows = random_flows(seed, 10, 120, /*staggered=*/true);
    expect_same_outcome(simulate_flows(flows, caps, 10),
                        simulate_flows_reference(flows, caps, 10));
  }
}

TEST(FlowEngineDifferential, MatchesReferenceUnderFabricContention) {
  LinkCaps caps;
  caps.nic_out_bps = 1e9;
  caps.nic_in_bps = 1e9;
  // Fabric far below aggregate NIC capacity — every fabric flow contends.
  caps.fabric_bps = 2e8;
  for (std::uint64_t seed : {21ULL, 22ULL, 23ULL}) {
    const auto flows = random_flows(seed, 8, 100, /*staggered=*/true);
    expect_same_outcome(simulate_flows(flows, caps, 8),
                        simulate_flows_reference(flows, caps, 8));
  }
}

// Pins the documented LinkCaps contract: fabric_bps = 0 means NO fabric
// link at all (unconstrained), not a zero-capacity fabric. A huge finite
// fabric must agree with the absent one.
TEST(FlowEngineCaps, FabricZeroMeansUnconstrained) {
  const auto flows = random_flows(31, 8, 80, /*staggered=*/false);
  LinkCaps none;
  none.fabric_bps = 0;
  LinkCaps huge = none;
  huge.fabric_bps = 1e18;
  const auto a = simulate_flows(flows, none, 8);
  const auto b = simulate_flows(flows, huge, 8);
  expect_same_outcome(a, b);

  LinkCaps tight = none;
  tight.fabric_bps = 1e7;  // well under one NIC — must slow things down
  const auto c = simulate_flows(flows, tight, 8);
  EXPECT_GT(c.makespan_s, a.makespan_s * 2);
}

// Pins the self-flow contract: src == dst never touches a link and
// completes after exactly the per-message latency, regardless of how
// overloaded the rank's NICs are.
TEST(FlowEngineCaps, SelfFlowsAreLatencyOnly) {
  LinkCaps caps;
  caps.nic_out_bps = 1e3;  // absurdly slow NICs
  caps.nic_in_bps = 1e3;
  caps.per_message_latency_s = 2e-3;
  std::vector<Flow> flows;
  flows.push_back(Flow{0, 0, 1e12, 0.5, true});   // giant self flow
  flows.push_back(Flow{1, 1, 0.0, 0.25, false});  // empty self flow
  const auto out = simulate_flows(flows, caps, 2);
  EXPECT_DOUBLE_EQ(out.flow_finish_s[0], 0.5 + 2e-3);
  EXPECT_DOUBLE_EQ(out.flow_finish_s[1], 0.25 + 2e-3);
  const auto ref = simulate_flows_reference(flows, caps, 2);
  expect_same_outcome(out, ref);
}

TEST(FlowEngine, ScopedRefillsTouchOnlyTheDirtyComponent) {
  // Two link-disjoint flows: admitting both costs one settle each, and
  // retiring the first must not re-fill the other's component.
  FlowEngine eng({1.0, 1.0, 1.0, 1.0});
  eng.add_flow(1.0, {0, 1});
  eng.add_flow(2.0, {2, 3});
  std::vector<std::pair<FlowEngine::FlowId, double>> done;
  eng.advance_to(10.0, done);
  ASSERT_EQ(done.size(), 2U);
  EXPECT_DOUBLE_EQ(done[0].second, 1.0);
  EXPECT_DOUBLE_EQ(done[1].second, 2.0);
  // One refill covering both admissions (2 flows settled); the first
  // completion dirties links with no live flows left, the second likewise
  // — no survivor is ever re-rated.
  EXPECT_EQ(eng.refill_work(), 2U);
  EXPECT_EQ(eng.active_flows(), 0U);
}

TEST(FlowEngine, EqualFlowsRetireInAdmissionOrder) {
  FlowEngine eng({10.0});
  const auto a = eng.add_flow(5.0, {0});
  const auto b = eng.add_flow(5.0, {0});
  const auto c = eng.add_flow(5.0, {0});
  std::vector<std::pair<FlowEngine::FlowId, double>> done;
  eng.advance_to(100.0, done);
  ASSERT_EQ(done.size(), 3U);
  EXPECT_EQ(done[0].first, a);
  EXPECT_EQ(done[1].first, b);
  EXPECT_EQ(done[2].first, c);
  // All three share one link at 10 B/s: 15 bytes total => 1.5 s.
  EXPECT_DOUBLE_EQ(done[2].second, 1.5);
}

TEST(FlowEngine, SharedLinkRatesRebalanceOnCompletion) {
  // One short and one long flow share a link; once the short one leaves,
  // the survivor takes the whole capacity.
  FlowEngine eng({10.0});
  eng.add_flow(5.0, {0});   // done at t=1 (5 B at 5 B/s)
  eng.add_flow(15.0, {0});  // 5 B by t=1, then 10 B at 10 B/s => t=2
  std::vector<std::pair<FlowEngine::FlowId, double>> done;
  eng.advance_to(100.0, done);
  ASSERT_EQ(done.size(), 2U);
  EXPECT_DOUBLE_EQ(done[0].second, 1.0);
  EXPECT_DOUBLE_EQ(done[1].second, 2.0);
}

TEST(FlowEngine, RefusesRewindsAndBadFlows) {
  FlowEngine eng({1.0});
  std::vector<std::pair<FlowEngine::FlowId, double>> done;
  eng.advance_to(1.0, done);
  EXPECT_THROW(eng.advance_to(0.5, done), CheckError);
  EXPECT_THROW(eng.add_flow(1.0, {}), CheckError);
  EXPECT_THROW(eng.add_flow(-1.0, {0}), CheckError);
  EXPECT_THROW(eng.add_flow(1.0, {7}), CheckError);
}

}  // namespace
}  // namespace dshuf::netsim
