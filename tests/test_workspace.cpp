// Workspace arena semantics plus the allocation-free steady-state
// guarantee for the training hot path.
//
// This TU replaces the global operator new/delete with counting wrappers
// so the steady-state tests can assert an exact zero: after a few warmup
// iterations (which size every workspace slot, pack buffer, and loss
// member to its high-water mark), a full train iteration — gather,
// zero_grad, forward, loss, backward, optimizer step — performs no heap
// allocation at all, for both the MLP (with BatchNorm) and CNN proxies.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "data/synthetic.hpp"
#include "nn/builder.hpp"
#include "nn/conv.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "tensor/workspace.hpp"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace dshuf;

template <typename Fn>
std::uint64_t count_allocs(Fn&& fn) {
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  fn();
  return g_allocs.load(std::memory_order_relaxed) - before;
}

TEST(Workspace, SameKeyReturnsSameTensor) {
  Workspace ws;
  int owner_a = 0;
  int owner_b = 0;
  Tensor& s0 = ws.slot(&owner_a, 0);
  Tensor& s0_again = ws.slot(&owner_a, 0);
  EXPECT_EQ(&s0, &s0_again);
  Tensor& s1 = ws.slot(&owner_a, 1);
  EXPECT_NE(&s0, &s1);
  Tensor& other = ws.slot(&owner_b, 0);
  EXPECT_NE(&s0, &other);
  EXPECT_EQ(ws.slot_count(), 3U);
}

TEST(Workspace, SlotCapacityPersistsAcrossShrink) {
  Workspace ws;
  int owner = 0;
  Tensor& t = ws.slot2(&owner, 0, 64, 64);
  ASSERT_EQ(t.rows(), 64U);
  const float* big = t.data();
  Tensor& small = ws.slot2(&owner, 0, 8, 8);
  EXPECT_EQ(&t, &small);
  EXPECT_EQ(small.rows(), 8U);
  // Shrinking and re-growing within capacity neither moves the buffer
  // nor allocates.
  const std::uint64_t n = count_allocs([&] {
    Tensor& regrown = ws.slot2(&owner, 0, 64, 64);
    EXPECT_EQ(regrown.data(), big);
  });
  EXPECT_EQ(n, 0U);
}

TEST(Workspace, BytesReservedTracksCapacity) {
  Workspace ws;
  int owner = 0;
  EXPECT_EQ(ws.bytes_reserved(), 0U);
  ws.slot1(&owner, 0, 100);
  EXPECT_GE(ws.bytes_reserved(), 100 * sizeof(float));
  const std::size_t before = ws.bytes_reserved();
  ws.slot1(&owner, 0, 10);  // shrink: capacity retained
  EXPECT_EQ(ws.bytes_reserved(), before);
  ws.clear();
  EXPECT_EQ(ws.slot_count(), 0U);
  EXPECT_EQ(ws.bytes_reserved(), 0U);
}

// One full training iteration against `model`; everything it touches is
// preallocated by the caller or capacity-reusing.
void train_iteration(nn::Model& model, nn::Sgd& opt,
                     nn::SoftmaxCrossEntropy& ce,
                     const data::InMemoryDataset& ds,
                     const std::vector<data::SampleId>& batch, Tensor& xbuf,
                     std::vector<std::uint32_t>& ybuf) {
  ds.gather_into(batch, xbuf);
  ds.gather_labels_into(batch, ybuf);
  model.zero_grad();
  const Tensor& logits = model.forward(xbuf, true);
  ce.forward(logits, ybuf);
  model.backward(ce.grad());
  opt.step();
}

void expect_steady_state_alloc_free(nn::Model model,
                                    const data::InMemoryDataset& ds) {
  nn::Sgd opt(model, {.lr = 0.05F, .momentum = 0.9F});
  nn::SoftmaxCrossEntropy ce;
  std::vector<data::SampleId> batch(32);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i] = static_cast<data::SampleId>((i * 13) % ds.size());
  }
  Tensor xbuf;
  std::vector<std::uint32_t> ybuf;
  for (int warmup = 0; warmup < 3; ++warmup) {
    train_iteration(model, opt, ce, ds, batch, xbuf, ybuf);
  }
  const std::uint64_t n = count_allocs([&] {
    for (int it = 0; it < 10; ++it) {
      train_iteration(model, opt, ce, ds, batch, xbuf, ybuf);
    }
  });
  EXPECT_EQ(n, 0U) << n << " heap allocations in 10 steady-state iterations";
}

data::InMemoryDataset make_ds(std::size_t classes) {
  data::ClassClusterSpec spec{.num_classes = classes,
                              .samples_per_class = 16,
                              .feature_dim = 32,
                              .seed = 9};
  return data::make_class_clusters(spec);
}

TEST(SteadyState, MlpWithBatchNormIsAllocationFree) {
  nn::MlpSpec spec{.input_dim = 32,
                   .hidden = {64, 48},
                   .num_classes = 16,
                   .norm = nn::NormKind::kBatchNorm};
  Rng rng(9);
  expect_steady_state_alloc_free(nn::make_mlp(spec, rng), make_ds(16));
}

TEST(SteadyState, CnnIsAllocationFree) {
  nn::CnnSpec spec;  // Conv1d + BatchNorm + MaxPool blocks, length 32
  Rng rng(9);
  expect_steady_state_alloc_free(nn::make_cnn(spec, rng), make_ds(10));
}

TEST(SteadyState, VaryingBatchWithinHighWaterMarkIsAllocationFree) {
  // Partial-local schedules can deliver a short final batch; shrinking
  // below the high-water mark must not allocate either.
  nn::MlpSpec spec{.input_dim = 32, .hidden = {64}, .num_classes = 16};
  Rng rng(9);
  nn::Model model = nn::make_mlp(spec, rng);
  const auto ds = make_ds(16);
  nn::Sgd opt(model, {.lr = 0.05F});
  nn::SoftmaxCrossEntropy ce;
  std::vector<data::SampleId> big(32);
  std::vector<data::SampleId> small(11);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<data::SampleId>(i);
  }
  for (std::size_t i = 0; i < small.size(); ++i) {
    small[i] = static_cast<data::SampleId>(i);
  }
  Tensor xbuf;
  std::vector<std::uint32_t> ybuf;
  for (int warmup = 0; warmup < 2; ++warmup) {
    train_iteration(model, opt, ce, ds, big, xbuf, ybuf);
    train_iteration(model, opt, ce, ds, small, xbuf, ybuf);
  }
  const std::uint64_t n = count_allocs([&] {
    train_iteration(model, opt, ce, ds, small, xbuf, ybuf);
    train_iteration(model, opt, ce, ds, big, xbuf, ybuf);
  });
  EXPECT_EQ(n, 0U);
}

}  // namespace
