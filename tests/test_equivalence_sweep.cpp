// Seed-sweep equivalence property: the three executions of partial local
// shuffling — the sequential PartialLocalShuffler, the iteration-chunked
// Scheduler, and the message-passing run_pls_exchange_epoch over a real
// comm::World — must produce bit-identical shard contents for every point
// of a (workers, Q, batch, seed) grid. This is the repo's strongest
// determinism claim: no random draw depends on execution order.
#include <gtest/gtest.h>

#include <vector>

#include "comm/comm.hpp"
#include "shuffle/exchange_plan.hpp"
#include "shuffle/mpi_exchange.hpp"
#include "shuffle/scheduler.hpp"
#include "shuffle/shuffler.hpp"

namespace dshuf::shuffle {
namespace {

std::vector<std::vector<SampleId>> deal_shards(std::size_t n, int workers) {
  std::vector<std::vector<SampleId>> shards(
      static_cast<std::size_t>(workers));
  for (std::size_t i = 0; i < n; ++i) {
    shards[i % static_cast<std::size_t>(workers)].push_back(
        static_cast<SampleId>(i));
  }
  return shards;
}

std::vector<std::vector<SampleId>> store_ids(
    const std::vector<ShardStore>& stores) {
  std::vector<std::vector<SampleId>> out;
  out.reserve(stores.size());
  for (const auto& s : stores) out.push_back(s.ids());
  return out;
}

/// Message-passing execution: M rank-threads running the exchange plus the
/// shared post-exchange local shuffle, for `epochs` epochs.
std::vector<std::vector<SampleId>> run_world_epochs(
    std::vector<std::vector<SampleId>> shards, double q, std::uint64_t seed,
    std::size_t epochs) {
  const int m = static_cast<int>(shards.size());
  std::size_t min_shard = shards[0].size();
  for (const auto& s : shards) min_shard = std::min(min_shard, s.size());
  const std::size_t quota = exchange_quota(min_shard, q);
  std::vector<ShardStore> stores;
  stores.reserve(shards.size());
  for (auto& s : shards) {
    const std::size_t cap = s.size() + quota;
    stores.emplace_back(std::move(s), cap);
  }
  comm::World world(m);
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    world.run([&](comm::Communicator& c) {
      auto& store = stores[static_cast<std::size_t>(c.rank())];
      run_pls_exchange_epoch(c, store, seed, epoch, q, min_shard);
      post_exchange_local_shuffle(seed, epoch, c.rank(),
                                  store.mutable_ids());
    });
  }
  return store_ids(stores);
}

TEST(EquivalenceSweep, AllThreeDriversAgreeAcrossTheGrid) {
  constexpr std::size_t kEpochs = 2;
  for (int m : {1, 2, 4, 7}) {
    const std::size_t n = static_cast<std::size_t>(m) * 12;
    for (double q : {0.0, 0.1, 0.3, 1.0}) {
      for (std::size_t b : {2UL, 5UL}) {
        for (std::uint64_t seed : {11ULL, 97ULL}) {
          SCOPED_TRACE(::testing::Message()
                       << "m=" << m << " q=" << q << " b=" << b
                       << " seed=" << seed);

          PartialLocalShuffler pls(deal_shards(n, m), q, seed);
          Scheduler sched(deal_shards(n, m), q, b, seed);
          for (std::size_t epoch = 0; epoch < kEpochs; ++epoch) {
            pls.begin_epoch(epoch);
            sched.scheduling(epoch);
            for (std::size_t it = 0; it < sched.iterations_per_epoch();
                 ++it) {
              const auto chunk = sched.communicate(it);
              sched.synchronize(chunk);
            }
            sched.clean_local_storage();
          }
          const auto world = run_world_epochs(deal_shards(n, m), q, seed,
                                              kEpochs);

          const auto reference = store_ids(pls.stores());
          EXPECT_EQ(store_ids(sched.stores()), reference)
              << "Scheduler diverged from PartialLocalShuffler";
          EXPECT_EQ(world, reference)
              << "message-passing exchange diverged from the sequential "
                 "driver";
        }
      }
    }
  }
}

TEST(EquivalenceSweep, RobustAndFastPathsAgreeOnPerfectFabric) {
  // Same world, no faults: the DATA/ACK protocol must land on exactly the
  // shards of the plain fire-and-wait path.
  const std::uint64_t seed = 31;
  const double q = 0.5;
  for (int m : {2, 5}) {
    const std::size_t n = static_cast<std::size_t>(m) * 10;
    const auto fast = run_world_epochs(deal_shards(n, m), q, seed, 2);

    auto shards = deal_shards(n, m);
    const std::size_t min_shard = n / static_cast<std::size_t>(m);
    const std::size_t quota = exchange_quota(min_shard, q);
    std::vector<ShardStore> stores;
    for (auto& s : shards) {
      stores.emplace_back(std::move(s), min_shard + quota);
    }
    ExchangeRobustness robust;
    comm::World world(m);
    for (std::size_t epoch = 0; epoch < 2; ++epoch) {
      world.run([&](comm::Communicator& c) {
        auto& store = stores[static_cast<std::size_t>(c.rank())];
        run_pls_exchange_epoch(c, store, seed, epoch, q, min_shard,
                               nullptr, nullptr, &robust);
        post_exchange_local_shuffle(seed, epoch, c.rank(),
                                    store.mutable_ids());
      });
    }
    EXPECT_EQ(store_ids(stores), fast) << "m=" << m;
  }
}

}  // namespace
}  // namespace dshuf::shuffle
