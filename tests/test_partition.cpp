#include "data/partition.hpp"

#include <algorithm>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "data/synthetic.hpp"

namespace dshuf::data {
namespace {

InMemoryDataset small_dataset() {
  ClassClusterSpec spec{.num_classes = 8,
                        .samples_per_class = 16,
                        .feature_dim = 4,
                        .seed = 3};
  return make_class_clusters(spec);
}

// Property sweep: every scheme x worker count must produce a partition
// (exact cover, near-equal sizes).
class PartitionProperty
    : public ::testing::TestWithParam<std::tuple<PartitionScheme, int>> {};

TEST_P(PartitionProperty, CoversDatasetExactlyWithBalancedShards) {
  const auto [scheme, workers] = GetParam();
  const auto ds = small_dataset();
  Rng rng(7);
  const auto shards = partition_dataset(ds, workers, scheme, rng);
  ASSERT_EQ(shards.size(), static_cast<std::size_t>(workers));

  std::set<SampleId> seen;
  std::size_t min_sz = ds.size();
  std::size_t max_sz = 0;
  for (const auto& s : shards) {
    min_sz = std::min(min_sz, s.size());
    max_sz = std::max(max_sz, s.size());
    for (auto id : s) {
      EXPECT_LT(id, ds.size());
      EXPECT_TRUE(seen.insert(id).second) << "duplicate sample " << id;
    }
  }
  EXPECT_EQ(seen.size(), ds.size());
  EXPECT_LE(max_sz - min_sz, 1U);
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndScales, PartitionProperty,
    ::testing::Combine(::testing::Values(PartitionScheme::kContiguous,
                                         PartitionScheme::kClassSorted,
                                         PartitionScheme::kStrided,
                                         PartitionScheme::kRandom),
                       ::testing::Values(1, 2, 7, 16, 128)));

TEST(Partition, ClassSortedGroupsByLabel) {
  const auto ds = small_dataset();
  Rng rng(7);
  const auto shards =
      partition_dataset(ds, 8, PartitionScheme::kClassSorted, rng);
  // 8 classes x 16 samples over 8 workers: each worker gets exactly one
  // class.
  for (const auto& s : shards) {
    std::set<std::uint32_t> labels;
    for (auto id : s) labels.insert(ds.label(id));
    EXPECT_EQ(labels.size(), 1U);
  }
}

TEST(Partition, StridedIsNearlyRepresentative) {
  const auto ds = small_dataset();
  Rng rng(7);
  const auto strided =
      partition_dataset(ds, 8, PartitionScheme::kStrided, rng);
  const auto sorted =
      partition_dataset(ds, 8, PartitionScheme::kClassSorted, rng);
  EXPECT_LT(partition_skew(ds, strided), 0.2);
  EXPECT_GT(partition_skew(ds, sorted), 0.8);
  EXPECT_LT(partition_skew(ds, strided), partition_skew(ds, sorted));
}

TEST(Partition, RandomSchemeIsSeedStable) {
  const auto ds = small_dataset();
  Rng a(42);
  Rng b(42);
  const auto s1 = partition_dataset(ds, 4, PartitionScheme::kRandom, a);
  const auto s2 = partition_dataset(ds, 4, PartitionScheme::kRandom, b);
  EXPECT_EQ(s1, s2);
}

TEST(Partition, SingleWorkerGetsEverything) {
  const auto ds = small_dataset();
  Rng rng(1);
  const auto shards =
      partition_dataset(ds, 1, PartitionScheme::kRandom, rng);
  EXPECT_EQ(shards[0].size(), ds.size());
}

TEST(Partition, RejectsDegenerateInputs) {
  const auto ds = small_dataset();
  Rng rng(1);
  EXPECT_THROW(partition_dataset(ds, 0, PartitionScheme::kRandom, rng),
               CheckError);
  EXPECT_THROW(
      partition_dataset(ds, ds.size() + 1, PartitionScheme::kRandom, rng),
      CheckError);
}

TEST(Partition, SchemeStringsRoundTrip) {
  for (auto s : {PartitionScheme::kContiguous, PartitionScheme::kClassSorted,
                 PartitionScheme::kStrided, PartitionScheme::kRandom}) {
    EXPECT_EQ(parse_partition_scheme(to_string(s)), s);
  }
  EXPECT_THROW(parse_partition_scheme("bogus"), CheckError);
}

class DirichletProperty : public ::testing::TestWithParam<double> {};

TEST_P(DirichletProperty, CoversDatasetWithBalancedShards) {
  const double alpha = GetParam();
  const auto ds = small_dataset();
  Rng rng(11);
  const auto shards = partition_dataset_dirichlet(ds, 8, alpha, rng);
  ASSERT_EQ(shards.size(), 8U);
  std::set<SampleId> seen;
  std::size_t mn = ds.size();
  std::size_t mx = 0;
  for (const auto& s : shards) {
    mn = std::min(mn, s.size());
    mx = std::max(mx, s.size());
    for (auto id : s) EXPECT_TRUE(seen.insert(id).second);
  }
  EXPECT_EQ(seen.size(), ds.size());
  EXPECT_LE(mx - mn, 1U);
}

INSTANTIATE_TEST_SUITE_P(AlphaSweep, DirichletProperty,
                         ::testing::Values(0.05, 0.3, 1.0, 10.0, 100.0));

TEST(Partition, DirichletSkewDecreasesWithAlpha) {
  const auto ds = small_dataset();
  Rng r1(3);
  Rng r2(3);
  const auto sharp = partition_dataset_dirichlet(ds, 8, 0.05, r1);
  const auto smooth = partition_dataset_dirichlet(ds, 8, 50.0, r2);
  EXPECT_GT(partition_skew(ds, sharp), partition_skew(ds, smooth));
  // Extremes bracket the named schemes.
  Rng r3(3);
  const auto sorted =
      partition_dataset(ds, 8, PartitionScheme::kClassSorted, r3);
  EXPECT_LT(partition_skew(ds, smooth), 0.3);
  EXPECT_GT(partition_skew(ds, sorted), partition_skew(ds, sharp) - 0.2);
}

TEST(Partition, DirichletIsSeedStable) {
  const auto ds = small_dataset();
  Rng a(9);
  Rng b(9);
  EXPECT_EQ(partition_dataset_dirichlet(ds, 4, 0.5, a),
            partition_dataset_dirichlet(ds, 4, 0.5, b));
}

TEST(Partition, DirichletRejectsBadAlpha) {
  const auto ds = small_dataset();
  Rng rng(1);
  EXPECT_THROW(partition_dataset_dirichlet(ds, 4, 0.0, rng), CheckError);
  EXPECT_THROW(partition_dataset_dirichlet(ds, 4, -1.0, rng), CheckError);
}

TEST(Partition, SkewIsZeroForPerfectlyRepresentativeShards) {
  // 2 classes in pairs; strided over 2 workers gives each worker indices
  // {0,2,4,6} / {1,3,5,7} => labels {0,1,0,1} each: the exact global
  // distribution.
  Tensor f({8, 1});
  InMemoryDataset ds(std::move(f), {0, 0, 1, 1, 0, 0, 1, 1}, 2);
  Rng rng(1);
  const auto shards = partition_dataset(ds, 2, PartitionScheme::kStrided, rng);
  EXPECT_NEAR(partition_skew(ds, shards), 0.0, 1e-12);
}

}  // namespace
}  // namespace dshuf::data
