#include "sim/trainer.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/loss.hpp"
#include "sim/transfer.hpp"

namespace dshuf::sim {
namespace {

data::Workload tiny_workload() {
  data::Workload w = data::find_workload("imagenet1k-resnet50");
  w.data.num_classes = 8;
  w.data.samples_per_class = 32;
  w.data.feature_dim = 12;
  w.model.input_dim = 12;
  w.model.num_classes = 8;
  w.model.hidden = {24};
  w.regime.epochs = 6;
  w.regime.milestones = {4};
  w.regime.warmup_epochs = 1.0;
  w.regime.reference_batch = 32;  // keep the scaled LR usable at M*b = 32
  return w;
}

SimConfig tiny_config(shuffle::Strategy s, double q = 0.0) {
  SimConfig c;
  c.workers = 4;
  c.local_batch = 8;
  c.strategy = s;
  c.q = q;
  c.epochs = 6;
  c.seed = 77;
  c.max_eval_samples = 0;
  return c;
}

TEST(Trainer, GlobalShufflingLearnsTheTask) {
  const auto r = run_workload_experiment(tiny_workload(),
                                         tiny_config(shuffle::Strategy::kGlobal));
  EXPECT_GT(r.best_top1, 0.5);  // well above the 12.5% chance level
  EXPECT_EQ(r.epochs.size(), 6U);
  // Loss decreases from first to last epoch.
  EXPECT_LT(r.epochs.back().train_loss, r.epochs.front().train_loss);
}

TEST(Trainer, DeterministicForSeed) {
  const auto a = run_workload_experiment(tiny_workload(),
                                         tiny_config(shuffle::Strategy::kGlobal));
  const auto b = run_workload_experiment(tiny_workload(),
                                         tiny_config(shuffle::Strategy::kGlobal));
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t e = 0; e < a.epochs.size(); ++e) {
    EXPECT_DOUBLE_EQ(a.epochs[e].train_loss, b.epochs[e].train_loss);
    EXPECT_DOUBLE_EQ(a.epochs[e].val_top1, b.epochs[e].val_top1);
  }
}

TEST(Trainer, PartialReportsExchangeAndStorageBound) {
  auto cfg = tiny_config(shuffle::Strategy::kPartial, 0.25);
  const auto r = run_workload_experiment(tiny_workload(), cfg);
  EXPECT_GT(r.epochs.front().samples_exchanged, 0U);
  EXPECT_NEAR(r.peak_storage_ratio, 1.25, 0.05);
}

TEST(Trainer, GlobalAndLocalReportNoExchange) {
  for (auto s : {shuffle::Strategy::kGlobal, shuffle::Strategy::kLocal}) {
    const auto r = run_workload_experiment(tiny_workload(), tiny_config(s));
    for (const auto& e : r.epochs) EXPECT_EQ(e.samples_exchanged, 0U);
  }
}

TEST(Trainer, WarmStartBeginsFromGivenWeights) {
  auto w = tiny_workload();
  // First run to produce weights.
  auto cfg = tiny_config(shuffle::Strategy::kGlobal);
  auto split = data::make_class_clusters_split(w.data);
  Rng mrng = Rng(cfg.seed).fork(0x91);
  nn::Model model = nn::make_mlp(w.model, mrng);
  auto regime = w.regime;
  regime.epochs = 4;
  train_model(model, split.train, split.val, regime, cfg, "pretrain");
  const double pre_acc = evaluate(model, split.val, 0, 1);

  // Warm-started run must begin at that accuracy level (epoch 0 already
  // good), unlike a cold start.
  SimConfig warm = cfg;
  warm.warm_start = model.state();
  warm.epochs = 2;
  regime.epochs = 2;
  regime.base_lr = 1e-4F;  // tiny LR: accuracy should stay put
  Rng mrng2 = Rng(99).fork(0x91);
  nn::Model model2 = nn::make_mlp(w.model, mrng2);
  const auto r = train_model(model2, split.train, split.val, regime, warm,
                             "warm");
  EXPECT_GT(r.epochs.front().val_top1, pre_acc - 0.1);
}

TEST(Trainer, RejectsBatchLargerThanShard) {
  auto cfg = tiny_config(shuffle::Strategy::kLocal);
  cfg.workers = 64;     // shard = 4 samples
  cfg.local_batch = 8;  // > shard
  EXPECT_THROW(run_workload_experiment(tiny_workload(), cfg), CheckError);
}

TEST(Evaluate, SubsamplingIsDeterministic) {
  auto w = tiny_workload();
  auto split = data::make_class_clusters_split(w.data);
  Rng mrng = Rng(3).fork(0x91);
  nn::Model model = nn::make_mlp(w.model, mrng);
  const double a = evaluate(model, split.val, 20, 5);
  const double b = evaluate(model, split.val, 20, 5);
  EXPECT_DOUBLE_EQ(a, b);
}

// ------------------------- Section IV-A as executable propositions ------

/// Average gradient over M workers of batch b from the same sample union.
std::vector<float> averaged_gradient(
    nn::Model& model, const data::InMemoryDataset& ds,
    const std::vector<std::vector<data::SampleId>>& worker_batches) {
  nn::SoftmaxCrossEntropy ce;
  model.zero_grad();
  for (const auto& batch : worker_batches) {
    const Tensor x = ds.gather(batch);
    const auto y = ds.gather_labels(batch);
    const Tensor logits = model.forward(x, true);
    ce.forward(logits, y);
    model.backward(ce.backward());
  }
  model.scale_grad(1.0F / static_cast<float>(worker_batches.size()));
  return model.gradients();
}

// The paper's gradient-equivalence claim (Section IV-A): for synchronous
// SGD the averaged gradient depends only on the UNION of the samples in
// the global batch, not on which worker holds which sample — by the
// commutative property of addition. Holds exactly for batch-composition-
// independent models (no BatchNorm).
TEST(GradientEquivalence, HoldsWithoutBatchNorm) {
  data::ClassClusterSpec dspec{.num_classes = 4,
                               .samples_per_class = 16,
                               .feature_dim = 8,
                               .seed = 21};
  const auto ds = data::make_class_clusters(dspec);
  nn::MlpSpec mspec{.input_dim = 8,
                    .hidden = {16},
                    .num_classes = 4,
                    .norm = nn::NormKind::kNone};
  Rng mrng(5);
  nn::Model model = nn::make_mlp(mspec, mrng);

  // Assignment A: workers get contiguous batches; assignment B: the same
  // 16 samples dealt round-robin (a different partial-local realisation of
  // the same global permutation).
  std::vector<data::SampleId> pool{3, 9, 12, 20, 25, 31, 33, 40,
                                   44, 47, 50, 52, 55, 58, 60, 63};
  std::vector<std::vector<data::SampleId>> a(4), bt(4);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    a[i / 4].push_back(pool[i]);
    bt[i % 4].push_back(pool[i]);
  }
  const auto ga = averaged_gradient(model, ds, a);
  const auto gb = averaged_gradient(model, ds, bt);
  ASSERT_EQ(ga.size(), gb.size());
  for (std::size_t i = 0; i < ga.size(); ++i) {
    EXPECT_NEAR(ga[i], gb[i], 1e-5F) << "grad[" << i << "]";
  }
}

// ... and the paper's stated limitation (Section IV-A-1): with BatchNorm
// the equivalence breaks, because batch statistics depend on which worker
// a sample is batched with.
TEST(GradientEquivalence, BreaksWithBatchNorm) {
  data::ClassClusterSpec dspec{.num_classes = 4,
                               .samples_per_class = 16,
                               .feature_dim = 8,
                               .seed = 21};
  const auto ds = data::make_class_clusters(dspec);
  nn::MlpSpec mspec{.input_dim = 8,
                    .hidden = {16},
                    .num_classes = 4,
                    .norm = nn::NormKind::kBatchNorm};
  Rng mrng(5);
  nn::Model model = nn::make_mlp(mspec, mrng);

  std::vector<data::SampleId> pool{3, 9, 12, 20, 25, 31, 33, 40,
                                   44, 47, 50, 52, 55, 58, 60, 63};
  std::vector<std::vector<data::SampleId>> a(4), bt(4);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    a[i / 4].push_back(pool[i]);
    bt[i % 4].push_back(pool[i]);
  }
  const auto ga = averaged_gradient(model, ds, a);
  const auto gb = averaged_gradient(model, ds, bt);
  double max_diff = 0;
  for (std::size_t i = 0; i < ga.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(double(ga[i]) - gb[i]));
  }
  EXPECT_GT(max_diff, 1e-4);
}

// GroupNorm restores the equivalence — the paper's suggested remedy.
TEST(GradientEquivalence, RestoredByGroupNorm) {
  data::ClassClusterSpec dspec{.num_classes = 4,
                               .samples_per_class = 16,
                               .feature_dim = 8,
                               .seed = 21};
  const auto ds = data::make_class_clusters(dspec);
  nn::MlpSpec mspec{.input_dim = 8,
                    .hidden = {16},
                    .num_classes = 4,
                    .norm = nn::NormKind::kGroupNorm,
                    .groups = 4};
  Rng mrng(5);
  nn::Model model = nn::make_mlp(mspec, mrng);

  std::vector<data::SampleId> pool{3, 9, 12, 20, 25, 31, 33, 40,
                                   44, 47, 50, 52, 55, 58, 60, 63};
  std::vector<std::vector<data::SampleId>> a(4), bt(4);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    a[i / 4].push_back(pool[i]);
    bt[i % 4].push_back(pool[i]);
  }
  const auto ga = averaged_gradient(model, ds, a);
  const auto gb = averaged_gradient(model, ds, bt);
  for (std::size_t i = 0; i < ga.size(); ++i) {
    EXPECT_NEAR(ga[i], gb[i], 1e-5F);
  }
}

// -------------------------------------------------------------- transfer --

TEST(Transfer, CopyTrunkPreservesAllButHead) {
  nn::MlpSpec spec{.input_dim = 6, .hidden = {12}, .num_classes = 10};
  Rng r1(1);
  Rng r2(2);
  nn::Model src = nn::make_mlp(spec, r1);
  nn::MlpSpec down = spec;
  down.num_classes = 3;
  nn::Model dst = nn::make_mlp(down, r2);
  copy_trunk(src, dst);
  const auto sp = src.params();
  const auto dp = dst.params();
  for (std::size_t i = 0; i + 2 < sp.size(); ++i) {
    EXPECT_EQ(sp[i]->value.vec(), dp[i]->value.vec());
  }
  // Head differs in shape (10 vs 3 classes).
  EXPECT_NE(sp.back()->value.size(), dp.back()->value.size());
}

TEST(Transfer, PretrainingHelpsDownstream) {
  data::TaxonomySpec tspec{.coarse_classes = 4,
                           .fine_per_coarse = 3,
                           .samples_per_fine = 24,
                           .feature_dim = 12,
                           .seed = 8};
  const auto tax = data::make_taxonomy(tspec);

  TransferConfig cfg;
  cfg.trunk = nn::MlpSpec{.input_dim = 12, .hidden = {24}, .num_classes = 1};
  cfg.upstream.workers = 2;
  cfg.upstream.local_batch = 8;
  cfg.upstream.strategy = shuffle::Strategy::kGlobal;
  cfg.upstream.seed = 4;
  cfg.upstream.max_eval_samples = 0;
  cfg.downstream = cfg.upstream;
  cfg.upstream_regime = data::TrainRegime{.epochs = 8,
                                          .base_lr = 0.05F,
                                          .reference_batch = 16,
                                          .milestones = {},
                                          .warmup_epochs = 0.0};
  cfg.downstream_regime = cfg.upstream_regime;
  cfg.downstream_regime.epochs = 2;  // short fine-tune

  const auto r = run_transfer_experiment(tax, cfg);
  EXPECT_GT(r.upstream.best_top1, 0.3);

  // Baseline: downstream from scratch for the same 2 epochs.
  Rng mrng = Rng(cfg.downstream.seed).fork(0x93);
  nn::MlpSpec down_spec = cfg.trunk;
  down_spec.num_classes = tax.coarse_classes;
  nn::Model cold = nn::make_mlp(down_spec, mrng);
  const auto cold_r =
      train_model(cold, tax.downstream.train, tax.downstream.val,
                  cfg.downstream_regime, cfg.downstream, "cold");
  EXPECT_GT(r.downstream.best_top1, cold_r.best_top1 - 0.02);
}

}  // namespace
}  // namespace dshuf::sim
