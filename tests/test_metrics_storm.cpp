// Histogram storm: concurrent observe() / snapshot() / reset() on the
// log2-bucketed default histograms must stay data-race-free (every field
// is an independent relaxed atomic). Runs under the CI tsan job via the
// `concurrent` label.
//
// Semantics under race (pinned in obs/metrics.hpp): a snapshot racing a
// reset may be TORN — count() from one epoch next to bucket counts from
// another — but never invents values, so the only cross-field invariant
// asserted mid-storm is structural (bucket vector shape). The
// count == sum-of-buckets invariant is asserted only at quiescence.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"

namespace dshuf::obs {
namespace {

TEST(MetricsStorm, ObserveSnapshotResetRaceOnLog2Histogram) {
  auto& h = Registry::instance().histogram("storm.lat_us");
  ASSERT_TRUE(h.log2_buckets());
  h.reset();

  constexpr int kWriters = 4;
  constexpr int kObservationsPerWriter = 20000;
  std::atomic<bool> writers_done{false};

  std::vector<std::thread> threads;
  threads.reserve(kWriters + 2);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&h, w] {
      for (int i = 0; i < kObservationsPerWriter; ++i) {
        // Spread observations across buckets 0..19.
        h.observe(std::uint64_t{1} << ((i + w) % 20));
      }
    });
  }
  threads.emplace_back([&h, &writers_done] {
    const std::size_t shape = h.bounds().size() + 1;
    while (!writers_done.load(std::memory_order_acquire)) {
      const auto counts = h.bucket_counts();
      ASSERT_EQ(counts.size(), shape);
      // Torn reads are legal; impossible values are not. No single
      // bucket can exceed the process-wide observation budget.
      for (const auto c : counts) {
        ASSERT_LE(c, std::uint64_t{kWriters} * kObservationsPerWriter);
      }
      (void)h.count();
      (void)h.sum();
    }
  });
  threads.emplace_back([&h, &writers_done] {
    while (!writers_done.load(std::memory_order_acquire)) {
      h.reset();
      std::this_thread::yield();
    }
  });

  for (int w = 0; w < kWriters; ++w) threads[static_cast<std::size_t>(w)].join();
  writers_done.store(true, std::memory_order_release);
  threads[kWriters].join();
  threads[kWriters + 1].join();

  // Quiescent: the full invariant set holds again after one last reset.
  h.reset();
  for (int i = 0; i < 1000; ++i) h.observe(100);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.sum(), 100000u);
  const auto counts = h.bucket_counts();
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::uint64_t{0}),
            1000u);
}

// Registry-level storm: snapshots (name-ordered copies) racing first-touch
// registrations and updates across all three instrument kinds.
TEST(MetricsStorm, RegistrySnapshotRacesRegistrationAndUpdates) {
  Registry::instance().reset();
  constexpr int kIters = 5000;
  std::atomic<bool> done{false};

  std::thread writer([&] {
    for (int i = 0; i < kIters; ++i) {
      DSHUF_COUNTER("storm.reg.count").add(1);
      DSHUF_GAUGE("storm.reg.depth").set(i);
      DSHUF_HISTOGRAM_US("storm.reg.lat").observe(
          static_cast<std::uint64_t>(i % 4096 + 1));
      // A rotating name forces registration while snapshots run.
      Registry::instance().counter("storm.reg.touch." +
                                   std::to_string(i % 8));
    }
    done.store(true, std::memory_order_release);
  });
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const MetricsSnapshot snap = Registry::instance().snapshot();
      for (const auto& hist : snap.histograms) {
        ASSERT_EQ(hist.counts.size(), hist.bounds.size() + 1);
      }
    }
  });
  writer.join();
  reader.join();

  const MetricsSnapshot snap = Registry::instance().snapshot();
  bool found = false;
  for (const auto& [name, v] : snap.counters) {
    if (name == "storm.reg.count") {
      EXPECT_EQ(v, static_cast<std::uint64_t>(kIters));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// The sampler ticking while instruments update: windows must keep their
// structural invariants even when deltas are taken mid-update.
TEST(MetricsStorm, SamplerWindowsStayWellFormedUnderConcurrentUpdates) {
  auto& sampler = TimeseriesSampler::instance();
  Registry::instance().reset();
  sampler.set_enabled(true);
  sampler.reset();

  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int i = 0; i < 20000; ++i) {
      DSHUF_COUNTER("storm.win.count").add(1);
      DSHUF_HISTOGRAM_US("storm.win.lat").observe(
          static_cast<std::uint64_t>(i % 1024 + 1));
    }
    done.store(true, std::memory_order_release);
  });
  int windows = 0;
  while (!done.load(std::memory_order_acquire)) {
    sampler.sample_window("storm " + std::to_string(windows++));
    std::this_thread::yield();
  }
  writer.join();
  sampler.sample_window("final");
  sampler.set_enabled(false);

  std::uint64_t total = 0;
  for (const auto& w : sampler.windows()) {
    EXPECT_LE(w.t_start_us, w.t_end_us);
    for (const auto& [name, v] : w.counters) {
      EXPECT_FALSE(name.empty());
      if (name == "storm.win.count") total += v;
    }
    for (const auto& hist : w.histograms) {
      EXPECT_GT(hist.count, 0u);  // zero-delta windows are omitted
    }
  }
  // Deltas over tiling windows sum to the grand total.
  EXPECT_EQ(total, 20000u);
}

}  // namespace
}  // namespace dshuf::obs
