#include "shuffle/hierarchical.hpp"

#include <set>
#include <tuple>

#include <gtest/gtest.h>

namespace dshuf::shuffle {
namespace {

std::vector<std::vector<SampleId>> make_shards(std::size_t n,
                                               std::size_t workers) {
  std::vector<std::vector<SampleId>> shards(workers);
  for (std::size_t i = 0; i < n; ++i) {
    shards[i % workers].push_back(static_cast<SampleId>(i));
  }
  return shards;
}

// The balance property must survive the hierarchical constraint: each
// round is still a permutation of all ranks.
class HierBalance
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(HierBalance, EveryRoundIsAPermutation) {
  const auto [groups, group_size, intra] = GetParam();
  const int m = groups * group_size;
  const std::size_t quota = 12;
  const HierarchicalExchangePlan plan(7, 1, groups, group_size, quota,
                                      intra);
  EXPECT_EQ(plan.rounds(), quota);
  for (std::size_t i = 0; i < quota; ++i) {
    std::vector<bool> hit(m, false);
    for (int r = 0; r < m; ++r) {
      const int d = plan.dest(i, r);
      ASSERT_GE(d, 0);
      ASSERT_LT(d, m);
      EXPECT_FALSE(hit[d]);
      hit[d] = true;
      EXPECT_EQ(plan.source(i, d), r);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HierBalance,
    ::testing::Combine(::testing::Values(1, 2, 4, 16),
                       ::testing::Values(1, 4, 8),
                       ::testing::Values(0.0, 0.5, 1.0)));

TEST(HierarchicalPlan, IntraRoundsStayWithinGroups) {
  const HierarchicalExchangePlan plan(3, 0, 4, 8, 10, /*intra=*/1.0);
  for (std::size_t i = 0; i < plan.rounds(); ++i) {
    EXPECT_FALSE(plan.round_is_inter_group(i));
    for (int r = 0; r < plan.workers(); ++r) {
      EXPECT_EQ(plan.group_of(plan.dest(i, r)), plan.group_of(r));
    }
  }
  EXPECT_DOUBLE_EQ(plan.intra_group_traffic_fraction(), 1.0);
}

TEST(HierarchicalPlan, InterRoundsPermuteGroupsAsBlocks) {
  const HierarchicalExchangePlan plan(3, 0, 4, 8, 10, /*intra=*/0.0);
  for (std::size_t i = 0; i < plan.rounds(); ++i) {
    // All ranks of a group send to the same destination group.
    for (int g = 0; g < 4; ++g) {
      const int dg = plan.group_of(plan.dest(i, g * 8));
      for (int s = 1; s < 8; ++s) {
        EXPECT_EQ(plan.group_of(plan.dest(i, g * 8 + s)), dg);
      }
    }
  }
}

TEST(HierarchicalPlan, IntraFractionSplitsRounds) {
  const HierarchicalExchangePlan plan(3, 0, 4, 4, 10, /*intra=*/0.5);
  std::size_t inter = 0;
  for (std::size_t i = 0; i < plan.rounds(); ++i) {
    if (plan.round_is_inter_group(i)) ++inter;
  }
  EXPECT_EQ(inter, 5U);
  // Traffic locality: intra rounds are fully local; inter rounds mostly
  // cross (a group can map to itself), so locality is at least the intra
  // share.
  EXPECT_GE(plan.intra_group_traffic_fraction(), 0.5);
  EXPECT_LT(plan.intra_group_traffic_fraction(), 0.9);
}

TEST(HierarchicalPlan, SingleGroupIsAllIntra) {
  const HierarchicalExchangePlan plan(3, 0, 1, 16, 8, /*intra=*/0.0);
  for (std::size_t i = 0; i < plan.rounds(); ++i) {
    EXPECT_FALSE(plan.round_is_inter_group(i));
  }
}

TEST(HierarchicalPlan, DeterministicForSeedAndEpoch) {
  const HierarchicalExchangePlan a(9, 2, 2, 4, 6, 0.5);
  const HierarchicalExchangePlan b(9, 2, 2, 4, 6, 0.5);
  for (std::size_t i = 0; i < 6; ++i) {
    for (int r = 0; r < 8; ++r) EXPECT_EQ(a.dest(i, r), b.dest(i, r));
  }
}

TEST(HierarchicalShuffler, ConservesSamples) {
  const std::size_t n = 96;
  HierarchicalPartialShuffler hs(make_shards(n, 8), 0.3, /*groups=*/2, 5);
  std::multiset<SampleId> expected;
  for (std::size_t i = 0; i < n; ++i) {
    expected.insert(static_cast<SampleId>(i));
  }
  for (std::size_t e = 0; e < 4; ++e) {
    hs.begin_epoch(e);
    std::multiset<SampleId> got;
    for (int w = 0; w < 8; ++w) {
      got.insert(hs.local_order(w).begin(), hs.local_order(w).end());
    }
    EXPECT_EQ(got, expected) << "epoch " << e;
  }
}

TEST(HierarchicalShuffler, BalancedVolumesAndStorageBound) {
  HierarchicalPartialShuffler hs(make_shards(120, 6), 0.25, /*groups=*/3, 5);
  hs.begin_epoch(0);
  const auto* stats = hs.last_stats();
  const std::size_t quota = exchange_quota(20, 0.25);
  for (std::size_t w = 0; w < 6; ++w) {
    EXPECT_EQ(stats->sent_per_worker[w], quota);
    EXPECT_EQ(stats->received_per_worker[w], quota);
    EXPECT_LE(stats->peak_occupancy_per_worker[w], 20 + quota);
  }
}

TEST(HierarchicalShuffler, ReportsTrafficLocality) {
  HierarchicalPartialShuffler hs(make_shards(128, 8), 0.5, /*groups=*/4, 5,
                                 /*intra_fraction=*/0.75);
  hs.begin_epoch(0);
  EXPECT_GE(hs.last_intra_fraction(), 0.75);
}

TEST(HierarchicalShuffler, MixesAcrossGroupsEventually) {
  const std::size_t n = 128;
  auto shards = make_shards(n, 8);
  const std::set<SampleId> w0(shards[0].begin(), shards[0].end());
  HierarchicalPartialShuffler hs(std::move(shards), 0.3, /*groups=*/4, 5,
                                 /*intra_fraction=*/0.5);
  for (std::size_t e = 0; e < 12; ++e) hs.begin_epoch(e);
  // Worker 6 is in a different group than worker 0; inter-group rounds
  // must have carried some of worker 0's original samples there.
  std::size_t migrated = 0;
  for (int w = 2; w < 8; ++w) {
    for (auto id : hs.local_order(w)) migrated += w0.count(id);
  }
  EXPECT_GT(migrated, 0U);
}

TEST(HierarchicalShuffler, RejectsIndivisibleGroups) {
  EXPECT_THROW(
      HierarchicalPartialShuffler(make_shards(60, 6), 0.3, /*groups=*/4, 5),
      CheckError);
}

TEST(HierarchicalShuffler, LabelEncodesGroups) {
  HierarchicalPartialShuffler hs(make_shards(32, 4), 0.5, 2, 5);
  EXPECT_EQ(hs.label(), "partial-0.5-hier2");
}

}  // namespace
}  // namespace dshuf::shuffle
