// Lock-rank discipline (util/ranked_mutex.hpp): ascending acquisition is
// silent, any same-or-descending acquisition reports the full held chain,
// and — the part that matters — a real chaos-harness workload across the
// whole comm < fault < log hierarchy produces zero false positives.
// lint:tag-ok-file: exercises the raw transport — tags here name
// transport-level channels under test, not PLS exchange rounds.
#include "util/ranked_mutex.hpp"

#include <atomic>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

#include "comm/comm.hpp"
#include "comm/fault.hpp"
#include "util/log.hpp"

namespace dshuf {
namespace {

struct RankOrderError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// Handlers are plain function pointers, so test state lives in globals.
[[noreturn]] void throwing_handler(const LockRankViolation& v) {
  throw RankOrderError(v.describe());
}

std::atomic<int> g_violations{0};

void counting_handler(const LockRankViolation&) {
  g_violations.fetch_add(1, std::memory_order_relaxed);
}

/// Installs `h` for the test body, restores the previous handler on exit.
class HandlerGuard {
 public:
  explicit HandlerGuard(LockRankViolationHandler h)
      : prev_(set_lock_rank_violation_handler(h)) {}
  ~HandlerGuard() { set_lock_rank_violation_handler(prev_); }
  HandlerGuard(const HandlerGuard&) = delete;
  HandlerGuard& operator=(const HandlerGuard&) = delete;

 private:
  LockRankViolationHandler prev_;
};

TEST(RankedMutex, AscendingChainIsSilent) {
  HandlerGuard guard(&throwing_handler);
  RankedMutex low(LockRank::kCommMailbox, "t.low");
  RankedMutex mid(LockRank::kFault, "t.mid");
  RankedMutex high(LockRank::kLog, "t.high");
  {
    std::lock_guard<RankedMutex> l1(low);
    std::lock_guard<RankedMutex> l2(mid);
    std::lock_guard<RankedMutex> l3(high);
    const auto chain = current_lock_chain();
    ASSERT_EQ(chain.size(), 3U);
    EXPECT_STREQ(chain[0].name, "t.low");
    EXPECT_STREQ(chain[1].name, "t.mid");
    EXPECT_STREQ(chain[2].name, "t.high");
    EXPECT_EQ(chain[0].rank, LockRank::kCommMailbox);
    EXPECT_EQ(chain[2].rank, LockRank::kLog);
  }
  EXPECT_TRUE(current_lock_chain().empty());
}

TEST(RankedMutex, InversionReportsTheFullHeldChain) {
  HandlerGuard guard(&throwing_handler);
  RankedMutex fault(LockRank::kFault, "t.fault");
  RankedMutex log_mu(LockRank::kLog, "t.log");
  RankedMutex mailbox(LockRank::kCommMailbox, "t.mailbox");
  std::lock_guard<RankedMutex> l1(fault);
  std::lock_guard<RankedMutex> l2(log_mu);
  try {
    mailbox.lock();
    mailbox.unlock();
    FAIL() << "descending acquisition must be reported";
  } catch (const RankOrderError& e) {
    const std::string report = e.what();
    // The report must name the attempted mutex AND every held lock, with
    // ranks, so the offending chain is actionable from the message alone.
    EXPECT_NE(report.find("t.mailbox"), std::string::npos) << report;
    EXPECT_NE(report.find("t.fault"), std::string::npos) << report;
    EXPECT_NE(report.find("t.log"), std::string::npos) << report;
    EXPECT_NE(report.find("10"), std::string::npos) << report;
    EXPECT_NE(report.find("20"), std::string::npos) << report;
    EXPECT_NE(report.find("50"), std::string::npos) << report;
  }
  // A throwing handler aborts the acquisition: the chain is unchanged.
  EXPECT_EQ(current_lock_chain().size(), 2U);
}

TEST(RankedMutex, EqualRankIsAlsoAViolation) {
  HandlerGuard guard(&throwing_handler);
  RankedMutex a(LockRank::kFault, "t.a");
  RankedMutex b(LockRank::kFault, "t.b");
  std::lock_guard<RankedMutex> l1(a);
  EXPECT_THROW(b.lock(), RankOrderError);
}

TEST(RankedMutex, UnlockOrderNeedNotMirrorLockOrder) {
  HandlerGuard guard(&throwing_handler);
  RankedMutex a(LockRank::kCommMailbox, "t.a");
  RankedMutex b(LockRank::kFault, "t.b");
  RankedMutex c(LockRank::kFileStore, "t.c");
  a.lock();
  b.lock();
  a.unlock();  // release the oldest first
  {
    const auto chain = current_lock_chain();
    ASSERT_EQ(chain.size(), 1U);
    EXPECT_STREQ(chain[0].name, "t.b");
  }
  c.lock();  // 40 > 20: still ascending relative to what is held
  c.unlock();
  b.unlock();
  EXPECT_TRUE(current_lock_chain().empty());
}

TEST(RankedMutex, FailedTryLockLeavesNoResidue) {
  HandlerGuard guard(&throwing_handler);
  RankedMutex mu(LockRank::kFault, "t.contended");
  mu.lock();
  std::thread other([&] {
    EXPECT_FALSE(mu.try_lock());
    EXPECT_TRUE(current_lock_chain().empty());
  });
  other.join();
  mu.unlock();
}

TEST(RankedMutex, ChainIsPerThread) {
  HandlerGuard guard(&throwing_handler);
  RankedMutex high(LockRank::kLog, "t.high");
  std::lock_guard<RankedMutex> l(high);
  std::thread other([] {
    // This thread holds nothing, so a low-rank acquisition is fine even
    // though the main thread holds kLog.
    RankedMutex low(LockRank::kCommMailbox, "t.other-low");
    std::lock_guard<RankedMutex> ol(low);
    EXPECT_EQ(current_lock_chain().size(), 1U);
  });
  other.join();
}

TEST(RankedMutex, HandlerInstallReturnsPrevious) {
  const auto prev = set_lock_rank_violation_handler(&throwing_handler);
  const auto mine = set_lock_rank_violation_handler(prev);
  EXPECT_EQ(mine, &throwing_handler);
}

// The production hierarchy under real load: rank threads hammer the
// mailbox/request/barrier locks, the fault injector's timer thread
// delivers delayed messages (fault -> mailbox would invert; the injector
// must release kFault first), and everyone logs. Any false positive in
// the rank table would fire here.
TEST(RankedMutexChaos, HappyPathHasNoFalsePositives) {
  g_violations.store(0);
  HandlerGuard guard(&counting_handler);

  const LogLevel saved_level = global_log_level();
  global_log_level() = LogLevel::kError;  // keep output quiet, path active

  comm::FaultSpec spec;
  spec.drop_prob = 0.2;
  spec.dup_prob = 0.2;
  spec.delay_prob = 0.5;
  spec.min_delay_us = 100;
  spec.max_delay_us = 2000;
  comm::World world(4);
  world.set_fault_plan(comm::FaultPlan(2024, spec));
  for (int round = 0; round < 3; ++round) {
    world.run([round](comm::Communicator& c) {
      std::vector<std::byte> payload(sizeof(int));
      const int v = c.rank() * 100 + round;
      std::memcpy(payload.data(), &v, sizeof(int));
      for (int dest = 0; dest < c.size(); ++dest) {
        if (dest != c.rank()) c.isend(dest, round, payload);
      }
      LOG_DEBUG << "rank " << c.rank() << " sent round " << round;
      c.barrier();        // every rank has issued its sends
      c.fence_faults();   // flush delayed copies, quiesce the injector
      // Lossy links: drain whatever actually survived (drops shrink the
      // count, duplicates grow it) so the mailbox ends the run empty.
      while (c.poll(comm::kAnySource, comm::kAnyTag).has_value()) {
      }
    });
  }

  global_log_level() = saved_level;
  EXPECT_EQ(g_violations.load(), 0)
      << "lock-rank false positive under the chaos harness";
}

}  // namespace
}  // namespace dshuf
