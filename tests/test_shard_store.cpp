#include "shuffle/shard_store.hpp"

#include <gtest/gtest.h>

namespace dshuf::shuffle {
namespace {

TEST(ShardStore, InitialisesWithShard) {
  ShardStore s({1, 2, 3}, 5);
  EXPECT_EQ(s.size(), 3U);
  EXPECT_EQ(s.capacity(), 5U);
  EXPECT_EQ(s.peak_occupancy(), 3U);
}

TEST(ShardStore, AddTracksPeak) {
  ShardStore s({1, 2}, 4);
  s.add(3);
  s.add(4);
  EXPECT_EQ(s.peak_occupancy(), 4U);
  s.remove_id(1);
  s.remove_id(2);
  EXPECT_EQ(s.size(), 2U);
  EXPECT_EQ(s.peak_occupancy(), 4U);  // peak is sticky
  s.reset_peak();
  EXPECT_EQ(s.peak_occupancy(), 2U);
}

TEST(ShardStore, EnforcesCapacity) {
  ShardStore s({1, 2, 3}, 4);
  s.add(4);
  EXPECT_THROW(s.add(5), CheckError);
}

TEST(ShardStore, ZeroCapacityMeansUnlimited) {
  ShardStore s({1}, 0);
  for (SampleId id = 2; id < 100; ++id) s.add(id);
  EXPECT_EQ(s.size(), 99U);
  EXPECT_FALSE(s.over_capacity());
}

TEST(ShardStore, RemoveSlotSwapsWithLast) {
  ShardStore s({10, 20, 30}, 0);
  s.remove_slot(0);
  EXPECT_EQ(s.size(), 2U);
  EXPECT_EQ(s.ids()[0], 30U);  // last element moved into the hole
  EXPECT_THROW(s.remove_slot(5), CheckError);
}

TEST(ShardStore, RemoveIdRequiresPresence) {
  ShardStore s({10, 20}, 0);
  s.remove_id(10);
  EXPECT_EQ(s.size(), 1U);
  EXPECT_THROW(s.remove_id(10), CheckError);
}

TEST(ShardStore, DuplicateIdsRemoveOneInstance) {
  // Self-sends transiently duplicate an id: add then remove must leave one.
  ShardStore s({7}, 0);
  s.add(7);
  EXPECT_EQ(s.size(), 2U);
  s.remove_id(7);
  EXPECT_EQ(s.size(), 1U);
  EXPECT_EQ(s.ids()[0], 7U);
}

TEST(ShardStore, RejectsInitialOverCapacity) {
  EXPECT_THROW(ShardStore({1, 2, 3}, 2), CheckError);
}

TEST(PlsCapacity, MatchesShardPlusQuota) {
  EXPECT_EQ(pls_capacity(100, 0.0), 100U);
  EXPECT_EQ(pls_capacity(100, 0.1), 110U);
  EXPECT_EQ(pls_capacity(100, 1.0), 200U);
  EXPECT_EQ(pls_capacity(3, 0.5), 5U);  // ceil(1.5) = 2 extra
}

}  // namespace
}  // namespace dshuf::shuffle
