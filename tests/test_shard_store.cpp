#include "shuffle/shard_store.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace dshuf::shuffle {
namespace {

TEST(ShardStore, InitialisesWithShard) {
  ShardStore s({1, 2, 3}, 5);
  EXPECT_EQ(s.size(), 3U);
  EXPECT_EQ(s.capacity(), 5U);
  EXPECT_EQ(s.peak_occupancy(), 3U);
}

TEST(ShardStore, AddTracksPeak) {
  ShardStore s({1, 2}, 4);
  s.add(3);
  s.add(4);
  EXPECT_EQ(s.peak_occupancy(), 4U);
  s.remove_id(1);
  s.remove_id(2);
  EXPECT_EQ(s.size(), 2U);
  EXPECT_EQ(s.peak_occupancy(), 4U);  // peak is sticky
  s.reset_peak();
  EXPECT_EQ(s.peak_occupancy(), 2U);
}

TEST(ShardStore, EnforcesCapacity) {
  ShardStore s({1, 2, 3}, 4);
  s.add(4);
  EXPECT_THROW(s.add(5), CheckError);
}

TEST(ShardStore, ZeroCapacityMeansUnlimited) {
  ShardStore s({1}, 0);
  for (SampleId id = 2; id < 100; ++id) s.add(id);
  EXPECT_EQ(s.size(), 99U);
  EXPECT_FALSE(s.over_capacity());
}

TEST(ShardStore, RemoveSlotSwapsWithLast) {
  ShardStore s({10, 20, 30}, 0);
  s.remove_slot(0);
  EXPECT_EQ(s.size(), 2U);
  EXPECT_EQ(s.ids()[0], 30U);  // last element moved into the hole
  EXPECT_THROW(s.remove_slot(5), CheckError);
}

TEST(ShardStore, RemoveIdRequiresPresence) {
  ShardStore s({10, 20}, 0);
  s.remove_id(10);
  EXPECT_EQ(s.size(), 1U);
  EXPECT_THROW(s.remove_id(10), CheckError);
}

TEST(ShardStore, DuplicateIdsRemoveOneInstance) {
  // Self-sends transiently duplicate an id: add then remove must leave one.
  ShardStore s({7}, 0);
  s.add(7);
  EXPECT_EQ(s.size(), 2U);
  s.remove_id(7);
  EXPECT_EQ(s.size(), 1U);
  EXPECT_EQ(s.ids()[0], 7U);
}

TEST(ShardStore, RejectsInitialOverCapacity) {
  EXPECT_THROW(ShardStore({1, 2, 3}, 2), CheckError);
}

// ---------------------------------------------------------------------------
// The indexed remove_id must be OBSERVABLY identical to the linear scan it
// replaced: find the first occurrence, overwrite it with the last element,
// shrink. The reference below IS that scan; a long randomised op sequence
// (adds, duplicate adds, removals, slot removals, and external permutation
// through mutable_ids) must keep the full ids() sequences equal.

class ReferenceStore {
 public:
  explicit ReferenceStore(std::vector<SampleId> initial)
      : ids_(std::move(initial)) {}

  void add(SampleId id) { ids_.push_back(id); }
  void remove_slot(std::size_t slot) {
    ids_[slot] = ids_.back();
    ids_.pop_back();
  }
  void remove_id(SampleId id) {
    auto it = std::find(ids_.begin(), ids_.end(), id);
    ASSERT_NE(it, ids_.end());
    *it = ids_.back();
    ids_.pop_back();
  }
  std::vector<SampleId>& mutable_ids() { return ids_; }
  [[nodiscard]] const std::vector<SampleId>& ids() const { return ids_; }

 private:
  std::vector<SampleId> ids_;
};

TEST(ShardStoreIndex, MatchesLinearScanReferenceUnderRandomOps) {
  Rng rng(77);
  std::vector<SampleId> initial;
  for (SampleId id = 0; id < 64; ++id) initial.push_back(id);
  ShardStore store(initial, 0);
  ReferenceStore ref(initial);

  for (int step = 0; step < 30000; ++step) {
    ASSERT_EQ(store.ids(), ref.ids()) << "diverged at step " << step;
    const auto op = rng.uniform_u64(8);
    const std::size_t n = ref.ids().size();
    if (op < 3 || n == 0) {
      // Mix fresh ids with copies of held ones so duplicates are common.
      const SampleId id =
          (n > 0 && rng.uniform_u64(2) == 0)
              ? ref.ids()[static_cast<std::size_t>(rng.uniform_u64(n))]
              : static_cast<SampleId>(rng.uniform_u64(512));
      store.add(id);
      ref.add(id);
    } else if (op < 6) {
      const auto pick = static_cast<std::size_t>(rng.uniform_u64(n));
      const SampleId id = ref.ids()[pick];
      store.remove_id(id);
      ref.remove_id(id);
    } else if (op == 6) {
      const auto slot = static_cast<std::size_t>(rng.uniform_u64(n));
      store.remove_slot(slot);
      ref.remove_slot(slot);
    } else {
      // External permutation through mutable_ids (the post-exchange local
      // shuffle does exactly this) — invalidates the index mid-sequence.
      Rng perm_rng(static_cast<std::uint64_t>(step));
      perm_rng.shuffle(store.mutable_ids());
      Rng perm_rng2(static_cast<std::uint64_t>(step));
      perm_rng2.shuffle(ref.mutable_ids());
    }
  }
}

TEST(ShardStoreIndex, ManyDuplicatesOfOneId) {
  ShardStore s({5, 9, 5}, 0);
  s.add(5);
  s.add(5);  // ids: 5 9 5 5 5
  s.remove_id(5);  // first occurrence replaced by last: 5 9 5 5
  EXPECT_EQ(s.ids(), (std::vector<SampleId>{5, 9, 5, 5}));
  s.remove_id(5);
  EXPECT_EQ(s.ids(), (std::vector<SampleId>{5, 9, 5}));
  s.remove_id(9);
  EXPECT_EQ(s.ids(), (std::vector<SampleId>{5, 5}));
  s.remove_id(5);
  s.remove_id(5);
  EXPECT_TRUE(s.ids().empty());
  EXPECT_THROW(s.remove_id(5), CheckError);
}

// The removal index rides on io::SlotIndex: under the learned backend
// (ScopedSlotIndex) the observable ids() sequence must stay bit-identical
// to the open-addressing default across a mixed schedule — the backends
// are interchangeable behind the store.
TEST(ShardStoreIndex, LearnedBackendMatchesOpenAddressing) {
  std::vector<SampleId> initial;
  for (SampleId id = 0; id < 48; ++id) initial.push_back(id);

  auto run_schedule = [&initial](io::SlotIndexKind kind) {
    io::ScopedSlotIndex scoped(kind);
    ShardStore store(initial, 0);
    Rng rng(123);
    std::vector<std::vector<SampleId>> history;
    for (int step = 0; step < 5'000; ++step) {
      const auto op = rng.uniform_u64(8);
      const std::size_t n = store.ids().size();
      if (op < 3 || n == 0) {
        store.add(static_cast<SampleId>(rng.uniform_u64(256)));
      } else if (op < 6) {
        store.remove_id(
            store.ids()[static_cast<std::size_t>(rng.uniform_u64(n))]);
      } else if (op == 6) {
        store.remove_slot(static_cast<std::size_t>(rng.uniform_u64(n)));
      } else {
        Rng perm(static_cast<std::uint64_t>(step));
        perm.shuffle(store.mutable_ids());
      }
      history.push_back(store.ids());
    }
    return history;
  };

  const auto hash_arm = run_schedule(io::SlotIndexKind::kOpenAddressing);
  const auto learned_arm = run_schedule(io::SlotIndexKind::kLearned);
  ASSERT_EQ(hash_arm.size(), learned_arm.size());
  for (std::size_t i = 0; i < hash_arm.size(); ++i) {
    ASSERT_EQ(hash_arm[i], learned_arm[i]) << "diverged at step " << i;
  }
}

// Switching the process-wide backend mid-stream takes effect at the next
// lazy rebuild (mutable_ids invalidation) without corrupting state.
TEST(ShardStoreIndex, BackendSwitchMidStreamRebuildsCleanly) {
  ShardStore s({1, 2, 3, 2}, 0);
  s.remove_id(2);  // builds the default (open-addressing) index
  EXPECT_EQ(s.ids(), (std::vector<SampleId>{1, 2, 3}));
  {
    io::ScopedSlotIndex learned(io::SlotIndexKind::kLearned);
    s.mutable_ids();  // invalidate so the next op rebuilds (now learned)
    s.remove_id(3);
    EXPECT_EQ(s.ids(), (std::vector<SampleId>{1, 2}));
    EXPECT_GT(s.index_stats().lookups, 0U);
  }
  s.mutable_ids();
  s.remove_id(1);  // back on the default backend
  EXPECT_EQ(s.ids(), (std::vector<SampleId>{2}));
}

TEST(PlsCapacity, MatchesShardPlusQuota) {
  EXPECT_EQ(pls_capacity(100, 0.0), 100U);
  EXPECT_EQ(pls_capacity(100, 0.1), 110U);
  EXPECT_EQ(pls_capacity(100, 1.0), 200U);
  EXPECT_EQ(pls_capacity(3, 0.5), 5U);  // ceil(1.5) = 2 extra
}

}  // namespace
}  // namespace dshuf::shuffle
