#include "shuffle/exchange_plan.hpp"

#include <algorithm>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/mathx.hpp"

namespace dshuf::shuffle {
namespace {

// THE property of Algorithm 1: every worker sends exactly k samples and
// receives exactly k samples, for any (M, k). Swept parametrically.
class BalanceProperty
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(BalanceProperty, EveryWorkerSendsAndReceivesQuota) {
  const auto [workers, quota] = GetParam();
  const ExchangePlan plan(/*seed=*/77, /*epoch=*/3, workers, quota);
  EXPECT_EQ(plan.rounds(), quota);

  std::vector<std::size_t> sent(workers, 0);
  std::vector<std::size_t> received(workers, 0);
  for (std::size_t i = 0; i < quota; ++i) {
    for (int r = 0; r < workers; ++r) {
      ++sent[r];
      ++received[plan.dest(i, r)];
    }
  }
  for (int r = 0; r < workers; ++r) {
    EXPECT_EQ(sent[r], quota);
    EXPECT_EQ(received[r], quota) << "rank " << r << " imbalance";
  }
}

INSTANTIATE_TEST_SUITE_P(
    ScaleSweep, BalanceProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 8, 64, 257),
                       ::testing::Values<std::size_t>(0, 1, 5, 32)));

TEST(ExchangePlan, EachRoundIsAPermutation) {
  const int m = 19;
  const ExchangePlan plan(5, 0, m, 7);
  for (std::size_t i = 0; i < plan.rounds(); ++i) {
    std::vector<bool> hit(m, false);
    for (int r = 0; r < m; ++r) {
      const int d = plan.dest(i, r);
      ASSERT_GE(d, 0);
      ASSERT_LT(d, m);
      EXPECT_FALSE(hit[d]);
      hit[d] = true;
    }
  }
}

TEST(ExchangePlan, SourceIsInverseOfDest) {
  const ExchangePlan plan(5, 2, 11, 4);
  for (std::size_t i = 0; i < plan.rounds(); ++i) {
    for (int r = 0; r < 11; ++r) {
      EXPECT_EQ(plan.source(i, plan.dest(i, r)), r);
    }
  }
}

// The shared-seed property that makes the distributed implementation work:
// any worker can reconstruct the identical plan locally.
TEST(ExchangePlan, DeterministicForSeedAndEpoch) {
  const ExchangePlan a(123, 9, 17, 6);
  const ExchangePlan b(123, 9, 17, 6);
  for (std::size_t i = 0; i < 6; ++i) {
    for (int r = 0; r < 17; ++r) {
      EXPECT_EQ(a.dest(i, r), b.dest(i, r));
    }
  }
}

TEST(ExchangePlan, DifferentEpochsGiveDifferentPlans) {
  const ExchangePlan a(123, 0, 17, 6);
  const ExchangePlan b(123, 1, 17, 6);
  int differences = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    for (int r = 0; r < 17; ++r) {
      if (a.dest(i, r) != b.dest(i, r)) ++differences;
    }
  }
  EXPECT_GT(differences, 50);
}

TEST(ExchangePlan, DestsAndSourcesForRankAreConsistent) {
  const ExchangePlan plan(7, 1, 9, 5);
  const auto dests = plan.dests_for(4);
  const auto sources = plan.sources_for(4);
  ASSERT_EQ(dests.size(), 5U);
  ASSERT_EQ(sources.size(), 5U);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(dests[i], plan.dest(i, 4));
    EXPECT_EQ(sources[i], plan.source(i, 4));
  }
}

TEST(ExchangePlan, SelfSendsOccurAtExpectedRate) {
  // A uniform random permutation has ~1 fixed point in expectation, so
  // across R rounds self-sends ~ R.
  const std::size_t rounds = 200;
  const ExchangePlan plan(3, 0, 50, rounds);
  const std::size_t selfs = plan.self_sends();
  EXPECT_GT(selfs, rounds / 4);
  EXPECT_LT(selfs, rounds * 4);
}

TEST(ExchangePlan, DerangementOptionEliminatesSelfSends) {
  const ExchangePlan plan(3, 0, 50, 50, /*allow_self=*/false);
  EXPECT_EQ(plan.self_sends(), 0U);
  // Still balanced.
  std::vector<std::size_t> received(50, 0);
  for (std::size_t i = 0; i < plan.rounds(); ++i) {
    for (int r = 0; r < 50; ++r) ++received[plan.dest(i, r)];
  }
  for (auto c : received) EXPECT_EQ(c, plan.rounds());
}

TEST(ExchangePlan, BoundsChecked) {
  const ExchangePlan plan(1, 0, 4, 2);
  EXPECT_THROW((void)plan.dest(2, 0), CheckError);
  EXPECT_THROW((void)plan.dest(0, 4), CheckError);
  EXPECT_THROW((void)plan.dest(0, -1), CheckError);
}

TEST(ExchangeQuota, CeilAndClamp) {
  EXPECT_EQ(exchange_quota(100, 0.0), 0U);
  EXPECT_EQ(exchange_quota(100, 0.1), 10U);
  EXPECT_EQ(exchange_quota(100, 0.101), 11U);  // ceil
  EXPECT_EQ(exchange_quota(100, 1.0), 100U);
  EXPECT_EQ(exchange_quota(3, 0.5), 2U);
  EXPECT_THROW(exchange_quota(10, 1.5), CheckError);
  EXPECT_THROW(exchange_quota(10, -0.1), CheckError);
}

// The ablation claim: naive independent destinations are NOT balanced —
// some worker receives measurably more than the quota.
TEST(NaiveExchange, IsImbalanced) {
  const int m = 64;
  const std::size_t quota = 32;
  const auto recv = naive_exchange_recv_counts(9, 0, m, quota);
  const auto mx = *std::max_element(recv.begin(), recv.end());
  const auto mn = *std::min_element(recv.begin(), recv.end());
  EXPECT_GT(mx, quota);  // someone is oversubscribed
  EXPECT_LT(mn, quota);  // someone starves
  // Conservation still holds in aggregate.
  std::size_t total = 0;
  for (auto c : recv) total += c;
  EXPECT_EQ(total, quota * m);
}

}  // namespace
}  // namespace dshuf::shuffle
