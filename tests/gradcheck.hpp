// Finite-difference gradient checking for layers.
//
// Drives a layer with loss L = sum_ij c_ij * y_ij for fixed random
// coefficients c, compares backward()'s input gradient and accumulated
// parameter gradients against central differences. float32 tolerances.
#pragma once

#include <cmath>

#include <gtest/gtest.h>

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace dshuf::nn::testing {

struct GradCheckOptions {
  float epsilon = 1e-2F;
  float tolerance = 2e-2F;  // relative-ish: |num - ana| <= tol * scale
  bool training = true;
};

inline float loss_of(Layer& layer, const Tensor& x, const Tensor& coeff,
                     bool training) {
  const Tensor y = layer.forward(x, training);
  EXPECT_EQ(y.size(), coeff.size());
  double l = 0;
  for (std::size_t i = 0; i < y.size(); ++i) l += y.at(i) * coeff.at(i);
  return static_cast<float>(l);
}

/// Checks dL/dx and dL/dparams of `layer` at input `x`.
inline void check_gradients(Layer& layer, Tensor x, std::size_t out_size,
                            Rng& rng, GradCheckOptions opt = {}) {
  Tensor coeff = Tensor::randn({out_size}, rng, 1.0F);

  // Analytic gradients.
  for (Param* p : layer.params()) p->grad.zero();
  const Tensor y = layer.forward(x, opt.training);
  ASSERT_EQ(y.size(), out_size) << "unexpected output size";
  Tensor grad_out(y.shape());
  for (std::size_t i = 0; i < out_size; ++i) grad_out.vec()[i] = coeff.at(i);
  const Tensor grad_in = layer.backward(grad_out);
  ASSERT_EQ(grad_in.size(), x.size());

  auto numeric = [&](float* slot) {
    const float orig = *slot;
    *slot = orig + opt.epsilon;
    const float lp = loss_of(layer, x, coeff, opt.training);
    *slot = orig - opt.epsilon;
    const float lm = loss_of(layer, x, coeff, opt.training);
    *slot = orig;
    return (lp - lm) / (2.0F * opt.epsilon);
  };

  // Input gradient.
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float num = numeric(&x.vec()[i]);
    const float ana = grad_in.at(i);
    const float scale = std::max({1.0F, std::fabs(num), std::fabs(ana)});
    EXPECT_NEAR(ana, num, opt.tolerance * scale) << "input grad [" << i << "]";
  }

  // Parameter gradients (re-run forward so perturbed params take effect).
  for (Param* p : layer.params()) {
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      const float num = numeric(&p->value.vec()[i]);
      const float ana = p->grad.at(i);
      const float scale = std::max({1.0F, std::fabs(num), std::fabs(ana)});
      EXPECT_NEAR(ana, num, opt.tolerance * scale)
          << p->name << " grad [" << i << "]";
    }
  }
}

}  // namespace dshuf::nn::testing
