#include "netsim/flowsim.hpp"

#include <gtest/gtest.h>

namespace dshuf::netsim {
namespace {

LinkCaps caps(double nic = 100.0, double fabric = 0.0, double lat = 0.0) {
  return LinkCaps{.nic_out_bps = nic,
                  .nic_in_bps = nic,
                  .fabric_bps = fabric,
                  .per_message_latency_s = lat};
}

TEST(FlowSim, SingleFlowTakesBytesOverBandwidth) {
  const std::vector<Flow> flows{{0, 1, 1000.0, 0.0, true}};
  const auto out = simulate_flows(flows, caps(100.0), 2);
  EXPECT_NEAR(out.flow_finish_s[0], 10.0, 1e-9);
  EXPECT_NEAR(out.makespan_s, 10.0, 1e-9);
}

TEST(FlowSim, LatencyDelaysTheStart) {
  const std::vector<Flow> flows{{0, 1, 1000.0, 2.0, true}};
  const auto out = simulate_flows(flows, caps(100.0, 0.0, 0.5), 2);
  EXPECT_NEAR(out.flow_finish_s[0], 2.0 + 0.5 + 10.0, 1e-9);
}

TEST(FlowSim, TwoFlowsShareTheEgressNic) {
  // Same source, different destinations: the out-NIC is the bottleneck.
  const std::vector<Flow> flows{{0, 1, 1000.0, 0.0, true},
                                {0, 2, 1000.0, 0.0, true}};
  const auto out = simulate_flows(flows, caps(100.0), 3);
  EXPECT_NEAR(out.flow_finish_s[0], 20.0, 1e-6);
  EXPECT_NEAR(out.flow_finish_s[1], 20.0, 1e-6);
}

TEST(FlowSim, IncastSharesTheIngressNic) {
  const std::vector<Flow> flows{{0, 2, 1000.0, 0.0, true},
                                {1, 2, 1000.0, 0.0, true}};
  const auto out = simulate_flows(flows, caps(100.0), 3);
  EXPECT_NEAR(out.makespan_s, 20.0, 1e-6);
}

TEST(FlowSim, DisjointPairsRunAtFullRate) {
  const std::vector<Flow> flows{{0, 1, 1000.0, 0.0, true},
                                {2, 3, 1000.0, 0.0, true}};
  const auto out = simulate_flows(flows, caps(100.0), 4);
  EXPECT_NEAR(out.makespan_s, 10.0, 1e-6);
}

TEST(FlowSim, FabricCapsAggregateThroughput) {
  // Four disjoint pairs, each NIC could do 100, but the fabric only
  // carries 200 total => each flow gets 50.
  std::vector<Flow> flows;
  for (int i = 0; i < 4; ++i) {
    flows.push_back(Flow{2 * i, 2 * i + 1, 1000.0, 0.0, true});
  }
  const auto out = simulate_flows(flows, caps(100.0, 200.0), 8);
  EXPECT_NEAR(out.makespan_s, 20.0, 1e-6);
}

TEST(FlowSim, FabricBypassedByLocalFlows) {
  std::vector<Flow> flows;
  for (int i = 0; i < 4; ++i) {
    flows.push_back(Flow{2 * i, 2 * i + 1, 1000.0, 0.0,
                         /*uses_fabric=*/false});
  }
  const auto out = simulate_flows(flows, caps(100.0, 200.0), 8);
  EXPECT_NEAR(out.makespan_s, 10.0, 1e-6);  // NIC-bound only
}

TEST(FlowSim, MaxMinFairnessAfterACompletionReallocates) {
  // Flow A: 0->1 (2000 bytes); flow B: 0->2 (1000 bytes). They share the
  // out-NIC (50 each); when B finishes at t=20, A speeds up to 100.
  const std::vector<Flow> flows{{0, 1, 2000.0, 0.0, true},
                                {0, 2, 1000.0, 0.0, true}};
  const auto out = simulate_flows(flows, caps(100.0), 3);
  EXPECT_NEAR(out.flow_finish_s[1], 20.0, 1e-6);
  // A: 20 s at 50 B/s = 1000 done; remaining 1000 at 100 B/s = 10 s more.
  EXPECT_NEAR(out.flow_finish_s[0], 30.0, 1e-6);
}

TEST(FlowSim, StaggeredStartsAreHonoured) {
  const std::vector<Flow> flows{{0, 1, 1000.0, 0.0, true},
                                {0, 2, 1000.0, 100.0, true}};
  const auto out = simulate_flows(flows, caps(100.0), 3);
  // No overlap at all: first finishes at 10, second runs 100..110.
  EXPECT_NEAR(out.flow_finish_s[0], 10.0, 1e-6);
  EXPECT_NEAR(out.flow_finish_s[1], 110.0, 1e-6);
}

TEST(FlowSim, SelfFlowsCostOnlyLatency) {
  const std::vector<Flow> flows{{1, 1, 1e9, 0.0, true}};
  const auto out = simulate_flows(flows, caps(100.0, 0.0, 0.25), 2);
  EXPECT_NEAR(out.flow_finish_s[0], 0.25, 1e-9);
}

TEST(FlowSim, RejectsBadInput) {
  EXPECT_THROW(simulate_flows({{0, 5, 10.0, 0.0, true}}, caps(), 2),
               CheckError);
  EXPECT_THROW(simulate_flows({}, LinkCaps{.nic_out_bps = 0}, 2),
               CheckError);
}

// --- exchange-plan integration --------------------------------------

TEST(FlowSim, BalancedPlanFinishesFasterThanNaive) {
  // The network-level consequence of Algorithm 1's balance guarantee:
  // with equal per-rank volume, the balanced exchange's incast is even
  // and its makespan beats the naive random-destination exchange, whose
  // most-oversubscribed receiver sets the finish line.
  const int m = 32;
  const std::size_t quota = 16;
  const double bytes = 1000.0;
  const shuffle::ExchangePlan plan(7, 0, m, quota);
  const auto balanced =
      simulate_flows(flows_from_plan(plan, bytes), caps(1000.0), m);
  const auto naive = simulate_flows(flows_naive(m, quota, bytes, 7),
                                    caps(1000.0), m);
  EXPECT_LT(balanced.makespan_s, naive.makespan_s);
  // Balanced: every rank sends and receives exactly quota * bytes at the
  // NIC rate.
  EXPECT_NEAR(balanced.makespan_s, quota * bytes / 1000.0, 1e-6);
}

TEST(FlowSim, HierarchicalPlanRelievesTheFabric) {
  const int groups = 4;
  const int gsize = 8;
  const std::size_t quota = 8;
  const double bytes = 1000.0;
  // Tight fabric: flat all-to-all is fabric-bound; hierarchical keeps
  // half its rounds off the fabric.
  const LinkCaps tight = caps(1000.0, /*fabric=*/4000.0);
  const shuffle::ExchangePlan flat(7, 0, groups * gsize, quota);
  const shuffle::HierarchicalExchangePlan hier(7, 0, groups, gsize, quota,
                                               /*intra=*/0.5);
  const auto flat_out =
      simulate_flows(flows_from_plan(flat, bytes), tight, groups * gsize);
  const auto hier_out = simulate_flows(
      flows_from_hierarchical_plan(hier, bytes), tight, groups * gsize);
  EXPECT_LT(hier_out.makespan_s, flat_out.makespan_s);
}

TEST(FlowSim, RingAllreduceClosedForm) {
  const auto c = caps(100.0, 0.0, 0.001);
  // 4 ranks, 1000 bytes: volume 2*(3/4)*1000 = 1500 over 100 B/s = 15 s,
  // plus 6 message latencies.
  EXPECT_NEAR(ring_allreduce_time(4, 1000.0, c), 15.0 + 0.006, 1e-9);
  EXPECT_DOUBLE_EQ(ring_allreduce_time(1, 1000.0, c), 0.0);
}

}  // namespace
}  // namespace dshuf::netsim
