// Wire-format contract of the coalesced exchange frame: golden bytes
// (little-endian layout is part of the format, not an implementation
// detail), round-trips through FrameWriter/parse_frame including the
// degenerate corners, rejection of truncated or inconsistent frames, and
// the bit-identity of the two wire modes end to end.
#include "shuffle/exchange_wire.hpp"

#include <gtest/gtest.h>

#include "shuffle/mpi_exchange.hpp"
#include "shuffle/shuffler.hpp"
#include "util/error.hpp"

namespace dshuf::shuffle {
namespace {

std::vector<std::byte> bytes_from(std::initializer_list<unsigned> raw) {
  std::vector<std::byte> out;
  for (unsigned v : raw) out.push_back(static_cast<std::byte>(v));
  return out;
}

// ------------------------------------------------------------------ codec --

TEST(ExchangeWireFormat, GoldenFrameBytes) {
  // Two samples: id 7 with payload {0xAA, 0xBB}, id 0xFFFFFFFF (the
  // maximum SampleId) with an empty payload, framed with the v2 trace
  // context (origin 3, flow id frame_flow_id(5, 3, 1)). Every byte below
  // is pinned: changing the layout must break this test.
  std::vector<std::byte> buf;
  FrameWriter w(buf, /*epoch=*/5, /*origin=*/3,
                frame_flow_id(/*epoch=*/5, /*origin=*/3, /*dest=*/1),
                /*count=*/2);
  w.begin_sample(7);
  buf.push_back(std::byte{0xAA});
  buf.push_back(std::byte{0xBB});
  w.begin_sample(0xFFFFFFFFU);
  w.finish();

  // frame_flow_id(5, 3, 1) = (5 << 26) | (3 << 13) | 1 = 0x14006001.
  const auto golden = bytes_from({
      0x05, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // epoch = 5 (u64 LE)
      0x03, 0x00, 0x00, 0x00,                          // origin = 3
      0x01, 0x60, 0x00, 0x14, 0x00, 0x00, 0x00, 0x00,  // flow id (u64 LE)
      0x02, 0x00, 0x00, 0x00,                          // count = 2
      0x00, 0x00, 0x00, 0x00,                          // offsets[0] = 0
      0x06, 0x00, 0x00, 0x00,                          // offsets[1] = 6
      0x0A, 0x00, 0x00, 0x00,                          // offsets[2] = 10
      0x07, 0x00, 0x00, 0x00, 0xAA, 0xBB,              // sample 0
      0xFF, 0xFF, 0xFF, 0xFF,                          // sample 1 (no body)
  });
  EXPECT_EQ(buf, golden);
  EXPECT_EQ(buf.size(), frame_header_bytes(2) + 10);

  const FrameView v = parse_frame(buf);
  EXPECT_EQ(v.epoch(), 5U);
  EXPECT_EQ(v.origin(), 3U);
  EXPECT_EQ(v.flow_id(), frame_flow_id(5, 3, 1));
  EXPECT_EQ(v.count(), 2U);
  EXPECT_EQ(v.id(0), 7U);
  EXPECT_EQ(v.id(1), 0xFFFFFFFFU);
  ASSERT_EQ(v.payload(0).size(), 2U);
  EXPECT_EQ(v.payload(0)[0], std::byte{0xAA});
  EXPECT_EQ(v.payload(0)[1], std::byte{0xBB});
  EXPECT_TRUE(v.payload(1).empty());
}

TEST(ExchangeWireFormat, FlowIdSpacesAreDisjointAndDeterministic) {
  // Frame ids are a pure function of (epoch, origin, dest); sample ids of
  // (tag_base, round, origin). Both endpoints must derive the same value,
  // and the two id spaces must never collide (bit 63 separates them).
  EXPECT_EQ(frame_flow_id(5, 3, 1), frame_flow_id(5, 3, 1));
  EXPECT_NE(frame_flow_id(5, 3, 1), frame_flow_id(5, 1, 3));
  EXPECT_NE(frame_flow_id(5, 3, 1), frame_flow_id(6, 3, 1));
  EXPECT_EQ(sample_flow_id(100, 2, 3), sample_flow_id(100, 2, 3));
  EXPECT_NE(sample_flow_id(100, 2, 3), sample_flow_id(100, 3, 3));
  EXPECT_TRUE(sample_flow_id(0, 0, 0) & (1ull << 63));
  EXPECT_FALSE(frame_flow_id(1u << 25, 8191, 8191) & (1ull << 63));
}

TEST(ExchangeWireFormat, ZeroCountFrameRoundTrips) {
  // A zero-quota epoch never sends frames, but the format still defines
  // the empty frame: header only, offsets = {0}.
  std::vector<std::byte> buf;
  FrameWriter w(buf, /*epoch=*/0, /*origin=*/0, /*flow_id=*/0, /*count=*/0);
  w.finish();
  EXPECT_EQ(buf.size(), frame_header_bytes(0));
  const FrameView v = parse_frame(buf);
  EXPECT_EQ(v.epoch(), 0U);
  EXPECT_EQ(v.count(), 0U);
}

TEST(ExchangeWireFormat, AllEmptyPayloadsRoundTrip) {
  std::vector<std::byte> buf;
  const std::uint32_t count = 17;
  FrameWriter w(buf, /*epoch=*/42, /*origin=*/2, frame_flow_id(42, 2, 0), count);
  for (std::uint32_t j = 0; j < count; ++j) w.begin_sample(j * 3 + 1);
  w.finish();
  EXPECT_EQ(buf.size(),
            frame_header_bytes(count) + count * sizeof(SampleId));
  const FrameView v = parse_frame(buf);
  ASSERT_EQ(v.count(), count);
  for (std::uint32_t j = 0; j < count; ++j) {
    EXPECT_EQ(v.id(j), j * 3 + 1);
    EXPECT_TRUE(v.payload(j).empty());
  }
}

TEST(ExchangeWireFormat, VariableLengthPayloadsRoundTrip) {
  std::vector<std::byte> buf;
  const std::uint32_t count = 9;
  FrameWriter w(buf, /*epoch=*/1234567, /*origin=*/1, frame_flow_id(1234567, 1, 2), count);
  for (std::uint32_t j = 0; j < count; ++j) {
    w.begin_sample(1000 + j);
    // Sample j carries j bytes of payload — mixed sizes in one frame.
    for (std::uint32_t b = 0; b < j; ++b) {
      buf.push_back(static_cast<std::byte>(j ^ b));
    }
  }
  w.finish();
  const FrameView v = parse_frame(buf);
  ASSERT_EQ(v.count(), count);
  for (std::uint32_t j = 0; j < count; ++j) {
    EXPECT_EQ(v.id(j), 1000 + j);
    ASSERT_EQ(v.payload(j).size(), j);
    for (std::uint32_t b = 0; b < j; ++b) {
      EXPECT_EQ(v.payload(j)[b], static_cast<std::byte>(j ^ b));
    }
  }
}

TEST(ExchangeWireFormat, TruncatedFramesAreRejected) {
  std::vector<std::byte> buf;
  FrameWriter w(buf, /*epoch=*/5, /*origin=*/0, frame_flow_id(5, 0, 1),
                /*count=*/2);
  w.begin_sample(7);
  buf.push_back(std::byte{0xAA});
  w.begin_sample(8);
  w.finish();

  // Any strict prefix must be rejected: short body, short offset table,
  // short fixed header, empty frame.
  for (std::size_t len = 0; len < buf.size(); ++len) {
    EXPECT_THROW(
        (void)parse_frame(std::span<const std::byte>(buf.data(), len)),
        CheckError)
        << "prefix of " << len << " bytes parsed";
  }
  // The full frame parses.
  EXPECT_NO_THROW((void)parse_frame(buf));
}

TEST(ExchangeWireFormat, CorruptOffsetTablesAreRejected) {
  const auto make = [] {
    std::vector<std::byte> buf;
    FrameWriter w(buf, /*epoch=*/1, /*origin=*/0, /*flow_id=*/0,
                  /*count=*/2);
    w.begin_sample(1);
    buf.push_back(std::byte{0x11});
    w.begin_sample(2);
    w.finish();
    return buf;
  };

  {
    // offsets[0] != 0.
    auto buf = make();
    buf[kFrameOffsetsOff] = std::byte{1};
    EXPECT_THROW((void)parse_frame(buf), CheckError);
  }
  {
    // Non-monotonic interior offset (sample shorter than its SampleId).
    auto buf = make();
    buf[kFrameOffsetsOff + 4] = std::byte{2};
    EXPECT_THROW((void)parse_frame(buf), CheckError);
  }
  {
    // offsets[count] disagrees with the actual body size.
    auto buf = make();
    buf.push_back(std::byte{0x99});
    EXPECT_THROW((void)parse_frame(buf), CheckError);
  }
}

TEST(ExchangeWireFormat, WriterEnforcesTheDeclaredCount) {
  std::vector<std::byte> buf;
  FrameWriter w(buf, /*epoch=*/1, /*origin=*/0, /*flow_id=*/0, /*count=*/1);
  w.begin_sample(3);
  EXPECT_THROW(w.begin_sample(4), CheckError);  // one too many

  std::vector<std::byte> buf2;
  FrameWriter w2(buf2, /*epoch=*/1, /*origin=*/0, /*flow_id=*/0,
                 /*count=*/2);
  w2.begin_sample(3);
  EXPECT_THROW(w2.finish(), CheckError);  // one too few
}

// ----------------------------------------------------------------- switch --

TEST(ExchangeWireMode, ScopedOverrideRestores) {
  const ExchangeWire before = exchange_wire();
  {
    ScopedExchangeWire scoped(ExchangeWire::kPerSample);
    EXPECT_EQ(exchange_wire(), ExchangeWire::kPerSample);
    {
      ScopedExchangeWire nested(ExchangeWire::kCoalesced);
      EXPECT_EQ(exchange_wire(), ExchangeWire::kCoalesced);
    }
    EXPECT_EQ(exchange_wire(), ExchangeWire::kPerSample);
  }
  EXPECT_EQ(exchange_wire(), before);
  EXPECT_STREQ(to_string(ExchangeWire::kPerSample), "per-sample");
  EXPECT_STREQ(to_string(ExchangeWire::kCoalesced), "coalesced");
}

// ---------------------------------------------------- cross-mode identity --

std::vector<std::vector<SampleId>> make_shards(std::size_t n, int workers) {
  std::vector<std::vector<SampleId>> shards(
      static_cast<std::size_t>(workers));
  for (std::size_t i = 0; i < n; ++i) {
    shards[i % static_cast<std::size_t>(workers)].push_back(
        static_cast<SampleId>(i));
  }
  return shards;
}

// Run `epochs` fast-path exchange epochs (with payloads and the shared
// post-shuffle) under `wire` and return the final shards.
std::vector<std::vector<SampleId>> run_fast_epochs(ExchangeWire wire,
                                                   std::size_t n, int m,
                                                   double q,
                                                   std::uint64_t seed,
                                                   std::size_t epochs) {
  ScopedExchangeWire mode(wire);
  auto shards = make_shards(n, m);
  std::size_t min_shard = shards[0].size();
  for (const auto& s : shards) min_shard = std::min(min_shard, s.size());
  const std::size_t quota = exchange_quota(min_shard, q);
  std::vector<ShardStore> stores;
  for (auto& s : shards) {
    const std::size_t cap = s.size() + quota;
    stores.emplace_back(std::move(s), cap);
  }
  comm::World world(m);
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    world.run([&](comm::Communicator& c) {
      auto& store = stores[static_cast<std::size_t>(c.rank())];
      run_pls_exchange_epoch(
          c, store, seed, epoch, q, min_shard,
          /*payload=*/
          [](SampleId id, std::vector<std::byte>& out) {
            out.insert(out.end(), (id % 5) + 1,
                       static_cast<std::byte>(id & 0xFF));
          },
          /*deposit=*/
          [](SampleId id, std::span<const std::byte> body) {
            ASSERT_EQ(body.size(), (id % 5) + 1);
            for (auto b : body) {
              ASSERT_EQ(b, static_cast<std::byte>(id & 0xFF));
            }
          });
      post_exchange_local_shuffle(seed, epoch, c.rank(),
                                  store.mutable_ids());
    });
  }
  std::vector<std::vector<SampleId>> out;
  for (const auto& s : stores) out.push_back(s.ids());
  return out;
}

TEST(ExchangeWireEquivalence, FastPathsBitIdenticalAcrossSeedsAndQuotas) {
  // The coalesced frame is a pure re-encoding: for every (seed, Q, M) the
  // post-epoch shard SEQUENCES (not just sets) must match the per-sample
  // wire exactly.
  const struct {
    std::size_t n;
    int m;
    double q;
    std::uint64_t seed;
  } cases[] = {
      {48, 6, 0.25, 3},
      {48, 6, 1.0, 4},
      {40, 5, 0.5, 99},
      {16, 4, 0.1, 7},
      {6, 6, 1.0, 11},  // shard = 1: every sample in flight
  };
  for (const auto& c : cases) {
    const auto a =
        run_fast_epochs(ExchangeWire::kPerSample, c.n, c.m, c.q, c.seed, 3);
    const auto b =
        run_fast_epochs(ExchangeWire::kCoalesced, c.n, c.m, c.q, c.seed, 3);
    EXPECT_EQ(a, b) << "wires diverged at n=" << c.n << " m=" << c.m
                    << " q=" << c.q << " seed=" << c.seed;
  }
}

}  // namespace
}  // namespace dshuf::shuffle
