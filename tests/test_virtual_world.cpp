// Tests for the event-driven virtual-rank backend: the same exchange code
// that runs on comm::World's threads must run unmodified on
// netsim::VirtualWorld's fibers — with bit-identical shards — while
// virtual time, the flow-model network, and the fault oracle behave as
// documented.
#include "netsim/virtual_comm.hpp"

#include <cstring>
#include <set>

#include <gtest/gtest.h>

#include "comm/fault.hpp"
#include "shuffle/exchange_plan.hpp"
#include "shuffle/mpi_exchange.hpp"
#include "shuffle/shuffler.hpp"
#include "shuffle/topology.hpp"
#include "util/error.hpp"

namespace dshuf::netsim {
namespace {

using shuffle::SampleId;
using shuffle::ShardStore;

std::vector<std::vector<SampleId>> make_shards(std::size_t n,
                                               std::size_t workers) {
  std::vector<std::vector<SampleId>> shards(workers);
  for (std::size_t i = 0; i < n; ++i) {
    shards[i % workers].push_back(static_cast<SampleId>(i));
  }
  return shards;
}

std::vector<ShardStore> make_stores(std::size_t n, int m, double q) {
  auto shards = make_shards(n, static_cast<std::size_t>(m));
  std::vector<ShardStore> stores;
  for (auto& s : shards) {
    const std::size_t cap =
        s.size() + shuffle::exchange_quota(n / static_cast<std::size_t>(m), q);
    stores.emplace_back(std::move(s), cap);
  }
  return stores;
}

TEST(VirtualWorld, CollectivesMatchTheSharedImplementation) {
  const int m = 32;
  VirtualWorld world(m);
  std::vector<std::vector<double>> sums(static_cast<std::size_t>(m));
  world.run([&](comm::Communicator& c) {
    const double v[2] = {static_cast<double>(c.rank()), 1.0};
    sums[static_cast<std::size_t>(c.rank())] = c.allreduce_sum(v);
  });
  const double expect = static_cast<double>(m * (m - 1)) / 2.0;
  for (const auto& s : sums) {
    ASSERT_EQ(s.size(), 2U);
    EXPECT_DOUBLE_EQ(s[0], expect);
    EXPECT_DOUBLE_EQ(s[1], static_cast<double>(m));
  }
}

TEST(VirtualWorld, TransferTimeFollowsTheFlowModel) {
  VirtualWorldOptions opts;
  opts.caps.nic_out_bps = 1e6;  // 1 MB/s
  opts.caps.nic_in_bps = 1e6;
  opts.caps.per_message_latency_s = 1e-3;
  VirtualWorld world(2, opts);
  std::uint64_t recv_at_us = 0;
  world.run([&](comm::Communicator& c) {
    if (c.rank() == 0) {
      c.send(1, 7, std::vector<std::byte>(1'000'000));
    } else {
      (void)c.recv(0, 7);
      recv_at_us = c.now_us();
    }
  });
  // 1 MB at 1 MB/s = 1 s on the wire, after 1 ms of latency.
  EXPECT_NEAR(static_cast<double>(recv_at_us), 1'001'000.0, 2.0);
  EXPECT_NEAR(static_cast<double>(world.now_us()), 1'001'000.0, 2.0);
  const auto stats = world.last_run_stats();
  EXPECT_EQ(stats.flows, 1U);
  EXPECT_GT(stats.context_switches, 0U);
}

TEST(VirtualWorld, BackoffAdvancesVirtualTimeNotWallTime) {
  VirtualWorld world(1);
  std::uint64_t before = 0;
  std::uint64_t after = 0;
  world.run([&](comm::Communicator& c) {
    before = c.now_us();
    c.backoff(std::chrono::seconds(3600));  // an hour of virtual time
    after = c.now_us();
  });
  EXPECT_GE(after - before, 3'600'000'000ULL);
  // Virtual time persists and stays monotone across runs.
  const std::uint64_t t1 = world.now_us();
  world.run([](comm::Communicator& c) { c.barrier(); });
  EXPECT_GE(world.now_us(), t1);
}

// The tentpole contract: the SAME epoch logic, bit-identical shards.
// Collectives are shared-implementation, point-to-point staging is
// deterministic on both backends, so not just the multisets but the exact
// post-exchange orderings must agree.
TEST(VirtualWorld, BitIdenticalShardsWithThreadedWorld) {
  const std::size_t n = 128;
  const int m = 16;
  const double q = 0.5;
  const std::uint64_t seed = 77;
  const std::size_t epochs = 3;

  auto threaded = make_stores(n, m, q);
  {
    comm::World world(m);
    for (std::size_t e = 0; e < epochs; ++e) {
      world.run([&](comm::Communicator& c) {
        shuffle::run_pls_exchange_epoch(
            c, threaded[static_cast<std::size_t>(c.rank())], seed, e, q,
            n / static_cast<std::size_t>(m));
        shuffle::post_exchange_local_shuffle(
            seed, e, c.rank(),
            threaded[static_cast<std::size_t>(c.rank())].mutable_ids());
      });
    }
  }

  auto virtualised = make_stores(n, m, q);
  {
    VirtualWorld world(m);
    for (std::size_t e = 0; e < epochs; ++e) {
      world.run([&](comm::Communicator& c) {
        shuffle::run_pls_exchange_epoch(
            c, virtualised[static_cast<std::size_t>(c.rank())], seed, e, q,
            n / static_cast<std::size_t>(m));
        shuffle::post_exchange_local_shuffle(
            seed, e, c.rank(),
            virtualised[static_cast<std::size_t>(c.rank())].mutable_ids());
      });
    }
  }

  for (int w = 0; w < m; ++w) {
    EXPECT_EQ(threaded[static_cast<std::size_t>(w)].ids(),
              virtualised[static_cast<std::size_t>(w)].ids())
        << "rank " << w;
  }
}

// Chaos over the virtual backend: the robust protocol must conserve every
// sample under drops, duplicates, delays, and stalls — with the schedule
// served by the virtual world's replay of the same fault oracle.
TEST(VirtualWorld, RobustExchangeConservesSamplesUnderFaults) {
  const std::size_t n = 96;
  const int m = 12;
  const double q = 0.5;

  comm::FaultSpec spec;
  spec.drop_prob = 0.05;
  spec.dup_prob = 0.05;
  spec.delay_prob = 0.3;
  spec.min_delay_us = 100;
  spec.max_delay_us = 3'000;
  spec.stall_prob = 0.2;
  spec.stall_us = 2'000;

  shuffle::ExchangeRobustness robust;
  robust.ack_timeout = std::chrono::milliseconds(10);
  robust.max_attempts = 6;
  robust.recv_deadline = std::chrono::milliseconds(400);
  robust.poll_interval = std::chrono::microseconds(200);

  auto stores = make_stores(n, m, q);
  VirtualWorld world(m);
  world.set_fault_plan(comm::FaultPlan(1234, spec));
  for (std::size_t e = 0; e < 2; ++e) {
    world.run([&](comm::Communicator& c) {
      shuffle::run_pls_exchange_epoch(
          c, stores[static_cast<std::size_t>(c.rank())], 5, e, q,
          n / static_cast<std::size_t>(m), nullptr, nullptr, &robust);
    });
  }

  std::multiset<SampleId> all;
  for (const auto& s : stores) all.insert(s.ids().begin(), s.ids().end());
  EXPECT_EQ(all.size(), n);
  EXPECT_EQ(std::set<SampleId>(all.begin(), all.end()).size(), n);

  const auto fs = world.fault_stats();
  EXPECT_GT(fs.submitted, 0U);
  // Every submitted copy either landed or was dropped; duplicates add an
  // extra landed copy each. Nothing is force-flushed on this backend —
  // fences wait delays out in virtual time instead.
  EXPECT_EQ(fs.delivered + fs.dropped, fs.submitted + fs.duplicated);
  EXPECT_EQ(fs.flushed, 0U);
}

// Same seed, same backend, two worlds: the virtual replay of the fault
// oracle must be deterministic end to end.
TEST(VirtualWorld, FaultScheduleReplaysExactly) {
  const std::size_t n = 48;
  const int m = 6;
  comm::FaultSpec spec;
  spec.drop_prob = 0.1;
  spec.dup_prob = 0.1;
  spec.delay_prob = 0.5;
  spec.max_delay_us = 2'000;

  shuffle::ExchangeRobustness robust;
  robust.ack_timeout = std::chrono::milliseconds(10);
  robust.recv_deadline = std::chrono::milliseconds(300);

  auto run_once = [&](std::vector<std::vector<SampleId>>& out) {
    auto stores = make_stores(n, m, 0.5);
    VirtualWorld world(m);
    world.set_fault_plan(comm::FaultPlan(42, spec));
    world.run([&](comm::Communicator& c) {
      shuffle::run_pls_exchange_epoch(
          c, stores[static_cast<std::size_t>(c.rank())], 3, 0, 0.5,
          n / static_cast<std::size_t>(m), nullptr, nullptr, &robust);
    });
    for (auto& s : stores) out.push_back(s.ids());
    return world.fault_stats();
  };

  std::vector<std::vector<SampleId>> a;
  std::vector<std::vector<SampleId>> b;
  const auto sa = run_once(a);
  const auto sb = run_once(b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(sa.submitted, sb.submitted);
  EXPECT_EQ(sa.dropped, sb.dropped);
  EXPECT_EQ(sa.duplicated, sb.duplicated);
  EXPECT_EQ(sa.delayed, sb.delayed);
  EXPECT_EQ(sa.delivered, sb.delivered);
}

TEST(VirtualWorld, FenceWaitsOutDelayedTrafficInVirtualTime) {
  comm::FaultSpec spec;
  spec.delay_prob = 1.0;
  spec.min_delay_us = 5'000;
  spec.max_delay_us = 5'000;
  VirtualWorld world(2);
  world.set_fault_plan(comm::FaultPlan(7, spec));
  bool got = false;
  world.run([&](comm::Communicator& c) {
    if (c.rank() == 0) c.send(1, 3, std::vector<std::byte>(8));
    c.barrier();
    c.fence_faults();
    if (c.rank() == 1) {
      auto msg = c.poll(0, 3);
      got = msg.has_value();
    }
  });
  EXPECT_TRUE(got);
  EXPECT_GE(world.now_us(), 5'000U);  // the delay elapsed, virtually
  EXPECT_EQ(world.fault_stats().flushed, 0U);
}

TEST(VirtualWorld, TopologyThrottlesInterGroupTraffic) {
  shuffle::Topology topo;
  topo.groups = 2;
  topo.group_size = 4;
  topo.intra_bw_bps = 1e9;
  topo.inter_bw_bps = 1e6;  // uplink 1000x slower than NICs

  VirtualWorldOptions opts;
  opts.topology = topo;
  auto elapsed_us = [&](int dest) {
    VirtualWorld world(8, opts);
    world.run([&](comm::Communicator& c) {
      if (c.rank() == 0) c.send(dest, 1, std::vector<std::byte>(1'000'000));
      if (c.rank() == dest) (void)c.recv(0, 1);
    });
    return world.now_us();
  };
  const std::uint64_t intra = elapsed_us(1);  // same group: NIC speed
  const std::uint64_t inter = elapsed_us(4);  // crosses the uplink
  EXPECT_NEAR(static_cast<double>(intra), 1e3, 2.0);    // 1 MB at 1 GB/s
  EXPECT_NEAR(static_cast<double>(inter), 1e6, 10.0);   // 1 MB at 1 MB/s
}

TEST(VirtualWorld, RunsThousandsOfRanksCheaply) {
  const int m = 1024;  // 2x the threaded backend's hard cap
  VirtualWorld world(m);
  std::vector<int> seen(static_cast<std::size_t>(m), 0);
  world.run([&](comm::Communicator& c) {
    // Ring neighbour exchange + a collective, at a scale the threaded
    // world refuses to construct.
    const int next = (c.rank() + 1) % c.size();
    const int prev = (c.rank() + c.size() - 1) % c.size();
    c.send(next, 1, std::vector<std::byte>(64));
    (void)c.recv(prev, 1);
    const double v = 1.0;
    const auto sum = c.allreduce_sum(std::span<const double>(&v, 1));
    seen[static_cast<std::size_t>(c.rank())] =
        static_cast<int>(sum[0] + 0.5);
  });
  for (int r = 0; r < m; ++r) EXPECT_EQ(seen[static_cast<std::size_t>(r)], m);
  EXPECT_EQ(world.last_run_stats().flows, static_cast<std::uint64_t>(m));
}

TEST(VirtualWorld, DetectsDeadlockInsteadOfHanging) {
  VirtualWorld world(2);
  EXPECT_THROW(world.run([](comm::Communicator& c) {
    if (c.rank() == 0) (void)c.recv(1, 9);  // rank 1 never sends
  }),
               CheckError);
}

TEST(VirtualWorld, PropagatesRankExceptions) {
  VirtualWorld world(4);
  EXPECT_THROW(world.run([](comm::Communicator& c) {
    c.barrier();
    DSHUF_CHECK(c.rank() != 2, "rank 2 gives up");
    c.barrier();  // peers must unwind, not hang
  }),
               CheckError);
  // The world stays usable after an aborted run.
  int ok = 0;
  world.run([&](comm::Communicator& c) {
    c.barrier();
    if (c.rank() == 0) ok = 1;
  });
  EXPECT_EQ(ok, 1);
}

TEST(VirtualWorld, ChecksMailboxesDrainedBetweenRuns) {
  VirtualWorld world(2);
  EXPECT_THROW(world.run([](comm::Communicator& c) {
    if (c.rank() == 0) c.send(1, 5, std::vector<std::byte>(4));
    c.barrier();
    c.fence_faults();  // delivery lands; nobody receives it
    c.barrier();
  }),
               CheckError);
}

}  // namespace
}  // namespace dshuf::netsim
