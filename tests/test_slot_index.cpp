// Unit + randomized differential tests for the pluggable id -> slot
// index (io/slot_index.hpp): both backends must agree with a std::map
// reference over arbitrary put/erase/find/clear schedules, and the
// learned backend's piecewise-linear core must stay correct through
// delta merges, tombstoning and rebuilds.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <vector>

#include "io/slot_index.hpp"

namespace dshuf::io {
namespace {

class SlotIndexBackends
    : public ::testing::TestWithParam<SlotIndexKind> {};

INSTANTIATE_TEST_SUITE_P(Backends, SlotIndexBackends,
                         ::testing::Values(SlotIndexKind::kOpenAddressing,
                                           SlotIndexKind::kLearned),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

TEST_P(SlotIndexBackends, PutFindEraseBasics) {
  auto idx = make_slot_index(GetParam());
  EXPECT_EQ(idx->kind(), GetParam());
  EXPECT_EQ(idx->size(), 0U);

  EXPECT_TRUE(idx->put(7, 70));
  EXPECT_TRUE(idx->put(3, 30));
  EXPECT_FALSE(idx->put(7, 71));  // overwrite is not an insert
  EXPECT_EQ(idx->size(), 2U);

  std::uint64_t v = 0;
  ASSERT_TRUE(idx->find(7, v));
  EXPECT_EQ(v, 71U);
  ASSERT_TRUE(idx->find(3, v));
  EXPECT_EQ(v, 30U);
  EXPECT_FALSE(idx->find(4, v));

  EXPECT_TRUE(idx->erase(7));
  EXPECT_FALSE(idx->erase(7));
  EXPECT_FALSE(idx->find(7, v));
  EXPECT_EQ(idx->size(), 1U);
}

TEST_P(SlotIndexBackends, ClearEmptiesAndStaysUsable) {
  auto idx = make_slot_index(GetParam());
  for (data::SampleId id = 0; id < 500; ++id) idx->put(id, id * 2);
  idx->clear();
  EXPECT_EQ(idx->size(), 0U);
  std::uint64_t v = 0;
  EXPECT_FALSE(idx->find(123, v));
  for (data::SampleId id = 0; id < 500; ++id) idx->put(id, id * 3);
  ASSERT_TRUE(idx->find(123, v));
  EXPECT_EQ(v, 369U);
}

TEST_P(SlotIndexBackends, ForEachVisitsEveryLivePair) {
  auto idx = make_slot_index(GetParam());
  std::map<data::SampleId, std::uint64_t> ref;
  for (data::SampleId id = 0; id < 300; id += 3) {
    idx->put(id, id + 1000);
    ref[id] = id + 1000;
  }
  for (data::SampleId id = 0; id < 300; id += 9) {
    idx->erase(id);
    ref.erase(id);
  }
  std::map<data::SampleId, std::uint64_t> seen;
  idx->for_each([&seen](data::SampleId id, std::uint64_t v) {
    EXPECT_TRUE(seen.emplace(id, v).second) << "duplicate visit of " << id;
  });
  EXPECT_EQ(seen, ref);
}

// The core differential guarantee: any interleaving of put/erase/find
// matches a std::map, for dense ids (learned index's best case), sparse
// random ids (its worst case), and mixtures with heavy overwriting.
TEST_P(SlotIndexBackends, MatchesMapReferenceUnderRandomSchedules) {
  for (const std::uint32_t id_range : {1'000U, 1'000'000'000U}) {
    for (const std::uint64_t seed : {1ULL, 77ULL, 20'26ULL}) {
      auto idx = make_slot_index(GetParam());
      std::map<data::SampleId, std::uint64_t> ref;
      std::mt19937_64 rng(seed);
      std::uniform_int_distribution<std::uint32_t> id_dist(0, id_range - 1);
      for (int op = 0; op < 20'000; ++op) {
        const auto id = static_cast<data::SampleId>(id_dist(rng));
        switch (rng() % 4) {
          case 0:
          case 1: {  // put (50%)
            const std::uint64_t v = rng();
            const bool was_new = ref.emplace(id, v).second;
            if (!was_new) ref[id] = v;
            EXPECT_EQ(idx->put(id, v), was_new);
            break;
          }
          case 2: {  // erase (25%)
            EXPECT_EQ(idx->erase(id), ref.erase(id) > 0);
            break;
          }
          default: {  // find (25%)
            std::uint64_t v = 0;
            const auto it = ref.find(id);
            EXPECT_EQ(idx->find(id, v), it != ref.end());
            if (it != ref.end()) EXPECT_EQ(v, it->second);
            break;
          }
        }
        EXPECT_EQ(idx->size(), ref.size());
      }
      // Full sweep at the end: every live key findable, with its value.
      for (const auto& [id, v] : ref) {
        std::uint64_t got = 0;
        ASSERT_TRUE(idx->find(id, got)) << "lost id " << id;
        EXPECT_EQ(got, v);
      }
    }
  }
}

TEST_P(SlotIndexBackends, StatsCountLookups) {
  auto idx = make_slot_index(GetParam());
  for (data::SampleId id = 0; id < 1'000; ++id) idx->put(id, id);
  const auto before = idx->stats();
  std::uint64_t v = 0;
  for (data::SampleId id = 0; id < 1'000; ++id) {
    ASSERT_TRUE(idx->find(id, v));
  }
  const auto after = idx->stats();
  EXPECT_EQ(after.lookups - before.lookups, 1'000U);
  EXPECT_GE(after.probes, before.probes);
}

// Sorted dense keys are the learned index's home turf: the piecewise-
// linear fit should cover a perfectly linear id space with one segment
// and near-zero last-mile probes per lookup.
TEST(LearnedSlotIndex, DenseSortedKeysLookupWithFewProbes) {
  auto idx = make_slot_index(SlotIndexKind::kLearned);
  constexpr std::size_t kN = 100'000;
  for (data::SampleId id = 0; id < kN; ++id) idx->put(id, id * 7);
  // Force the delta buffer into the learned core so lookups exercise the
  // piecewise-linear path rather than the delta hash.
  const auto s0 = idx->stats();
  EXPECT_GE(s0.rebuilds, 1U);
  std::uint64_t v = 0;
  for (data::SampleId id = 0; id < kN; ++id) {
    ASSERT_TRUE(idx->find(id, v));
    ASSERT_EQ(v, id * 7);
  }
  const auto s1 = idx->stats();
  const double probes_per_lookup =
      static_cast<double>(s1.probes - s0.probes) /
      static_cast<double>(s1.lookups - s0.lookups);
  // Bounded-error last-mile search: at most log2(2*eps+1) ~ 6 steps, and
  // on a perfectly linear space typically far fewer.
  EXPECT_LE(probes_per_lookup, 8.0);
}

TEST(LearnedSlotIndex, RebuildsAreAmortised) {
  auto idx = make_slot_index(SlotIndexKind::kLearned);
  for (data::SampleId id = 0; id < 200'000; ++id) {
    idx->put(id * 2, id);  // even ids, ascending
  }
  const auto s = idx->stats();
  // Geometric delta growth => O(log n) merges, not O(n).
  EXPECT_LE(s.rebuilds, 64U);
  EXPECT_EQ(idx->size(), 200'000U);
}

TEST(ScopedSlotIndexTest, SwitchesAndRestoresProcessDefault) {
  const auto base = slot_index_kind();
  {
    ScopedSlotIndex learned(SlotIndexKind::kLearned);
    EXPECT_EQ(slot_index_kind(), SlotIndexKind::kLearned);
    EXPECT_EQ(make_slot_index()->kind(), SlotIndexKind::kLearned);
    {
      ScopedSlotIndex hash(SlotIndexKind::kOpenAddressing);
      EXPECT_EQ(slot_index_kind(), SlotIndexKind::kOpenAddressing);
    }
    EXPECT_EQ(slot_index_kind(), SlotIndexKind::kLearned);
  }
  EXPECT_EQ(slot_index_kind(), base);
}

TEST(SlotIndexNames, ToStringRoundTrip) {
  EXPECT_EQ(to_string(SlotIndexKind::kOpenAddressing), "open_addressing");
  EXPECT_EQ(to_string(SlotIndexKind::kLearned), "learned");
}

}  // namespace
}  // namespace dshuf::io
