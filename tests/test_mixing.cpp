#include "shuffle/mixing.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "shuffle/shuffler.hpp"

namespace dshuf::shuffle {
namespace {

struct Fixture {
  data::InMemoryDataset dataset;
  std::vector<std::vector<SampleId>> shards;

  explicit Fixture(std::size_t workers = 8)
      : dataset(data::make_class_clusters({.num_classes = 8,
                                           .samples_per_class = 32,
                                           .feature_dim = 4,
                                           .seed = 3})) {
    Rng rng(5);
    shards = data::partition_dataset(dataset, workers,
                                     data::PartitionScheme::kClassSorted,
                                     rng);
  }
};

TEST(Mixing, LocalShufflingNeverMixes) {
  Fixture f;
  LocalShuffler ls(f.shards, 7);
  const auto trace = measure_mixing(ls, f.dataset, 8);
  // Skew stays at the initial (maximal) level; coverage stays at 1 shard.
  for (double s : trace.skew_per_epoch) EXPECT_GT(s, 0.8);
  for (double c : trace.coverage_per_epoch) EXPECT_DOUBLE_EQ(c, 1.0);
  EXPECT_NEAR(trace.skew_contraction, 1.0, 0.02);
}

TEST(Mixing, GlobalShufflingIsInstantlyMixed) {
  Fixture f;
  GlobalShuffler gs(f.dataset.size(), 8, 7);
  const auto trace = measure_mixing(gs, f.dataset, 4);
  // A fresh global permutation gives near-representative shards at once.
  for (double s : trace.skew_per_epoch) EXPECT_LT(s, 0.35);
  // Coverage grows past one shard immediately.
  EXPECT_GT(trace.coverage_per_epoch.back(), 2.0);
}

TEST(Mixing, PartialSkewContractsGeometricallyWithQ) {
  // Replacement theory predicts a contraction of (1 - Q) per epoch; the
  // measured rate is a little FASTER (the random picks add sampling
  // diffusion on top of pure replacement), so we pin the bracket
  // [(1-Q)^2, (1-Q)] and monotonicity in Q. Rate estimation needs a
  // larger population than the other tests: 32 workers over 32 classes.
  const auto dataset = data::make_class_clusters({.num_classes = 32,
                                                  .samples_per_class = 32,
                                                  .feature_dim = 4,
                                                  .seed = 3});
  double prev = 1.0;
  for (double q : {0.1, 0.3, 0.7}) {
    Rng rng(5);
    auto shards = data::partition_dataset(
        dataset, 32, data::PartitionScheme::kClassSorted, rng);
    PartialLocalShuffler pls(std::move(shards), q, 7);
    const auto trace = measure_mixing(pls, dataset, 14);
    EXPECT_LE(trace.skew_contraction, (1.0 - q) + 0.05) << "q=" << q;
    EXPECT_GE(trace.skew_contraction, (1.0 - q) * (1.0 - q) - 0.05)
        << "q=" << q;
    EXPECT_LT(trace.skew_contraction, prev) << "q=" << q;
    prev = trace.skew_contraction;
    // The trace decays toward its finite-sample floor (32 samples over 32
    // classes leave ~0.35 TV even when perfectly mixed), so compare
    // excess-above-floor, not raw values.
    double floor = trace.skew_per_epoch.front();
    for (double s : trace.skew_per_epoch) floor = std::min(floor, s);
    EXPECT_LT(trace.skew_per_epoch.back() - floor,
              0.5 * (trace.skew_per_epoch.front() - floor) + 1e-9)
        << "q=" << q;
  }
}

TEST(Mixing, HigherQMixesFaster) {
  Fixture f1;
  Fixture f2;
  PartialLocalShuffler slow(f1.shards, 0.1, 7);
  PartialLocalShuffler fast(f2.shards, 0.5, 7);
  const auto ts = measure_mixing(slow, f1.dataset, 10);
  const auto tf = measure_mixing(fast, f2.dataset, 10);
  EXPECT_LT(tf.skew_per_epoch.back(), ts.skew_per_epoch.back());
  EXPECT_GT(tf.coverage_per_epoch.back(), ts.coverage_per_epoch.back());
}

TEST(Mixing, CoverageIsMonotone) {
  Fixture f;
  PartialLocalShuffler pls(f.shards, 0.25, 7);
  const auto trace = measure_mixing(pls, f.dataset, 10);
  for (std::size_t e = 1; e < trace.coverage_per_epoch.size(); ++e) {
    EXPECT_GE(trace.coverage_per_epoch[e],
              trace.coverage_per_epoch[e - 1] - 1e-12);
  }
}

TEST(Mixing, ExpectedSkewClosedForm) {
  EXPECT_DOUBLE_EQ(expected_skew(1.0, 0.3, 0), 1.0);
  EXPECT_NEAR(expected_skew(0.9, 0.3, 5), 0.9 * std::pow(0.7, 5), 1e-12);
}

TEST(Mixing, RejectsZeroEpochs) {
  Fixture f;
  LocalShuffler ls(f.shards, 7);
  EXPECT_THROW(measure_mixing(ls, f.dataset, 0), CheckError);
}

}  // namespace
}  // namespace dshuf::shuffle
