#include "shuffle/shuffler.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

namespace dshuf::shuffle {
namespace {

std::vector<std::vector<SampleId>> make_shards(std::size_t n,
                                               std::size_t workers) {
  std::vector<std::vector<SampleId>> shards(workers);
  for (std::size_t i = 0; i < n; ++i) {
    shards[i % workers].push_back(static_cast<SampleId>(i));
  }
  return shards;
}

std::multiset<SampleId> all_ids(const Shuffler& s) {
  std::multiset<SampleId> ids;
  for (int w = 0; w < s.workers(); ++w) {
    for (auto id : s.local_order(w)) ids.insert(id);
  }
  return ids;
}

// ---------------------------------------------------------------- Global --

TEST(GlobalShuffler, EachEpochIsAPermutationOfTheDataset) {
  GlobalShuffler gs(100, 7, 5);
  for (std::size_t e = 0; e < 3; ++e) {
    gs.begin_epoch(e);
    const auto ids = all_ids(gs);
    EXPECT_EQ(ids.size(), 100U);
    EXPECT_EQ(std::set<SampleId>(ids.begin(), ids.end()).size(), 100U);
  }
}

TEST(GlobalShuffler, EpochsDiffer) {
  GlobalShuffler gs(64, 4, 5);
  gs.begin_epoch(0);
  const auto o0 = gs.local_order(0);
  gs.begin_epoch(1);
  EXPECT_NE(gs.local_order(0), o0);
}

TEST(GlobalShuffler, WorkerAssignmentsChangeAcrossEpochs) {
  // The whole point of global shuffling: a worker sees different samples
  // each epoch.
  GlobalShuffler gs(1000, 10, 5);
  gs.begin_epoch(0);
  std::set<SampleId> w0_e0(gs.local_order(0).begin(),
                           gs.local_order(0).end());
  gs.begin_epoch(1);
  std::size_t common = 0;
  for (auto id : gs.local_order(0)) common += w0_e0.count(id);
  EXPECT_LT(common, 40U);  // ~10 expected from 100 draws over 1000
}

TEST(GlobalShuffler, StridedDealBalances) {
  GlobalShuffler gs(103, 10, 5);  // non-divisible
  gs.begin_epoch(0);
  std::size_t mn = SIZE_MAX;
  std::size_t mx = 0;
  for (int w = 0; w < 10; ++w) {
    mn = std::min(mn, gs.local_order(w).size());
    mx = std::max(mx, gs.local_order(w).size());
  }
  EXPECT_LE(mx - mn, 1U);
}

// ----------------------------------------------------------------- Local --

TEST(LocalShuffler, ShardMultisetNeverChanges) {
  auto shards = make_shards(60, 5);
  const auto shard2 = std::set<SampleId>(shards[2].begin(), shards[2].end());
  LocalShuffler ls(std::move(shards), 5);
  for (std::size_t e = 0; e < 4; ++e) {
    ls.begin_epoch(e);
    const auto& order = ls.local_order(2);
    EXPECT_EQ(std::set<SampleId>(order.begin(), order.end()), shard2);
  }
}

TEST(LocalShuffler, OrderChangesAcrossEpochs) {
  LocalShuffler ls(make_shards(60, 2), 5);
  ls.begin_epoch(0);
  const auto o0 = ls.local_order(0);
  ls.begin_epoch(1);
  EXPECT_NE(ls.local_order(0), o0);
}

// --------------------------------------------------------------- Partial --

// Conservation property, swept over (workers, Q): the union of all shards
// is invariant under any number of exchange epochs — no sample is lost or
// duplicated.
class ConservationProperty
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(ConservationProperty, SampleMultisetInvariantOverEpochs) {
  const auto [workers, q] = GetParam();
  const std::size_t n = 96;
  PartialLocalShuffler pls(make_shards(n, workers), q, 11);
  std::multiset<SampleId> expected;
  for (std::size_t i = 0; i < n; ++i) {
    expected.insert(static_cast<SampleId>(i));
  }
  for (std::size_t e = 0; e < 5; ++e) {
    pls.begin_epoch(e);
    EXPECT_EQ(all_ids(pls), expected) << "epoch " << e;
  }
}

INSTANTIATE_TEST_SUITE_P(
    WorkersAndQ, ConservationProperty,
    ::testing::Combine(::testing::Values(1, 2, 4, 12, 32),
                       ::testing::Values(0.0, 0.05, 0.3, 0.7, 1.0)));

TEST(PartialLocalShuffler, ShardSizesStayBalanced) {
  PartialLocalShuffler pls(make_shards(100, 8), 0.4, 3);
  for (std::size_t e = 0; e < 4; ++e) {
    pls.begin_epoch(e);
    for (int w = 0; w < 8; ++w) {
      const auto sz = pls.local_order(w).size();
      EXPECT_TRUE(sz == 12 || sz == 13) << "worker " << w << " size " << sz;
    }
  }
}

TEST(PartialLocalShuffler, StatsReportBalancedVolumes) {
  PartialLocalShuffler pls(make_shards(120, 6), 0.25, 3);
  pls.begin_epoch(0);
  const auto* stats = pls.last_stats();
  ASSERT_NE(stats, nullptr);
  const std::size_t quota = exchange_quota(20, 0.25);  // 5
  for (std::size_t w = 0; w < 6; ++w) {
    EXPECT_EQ(stats->sent_per_worker[w], quota);
    EXPECT_EQ(stats->received_per_worker[w], quota);
    EXPECT_EQ(stats->local_reads_per_worker[w], 20 - quota);
  }
}

TEST(PartialLocalShuffler, StorageBoundIsOnePlusQ) {
  const double q = 0.3;
  PartialLocalShuffler pls(make_shards(80, 4), q, 3);
  for (std::size_t e = 0; e < 3; ++e) {
    pls.begin_epoch(e);
    const auto* stats = pls.last_stats();
    for (std::size_t w = 0; w < 4; ++w) {
      EXPECT_LE(stats->peak_occupancy_per_worker[w], pls_capacity(20, q));
      // The (1+Q) window is actually reached (adds before removes).
      EXPECT_EQ(stats->peak_occupancy_per_worker[w], 20 + 6);
    }
  }
}

TEST(PartialLocalShuffler, QZeroNeverExchanges) {
  PartialLocalShuffler pls(make_shards(40, 4), 0.0, 3);
  const auto initial = make_shards(40, 4);
  for (std::size_t e = 0; e < 3; ++e) {
    pls.begin_epoch(e);
    EXPECT_EQ(pls.last_stats()->total_sent(), 0U);
    for (int w = 0; w < 4; ++w) {
      const auto& order = pls.local_order(w);
      EXPECT_EQ(std::set<SampleId>(order.begin(), order.end()),
                std::set<SampleId>(initial[w].begin(), initial[w].end()));
    }
  }
}

TEST(PartialLocalShuffler, QOneExchangesEverySample) {
  PartialLocalShuffler pls(make_shards(48, 4), 1.0, 3);
  pls.begin_epoch(0);
  const auto* stats = pls.last_stats();
  for (std::size_t w = 0; w < 4; ++w) {
    EXPECT_EQ(stats->sent_per_worker[w], 12U);
    EXPECT_EQ(stats->local_reads_per_worker[w], 0U);
  }
}

TEST(PartialLocalShuffler, ShardsActuallyMixOverEpochs) {
  const std::size_t n = 128;
  auto shards = make_shards(n, 8);
  const std::set<SampleId> w0_initial(shards[0].begin(), shards[0].end());
  PartialLocalShuffler pls(std::move(shards), 0.2, 7);
  for (std::size_t e = 0; e < 10; ++e) pls.begin_epoch(e);
  const auto& order = pls.local_order(0);
  std::size_t still_original = 0;
  for (auto id : order) still_original += w0_initial.count(id);
  // After 10 epochs of 20% exchange, most of the original shard is gone.
  EXPECT_LT(still_original, 10U);
}

TEST(PartialLocalShuffler, DeterministicForSeed) {
  PartialLocalShuffler a(make_shards(64, 4), 0.25, 99);
  PartialLocalShuffler b(make_shards(64, 4), 0.25, 99);
  for (std::size_t e = 0; e < 3; ++e) {
    a.begin_epoch(e);
    b.begin_epoch(e);
    for (int w = 0; w < 4; ++w) {
      EXPECT_EQ(a.local_order(w), b.local_order(w));
    }
  }
}

TEST(PartialLocalShuffler, LabelReflectsQ) {
  PartialLocalShuffler pls(make_shards(16, 2), 0.25, 1);
  EXPECT_EQ(pls.label(), "partial-0.25");
}

TEST(PartialLocalShuffler, SingleWorkerDegeneratesToLocal) {
  PartialLocalShuffler pls(make_shards(16, 1), 0.5, 1);
  pls.begin_epoch(0);
  EXPECT_EQ(pls.local_order(0).size(), 16U);
  EXPECT_EQ(pls.last_stats()->total_sent(), 0U);
}

TEST(PartialLocalShuffler, RejectsInvalidQ) {
  EXPECT_THROW(PartialLocalShuffler(make_shards(16, 2), 1.5, 1), CheckError);
  EXPECT_THROW(PartialLocalShuffler(make_shards(16, 2), -0.1, 1), CheckError);
}

TEST(Factory, BuildsAllStrategies) {
  auto g = make_shuffler(Strategy::kGlobal, 0, 32, make_shards(32, 4), 1);
  auto l = make_shuffler(Strategy::kLocal, 0, 32, make_shards(32, 4), 1);
  auto p = make_shuffler(Strategy::kPartial, 0.5, 32, make_shards(32, 4), 1);
  EXPECT_EQ(g->label(), "global");
  EXPECT_EQ(l->label(), "local");
  EXPECT_EQ(p->label(), "partial-0.5");
  for (auto* s : {g.get(), l.get(), p.get()}) {
    s->begin_epoch(0);
    EXPECT_EQ(all_ids(*s).size(), 32U);
  }
}

TEST(StrategyStrings, RoundTrip) {
  for (auto s : {Strategy::kGlobal, Strategy::kLocal, Strategy::kPartial}) {
    EXPECT_EQ(parse_strategy(to_string(s)), s);
  }
  EXPECT_THROW(parse_strategy("bogus"), CheckError);
}

}  // namespace
}  // namespace dshuf::shuffle
