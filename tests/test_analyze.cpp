// Unit tests for the dshuf_analyze cross-TU analyzer (tools/dshuf_analyze).
//
// Every "bad" snippet lives inside a string literal, which the analyzer's
// own scrubber blanks out — so scanning this test file with dshuf_analyze
// stays clean while the passes are still exercised end to end. Snippets
// use `src/...` paths because findings only fire for the src tree.
#include "index.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "passes.hpp"
#include "report.hpp"
#include "source_model.hpp"

namespace dshuf::analyze {
namespace {

ProjectIndex index_of(
    const std::vector<std::pair<std::string, std::string>>& files) {
  std::vector<SourceFile> sf;
  for (const auto& [path, content] : files) {
    sf.push_back(make_source_file(path, content));
  }
  return build_index(std::move(sf));
}

bool has_rule(const std::vector<Finding>& fs, const std::string& rule) {
  return std::any_of(fs.begin(), fs.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

const Finding* find_rule(const std::vector<Finding>& fs,
                         const std::string& rule) {
  for (const Finding& f : fs) {
    if (f.rule == rule) return &f;
  }
  return nullptr;
}

// The LockRank universe every snippet below shares; parsed from the
// scanned text itself, exactly as fixtures carry their own.
const char* kRanks =
    "enum class LockRank : int {\n"
    "  kTaskScheduler = 5,\n"
    "  kCommMailbox = 10,\n"
    "  kFileStore = 40,\n"
    "  kLog = 50,\n"
    "};\n"
    "class RankedMutex {};\n";

// ------------------------------------------------------------- tokenizer

TEST(AnalyzeTokenize, FusesScopeAndArrowOnly) {
  const auto toks = tokenize("a::b->c < d >> e");
  std::vector<std::string> texts;
  for (const auto& t : toks) texts.push_back(t.text);
  const std::vector<std::string> want = {"a", "::", "b", "->", "c",
                                         "<", "d",  ">",  ">",  "e"};
  EXPECT_EQ(texts, want);
}

TEST(AnalyzeTokenize, TracksLineNumbers) {
  const auto toks = tokenize("a\nb\n\nc");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[2].line, 4);
}

// ----------------------------------------------------------------- index

TEST(AnalyzeIndex, FindsFunctionsMutexesAndAtomics) {
  const std::string src = std::string(kRanks) +
      "std::atomic<bool> stop_{false};\n"
      "std::condition_variable cv_;\n"
      "class Store {\n"
      " public:\n"
      "  void put() {}\n"
      "  RankedMutex mu_{LockRank::kFileStore, \"store\"};\n"
      "};\n"
      "void Store::get() {}\n"
      "int free_fn() { return 1; }\n";
  const ProjectIndex idx = index_of({{"src/x/a.cpp", src}});

  EXPECT_EQ(idx.rank_values.at("kFileStore"), 40);
  EXPECT_EQ(idx.atomic_names.count("stop_"), 1u);
  EXPECT_EQ(idx.cv_names.count("cv_"), 1u);
  ASSERT_EQ(idx.mutexes.size(), 1u);
  EXPECT_EQ(idx.mutexes[0].owner, "Store");
  EXPECT_EQ(idx.mutexes[0].rank, 40);
  EXPECT_EQ(idx.mutexes[0].label, "store");

  std::vector<std::string> names;
  for (const auto& fn : idx.functions) {
    names.push_back(fn.qual.empty() ? fn.name : fn.qual + "::" + fn.name);
  }
  EXPECT_NE(std::find(names.begin(), names.end(), "Store::put"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "Store::get"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "free_fn"), names.end());
}

TEST(AnalyzeIndex, TypesVariablesButNotFunctionDeclarations) {
  const std::string src =
      "class Store {};\n"
      "Store direct_var;\n"
      "std::shared_ptr<Store> wrapped_var;\n"
      "Store ctor_var(1, 2);\n"
      "Store& accessor() { static Store s; return s; }\n";
  const ProjectIndex idx = index_of({{"src/x/a.cpp", src}});
  EXPECT_EQ(idx.var_class.at("direct_var").count("Store"), 1u);
  EXPECT_EQ(idx.var_class.at("wrapped_var").count("Store"), 1u);
  EXPECT_EQ(idx.var_class.at("ctor_var").count("Store"), 1u);
  // `Store& accessor() {` is a function definition, not a variable.
  EXPECT_EQ(idx.var_class.count("accessor"), 0u);
}

TEST(AnalyzeIndex, NoallocMarkerAttachesToNextDefinition) {
  const std::string src =
      "#define DSHUF_NOALLOC\n"
      "void cold() {}\n"
      "DSHUF_NOALLOC void hot() {}\n";
  const ProjectIndex idx = index_of({{"src/x/a.cpp", src}});
  for (const auto& fn : idx.functions) {
    EXPECT_EQ(fn.noalloc, fn.name == "hot") << fn.name;
  }
}

TEST(AnalyzeIndex, ResolveCallNeverCrossesTypedReceiver) {
  const std::string src =
      "class A { public: void go() {} };\n"
      "class B { public: void go() {} };\n"
      "void go() {}\n"
      "A a_var;\n";
  const ProjectIndex idx = index_of({{"src/x/a.cpp", src}});
  // Typed receiver: only A::go, even though B::go and ::go exist.
  const auto via_a = resolve_call(idx, "go", "a_var", "", 0);
  ASSERT_EQ(via_a.size(), 1u);
  EXPECT_EQ(idx.functions[static_cast<std::size_t>(via_a[0])].qual, "A");
  // Untyped receiver + ambiguous method: resolves to nothing rather than
  // to the union (documented under-approximation).
  EXPECT_TRUE(resolve_call(idx, "go", "mystery", "", 0).empty());
}

// ---------------------------------------------------------------- passes

TEST(AnalyzePasses, LockOrderFlagsDescendingAcquireAcrossFiles) {
  const std::string lib = std::string(kRanks) +
      "class Mailbox {\n"
      " public:\n"
      "  void deliver();\n"
      "  RankedMutex mu{LockRank::kCommMailbox, \"mb\"};\n"
      "};\n"
      "void Mailbox::deliver() { std::lock_guard<RankedMutex> lk(mu); }\n";
  const std::string use =
      "class Walker {\n"
      " public:\n"
      "  void walk(Mailbox& box) {\n"
      "    std::lock_guard<RankedMutex> lk(mu_);\n"
      "    box.deliver();\n"
      "  }\n"
      "  RankedMutex mu_{LockRank::kFileStore, \"walker\"};\n"
      "};\n";
  const AnalysisResult res = run_passes(
      index_of({{"src/x/lib.cpp", lib}, {"src/x/use.cpp", use}}));
  const Finding* f = find_rule(res.findings, "lock-order");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->file, "src/x/use.cpp");
  EXPECT_FALSE(f->chain.empty());  // witness through Mailbox::deliver
  // The 40 -> 10 edge is recorded and marked violating.
  const bool violating_edge = std::any_of(
      res.edges.begin(), res.edges.end(), [](const LockOrderEdge& e) {
        return e.from_rank == 40 && e.to_rank == 10 && e.violation;
      });
  EXPECT_TRUE(violating_edge);
}

TEST(AnalyzePasses, BlockingUnderLockSeesFileIoAndForeignCvWaits) {
  const std::string src = std::string(kRanks) +
      "class Loader {\n"
      " public:\n"
      "  void bad() {\n"
      "    std::lock_guard<RankedMutex> lk(mu_);\n"
      "    std::ifstream in(\"f.txt\");\n"
      "  }\n"
      "  void fine() {\n"
      "    std::unique_lock<RankedMutex> lk(mu_);\n"
      "    cv_.wait(lk);\n"
      "  }\n"
      "  RankedMutex mu_{LockRank::kFileStore, \"loader\"};\n"
      "  std::condition_variable_any cv_;\n"
      "};\n";
  const AnalysisResult res = run_passes(index_of({{"src/x/a.cpp", src}}));
  // The ifstream under mu_ is a finding; the cv wait is not (it releases
  // its own guard's mutex and holds nothing else).
  ASSERT_TRUE(has_rule(res.findings, "blocking-under-lock"));
  std::size_t count = 0;
  for (const auto& f : res.findings) {
    if (f.rule == "blocking-under-lock") ++count;
  }
  EXPECT_EQ(count, 1u);
}

TEST(AnalyzePasses, AtomicsRequireExplicitProfiledOrders) {
  const std::string src =
      "std::atomic<int> n_{0};\n"
      "void f() {\n"
      "  n_.store(1);\n"
      "  n_.store(2, std::memory_order_consume);\n"
      "  n_.store(3, std::memory_order_seq_cst);\n"
      "}\n";
  const AnalysisResult res = run_passes(index_of({{"src/x/a.cpp", src}}));
  EXPECT_TRUE(has_rule(res.findings, "implicit-memory-order"));
  EXPECT_TRUE(has_rule(res.findings, "memory-order-profile"));
  std::size_t atomics = 0;
  for (const auto& f : res.findings) {
    if (f.pass == "atomics") ++atomics;
  }
  EXPECT_EQ(atomics, 2u);  // the explicit seq_cst store is clean
}

TEST(AnalyzePasses, NoallocWalksTheCallGraphAndHonoursWaivers) {
  const std::string src =
      "#define DSHUF_NOALLOC\n"
      "void helper(std::vector<int>& v) { v.push_back(1); }\n"
      "void pooled(std::vector<int>& v) {\n"
      "  // analyze:alloc-ok buffer reserved ahead of the steady state\n"
      "  v.push_back(2);\n"
      "}\n"
      "DSHUF_NOALLOC void hot(std::vector<int>& v) {\n"
      "  helper(v);\n"
      "  pooled(v);\n"
      "}\n";
  const AnalysisResult res = run_passes(index_of({{"src/x/a.cpp", src}}));
  const Finding* f = find_rule(res.findings, "noalloc");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->line, 2u);  // helper's push_back; pooled's is waived
  std::size_t count = 0;
  for (const auto& fd : res.findings) {
    if (fd.rule == "noalloc") ++count;
  }
  EXPECT_EQ(count, 1u);
}

// ---------------------------------------------------------------- report

TEST(AnalyzeReport, GoldenJson) {
  Finding f;
  f.file = "src/x/a.cpp";
  f.line = 7;
  f.pass = "lock-order";
  f.rule = "lock-order";
  f.message = "acquires \"b\" while holding a";
  f.chain = {"A::f (src/x/a.cpp:3)"};
  LockOrderEdge e;
  e.from_rank = 40;
  e.from_name = "kFileStore";
  e.to_rank = 10;
  e.to_name = "kCommMailbox";
  e.via = "A::f (src/x/a.cpp:3)";
  e.violation = true;
  const std::string got = render_json({f}, {e}, 2);
  const std::string want =
      "{\n"
      "  \"schema\": \"dshuf.analyze.v1\",\n"
      "  \"files_scanned\": 2,\n"
      "  \"findings\": [\n"
      "    {\"file\": \"src/x/a.cpp\", \"line\": 7, "
      "\"pass\": \"lock-order\", \"rule\": \"lock-order\", "
      "\"message\": \"acquires \\\"b\\\" while holding a\", "
      "\"chain\": [\"A::f (src/x/a.cpp:3)\"]}\n"
      "  ],\n"
      "  \"lock_order_edges\": [\n"
      "    {\"from_rank\": 40, \"from\": \"kFileStore\", "
      "\"to_rank\": 10, \"to\": \"kCommMailbox\", "
      "\"via\": \"A::f (src/x/a.cpp:3)\", \"violation\": true}\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(got, want);
}

TEST(AnalyzeReport, BaselineFiltersByRuleFileAndMessage) {
  Finding f;
  f.file = "src/x/a.cpp";
  f.line = 7;
  f.rule = "noalloc";
  f.message = "allocation (new)";
  const Baseline base = {baseline_key(f)};
  EXPECT_TRUE(apply_baseline({f}, base).empty());
  f.line = 99;  // line changes must not churn the baseline
  EXPECT_TRUE(apply_baseline({f}, base).empty());
  f.message = "allocation (malloc)";
  EXPECT_EQ(apply_baseline({f}, base).size(), 1u);
}

}  // namespace
}  // namespace dshuf::analyze
