// Chaos tests for the robust PLS exchange: seeded fault schedules swept
// over the harness of chaos_harness.hpp, asserting the protocol's core
// invariants (equivalence, conservation, balance, determinism).
#include "chaos_harness.hpp"

#include <gtest/gtest.h>

namespace dshuf::chaos {
namespace {

// ---------------------------------------------------------------------------
// Equivalence: faults that never LOSE a message (delay, reorder, duplicate)
// must leave the result bit-identical to the sequential PartialLocalShuffler
// — retries, duplicate suppression, and late arrivals are all invisible.

comm::FaultSpec no_drop_spec() {
  comm::FaultSpec spec;
  spec.delay_prob = 0.6;
  spec.min_delay_us = 100;
  spec.max_delay_us = 8'000;  // << the 40 ms ack_timeout margin
  spec.dup_prob = 0.3;
  return spec;
}

TEST(ChaosExchange, DelayReorderDupKeepsBitIdenticalShards) {
  for (int m : {2, 4, 7}) {
    for (double q : {0.3, 1.0}) {
      for (std::uint64_t fault_seed : {1ULL, 42ULL}) {
        ChaosConfig cfg;
        cfg.n = static_cast<std::size_t>(m) * 12;
        cfg.m = m;
        cfg.q = q;
        cfg.epochs = 2;
        cfg.seed = 20'22;
        cfg.fault_seed = fault_seed;
        cfg.spec = no_drop_spec();
        const auto result = run_chaos_exchange(cfg);
        const auto reference = sequential_reference(cfg);
        EXPECT_EQ(result.shards, reference)
            << "m=" << m << " q=" << q << " fault_seed=" << fault_seed;
        expect_conservation(result.shards, cfg.n);
        // Without drops every round commits on both sides.
        for (const auto& per_rank : result.outcomes) {
          for (const auto& o : per_rank) {
            EXPECT_EQ(o.sends_committed, o.rounds);
            EXPECT_EQ(o.recvs_committed, o.rounds);
            EXPECT_EQ(o.send_fallbacks, 0U);
            EXPECT_EQ(o.recv_fallbacks, 0U);
          }
        }
      }
    }
  }
}

TEST(ChaosExchange, PureDelayInjectsAndStillMatches) {
  ChaosConfig cfg;
  cfg.spec.delay_prob = 1.0;
  cfg.spec.min_delay_us = 500;
  cfg.spec.max_delay_us = 10'000;
  const auto result = run_chaos_exchange(cfg);
  EXPECT_GT(result.faults.delayed, 0U);
  EXPECT_EQ(result.shards, sequential_reference(cfg));
}

TEST(ChaosExchange, StalledRanksStillMatch) {
  // A stall is one long per-rank delay; with the 800 ms receive deadline it
  // only slows the epoch, never changes its outcome.
  ChaosConfig cfg;
  cfg.m = 4;
  cfg.spec.stall_prob = 0.5;
  cfg.spec.stall_us = 60'000;
  const auto result = run_chaos_exchange(cfg);
  EXPECT_GT(result.faults.stalled, 0U);
  EXPECT_EQ(result.shards, sequential_reference(cfg));
}

TEST(ChaosExchange, FaultFreeRobustPathMatchesSequentialDriver) {
  // The DATA/ACK + reconciliation protocol itself must be a no-op wrapper
  // when nothing goes wrong.
  ChaosConfig cfg;
  cfg.m = 5;
  cfg.n = 60;
  cfg.q = 0.4;
  cfg.epochs = 3;
  const auto result = run_chaos_exchange(cfg);  // zero FaultSpec
  EXPECT_EQ(result.shards, sequential_reference(cfg));
  EXPECT_EQ(result.faults.dropped, 0U);
  for (const auto& per_rank : result.outcomes) {
    for (const auto& o : per_rank) EXPECT_EQ(o.retries, 0U);
  }
}

// ---------------------------------------------------------------------------
// Drops: rounds may fail, but no sample may ever be lost or duplicated, the
// per-epoch drift stays within the quota, and the epoch terminates inside
// its deadline budget.

TEST(ChaosExchange, DropsConserveEverySample) {
  for (std::uint64_t fault_seed : {3ULL, 17ULL, 99ULL}) {
    ChaosConfig cfg;
    cfg.m = 4;
    cfg.n = 48;
    cfg.q = 0.5;
    cfg.epochs = 3;
    cfg.fault_seed = fault_seed;
    cfg.spec.drop_prob = 0.3;
    cfg.unlimited_capacity = true;
    const auto result = run_chaos_exchange(cfg);
    expect_conservation(result.shards, cfg.n);
    expect_balance_bound(result);
    EXPECT_GT(result.faults.dropped, 0U) << "fault_seed=" << fault_seed;
    // Retries must be doing real work under a 30% drop rate.
    std::size_t retries = 0;
    for (const auto& per_rank : result.outcomes) {
      for (const auto& o : per_rank) retries += o.retries;
    }
    EXPECT_GT(retries, 0U);
  }
}

TEST(ChaosExchange, SendAndRecvFallbacksAgree) {
  // Global bookkeeping must balance: every round is either committed or
  // fallen back on BOTH sides, and the totals line up — receiver commits
  // equal sender commits, receiver fallbacks equal sender fallbacks.
  ChaosConfig cfg;
  cfg.m = 4;
  cfg.n = 48;
  cfg.q = 0.5;
  cfg.fault_seed = 7;
  cfg.spec.drop_prob = 0.5;
  cfg.unlimited_capacity = true;
  const auto result = run_chaos_exchange(cfg);
  expect_conservation(result.shards, cfg.n);
  for (const auto& per_rank : result.outcomes) {
    std::size_t sends = 0;
    std::size_t recvs = 0;
    std::size_t sfall = 0;
    std::size_t rfall = 0;
    for (const auto& o : per_rank) {
      EXPECT_EQ(o.sends_committed + o.send_fallbacks, o.rounds);
      EXPECT_EQ(o.recvs_committed + o.recv_fallbacks, o.rounds);
      sends += o.sends_committed;
      recvs += o.recvs_committed;
      sfall += o.send_fallbacks;
      rfall += o.recv_fallbacks;
    }
    EXPECT_EQ(sends, recvs) << "a sample committed on only one side";
    EXPECT_EQ(sfall, rfall);
  }
}

TEST(ChaosExchange, HeavyDropStillTerminatesAndConserves) {
  // At 90% drop most rounds exhaust their whole retry budget; the epoch
  // must still terminate within the deadline budget (ctest enforces the
  // wall-clock cap) and keep every sample somewhere.
  ChaosConfig cfg;
  cfg.m = 3;
  cfg.n = 24;
  cfg.q = 1.0;
  cfg.epochs = 2;
  cfg.fault_seed = 5;
  cfg.spec.drop_prob = 0.9;
  cfg.unlimited_capacity = true;
  const auto result = run_chaos_exchange(cfg);
  expect_conservation(result.shards, cfg.n);
  expect_balance_bound(result);
  std::size_t fallbacks = 0;
  for (const auto& per_rank : result.outcomes) {
    for (const auto& o : per_rank) fallbacks += o.send_fallbacks;
  }
  EXPECT_GT(fallbacks, 0U);
}

TEST(ChaosExchange, MixedFaultsConserve) {
  ChaosConfig cfg;
  cfg.m = 5;
  cfg.n = 60;
  cfg.q = 0.4;
  cfg.epochs = 2;
  cfg.fault_seed = 23;
  cfg.spec.drop_prob = 0.2;
  cfg.spec.dup_prob = 0.2;
  cfg.spec.delay_prob = 0.4;
  cfg.spec.min_delay_us = 100;
  cfg.spec.max_delay_us = 5'000;
  cfg.unlimited_capacity = true;
  const auto result = run_chaos_exchange(cfg);
  expect_conservation(result.shards, cfg.n);
  expect_balance_bound(result);
}

// ---------------------------------------------------------------------------
// Determinism: the whole chaos run is a function of (shuffle seed, fault
// seed) — rerunning it must reproduce shards AND bookkeeping exactly.

TEST(ChaosExchange, SameSeedsReproduceExactly) {
  ChaosConfig cfg;
  cfg.m = 4;
  cfg.n = 48;
  cfg.q = 0.5;
  cfg.epochs = 2;
  cfg.fault_seed = 11;
  cfg.spec.drop_prob = 0.3;
  cfg.spec.dup_prob = 0.2;
  cfg.spec.delay_prob = 0.3;
  cfg.spec.min_delay_us = 100;
  cfg.spec.max_delay_us = 4'000;
  cfg.unlimited_capacity = true;

  const auto a = run_chaos_exchange(cfg);
  const auto b = run_chaos_exchange(cfg);
  EXPECT_EQ(a.shards, b.shards);
  EXPECT_EQ(a.sizes_per_epoch, b.sizes_per_epoch);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t e = 0; e < a.outcomes.size(); ++e) {
    for (std::size_t w = 0; w < a.outcomes[e].size(); ++w) {
      EXPECT_EQ(a.outcomes[e][w].sends_committed,
                b.outcomes[e][w].sends_committed);
      EXPECT_EQ(a.outcomes[e][w].send_fallbacks,
                b.outcomes[e][w].send_fallbacks);
      EXPECT_EQ(a.outcomes[e][w].recvs_committed,
                b.outcomes[e][w].recvs_committed);
      EXPECT_EQ(a.outcomes[e][w].recv_fallbacks,
                b.outcomes[e][w].recv_fallbacks);
    }
  }
  EXPECT_EQ(a.faults.dropped, b.faults.dropped);
  EXPECT_EQ(a.faults.duplicated, b.faults.duplicated);

  // ...and a different fault seed must yield a different schedule.
  ChaosConfig other = cfg;
  other.fault_seed = 12;
  const auto c = run_chaos_exchange(other);
  expect_conservation(c.shards, other.n);
  EXPECT_NE(a.faults.dropped, c.faults.dropped);
}

// ---------------------------------------------------------------------------
// Wire modes: every chaos invariant must hold under BOTH encodings. For
// fault schedules that never drop, both wires must match the sequential
// driver (and therefore each other) bit-for-bit. Under drops the wires
// carry different tag streams, so the injector makes different per-message
// decisions and the shards legitimately diverge across modes — there the
// bar is per-mode determinism plus conservation.

TEST(ChaosExchangeWire, NoDropFaultsMatchSequentialUnderBothWires) {
  std::vector<std::size_t> msgs_by_mode;
  for (const shuffle::ExchangeWire wire :
       {shuffle::ExchangeWire::kPerSample,
        shuffle::ExchangeWire::kCoalesced}) {
    SCOPED_TRACE(shuffle::to_string(wire));
    ChaosConfig cfg;
    cfg.m = 4;
    cfg.n = 48;
    cfg.q = 0.5;
    cfg.epochs = 2;
    cfg.fault_seed = 21;
    cfg.spec = no_drop_spec();
    cfg.wire = wire;
    const auto result = run_chaos_exchange(cfg);
    // The sequential reference knows nothing about wires; matching it
    // under both modes proves the modes match each other too.
    EXPECT_EQ(result.shards, sequential_reference(cfg));
    expect_conservation(result.shards, cfg.n);
    std::size_t msgs = 0;
    for (const auto& per_rank : result.outcomes) {
      for (const auto& o : per_rank) msgs += o.msgs_sent;
    }
    msgs_by_mode.push_back(msgs);
  }
  // Coalescing is the point: same work, strictly fewer messages.
  ASSERT_EQ(msgs_by_mode.size(), 2U);
  EXPECT_LT(msgs_by_mode[1], msgs_by_mode[0]);
}

TEST(ChaosExchangeWire, DropsConserveAndReplayUnderBothWires) {
  for (const shuffle::ExchangeWire wire :
       {shuffle::ExchangeWire::kPerSample,
        shuffle::ExchangeWire::kCoalesced}) {
    SCOPED_TRACE(shuffle::to_string(wire));
    ChaosConfig cfg;
    cfg.m = 4;
    cfg.n = 48;
    cfg.q = 0.5;
    cfg.epochs = 3;
    cfg.fault_seed = 31;
    cfg.spec.drop_prob = 0.3;
    cfg.spec.dup_prob = 0.2;
    cfg.unlimited_capacity = true;
    cfg.wire = wire;
    const auto a = run_chaos_exchange(cfg);
    expect_conservation(a.shards, cfg.n);
    expect_balance_bound(a);
    // Same seeds, same wire -> exact replay, bookkeeping included.
    const auto b = run_chaos_exchange(cfg);
    EXPECT_EQ(a.shards, b.shards);
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (std::size_t e = 0; e < a.outcomes.size(); ++e) {
      for (std::size_t w = 0; w < a.outcomes[e].size(); ++w) {
        EXPECT_EQ(a.outcomes[e][w].sends_committed,
                  b.outcomes[e][w].sends_committed);
        EXPECT_EQ(a.outcomes[e][w].send_fallbacks,
                  b.outcomes[e][w].send_fallbacks);
        EXPECT_EQ(a.outcomes[e][w].recvs_committed,
                  b.outcomes[e][w].recvs_committed);
        EXPECT_EQ(a.outcomes[e][w].recv_fallbacks,
                  b.outcomes[e][w].recv_fallbacks);
        EXPECT_EQ(a.outcomes[e][w].retries, b.outcomes[e][w].retries);
      }
    }
  }
}

// The exchange also carries real payloads; faults must not corrupt the
// id -> payload association.
TEST(ChaosExchange, PayloadsFollowTheirSamples) {
  const std::size_t n = 32;
  const int m = 4;
  auto shards = make_shards(n, m);
  std::vector<shuffle::ShardStore> stores;
  for (auto& s : shards) stores.emplace_back(std::move(s), 0);

  comm::FaultSpec spec = no_drop_spec();
  comm::World world(m);
  world.set_fault_plan(comm::FaultPlan(9, spec));
  const auto robust = default_robustness();

  std::vector<std::vector<std::pair<shuffle::SampleId, std::uint8_t>>>
      deposited(m);
  world.run([&](comm::Communicator& c) {
    auto& store = stores[static_cast<std::size_t>(c.rank())];
    auto payload = [](shuffle::SampleId id, std::vector<std::byte>& out) {
      // One marker byte derived from the id.
      out.push_back(std::byte{static_cast<std::uint8_t>(id * 7 + 3)});
    };
    auto deposit = [&](shuffle::SampleId id,
                       std::span<const std::byte> body) {
      ASSERT_EQ(body.size(), 1U);
      deposited[static_cast<std::size_t>(c.rank())].emplace_back(
          id, static_cast<std::uint8_t>(body[0]));
    };
    shuffle::run_pls_exchange_epoch(c, store, 1, 0, 0.5, n / m, payload,
                                    deposit, &robust);
  });
  for (const auto& per_rank : deposited) {
    EXPECT_FALSE(per_rank.empty());
    for (const auto& [id, marker] : per_rank) {
      EXPECT_EQ(marker, static_cast<std::uint8_t>(id * 7 + 3));
    }
  }
}

}  // namespace
}  // namespace dshuf::chaos
