#include "data/batch_loader.hpp"

#include <chrono>
#include <filesystem>
#include <thread>

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "io/file_store.hpp"
#include "io/mmap_store.hpp"

namespace dshuf::data {
namespace {

InMemoryDataset make_ds() {
  return make_class_clusters({.num_classes = 4,
                              .samples_per_class = 16,
                              .feature_dim = 5,
                              .seed = 2});
}

std::vector<SampleId> iota_order(std::size_t n) {
  std::vector<SampleId> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<SampleId>(i);
  return order;
}

TEST(BatchLoader, YieldsSameBatchesAsDirectGather) {
  const auto ds = make_ds();
  const auto order = iota_order(ds.size());
  BatchLoader loader(ds, order, 8);
  EXPECT_EQ(loader.num_batches(), 8U);
  for (std::size_t b = 0; b < 8; ++b) {
    auto batch = loader.next();
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->index, b);
    const std::span<const SampleId> ids(order.data() + b * 8, 8);
    const Tensor expected = ds.gather(ids);
    EXPECT_EQ(batch->features.vec(), expected.vec());
    EXPECT_EQ(batch->labels, ds.gather_labels(ids));
  }
  EXPECT_FALSE(loader.next().has_value());
  EXPECT_FALSE(loader.next().has_value());  // stays exhausted
}

TEST(BatchLoader, DropLastSemantics) {
  const auto ds = make_ds();  // 64 samples
  BatchLoader loader(ds, iota_order(ds.size()), 10);
  EXPECT_EQ(loader.num_batches(), 6U);  // 64 / 10, last 4 dropped
  std::size_t count = 0;
  while (loader.next()) ++count;
  EXPECT_EQ(count, 6U);
}

TEST(BatchLoader, BatchLargerThanOrderYieldsNothing) {
  const auto ds = make_ds();
  BatchLoader loader(ds, iota_order(4), 8);
  EXPECT_EQ(loader.num_batches(), 0U);
  EXPECT_FALSE(loader.next().has_value());
}

TEST(BatchLoader, SlowConsumerDoesNotLoseBatches) {
  const auto ds = make_ds();
  BatchLoader loader(ds, iota_order(ds.size()), 4, /*prefetch_depth=*/2);
  std::size_t seen = 0;
  while (auto batch = loader.next()) {
    EXPECT_EQ(batch->index, seen);
    ++seen;
    if (seen % 4 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  EXPECT_EQ(seen, 16U);
}

TEST(BatchLoader, DestructorJoinsWithUnconsumedBatches) {
  const auto ds = make_ds();
  // Construct and immediately destroy with the producer mid-flight.
  for (int i = 0; i < 20; ++i) {
    BatchLoader loader(ds, iota_order(ds.size()), 4);
    if (i % 2 == 0) loader.next();  // sometimes consume one
  }
  SUCCEED();
}

TEST(BatchLoader, RejectsZeroBatch) {
  const auto ds = make_ds();
  EXPECT_THROW(BatchLoader(ds, iota_order(8), 0), CheckError);
}

// Store-backed assembly: rows decoded from a SampleSource's zero-copy
// span reads must be bit-identical to gathering the same ids straight
// from the dataset — for both SampleStore implementations.
TEST(BatchLoader, StoreBackedBatchesMatchDirectGather) {
  namespace fs = std::filesystem;
  const auto ds = make_ds();
  const auto order = iota_order(ds.size());
  const fs::path root =
      fs::temp_directory_path() /
      ("dshuf_loader_store_" + std::to_string(::getpid()));
  fs::remove_all(root);

  const auto check = [&](const SampleSource& source) {
    BatchLoader loader(source, ds.feature_dim(), order, 8);
    for (std::size_t b = 0; b < loader.num_batches(); ++b) {
      auto batch = loader.next();
      ASSERT_TRUE(batch.has_value());
      const std::span<const SampleId> ids(order.data() + b * 8, 8);
      EXPECT_EQ(batch->features.vec(), ds.gather(ids).vec());
      EXPECT_EQ(batch->labels, ds.gather_labels(ids));
    }
    EXPECT_FALSE(loader.next().has_value());
  };

  {
    io::FileSampleStore store(root / "file");
    for (SampleId id = 0; id < ds.size(); ++id) {
      store.save(id, io::serialize_sample(ds, id));
    }
    check(store);
  }
  {
    io::MmapSampleStore store(root / "mmap");
    for (SampleId id = 0; id < ds.size(); ++id) {
      store.save(id, io::serialize_sample(ds, id));
    }
    check(store);
  }
  fs::remove_all(root);
}

TEST(BatchLoader, RespectsCustomOrder) {
  const auto ds = make_ds();
  std::vector<SampleId> order{5, 3, 9, 1};
  BatchLoader loader(ds, order, 2);
  auto b0 = loader.next();
  ASSERT_TRUE(b0.has_value());
  EXPECT_EQ(b0->labels[0], ds.label(5));
  EXPECT_EQ(b0->labels[1], ds.label(3));
  auto b1 = loader.next();
  ASSERT_TRUE(b1.has_value());
  EXPECT_EQ(b1->labels[0], ds.label(9));
}

}  // namespace
}  // namespace dshuf::data
