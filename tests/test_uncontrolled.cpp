#include "shuffle/uncontrolled.hpp"

#include <set>

#include <gtest/gtest.h>

namespace dshuf::shuffle {
namespace {

std::vector<std::vector<SampleId>> make_shards(std::size_t n,
                                               std::size_t workers) {
  std::vector<std::vector<SampleId>> shards(workers);
  for (std::size_t i = 0; i < n; ++i) {
    shards[i % workers].push_back(static_cast<SampleId>(i));
  }
  return shards;
}

TEST(Uncontrolled, ConservesSamples) {
  const std::size_t n = 120;
  UncontrolledShuffler us(make_shards(n, 8), 0.3, 5);
  std::multiset<SampleId> expected;
  for (std::size_t i = 0; i < n; ++i) {
    expected.insert(static_cast<SampleId>(i));
  }
  for (std::size_t e = 0; e < 6; ++e) {
    us.begin_epoch(e);
    std::multiset<SampleId> got;
    for (int w = 0; w < 8; ++w) {
      got.insert(us.local_order(w).begin(), us.local_order(w).end());
    }
    EXPECT_EQ(got, expected) << "epoch " << e;
  }
}

TEST(Uncontrolled, ReceiveCountsAreImbalanced) {
  // The defining defect of the baseline: with independent destinations,
  // some worker receives more than it sent (and shard sizes drift).
  UncontrolledShuffler us(make_shards(512, 16), 0.5, 7);
  us.begin_epoch(0);
  const auto* stats = us.last_stats();
  std::size_t mn = SIZE_MAX;
  std::size_t mx = 0;
  for (auto r : stats->received_per_worker) {
    mn = std::min(mn, r);
    mx = std::max(mx, r);
  }
  EXPECT_GT(mx, mn) << "imbalance should appear with high probability";
  EXPECT_GT(us.shard_imbalance(), 1.0);
}

TEST(Uncontrolled, ImbalanceDriftsOverEpochs) {
  UncontrolledShuffler us(make_shards(512, 16), 0.5, 7);
  us.begin_epoch(0);
  for (std::size_t e = 1; e < 10; ++e) us.begin_epoch(e);
  // After several epochs the smallest shard is measurably below fair share.
  EXPECT_LT(us.min_shard(), 32U);
  EXPECT_GT(us.max_shard(), 32U);
}

TEST(Uncontrolled, QZeroIsPureLocal) {
  auto shards = make_shards(64, 4);
  const auto original = shards;
  UncontrolledShuffler us(std::move(shards), 0.0, 7);
  us.begin_epoch(0);
  for (int w = 0; w < 4; ++w) {
    EXPECT_EQ(std::multiset<SampleId>(us.local_order(w).begin(),
                                      us.local_order(w).end()),
              std::multiset<SampleId>(original[w].begin(),
                                      original[w].end()));
  }
  EXPECT_DOUBLE_EQ(us.shard_imbalance(), 1.0);
}

TEST(Uncontrolled, DeterministicForSeed) {
  UncontrolledShuffler a(make_shards(96, 6), 0.4, 11);
  UncontrolledShuffler b(make_shards(96, 6), 0.4, 11);
  for (std::size_t e = 0; e < 3; ++e) {
    a.begin_epoch(e);
    b.begin_epoch(e);
    for (int w = 0; w < 6; ++w) {
      EXPECT_EQ(a.local_order(w), b.local_order(w));
    }
  }
}

TEST(Uncontrolled, FactoryAndLabels) {
  auto s = make_shuffler(Strategy::kUncontrolled, 0.25, 64,
                         make_shards(64, 4), 3);
  EXPECT_EQ(s->label(), "uncontrolled-0.25");
  s->begin_epoch(0);
  EXPECT_EQ(parse_strategy("uncontrolled"), Strategy::kUncontrolled);
  EXPECT_EQ(to_string(Strategy::kUncontrolled), "uncontrolled");
}

}  // namespace
}  // namespace dshuf::shuffle
