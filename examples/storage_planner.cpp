// Deployment planner: given a dataset, a worker count and a machine
// profile, report per-strategy storage feasibility, per-epoch data
// movement, and modelled epoch times — the decision the paper's Section
// III-D guideline asks operators to make ("start with local shuffling; if
// accuracy is dissatisfactory, treat Q as a hyper-parameter").
//
//   ./storage_planner --dataset-gb 8200 --workers 1024 --system abci
//                     --q 0.1,0.3,0.5
#include <iostream>

#include "perf/perf_model.hpp"
#include "shuffle/traffic.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dshuf;
  using shuffle::Strategy;

  ArgParser args("storage_planner",
                 "Plan shuffling strategy storage/time for a deployment");
  args.flag("dataset-gb", "1100", "dataset size in GB");
  args.flag("samples", "9300000", "number of samples");
  args.flag("workers", "512", "worker count");
  args.flag("batch", "32", "local minibatch");
  args.flag("system", "abci", "machine profile: abci|fugaku");
  args.flag("q", "0.1,0.3,1.0", "exchange fractions to evaluate");
  if (!args.parse(argc, argv)) return 0;

  const double dataset_bytes = args.get_double("dataset-gb") * 1e9;
  const auto samples = static_cast<std::size_t>(args.get_int("samples"));
  const auto workers = static_cast<std::size_t>(args.get_int("workers"));
  const std::string system_name = args.get("system");
  const io::SystemProfile system =
      system_name == "fugaku" ? io::fugaku_profile() : io::abci_profile();

  perf::ComputeProfile compute = perf::resnet50_profile();
  compute.sample_bytes = dataset_bytes / static_cast<double>(samples);
  const perf::EpochModel model(system, compute);
  const perf::WorkloadShape shape{
      .dataset_samples = samples,
      .workers = workers,
      .local_batch = static_cast<std::size_t>(args.get_int("batch"))};

  std::cout << "Planning for " << fmt_bytes(dataset_bytes) << " / "
            << samples << " samples on " << system.name << " with "
            << workers << " workers\n"
            << "Node-local capacity per worker: "
            << fmt_bytes(system.node_local.capacity_bytes) << " ("
            << system.node_local.name << ")\n";

  TextTable t("strategy comparison");
  t.header({"strategy", "storage/worker", "fits local?", "sent/epoch",
            "PFS read/epoch", "epoch time (model)", "vs local"});
  const double local_time = model.epoch(shape, Strategy::kLocal, 0).total();

  auto fits = [&](double bytes) {
    return bytes <= system.node_local.capacity_bytes ? "yes" : "NO";
  };

  {
    const auto tr = shuffle::compute_traffic(
        {.dataset_bytes = dataset_bytes, .workers = workers, .q = 0.0});
    const double time = model.epoch(shape, Strategy::kLocal, 0).total();
    t.row({"local", fmt_bytes(tr.storage_local), fits(tr.storage_local),
           "-", "-", fmt_double(time, 1) + " s",
           fmt_double(time / local_time, 2)});
  }
  for (double q : args.get_double_list("q")) {
    const auto tr = shuffle::compute_traffic(
        {.dataset_bytes = dataset_bytes, .workers = workers, .q = q});
    const double time = model.epoch(shape, Strategy::kPartial, q).total();
    t.row({shuffle::strategy_label(Strategy::kPartial, q),
           fmt_bytes(tr.storage_pls), fits(tr.storage_pls),
           fmt_bytes(tr.sent_per_worker), "-", fmt_double(time, 1) + " s",
           fmt_double(time / local_time, 2)});
  }
  {
    const auto tr = shuffle::compute_traffic(
        {.dataset_bytes = dataset_bytes, .workers = workers, .q = 1.0});
    const double time = model.epoch(shape, Strategy::kGlobal, 0).total();
    // Global shuffling needs either full per-node replication or PFS reads.
    t.row({"global (replicated)", fmt_bytes(tr.storage_global),
           fits(tr.storage_global), "-", "-", "-", "-"});
    t.row({"global (from PFS)", "0 B", "yes", "-",
           fmt_bytes(tr.pfs_read_per_worker_gs), fmt_double(time, 1) + " s",
           fmt_double(time / local_time, 2)});
  }
  t.print(std::cout);

  // Job-startup staging: the paper's "cost of data staging" point.
  TextTable staging("one-time staging cost (PFS -> local storage)");
  staging.header({"strategy", "bytes/worker", "aggregate PFS egress",
                  "staging time"});
  const auto repl = io::staging_cost(system, dataset_bytes, workers, true);
  const auto shard = io::staging_cost(system, dataset_bytes, workers, false);
  const auto pls = io::staging_cost(system, dataset_bytes, workers, false,
                                    0.1);
  staging.row({"global (replicate)", fmt_bytes(repl.bytes_per_worker),
               fmt_bytes(repl.aggregate_pfs_bytes),
               fmt_double(repl.time_s, 1) + " s"});
  staging.row({"local", fmt_bytes(shard.bytes_per_worker),
               fmt_bytes(shard.aggregate_pfs_bytes),
               fmt_double(shard.time_s, 1) + " s"});
  staging.row({"partial-0.1", fmt_bytes(pls.bytes_per_worker),
               fmt_bytes(pls.aggregate_pfs_bytes),
               fmt_double(pls.time_s, 1) + " s"});
  staging.print(std::cout);

  std::cout << "Guideline (paper Sec. III-D): start with local shuffling;\n"
               "if validation accuracy is dissatisfactory, increase Q as a\n"
               "hyper-parameter until it matches global shuffling.\n";
  return 0;
}
