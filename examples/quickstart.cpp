// Quickstart: train one workload under global, local and partial-local
// shuffling and compare validation accuracy — the paper's core experiment
// at laptop scale.
//
//   ./quickstart --workload imagenet1k-resnet50 --workers 32
//       --batch 8 --epochs 20 --q 0.1,0.3
#include <iostream>

#include "data/workloads.hpp"
#include "sim/trainer.hpp"
#include "util/argparse.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dshuf;

  ArgParser args("quickstart",
                 "Compare shuffling strategies on one workload");
  args.flag("workload", "imagenet1k-resnet50", "registry workload name");
  args.flag("workers", "32", "number of virtual workers (M)");
  args.flag("batch", "8", "local minibatch size (b)");
  args.flag("epochs", "20", "training epochs");
  args.flag("q", "0.1,0.3", "partial-exchange fractions to try");
  args.flag("partition", "class-sorted",
            "initial partition: class-sorted|contiguous|strided|random");
  args.flag("seed", "123", "experiment seed");
  if (!args.parse(argc, argv)) return 0;

  const auto& workload = data::find_workload(args.get("workload"));
  std::cout << "Workload: " << workload.name << " (paper: "
            << workload.paper_model << " / " << workload.paper_dataset
            << ", " << workload.paper_samples << " samples)\n";

  sim::SimConfig base;
  base.workers = static_cast<std::size_t>(args.get_int("workers"));
  base.local_batch = static_cast<std::size_t>(args.get_int("batch"));
  base.epochs = static_cast<std::size_t>(args.get_int("epochs"));
  base.partition = data::parse_partition_scheme(args.get("partition"));
  base.seed = static_cast<std::uint64_t>(args.get_int("seed"));

  TextTable table("validation top-1 by strategy");
  table.header({"strategy", "best top-1", "final top-1", "storage ratio",
                "wall s"});

  auto run = [&](shuffle::Strategy s, double q) {
    sim::SimConfig cfg = base;
    cfg.strategy = s;
    cfg.q = q;
    Stopwatch sw;
    const auto result = sim::run_workload_experiment(workload, cfg);
    table.row({result.label, fmt_percent(result.best_top1),
               fmt_percent(result.final_top1),
               fmt_double(result.peak_storage_ratio, 2),
               fmt_double(sw.seconds(), 1)});
    std::cout << "  " << result.label << ": epoch curve =";
    for (const auto& e : result.epochs) {
      if (e.val_top1 >= 0) std::cout << ' ' << fmt_double(e.val_top1, 3);
    }
    std::cout << '\n';
  };

  run(shuffle::Strategy::kGlobal, 0.0);
  run(shuffle::Strategy::kLocal, 0.0);
  for (double q : args.get_double_list("q")) {
    run(shuffle::Strategy::kPartial, q);
  }

  table.print(std::cout);
  std::cout << "\nReading: with a class-sorted initial partition, local\n"
               "shuffling should trail global at scale while partial-Q\n"
               "recovers most of the gap at a fraction of the storage.\n";
  return 0;
}
