// The Section III-D deployment guideline as an executable procedure:
// "start with local shuffling and if training accuracy is dissatisfactory,
// treat the shuffling factor as an additional hyper-parameter".
//
// This example trains a global-shuffling reference, then walks Q upward
// from 0 (pure local) until validation accuracy lands within a tolerance
// of the reference, reporting the storage price paid at each step.
#include <iostream>

#include "data/workloads.hpp"
#include "sim/trainer.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dshuf;

  ArgParser args("q_tuning",
                 "Tune the exchange fraction Q as a hyper-parameter");
  args.flag("workload", "imagenet50-resnet50", "registry workload");
  args.flag("workers", "40", "virtual workers");
  args.flag("batch", "4", "local minibatch");
  args.flag("epochs", "25", "epochs per trial");
  args.flag("tolerance", "0.02", "acceptable top-1 gap to global");
  args.flag("seed", "123", "experiment seed");
  if (!args.parse(argc, argv)) return 0;

  const auto& workload = data::find_workload(args.get("workload"));
  const double tolerance = args.get_double("tolerance");

  sim::SimConfig base;
  base.workers = static_cast<std::size_t>(args.get_int("workers"));
  base.local_batch = static_cast<std::size_t>(args.get_int("batch"));
  base.epochs = static_cast<std::size_t>(args.get_int("epochs"));
  base.partition = data::PartitionScheme::kClassSorted;
  base.seed = static_cast<std::uint64_t>(args.get_int("seed"));

  auto run = [&](shuffle::Strategy s, double q) {
    sim::SimConfig cfg = base;
    cfg.strategy = s;
    cfg.q = q;
    return sim::run_workload_experiment(workload, cfg);
  };

  std::cout << "Tuning Q on " << workload.name << " with " << base.workers
            << " workers (tolerance " << fmt_percent(tolerance) << ")\n";

  const auto reference = run(shuffle::Strategy::kGlobal, 0);
  std::cout << "global reference: " << fmt_percent(reference.best_top1)
            << "\n";

  TextTable t("Q tuning trajectory");
  t.header({"Q", "best top-1", "gap to global", "storage ratio",
            "verdict"});
  double chosen_q = -1.0;
  for (double q : {0.0, 0.1, 0.3, 0.5, 0.7, 1.0}) {
    const auto res = q == 0.0 ? run(shuffle::Strategy::kLocal, 0)
                              : run(shuffle::Strategy::kPartial, q);
    const double gap = reference.best_top1 - res.best_top1;
    const bool ok = gap <= tolerance;
    t.row({fmt_double(q, 1), fmt_percent(res.best_top1), fmt_percent(gap),
           fmt_double(res.peak_storage_ratio, 2),
           ok ? "acceptable" : "keep tuning"});
    if (ok) {
      chosen_q = q;
      break;
    }
  }
  t.print(std::cout);

  if (chosen_q >= 0) {
    std::cout << "Selected Q = " << chosen_q << ": global-level accuracy "
              << "at " << fmt_double(1.0 + chosen_q, 1)
              << "x local storage instead of full dataset replication.\n";
  } else {
    std::cout << "No tested Q reached the tolerance — fall back to global "
                 "shuffling for this workload/scale.\n";
  }
  return 0;
}
