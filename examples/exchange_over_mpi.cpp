// End-to-end Algorithm 1 on the message-passing substrate, moving REAL
// sample bytes between per-rank stores — the closest analogue of the
// paper's deployment (the scheduler's save/remove hooks manage the
// worker's storage area).
//
// Each rank runs in its own thread with its own directory under a temp
// root. Every epoch it (1) recomputes the shared-seed exchange plan,
// (2) isends its picked samples' serialized bytes, (3) irecvs from
// ANY_SOURCE, (4) saves received samples and removes transmitted ones.
// Afterwards we verify conservation, per-rank balance, the on-disk
// (1+Q)-capacity window, and payload integrity against the dataset.
//
// --store selects the io::SampleStore backend: "file" (one file per
// sample, the paper's supported layout) or "mmap" (segment files +
// epoch-based reclamation; the capacity_bytes knob enforces the
// (1+Q)*N/M bound byte-exactly on disk). --index selects the id->slot
// backend for the mmap store: "hash" or "learned".
#include <filesystem>
#include <iostream>
#include <memory>

#include "comm/comm.hpp"
#include "data/synthetic.hpp"
#include "io/file_store.hpp"
#include "io/mmap_store.hpp"
#include "shuffle/mpi_exchange.hpp"
#include "shuffle/shuffler.hpp"
#include "shuffle/store_hooks.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dshuf;
  namespace fs = std::filesystem;

  ArgParser args("exchange_over_mpi",
                 "Run the PLS exchange over the in-process MPI substrate "
                 "with per-rank sample stores");
  args.flag("ranks", "8", "number of MPI-like ranks (threads)");
  args.flag("samples", "256", "dataset size");
  args.flag("q", "0.25", "exchange fraction Q");
  args.flag("epochs", "4", "exchange epochs to run");
  args.flag("seed", "17", "shared seed (synchronises the plan)");
  args.flag("store", "file", "payload store backend: file | mmap");
  args.flag("index", "hash", "mmap id->slot backend: hash | learned");
  if (!args.parse(argc, argv)) return 0;

  const int ranks = static_cast<int>(args.get_int("ranks"));
  const std::size_t n = static_cast<std::size_t>(args.get_int("samples"));
  const double q = args.get_double("q");
  const std::size_t epochs =
      static_cast<std::size_t>(args.get_int("epochs"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const std::string store_kind = args.get("store");
  const bool use_mmap = store_kind == "mmap";
  if (!use_mmap && store_kind != "file") {
    std::cerr << "unknown --store backend: " << store_kind << "\n";
    return 1;
  }
  const io::SlotIndexKind index_kind = args.get("index") == "learned"
                                           ? io::SlotIndexKind::kLearned
                                           : io::SlotIndexKind::kOpenAddressing;

  // A small dataset whose rows are the payloads we ship around.
  data::ClassClusterSpec spec{.num_classes = 8,
                              .samples_per_class = n / 8,
                              .feature_dim = 16,
                              .seed = seed};
  const auto dataset = data::make_class_clusters(spec);
  const std::size_t shard = dataset.size() / ranks;
  const std::size_t quota = shuffle::exchange_quota(shard, q);

  const fs::path root =
      fs::temp_directory_path() /
      ("dshuf_exchange_demo_" + std::to_string(::getpid()));
  fs::remove_all(root);

  // Per-rank state: an id store (capacity (1+Q) shard) + a payload store.
  // The mmap store's capacity_bytes enforces the same bound byte-exactly:
  // the exchange transiently holds shard + quota samples on disk.
  std::vector<shuffle::ShardStore> stores;
  std::vector<std::unique_ptr<io::SampleStore>> files;
  for (int r = 0; r < ranks; ++r) {
    std::vector<shuffle::SampleId> ids;
    for (std::size_t i = r * shard; i < (r + 1) * shard; ++i) {
      ids.push_back(static_cast<shuffle::SampleId>(i));
    }
    const fs::path dir = root / ("rank" + std::to_string(r));
    if (use_mmap) {
      files.push_back(std::make_unique<io::MmapSampleStore>(
          io::MmapStoreConfig{.dir = dir,
                              .capacity_bytes = (shard + quota) *
                                                dataset.bytes_per_sample(),
                              .index_kind = index_kind}));
    } else {
      files.push_back(std::make_unique<io::FileSampleStore>(dir));
    }
    for (auto id : ids) {
      files.back()->save(id, io::serialize_sample(dataset, id));
    }
    stores.emplace_back(std::move(ids), shard + quota);
  }

  std::cout << "dataset: " << dataset.size() << " samples x "
            << dataset.bytes_per_sample() << " B; " << ranks
            << " ranks, shard " << shard << ", quota " << quota << " (Q="
            << q << "), store=" << store_kind << "\n";

  comm::World world(ranks);
  TextTable t("per-epoch exchange");
  t.header({"epoch", "moved samples", "bytes/rank", "peak disk samples/rank",
            "(1+Q) bound"});

  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    std::vector<std::size_t> peak_files(ranks, 0);
    world.run([&](comm::Communicator& c) {
      const auto r = static_cast<std::size_t>(c.rank());
      auto& store = stores[r];
      io::SampleStore& file_store = *files[r];
      std::size_t local_peak = file_store.size();
      const auto payload = shuffle::make_store_payload_fn(file_store);
      shuffle::run_pls_exchange_epoch(
          c, store, seed, epoch, q, shard, payload,
          /*deposit=*/
          [&](shuffle::SampleId id, std::span<const std::byte> body) {
            file_store.save(id, body);
            local_peak = std::max(local_peak, file_store.size());
          });
      // clean_local_storage: remove transmitted samples from disk.
      for (auto id : file_store.list()) {
        bool held = false;
        for (auto sid : store.ids()) {
          if (sid == id) {
            held = true;
            break;
          }
        }
        if (!held) file_store.remove(id);
      }
      // Retire the epoch's quarantined slots (no-op for the file store).
      if (auto* ms = dynamic_cast<io::MmapSampleStore*>(&file_store)) {
        ms->advance_epoch();
      }
      shuffle::post_exchange_local_shuffle(seed, epoch, c.rank(),
                                           store.mutable_ids());
      peak_files[r] = local_peak;
    });

    std::size_t max_peak = 0;
    for (auto p : peak_files) max_peak = std::max(max_peak, p);
    t.row({std::to_string(epoch), std::to_string(quota * ranks),
           fmt_bytes(static_cast<double>(quota) *
                     static_cast<double>(dataset.bytes_per_sample())),
           std::to_string(max_peak), std::to_string(shard + quota)});
  }
  t.print(std::cout);

  // Verification: conservation, balance, integrity.
  std::size_t total = 0;
  bool intact = true;
  std::vector<std::byte> payload;
  for (int r = 0; r < ranks; ++r) {
    const auto& ids = stores[static_cast<std::size_t>(r)].ids();
    total += ids.size();
    for (auto id : ids) {
      payload.clear();
      files[static_cast<std::size_t>(r)]->load_into(id, payload);
      const auto s = io::deserialize_sample(payload);
      if (s.label != dataset.label(id)) intact = false;
    }
    if (ids.size() != shard) intact = false;
  }
  std::cout << "verification: " << total << "/" << dataset.size()
            << " samples accounted for, shards balanced and payloads "
            << (intact ? "intact" : "CORRUPTED") << "\n";
  files.clear();  // unmap before deleting the tree
  fs::remove_all(root);
  return intact && total == dataset.size() ? 0 : 1;
}
