// Full data-parallel training on the message-passing substrate: M rank
// threads, each with its own model replica and shard store, running
//   per epoch:  PLS exchange (Algorithm 1 over isend/irecv)
//   per step:   local forward/backward -> gradient allreduce -> SGD step
// exactly like an MPI+PyTorch deployment of the paper's scheduler. The
// replicas stay in lock-step because the allreduce is deterministic; rank
// 0 evaluates.
//
//   ./distributed_training_mpi --ranks 8 --q 0.1 --epochs 12
#include <iostream>

#include "comm/comm.hpp"
#include "data/partition.hpp"
#include "data/workloads.hpp"
#include "nn/loss.hpp"
#include "shuffle/mpi_exchange.hpp"
#include "shuffle/shuffler.hpp"
#include "sim/trainer.hpp"
#include "util/argparse.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace dshuf;

struct RankResult {
  double final_top1 = 0;
  std::vector<float> final_state;
};

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("distributed_training_mpi",
                 "Data-parallel PLS training with rank threads and a real "
                 "gradient allreduce");
  args.flag("ranks", "8", "number of rank threads (M)");
  args.flag("batch", "8", "local minibatch (b)");
  args.flag("q", "0.1", "exchange fraction");
  args.flag("epochs", "12", "training epochs");
  args.flag("seed", "123", "experiment seed");
  if (!args.parse(argc, argv)) return 0;

  const int ranks = static_cast<int>(args.get_int("ranks"));
  const std::size_t b = static_cast<std::size_t>(args.get_int("batch"));
  const double q = args.get_double("q");
  const std::size_t epochs = static_cast<std::size_t>(args.get_int("epochs"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  // Shared, read-only across ranks.
  data::Workload workload = data::find_workload("imagenet1k-resnet50");
  workload.data.num_classes = 16;
  workload.data.samples_per_class = 64;
  workload.model.num_classes = 16;
  const auto split = data::make_class_clusters_split(workload.data);
  const auto& train = split.train;
  const std::size_t shard_size = train.size() / ranks;

  Rng part_rng = Rng(seed).fork(0x90);
  auto shards = data::partition_dataset(
      train, ranks, data::PartitionScheme::kClassSorted, part_rng);

  std::cout << "Training " << workload.name << " proxy on " << ranks
            << " rank threads (N=" << train.size() << ", shard="
            << shard_size << ", Q=" << q << ")\n";

  std::vector<RankResult> results(ranks);
  Stopwatch sw;
  comm::World world(ranks);
  world.run([&](comm::Communicator& c) {
    const auto r = static_cast<std::size_t>(c.rank());

    // Every rank builds the identical replica (same seed -> same init).
    Rng model_rng = Rng(seed).fork(0x91);
    nn::Model model = nn::make_mlp(workload.model, model_rng);
    const float lr0 = workload.regime.base_lr *
                      static_cast<float>(ranks * b) /
                      static_cast<float>(workload.regime.reference_batch);
    const auto epochs_d = static_cast<double>(epochs);
    nn::MultiStepLr schedule(lr0, {epochs_d * 0.6, epochs_d * 0.85}, 0.1F,
                             workload.regime.warmup_epochs);
    nn::Sgd opt(model, {.lr = lr0,
                        .momentum = workload.regime.momentum,
                        .weight_decay = workload.regime.weight_decay});
    nn::SoftmaxCrossEntropy ce;

    const std::size_t quota = shuffle::exchange_quota(shard_size, q);
    shuffle::ShardStore store(shards[r], shard_size + quota);

    for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
      // Algorithm 1 over real point-to-point messages.
      shuffle::run_pls_exchange_epoch(c, store, seed, epoch, q, shard_size);
      shuffle::post_exchange_local_shuffle(seed, epoch, c.rank(),
                                           store.mutable_ids());
      const auto& order = store.ids();
      const std::size_t iters = order.size() / b;

      for (std::size_t it = 0; it < iters; ++it) {
        opt.set_lr(schedule.lr_at(static_cast<double>(epoch) +
                                  static_cast<double>(it) /
                                      static_cast<double>(iters)));
        const std::span<const data::SampleId> batch(order.data() + it * b,
                                                    b);
        const Tensor x = train.gather(batch);
        const auto y = train.gather_labels(batch);
        model.zero_grad();
        const Tensor logits = model.forward(x, true);
        ce.forward(logits, y);
        model.backward(ce.backward());

        // Gradient allreduce: sum over ranks, then average. All ranks
        // compute the identical sum (deterministic reduction), so the
        // replicas never diverge.
        const auto local = model.gradients();
        std::vector<double> contrib(local.begin(), local.end());
        const auto total = c.allreduce_sum(contrib);
        auto params = model.params();
        std::size_t off = 0;
        for (auto* p : params) {
          for (auto& g : p->grad.vec()) {
            g = static_cast<float>(total[off++] / ranks);
          }
        }
        opt.step();
      }
    }

    results[r].final_state = model.state();
    results[r].final_top1 =
        sim::evaluate(model, split.val, /*max_samples=*/0, /*seed=*/1);
  });

  // Replicas must have remained in lock-step.
  bool consistent = true;
  for (int r = 1; r < ranks; ++r) {
    if (results[static_cast<std::size_t>(r)].final_state !=
        results[0].final_state) {
      consistent = false;
    }
  }

  TextTable t("distributed training result");
  t.header({"ranks", "epochs", "Q", "final top-1 (rank 0)",
            "replicas in lock-step", "wall s"});
  t.row({std::to_string(ranks), std::to_string(epochs), fmt_double(q, 2),
         fmt_percent(results[0].final_top1), consistent ? "yes" : "NO",
         fmt_double(sw.seconds(), 1)});
  t.print(std::cout);

  std::cout << "Every rank ran Algorithm 1 over real isend/irecv and a\n"
               "deterministic gradient allreduce; identical final weights\n"
               "across replicas confirm the whole stack composes exactly\n"
               "like an MPI deployment of the paper's scheduler.\n";
  return consistent ? 0 : 1;
}
