// File-backed per-worker sample store.
//
// The paper's PLS.ImageFolder wrapper adds two hooks to a dataset: save a
// received sample to the worker's local storage area and remove a
// transmitted one. FileSampleStore is that storage area: one file per
// sample under a worker-private directory (the paper's supported layout:
// "datasets that manage each data sample in a single distinct physical
// file"). The threaded exchange example moves real bytes through it.
//
// This is the small-shard implementation of io::SampleStore — simple,
// debuggable (every sample is an inspectable file) and the differential
// reference the mmap-backed store is validated against. Beyond ~10^5
// samples per rank the per-file metadata cost dominates; use
// MmapSampleStore (io/mmap_store.hpp) there.
#pragma once

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <span>
#include <vector>

#include "data/dataset.hpp"
#include "io/storage.hpp"
#include "util/ranked_mutex.hpp"

namespace dshuf::io {

class FileSampleStore final : public SampleStore {
 public:
  /// Creates `dir` (and parents) if needed. All operations are serialised
  /// by an internal LockRank::kFileStore mutex, so the exchange's deposit
  /// callback and a concurrent reader (disk_bytes/list audits) are safe.
  explicit FileSampleStore(std::filesystem::path dir);

  /// Movable so stores pack into per-rank vectors; the internal mutex and
  /// scratch are not moved (each store gets fresh ones). Only valid while
  /// no other thread is using either store — move during setup, not
  /// mid-exchange. Contract (pinned by the FileStoreMoveContract test):
  /// the target adopts the source's directory, the moved-from store is
  /// left with an EMPTY dir() and must not be used for sample operations
  /// until reassigned — neither store ever deletes the directory, so a
  /// move never loses bytes on disk.
  FileSampleStore(FileSampleStore&& other) noexcept
      : dir_(std::move(other.dir_)) {
    other.dir_.clear();
  }
  FileSampleStore& operator=(FileSampleStore&& other) noexcept {
    if (this == &other) return *this;  // self-move keeps the store intact
    dir_ = std::move(other.dir_);
    other.dir_.clear();
    return *this;
  }

  void save(data::SampleId id, std::span<const std::byte> payload) override;

  /// Read a sample's payload back; throws if absent. Allocates a fresh
  /// vector per call — hot paths go through load_into/read instead.
  // analyze:alloc-ok convenience path for tests/tools; hot paths use
  // load_into into a reused buffer
  [[nodiscard]] std::vector<std::byte> load(data::SampleId id) const;

  /// load() APPENDED to `out` (existing contents preserved) — the shape
  /// the exchange's PayloadFn wants, so a sample streams from disk
  /// straight into the wire frame without an intermediate vector.
  void load_into(data::SampleId id,
                 std::vector<std::byte>& out) const override;

  /// Invoke `fn` with the payload bytes, read into an internal scratch
  /// buffer that is reused across calls (amortised allocation-free). The
  /// callback runs WITHOUT the store lock — reentering the store from
  /// `fn` is allowed, matching MmapSampleStore and the SampleSource
  /// contract.
  void read(data::SampleId id, ReadFn fn) const override;

  /// Delete a sample file (remove hook / clean_local_storage); throws if
  /// absent — removing a sample that was never stored is a logic error.
  void remove(data::SampleId id) override;

  [[nodiscard]] bool contains(data::SampleId id) const override;

  /// Ids currently on disk, ascending.
  [[nodiscard]] std::vector<data::SampleId> list() const override;

  /// Samples currently on disk (counts the directory walk — O(n)).
  [[nodiscard]] std::size_t size() const override;

  /// Total bytes currently stored (for (1+Q)-bound verification on disk).
  [[nodiscard]] std::size_t disk_bytes() const override;

  [[nodiscard]] const std::filesystem::path& dir() const { return dir_; }

 private:
  [[nodiscard]] std::filesystem::path path_for(data::SampleId id) const;
  std::filesystem::path dir_;
  mutable std::vector<std::byte> scratch_;  // read() staging, reused
  mutable RankedMutex mu_{LockRank::kFileStore, "io.file_store"};
};

/// Serialize one dataset row (features + label) to bytes and back —
/// the payload format moved by the exchange.
std::vector<std::byte> serialize_sample(const data::InMemoryDataset& ds,
                                        data::SampleId id);

/// serialize_sample APPENDED to `out` (existing contents preserved); the
/// exchange packs rows into pooled wire frames through this overload.
void serialize_sample_into(const data::InMemoryDataset& ds, data::SampleId id,
                           std::vector<std::byte>& out);

struct DeserializedSample {
  std::vector<float> features;
  std::uint32_t label = 0;
};
DeserializedSample deserialize_sample(std::span<const std::byte> payload);

/// Decode a serialized sample in place: label + feature floats copied
/// into `features_out` (must hold exactly feature_dim floats). The
/// allocation-free counterpart of deserialize_sample for batch assembly.
std::uint32_t deserialize_sample_into(std::span<const std::byte> payload,
                                      std::span<float> features_out);

}  // namespace dshuf::io
