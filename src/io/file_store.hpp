// File-backed per-worker sample store.
//
// The paper's PLS.ImageFolder wrapper adds two hooks to a dataset: save a
// received sample to the worker's local storage area and remove a
// transmitted one. FileSampleStore is that storage area: one file per
// sample under a worker-private directory (the paper's supported layout:
// "datasets that manage each data sample in a single distinct physical
// file"). The threaded exchange example moves real bytes through it.
#pragma once

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <span>
#include <vector>

#include "data/dataset.hpp"
#include "util/ranked_mutex.hpp"

namespace dshuf::io {

class FileSampleStore {
 public:
  /// Creates `dir` (and parents) if needed. All operations are serialised
  /// by an internal LockRank::kFileStore mutex, so the exchange's deposit
  /// callback and a concurrent reader (disk_bytes/list audits) are safe.
  explicit FileSampleStore(std::filesystem::path dir);

  /// Movable so stores pack into per-rank vectors; the internal mutex is
  /// not moved (each store gets a fresh one). Only valid while no other
  /// thread is using either store — move during setup, not mid-exchange.
  FileSampleStore(FileSampleStore&& other) noexcept
      : dir_(std::move(other.dir_)) {}
  FileSampleStore& operator=(FileSampleStore&& other) noexcept {
    dir_ = std::move(other.dir_);
    return *this;
  }

  /// Persist a sample's payload (save hook). Overwrites silently — an
  /// arriving sample replaces any stale copy.
  void save(data::SampleId id, std::span<const std::byte> payload);

  /// Read a sample's payload back; throws if absent.
  [[nodiscard]] std::vector<std::byte> load(data::SampleId id) const;

  /// load() APPENDED to `out` (existing contents preserved) — the shape
  /// the exchange's PayloadFn wants, so a sample streams from disk
  /// straight into the wire frame without an intermediate vector.
  void load_into(data::SampleId id, std::vector<std::byte>& out) const;

  /// Delete a sample file (remove hook / clean_local_storage); throws if
  /// absent — removing a sample that was never stored is a logic error.
  void remove(data::SampleId id);

  [[nodiscard]] bool contains(data::SampleId id) const;

  /// Ids currently on disk, ascending.
  [[nodiscard]] std::vector<data::SampleId> list() const;

  /// Total bytes currently stored (for (1+Q)-bound verification on disk).
  [[nodiscard]] std::size_t disk_bytes() const;

  [[nodiscard]] const std::filesystem::path& dir() const { return dir_; }

 private:
  [[nodiscard]] std::filesystem::path path_for(data::SampleId id) const;
  std::filesystem::path dir_;
  mutable RankedMutex mu_{LockRank::kFileStore, "io.file_store"};
};

/// Serialize one dataset row (features + label) to bytes and back —
/// the payload format moved by the exchange.
std::vector<std::byte> serialize_sample(const data::InMemoryDataset& ds,
                                        data::SampleId id);

/// serialize_sample APPENDED to `out` (existing contents preserved); the
/// exchange packs rows into pooled wire frames through this overload.
void serialize_sample_into(const data::InMemoryDataset& ds, data::SampleId id,
                           std::vector<std::byte>& out);

struct DeserializedSample {
  std::vector<float> features;
  std::uint32_t label = 0;
};
DeserializedSample deserialize_sample(std::span<const std::byte> payload);

}  // namespace dshuf::io
