// Pluggable id -> slot index.
//
// Both sample stores need a map from SampleId to a 64-bit slot word (the
// mmap store packs segment+offset+length into it; ShardStore packs its
// removal bookkeeping). Two interchangeable backends sit behind this
// interface, selectable at runtime:
//
//   * kOpenAddressing — linear-probe hash table with tombstones, the
//     battle-tested default (ported from ShardStore's removal index).
//     O(1) expected per op; wiped in place on clear so steady-state
//     rebuilds allocate nothing.
//   * kLearned — a piecewise-linear learned index (AFLI/NFL-style,
//     ROADMAP item 4): sorted key/value arrays + greedy bounded-error
//     linear segments; a lookup predicts the position from the key and
//     finishes with a last-mile binary search over at most
//     2*kErrorBound+1 candidates. Inserts land in a sorted delta buffer
//     merged into the core on rebuild; erases tombstone the core.
//     Shines on the dense, sorted-ish id spaces shuffling produces; the
//     probe/lookup counters in stats() quantify it against the hash
//     table (BENCH_shard.json carries both arms).
//
// Backends are NOT internally synchronised: the owning store serialises
// access (both sample stores hold their lock across index calls).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "util/function_ref.hpp"

namespace dshuf::io {

enum class SlotIndexKind {
  kOpenAddressing,
  kLearned,
};

std::string to_string(SlotIndexKind kind);

/// Process-wide default backend for newly built indexes (stores consult it
/// when (re)building). Defaults to kOpenAddressing.
[[nodiscard]] SlotIndexKind slot_index_kind();
void set_slot_index_kind(SlotIndexKind kind);

/// RAII backend switch for tests/benches, mirroring ScopedExchangeWire.
class ScopedSlotIndex {
 public:
  explicit ScopedSlotIndex(SlotIndexKind kind) : prev_(slot_index_kind()) {
    set_slot_index_kind(kind);
  }
  ~ScopedSlotIndex() { set_slot_index_kind(prev_); }
  ScopedSlotIndex(const ScopedSlotIndex&) = delete;
  ScopedSlotIndex& operator=(const ScopedSlotIndex&) = delete;

 private:
  SlotIndexKind prev_;
};

/// Lifetime totals for one index instance (monotonic; survive clear()).
struct SlotIndexStats {
  std::uint64_t lookups = 0;  ///< find() calls
  std::uint64_t probes = 0;   ///< hash probes / last-mile search steps
  std::uint64_t rebuilds = 0; ///< rehashes (hash) / delta merges (learned)
};

class SlotIndex {
 public:
  virtual ~SlotIndex() = default;

  /// Insert or overwrite. Returns true when `id` was not present before.
  virtual bool put(data::SampleId id, std::uint64_t value) = 0;

  /// Look up `id`; on hit, writes the mapped word to `out`.
  [[nodiscard]] virtual bool find(data::SampleId id,
                                  std::uint64_t& out) const = 0;

  /// Remove `id`. Returns true when it was present.
  virtual bool erase(data::SampleId id) = 0;

  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Drop every entry, retaining internal capacity where possible (the
  /// open-addressing table wipes in place; steady-state rebuild loops
  /// allocate nothing once warmed).
  virtual void clear() = 0;

  /// Visit every (id, value) pair; visiting order is unspecified and may
  /// differ between backends — callers needing determinism must sort.
  virtual void for_each(
      FunctionRef<void(data::SampleId, std::uint64_t)> fn) const = 0;

  [[nodiscard]] virtual SlotIndexKind kind() const = 0;
  [[nodiscard]] virtual SlotIndexStats stats() const = 0;
};

/// Build an index of the given backend.
std::unique_ptr<SlotIndex> make_slot_index(SlotIndexKind kind);
/// Build an index of the current process-wide default backend.
std::unique_ptr<SlotIndex> make_slot_index();

}  // namespace dshuf::io
