#include "io/mmap_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <mutex>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/noalloc.hpp"

namespace dshuf::io {

namespace fs = std::filesystem;

namespace {

// Record header: [u32 enc][u32 id]. enc = 0 is the zero-filled
// end-of-segment sentinel, 0xFFFFFFFF a tombstone, len+1 a live record.
constexpr std::size_t kHeaderBytes = 8;
constexpr std::uint32_t kTombstone = 0xFFFFFFFFu;
constexpr std::uint32_t kMaxPayload = 0xFFFFFFFDu;

// Slot ref packing: (segment index << 40) | offset of the record header.
// 24 bits of segment sequence, 40 bits of offset (a segment can hold a
// single TB-scale oversized payload without overflowing the ref).
constexpr unsigned kRefOffsetBits = 40;
constexpr std::uint64_t kRefOffsetMask =
    (std::uint64_t{1} << kRefOffsetBits) - 1;

std::uint64_t pack_ref(std::size_t seg, std::size_t off) {
  return (static_cast<std::uint64_t>(seg) << kRefOffsetBits) |
         static_cast<std::uint64_t>(off);
}
std::size_t ref_seg(std::uint64_t ref) {
  return static_cast<std::size_t>(ref >> kRefOffsetBits);
}
std::size_t ref_off(std::uint64_t ref) {
  return static_cast<std::size_t>(ref & kRefOffsetMask);
}

std::uint32_t load_u32(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
void store_u32(std::byte* p, std::uint32_t v) { std::memcpy(p, &v, sizeof(v)); }

std::size_t page_size() {
  static const std::size_t pg =
      static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return pg;
}

std::string segment_name(std::size_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg%08zu.dshuf", seq);
  return buf;
}

/// Parse "seg<8 digits>.dshuf" -> seq; SIZE_MAX for foreign files.
std::size_t parse_segment_name(const std::string& name) {
  if (name.size() != 3 + 8 + 6 || name.rfind("seg", 0) != 0 ||
      name.compare(11, 6, ".dshuf") != 0) {
    return SIZE_MAX;
  }
  std::size_t seq = 0;
  for (std::size_t i = 3; i < 11; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return SIZE_MAX;
    seq = seq * 10 + static_cast<std::size_t>(c - '0');
  }
  return seq;
}

}  // namespace

MmapSampleStore::MmapSampleStore(MmapStoreConfig cfg) : cfg_(std::move(cfg)) {
  DSHUF_CHECK_GE(cfg_.segment_bytes, kHeaderBytes + 1,
                 "segment_bytes too small to hold a record");
  fs::create_directories(cfg_.dir);
  index_ = make_slot_index(cfg_.index_kind);
  std::lock_guard<RankedMutex> lk(mu_);
  // analyze:blocking-ok one-time directory walk + mmap replay at store open
  open_existing_locked();
  update_gauges_locked();
}

MmapSampleStore::MmapSampleStore(fs::path dir)
    : MmapSampleStore(MmapStoreConfig{.dir = std::move(dir)}) {}

MmapSampleStore::~MmapSampleStore() {
  std::lock_guard<RankedMutex> lk(mu_);
  for (auto& seg : segs_) {
    if (seg.base != nullptr) {
      ::munmap(seg.base, seg.map_len);
      seg.base = nullptr;
    }
  }
}

void MmapSampleStore::open_existing_locked() {
  // Collect (seq, path) pairs; replay in sequence order so a later save of
  // the same id (or a tombstone) wins, exactly as it happened live.
  std::vector<std::pair<std::size_t, fs::path>> found;
  // analyze:blocking-ok one-time directory walk at store open
  for (const auto& entry : fs::directory_iterator(cfg_.dir)) {
    if (!entry.is_regular_file()) continue;
    const std::size_t seq = parse_segment_name(entry.path().filename());
    if (seq == SIZE_MAX) {
      LOG_WARN << "mmap_store: ignoring foreign file " << entry.path();
      continue;
    }
    found.emplace_back(seq, entry.path());
  }
  if (found.empty()) return;
  std::sort(found.begin(), found.end());
  segs_.resize(found.back().first + 1);

  for (const auto& [seq, path] : found) {
    // analyze:blocking-ok one-time mmap replay at store open
    const int fd = ::open(path.c_str(), O_RDWR);
    DSHUF_CHECK_GE(fd, 0, "mmap_store: cannot open " << path);
    struct stat st {};
    DSHUF_CHECK_EQ(::fstat(fd, &st), 0, "mmap_store: fstat " << path);
    const auto len = static_cast<std::size_t>(st.st_size);
    void* base =
        ::mmap(nullptr, len, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    ::close(fd);
    DSHUF_CHECK(base != MAP_FAILED, "mmap_store: mmap " << path);
    Segment& seg = segs_[seq];
    seg.base = static_cast<std::byte*>(base);
    seg.map_len = len;
    seg.path = path;
    seg.sealed = true;  // reopened segments are never appended to

    // Replay records into the index (later records overwrite earlier).
    std::size_t off = 0;
    while (off + kHeaderBytes <= len) {
      const std::uint32_t enc = load_u32(seg.base + off);
      if (enc == 0) break;  // zero-filled tail
      const auto id =
          static_cast<data::SampleId>(load_u32(seg.base + off + 4));
      if (enc == kTombstone) {
        index_->erase(id);
        off += kHeaderBytes;
        continue;
      }
      const std::size_t plen = enc - 1;
      DSHUF_CHECK_LE(off + kHeaderBytes + plen, len,
                     "mmap_store: truncated record in " << path);
      index_->put(id, pack_ref(seq, off));
      off += kHeaderBytes + plen;
    }
    seg.bump = off;
  }

  // Per-segment live stats derive from the FINAL index state: dead space
  // left behind by replayed overwrites/tombstones is simply not counted,
  // so compaction sees it immediately.
  live_bytes_ = 0;
  index_->for_each([this](data::SampleId, std::uint64_t ref) {
    Segment& seg = segs_[ref_seg(ref)];
    const std::size_t plen = load_u32(seg.base + ref_off(ref)) - 1;
    seg.live_records += 1;
    seg.live_payload += plen;
    live_bytes_ += plen;
  });
  // Fully dead reopened segments can be freed right away: no reader can
  // hold a pin before the constructor returns. Ascending order matters:
  // once an earlier segment's file is gone, tombstones masking it in a
  // later segment are no longer needed and can be dropped instead of
  // re-logged. Freeing may re-log still-needed tombstones into a fresh
  // active segment — snapshot the count and skip the active so the
  // re-log target is not itself swept.
  const std::size_t n = segs_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i != active_ && segs_[i].base != nullptr &&
        segs_[i].live_records == 0) {
      free_segment_locked(i);
    }
  }
}

MmapSampleStore::Segment& MmapSampleStore::new_segment_locked(
    std::size_t min_payload_bytes) {
  std::size_t want = kHeaderBytes + min_payload_bytes;
  std::size_t len = std::max(cfg_.segment_bytes, want);
  const std::size_t pg = page_size();
  len = (len + pg - 1) / pg * pg;

  const std::size_t seq = segs_.size();
  const fs::path path = cfg_.dir / segment_name(seq);
  // analyze:blocking-ok segment creation is a rare, amortised event
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  DSHUF_CHECK_GE(fd, 0, "mmap_store: cannot create " << path);
  DSHUF_CHECK_EQ(::ftruncate(fd, static_cast<off_t>(len)), 0,
                 "mmap_store: ftruncate " << path);
  void* base = ::mmap(nullptr, len, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  DSHUF_CHECK(base != MAP_FAILED, "mmap_store: mmap " << path);

  if (active_ != SIZE_MAX) segs_[active_].sealed = true;
  // analyze:alloc-ok segment bookkeeping grows once per segment file
  Segment seg;
  seg.base = static_cast<std::byte*>(base);
  seg.map_len = len;
  seg.path = path;
  segs_.push_back(std::move(seg));
  active_ = seq;
  DSHUF_COUNTER("store.segments_created").add(1);
  return segs_[active_];
}

std::uint64_t MmapSampleStore::append_locked(
    data::SampleId id, std::span<const std::byte> payload) {
  DSHUF_CHECK_LE(payload.size(), kMaxPayload, "mmap_store: payload too large");
  const std::size_t need = kHeaderBytes + payload.size();
  if (active_ == SIZE_MAX || segs_[active_].bump + need >
                                 segs_[active_].map_len) {
    new_segment_locked(payload.size());
  }
  Segment& seg = segs_[active_];
  const std::size_t off = seg.bump;
  std::byte* rec = seg.base + off;
  store_u32(rec + 4, static_cast<std::uint32_t>(id));
  if (!payload.empty()) {
    std::memcpy(rec + kHeaderBytes, payload.data(), payload.size());
  }
  // Length goes last: a crash mid-append leaves enc == 0 and the partial
  // record reads as end-of-segment on replay.
  store_u32(rec, static_cast<std::uint32_t>(payload.size()) + 1);
  seg.bump += need;
  seg.live_records += 1;
  seg.live_payload += payload.size();
  return pack_ref(active_, off);
}

void MmapSampleStore::append_tombstone_locked(data::SampleId id) {
  if (active_ == SIZE_MAX ||
      segs_[active_].bump + kHeaderBytes > segs_[active_].map_len) {
    new_segment_locked(0);
  }
  Segment& act = segs_[active_];
  std::byte* rec = act.base + act.bump;
  store_u32(rec + 4, static_cast<std::uint32_t>(id));
  store_u32(rec, kTombstone);
  act.bump += kHeaderBytes;
}

void MmapSampleStore::quarantine_locked(std::uint64_t ref, std::uint32_t len) {
  Segment& seg = segs_[ref_seg(ref)];
  seg.live_records -= 1;
  seg.live_payload -= len;
  seg.quarantined_records += 1;
  // analyze:alloc-ok quarantine FIFO reuses its buffer across reclaim waves
  quarantine_.push_back({ref, len, epoch_});
  quarantined_bytes_ += len;
}

void MmapSampleStore::save(data::SampleId id,
                           std::span<const std::byte> payload) {
  std::lock_guard<RankedMutex> lk(mu_);
  std::uint64_t old_ref = 0;
  const bool had = index_->find(id, old_ref);
  const std::size_t old_len =
      had ? load_u32(segs_[ref_seg(old_ref)].base + ref_off(old_ref)) - 1 : 0;
  if (cfg_.capacity_bytes != 0) {
    // Byte-exact (1+Q)*N/M bound on LIVE payload: an overwrite only
    // charges the delta, exactly like FileSampleStore's directory.
    DSHUF_CHECK_LE(live_bytes_ - old_len + payload.size(),
                   cfg_.capacity_bytes,
                   "mmap_store: save(" << id
                                       << ") exceeds capacity_bytes bound");
  }
  const std::uint64_t ref = append_locked(id, payload);
  index_->put(id, ref);
  if (had) quarantine_locked(old_ref, static_cast<std::uint32_t>(old_len));
  live_bytes_ += payload.size() - old_len;
  DSHUF_COUNTER("store.saves").add(1);
}

std::span<const std::byte> MmapSampleStore::payload_at(
    std::uint64_t ref) const {
  const Segment& seg = segs_[ref_seg(ref)];
  const std::byte* rec = seg.base + ref_off(ref);
  const std::uint32_t enc = load_u32(rec);
  return {rec + kHeaderBytes, enc - 1};
}

MmapSampleStore::PinnedView MmapSampleStore::pin(data::SampleId id) const {
  std::unique_lock<RankedMutex> lk(mu_);
  std::uint64_t ref = 0;
  DSHUF_CHECK(index_->find(id, ref),
              "mmap_store: sample " << id << " not stored");
  const auto bytes = payload_at(ref);
  // Claim a pin slot while still holding the lock: reclaim (also under
  // the lock) either sees this pin or runs before the span was handed
  // out — either way it cannot free bytes a reader can still touch.
  for (std::size_t s = 0; s < kMaxPins; ++s) {
    std::uint64_t expected = 0;
    if (pins_[s].compare_exchange_strong(expected, epoch_,
                                         std::memory_order_acq_rel)) {
      DSHUF_COUNTER("store.reads").add(1);
      return PinnedView(this, s, bytes);
    }
  }
  DSHUF_CHECK(false, "mmap_store: more than " << kMaxPins
                                              << " concurrent pinned views");
  __builtin_unreachable();
}

MmapSampleStore::PinnedView::~PinnedView() {
  if (store_ != nullptr) {
    // Release ordering: every read of the span happens-before a reclaimer
    // observing the slot as free.
    store_->pins_[slot_].store(0, std::memory_order_release);
  }
}

DSHUF_NOALLOC void MmapSampleStore::read(data::SampleId id, ReadFn fn) const {
  PinnedView view = pin(id);
  // Lock dropped; the pin keeps the span stable, so fn may reenter the
  // store (e.g. the exchange deposit path saving into the same store).
  fn(view.bytes());
}

void MmapSampleStore::load_into(data::SampleId id,
                                std::vector<std::byte>& out) const {
  read(id, [&out](std::span<const std::byte> p) {
    out.insert(out.end(), p.begin(), p.end());
  });
}

void MmapSampleStore::remove(data::SampleId id) {
  std::lock_guard<RankedMutex> lk(mu_);
  std::uint64_t ref = 0;
  DSHUF_CHECK(index_->find(id, ref),
              "remove: sample " << id << " not stored");
  index_->erase(id);
  const std::uint32_t len =
      load_u32(segs_[ref_seg(ref)].base + ref_off(ref)) - 1;
  // The record's bytes stay untouched (a pinned reader may still be on
  // them); a tombstone appended to the active segment makes the removal
  // durable across reopen.
  append_tombstone_locked(id);
  quarantine_locked(ref, len);
  live_bytes_ -= len;
  DSHUF_COUNTER("store.removes").add(1);
}

bool MmapSampleStore::contains(data::SampleId id) const {
  std::lock_guard<RankedMutex> lk(mu_);
  std::uint64_t ref = 0;
  return index_->find(id, ref);
}

std::vector<data::SampleId> MmapSampleStore::list() const {
  std::lock_guard<RankedMutex> lk(mu_);
  std::vector<data::SampleId> ids;
  ids.reserve(index_->size());
  index_->for_each(
      [&ids](data::SampleId id, std::uint64_t) { ids.push_back(id); });
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::size_t MmapSampleStore::size() const {
  std::lock_guard<RankedMutex> lk(mu_);
  return index_->size();
}

std::size_t MmapSampleStore::disk_bytes() const {
  std::lock_guard<RankedMutex> lk(mu_);
  return live_bytes_;
}

std::uint64_t MmapSampleStore::min_pinned_locked() const {
  std::uint64_t min = UINT64_MAX;
  for (const auto& p : pins_) {
    const std::uint64_t e = p.load(std::memory_order_acquire);
    if (e != 0 && e < min) min = e;
  }
  return min;
}

void MmapSampleStore::free_segment_locked(std::size_t seg_idx) {
  // A tombstone in this segment may be the only thing masking an older
  // record for the same id in an earlier, still-retained segment file:
  // unlinking the file as-is would resurrect that record (or a stale
  // overwritten payload) on the next reopen/replay. Re-log such
  // tombstones into the active segment first. Ids the index still holds
  // need no mask — their latest record replays after anything it
  // shadows, so sequence order already wins; and with no earlier
  // retained segment there is nothing left to mask.
  bool earlier_retained = false;
  for (std::size_t j = 0; j < seg_idx; ++j) {
    if (segs_[j].base != nullptr) {
      earlier_retained = true;
      break;
    }
  }
  if (earlier_retained) {
    // append_tombstone_locked may grow segs_; walk via stable copies.
    std::byte* const base = segs_[seg_idx].base;
    const std::size_t bump = segs_[seg_idx].bump;
    std::size_t off = 0;
    while (off + kHeaderBytes <= bump) {
      const std::uint32_t enc = load_u32(base + off);
      if (enc == 0) break;
      if (enc == kTombstone) {
        const auto id = static_cast<data::SampleId>(load_u32(base + off + 4));
        std::uint64_t cur = 0;
        if (!index_->find(id, cur)) append_tombstone_locked(id);
        off += kHeaderBytes;
      } else {
        off += kHeaderBytes + (enc - 1);
      }
    }
  }
  Segment& seg = segs_[seg_idx];  // re-fetched: the re-log may grow segs_
  ::munmap(seg.base, seg.map_len);
  seg.base = nullptr;
  // analyze:blocking-ok unlink of a dead segment file is rare + amortised
  std::error_code ec;
  fs::remove(seg.path, ec);
  if (ec) {
    LOG_WARN << "mmap_store: cannot unlink " << seg.path;
  }
  seg.map_len = 0;
  seg.bump = 0;
  if (active_ == seg_idx) active_ = SIZE_MAX;
  DSHUF_COUNTER("store.segments_freed").add(1);
}

void MmapSampleStore::reclaim_locked() {
  const std::uint64_t min_pin = min_pinned_locked();
  std::size_t retired = 0;
  while (quarantine_head_ < quarantine_.size()) {
    const Quarantined& q = quarantine_[quarantine_head_];
    // A pin taken in epoch E can only hold spans live (or quarantined)
    // at E; retiring strictly-older quarantine entries is safe.
    if (q.retire_epoch >= min_pin) break;
    Segment& seg = segs_[ref_seg(q.ref)];
    seg.quarantined_records -= 1;
    quarantined_bytes_ -= q.len;
    ++quarantine_head_;
    ++retired;
  }
  if (quarantine_head_ == quarantine_.size()) {
    quarantine_.clear();
    quarantine_head_ = 0;
  }
  // Sweep dead sealed segments: those whose last quarantined record just
  // retired, AND tombstone-only segments (zero live, zero quarantined
  // from birth) the drain above never references — without this sweep,
  // remove-heavy workloads leak mapped tombstone-only segments until
  // process exit. No pin can point into a candidate: pinning requires a
  // live record at pin time, and its later quarantine entry cannot
  // retire while the pin is held. Ascending order lets a later
  // segment's tombstones drop once everything they mask is unlinked;
  // free_segment_locked may re-log tombstones and grow segs_, so probe
  // by index against a snapshot of the count.
  const std::size_t n = segs_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i != active_ && segs_[i].base != nullptr && segs_[i].sealed &&
        segs_[i].live_records == 0 && segs_[i].quarantined_records == 0) {
      free_segment_locked(i);
    }
  }
  if (retired > 0) DSHUF_COUNTER("store.reclaims").add(retired);
}

void MmapSampleStore::compact_locked() {
  // Copy survivors of cold sealed segments into the active segment and
  // quarantine the originals: the same retire machinery then frees the
  // file once in-flight readers drain.
  const std::size_t n = segs_.size();  // new segments are not candidates
  for (std::size_t i = 0; i < n; ++i) {
    Segment& seg = segs_[i];
    if (seg.base == nullptr || !seg.sealed || i == active_) continue;
    if (seg.live_records == 0) continue;
    if (static_cast<double>(seg.live_payload) >=
        cfg_.compact_live_fraction * static_cast<double>(seg.bump)) {
      continue;
    }
    // append_locked below may grow segs_ and invalidate `seg`; the
    // mapping itself is stable, so walk via stable copies.
    std::byte* const base = seg.base;
    const std::size_t bump = seg.bump;
    std::size_t off = 0;
    while (off + kHeaderBytes <= bump) {
      const std::uint32_t enc = load_u32(base + off);
      if (enc == 0) break;
      if (enc == kTombstone) {
        off += kHeaderBytes;
        continue;
      }
      const std::size_t plen = enc - 1;
      const auto id = static_cast<data::SampleId>(load_u32(base + off + 4));
      std::uint64_t cur = 0;
      // Only records the index still points at are live; stale extents
      // (overwritten or removed) are already in quarantine.
      if (index_->find(id, cur) && cur == pack_ref(i, off)) {
        const std::span<const std::byte> payload{base + off + kHeaderBytes,
                                                 plen};
        const std::uint64_t moved = append_locked(id, payload);
        index_->put(id, moved);
        quarantine_locked(pack_ref(i, off),
                          static_cast<std::uint32_t>(plen));
      }
      off += kHeaderBytes + plen;
    }
    DSHUF_COUNTER("store.compactions").add(1);
  }
}

std::uint64_t MmapSampleStore::advance_epoch() {
  std::lock_guard<RankedMutex> lk(mu_);
  epoch_ += 1;
  reclaim_locked();
  compact_locked();
  update_gauges_locked();
  return epoch_;
}

void MmapSampleStore::reclaim() {
  std::lock_guard<RankedMutex> lk(mu_);
  reclaim_locked();
  update_gauges_locked();
}

void MmapSampleStore::update_gauges_locked() const {
  std::size_t resident = 0;
  std::size_t mapped = 0;
  for (const auto& seg : segs_) {
    if (seg.base != nullptr) {
      resident += seg.map_len;
      ++mapped;
    }
  }
  DSHUF_GAUGE("store.resident_bytes").set(static_cast<std::int64_t>(resident));
  DSHUF_GAUGE("store.live_bytes").set(static_cast<std::int64_t>(live_bytes_));
  DSHUF_GAUGE("store.quarantine_bytes")
      .set(static_cast<std::int64_t>(quarantined_bytes_));
  DSHUF_GAUGE("store.segments").set(static_cast<std::int64_t>(mapped));
  const std::uint64_t lag =
      quarantine_head_ < quarantine_.size()
          ? epoch_ - quarantine_[quarantine_head_].retire_epoch
          : 0;
  DSHUF_GAUGE("store.reclaim_lag_epochs").set(static_cast<std::int64_t>(lag));
}

std::size_t MmapSampleStore::resident_bytes() const {
  std::lock_guard<RankedMutex> lk(mu_);
  std::size_t total = 0;
  for (const auto& seg : segs_) {
    if (seg.base != nullptr) total += seg.map_len;
  }
  return total;
}

std::size_t MmapSampleStore::quarantined_bytes() const {
  std::lock_guard<RankedMutex> lk(mu_);
  return quarantined_bytes_;
}

std::uint64_t MmapSampleStore::epoch() const {
  std::lock_guard<RankedMutex> lk(mu_);
  return epoch_;
}

std::uint64_t MmapSampleStore::reclaim_lag() const {
  std::lock_guard<RankedMutex> lk(mu_);
  return quarantine_head_ < quarantine_.size()
             ? epoch_ - quarantine_[quarantine_head_].retire_epoch
             : 0;
}

std::size_t MmapSampleStore::segment_count() const {
  std::lock_guard<RankedMutex> lk(mu_);
  std::size_t n = 0;
  for (const auto& seg : segs_) {
    if (seg.base != nullptr) ++n;
  }
  return n;
}

SlotIndexStats MmapSampleStore::index_stats() const {
  std::lock_guard<RankedMutex> lk(mu_);
  return index_->stats();
}

}  // namespace dshuf::io
