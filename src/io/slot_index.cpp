#include "io/slot_index.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/noalloc.hpp"

namespace dshuf::io {

namespace {

std::atomic<SlotIndexKind> g_slot_index_kind{SlotIndexKind::kOpenAddressing};

// splitmix32 finaliser — cheap, well-mixed hash for dense or sparse ids.
std::uint32_t hash_id(data::SampleId id) {
  std::uint32_t x = id;
  x ^= x >> 16;
  x *= 0x7FEB352DU;
  x ^= x >> 15;
  x *= 0x846CA68BU;
  x ^= x >> 16;
  return x;
}

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 16;
  while (p < n) p *= 2;
  return p;
}

// ------------------------------------------------------- open addressing --

class OpenAddressingIndex final : public SlotIndex {
 public:
  bool put(data::SampleId id, std::uint64_t value) override {
    // Grow before probing so the 3/4 load bound (used + tombstones) holds;
    // rehashing also sweeps tombstones out.
    if (4 * (used_ + tombstones_ + 1) >= 3 * table_.size()) {
      rehash(2 * (used_ + 1));
    }
    const std::size_t mask = table_.size() - 1;
    std::size_t slot = hash_id(id) & mask;
    std::size_t insert_at = table_.size();  // first reusable tombstone
    while (table_[slot].state != kEmpty) {
      if (table_[slot].state == kUsed && table_[slot].id == id) {
        table_[slot].value = value;
        return false;
      }
      if (table_[slot].state == kTombstone && insert_at == table_.size()) {
        insert_at = slot;
      }
      slot = (slot + 1) & mask;
    }
    if (insert_at == table_.size()) {
      insert_at = slot;
    } else {
      --tombstones_;
    }
    table_[insert_at] = Entry{id, value, kUsed};
    ++used_;
    return true;
  }

  DSHUF_NOALLOC bool find(data::SampleId id,
                          std::uint64_t& out) const override {
    ++stats_.lookups;
    if (table_.empty()) return false;
    const std::size_t mask = table_.size() - 1;
    std::size_t slot = hash_id(id) & mask;
    while (table_[slot].state != kEmpty) {
      ++stats_.probes;
      if (table_[slot].state == kUsed && table_[slot].id == id) {
        out = table_[slot].value;
        return true;
      }
      slot = (slot + 1) & mask;
    }
    return false;
  }

  bool erase(data::SampleId id) override {
    if (table_.empty()) return false;
    const std::size_t mask = table_.size() - 1;
    std::size_t slot = hash_id(id) & mask;
    while (table_[slot].state != kEmpty) {
      if (table_[slot].state == kUsed && table_[slot].id == id) {
        table_[slot].state = kTombstone;
        --used_;
        ++tombstones_;
        return true;
      }
      slot = (slot + 1) & mask;
    }
    return false;
  }

  [[nodiscard]] std::size_t size() const override { return used_; }

  void clear() override {
    // Steady state: same table, wiped in place — no allocation.
    std::fill(table_.begin(), table_.end(), Entry{});
    used_ = 0;
    tombstones_ = 0;
  }

  void for_each(
      FunctionRef<void(data::SampleId, std::uint64_t)> fn) const override {
    for (const Entry& e : table_) {
      if (e.state == kUsed) fn(e.id, e.value);
    }
  }

  [[nodiscard]] SlotIndexKind kind() const override {
    return SlotIndexKind::kOpenAddressing;
  }
  [[nodiscard]] SlotIndexStats stats() const override { return stats_; }

 private:
  struct Entry {
    data::SampleId id = 0;
    std::uint64_t value = 0;
    std::uint8_t state = 0;
  };
  static constexpr std::uint8_t kEmpty = 0;
  static constexpr std::uint8_t kUsed = 1;
  static constexpr std::uint8_t kTombstone = 2;

  void rehash(std::size_t min_slots) {
    ++stats_.rebuilds;
    const std::size_t size = next_pow2(min_slots * 2);
    std::vector<Entry> old = std::move(table_);
    table_.assign(size, Entry{});
    used_ = 0;
    tombstones_ = 0;
    const std::size_t mask = table_.size() - 1;
    for (const Entry& e : old) {
      if (e.state != kUsed) continue;
      std::size_t slot = hash_id(e.id) & mask;
      while (table_[slot].state != kEmpty) slot = (slot + 1) & mask;
      table_[slot] = e;
      ++used_;
    }
  }

  std::vector<Entry> table_;
  std::size_t used_ = 0;
  std::size_t tombstones_ = 0;
  mutable SlotIndexStats stats_;
};

// --------------------------------------------------------- learned index --

// Piecewise-linear learned core + hash delta buffer (AFLI/NFL shape):
//
//   * core: keys/values sorted ascending, plus greedy linear segments fit
//     with a hard error bound — |predicted - actual| <= kErrorBound for
//     every core key, by construction. A lookup picks the segment by
//     binary search on its first key, predicts the position, and resolves
//     with a binary search over the 2*kErrorBound+1 candidate window.
//     Erases tombstone core entries in place.
//   * delta: fresh inserts land in an open-addressing buffer (O(1), no
//     sorted-shift cost); once the delta outgrows max(kDeltaMin, core/4)
//     — or tombstones dominate — it is sorted and merged into a rebuilt
//     core. The 25%-growth trigger keeps total merge work O(n) amortised
//     across n inserts.
class LearnedSlotIndex final : public SlotIndex {
 public:
  static constexpr std::size_t kErrorBound = 32;
  static constexpr std::size_t kDeltaMin = 64;

  bool put(data::SampleId id, std::uint64_t value) override {
    std::size_t pos = 0;
    if (core_pos(id, pos)) {
      vals_[pos] = value;
      if (dead_[pos]) {
        dead_[pos] = 0;
        --dead_count_;
        return true;
      }
      return false;
    }
    const bool fresh = delta_.put(id, value);
    maybe_rebuild();
    return fresh;
  }

  DSHUF_NOALLOC bool find(data::SampleId id,
                          std::uint64_t& out) const override {
    ++stats_.lookups;
    if (delta_.size() != 0) {
      std::uint64_t v = 0;
      if (delta_find(id, v)) {
        out = v;
        return true;
      }
    }
    std::size_t pos = 0;
    if (!core_find(id, pos)) return false;
    if (dead_[pos]) return false;
    out = vals_[pos];
    return true;
  }

  bool erase(data::SampleId id) override {
    if (delta_.erase(id)) return true;
    std::size_t pos = 0;
    if (!core_pos(id, pos) || dead_[pos]) return false;
    dead_[pos] = 1;
    ++dead_count_;
    maybe_rebuild();
    return true;
  }

  [[nodiscard]] std::size_t size() const override {
    return keys_.size() - dead_count_ + delta_.size();
  }

  void clear() override {
    keys_.clear();
    vals_.clear();
    dead_.clear();
    segs_.clear();
    delta_.clear();
    dead_count_ = 0;
  }

  void for_each(
      FunctionRef<void(data::SampleId, std::uint64_t)> fn) const override {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (!dead_[i]) fn(keys_[i], vals_[i]);
    }
    delta_.for_each(fn);
  }

  [[nodiscard]] SlotIndexKind kind() const override {
    return SlotIndexKind::kLearned;
  }
  [[nodiscard]] SlotIndexStats stats() const override {
    SlotIndexStats s = stats_;
    const SlotIndexStats d = delta_.stats();
    s.probes += d.probes;
    return s;
  }

  /// Linear segments currently modelling the core (tests inspect fit).
  [[nodiscard]] std::size_t segment_count() const { return segs_.size(); }

 private:
  struct Segment {
    data::SampleId first_key = 0;
    double slope = 0.0;
    std::uint32_t begin = 0;  // core position of first_key
    std::uint32_t end = 0;    // one past the last core position covered
  };

  /// Predicted core position of `id` within `seg`, clamped to its range.
  [[nodiscard]] std::size_t predict(const Segment& seg,
                                    data::SampleId id) const {
    const double raw =
        static_cast<double>(seg.begin) +
        seg.slope * (static_cast<double>(id) -
                     static_cast<double>(seg.first_key));
    const double lo = static_cast<double>(seg.begin);
    const double hi = static_cast<double>(seg.end - 1);
    return static_cast<std::size_t>(std::llround(std::clamp(raw, lo, hi)));
  }

  /// Bounded last-mile search: binary search the ±kErrorBound window
  /// around the model's prediction. Construction guarantees every core
  /// key lands inside its window, so there is no fallback scan — a miss
  /// here is a genuine absence.
  DSHUF_NOALLOC bool core_find(data::SampleId id, std::size_t& pos) const {
    if (segs_.empty() || id < segs_.front().first_key) return false;
    // Segment by binary search on first_key (few segments; counted as
    // model navigation, not last-mile probes).
    std::size_t lo = 0;
    std::size_t hi = segs_.size();
    while (hi - lo > 1) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (segs_[mid].first_key <= id) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    const Segment& seg = segs_[lo];
    const std::size_t pred = predict(seg, id);
    std::size_t wlo = seg.begin;
    if (pred - seg.begin > kErrorBound) wlo = pred - kErrorBound;
    std::size_t whi = std::min<std::size_t>(seg.end, pred + kErrorBound + 1);
    while (wlo < whi) {
      ++stats_.probes;
      const std::size_t mid = wlo + (whi - wlo) / 2;
      if (keys_[mid] == id) {
        pos = mid;
        return true;
      }
      if (keys_[mid] < id) {
        wlo = mid + 1;
      } else {
        whi = mid;
      }
    }
    return false;
  }

  /// core_find without the lookup/probe accounting (mutation paths).
  bool core_pos(data::SampleId id, std::size_t& pos) {
    return core_find(id, pos);
  }

  void maybe_rebuild() {
    const std::size_t core_live = keys_.size() - dead_count_;
    const std::size_t threshold = std::max(kDeltaMin, core_live / 4);
    if (delta_.size() > threshold || dead_count_ > core_live) rebuild();
  }

  void rebuild() {
    ++stats_.rebuilds;
    // Collect the delta, sort it, and merge with the live core.
    std::vector<std::pair<data::SampleId, std::uint64_t>> add;
    add.reserve(delta_.size());
    delta_.for_each([&](data::SampleId id, std::uint64_t v) {
      add.emplace_back(id, v);
    });
    std::sort(add.begin(), add.end());

    std::vector<data::SampleId> keys;
    std::vector<std::uint64_t> vals;
    keys.reserve(keys_.size() - dead_count_ + add.size());
    vals.reserve(keys.capacity());
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < keys_.size() || j < add.size()) {
      while (i < keys_.size() && dead_[i]) ++i;
      const bool take_core =
          i < keys_.size() &&
          (j >= add.size() || keys_[i] < add[j].first);
      if (take_core) {
        keys.push_back(keys_[i]);
        vals.push_back(vals_[i]);
        ++i;
      } else if (j < add.size()) {
        keys.push_back(add[j].first);
        vals.push_back(add[j].second);
        ++j;
      }
    }
    keys_ = std::move(keys);
    vals_ = std::move(vals);
    dead_.assign(keys_.size(), 0);
    dead_count_ = 0;
    delta_.clear();
    fit_segments();
  }

  /// Greedy bounded-error piecewise-linear fit over (key, position): a
  /// segment extends while some slope keeps every covered key's predicted
  /// position within ±kErrorBound of the truth (the feasible-slope
  /// interval stays non-empty).
  void fit_segments() {
    segs_.clear();
    const std::size_t n = keys_.size();
    std::size_t i = 0;
    while (i < n) {
      const double k0 = static_cast<double>(keys_[i]);
      double lo = -std::numeric_limits<double>::infinity();
      double hi = std::numeric_limits<double>::infinity();
      std::size_t j = i + 1;
      const auto eps = static_cast<double>(kErrorBound);
      while (j < n) {
        const double dk = static_cast<double>(keys_[j]) - k0;
        const double dp = static_cast<double>(j - i);
        const double nlo = std::max(lo, (dp - eps) / dk);
        const double nhi = std::min(hi, (dp + eps) / dk);
        if (nlo > nhi) break;
        lo = nlo;
        hi = nhi;
        ++j;
      }
      Segment seg;
      seg.first_key = keys_[i];
      seg.begin = static_cast<std::uint32_t>(i);
      seg.end = static_cast<std::uint32_t>(j);
      seg.slope = (j == i + 1) ? 0.0 : (lo + hi) / 2.0;
      segs_.push_back(seg);
      i = j;
    }
  }

  std::vector<data::SampleId> keys_;  // sorted, unique
  std::vector<std::uint64_t> vals_;
  std::vector<std::uint8_t> dead_;    // core tombstones
  std::vector<Segment> segs_;
  OpenAddressingIndex delta_;         // unmerged inserts
  std::size_t dead_count_ = 0;
  mutable SlotIndexStats stats_;

  DSHUF_NOALLOC bool delta_find(data::SampleId id, std::uint64_t& out) const {
    return delta_.find(id, out);
  }
};

}  // namespace

std::string to_string(SlotIndexKind kind) {
  switch (kind) {
    case SlotIndexKind::kOpenAddressing:
      return "open_addressing";
    case SlotIndexKind::kLearned:
      return "learned";
  }
  return "?";
}

SlotIndexKind slot_index_kind() {
  return g_slot_index_kind.load(std::memory_order_acquire);
}

void set_slot_index_kind(SlotIndexKind kind) {
  g_slot_index_kind.store(kind, std::memory_order_release);
}

std::unique_ptr<SlotIndex> make_slot_index(SlotIndexKind kind) {
  switch (kind) {
    case SlotIndexKind::kOpenAddressing:
      return std::make_unique<OpenAddressingIndex>();
    case SlotIndexKind::kLearned:
      return std::make_unique<LearnedSlotIndex>();
  }
  DSHUF_CHECK(false, "unknown SlotIndexKind");
  return nullptr;
}

std::unique_ptr<SlotIndex> make_slot_index() {
  return make_slot_index(slot_index_kind());
}

}  // namespace dshuf::io
