#include "io/storage.hpp"

namespace dshuf::io {

namespace {
constexpr double kKiB = 1024.0;
constexpr double kMiB = 1024.0 * kKiB;
constexpr double kGiB = 1024.0 * kMiB;
constexpr double kTiB = 1024.0 * kGiB;
constexpr double kPiB = 1024.0 * kTiB;
}  // namespace

std::string to_string(TierKind k) {
  switch (k) {
    case TierKind::kPfs:
      return "pfs";
    case TierKind::kNodeLocalSsd:
      return "node-local-ssd";
    case TierKind::kBurstBuffer:
      return "burst-buffer";
    case TierKind::kTmpfs:
      return "tmpfs";
  }
  return "?";
}

SystemProfile abci_profile() {
  SystemProfile p;
  p.name = "ABCI";
  p.pfs = StorageTier{
      .kind = TierKind::kPfs,
      .name = "Lustre (35 PB)",
      .capacity_bytes = 35 * kPiB,
      .bandwidth_bps = 1.2 * kGiB,        // per-worker peak, uncontended
      .per_file_latency_s = 4.0e-4,       // metadata RPC per small file
      .shared_backend_bps = 40 * kGiB,    // effective aggregate for DL
                                          // small-file read patterns
      .straggler_sigma = 0.9,             // reproduces the 11.9-142 s spread
  };
  p.node_local = StorageTier{
      .kind = TierKind::kNodeLocalSsd,
      .name = "NVMe SSD (1.6 TB/node)",
      .capacity_bytes = 1.6e12 / 4,  // node SSD shared by 4 workers (GPUs)
      .bandwidth_bps = 0.75 * kGiB,  // per-worker share of node NVMe
      .per_file_latency_s = 2.0e-5,
      .shared_backend_bps = 0,
      .straggler_sigma = 0.05,
  };
  p.network_injection_bps = 12.5 * kGiB;  // InfiniBand EDR
  p.network_bisection_bps = 1600 * kGiB;
  p.allreduce_bus_bps = 5 * kGiB;
  return p;
}

SystemProfile fugaku_profile() {
  SystemProfile p;
  p.name = "Fugaku";
  p.pfs = StorageTier{
      .kind = TierKind::kPfs,
      .name = "Lustre/FEFS (150 PB)",
      .capacity_bytes = 150 * kPiB,
      .bandwidth_bps = 0.8 * kGiB,
      .per_file_latency_s = 5.0e-4,
      .shared_backend_bps = 50 * kGiB,  // effective for DL read patterns
      .straggler_sigma = 0.9,
  };
  p.node_local = StorageTier{
      .kind = TierKind::kNodeLocalSsd,
      .name = "shared SSD slice (~50 GB/node 'local' mode)",
      .capacity_bytes = 50 * 1e9 / 4,  // per worker (4 ranks/node)
      .bandwidth_bps = 0.35 * kGiB,    // 1.6 TB SSD shared by 16 nodes
      .per_file_latency_s = 5.0e-5,
      .shared_backend_bps = 0,
      .straggler_sigma = 0.08,
  };
  p.network_injection_bps = 6.8 * kGiB;  // TofuD injection
  p.network_bisection_bps = 3200 * kGiB;
  p.allreduce_bus_bps = 3 * kGiB;
  return p;
}

StagingCost staging_cost(const SystemProfile& system, double dataset_bytes,
                         std::size_t workers, bool replicate_full,
                         double q) {
  StagingCost c;
  const double m = static_cast<double>(workers);
  c.bytes_per_worker = replicate_full
                           ? dataset_bytes
                           : (1.0 + q) * dataset_bytes / m;
  c.aggregate_pfs_bytes = c.bytes_per_worker * m;
  // Every worker streams its share from the PFS concurrently; the PFS
  // backend is shared, the local write side is private.
  const double pfs_share =
      std::min(system.pfs.bandwidth_bps, system.pfs.shared_backend_bps / m);
  const double bw = std::min(pfs_share, system.node_local.bandwidth_bps);
  c.time_s = c.bytes_per_worker / bw;
  return c;
}

const std::vector<Top500Entry>& top500_systems() {
  // Figure 1's fifteen fastest systems (TOP500 Nov 2020). Per-node
  // dedicated storage read off the paper's log-scale figure; systems with
  // neither local SSDs nor network-attached flash carry 0. Burst-buffer
  // systems (Frontera, Piz Daint, Trinity) show the per-node proportional
  // share, as the paper does.
  static const std::vector<Top500Entry> systems = {
      {"Fugaku", 1, 50e9, false, false},       // shared-SSD local slice
      {"Summit", 2, 1.6e12, false, false},     // 1.6 TB NV per node
      {"Sierra", 3, 1.6e12, false, false},
      {"Sunway TaihuLight", 4, 0, false, false},
      {"Selene", 5, 3.84e12, false, true},     // DGX A100, DL-designed
      {"Tianhe-2A", 6, 0, false, false},
      {"JUWELS Booster", 7, 0, false, false},
      {"HPC5", 8, 0, false, false},
      {"Frontera", 9, 480e9, true, false},     // burst buffer share
      {"Dammam-7", 10, 0, false, false},
      {"Marconi-100", 11, 1.6e12, false, false},
      {"Piz Daint", 12, 120e9, true, false},   // burst buffer share
      {"Trinity", 13, 180e9, true, false},     // burst buffer share
      {"AI Bridging Cloud (ABCI)", 14, 1.6e12, false, true},
      {"SuperMUC-NG", 15, 0, false, false},
  };
  return systems;
}

const std::vector<DatasetSizeEntry>& figure1_datasets() {
  // The red horizontal lines of Figure 1 (top to bottom), sizes as the
  // paper reports or as published for the cited datasets.
  static const std::vector<DatasetSizeEntry> datasets = {
      {"JFT-300M (est.)", 30e12},
      {"Google OpenImages", 18e12},
      {"DeepCAM", 8.2e12},
      {"C4 (Common Crawl, cleaned)", 7.0e12},
      {"YouTube-8M (features)", 1.5e12},
      {"ImageNet-21K", 1.1e12},
      {"Open Catalyst 2020", 0.66e12},
      {"ImageNet-1K", 0.14e12},
      {"FieldSafe", 0.08e12},
  };
  return datasets;
}

}  // namespace dshuf::io
