#include "io/file_store.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>

#include <mutex>

#include "util/error.hpp"
#include "util/log.hpp"

namespace dshuf::io {

namespace fs = std::filesystem;

FileSampleStore::FileSampleStore(fs::path dir) : dir_(std::move(dir)) {
  fs::create_directories(dir_);
}

fs::path FileSampleStore::path_for(data::SampleId id) const {
  return dir_ / (std::to_string(id) + ".sample");
}

void FileSampleStore::save(data::SampleId id,
                           std::span<const std::byte> payload) {
  std::lock_guard<RankedMutex> lk(mu_);
  // Serialized disk I/O is this store's contract; kFileStore is near the
  // top of the rank order so nothing hot waits on it.
  // analyze:blocking-ok serialized disk I/O is the store's contract
  std::ofstream f(path_for(id), std::ios::binary | std::ios::trunc);
  DSHUF_CHECK(f.good(), "cannot open " << path_for(id) << " for writing");
  f.write(reinterpret_cast<const char*>(payload.data()),
          static_cast<std::streamsize>(payload.size()));
  DSHUF_CHECK(f.good(), "short write to " << path_for(id));
}

std::vector<std::byte> FileSampleStore::load(data::SampleId id) const {
  std::vector<std::byte> out;
  load_into(id, out);
  return out;
}

void FileSampleStore::read(data::SampleId id, ReadFn fn) const {
  std::vector<std::byte> buf;
  {
    std::lock_guard<RankedMutex> lk(mu_);
    buf.swap(scratch_);  // borrow the pooled capacity
    const auto p = path_for(id);
    // analyze:blocking-ok serialized disk I/O is this store's contract
    std::ifstream f(p, std::ios::binary | std::ios::ate);
    DSHUF_CHECK(f.good(), "sample " << id << " not found in " << dir_);
    const auto size = static_cast<std::size_t>(f.tellg());
    f.seekg(0);
    // analyze:alloc-ok buf grows to the largest payload once, then the
    // capacity is returned to scratch_ and reused across reads
    buf.resize(size);
    f.read(reinterpret_cast<char*>(buf.data()),
           static_cast<std::streamsize>(size));
    DSHUF_CHECK(f.good(), "short read from " << p);
  }
  // Lock dropped before the callback — the SampleSource::read contract
  // lets fn reenter the store (e.g. the exchange deposit path), exactly
  // as MmapSampleStore::read allows; holding mu_ here would deadlock
  // code written against the shared interface.
  fn(std::span<const std::byte>(buf.data(), buf.size()));
  std::lock_guard<RankedMutex> lk(mu_);
  scratch_.swap(buf);  // return the capacity for the next read
}

void FileSampleStore::load_into(data::SampleId id,
                                std::vector<std::byte>& out) const {
  std::lock_guard<RankedMutex> lk(mu_);
  const auto p = path_for(id);
  // analyze:blocking-ok serialized disk I/O is this store's contract
  std::ifstream f(p, std::ios::binary | std::ios::ate);
  DSHUF_CHECK(f.good(), "sample " << id << " not found in " << dir_);
  const auto size = static_cast<std::size_t>(f.tellg());
  f.seekg(0);
  const std::size_t prefix = out.size();
  out.resize(prefix + size);
  f.read(reinterpret_cast<char*>(out.data() + prefix),
         static_cast<std::streamsize>(size));
  DSHUF_CHECK(f.good(), "short read from " << p);
}

void FileSampleStore::remove(data::SampleId id) {
  std::lock_guard<RankedMutex> lk(mu_);
  const auto p = path_for(id);
  DSHUF_CHECK(fs::exists(p), "remove: sample " << id << " not stored");
  fs::remove(p);
}

bool FileSampleStore::contains(data::SampleId id) const {
  std::lock_guard<RankedMutex> lk(mu_);
  return fs::exists(path_for(id));
}

std::vector<data::SampleId> FileSampleStore::list() const {
  std::lock_guard<RankedMutex> lk(mu_);
  std::vector<data::SampleId> ids;
  // analyze:blocking-ok cold maintenance path; dir walk under lock is fine
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (!entry.is_regular_file()) continue;
    const auto stem = entry.path().stem().string();
    // Foreign files (editor swap files, partial downloads) must not crash
    // the walk: stoul would throw on a non-numeric stem.
    if (stem.empty() ||
        stem.find_first_not_of("0123456789") != std::string::npos) {
      LOG_WARN << "file_store: ignoring foreign file " << entry.path();
      continue;
    }
    ids.push_back(static_cast<data::SampleId>(std::stoul(stem)));
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::size_t FileSampleStore::size() const {
  std::lock_guard<RankedMutex> lk(mu_);
  std::size_t n = 0;
  // analyze:blocking-ok cold observability path; dir walk under lock is fine
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.is_regular_file()) ++n;
  }
  return n;
}

std::size_t FileSampleStore::disk_bytes() const {
  std::lock_guard<RankedMutex> lk(mu_);
  std::size_t total = 0;
  // analyze:blocking-ok cold observability path; dir walk under lock is fine
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.is_regular_file()) {
      total += static_cast<std::size_t>(entry.file_size());
    }
  }
  return total;
}

std::vector<std::byte> serialize_sample(const data::InMemoryDataset& ds,
                                        data::SampleId id) {
  std::vector<std::byte> out;
  serialize_sample_into(ds, id, out);
  return out;
}

void serialize_sample_into(const data::InMemoryDataset& ds, data::SampleId id,
                           std::vector<std::byte>& out) {
  DSHUF_CHECK_LT(id, ds.size(), "sample id out of range");
  const std::size_t d = ds.feature_dim();
  const std::size_t prefix = out.size();
  out.resize(prefix + sizeof(std::uint32_t) + d * sizeof(float));
  const std::uint32_t label = ds.label(id);
  std::memcpy(out.data() + prefix, &label, sizeof(label));
  const float* row = ds.features().data() + static_cast<std::size_t>(id) * d;
  std::memcpy(out.data() + prefix + sizeof(label), row, d * sizeof(float));
}

std::uint32_t deserialize_sample_into(std::span<const std::byte> payload,
                                      std::span<float> features_out) {
  DSHUF_CHECK_GE(payload.size(), sizeof(std::uint32_t),
                 "sample payload too short");
  DSHUF_CHECK_EQ(payload.size() - sizeof(std::uint32_t),
                 features_out.size() * sizeof(float),
                 "payload feature bytes do not match the output row");
  std::uint32_t label = 0;
  std::memcpy(&label, payload.data(), sizeof(label));
  std::memcpy(features_out.data(), payload.data() + sizeof(label),
              features_out.size() * sizeof(float));
  return label;
}

DeserializedSample deserialize_sample(std::span<const std::byte> payload) {
  DSHUF_CHECK_GE(payload.size(), sizeof(std::uint32_t),
                 "sample payload too short");
  DeserializedSample s;
  std::memcpy(&s.label, payload.data(), sizeof(s.label));
  const std::size_t nfloats =
      (payload.size() - sizeof(s.label)) / sizeof(float);
  s.features.resize(nfloats);
  std::memcpy(s.features.data(), payload.data() + sizeof(s.label),
              nfloats * sizeof(float));
  return s;
}

}  // namespace dshuf::io
