// Segment-based, mmap-backed sample payload store.
//
// FileSampleStore pays one file (metadata round trip, open/read/close)
// per sample — fine at thousands of samples per rank, hopeless at the
// paper's million-sample shards. MmapSampleStore amortises that cost
// over fixed-size SEGMENT files: payloads are append-allocated into the
// current segment's mapping, the id -> slot map is a pluggable
// io::SlotIndex (open-addressing or learned, ScopedSlotIndex-selectable),
// and a read hands out a std::span pointing STRAIGHT INTO the mapped
// segment — zero copies between page cache and the exchange's wire frame
// or the batch tensor.
//
// Because reads escape the store lock (that is the point: packing a wire
// frame from the span must not serialise against deposits), removal
// cannot free bytes immediately. The store uses EPOCH-BASED RECLAMATION
// (cf. mx/memory/reclamation/epoch_manager.h in the mxtasking exemplar):
//
//   * every read pins the store's current epoch for the duration of the
//     span's lifetime (RAII PinnedView / the read() callback);
//   * remove/overwrite QUARANTINES the old slot, tagged with the current
//     epoch — the bytes stay mapped and untouched;
//   * advance_epoch() bumps the epoch and retires every quarantined slot
//     whose tag is strictly below the minimum pinned epoch: no reader
//     that could still hold the span survives, so the bytes are dead;
//   * a sealed segment whose records have all died (including segments
//     holding only tombstones) is unmapped and its file deleted; a sealed
//     segment whose live fraction drops under the compaction threshold
//     has its survivors copied to the active segment (index re-pointed,
//     old extents quarantined) so the file can be freed on a later epoch;
//   * before a segment file is unlinked, any tombstone it holds for an id
//     still absent from the index is RE-LOGGED into the active segment
//     while an earlier segment file survives on disk — otherwise the next
//     reopen would replay the earlier segment's record unmasked and
//     resurrect a removed sample.
//
// On-disk format (per segment file, replayed on reopen in segment order):
//   record   := [u32 enc][u32 id][payload]
//   enc      := 0            end of segment (zero-filled tail)
//             | 0xFFFFFFFF   tombstone for id (remove survives reopen)
//             | len + 1      live record of len payload bytes
//
// disk_bytes() reports LIVE payload bytes only — byte-identical to
// FileSampleStore over any schedule (the differential suite asserts it),
// so the paper's (1+Q)*N/M capacity bound is enforced byte-exactly via
// capacity_bytes. resident_bytes() additionally counts mapped framing,
// dead and quarantined space — the operational footprint.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "io/slot_index.hpp"
#include "io/storage.hpp"
#include "util/ranked_mutex.hpp"

namespace dshuf::io {

struct MmapStoreConfig {
  std::filesystem::path dir;
  /// Nominal segment file size; a single oversized payload gets a
  /// dedicated page-rounded segment of its own.
  std::size_t segment_bytes = std::size_t{4} << 20;
  /// Maximum LIVE payload bytes (0 = unlimited): the byte-exact
  /// (1+Q)*N/M bound. save() throws when an insert would exceed it.
  std::size_t capacity_bytes = 0;
  /// Sealed segments whose live payload fraction falls below this are
  /// compacted on advance_epoch().
  double compact_live_fraction = 0.25;
  /// Index backend; defaults to the process-wide ScopedSlotIndex choice
  /// at construction time.
  SlotIndexKind index_kind = slot_index_kind();
};

class MmapSampleStore final : public SampleStore {
 public:
  /// Opens (or creates) the store under cfg.dir; existing segment files
  /// are mapped and replayed, so a store survives process restarts.
  explicit MmapSampleStore(MmapStoreConfig cfg);
  explicit MmapSampleStore(std::filesystem::path dir);
  ~MmapSampleStore() override;
  MmapSampleStore(const MmapSampleStore&) = delete;
  MmapSampleStore& operator=(const MmapSampleStore&) = delete;

  // ------------------------------------------------------- SampleStore --
  void save(data::SampleId id, std::span<const std::byte> payload) override;
  void load_into(data::SampleId id,
                 std::vector<std::byte>& out) const override;
  /// Zero-copy read: `fn` runs WITHOUT the store lock, on a span into the
  /// mapped segment, under an epoch pin — concurrent save/remove/reclaim
  /// cannot invalidate it. Reentering the store from `fn` is allowed.
  void read(data::SampleId id, ReadFn fn) const override;
  void remove(data::SampleId id) override;
  [[nodiscard]] bool contains(data::SampleId id) const override;
  [[nodiscard]] std::vector<data::SampleId> list() const override;
  [[nodiscard]] std::size_t size() const override;
  [[nodiscard]] std::size_t disk_bytes() const override;

  // ------------------------------------------------------ epochs & GC --

  /// RAII pinned view: the span stays valid until destruction, whatever
  /// other threads save/remove/reclaim in the meantime.
  class PinnedView {
   public:
    PinnedView(PinnedView&& other) noexcept
        : store_(other.store_), slot_(other.slot_), bytes_(other.bytes_) {
      other.store_ = nullptr;
    }
    PinnedView& operator=(PinnedView&&) = delete;
    PinnedView(const PinnedView&) = delete;
    PinnedView& operator=(const PinnedView&) = delete;
    ~PinnedView();
    [[nodiscard]] std::span<const std::byte> bytes() const { return bytes_; }

   private:
    friend class MmapSampleStore;
    PinnedView(const MmapSampleStore* store, std::size_t slot,
               std::span<const std::byte> bytes)
        : store_(store), slot_(slot), bytes_(bytes) {}
    const MmapSampleStore* store_;
    std::size_t slot_;
    std::span<const std::byte> bytes_;
  };

  /// Pin the current epoch and return a stable view of `id`'s payload;
  /// throws if absent. At most kMaxPins views may be live at once.
  [[nodiscard]] PinnedView pin(data::SampleId id) const;

  /// Enter the next reclamation epoch, retire quarantined slots no
  /// in-flight reader can still see, free empty segments and compact
  /// cold ones. Call once per exchange epoch (after the epoch's pins
  /// have been dropped). Returns the new epoch number.
  std::uint64_t advance_epoch();

  /// Retire whatever is already safe without advancing the epoch.
  void reclaim();

  // ---------------------------------------------------- introspection --

  /// Bytes currently mapped (live + dead + quarantined + unused tail) —
  /// the store's operational memory/disk footprint.
  [[nodiscard]] std::size_t resident_bytes() const;
  /// Payload bytes removed but not yet retired (reclaim backlog).
  [[nodiscard]] std::size_t quarantined_bytes() const;
  /// Current reclamation epoch (starts at 1).
  [[nodiscard]] std::uint64_t epoch() const;
  /// Epochs the oldest quarantined slot has been waiting (0 = none).
  [[nodiscard]] std::uint64_t reclaim_lag() const;
  /// Mapped segment files.
  [[nodiscard]] std::size_t segment_count() const;
  [[nodiscard]] SlotIndexKind index_kind() const { return cfg_.index_kind; }
  [[nodiscard]] SlotIndexStats index_stats() const;
  [[nodiscard]] const std::filesystem::path& dir() const { return cfg_.dir; }

  static constexpr std::size_t kMaxPins = 64;

 private:
  struct Segment {
    std::byte* base = nullptr;  // nullptr once freed
    std::size_t map_len = 0;
    std::size_t bump = 0;
    std::size_t live_records = 0;
    std::size_t live_payload = 0;
    std::size_t quarantined_records = 0;
    bool sealed = false;
    std::filesystem::path path;
  };
  struct Quarantined {
    std::uint64_t ref = 0;
    std::uint32_t len = 0;
    std::uint64_t retire_epoch = 0;
  };

  void open_existing_locked();
  Segment& new_segment_locked(std::size_t min_payload_bytes);
  /// Append a record; returns its packed ref. Lock held.
  std::uint64_t append_locked(data::SampleId id,
                              std::span<const std::byte> payload);
  /// Append a tombstone record for `id` to the active segment. Lock held.
  void append_tombstone_locked(data::SampleId id);
  void quarantine_locked(std::uint64_t ref, std::uint32_t len);
  void reclaim_locked();
  void compact_locked();
  void free_segment_locked(std::size_t seg_idx);
  void update_gauges_locked() const;
  [[nodiscard]] std::uint64_t min_pinned_locked() const;
  [[nodiscard]] std::span<const std::byte> payload_at(std::uint64_t ref) const;

  MmapStoreConfig cfg_;
  std::vector<Segment> segs_;
  std::size_t active_ = SIZE_MAX;  // index into segs_, SIZE_MAX = none
  std::unique_ptr<SlotIndex> index_;
  std::vector<Quarantined> quarantine_;  // FIFO; head_ is the pop cursor
  std::size_t quarantine_head_ = 0;
  std::size_t live_bytes_ = 0;
  std::size_t quarantined_bytes_ = 0;
  std::uint64_t epoch_ = 1;
  /// Pin slots: 0 = free, otherwise the pinned epoch. Claimed under mu_,
  /// released with a store-release so reclaim's acquire-scan sees the
  /// span's last read happen-before the free.
  mutable std::array<std::atomic<std::uint64_t>, kMaxPins> pins_{};
  mutable RankedMutex mu_{LockRank::kFileStore, "io.mmap_store"};
};

}  // namespace dshuf::io
