// Sample-store interface, storage-tier descriptors and system profiles.
//
// The first half defines SampleStore — the abstract "predefined storage
// area" every worker owns (Section III-A): the byte-moving counterpart of
// shuffle::ShardStore's id bookkeeping. Two implementations exist and are
// interchangeable behind this interface: FileSampleStore (one file per
// sample, the paper's supported layout) and MmapSampleStore (segment-based
// mmap-backed slots with epoch reclamation, for million-sample shards).
// The differential test suite drives both through identical schedules and
// asserts bit-identical observable behaviour.
//
// The second half parameterises the performance model (dshuf::perf)
// standing in for the paper's testbeds. Bandwidth/latency constants are
// calibrated so the model reproduces the paper's published measurements
// (Fig. 9/10: DenseNet global-shuffle I/O 19.6 s vs local 8 s at 512
// workers; straggler spread 11.9 s - 142 s; gradient-exchange inflation to
// ~70 s; 5x epoch-time gap at 128 workers), not to model the physical
// systems exactly.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/sample_source.hpp"

namespace dshuf::io {

/// Per-worker sample payload store. All operations are thread-safe; save
/// and remove observe a total order against reads. `read` (inherited from
/// data::SampleSource) is the zero-copy path: the callback's span points
/// at the store's own bytes and is valid only inside the call. Per the
/// SampleSource contract, every implementation runs the callback without
/// its internal lock, so reentering the store from the callback is safe
/// on either backend.
class SampleStore : public data::SampleSource {
 public:
  /// Persist a sample's payload (save hook). Overwrites silently — an
  /// arriving sample replaces any stale copy.
  virtual void save(data::SampleId id, std::span<const std::byte> payload) = 0;

  /// Payload APPENDED to `out` (existing contents preserved) — the shape
  /// the exchange's PayloadFn wants, so a sample streams from the store
  /// straight into a wire frame without an intermediate vector.
  virtual void load_into(data::SampleId id,
                         std::vector<std::byte>& out) const = 0;

  /// Drop a sample (remove hook / clean_local_storage); throws if absent —
  /// removing a sample that was never stored is a logic error.
  virtual void remove(data::SampleId id) = 0;

  /// Ids currently stored, ascending.
  [[nodiscard]] virtual std::vector<data::SampleId> list() const = 0;

  /// Total live payload bytes stored (for (1+Q)-bound verification on
  /// disk). Excludes any framing/index overhead the implementation keeps,
  /// so both stores report the same value for the same contents.
  [[nodiscard]] virtual std::size_t disk_bytes() const = 0;
};

enum class TierKind { kPfs, kNodeLocalSsd, kBurstBuffer, kTmpfs };

std::string to_string(TierKind k);

/// One storage tier as seen by a single worker.
struct StorageTier {
  TierKind kind = TierKind::kNodeLocalSsd;
  std::string name;
  /// Capacity available to one worker, bytes (0 = effectively unlimited).
  double capacity_bytes = 0;
  /// Peak per-worker streaming bandwidth, bytes/s, absent contention.
  double bandwidth_bps = 0;
  /// Fixed per-file overhead, seconds (metadata round trip, open/close).
  double per_file_latency_s = 0;
  /// For shared tiers (PFS, burst buffer): aggregate backend bandwidth the
  /// concurrent readers divide among themselves. 0 = not shared.
  double shared_backend_bps = 0;
  /// Log-normal sigma of the per-worker slowdown under contention; 0 = no
  /// straggler variance. Calibrated from the paper's 11.9 s vs 142 s
  /// spread at 512 readers.
  double straggler_sigma = 0;
};

/// A named machine profile: its tiers plus network constants consumed by
/// the exchange/allreduce models.
struct SystemProfile {
  std::string name;
  StorageTier pfs;
  StorageTier node_local;
  /// Per-worker injection bandwidth for point-to-point traffic, bytes/s.
  double network_injection_bps = 0;
  /// Bisection-limited aggregate bandwidth for the personalised all-to-all,
  /// bytes/s (the exchange pattern's bottleneck at scale).
  double network_bisection_bps = 0;
  /// Allreduce effective bus bandwidth per worker, bytes/s.
  double allreduce_bus_bps = 0;
};

/// ABCI-like profile (V100 nodes, 1.6 TB local NVMe, Lustre PFS).
SystemProfile abci_profile();
/// Fugaku-like profile (shared SSD exposed as ~50 GB node-local slices,
/// TofuD network, Lustre-based PFS).
SystemProfile fugaku_profile();

/// Job-startup staging cost (the paper's conclusion: "there is no need to
/// replicate data everywhere, which reduces the cost of data staging in
/// HPC environments"). Global-shuffle replication stages the FULL dataset
/// to every node; LS/PLS stage only each worker's shard, so the aggregate
/// PFS egress shrinks from M*D to D.
struct StagingCost {
  double bytes_per_worker = 0;
  double aggregate_pfs_bytes = 0;
  /// Wall-clock to stage, gated by min(per-worker PFS share, local write
  /// bandwidth).
  double time_s = 0;
};

/// `replicate_full` = true models global-shuffle replication (D bytes per
/// worker); false models LS/PLS sharding ((1+q) * D/M per worker).
StagingCost staging_cost(const SystemProfile& system, double dataset_bytes,
                         std::size_t workers, bool replicate_full,
                         double q = 0.0);

// ----------------------------------------------------------- Fig. 1 data --

/// One TOP500 system's per-node dedicated storage (Nov 2020 list as used
/// by the paper's Figure 1). Values are approximate, matching the figure's
/// log-scale reading; `network_attached` marks burst-buffer-style flash.
struct Top500Entry {
  std::string name;
  int top500_rank = 0;
  double node_local_bytes = 0;  // 0 = none
  bool network_attached = false;
  bool dl_designed = false;  // the figure's "designed for DL" star
};

/// The fifteen systems of Figure 1, in rank order.
const std::vector<Top500Entry>& top500_systems();

/// One DL dataset from Figure 1's horizontal lines.
struct DatasetSizeEntry {
  std::string name;
  double bytes = 0;
};

/// The datasets of Figure 1, largest first.
const std::vector<DatasetSizeEntry>& figure1_datasets();

}  // namespace dshuf::io
