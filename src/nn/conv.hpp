// 1-D convolutional layers.
//
// Inputs stay rank-2 ([N, features]) for compatibility with the rest of
// the stack; a Conv1d interprets the feature axis as `in_channels`
// channel-major planes of length L (features = in_channels * L) and
// produces out_channels planes of the same length (same-padding, stride
// 1). Together with MaxPool1d and the make_cnn builder this gives the
// proxies genuine architectural structure (weight sharing, locality)
// where the paper's models differ architecturally.
//
// Conv1d is computed as im2col + GEMM (tensor/im2col.hpp feeding the
// blocked kernel), with the bias fused into the scatter back to the
// layer's [N, out_c * L] layout. The pre-overhaul scalar loops survive as
// kernel_ref::conv1d_*_ref and are used when the process-wide
// KernelBackend is kReference.
#pragma once

#include "nn/builder.hpp"
#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace dshuf::nn {

class Conv1d : public Layer {
 public:
  /// Same-padding convolution: kernel must be odd. He initialisation over
  /// fan-in = in_channels * kernel.
  Conv1d(std::size_t in_channels, std::size_t out_channels,
         std::size_t length, std::size_t kernel, Rng& rng);

  void forward_into(const Tensor& x, Tensor& y, bool training) override;
  void backward_into(const Tensor& grad_out, Tensor& grad_in) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  [[nodiscard]] std::string name() const override { return "Conv1d"; }

  [[nodiscard]] std::size_t out_features() const {
    return out_channels_ * length_;
  }

 private:
  // Scratch slot ids (see Layer::scratch): the im2col matrix persists
  // from forward to backward; the rest are per-pass staging.
  static constexpr int kColsSlot = 0;   // [in_c * k, N * L]
  static constexpr int kOutBigSlot = 1;  // [out_c, N * L] forward staging
  static constexpr int kGradBigSlot = 2;  // [out_c, N * L] backward staging
  static constexpr int kDColsSlot = 3;  // [in_c * k, N * L]

  std::size_t in_channels_;
  std::size_t out_channels_;
  std::size_t length_;
  std::size_t kernel_;
  Param weight_;  // [out_c, in_c, k] flattened
  Param bias_;    // [out_c]
  const Tensor* cached_in_ = nullptr;
  std::size_t cached_batch_ = 0;
};

/// Non-overlapping max pooling along the length axis of channel-major
/// planes; length must divide by the window.
class MaxPool1d : public Layer {
 public:
  MaxPool1d(std::size_t channels, std::size_t length, std::size_t window);

  void forward_into(const Tensor& x, Tensor& y, bool training) override;
  void backward_into(const Tensor& grad_out, Tensor& grad_in) override;
  [[nodiscard]] std::string name() const override { return "MaxPool1d"; }

  [[nodiscard]] std::size_t out_features() const {
    return channels_ * (length_ / window_);
  }

 private:
  std::size_t channels_;
  std::size_t length_;
  std::size_t window_;
  std::vector<std::uint32_t> argmax_;  // flat indices into the input
  std::size_t cached_batch_ = 0;
};

/// Small 1-D CNN: [Conv1d -> Norm -> ReLU -> MaxPool1d] blocks over the
/// input treated as a single-channel signal, followed by a linear head.
struct CnnSpec {
  std::size_t input_length = 32;  // == dataset feature_dim
  std::vector<std::size_t> channels = {8, 16};
  std::size_t kernel = 3;
  std::size_t pool = 2;
  std::size_t num_classes = 10;
  NormKind norm = NormKind::kBatchNorm;
};

Model make_cnn(const CnnSpec& spec, Rng& rng);

}  // namespace dshuf::nn
