#include "nn/metrics.hpp"

#include "util/error.hpp"

namespace dshuf::nn {

double top1_accuracy(const Tensor& logits,
                     const std::vector<std::uint32_t>& labels) {
  DSHUF_CHECK_EQ(logits.rows(), labels.size(),
                 "labels must match logits batch size");
  if (labels.empty()) return 0.0;
  const auto preds = argmax_rows(logits);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (preds[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

void AccuracyMeter::update(const Tensor& logits,
                           const std::vector<std::uint32_t>& labels) {
  DSHUF_CHECK_EQ(logits.rows(), labels.size(),
                 "labels must match logits batch size");
  const auto preds = argmax_rows(logits);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (preds[i] == labels[i]) ++correct_;
  }
  total_ += labels.size();
}

}  // namespace dshuf::nn
