#include "nn/checkpoint.hpp"

#include <cstring>
#include <fstream>

#include "nn/model.hpp"
#include "nn/optimizer.hpp"
#include "util/error.hpp"

namespace dshuf::nn {

namespace {

constexpr char kMagic[8] = {'D', 'S', 'H', 'U', 'F', 'C', 'K', 'P'};
constexpr std::uint32_t kVersion = 1;

void write_floats(std::ofstream& f, const std::vector<float>& v) {
  const std::uint64_t count = v.size();
  f.write(reinterpret_cast<const char*>(&count), sizeof(count));
  f.write(reinterpret_cast<const char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(float)));
}

std::vector<float> read_floats(std::ifstream& f, const std::string& what) {
  std::uint64_t count = 0;
  f.read(reinterpret_cast<char*>(&count), sizeof(count));
  DSHUF_CHECK(f.good(), "checkpoint truncated reading " << what << " size");
  // Sanity cap: a corrupt length should not allocate the universe.
  DSHUF_CHECK_LT(count, (1ULL << 32), "implausible " << what << " size");
  std::vector<float> v(count);
  f.read(reinterpret_cast<char*>(v.data()),
         static_cast<std::streamsize>(count * sizeof(float)));
  DSHUF_CHECK(f.good(), "checkpoint truncated reading " << what);
  return v;
}

}  // namespace

Checkpoint make_checkpoint(Model& model, const Sgd& optimizer,
                           std::uint64_t epoch) {
  Checkpoint c;
  c.epoch = epoch;
  c.model_state = model.state();
  c.buffer_state = model.buffer_state();
  c.optimizer_state = optimizer.state();
  return c;
}

void restore_checkpoint(const Checkpoint& ckpt, Model& model,
                        Sgd& optimizer) {
  model.load_state(ckpt.model_state);
  model.load_buffer_state(ckpt.buffer_state);
  optimizer.load_state(ckpt.optimizer_state);
}

void save_checkpoint(const std::string& path, const Checkpoint& ckpt) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  DSHUF_CHECK(f.good(), "cannot open checkpoint file " << path);
  f.write(kMagic, sizeof(kMagic));
  f.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  f.write(reinterpret_cast<const char*>(&ckpt.epoch), sizeof(ckpt.epoch));
  write_floats(f, ckpt.model_state);
  write_floats(f, ckpt.buffer_state);
  write_floats(f, ckpt.optimizer_state);
  DSHUF_CHECK(f.good(), "short write to checkpoint " << path);
}

Checkpoint load_checkpoint(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  DSHUF_CHECK(f.good(), "cannot open checkpoint file " << path);
  char magic[8];
  f.read(magic, sizeof(magic));
  DSHUF_CHECK(f.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
              "not a dshuf checkpoint: " << path);
  std::uint32_t version = 0;
  f.read(reinterpret_cast<char*>(&version), sizeof(version));
  DSHUF_CHECK(f.good() && version == kVersion,
              "unsupported checkpoint version " << version);
  Checkpoint c;
  f.read(reinterpret_cast<char*>(&c.epoch), sizeof(c.epoch));
  DSHUF_CHECK(f.good(), "checkpoint truncated reading epoch");
  c.model_state = read_floats(f, "model state");
  c.buffer_state = read_floats(f, "buffer state");
  c.optimizer_state = read_floats(f, "optimizer state");
  return c;
}

}  // namespace dshuf::nn
