#include "nn/layers.hpp"

#include <cmath>

namespace dshuf::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_("linear.weight",
              Tensor::randn({in_features, out_features}, rng,
                            std::sqrt(2.0F / static_cast<float>(in_features))),
              /*decay=*/true),
      bias_("linear.bias", Tensor({out_features}), /*decay=*/false) {}

Tensor Linear::forward(const Tensor& x, bool /*training*/) {
  DSHUF_CHECK_EQ(x.cols(), in_, "Linear input feature mismatch");
  cached_input_ = x;
  Tensor w_view = weight_.value;  // [in, out]
  Tensor out({x.rows(), out_});
  gemm(x, w_view, out);
  const float* b = bias_.value.data();
  for (std::size_t i = 0; i < out.rows(); ++i) {
    float* row = out.data() + i * out_;
    for (std::size_t j = 0; j < out_; ++j) row[j] += b[j];
  }
  return out;
}

Tensor Linear::backward(const Tensor& grad_out) {
  DSHUF_CHECK_EQ(grad_out.cols(), out_, "Linear grad feature mismatch");
  DSHUF_CHECK_EQ(grad_out.rows(), cached_input_.rows(),
                 "Linear grad batch mismatch");
  // dW += X^T dY ; db += column-sum(dY) ; dX = dY W^T
  gemm_at_b(cached_input_, grad_out, weight_.grad, /*accumulate=*/true);
  float* db = bias_.grad.data();
  for (std::size_t i = 0; i < grad_out.rows(); ++i) {
    const float* row = grad_out.data() + i * out_;
    for (std::size_t j = 0; j < out_; ++j) db[j] += row[j];
  }
  Tensor grad_in({grad_out.rows(), in_});
  // weight is [in, out]; dX(MxIn) = dY(MxOut) * W^T — W^T is out x in, and
  // gemm_a_bt expects b stored as NxK = in x out... weight is stored
  // [in, out], i.e. rows=in, cols=out, so b stored as NxK with N=in, K=out.
  gemm_a_bt(grad_out, weight_.value, grad_in);
  return grad_in;
}

Tensor ReLU::forward(const Tensor& x, bool /*training*/) {
  cached_input_ = x;
  Tensor out = x;
  for (auto& v : out.vec()) v = v > 0.0F ? v : 0.0F;
  return out;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  DSHUF_CHECK_EQ(grad_out.size(), cached_input_.size(),
                 "ReLU grad size mismatch");
  Tensor grad_in = grad_out;
  const float* x = cached_input_.data();
  float* g = grad_in.data();
  for (std::size_t i = 0; i < grad_in.size(); ++i) {
    if (x[i] <= 0.0F) g[i] = 0.0F;
  }
  return grad_in;
}

Tensor Tanh::forward(const Tensor& x, bool /*training*/) {
  Tensor out = x;
  for (auto& v : out.vec()) v = std::tanh(v);
  cached_output_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_out) {
  DSHUF_CHECK_EQ(grad_out.size(), cached_output_.size(),
                 "Tanh grad size mismatch");
  Tensor grad_in = grad_out;
  const float* y = cached_output_.data();
  float* g = grad_in.data();
  for (std::size_t i = 0; i < grad_in.size(); ++i) {
    g[i] *= 1.0F - y[i] * y[i];
  }
  return grad_in;
}

Dropout::Dropout(double p, Rng& rng) : p_(p), rng_(&rng) {
  DSHUF_CHECK(p >= 0.0 && p < 1.0, "dropout probability must be in [0, 1)");
}

Tensor Dropout::forward(const Tensor& x, bool training) {
  last_training_ = training;
  if (!training || p_ == 0.0) return x;
  Tensor out = x;
  mask_.assign(x.size(), 0.0F);
  const auto keep = static_cast<float>(1.0 / (1.0 - p_));
  float* o = out.data();
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (rng_->uniform() >= p_) {
      mask_[i] = keep;
      o[i] *= keep;
    } else {
      o[i] = 0.0F;
    }
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (!last_training_ || p_ == 0.0) return grad_out;
  DSHUF_CHECK_EQ(grad_out.size(), mask_.size(), "Dropout grad size mismatch");
  Tensor grad_in = grad_out;
  float* g = grad_in.data();
  for (std::size_t i = 0; i < grad_in.size(); ++i) g[i] *= mask_[i];
  return grad_in;
}

}  // namespace dshuf::nn
