#include "nn/layers.hpp"

#include <cmath>

namespace dshuf::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_("linear.weight",
              Tensor::randn({in_features, out_features}, rng,
                            std::sqrt(2.0F / static_cast<float>(in_features))),
              /*decay=*/true),
      bias_("linear.bias", Tensor({out_features}), /*decay=*/false) {}

void Linear::forward_into(const Tensor& x, Tensor& y, bool /*training*/) {
  DSHUF_CHECK_EQ(x.cols(), in_, "Linear input feature mismatch");
  cached_in_ = &x;
  y.resize2(x.rows(), out_);
  gemm(x, weight_.value, y);
  const float* b = bias_.value.data();
  for (std::size_t i = 0; i < y.rows(); ++i) {
    float* row = y.data() + i * out_;
    for (std::size_t j = 0; j < out_; ++j) row[j] += b[j];
  }
}

void Linear::backward_into(const Tensor& grad_out, Tensor& grad_in) {
  DSHUF_CHECK(cached_in_ != nullptr, "Linear backward before forward");
  DSHUF_CHECK_EQ(grad_out.cols(), out_, "Linear grad feature mismatch");
  DSHUF_CHECK_EQ(grad_out.rows(), cached_in_->rows(),
                 "Linear grad batch mismatch");
  // dW += X^T dY ; db += column-sum(dY) ; dX = dY W^T
  gemm_at_b(*cached_in_, grad_out, weight_.grad, /*accumulate=*/true);
  float* db = bias_.grad.data();
  for (std::size_t i = 0; i < grad_out.rows(); ++i) {
    const float* row = grad_out.data() + i * out_;
    for (std::size_t j = 0; j < out_; ++j) db[j] += row[j];
  }
  grad_in.resize2(grad_out.rows(), in_);
  // weight is [in, out] = NxK as gemm_a_bt expects (N=in, K=out), so
  // dX(MxIn) = dY(MxOut) * W^T comes out directly.
  gemm_a_bt(grad_out, weight_.value, grad_in);
}

void ReLU::forward_into(const Tensor& x, Tensor& y, bool /*training*/) {
  cached_in_ = &x;
  y.resize_like(x);
  const float* px = x.data();
  float* py = y.data();
  for (std::size_t i = 0; i < x.size(); ++i) {
    py[i] = px[i] > 0.0F ? px[i] : 0.0F;
  }
}

void ReLU::backward_into(const Tensor& grad_out, Tensor& grad_in) {
  DSHUF_CHECK(cached_in_ != nullptr, "ReLU backward before forward");
  DSHUF_CHECK_EQ(grad_out.size(), cached_in_->size(),
                 "ReLU grad size mismatch");
  grad_in.resize_like(grad_out);
  const float* x = cached_in_->data();
  const float* go = grad_out.data();
  float* g = grad_in.data();
  for (std::size_t i = 0; i < grad_in.size(); ++i) {
    g[i] = x[i] > 0.0F ? go[i] : 0.0F;
  }
}

void Tanh::forward_into(const Tensor& x, Tensor& y, bool /*training*/) {
  y.resize_like(x);
  const float* px = x.data();
  float* py = y.data();
  for (std::size_t i = 0; i < x.size(); ++i) py[i] = std::tanh(px[i]);
  // Backward needs tanh(x), and y's storage belongs to the caller — keep
  // our own copy in scratch.
  copy_into(y, scratch(0));
}

void Tanh::backward_into(const Tensor& grad_out, Tensor& grad_in) {
  const Tensor& cached_out = scratch(0);
  DSHUF_CHECK_EQ(grad_out.size(), cached_out.size(),
                 "Tanh grad size mismatch");
  grad_in.resize_like(grad_out);
  const float* y = cached_out.data();
  const float* go = grad_out.data();
  float* g = grad_in.data();
  for (std::size_t i = 0; i < grad_in.size(); ++i) {
    g[i] = go[i] * (1.0F - y[i] * y[i]);
  }
}

Dropout::Dropout(double p, Rng& rng) : p_(p), rng_(&rng) {
  DSHUF_CHECK(p >= 0.0 && p < 1.0, "dropout probability must be in [0, 1)");
}

void Dropout::forward_into(const Tensor& x, Tensor& y, bool training) {
  last_training_ = training;
  if (!training || p_ == 0.0) {
    copy_into(x, y);
    return;
  }
  y.resize_like(x);
  mask_.assign(x.size(), 0.0F);
  const auto keep = static_cast<float>(1.0 / (1.0 - p_));
  const float* px = x.data();
  float* o = y.data();
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (rng_->uniform() >= p_) {
      mask_[i] = keep;
      o[i] = px[i] * keep;
    } else {
      o[i] = 0.0F;
    }
  }
}

void Dropout::backward_into(const Tensor& grad_out, Tensor& grad_in) {
  if (!last_training_ || p_ == 0.0) {
    copy_into(grad_out, grad_in);
    return;
  }
  DSHUF_CHECK_EQ(grad_out.size(), mask_.size(), "Dropout grad size mismatch");
  grad_in.resize_like(grad_out);
  const float* go = grad_out.data();
  float* g = grad_in.data();
  for (std::size_t i = 0; i < grad_in.size(); ++i) g[i] = go[i] * mask_[i];
}

}  // namespace dshuf::nn
