// Model builders.
//
// The paper's DNNs (ResNet50, DenseNet161, WideResNet-28-10, Inception-v4,
// DeepCAM) are replaced by MLP proxies whose normalisation behaviour is the
// experimentally relevant property (see DESIGN.md substitution table).
// MlpSpec captures the knobs that matter: depth/width (capacity),
// normalisation kind (BatchNorm => batch-composition-sensitive) and
// dropout.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "nn/model.hpp"
#include "util/rng.hpp"

namespace dshuf::nn {

enum class NormKind { kNone, kBatchNorm, kGroupNorm };

std::string to_string(NormKind k);

struct MlpSpec {
  std::size_t input_dim = 32;
  std::vector<std::size_t> hidden = {128, 128};
  std::size_t num_classes = 10;
  NormKind norm = NormKind::kBatchNorm;
  /// Groups for GroupNorm (ignored otherwise).
  std::size_t groups = 8;
  double dropout = 0.0;
};

/// Build `Linear -> Norm -> ReLU [-> Dropout]` blocks followed by a linear
/// classifier head. Weight init is deterministic given `rng`.
Model make_mlp(const MlpSpec& spec, Rng& rng);

/// Number of layers forming the classification head (for transfer-learning
/// head replacement via Model::pop_layers).
constexpr std::size_t kHeadLayers = 1;

}  // namespace dshuf::nn
