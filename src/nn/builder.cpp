#include "nn/builder.hpp"

#include "nn/layers.hpp"
#include "nn/norm.hpp"
#include "util/error.hpp"

namespace dshuf::nn {

std::string to_string(NormKind k) {
  switch (k) {
    case NormKind::kNone:
      return "none";
    case NormKind::kBatchNorm:
      return "batchnorm";
    case NormKind::kGroupNorm:
      return "groupnorm";
  }
  return "?";
}

Model make_mlp(const MlpSpec& spec, Rng& rng) {
  DSHUF_CHECK_GT(spec.input_dim, 0U, "input_dim must be positive");
  DSHUF_CHECK_GT(spec.num_classes, 1U, "need at least two classes");
  Model m;
  std::size_t in = spec.input_dim;
  for (std::size_t width : spec.hidden) {
    m.add(std::make_unique<Linear>(in, width, rng));
    switch (spec.norm) {
      case NormKind::kBatchNorm:
        m.add(std::make_unique<BatchNorm1d>(width));
        break;
      case NormKind::kGroupNorm:
        m.add(std::make_unique<GroupNorm>(
            width, std::min(spec.groups, width)));
        break;
      case NormKind::kNone:
        break;
    }
    m.add(std::make_unique<ReLU>());
    if (spec.dropout > 0.0) {
      m.add(std::make_unique<Dropout>(spec.dropout, rng));
    }
    in = width;
  }
  m.add(std::make_unique<Linear>(in, spec.num_classes, rng));
  return m;
}

}  // namespace dshuf::nn
