// Classification metrics.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace dshuf::nn {

/// Fraction of rows whose argmax equals the label (top-1 accuracy).
double top1_accuracy(const Tensor& logits,
                     const std::vector<std::uint32_t>& labels);

/// Streaming accuracy accumulator for chunked evaluation.
class AccuracyMeter {
 public:
  void update(const Tensor& logits, const std::vector<std::uint32_t>& labels);
  [[nodiscard]] double value() const {
    return total_ == 0 ? 0.0
                       : static_cast<double>(correct_) /
                             static_cast<double>(total_);
  }
  [[nodiscard]] std::size_t count() const { return total_; }
  void reset() { correct_ = total_ = 0; }

 private:
  std::size_t correct_ = 0;
  std::size_t total_ = 0;
};

}  // namespace dshuf::nn
