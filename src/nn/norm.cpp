#include "nn/norm.hpp"

#include <cmath>

namespace dshuf::nn {

BatchNorm1d::BatchNorm1d(std::size_t features, float momentum, float eps)
    : features_(features),
      momentum_(momentum),
      eps_(eps),
      gamma_("bn.gamma", Tensor::full({features}, 1.0F), /*decay=*/false),
      beta_("bn.beta", Tensor({features}), /*decay=*/false),
      running_mean_({features}),
      running_var_(Tensor::full({features}, 1.0F)) {}

void BatchNorm1d::forward_into(const Tensor& x, Tensor& y, bool training) {
  DSHUF_CHECK_EQ(x.cols(), features_, "BatchNorm feature mismatch");
  const std::size_t N = x.rows();
  const std::size_t C = features_;
  y.resize2(N, C);
  Tensor& xhat = scratch(kXhatSlot);
  xhat.resize2(N, C);
  Tensor& inv_std_t = scratch(kInvStdSlot);
  inv_std_t.resize1(C);
  cached_batch_ = N;

  const float* px = x.data();
  float* pxh = xhat.data();
  float* po = y.data();
  const float* g = gamma_.value.data();
  const float* b = beta_.value.data();

  for (std::size_t j = 0; j < C; ++j) {
    float mean;
    float var;
    if (training) {
      DSHUF_CHECK_GT(N, 1U, "BatchNorm training needs batch size > 1");
      double sum = 0.0;
      for (std::size_t i = 0; i < N; ++i) sum += px[i * C + j];
      mean = static_cast<float>(sum / static_cast<double>(N));
      double ss = 0.0;
      for (std::size_t i = 0; i < N; ++i) {
        const double d = px[i * C + j] - mean;
        ss += d * d;
      }
      var = static_cast<float>(ss / static_cast<double>(N));  // biased
      // PyTorch-style running update (uses unbiased variance).
      const float unbiased =
          static_cast<float>(ss / static_cast<double>(N - 1));
      running_mean_.vec()[j] =
          (1.0F - momentum_) * running_mean_.vec()[j] + momentum_ * mean;
      running_var_.vec()[j] =
          (1.0F - momentum_) * running_var_.vec()[j] + momentum_ * unbiased;
    } else {
      mean = running_mean_.vec()[j];
      var = running_var_.vec()[j];
    }
    const float inv_std = 1.0F / std::sqrt(var + eps_);
    inv_std_t.vec()[j] = inv_std;
    for (std::size_t i = 0; i < N; ++i) {
      const float xh = (px[i * C + j] - mean) * inv_std;
      pxh[i * C + j] = xh;
      po[i * C + j] = g[j] * xh + b[j];
    }
  }
}

void BatchNorm1d::backward_into(const Tensor& grad_out, Tensor& grad_in) {
  const std::size_t N = cached_batch_;
  const std::size_t C = features_;
  DSHUF_CHECK_EQ(grad_out.rows(), N, "BatchNorm grad batch mismatch");
  DSHUF_CHECK_EQ(grad_out.cols(), C, "BatchNorm grad feature mismatch");
  grad_in.resize2(N, C);
  const Tensor& xhat = scratch(kXhatSlot);
  const Tensor& inv_std_t = scratch(kInvStdSlot);
  DSHUF_CHECK_EQ(xhat.size(), N * C, "BatchNorm backward before forward");
  const float* dy = grad_out.data();
  const float* xh = xhat.data();
  float* dx = grad_in.data();
  const float* g = gamma_.value.data();
  float* dg = gamma_.grad.data();
  float* db = beta_.grad.data();
  const auto n = static_cast<float>(N);

  for (std::size_t j = 0; j < C; ++j) {
    double sum_dy = 0.0;
    double sum_dy_xhat = 0.0;
    for (std::size_t i = 0; i < N; ++i) {
      sum_dy += dy[i * C + j];
      sum_dy_xhat += static_cast<double>(dy[i * C + j]) * xh[i * C + j];
    }
    dg[j] += static_cast<float>(sum_dy_xhat);
    db[j] += static_cast<float>(sum_dy);
    const float inv_std = inv_std_t.vec()[j];
    const auto mdy = static_cast<float>(sum_dy / n);
    const auto mdyx = static_cast<float>(sum_dy_xhat / n);
    for (std::size_t i = 0; i < N; ++i) {
      // Standard BN backward: dx = g*inv_std*(dy - mean(dy) - xhat*mean(dy*xhat))
      dx[i * C + j] =
          g[j] * inv_std * (dy[i * C + j] - mdy - xh[i * C + j] * mdyx);
    }
  }
}

GroupNorm::GroupNorm(std::size_t features, std::size_t groups, float eps)
    : features_(features),
      groups_(groups),
      group_size_(groups == 0 ? 0 : features / groups),
      eps_(eps),
      gamma_("gn.gamma", Tensor::full({features}, 1.0F), /*decay=*/false),
      beta_("gn.beta", Tensor({features}), /*decay=*/false) {
  DSHUF_CHECK_GT(groups, 0U, "GroupNorm needs at least one group");
  DSHUF_CHECK_EQ(features % groups, 0U,
                 "GroupNorm features must divide evenly into groups");
}

void GroupNorm::forward_into(const Tensor& x, Tensor& y, bool /*training*/) {
  DSHUF_CHECK_EQ(x.cols(), features_, "GroupNorm feature mismatch");
  const std::size_t N = x.rows();
  const std::size_t C = features_;
  const std::size_t G = groups_;
  const std::size_t GS = group_size_;
  y.resize2(N, C);
  Tensor& xhat = scratch(kXhatSlot);
  xhat.resize2(N, C);
  Tensor& inv_std_t = scratch(kInvStdSlot);
  inv_std_t.resize2(N, G);

  const float* px = x.data();
  float* pxh = xhat.data();
  float* po = y.data();
  const float* g = gamma_.value.data();
  const float* b = beta_.value.data();

  for (std::size_t i = 0; i < N; ++i) {
    const float* row = px + i * C;
    for (std::size_t grp = 0; grp < G; ++grp) {
      const std::size_t c0 = grp * GS;
      double sum = 0.0;
      for (std::size_t c = c0; c < c0 + GS; ++c) sum += row[c];
      const auto mean = static_cast<float>(sum / static_cast<double>(GS));
      double ss = 0.0;
      for (std::size_t c = c0; c < c0 + GS; ++c) {
        const double d = row[c] - mean;
        ss += d * d;
      }
      const auto var = static_cast<float>(ss / static_cast<double>(GS));
      const float inv_std = 1.0F / std::sqrt(var + eps_);
      inv_std_t.at(i, grp) = inv_std;
      for (std::size_t c = c0; c < c0 + GS; ++c) {
        const float xh = (row[c] - mean) * inv_std;
        pxh[i * C + c] = xh;
        po[i * C + c] = g[c] * xh + b[c];
      }
    }
  }
}

void GroupNorm::backward_into(const Tensor& grad_out, Tensor& grad_in) {
  const Tensor& xhat = scratch(kXhatSlot);
  const Tensor& inv_std_t = scratch(kInvStdSlot);
  DSHUF_CHECK_GT(xhat.size(), 0U, "GroupNorm backward before forward");
  const std::size_t N = xhat.rows();
  const std::size_t C = features_;
  const std::size_t G = groups_;
  const std::size_t GS = group_size_;
  DSHUF_CHECK_EQ(grad_out.rows(), N, "GroupNorm grad batch mismatch");
  DSHUF_CHECK_EQ(grad_out.cols(), C, "GroupNorm grad feature mismatch");
  grad_in.resize2(N, C);
  const float* dy = grad_out.data();
  const float* xh = xhat.data();
  float* dx = grad_in.data();
  const float* g = gamma_.value.data();
  float* dg = gamma_.grad.data();
  float* db = beta_.grad.data();

  for (std::size_t c = 0; c < C; ++c) {
    double sdg = 0.0;
    double sdb = 0.0;
    for (std::size_t i = 0; i < N; ++i) {
      sdg += static_cast<double>(dy[i * C + c]) * xh[i * C + c];
      sdb += dy[i * C + c];
    }
    dg[c] += static_cast<float>(sdg);
    db[c] += static_cast<float>(sdb);
  }

  const auto gs = static_cast<float>(GS);
  for (std::size_t i = 0; i < N; ++i) {
    for (std::size_t grp = 0; grp < G; ++grp) {
      const std::size_t c0 = grp * GS;
      double sum_t = 0.0;       // sum of g*dy over group
      double sum_t_xhat = 0.0;  // sum of g*dy*xhat over group
      for (std::size_t c = c0; c < c0 + GS; ++c) {
        const double t = static_cast<double>(g[c]) * dy[i * C + c];
        sum_t += t;
        sum_t_xhat += t * xh[i * C + c];
      }
      const float inv_std = inv_std_t.at(i, grp);
      const auto mt = static_cast<float>(sum_t / gs);
      const auto mtx = static_cast<float>(sum_t_xhat / gs);
      for (std::size_t c = c0; c < c0 + GS; ++c) {
        dx[i * C + c] =
            inv_std * (g[c] * dy[i * C + c] - mt - xh[i * C + c] * mtx);
      }
    }
  }
}

}  // namespace dshuf::nn
