// Sequential model container.
//
// Owns a stack of layers, exposes the flattened parameter list (for the
// optimiser and for gradient allreduce emulation), weight state
// save/restore (warm starts, the ImageNet-21K -> 1K transfer experiment),
// and gradient utilities used by the distributed-SGD simulator.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.hpp"

namespace dshuf::nn {

class Model {
 public:
  Model() = default;

  /// Append a layer; returns *this for chaining.
  Model& add(LayerPtr layer);

  /// Forward through all layers.
  Tensor forward(const Tensor& x, bool training);

  /// Backward through all layers from dLoss/dOutput; accumulates gradients.
  void backward(const Tensor& grad_out);

  /// All trainable parameters in layer order.
  [[nodiscard]] std::vector<Param*> params();

  /// Clear all parameter gradients.
  void zero_grad();

  /// Multiply all gradients by `factor` (e.g. 1/M after summing M workers'
  /// backward passes — the "gradient averaging" of synchronous SGD).
  void scale_grad(float factor);

  /// Total number of scalar parameters.
  [[nodiscard]] std::size_t num_params();

  /// Flatten parameter values into one vector (order-stable).
  [[nodiscard]] std::vector<float> state();
  /// Restore parameter values from state(); size must match.
  void load_state(const std::vector<float>& s);

  /// All non-trainable buffers in layer order (BatchNorm running stats).
  [[nodiscard]] std::vector<Tensor*> buffers();
  /// Flatten / restore buffer contents (for checkpoints).
  [[nodiscard]] std::vector<float> buffer_state();
  void load_buffer_state(const std::vector<float>& s);

  /// Flatten gradients (for emulated allreduce / tests).
  [[nodiscard]] std::vector<float> gradients();

  /// Access to layers, e.g. to find BatchNorm instances or replace the
  /// classification head in transfer learning.
  [[nodiscard]] std::vector<Layer*> layers();
  /// Drop the last `n` layers (transfer-learning head replacement).
  void pop_layers(std::size_t n);

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace dshuf::nn
