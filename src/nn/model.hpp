// Sequential model container.
//
// Owns a stack of layers, exposes the flattened parameter list (for the
// optimiser and for gradient allreduce emulation), weight state
// save/restore (warm starts, the ImageNet-21K -> 1K transfer experiment),
// and gradient utilities used by the distributed-SGD simulator.
//
// The model also owns the Workspace all its layers share: activations are
// staged in model-owned slots (forward returns a reference into the
// workspace, valid until the next forward) and backward ping-pongs
// gradients between two slots. After warm-up every tensor in the loop has
// reached its high-water capacity and training iterations allocate
// nothing (asserted by tests/test_workspace.cpp).
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.hpp"
#include "tensor/workspace.hpp"

namespace dshuf::nn {

class Model {
 public:
  Model() = default;
  // Layers cache a pointer to the model's workspace; moves re-attach.
  Model(Model&& other) noexcept;
  Model& operator=(Model&& other) noexcept;
  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;

  /// Append a layer (attaching it to the model's workspace); returns
  /// *this for chaining.
  Model& add(LayerPtr layer);

  /// Forward through all layers. The returned reference points into the
  /// model's workspace and stays valid until the next forward() call.
  const Tensor& forward(const Tensor& x, bool training);

  /// Backward through all layers from dLoss/dOutput; accumulates gradients.
  void backward(const Tensor& grad_out);

  /// All trainable parameters in layer order (fresh copy of the cached
  /// list; hot-path callers should use param_refs()).
  [[nodiscard]] std::vector<Param*> params() { return param_refs(); }

  /// Cached parameter list, rebuilt only when the layer stack changes.
  /// The reference is invalidated by add() / pop_layers().
  [[nodiscard]] const std::vector<Param*>& param_refs();

  /// Clear all parameter gradients.
  void zero_grad();

  /// Multiply all gradients by `factor` (e.g. 1/M after summing M workers'
  /// backward passes — the "gradient averaging" of synchronous SGD).
  void scale_grad(float factor);

  /// Total number of scalar parameters.
  [[nodiscard]] std::size_t num_params();

  /// Flatten parameter values into one vector (order-stable).
  [[nodiscard]] std::vector<float> state();
  /// Restore parameter values from state(); size must match.
  void load_state(const std::vector<float>& s);

  /// All non-trainable buffers in layer order (BatchNorm running stats).
  [[nodiscard]] std::vector<Tensor*> buffers();
  /// Flatten / restore buffer contents (for checkpoints).
  [[nodiscard]] std::vector<float> buffer_state();
  void load_buffer_state(const std::vector<float>& s);

  /// Flatten gradients (for emulated allreduce / tests).
  [[nodiscard]] std::vector<float> gradients();

  /// Access to layers, e.g. to find BatchNorm instances or replace the
  /// classification head in transfer learning.
  [[nodiscard]] std::vector<Layer*> layers();
  /// Drop the last `n` layers (transfer-learning head replacement).
  void pop_layers(std::size_t n);

  /// The scratch arena shared by this model's layers (activations, conv
  /// im2col buffers, norm caches). Exposed for telemetry.
  [[nodiscard]] Workspace& workspace() { return ws_; }

 private:
  // Model-owned workspace slots are keyed by a nullptr owner: id i >= 0 is
  // the input of layer i (id layers_.size() is the final output); ids
  // kGradSlotA/B are the backward ping-pong pair. Keys don't involve the
  // model's address, so moved-from slot maps stay valid.
  static constexpr int kGradSlotA = -1;
  static constexpr int kGradSlotB = -2;

  void attach_layers();

  std::vector<LayerPtr> layers_;
  Workspace ws_;
  std::vector<Param*> param_cache_;
  bool param_cache_valid_ = false;
};

}  // namespace dshuf::nn
