#include "nn/conv.hpp"

#include <cmath>

#include "nn/layers.hpp"
#include "nn/norm.hpp"
#include "tensor/gemm_kernel.hpp"
#include "tensor/im2col.hpp"
#include "tensor/kernel_ref.hpp"

namespace dshuf::nn {

Conv1d::Conv1d(std::size_t in_channels, std::size_t out_channels,
               std::size_t length, std::size_t kernel, Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      length_(length),
      kernel_(kernel),
      weight_("conv.weight",
              Tensor::randn({out_channels, in_channels, kernel}, rng,
                            std::sqrt(2.0F / static_cast<float>(
                                                 in_channels * kernel))),
              /*decay=*/true),
      bias_("conv.bias", Tensor({out_channels}), /*decay=*/false) {
  DSHUF_CHECK_GT(in_channels, 0U, "need at least one input channel");
  DSHUF_CHECK_GT(out_channels, 0U, "need at least one output channel");
  DSHUF_CHECK_GT(length, 0U, "need positive length");
  DSHUF_CHECK_EQ(kernel % 2, 1U, "same-padding needs an odd kernel");
  DSHUF_CHECK_LE(kernel, length, "kernel cannot exceed the signal length");
}

void Conv1d::forward_into(const Tensor& x, Tensor& y, bool /*training*/) {
  DSHUF_CHECK_EQ(x.cols(), in_channels_ * length_,
                 "Conv1d input feature mismatch");
  const std::size_t N = x.rows();
  cached_in_ = &x;
  cached_batch_ = N;
  y.resize2(N, out_channels_ * length_);

  if (kernel_backend() == KernelBackend::kReference) {
    kernel_ref::conv1d_forward_ref(x.data(), weight_.value.data(),
                                   bias_.value.data(), y.data(), N,
                                   in_channels_, out_channels_, length_,
                                   kernel_);
    return;
  }

  // Lower to a column matrix, then the whole convolution is one GEMM:
  //   out_big[oc, n*L + t] = W[oc, ic*k] * cols[ic*k, n*L + t].
  const std::size_t nl = N * length_;
  const std::size_t ck = in_channels_ * kernel_;
  Tensor& cols = scratch(kColsSlot);
  kernel::im2col_1d(x.data(), N, in_channels_, length_, kernel_, cols);
  Tensor& out_big = scratch(kOutBigSlot);
  out_big.resize2(out_channels_, nl);
  kernel::gemm_blocked(weight_.value.data(), cols.data(), out_big.data(),
                       out_channels_, nl, ck, /*a_transposed=*/false,
                       /*b_transposed=*/false, /*accumulate=*/false);

  // Scatter back to the layer's [N, out_c * L] layout with the bias fused.
  const float* b = bias_.value.data();
  for (std::size_t oc = 0; oc < out_channels_; ++oc) {
    const float* src = out_big.data() + oc * nl;
    const float bv = b[oc];
    for (std::size_t n = 0; n < N; ++n) {
      float* dst = y.data() + n * out_channels_ * length_ + oc * length_;
      const float* s = src + n * length_;
      for (std::size_t t = 0; t < length_; ++t) dst[t] = s[t] + bv;
    }
  }
}

void Conv1d::backward_into(const Tensor& grad_out, Tensor& grad_in) {
  DSHUF_CHECK(cached_in_ != nullptr, "Conv1d backward before forward");
  const std::size_t N = cached_batch_;
  DSHUF_CHECK_EQ(grad_out.rows(), N, "Conv1d grad batch mismatch");
  DSHUF_CHECK_EQ(grad_out.cols(), out_channels_ * length_,
                 "Conv1d grad feature mismatch");
  grad_in.resize2(N, in_channels_ * length_);
  grad_in.zero();

  if (kernel_backend() == KernelBackend::kReference) {
    kernel_ref::conv1d_backward_ref(
        cached_in_->data(), weight_.value.data(), grad_out.data(),
        grad_in.data(), weight_.grad.data(), bias_.grad.data(), N,
        in_channels_, out_channels_, length_, kernel_);
    return;
  }

  const std::size_t nl = N * length_;
  const std::size_t ck = in_channels_ * kernel_;

  // Gather dY into the GEMM layout, accumulating the bias gradient
  // (db[oc] = sum over n, t of dY) on the way through.
  Tensor& g_big = scratch(kGradBigSlot);
  g_big.resize2(out_channels_, nl);
  float* db = bias_.grad.data();
  for (std::size_t oc = 0; oc < out_channels_; ++oc) {
    float* dst = g_big.data() + oc * nl;
    double bsum = 0.0;
    for (std::size_t n = 0; n < N; ++n) {
      const float* src =
          grad_out.data() + n * out_channels_ * length_ + oc * length_;
      float* d = dst + n * length_;
      for (std::size_t t = 0; t < length_; ++t) {
        d[t] = src[t];
        bsum += src[t];
      }
    }
    db[oc] += static_cast<float>(bsum);
  }

  // dW += dY_big * cols^T — cols still holds this batch's im2col from the
  // forward pass (backward-follows-forward contract).
  const Tensor& cols = scratch(kColsSlot);
  DSHUF_CHECK_EQ(cols.cols(), nl, "Conv1d backward without matching forward");
  kernel::gemm_blocked(g_big.data(), cols.data(), weight_.grad.data(),
                       out_channels_, ck, nl, /*a_transposed=*/false,
                       /*b_transposed=*/true, /*accumulate=*/true);

  // dcols = W^T * dY_big, then the adjoint scatter back to signal layout.
  Tensor& dcols = scratch(kDColsSlot);
  dcols.resize2(ck, nl);
  kernel::gemm_blocked(weight_.value.data(), g_big.data(), dcols.data(), ck,
                       nl, out_channels_, /*a_transposed=*/true,
                       /*b_transposed=*/false, /*accumulate=*/false);
  kernel::col2im_1d(dcols, N, in_channels_, length_, kernel_,
                    grad_in.data());
}

MaxPool1d::MaxPool1d(std::size_t channels, std::size_t length,
                     std::size_t window)
    : channels_(channels), length_(length), window_(window) {
  DSHUF_CHECK_GT(window, 0U, "pool window must be positive");
  DSHUF_CHECK_EQ(length % window, 0U,
                 "pool window must divide the signal length");
}

void MaxPool1d::forward_into(const Tensor& x, Tensor& y, bool /*training*/) {
  DSHUF_CHECK_EQ(x.cols(), channels_ * length_,
                 "MaxPool1d input feature mismatch");
  const std::size_t N = x.rows();
  const std::size_t out_len = length_ / window_;
  cached_batch_ = N;
  argmax_.assign(N * channels_ * out_len, 0);
  y.resize2(N, channels_ * out_len);
  const float* px = x.data();
  float* po = y.data();
  for (std::size_t n = 0; n < N; ++n) {
    for (std::size_t c = 0; c < channels_; ++c) {
      for (std::size_t o = 0; o < out_len; ++o) {
        const std::size_t base =
            n * channels_ * length_ + c * length_ + o * window_;
        std::size_t best = base;
        for (std::size_t k = 1; k < window_; ++k) {
          if (px[base + k] > px[best]) best = base + k;
        }
        const std::size_t oidx =
            n * channels_ * out_len + c * out_len + o;
        argmax_[oidx] = static_cast<std::uint32_t>(best);
        po[oidx] = px[best];
      }
    }
  }
}

void MaxPool1d::backward_into(const Tensor& grad_out, Tensor& grad_in) {
  const std::size_t out_len = length_ / window_;
  DSHUF_CHECK_EQ(grad_out.rows(), cached_batch_,
                 "MaxPool1d grad batch mismatch");
  DSHUF_CHECK_EQ(grad_out.cols(), channels_ * out_len,
                 "MaxPool1d grad feature mismatch");
  grad_in.resize2(cached_batch_, channels_ * length_);
  grad_in.zero();
  const float* pg = grad_out.data();
  float* pgi = grad_in.data();
  for (std::size_t i = 0; i < argmax_.size(); ++i) {
    pgi[argmax_[i]] += pg[i];
  }
}

Model make_cnn(const CnnSpec& spec, Rng& rng) {
  DSHUF_CHECK_GT(spec.input_length, 0U, "input length must be positive");
  DSHUF_CHECK_GT(spec.num_classes, 1U, "need at least two classes");
  DSHUF_CHECK(!spec.channels.empty(), "need at least one conv block");
  Model m;
  std::size_t in_c = 1;
  std::size_t length = spec.input_length;
  for (std::size_t out_c : spec.channels) {
    DSHUF_CHECK_EQ(length % spec.pool, 0U,
                   "pool window must divide the running length");
    m.add(std::make_unique<Conv1d>(in_c, out_c, length, spec.kernel, rng));
    switch (spec.norm) {
      case NormKind::kBatchNorm:
        m.add(std::make_unique<BatchNorm1d>(out_c * length));
        break;
      case NormKind::kGroupNorm:
        m.add(std::make_unique<GroupNorm>(out_c * length, out_c));
        break;
      case NormKind::kNone:
        break;
    }
    m.add(std::make_unique<ReLU>());
    m.add(std::make_unique<MaxPool1d>(out_c, length, spec.pool));
    in_c = out_c;
    length /= spec.pool;
  }
  m.add(std::make_unique<Linear>(in_c * length, spec.num_classes, rng));
  return m;
}

}  // namespace dshuf::nn
