#include "nn/conv.hpp"

#include <cmath>

#include "nn/layers.hpp"
#include "nn/norm.hpp"

namespace dshuf::nn {

Conv1d::Conv1d(std::size_t in_channels, std::size_t out_channels,
               std::size_t length, std::size_t kernel, Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      length_(length),
      kernel_(kernel),
      pad_(kernel / 2),
      weight_("conv.weight",
              Tensor::randn({out_channels, in_channels, kernel}, rng,
                            std::sqrt(2.0F / static_cast<float>(
                                                 in_channels * kernel))),
              /*decay=*/true),
      bias_("conv.bias", Tensor({out_channels}), /*decay=*/false) {
  DSHUF_CHECK_GT(in_channels, 0U, "need at least one input channel");
  DSHUF_CHECK_GT(out_channels, 0U, "need at least one output channel");
  DSHUF_CHECK_GT(length, 0U, "need positive length");
  DSHUF_CHECK_EQ(kernel % 2, 1U, "same-padding needs an odd kernel");
  DSHUF_CHECK_LE(kernel, length, "kernel cannot exceed the signal length");
}

Tensor Conv1d::forward(const Tensor& x, bool /*training*/) {
  DSHUF_CHECK_EQ(x.cols(), in_channels_ * length_,
                 "Conv1d input feature mismatch");
  cached_input_ = x;
  const std::size_t N = x.rows();
  Tensor out({N, out_channels_ * length_});
  const float* px = x.data();
  float* po = out.data();
  const float* b = bias_.value.data();

  for (std::size_t n = 0; n < N; ++n) {
    const float* row = px + n * in_channels_ * length_;
    float* orow = po + n * out_channels_ * length_;
    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
      for (std::size_t t = 0; t < length_; ++t) {
        double acc = b[oc];
        for (std::size_t ic = 0; ic < in_channels_; ++ic) {
          for (std::size_t k = 0; k < kernel_; ++k) {
            const std::ptrdiff_t src =
                static_cast<std::ptrdiff_t>(t + k) -
                static_cast<std::ptrdiff_t>(pad_);
            if (src < 0 || src >= static_cast<std::ptrdiff_t>(length_)) {
              continue;  // zero padding
            }
            acc += wval(oc, ic, k) *
                   row[ic * length_ + static_cast<std::size_t>(src)];
          }
        }
        orow[oc * length_ + t] = static_cast<float>(acc);
      }
    }
  }
  return out;
}

Tensor Conv1d::backward(const Tensor& grad_out) {
  const std::size_t N = cached_input_.rows();
  DSHUF_CHECK_EQ(grad_out.rows(), N, "Conv1d grad batch mismatch");
  DSHUF_CHECK_EQ(grad_out.cols(), out_channels_ * length_,
                 "Conv1d grad feature mismatch");
  Tensor grad_in({N, in_channels_ * length_});
  const float* px = cached_input_.data();
  const float* pg = grad_out.data();
  float* pgi = grad_in.data();
  float* dw = weight_.grad.data();
  float* db = bias_.grad.data();

  for (std::size_t n = 0; n < N; ++n) {
    const float* row = px + n * in_channels_ * length_;
    const float* grow = pg + n * out_channels_ * length_;
    float* girow = pgi + n * in_channels_ * length_;
    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
      for (std::size_t t = 0; t < length_; ++t) {
        const float g = grow[oc * length_ + t];
        if (g == 0.0F) continue;
        db[oc] += g;
        for (std::size_t ic = 0; ic < in_channels_; ++ic) {
          for (std::size_t k = 0; k < kernel_; ++k) {
            const std::ptrdiff_t src =
                static_cast<std::ptrdiff_t>(t + k) -
                static_cast<std::ptrdiff_t>(pad_);
            if (src < 0 || src >= static_cast<std::ptrdiff_t>(length_)) {
              continue;
            }
            const auto s = static_cast<std::size_t>(src);
            dw[(oc * in_channels_ + ic) * kernel_ + k] +=
                g * row[ic * length_ + s];
            girow[ic * length_ + s] += g * wval(oc, ic, k);
          }
        }
      }
    }
  }
  return grad_in;
}

MaxPool1d::MaxPool1d(std::size_t channels, std::size_t length,
                     std::size_t window)
    : channels_(channels), length_(length), window_(window) {
  DSHUF_CHECK_GT(window, 0U, "pool window must be positive");
  DSHUF_CHECK_EQ(length % window, 0U,
                 "pool window must divide the signal length");
}

Tensor MaxPool1d::forward(const Tensor& x, bool /*training*/) {
  DSHUF_CHECK_EQ(x.cols(), channels_ * length_,
                 "MaxPool1d input feature mismatch");
  const std::size_t N = x.rows();
  const std::size_t out_len = length_ / window_;
  cached_batch_ = N;
  argmax_.assign(N * channels_ * out_len, 0);
  Tensor out({N, channels_ * out_len});
  const float* px = x.data();
  float* po = out.data();
  for (std::size_t n = 0; n < N; ++n) {
    for (std::size_t c = 0; c < channels_; ++c) {
      for (std::size_t o = 0; o < out_len; ++o) {
        const std::size_t base =
            n * channels_ * length_ + c * length_ + o * window_;
        std::size_t best = base;
        for (std::size_t k = 1; k < window_; ++k) {
          if (px[base + k] > px[best]) best = base + k;
        }
        const std::size_t oidx =
            n * channels_ * out_len + c * out_len + o;
        argmax_[oidx] = static_cast<std::uint32_t>(best);
        po[oidx] = px[best];
      }
    }
  }
  return out;
}

Tensor MaxPool1d::backward(const Tensor& grad_out) {
  const std::size_t out_len = length_ / window_;
  DSHUF_CHECK_EQ(grad_out.rows(), cached_batch_,
                 "MaxPool1d grad batch mismatch");
  DSHUF_CHECK_EQ(grad_out.cols(), channels_ * out_len,
                 "MaxPool1d grad feature mismatch");
  Tensor grad_in({cached_batch_, channels_ * length_});
  const float* pg = grad_out.data();
  float* pgi = grad_in.data();
  for (std::size_t i = 0; i < argmax_.size(); ++i) {
    pgi[argmax_[i]] += pg[i];
  }
  return grad_in;
}

Model make_cnn(const CnnSpec& spec, Rng& rng) {
  DSHUF_CHECK_GT(spec.input_length, 0U, "input length must be positive");
  DSHUF_CHECK_GT(spec.num_classes, 1U, "need at least two classes");
  DSHUF_CHECK(!spec.channels.empty(), "need at least one conv block");
  Model m;
  std::size_t in_c = 1;
  std::size_t length = spec.input_length;
  for (std::size_t out_c : spec.channels) {
    DSHUF_CHECK_EQ(length % spec.pool, 0U,
                   "pool window must divide the running length");
    m.add(std::make_unique<Conv1d>(in_c, out_c, length, spec.kernel, rng));
    switch (spec.norm) {
      case NormKind::kBatchNorm:
        m.add(std::make_unique<BatchNorm1d>(out_c * length));
        break;
      case NormKind::kGroupNorm:
        m.add(std::make_unique<GroupNorm>(out_c * length, out_c));
        break;
      case NormKind::kNone:
        break;
    }
    m.add(std::make_unique<ReLU>());
    m.add(std::make_unique<MaxPool1d>(out_c, length, spec.pool));
    in_c = out_c;
    length /= spec.pool;
  }
  m.add(std::make_unique<Linear>(in_c * length, spec.num_classes, rng));
  return m;
}

}  // namespace dshuf::nn
